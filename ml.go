package pkgstream

import (
	"pkgstream/internal/graphstream"
	"pkgstream/internal/naivebayes"
	"pkgstream/internal/spdt"
)

// Machine-learning application surface (§VI.A, §VI.B) and the graph
// streaming application (§V Q3).

// Naive Bayes (§VI.A).

// NBSample is one training document (bag of tokens + class).
type NBSample = naivebayes.Sample

// NBModel is the exact sequential naive Bayes baseline.
type NBModel = naivebayes.Model

// NBDistributed is the vertically parallelized classifier: per-token
// counters spread over workers; PKG queries probe two workers per token.
type NBDistributed = naivebayes.Distributed

// NBStrategy selects the token-routing strategy.
type NBStrategy = naivebayes.Strategy

// Naive Bayes routing strategies.
const (
	// NBByPKG tracks each token on at most two workers.
	NBByPKG = naivebayes.ByPKG
	// NBByKey tracks each token on exactly one worker.
	NBByKey = naivebayes.ByKey
	// NBByShuffle spreads tokens over all workers (broadcast queries).
	NBByShuffle = naivebayes.ByShuffle
)

// NewNBModel returns an empty sequential model.
func NewNBModel(classes int, vocab uint64, alpha float64) *NBModel {
	return naivebayes.NewModel(classes, vocab, alpha)
}

// NewNBDistributed returns a distributed classifier over w workers.
func NewNBDistributed(w, classes int, vocab uint64, alpha float64, strategy NBStrategy, seed uint64) *NBDistributed {
	return naivebayes.NewDistributed(w, classes, vocab, alpha, strategy, seed)
}

// NBGenerator produces synthetic text-like classification data.
type NBGenerator = naivebayes.Generator

// NewNBGenerator returns a deterministic sample generator.
func NewNBGenerator(classes int, vocab uint64, docLen int, p1 float64, seed uint64) *NBGenerator {
	return naivebayes.NewGenerator(classes, vocab, docLen, p1, seed)
}

// Streaming parallel decision tree (§VI.B).

// SPDTHistogram is the Ben-Haim & Tom-Tov mergeable histogram.
type SPDTHistogram = spdt.Histogram

// SPDTParams configures a streaming decision tree.
type SPDTParams = spdt.Params

// SPDTTree is the sequential streaming decision tree.
type SPDTTree = spdt.Tree

// SPDTTrainer is the parallel trainer (workers + aggregator).
type SPDTTrainer = spdt.Trainer

// SPDTStrategy selects the data-parallelization strategy.
type SPDTStrategy = spdt.Strategy

// SPDT parallelization strategies.
const (
	// SPDTShuffle sends whole samples round-robin (W·D·C·L histograms).
	SPDTShuffle = spdt.ShuffleSamples
	// SPDTPKG routes per-feature sub-messages with PKG (2·D·C·L).
	SPDTPKG = spdt.PKGFeatures
	// SPDTKey routes per-feature sub-messages by hash (D·C·L).
	SPDTKey = spdt.KeyFeatures
)

// NewSPDTHistogram returns an empty histogram with the given bin budget.
func NewSPDTHistogram(maxBins int) *SPDTHistogram { return spdt.NewHistogram(maxBins) }

// NewSPDTTree returns a single-leaf sequential tree.
func NewSPDTTree(params SPDTParams) (*SPDTTree, error) { return spdt.New(params) }

// NewSPDTTrainer returns a parallel trainer over w workers syncing every
// batchSize samples.
func NewSPDTTrainer(params SPDTParams, w int, strategy SPDTStrategy, batchSize int, seed uint64) (*SPDTTrainer, error) {
	return spdt.NewTrainer(params, w, strategy, batchSize, seed)
}

// SPDTDataGen produces synthetic Gaussian classification data.
type SPDTDataGen = spdt.DataGen

// NewSPDTDataGen returns a deterministic generator (informative features
// get their mean shifted by shift per class).
func NewSPDTDataGen(features, classes, informative int, shift float64, seed uint64) *SPDTDataGen {
	return spdt.NewDataGen(features, classes, informative, shift, seed)
}

// Graph streaming (§V Q3).

// InDegree is the distributed streaming in-degree computation with
// PKG-partitioned workers and optionally key-grouped (skewed) sources.
type InDegree = graphstream.InDegree

// InDegreeConfig parameterizes an in-degree run.
type InDegreeConfig = graphstream.Config

// Source assignment choices for InDegree.
const (
	// InDegreeUniformSources deals edges to sources round-robin.
	InDegreeUniformSources = graphstream.UniformSources
	// InDegreeKeyedSources key-groups edges onto sources by source
	// vertex (the paper's skewed-sources robustness setting).
	InDegreeKeyedSources = graphstream.KeyedSources
)

// NewInDegree returns an empty in-degree computation.
func NewInDegree(cfg InDegreeConfig) *InDegree { return graphstream.New(cfg) }

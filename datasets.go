package pkgstream

import (
	"pkgstream/internal/dataset"
	"pkgstream/internal/simulate"
)

// Dataset surface: the paper's eight Table I workloads as synthetic
// generators matched on (messages, keys, p1), plus the simulation
// harness that reproduces the paper's §V measurements.

// Dataset describes one workload (Table I row) and opens streams of it.
type Dataset = dataset.Spec

// Msg is one stream message (key, source-side key, timestamp in hours).
type Msg = dataset.Msg

// Stream produces a dataset's messages in timestamp order.
type Stream = dataset.Stream

// DatasetStats summarizes an observed stream prefix.
type DatasetStats = dataset.Stats

// The paper's datasets (Table I) at full scale; scale down with WithCap.
var (
	// Wikipedia is the WP page-view log shape (22M msgs, 2.9M keys, p1 9.32%).
	Wikipedia = dataset.WP
	// Twitter is the TW tweet-word shape (1.2G msgs, 31M keys, p1 2.67%).
	Twitter = dataset.TW
	// Cashtags is the CT drifting-popularity shape (690k msgs, 2.9k keys, p1 3.29%).
	Cashtags = dataset.CT
	// Synthetic1 is the LN1 log-normal shape (µ=1.789, σ=2.366).
	Synthetic1 = dataset.LN1
	// Synthetic2 is the LN2 log-normal shape (µ=2.245, σ=1.133).
	Synthetic2 = dataset.LN2
	// LiveJournal is the LJ graph edge stream (69M edges, 4.9M vertices).
	LiveJournal = dataset.LJ
	// Slashdot0811 is the SL1 graph edge stream.
	Slashdot0811 = dataset.SL1
	// Slashdot0902 is the SL2 graph edge stream.
	Slashdot0902 = dataset.SL2
)

// Datasets lists all of the above in Table I order.
func Datasets() []Dataset { return append([]Dataset(nil), dataset.All...) }

// DatasetBySymbol resolves a Table I symbol (WP, TW, CT, LN1, LN2, LJ,
// SL1, SL2).
func DatasetBySymbol(symbol string) (Dataset, error) { return dataset.BySymbol(symbol) }

// MeasureStream consumes up to maxMessages of a stream (all if ≤ 0) and
// returns empirical statistics (regenerates Table I).
func MeasureStream(s Stream, maxMessages int64) DatasetStats {
	return dataset.Measure(s, maxMessages)
}

// Simulation surface (the §V methodology).

// SimOptions configures a load-balancing simulation run.
type SimOptions = simulate.Options

// SimResult reports a simulation's measurements.
type SimResult = simulate.Result

// SimMethod selects the partitioning technique under test.
type SimMethod = simulate.Method

// SimLoadInfo selects the load-information model for PKG.
type SimLoadInfo = simulate.LoadInfo

// SimAssignment selects how messages are divided among sources.
type SimAssignment = simulate.Assignment

// Simulation technique and information-model constants.
const (
	// SimHashing is key grouping by a single hash (baseline H).
	SimHashing = simulate.Hashing
	// SimShuffle is round-robin shuffle grouping.
	SimShuffle = simulate.Shuffle
	// SimPKG is partial key grouping.
	SimPKG = simulate.PKG
	// SimPoTC is the power of two choices without key splitting.
	SimPoTC = simulate.PoTC
	// SimOnGreedy is the online greedy baseline.
	SimOnGreedy = simulate.OnGreedy
	// SimOffGreedy is the clairvoyant LPT baseline.
	SimOffGreedy = simulate.OffGreedy

	// InfoGlobal gives PKG sources the true loads (oracle G).
	InfoGlobal = simulate.Global
	// InfoLocal gives each source only its own estimate (L).
	InfoLocal = simulate.Local
	// InfoProbing is local estimation with periodic refreshes (LP).
	InfoProbing = simulate.Probing

	// SourcesShuffled deals messages to sources round-robin.
	SourcesShuffled = simulate.ShuffleSources
	// SourcesKeyed key-groups messages onto sources (skewed, Figure 4).
	SourcesKeyed = simulate.KeySources
)

// Simulate routes a dataset's stream under the given options and returns
// the paper's measurements (imbalance averages, series, memory).
func Simulate(spec Dataset, opts SimOptions) SimResult { return simulate.Run(spec, opts) }

// Package pkgstream is a from-scratch Go reproduction of
//
//	"The Power of Both Choices: Practical Load Balancing for
//	 Distributed Stream Processing Engines"
//	 Nasir, De Francisci Morales, García-Soriano, Kourtellis, Serafini
//	 (ICDE 2015, arXiv:1504.00788)
//
// It provides PARTIAL KEY GROUPING (PKG) — power of two choices with key
// splitting and local load estimation — together with everything needed
// to use and evaluate it:
//
//   - stream partitioners: PKG (Greedy-d), key grouping, shuffle
//     grouping, static PoTC, On-Greedy and Off-Greedy baselines, plus
//     the frequency-aware D-Choices and W-Choices of the authors'
//     follow-up ("When Two Choices Are not Enough", ICDE 2016);
//   - a miniature Storm-like stream processing engine with pluggable
//     groupings (PKG is a drop-in GroupingFactory);
//   - synthetic datasets matched to the paper's Table I statistics;
//   - the simulation and cluster harnesses that regenerate every table
//     and figure of the paper's evaluation (see cmd/pkgbench);
//   - the paper's §VI applications: streaming top-k word count,
//     SpaceSaving heavy hitters, naive Bayes, and the streaming parallel
//     decision tree (internal packages, surfaced through examples/).
//
// Quick start — balance a skewed stream over 10 workers:
//
//	view := pkgstream.NewLoad(10)          // local load estimate
//	p := pkgstream.NewPKG(10, 2, seed, view)
//	w := p.Route(key)                      // least-loaded of 2 candidates
//	view.Add(w)                            // charge the local estimate
//
// Each source keeps its own view (local load estimation): the paper
// proves balancing every source's own portion balances the total.
package pkgstream

import (
	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
	"pkgstream/internal/route"
)

// Router routes messages, identified by 64-bit keys, to workers. It is
// the decision interface of the shared routing core (internal/route),
// used identically by the engine, the simulators, and the TCP transport.
type Router = route.Router

// Partitioner is the historical name of Router.
type Partitioner = route.Router

// Strategy identifies a routing strategy of the shared core; the same
// values select techniques in Simulate, Cluster and net sources.
type Strategy = route.Strategy

// The routing strategies studied in the paper.
const (
	// StrategyKG is key grouping: single-choice hashing ("H").
	StrategyKG = route.StrategyKG
	// StrategySG is shuffle grouping: round-robin routing.
	StrategySG = route.StrategySG
	// StrategyPKG is partial key grouping (Greedy-d with key splitting).
	StrategyPKG = route.StrategyPKG
	// StrategyPoTC is the power of two choices without key splitting.
	StrategyPoTC = route.StrategyPoTC
	// StrategyOnGreedy sends each new key to the least-loaded worker.
	StrategyOnGreedy = route.StrategyOnGreedy
	// StrategyOffGreedy is the clairvoyant LPT baseline.
	StrategyOffGreedy = route.StrategyOffGreedy
	// StrategyDChoices is frequency-aware PKG from the authors' ICDE
	// 2016 follow-up: a per-source Space-Saving sketch classifies keys
	// and hot keys widen to d > 2 candidates (head keys to all W) while
	// the cold tail keeps 2.
	StrategyDChoices = route.StrategyDChoices
	// StrategyWChoices spreads every key above the hot threshold
	// round-robin over all W workers (the follow-up's aggressive
	// variant).
	StrategyWChoices = route.StrategyWChoices
)

// RouterConfig describes a router for NewRouter.
type RouterConfig = route.Config

// NewRouter constructs any strategy of the shared routing core from a
// single config — the programmatic twin of the per-strategy
// constructors below.
func NewRouter(cfg RouterConfig) (Router, error) { return route.New(cfg) }

// PKG is partial key grouping: the power of d choices (default 2) with
// key splitting, deciding by a load view. See route.PKG.
type PKG = route.PKG

// KeyGrouping is single-choice hash partitioning (the KG baseline).
type KeyGrouping = route.KeyGrouping

// ShuffleGrouping is round-robin partitioning (the SG baseline).
type ShuffleGrouping = route.ShuffleGrouping

// PoTC is the power of two choices without key splitting: per-key routing
// table, no migration.
type PoTC = route.PoTC

// OnGreedy assigns each new key to the globally least-loaded worker.
type OnGreedy = route.OnGreedy

// OffGreedy is the clairvoyant LPT baseline built from exact frequencies.
type OffGreedy = route.OffGreedy

// KeyFreq is a key with its total stream frequency (OffGreedy input).
type KeyFreq = route.KeyFreq

// DChoices is frequency-aware PKG (D-Choices, ICDE 2016 follow-up):
// hot keys get the d > 2 candidates their frequency warrants, the cold
// tail keeps 2. See route.DChoices.
type DChoices = route.DChoices

// WChoices spreads keys above the hot threshold over all W workers
// round-robin (W-Choices). See route.WChoices.
type WChoices = route.WChoices

// HotkeyConfig holds the hot-key classification knobs shared by
// DChoices and WChoices: the D-Choices width D (0 = per-key adaptive),
// the skew target Epsilon, and the sketch/refresh parameters.
type HotkeyConfig = hotkey.Config

// HotkeyStats snapshots a classifier: tracked/hot/head key populations
// and per-class routed message counts.
type HotkeyStats = hotkey.Stats

// Load is a per-worker load vector: the true loads of a stream edge, or a
// source's local estimate of them.
type Load = metrics.Load

// NewLoad returns a zeroed load vector over n workers.
func NewLoad(n int) *Load { return metrics.NewLoad(n) }

// NewPKG returns a PKG partitioner over `workers` workers with `choices`
// hash choices (the paper uses 2), deciding by `view`. Give every
// source its own view updated with its own routed messages (local load
// estimation), or share the true loads for a global oracle.
func NewPKG(workers, choices int, seed uint64, view *Load) *PKG {
	return route.NewPKG(workers, choices, seed, view)
}

// NewKeyGrouping returns hash partitioning over `workers` workers.
func NewKeyGrouping(workers int, seed uint64) *KeyGrouping {
	return route.NewKeyGrouping(workers, seed)
}

// NewShuffleGrouping returns round-robin partitioning starting at offset
// `start` (vary per source).
func NewShuffleGrouping(workers, start int) *ShuffleGrouping {
	return route.NewShuffleGrouping(workers, start)
}

// NewPoTC returns static power-of-two-choices partitioning deciding by
// view (typically the true loads; PoTC requires global knowledge).
func NewPoTC(workers int, seed uint64, view *Load) *PoTC {
	return route.NewPoTC(workers, seed, view)
}

// NewOnGreedy returns the online greedy baseline.
func NewOnGreedy(workers int, view *Load) *OnGreedy {
	return route.NewOnGreedy(workers, view)
}

// NewOffGreedy returns the offline greedy (LPT) baseline for a known
// frequency distribution.
func NewOffGreedy(workers int, seed uint64, freqs []KeyFreq) *OffGreedy {
	return route.NewOffGreedy(workers, seed, freqs)
}

// NewDChoices returns a D-Choices partitioner over `workers` workers
// deciding by `view`, with a fresh per-source hot-key classifier
// configured by hot (zero value: adaptive defaults). Like PKG, give
// every source its own view — and its own DChoices instance, since the
// sketch is per-source state.
func NewDChoices(workers int, seed uint64, view *Load, hot HotkeyConfig) *DChoices {
	return route.NewDChoices(workers, seed, view, hot)
}

// NewWChoices returns a W-Choices partitioner over `workers` workers;
// start offsets the head-key round-robin (vary per source).
func NewWChoices(workers int, seed uint64, view *Load, hot HotkeyConfig, start int) *WChoices {
	return route.NewWChoices(workers, seed, view, hot, start)
}

// Jaccard returns the routing agreement between two destination traces:
// matches / (2m − matches).
func Jaccard(a, b []int32) float64 { return metrics.Jaccard(a, b) }

// Command wordcount runs the paper's running example — streaming top-k
// word count — on the built-in Storm-like engine, with the stream
// grouping selectable between the paper's three contenders:
//
//	wordcount -grouping pkg -words 200000 -workers 9
//	wordcount -grouping kg          # watch the counter imbalance
//	wordcount -grouping sg          # balanced but memory-hungry
//
// It prints the top-k words, per-counter loads (the imbalance the paper
// plots), aggregation overhead and end-to-end throughput.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"pkgstream"
)

func main() {
	var (
		grouping = flag.String("grouping", "pkg", "pkg | kg | sg")
		words    = flag.Int("words", 200_000, "words per source")
		vocab    = flag.Uint64("vocab", 50_000, "vocabulary size")
		p1       = flag.Float64("p1", 0.0932, "frequency of the most common word (WP-like default)")
		sources  = flag.Int("sources", 2, "spout parallelism")
		workers  = flag.Int("workers", 9, "counter parallelism")
		flush    = flag.Int("flush", 10_000, "flush partial counts every N words (0: only at end)")
		k        = flag.Int("k", 10, "top-k size")
		seed     = flag.Uint64("seed", 42, "random seed")
		queue    = flag.Int("queue", 1024, "per-instance queue size")
	)
	flag.Parse()

	cfg := pkgstream.WordCountConfig{
		Words: *words, Vocab: *vocab, P1: *p1,
		Sources: *sources, Workers: *workers,
		FlushEvery: *flush, K: *k,
		Seed: *seed,
	}
	switch *grouping {
	case "pkg":
		cfg.Grouping = pkgstream.WordCountPKG
	case "kg":
		cfg.Grouping = pkgstream.WordCountKG
	case "sg":
		cfg.Grouping = pkgstream.WordCountSG
	default:
		fatal(fmt.Errorf("unknown grouping %q (pkg|kg|sg)", *grouping))
	}
	top, out, err := pkgstream.BuildWordCount(cfg)
	if err != nil {
		fatal(err)
	}

	rt := pkgstream.NewRuntime(top, pkgstream.RuntimeOptions{QueueSize: *queue})
	start := time.Now()
	if err := rt.Run(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("grouping=%s words=%d sources=%d workers=%d\n", *grouping, out.TotalWords, *sources, *workers)
	fmt.Printf("throughput: %.0f words/s (%v total)\n",
		float64(out.TotalWords)/elapsed.Seconds(), elapsed.Round(time.Millisecond))

	fmt.Println("\ntop words:")
	for i, wc := range out.Top {
		fmt.Printf("%3d. %-12s %d\n", i+1, wc.Word, wc.Count)
	}

	stats := rt.Stats()
	loads := stats.Loads("counter.partial")
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	avg := float64(sum) / float64(len(loads))
	fmt.Println("\ncounter loads:")
	for i, l := range loads {
		bar := int(float64(l) / float64(max) * 40)
		fmt.Printf("  counter[%d] %8d %s\n", i, l, bars(bar))
	}
	fmt.Printf("imbalance I = max-avg = %.1f (%.2f%% of stream)\n",
		float64(max)-avg, (float64(max)-avg)/float64(sum)*100)
	fmt.Printf("partials merged at aggregator: %d (%.2f per word)\n",
		out.PartialsMerged, float64(out.PartialsMerged)/float64(out.TotalWords))
	fmt.Printf("max live counters on one worker: %d\n", out.MaxCounterResidency)
}

// fatal logs the error as a structured diagnostic on stderr; the run
// summary itself is program output and stays on stdout.
func fatal(err error) {
	slog.New(slog.NewJSONHandler(os.Stderr, nil)).
		Error("wordcount failed", "err", err)
	os.Exit(1)
}

func bars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

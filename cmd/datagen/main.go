// Command datagen inspects the synthetic datasets that stand in for the
// paper's Table I workloads: it prints the empirical statistics of each
// generated stream next to the paper's published values, and can dump
// raw messages for external tooling.
//
//	datagen                      # Table I at default scale
//	datagen -cap 1000000         # larger streams
//	datagen -symbol WP -dump 20  # peek at messages
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"pkgstream"
)

func main() {
	var (
		capFlag = flag.Int64("cap", 500_000, "max messages per stream")
		seed    = flag.Uint64("seed", 42, "random seed")
		symbol  = flag.String("symbol", "", "inspect a single dataset (WP, TW, CT, LN1, LN2, LJ, SL1, SL2)")
		dump    = flag.Int("dump", 0, "print the first N messages of the selected dataset")
		topFlag = flag.Int("top", 5, "show the N most frequent keys of the selected dataset")
	)
	flag.Parse()

	if *symbol != "" {
		ds, err := pkgstream.DatasetBySymbol(*symbol)
		if err != nil {
			// Structured diagnostic on stderr; the dataset tables are
			// program output and stay on stdout.
			slog.New(slog.NewJSONHandler(os.Stderr, nil)).
				Error("datagen failed", "err", err)
			os.Exit(1)
		}
		inspect(ds.WithCap(*capFlag), *seed, *dump, *topFlag)
		return
	}

	fmt.Printf("%-14s %-6s %10s %10s %8s %10s\n",
		"Dataset", "Symbol", "Messages", "Keys", "p1(%)", "paper(%)")
	for _, full := range pkgstream.Datasets() {
		ds := full.WithCap(*capFlag)
		st := pkgstream.MeasureStream(ds.Open(*seed), 0)
		fmt.Printf("%-14s %-6s %10d %10d %8.2f %10.2f\n",
			ds.Name, ds.Symbol, st.Messages, st.DistinctKeys, st.P1*100, full.P1*100)
	}
}

func inspect(ds pkgstream.Dataset, seed uint64, dump, top int) {
	fmt.Printf("%s (%s): kind=%v messages=%d keys=%d p1=%.4f duration=%.0fh\n",
		ds.Name, ds.Symbol, ds.Kind, ds.Messages, ds.Keys, ds.P1, ds.DurationHours)

	if dump > 0 {
		s := ds.Open(seed)
		fmt.Println("\nfirst messages (key, srcKey, t):")
		for i := 0; i < dump; i++ {
			m, ok := s.Next()
			if !ok {
				break
			}
			fmt.Printf("  %8d %8d %8.3f\n", m.Key, m.SrcKey, m.T)
		}
	}

	if top > 0 {
		counts := map[uint64]int64{}
		s := ds.Open(seed)
		var n int64
		for {
			m, ok := s.Next()
			if !ok {
				break
			}
			counts[m.Key]++
			n++
		}
		fmt.Printf("\ntop %d keys of %d messages:\n", top, n)
		for i := 0; i < top; i++ {
			var bk uint64
			var bc int64 = -1
			for k, c := range counts {
				if c > bc || (c == bc && k < bk) {
					bk, bc = k, c
				}
			}
			if bc < 0 {
				break
			}
			fmt.Printf("  key %-10d %10d  (%.3f%%)\n", bk, bc, float64(bc)/float64(n)*100)
			delete(counts, bk)
		}
	}
}

// Command pkgnode is the worker daemon of a distributed PKG topology:
// one process per node, speaking the internal/wire protocol over TCP.
// It hosts one of three handler modes:
//
//	-mode counter   the classic PKG worker (§V): per-key partial counts
//	                for the tuples routed to it, answering OpCount point
//	                queries with its share of a key;
//	-mode partial   the windowed PARTIAL stage (§IV fully distributed):
//	                accumulates per-(key, window) state for the raw
//	                tuples the engine's flow-controlled wire edge routes
//	                to it, flushes every aggregation period, and
//	                forwards the partials — key-grouped, with bounded
//	                retry — to the final nodes given by -final;
//	-mode final     the windowed final stage: merges flushed partials,
//	                closes windows once the minimum watermark across all
//	                upstream sources passes their end, and serves the
//	                closed (key, window) results to OpResults queries
//	                and Subscribe push sessions.
//
// A three-process windowed wordcount (the `pipeline` experiment's fully
// distributed shape — start finals first, partials dial them):
//
//	pkgnode -mode final -addr 127.0.0.1:7411 -sources 2 &
//	pkgnode -mode final -addr 127.0.0.1:7412 -sources 2 &
//	pkgnode -mode partial -addr 127.0.0.1:7421 -id 0 -nodes 2 \
//	    -final 127.0.0.1:7411,127.0.0.1:7412 &
//	pkgnode -mode partial -addr 127.0.0.1:7422 -id 1 -nodes 2 \
//	    -final 127.0.0.1:7411,127.0.0.1:7412 &
//	PKGNODE_PARTIAL_ADDRS=127.0.0.1:7421,127.0.0.1:7422 \
//	PKGNODE_FINAL_ADDRS=127.0.0.1:7411,127.0.0.1:7412 \
//	    go run ./cmd/pkgbench -exp pipeline -scale quick
//
// A final node's -sources is the number of nodes/instances feeding it:
// the upstream partial stage's parallelism for the engine-side
// remote-final shape, or -nodes for the fully distributed shape. A
// partial node's -sources is the number of engine STREAM sources
// (spouts advertising SourceMark watermarks). The window shape
// (-win-size/-win-slide/-every) and -seed must match the engine
// process's declaration; the defaults match the pipeline experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pkgstream/internal/transport"
	"pkgstream/internal/window"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7411", "TCP listen address")
		mode    = flag.String("mode", "final", "counter | partial | final")
		sources = flag.Int("sources", -1, "final: upstream sources feeding this node (default 4 — the engine partial parallelism; use -nodes for the fully distributed shape); partial: engine stream sources (default 1)")
		winSize = flag.Duration("win-size", time.Second, "partial/final: window size in event time (0: one global window)")
		slide   = flag.Duration("win-slide", 0, "partial/final: window slide (0: tumbling)")
		every   = flag.Int("every", 2000, "partial: flush after this many tuples (the aggregation period T)")
		period  = flag.Duration("period", 0, "partial: also flush on this wall-clock period (0: off)")
		finals  = flag.String("final", "", "partial: comma-separated final node addresses (required)")
		id      = flag.Int("id", 0, "partial: this node's index among the partial nodes")
		nodes   = flag.Int("nodes", 2, "partial: total number of partial nodes")
		seed    = flag.Uint64("seed", 3, "partial: key→final-node hash seed (must match across partial nodes)")
		once    = flag.Bool("once", false, "partial/final: exit once every source has sent its final mark")
		quiet   = flag.Bool("quiet", false, "suppress the per-window result summary at shutdown")
	)
	flag.Parse()

	var (
		worker  *transport.Worker
		final   *window.FinalHandler
		partial *window.PartialHandler
		err     error
	)
	done := func() bool { return false }
	switch *mode {
	case "counter":
		worker, err = transport.ListenWorker(*addr)
	case "partial":
		srcs := *sources
		if srcs < 0 {
			srcs = 1 // one engine stream source, the pipeline experiment's shape
		}
		var plan *window.Plan
		plan, err = window.NewPlan(window.Count{}, window.Spec{
			Size: *winSize, Slide: *slide, EveryTuples: *every, Sources: srcs,
		})
		if err == nil {
			partial, err = plan.NewPartialHandler(window.PartialHandlerOptions{
				ID: *id, Nodes: *nodes, Seed: *seed,
				FinalAddrs: transport.SplitAddrs(*finals),
			})
		}
		if err == nil {
			worker, err = transport.ListenHandler(*addr, partial)
		}
		if err == nil {
			done = partial.Done
			if *period > 0 {
				go func() {
					t := time.NewTicker(*period)
					defer t.Stop()
					for range t.C {
						partial.Tick()
					}
				}()
			}
		}
	case "final":
		srcs := *sources
		if srcs < 0 {
			srcs = 4 // the engine-side partial parallelism of the pipeline experiment
		}
		var plan *window.Plan
		plan, err = window.NewPlan(window.Count{}, window.Spec{Size: *winSize, Slide: *slide})
		if err == nil {
			final, err = plan.NewFinalHandler(srcs)
		}
		if err == nil {
			worker, err = transport.ListenHandler(*addr, final)
		}
		if err == nil {
			done = final.Done
		}
	default:
		err = fmt.Errorf("unknown mode %q (counter | partial | final)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkgnode:", err)
		os.Exit(1)
	}
	fmt.Printf("pkgnode: mode=%s listening on %s\n", *mode, worker.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *once && (final != nil || partial != nil) {
		finished := make(chan struct{})
		go func() {
			for !done() {
				time.Sleep(10 * time.Millisecond)
			}
			close(finished)
		}()
		select {
		case <-sig:
		case <-finished:
		}
	} else {
		<-sig
	}

	_ = worker.Close()
	exit := 0
	switch {
	case partial != nil:
		st := partial.Stats()
		es := partial.EdgeStats()
		// frames counts what arrived on the wire; tuples/frames is the
		// effective inbound batching ratio.
		fmt.Printf("pkgnode: done=%v tuples=%d frames=%d flushes=%d partials-out=%d retries=%d bad=%d\n",
			partial.Done(), partial.Processed(), worker.Frames(), st.Flushes, es.Frames, es.Retries, partial.BadFrames())
		if err := partial.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "pkgnode: forwarding failed:", err)
			exit = 1
		}
	case final != nil:
		st := final.Stats()
		fmt.Printf("pkgnode: done=%v merged=%d windows=%d late=%d bad=%d\n",
			final.Done(), st.Merged, st.WindowsClosed, st.LateDropped, final.BadFrames())
		if !*quiet {
			for _, r := range final.Results() {
				fmt.Printf("  %s [%d, %d) = %d\n", r.Key, r.Start, r.End, r.Value)
			}
		}
	default:
		fmt.Printf("pkgnode: absorbed %d tuples in %d frames over %d keys\n",
			worker.Processed(), worker.Frames(), worker.DistinctKeys())
	}
	os.Exit(exit)
}

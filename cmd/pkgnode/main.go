// Command pkgnode is the worker daemon of a distributed PKG topology:
// one process per node, speaking the internal/wire protocol over TCP.
// It hosts one of two handler modes:
//
//	-mode counter   the classic PKG worker (§V): per-key partial counts
//	                for the tuples routed to it, answering OpCount point
//	                queries with its share of a key;
//	-mode final     the windowed final stage (§IV distributed): merges
//	                the flushed partials of a windowed aggregation,
//	                closes windows once the minimum watermark across all
//	                upstream sources passes their end, and serves the
//	                closed (key, window) results to OpResults queries.
//
// A two-process windowed wordcount (the `pipeline` experiment's shape):
//
//	pkgnode -addr 127.0.0.1:7411 &
//	pkgnode -addr 127.0.0.1:7412 &
//	PKGNODE_ADDRS=127.0.0.1:7411,127.0.0.1:7412 \
//	    go run ./cmd/pkgbench -exp pipeline -scale quick
//
// The final-stage window shape (-win-size/-win-slide) and the upstream
// partial parallelism (-sources) must match the engine process's
// declaration; the defaults match the pipeline experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pkgstream/internal/transport"
	"pkgstream/internal/window"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7411", "TCP listen address")
		mode    = flag.String("mode", "final", "counter | final")
		sources = flag.Int("sources", 4, "final: number of upstream sources (the partial stage's parallelism)")
		winSize = flag.Duration("win-size", time.Second, "final: window size in event time (0: one global window)")
		slide   = flag.Duration("win-slide", 0, "final: window slide (0: tumbling)")
		once    = flag.Bool("once", false, "final: exit once every source has sent its final mark")
		quiet   = flag.Bool("quiet", false, "suppress the per-window result summary at shutdown")
	)
	flag.Parse()

	var (
		worker *transport.Worker
		final  *window.FinalHandler
		err    error
	)
	switch *mode {
	case "counter":
		worker, err = transport.ListenWorker(*addr)
	case "final":
		var plan *window.Plan
		plan, err = window.NewPlan(window.Count{}, window.Spec{Size: *winSize, Slide: *slide})
		if err == nil {
			final, err = plan.NewFinalHandler(*sources)
		}
		if err == nil {
			worker, err = transport.ListenHandler(*addr, final)
		}
	default:
		err = fmt.Errorf("unknown mode %q (counter | final)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkgnode:", err)
		os.Exit(1)
	}
	fmt.Printf("pkgnode: mode=%s listening on %s\n", *mode, worker.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *once && final != nil {
		done := make(chan struct{})
		go func() {
			for !final.Done() {
				time.Sleep(10 * time.Millisecond)
			}
			close(done)
		}()
		select {
		case <-sig:
		case <-done:
		}
	} else {
		<-sig
	}

	_ = worker.Close()
	switch {
	case final != nil:
		st := final.Stats()
		fmt.Printf("pkgnode: done=%v merged=%d windows=%d late=%d bad=%d\n",
			final.Done(), st.Merged, st.WindowsClosed, st.LateDropped, final.BadFrames())
		if !*quiet {
			for _, r := range final.Results() {
				fmt.Printf("  %s [%d, %d) = %d\n", r.Key, r.Start, r.End, r.Value)
			}
		}
	default:
		fmt.Printf("pkgnode: absorbed %d frames over %d keys\n",
			worker.Processed(), worker.DistinctKeys())
	}
}

// Command pkgnode is the worker daemon of a distributed PKG topology:
// one process per node, speaking the internal/wire protocol over TCP.
// It hosts one of three handler modes:
//
//	-mode counter   the classic PKG worker (§V): per-key partial counts
//	                for the tuples routed to it, answering OpCount point
//	                queries with its share of a key;
//	-mode partial   the windowed PARTIAL stage (§IV fully distributed):
//	                accumulates per-(key, window) state for the raw
//	                tuples the engine's flow-controlled wire edge routes
//	                to it, flushes every aggregation period, and
//	                forwards the partials — key-grouped, with bounded
//	                retry — to the final nodes given by -final;
//	-mode final     the windowed final stage: merges flushed partials,
//	                closes windows once the minimum watermark across all
//	                upstream sources passes their end, and serves the
//	                closed (key, window) results to OpResults queries
//	                and Subscribe push sessions.
//
// A three-process windowed wordcount (the `pipeline` experiment's fully
// distributed shape — start finals first, partials dial them):
//
//	pkgnode -mode final -addr 127.0.0.1:7411 -sources 2 &
//	pkgnode -mode final -addr 127.0.0.1:7412 -sources 2 &
//	pkgnode -mode partial -addr 127.0.0.1:7421 -id 0 -nodes 2 \
//	    -final 127.0.0.1:7411,127.0.0.1:7412 &
//	pkgnode -mode partial -addr 127.0.0.1:7422 -id 1 -nodes 2 \
//	    -final 127.0.0.1:7411,127.0.0.1:7412 &
//	PKGNODE_PARTIAL_ADDRS=127.0.0.1:7421,127.0.0.1:7422 \
//	PKGNODE_FINAL_ADDRS=127.0.0.1:7411,127.0.0.1:7412 \
//	    go run ./cmd/pkgbench -exp pipeline -scale quick
//
// A final node's -sources is the number of nodes/instances feeding it:
// the upstream partial stage's parallelism for the engine-side
// remote-final shape, or -nodes for the fully distributed shape. A
// partial node's -sources is the number of engine STREAM sources
// (spouts advertising SourceMark watermarks). The window shape
// (-win-size/-win-slide/-every) and -seed must match the engine
// process's declaration; the defaults match the pipeline experiment.
//
// Diagnostics are structured JSON lines on stderr (log/slog), each
// stamped with the node's role, addr and (partial mode) id; closed
// window results — program output — stay on stdout. With -metrics set,
// the HTTP listener additionally serves /healthz (liveness: 200 while
// the process serves) and /readyz (readiness: 503 once the node is
// done or its forwarder has latched a fatal error, 200 otherwise).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pkgstream/internal/metrics"
	"pkgstream/internal/trace"
	"pkgstream/internal/transport"
	"pkgstream/internal/window"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7411", "TCP listen address")
		mode    = flag.String("mode", "final", "counter | partial | final")
		mAddr   = flag.String("metrics", "", "serve GET /metrics (Prometheus text), /healthz, /readyz and /debug/pprof/* on this address (empty: off)")
		statsEv = flag.Duration("stats-every", 0, "log a JSON stats snapshot on this period (0: off)")
		sources = flag.Int("sources", -1, "final: upstream sources feeding this node (default 4 — the engine partial parallelism; use -nodes for the fully distributed shape); partial: engine stream sources (default 1)")
		winSize = flag.Duration("win-size", time.Second, "partial/final: window size in event time (0: one global window)")
		slide   = flag.Duration("win-slide", 0, "partial/final: window slide (0: tumbling)")
		every   = flag.Int("every", 2000, "partial: flush after this many tuples (the aggregation period T)")
		period  = flag.Duration("period", 0, "partial: also flush on this wall-clock period (0: off)")
		finals  = flag.String("final", "", "partial: comma-separated final node addresses (required)")
		id      = flag.Int("id", 0, "partial: this node's index among the partial nodes")
		nodes   = flag.Int("nodes", 2, "partial: total number of partial nodes")
		seed    = flag.Uint64("seed", 3, "partial: key→final-node hash seed (must match across partial nodes)")
		once    = flag.Bool("once", false, "partial/final: exit once every source has sent its final mark")
		quiet   = flag.Bool("quiet", false, "suppress the per-window result summary at shutdown")
		tRing   = flag.Int("trace-ring", 0, "flight-recorder depth in spans (0: the default, 4096)")
		slow    = flag.Duration("slow-worker", 0, "inject a fixed per-tuple handler delay (fault injection: makes this node a reproducible slow worker; 0: off)")
	)
	flag.Parse()

	// Every diagnostic line carries the node's identity — aggregating
	// the fleet's stderr into one stream stays greppable by node.
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil)).With(
		slog.String("role", *mode), slog.String("addr", *addr))
	if *mode == "partial" {
		logger = logger.With(slog.Int("id", *id))
	}

	// Name this process in trace spans and flight-recorder dumps before
	// anything records: the engine queries them back by OpTrace and
	// groups cross-process traces by these names.
	trace.SetProcess(fmt.Sprintf("pkgnode-%s@%s", *mode, *addr))
	if *tRing > 0 {
		trace.Default.Resize(*tRing)
	}
	// SIGQUIT dumps the flight recorder and keeps serving — the
	// live-inspection idiom (`kill -QUIT <pid>`).
	defer trace.HandleSIGQUIT()()

	var (
		worker  *transport.Worker
		final   *window.FinalHandler
		partial *window.PartialHandler
		err     error
	)
	done := func() bool { return false }
	switch *mode {
	case "counter":
		worker, err = transport.ListenWorkerSlow(*addr, *slow)
	case "partial":
		srcs := *sources
		if srcs < 0 {
			srcs = 1 // one engine stream source, the pipeline experiment's shape
		}
		var plan *window.Plan
		plan, err = window.NewPlan(window.Count{}, window.Spec{
			Size: *winSize, Slide: *slide, EveryTuples: *every, Sources: srcs,
		})
		if err == nil {
			partial, err = plan.NewPartialHandler(window.PartialHandlerOptions{
				ID: *id, Nodes: *nodes, Seed: *seed,
				FinalAddrs: transport.SplitAddrs(*finals),
			})
		}
		if err == nil {
			worker, err = transport.ListenHandler(*addr, transport.Slow(partial, *slow))
		}
		if err == nil {
			done = partial.Done
			if *period > 0 {
				go func() {
					t := time.NewTicker(*period)
					defer t.Stop()
					for range t.C {
						partial.Tick()
					}
				}()
			}
		}
	case "final":
		srcs := *sources
		if srcs < 0 {
			srcs = 4 // the engine-side partial parallelism of the pipeline experiment
		}
		var plan *window.Plan
		plan, err = window.NewPlan(window.Count{}, window.Spec{Size: *winSize, Slide: *slide})
		if err == nil {
			final, err = plan.NewFinalHandler(srcs)
		}
		if err == nil {
			worker, err = transport.ListenHandler(*addr, transport.Slow(final, *slow))
		}
		if err == nil {
			done = final.Done
		}
	default:
		err = fmt.Errorf("unknown mode %q (counter | partial | final)", *mode)
	}
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}

	snap := nodeSnapshot(*mode, worker, partial, final)
	var msrv *metrics.Server
	if *mAddr != "" {
		msrv, err = metrics.ListenAndServeMux(*mAddr, nodeRegistry(worker, partial, final),
			map[string]http.Handler{
				"/debug/pktrace": trace.Handler(trace.Default),
				"/healthz":       healthHandler(),
				"/readyz":        readyHandler(done, partial),
			})
		if err != nil {
			logger.Error("metrics listener failed", "err", err)
			os.Exit(1)
		}
	}
	if *slow > 0 {
		// Loud on purpose: a fault-injected node must never masquerade
		// as a healthy one in aggregated logs.
		logger.Warn("slow-worker fault injection active", "per_tuple", slow.String())
	}
	if msrv != nil {
		logger.Info("listening", "metrics", "http://"+msrv.Addr()+"/metrics")
	} else {
		logger.Info("listening")
	}
	if *statsEv > 0 {
		go func() {
			t := time.NewTicker(*statsEv)
			defer t.Stop()
			for range t.C {
				logger.Info("stats", "snap", snap())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *once && (final != nil || partial != nil) {
		finished := make(chan struct{})
		go func() {
			for !done() {
				time.Sleep(10 * time.Millisecond)
			}
			close(finished)
		}()
		select {
		case <-sig:
		case <-finished:
		}
	} else {
		<-sig
	}

	if msrv != nil {
		// Drain any in-flight scrape before the process goes away — a
		// SIGTERM'd node never strands a scraper mid-response.
		_ = msrv.Close()
	}
	_ = worker.Close()
	exit := 0
	switch {
	case partial != nil:
		st := partial.Stats()
		es := partial.EdgeStats()
		// frames counts what arrived on the wire; tuples/frames is the
		// effective inbound batching ratio.
		logger.Info("shutdown",
			"done", partial.Done(), "tuples", partial.Processed(),
			"frames", worker.Frames(), "flushes", st.Flushes,
			"partials_out", es.Frames, "retries", es.Retries,
			"bad", partial.BadFrames())
		if err := partial.Err(); err != nil {
			logger.Error("forwarding failed", "err", err)
			exit = 1
		}
	case final != nil:
		st := final.Stats()
		logger.Info("shutdown",
			"done", final.Done(), "merged", st.Merged,
			"windows", st.WindowsClosed, "late", st.LateDropped,
			"bad", final.BadFrames())
		if !*quiet {
			for _, r := range final.Results() {
				fmt.Printf("  %s [%d, %d) = %d\n", r.Key, r.Start, r.End, r.Value)
			}
		}
	default:
		logger.Info("shutdown",
			"tuples", worker.Processed(), "frames", worker.Frames(),
			"distinct_keys", worker.DistinctKeys())
	}
	os.Exit(exit)
}

// healthHandler is the liveness probe: 200 as long as the process can
// serve HTTP at all. A node that is done but still serving queries is
// alive — use /readyz to gate traffic.
func healthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// readyHandler is the readiness probe: 503 once the node has absorbed
// its final source marks (done — it will take no new work) or, on a
// partial node, once the forwarder has latched a fatal error; 200
// otherwise. The JSON body carries both facts either way.
func readyHandler(done func() bool, partial *window.PartialHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var ferr error
		if partial != nil {
			ferr = partial.Err()
		}
		body := map[string]any{"ready": ferr == nil && !done(), "done": done()}
		if ferr != nil {
			body["err"] = ferr.Error()
		}
		w.Header().Set("Content-Type", "application/json")
		if !body["ready"].(bool) {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(body)
	})
}

// nodeRegistry builds the node's /metrics registry: wire-edge counters,
// window counters and latency histograms, pull-model — every scrape
// reads the live atomics, nothing is pushed or buffered.
func nodeRegistry(worker *transport.Worker, partial *window.PartialHandler, final *window.FinalHandler) *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Counter("pkgnode_frames_total", "", worker.Frames)
	reg.Gauge("pkgnode_service_time_seconds", "", func() float64 {
		return float64(worker.ServiceNanos()) / 1e9
	})
	switch {
	case partial != nil:
		reg.Counter("pkgnode_tuples_total", "", partial.Processed)
		reg.Counter("pkgnode_bad_frames_total", "", partial.BadFrames)
		reg.Gauge("pkgnode_tuples_per_frame", "", func() float64 {
			if f := worker.Frames(); f > 0 {
				return float64(partial.Processed()) / float64(f)
			}
			return 0
		})
		reg.Gauge("pkgnode_live_partials", "", func() float64 {
			return float64(partial.Stats().Live)
		})
		reg.Gauge("pkgnode_watermark_lag_seconds", "", func() float64 {
			return float64(partial.Stats().WMLagNs) / 1e9
		})
		reg.Counter("pkgnode_flushes_total", "", func() int64 { return partial.Stats().Flushes })
		reg.Counter("pkgnode_partials_out_total", "", func() int64 { return partial.Stats().PartialsOut })
		reg.Counter("pkgnode_edge_frames_total", "", func() int64 { return partial.EdgeStats().Frames })
		reg.Counter("pkgnode_edge_stalls_total", "", func() int64 { return partial.EdgeStats().Stalls })
		reg.Counter("pkgnode_edge_retries_total", "", func() int64 { return partial.EdgeStats().Retries })
		reg.Histogram("pkgnode_latency_seconds", "", partial.LatencyStats)
	case final != nil:
		reg.Counter("pkgnode_tuples_total", "", worker.Processed)
		reg.Counter("pkgnode_bad_frames_total", "", final.BadFrames)
		reg.Counter("pkgnode_merged_total", "", func() int64 { return final.Stats().Merged })
		reg.Counter("pkgnode_windows_closed_total", "", func() int64 { return final.Stats().WindowsClosed })
		reg.Counter("pkgnode_late_dropped_total", "", func() int64 { return final.Stats().LateDropped })
		reg.Gauge("pkgnode_live_partials", "", func() float64 {
			return float64(final.Stats().Live)
		})
		reg.Gauge("pkgnode_watermark_lag_seconds", "", func() float64 {
			return float64(final.Stats().WMLagNs) / 1e9
		})
		reg.Histogram("pkgnode_staleness_seconds", "", final.StalenessStats)
	default: // counter worker
		reg.Counter("pkgnode_tuples_total", "", worker.Processed)
		reg.Gauge("pkgnode_distinct_keys", "", func() float64 {
			return float64(worker.DistinctKeys())
		})
	}
	return reg
}

// nodeSnapshot returns a closure producing the -stats-every snapshot:
// a flat map rendered as one nested JSON object per slog line, grep-
// and jq-friendly (`jq .snap`). Latency quantiles ride alongside the
// edge's credit counters (stalls, cumulative wait, in-flight, queued)
// and the watermark-lag gauge, so one line answers both "how fast" and
// "what is it waiting on".
func nodeSnapshot(mode string, worker *transport.Worker, partial *window.PartialHandler, final *window.FinalHandler) func() map[string]any {
	return func() map[string]any {
		m := map[string]any{"mode": mode, "frames": worker.Frames(),
			"service_us": float64(worker.ServiceNanos()) / 1e3}
		switch {
		case partial != nil:
			st := partial.Stats()
			es := partial.EdgeStats()
			lat := partial.LatencyStats()
			m["tuples"] = partial.Processed()
			m["done"] = partial.Done()
			m["flushes"] = st.Flushes
			m["partials_out"] = st.PartialsOut
			m["live"] = st.Live
			m["wm_lag_ms"] = float64(st.WMLagNs) / 1e6
			m["edge_frames"] = es.Frames
			m["edge_stalls"] = es.Stalls
			m["edge_retries"] = es.Retries
			m["edge_inflight"] = es.InFlight
			m["edge_queue"] = es.Queue
			m["edge_wait_ms"] = float64(es.WaitNs) / 1e6
			if lat.Count > 0 {
				m["lat_count"] = lat.Count
				m["lat_p50_ms"] = float64(lat.Quantile(0.5)) / 1e6
				m["lat_p99_ms"] = float64(lat.Quantile(0.99)) / 1e6
				m["lat_p999_ms"] = float64(lat.Quantile(0.999)) / 1e6
			}
		case final != nil:
			st := final.Stats()
			stale := final.StalenessStats()
			m["tuples"] = worker.Processed()
			m["done"] = final.Done()
			m["merged"] = st.Merged
			m["windows_closed"] = st.WindowsClosed
			m["late_dropped"] = st.LateDropped
			m["live"] = st.Live
			m["wm_lag_ms"] = float64(st.WMLagNs) / 1e6
			if stale.Count > 0 {
				m["stale_count"] = stale.Count
				m["stale_p50_ms"] = float64(stale.Quantile(0.5)) / 1e6
				m["stale_p99_ms"] = float64(stale.Quantile(0.99)) / 1e6
				m["stale_p999_ms"] = float64(stale.Quantile(0.999)) / 1e6
			}
		default:
			m["tuples"] = worker.Processed()
			m["distinct_keys"] = worker.DistinctKeys()
		}
		return m
	}
}

// Command pkgtop is the cluster's top(1): it polls every node's
// OpStats over the wire query channel (no HTTP, no scrape configs),
// merges the fleet through internal/obs, and renders one screen —
// per-node loads, latency quantiles, watermark lag, window backlog and
// edge backpressure, plus the cluster roll-up: merged latency
// histogram, the paper's imbalance fraction over the partial nodes'
// load vector, the slowest node's watermark lag.
//
// Against the pipeline experiment's fully distributed shape:
//
//	pkgtop -partials 127.0.0.1:7521,127.0.0.1:7522 \
//	       -finals 127.0.0.1:7511,127.0.0.1:7512
//
// The address flags fall back to PKGNODE_PARTIAL_ADDRS and
// PKGNODE_FINAL_ADDRS, so the same environment that points pkgbench at
// a running cluster points pkgtop at it too. -json polls once, prints
// a single JSON document on stdout and exits — the CI smoke gates on
// its merged p99 and watermark-lag fields. The merged quantiles are
// computed by histogram merge only (obs.Merge), so they are exactly
// what merging the per-node OpStats replies by hand would give.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"pkgstream/internal/metrics"
	"pkgstream/internal/obs"
	"pkgstream/internal/transport"
)

func main() {
	var (
		partials = flag.String("partials", os.Getenv("PKGNODE_PARTIAL_ADDRS"), "comma-separated partial-node addresses (default $PKGNODE_PARTIAL_ADDRS)")
		finals   = flag.String("finals", os.Getenv("PKGNODE_FINAL_ADDRS"), "comma-separated final-node addresses (default $PKGNODE_FINAL_ADDRS)")
		interval = flag.Duration("interval", 2*time.Second, "refresh period")
		count    = flag.Int("n", 0, "exit after this many refreshes (0: run until interrupted)")
		jsonOnce = flag.Bool("json", false, "poll once, print one JSON document on stdout, exit")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil)).With(slog.String("role", "pkgtop"))
	paddrs := transport.SplitAddrs(*partials)
	faddrs := transport.SplitAddrs(*finals)
	if len(paddrs)+len(faddrs) == 0 {
		logger.Error("no nodes to poll", "hint", "set -partials/-finals or PKGNODE_PARTIAL_ADDRS/PKGNODE_FINAL_ADDRS")
		os.Exit(2)
	}

	poll := func() []obs.Node {
		return append(obs.Poll(paddrs, "partial"), obs.Poll(faddrs, "final")...)
	}

	if *jsonOnce {
		nodes := poll()
		bad := 0
		for _, nd := range nodes {
			if nd.Err != nil {
				bad++
				logger.Error("poll failed", "addr", nd.Addr, "err", nd.Err)
			}
		}
		out, err := json.MarshalIndent(document(nodes), "", "  ")
		if err != nil {
			logger.Error("encoding failed", "err", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		if bad > 0 {
			os.Exit(1)
		}
		return
	}

	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		nodes := poll()
		fmt.Print("\033[H\033[2J")
		render(nodes)
	}
}

// histJSON is a histogram rendered for output: the observation count
// and the three headline quantiles in milliseconds.
type histJSON struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

func quantiles(s metrics.HistSnapshot) *histJSON {
	if s.Count == 0 {
		return nil
	}
	return &histJSON{
		Count:  s.Count,
		P50Ms:  float64(s.Quantile(0.5)) / 1e6,
		P99Ms:  float64(s.Quantile(0.99)) / 1e6,
		P999Ms: float64(s.Quantile(0.999)) / 1e6,
	}
}

// nodeJSON is one node's row in the -json document.
type nodeJSON struct {
	Addr      string    `json:"addr"`
	Role      string    `json:"role"`
	Err       string    `json:"err,omitempty"`
	Done      bool      `json:"done"`
	Count     int64     `json:"count"`
	Lat       *histJSON `json:"lat,omitempty"`
	Stale     *histJSON `json:"stale,omitempty"`
	WMLagNs   int64     `json:"watermark_lag_ns"`
	Backlog   int64     `json:"backlog"`
	ServiceNs int64     `json:"service_ns"`
	Edge      *obs.Edge `json:"edge,omitempty"`
	Credit    *histJSON `json:"credit_wait,omitempty"`
}

type clusterJSON struct {
	Lat        *histJSON `json:"lat,omitempty"`
	Stale      *histJSON `json:"stale,omitempty"`
	CreditWait *histJSON `json:"credit_wait,omitempty"`
	obs.Cluster
}

// document assembles the one-shot JSON document: every node's decoded
// reply plus the merged cluster view.
func document(nodes []obs.Node) map[string]any {
	cl := obs.Merge(nodes)
	rows := make([]nodeJSON, len(nodes))
	for i, nd := range nodes {
		rows[i] = nodeJSON{
			Addr: nd.Addr, Role: nd.Role, Done: nd.Done, Count: nd.Count,
			Lat: quantiles(nd.Lat), Stale: quantiles(nd.Stale),
			WMLagNs:   nd.Telemetry.WatermarkLagNs,
			Backlog:   nd.Telemetry.WindowBacklog,
			ServiceNs: nd.Telemetry.ServiceNs,
			Credit:    quantiles(nd.CreditWait),
		}
		if nd.Err != nil {
			rows[i].Err = nd.Err.Error()
		}
		if t := nd.Telemetry; t.EdgeFrames > 0 {
			e := obs.Edge{Addr: nd.Addr, Role: nd.Role,
				Frames: t.EdgeFrames, Stalls: t.EdgeStalls, WaitNs: t.EdgeWaitNs,
				Ratio:  float64(t.EdgeStalls) / float64(t.EdgeFrames),
				Window: t.EdgeWindow}
			rows[i].Edge = &e
		}
	}
	return map[string]any{
		"nodes": rows,
		"cluster": clusterJSON{
			Lat: quantiles(cl.Lat), Stale: quantiles(cl.Stale),
			CreditWait: quantiles(cl.CreditWait), Cluster: cl,
		},
	}
}

// render prints the top-style screen for one poll.
func render(nodes []obs.Node) {
	cl := obs.Merge(nodes)
	fmt.Printf("pkgtop  %s  nodes=%d  imbalance=%.1f (%.2f%%)  max-wm-lag=%s  backlog=%d\n",
		time.Now().Format("15:04:05"), len(nodes),
		cl.Imbalance, cl.ImbalanceFraction*100,
		time.Duration(cl.MaxWatermarkLagNs).Round(time.Millisecond), cl.Backlog)
	if cl.Lat.Count > 0 {
		fmt.Printf("cluster lat: n=%d p50=%.2fms p99=%.2fms p99.9=%.2fms",
			cl.Lat.Count,
			float64(cl.Lat.Quantile(0.5))/1e6,
			float64(cl.Lat.Quantile(0.99))/1e6,
			float64(cl.Lat.Quantile(0.999))/1e6)
		if cl.Stale.Count > 0 {
			fmt.Printf("   staleness p99=%.2fms", float64(cl.Stale.Quantile(0.99))/1e6)
		}
		fmt.Println()
	}
	fmt.Printf("%-22s %-8s %10s %6s %9s %9s %9s %8s %7s %8s\n",
		"ADDR", "ROLE", "COUNT", "DONE", "P99 ms", "WM LAG", "BACKLOG", "INFLIGHT", "STALL%", "SVC µs")
	for _, nd := range nodes {
		if nd.Err != nil {
			fmt.Printf("%-22s %-8s %s\n", nd.Addr, nd.Role, "UNREACHABLE: "+nd.Err.Error())
			continue
		}
		p99 := "-"
		if h := nd.Lat; h.Count == 0 {
			h = nd.Stale
			if h.Count > 0 {
				p99 = fmt.Sprintf("%.2f", float64(h.Quantile(0.99))/1e6)
			}
		} else {
			p99 = fmt.Sprintf("%.2f", float64(h.Quantile(0.99))/1e6)
		}
		t := nd.Telemetry
		stall := "-"
		if t.EdgeFrames > 0 {
			stall = fmt.Sprintf("%.2f", float64(t.EdgeStalls)/float64(t.EdgeFrames)*100)
		}
		svc := "-"
		if t.ServiceNs > 0 {
			svc = fmt.Sprintf("%.1f", float64(t.ServiceNs)/1e3)
		}
		fmt.Printf("%-22s %-8s %10d %6v %9s %9s %9d %8d %7s %8s\n",
			nd.Addr, nd.Role, nd.Count, nd.Done, p99,
			time.Duration(t.WatermarkLagNs).Round(time.Millisecond),
			t.WindowBacklog, t.EdgeInFlight, stall, svc)
	}
	for _, e := range cl.Edges {
		win := ""
		if e.Window > 0 {
			win = fmt.Sprintf(" window=%d", e.Window)
		}
		fmt.Printf("edge %-22s frames=%d stalls=%d wait=%s backpressure=%.2f%%%s\n",
			e.Addr, e.Frames, e.Stalls,
			time.Duration(e.WaitNs).Round(time.Microsecond), e.Ratio*100, win)
	}
}

// Command pkgbench regenerates every table and figure of the paper's
// evaluation (plus the ablations) from the simulation and cluster
// harnesses. Run it with no arguments for the full suite at default
// scale, or pick experiments and scales:
//
//	pkgbench -list
//	pkgbench -exp table2,fig5a -scale quick
//	pkgbench -exp all -scale full -seed 7 -csv out/
//
// Scales: quick (seconds), default (minutes), full (WP at its true 22M
// messages). Every run is deterministic in (-seed, -scale).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pkgstream/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		scaleFlag = flag.String("scale", "default", "quick | default | full")
		seedFlag  = flag.Uint64("seed", 42, "random seed (runs are deterministic per seed)")
		csvFlag   = flag.String("csv", "", "also write each table as CSV into this directory")
		listFlag  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *listFlag {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry {
			fmt.Printf("  %-14s %-12s %s\n", e.Name, e.Paper, e.Description)
		}
		return
	}

	scale, err := experiments.ScaleByName(*scaleFlag)
	if err != nil {
		fatal(err)
	}

	var selected []experiments.Experiment
	if *expFlag == "all" || *expFlag == "" {
		selected = experiments.Registry
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			e, err := experiments.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	if *csvFlag != "" {
		if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("pkgbench: scale=%s seed=%d experiments=%d\n\n", scale.Name, *seedFlag, len(selected))
	suiteStart := time.Now()
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(scale, *seedFlag)
		for i, tb := range tables {
			fmt.Println(tb.String())
			if *csvFlag != "" {
				name := e.Name
				if len(tables) > 1 {
					name = fmt.Sprintf("%s-%d", e.Name, i)
				}
				path := filepath.Join(*csvFlag, name+".csv")
				if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Printf("[%s: %s in %v]\n\n", e.Name, e.Paper, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("pkgbench: done in %v\n", time.Since(suiteStart).Round(time.Millisecond))
}

// fatal logs the error as a structured diagnostic on stderr — the
// experiment tables themselves are program output and stay on stdout.
func fatal(err error) {
	slog.New(slog.NewJSONHandler(os.Stderr, nil)).
		Error("pkgbench failed", "err", err)
	os.Exit(1)
}

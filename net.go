package pkgstream

import (
	"time"

	"pkgstream/internal/rebalance"
	"pkgstream/internal/transport"
	"pkgstream/internal/wire"
)

// Network transport surface: PKG across real TCP boundaries, plus the
// rebalancing baseline discussed (and rejected) in the paper's §II.B.

// NetWorker is a TCP server holding partial counts for routed keys.
type NetWorker = transport.Worker

// NetSource is a TCP client routing keys to workers with a partitioner
// driven by its own local load estimate.
type NetSource = transport.Source

// NetMode selects the network source's partitioning strategy.
type NetMode = transport.Mode

// Network partitioning modes.
const (
	// NetPKG routes with partial key grouping on a local load estimate.
	NetPKG = transport.ModePKG
	// NetKG routes with a single hash.
	NetKG = transport.ModeKG
	// NetSG routes round-robin.
	NetSG = transport.ModeSG
	// NetDChoices routes with frequency-aware PKG: the source's own
	// Space-Saving sketch widens hot keys beyond two workers.
	NetDChoices = transport.ModeDChoices
	// NetWChoices spreads keys above the hot threshold over all workers.
	NetWChoices = transport.ModeWChoices
)

// NetSourceOptions is the fully parameterized dial configuration —
// including SketchPath, which checkpoints the frequency-aware modes'
// sketch across source restarts (restored on dial, written on Close).
type NetSourceOptions = transport.SourceOptions

// NetHandler is the pluggable processing side of a TCP worker; every
// decoded wire frame dispatches to it (calls are serialized).
type NetHandler = transport.Handler

// NetWindowResult is one closed (key, window) pair drained from a
// remote windowed final node.
type NetWindowResult = wire.WindowResult

// NetPartial is the wire form of one flushed (key, window) partial
// accumulator — what NetSource.SendPartial ships to a final host.
type NetPartial = wire.Partial

// NetTuple is the wire form of a stream tuple — what
// NetSource.SendTuple ships to a worker or partial host.
type NetTuple = wire.Tuple

// DialNetSourceOpts dials a source with full options (sketch
// checkpointing, explicit source ID, hot-key knobs).
func DialNetSourceOpts(addrs []string, o NetSourceOptions) (*NetSource, error) {
	return transport.DialSourceOpts(addrs, o)
}

// ListenNetHandler starts a TCP worker dispatching to a custom handler
// — e.g. a WindowFinalHost, making the node a windowed final stage.
func ListenNetHandler(addr string, h NetHandler) (*NetWorker, error) {
	return transport.ListenHandler(addr, h)
}

// NetDrainResults polls a windowed final node until every source has
// finished, then pages out its closed (key, window) results.
func NetDrainResults(addr string, timeout time.Duration) ([]NetWindowResult, error) {
	return transport.DrainResults(addr, timeout)
}

// NetSubscribeResults registers with a windowed final node for PUSH
// delivery and accumulates the pushed closed-window results until the
// node reports done — the drain-free replacement for NetDrainResults:
// results arrive the moment windows close, with no poll interval in
// the latency path.
func NetSubscribeResults(addr string, timeout time.Duration) ([]NetWindowResult, error) {
	return transport.SubscribeResults(addr, timeout)
}

// ListenNetWorker starts a worker on addr ("127.0.0.1:0" for ephemeral).
func ListenNetWorker(addr string) (*NetWorker, error) {
	return transport.ListenWorker(addr)
}

// DialNetSource connects a source to the given worker addresses with
// the paper's two hash choices. All sources of a stream must share the
// seed (their hash functions must agree); start decorrelates shuffle
// round-robins.
func DialNetSource(addrs []string, mode NetMode, seed uint64, start int) (*NetSource, error) {
	return transport.DialSource(addrs, mode, seed, start)
}

// DialNetSourceD is DialNetSource generalized to d hash choices for PKG
// ("Greedy-d"); point queries then probe a key's d candidates.
func DialNetSourceD(addrs []string, mode NetMode, seed uint64, start, d int) (*NetSource, error) {
	return transport.DialSourceD(addrs, mode, seed, start, d)
}

// NetQuery answers a distributed point query: it probes the listed
// candidate workers (the source's d hash choices under PKG — two for
// DialNetSource, d for DialNetSourceD) and sums their partial counts.
func NetQuery(addrs []string, key uint64, candidates []int) (int64, error) {
	return transport.Query(addrs, key, candidates)
}

// RebalancingKG is key grouping with Flux-style periodic key migration —
// the §II.B alternative, for comparison against PKG.
type RebalancingKG = rebalance.Partitioner

// RebalanceConfig parameterizes RebalancingKG.
type RebalanceConfig = rebalance.Config

// NewRebalancingKG returns a rebalancing key-grouping partitioner.
func NewRebalancingKG(cfg RebalanceConfig) (*RebalancingKG, error) {
	return rebalance.New(cfg)
}

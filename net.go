package pkgstream

import (
	"pkgstream/internal/rebalance"
	"pkgstream/internal/transport"
)

// Network transport surface: PKG across real TCP boundaries, plus the
// rebalancing baseline discussed (and rejected) in the paper's §II.B.

// NetWorker is a TCP server holding partial counts for routed keys.
type NetWorker = transport.Worker

// NetSource is a TCP client routing keys to workers with a partitioner
// driven by its own local load estimate.
type NetSource = transport.Source

// NetMode selects the network source's partitioning strategy.
type NetMode = transport.Mode

// Network partitioning modes.
const (
	// NetPKG routes with partial key grouping on a local load estimate.
	NetPKG = transport.ModePKG
	// NetKG routes with a single hash.
	NetKG = transport.ModeKG
	// NetSG routes round-robin.
	NetSG = transport.ModeSG
)

// ListenNetWorker starts a worker on addr ("127.0.0.1:0" for ephemeral).
func ListenNetWorker(addr string) (*NetWorker, error) {
	return transport.ListenWorker(addr)
}

// DialNetSource connects a source to the given worker addresses with
// the paper's two hash choices. All sources of a stream must share the
// seed (their hash functions must agree); start decorrelates shuffle
// round-robins.
func DialNetSource(addrs []string, mode NetMode, seed uint64, start int) (*NetSource, error) {
	return transport.DialSource(addrs, mode, seed, start)
}

// DialNetSourceD is DialNetSource generalized to d hash choices for PKG
// ("Greedy-d"); point queries then probe a key's d candidates.
func DialNetSourceD(addrs []string, mode NetMode, seed uint64, start, d int) (*NetSource, error) {
	return transport.DialSourceD(addrs, mode, seed, start, d)
}

// NetQuery answers a distributed point query: it probes the listed
// candidate workers (the source's d hash choices under PKG — two for
// DialNetSource, d for DialNetSourceD) and sums their partial counts.
func NetQuery(addrs []string, key uint64, candidates []int) (int64, error) {
	return transport.Query(addrs, key, candidates)
}

// RebalancingKG is key grouping with Flux-style periodic key migration —
// the §II.B alternative, for comparison against PKG.
type RebalancingKG = rebalance.Partitioner

// RebalanceConfig parameterizes RebalancingKG.
type RebalanceConfig = rebalance.Config

// NewRebalancingKG returns a rebalancing key-grouping partitioner.
func NewRebalancingKG(cfg RebalanceConfig) (*RebalancingKG, error) {
	return rebalance.New(cfg)
}

package pkgstream_test

import (
	"testing"

	"pkgstream"
)

// These tests exercise the public facade exactly as a downstream user
// would, mirroring the README quick start.

func TestQuickStartPartitioner(t *testing.T) {
	const workers = 10
	view := pkgstream.NewLoad(workers)
	p := pkgstream.NewPKG(workers, 2, 42, view)

	spec := pkgstream.Wikipedia.WithCap(50_000)
	s := spec.Open(1)
	truth := pkgstream.NewLoad(workers)
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		w := p.Route(m.Key)
		view.Add(w)
		truth.Add(w)
	}
	if truth.Total() != spec.Messages {
		t.Fatalf("routed %d messages, want %d", truth.Total(), spec.Messages)
	}
	if f := truth.ImbalanceFraction(); f > 1e-3 {
		t.Fatalf("PKG imbalance fraction %v on WP at W=10; want near-perfect", f)
	}

	// Hashing on the same stream is orders worse.
	kg := pkgstream.NewKeyGrouping(workers, 42)
	kgLoad := pkgstream.NewLoad(workers)
	s = spec.Open(1)
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		kgLoad.Add(kg.Route(m.Key))
	}
	if kgLoad.ImbalanceFraction() < 10*truth.ImbalanceFraction() {
		t.Fatalf("KG fraction %v not ≫ PKG %v",
			kgLoad.ImbalanceFraction(), truth.ImbalanceFraction())
	}
}

func TestFacadeSimulate(t *testing.T) {
	res := pkgstream.Simulate(pkgstream.Cashtags.WithCap(60_000), pkgstream.SimOptions{
		Workers: 8, Sources: 5,
		Method: pkgstream.SimPKG, Info: pkgstream.InfoLocal,
		Seed: 7,
	})
	if res.Messages != 60_000 {
		t.Fatalf("Messages = %d", res.Messages)
	}
	if res.Label != "L5" {
		t.Fatalf("Label = %q", res.Label)
	}
}

func TestFacadeEngineTopology(t *testing.T) {
	top, out, err := pkgstream.BuildWordCount(pkgstream.WordCountConfig{
		Words: 5000, Vocab: 500, P1: 0.1,
		Sources: 2, Workers: 4, FlushEvery: 250, K: 5,
		Grouping: pkgstream.WordCountPKG, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := pkgstream.NewRuntime(top, pkgstream.RuntimeOptions{QueueSize: 128})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if out.TotalWords != 10_000 {
		t.Fatalf("TotalWords = %d", out.TotalWords)
	}
	if len(out.Top) != 5 || out.Top[0].Word != "w1" {
		t.Fatalf("Top = %+v", out.Top)
	}
}

func TestFacadeCustomTopology(t *testing.T) {
	b := pkgstream.NewTopologyBuilder("custom", 1)
	b.AddSpout("src", func() pkgstream.Spout { return &countSpout{n: 1000} }, 1)
	var executed int64
	b.AddBolt("sink", func() pkgstream.Bolt {
		return pkgstream.BoltFunc(func(tu pkgstream.Tuple, _ pkgstream.Emitter) {
			executed++ // single instance: no race
		})
	}, 1).Input("src", pkgstream.GroupPartial())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := pkgstream.NewRuntime(top, pkgstream.RuntimeOptions{}).Run(); err != nil {
		t.Fatal(err)
	}
	if executed != 1000 {
		t.Fatalf("executed %d", executed)
	}
}

type countSpout struct{ n, i int }

func (s *countSpout) Open(*pkgstream.Context) {}
func (s *countSpout) Close()                  {}
func (s *countSpout) Next(out pkgstream.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	out.Emit(pkgstream.Tuple{Key: "k"})
	s.i++
	return true
}

func TestFacadeHeavyHitters(t *testing.T) {
	hh := pkgstream.NewHeavyHitters(5, 64, pkgstream.HHByPKG, 9)
	spec := pkgstream.Synthetic2.WithCap(30_000)
	s := spec.Open(2)
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		hh.Update(m.Key)
	}
	top := hh.TopK(64, 3)
	if len(top) != 3 {
		t.Fatalf("TopK = %d entries", len(top))
	}
	if hh.ProbeCount(top[0].Item) > 2 {
		t.Fatal("PKG heavy hitters should probe ≤ 2 workers")
	}
}

func TestFacadeCluster(t *testing.T) {
	p := pkgstream.ClusterDefaults(pkgstream.ClusterPKG)
	p.Spec = pkgstream.Wikipedia.WithCap(100_000)
	p.Duration, p.Warmup = 5, 1
	r, err := pkgstream.RunCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 {
		t.Fatalf("throughput %v", r.Throughput)
	}
}

func TestFacadeMeasureAndJaccard(t *testing.T) {
	st := pkgstream.MeasureStream(pkgstream.Cashtags.WithCap(40_000).Open(1), 0)
	if st.Messages != 40_000 || st.P1 <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if j := pkgstream.Jaccard([]int32{1, 2}, []int32{1, 3}); j <= 0 || j >= 1 {
		t.Fatalf("Jaccard = %v", j)
	}
	if _, err := pkgstream.DatasetBySymbol("WP"); err != nil {
		t.Fatal(err)
	}
	if got := len(pkgstream.Datasets()); got != 8 {
		t.Fatalf("Datasets() = %d", got)
	}
}

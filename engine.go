package pkgstream

import (
	"pkgstream/internal/engine"
	"pkgstream/internal/window"
)

// Storm-like engine surface: build a Topology with NewTopologyBuilder,
// choose groupings per edge (GroupPartial is the paper's contribution as
// a drop-in grouping), and execute it with NewRuntime. Each component
// instance (PEI) runs on its own goroutine behind a bounded queue.

// Tuple is the unit of data flowing through a topology.
type Tuple = engine.Tuple

// Values is a tuple payload.
type Values = engine.Values

// Spout is a stream source.
type Spout = engine.Spout

// Bolt is a stream operator.
type Bolt = engine.Bolt

// BoltFunc adapts a function to Bolt.
type BoltFunc = engine.BoltFunc

// Emitter sends tuples downstream (blocking on full queues).
type Emitter = engine.Emitter

// Context identifies a component instance.
type Context = engine.Context

// Topology is a validated dataflow DAG.
type Topology = engine.Topology

// TopologyBuilder assembles a Topology.
type TopologyBuilder = engine.Builder

// BoltDecl is a bolt under construction (chain Input/TickEvery).
type BoltDecl = engine.BoltDecl

// Runtime executes a Topology.
type Runtime = engine.Runtime

// RuntimeOptions configures a Runtime.
type RuntimeOptions = engine.Options

// TopologyStats is a snapshot of per-instance counters.
type TopologyStats = engine.Stats

// Grouping routes one tuple to a downstream instance.
type Grouping = engine.Grouping

// GroupingFactory builds one Grouping per emitting instance and edge.
type GroupingFactory = engine.GroupingFactory

// NewTopologyBuilder starts a topology definition; seed drives all
// grouping hash functions.
func NewTopologyBuilder(name string, seed uint64) *TopologyBuilder {
	return engine.NewBuilder(name, seed)
}

// NewRuntime prepares a runtime for a built topology.
func NewRuntime(top *Topology, opts RuntimeOptions) *Runtime {
	return engine.NewRuntime(top, opts)
}

// GroupRouter exposes a coordination-free strategy of the shared
// routing core as an engine grouping: one router per emitting instance,
// with a per-emitter load view for PKG. d is the number of choices for
// StrategyPKG and is ignored otherwise. Only StrategyKG, StrategySG and
// StrategyPKG are accepted: the table-keeping strategies (PoTC,
// OnGreedy, OffGreedy) need state shared across emitters — exactly the
// coordination PKG removes — and panic at construction.
func GroupRouter(s Strategy, d int) GroupingFactory { return engine.Router(s, d) }

// GroupPartial is PARTIAL KEY GROUPING as an engine grouping: two hash
// choices, per-emitter local load estimation, no coordination.
func GroupPartial() GroupingFactory { return engine.Partial() }

// GroupPartialN is Greedy-d partial key grouping with d choices.
func GroupPartialN(d int) GroupingFactory { return engine.PartialN(d) }

// GroupByKey is key grouping (fields grouping): one instance per key.
func GroupByKey() GroupingFactory { return engine.Key() }

// GroupShuffle is round-robin shuffle grouping.
func GroupShuffle() GroupingFactory { return engine.Shuffle() }

// GroupGlobal sends every tuple to instance 0 (single aggregator).
func GroupGlobal() GroupingFactory { return engine.Global() }

// GroupBroadcast delivers every tuple to every instance.
func GroupBroadcast() GroupingFactory { return engine.Broadcast() }

// Windowed two-phase aggregation (internal/window): because partial key
// grouping splits each key over two workers, every PKG topology needs a
// downstream phase that periodically merges partial results — the
// aggregation period T trades worker memory against throughput (§V Q4,
// Figure 5(b)). Declare one with
// TopologyBuilder.WindowedAggregate(name, plan, parallelism), which
// expands into a partial stage name+".partial" and a merging final
// stage name.

// WindowSpec configures window assignment (tumbling/sliding/global) and
// flushing (period T, tuple count, lateness, memory cap) for a windowed
// aggregation. The zero value is a single global window flushed at
// stream end.
type WindowSpec = window.Spec

// WindowAggregator is the init/accumulate/merge/emit contract of a
// two-phase aggregation.
type WindowAggregator = window.Aggregator

// WindowCombiner is the fast path for commutative int64 counters.
type WindowCombiner = window.Combiner

// WindowPlan binds a WindowAggregator to a WindowSpec; it is the
// WindowedOp a TopologyBuilder.WindowedAggregate declaration consumes.
// Build a fresh plan per topology run.
type WindowPlan = window.Plan

// WindowResult is the payload (Values[0]) of a final-stage output
// tuple: one closed (key, window) pair and its aggregated value.
type WindowResult = window.Result

// WindowedOp is the engine-side contract WindowPlan implements.
type WindowedOp = engine.WindowedOp

// WindowStats are the per-instance windowing counters surfaced through
// TopologyStats.Windows (and folded by TopologyStats.WindowTotals).
type WindowStats = engine.WindowStats

// NewWindowPlan validates spec and binds it to the aggregator.
func NewWindowPlan(agg WindowAggregator, spec WindowSpec) (*WindowPlan, error) {
	return window.NewPlan(agg, spec)
}

// MustWindowPlan is NewWindowPlan that panics on error, for fluent
// topology construction.
func MustWindowPlan(agg WindowAggregator, spec WindowSpec) *WindowPlan {
	return window.MustPlan(agg, spec)
}

// CountAggregator counts tuples per (key, window) — a WindowCombiner.
func CountAggregator() WindowAggregator { return window.Count{} }

// SumAggregator sums the integer tuple field at the given Values index
// per (key, window) — a WindowCombiner.
func SumAggregator(field int) WindowAggregator { return window.Sum{Field: field} }

// Distributed windowed aggregation (internal/wire + internal/window's
// remote half): the final stage of a WindowedAggregate can live in
// another process behind the TCP wire protocol — partials and
// watermarks are serialized frames, and the remote node hosts the
// merge. See README "Running distributed" and cmd/pkgnode.

// WindowedOption customizes a WindowedAggregate declaration.
type WindowedOption = engine.WindowedOption

// WindowRemoteFinal replaces the aggregation's in-process final stage
// with a forwarder shipping partials (key-grouped) and watermarks to
// remote final nodes — pkgnode processes, or ListenNetFinal listeners.
func WindowRemoteFinal(addrs ...string) WindowedOption { return engine.RemoteFinal(addrs...) }

// WindowRemotePartial runs the aggregation's PARTIAL stage on remote
// nodes (`pkgnode -mode partial`, or NewWindowPartialHost listeners):
// raw tuples cross a credit-flow-controlled wire edge — a slow node
// stalls the spout exactly like a full local queue, never ballooning a
// TCP buffer — and the nodes forward their flushed partials to their
// configured final nodes. The spec must use SourceMark watermarks
// (WindowSpec.Sources ≥ 1).
func WindowRemotePartial(addrs ...string) WindowedOption { return engine.RemotePartial(addrs...) }

// RemotePartialConfig carries the explicit knobs of the spout→partial
// wire edge: routing strategy, credit window (in tuples), and the
// tuple-batching parameters (batch size, batch bytes, linger).
type RemotePartialConfig = engine.RemotePartialConfig

// WindowRemotePartialOpts is WindowRemotePartial with explicit edge
// configuration.
func WindowRemotePartialOpts(cfg RemotePartialConfig) WindowedOption {
	return engine.RemotePartialOpts(cfg)
}

// EdgeStats are the flow counters of one remote topology edge: tuples
// and frames shipped (their ratio is the effective batching depth),
// credit stalls (remote backpressure made visible), reconnect retries
// and exhausted failures. Per-component snapshots live in
// TopologyStats.Edges.
type EdgeStats = engine.EdgeStats

// EdgeError is the typed failure a topology run returns when a remote
// edge exhausted its bounded retries — errors.As it out of Run's error
// to learn which component lost which nodes.
type EdgeError = engine.EdgeError

// LatencyStats is one end-to-end latency histogram snapshot:
// constant-memory and mergeable across instances, with Quantile(p) for
// p50/p99/p999 and Sub for interval rates. Per-series snapshots live in
// TopologyStats.Latency — a sink component's name carries emit→sink
// delivery latency, a windowed partial stage's name carries
// emit→arrival latency, and "<final>.staleness" carries window-close
// staleness. Sampling is governed by RuntimeOptions.LatencySample, and
// RuntimeOptions.MetricsAddr serves every series over GET /metrics.
type LatencyStats = engine.LatencyStats

// WindowStateCodec is the optional WindowAggregator extension non-
// Combiner aggregations need to cross a process boundary: partial
// accumulators must have a wire form.
type WindowStateCodec = window.StateCodec

// WindowFinalHost hosts a windowed final stage behind a TCP worker:
// partials merge, windows close on the minimum watermark across
// sources, closed results serve point queries. Pass it to
// ListenNetFinal (it is the transport handler).
type WindowFinalHost = window.FinalHandler

// NewWindowFinalHost builds the remote-final host for a plan. sources
// is the number of upstream mark-emitting sources — the partial stage's
// parallelism in a WindowRemoteFinal topology, or the partial NODE
// count in a WindowRemotePartial one.
func NewWindowFinalHost(plan *WindowPlan, sources int) (*WindowFinalHost, error) {
	return plan.NewFinalHandler(sources)
}

// WindowPartialHost hosts a windowed PARTIAL stage behind a TCP
// worker: tuples accumulate per (key, window), flushes follow the
// plan's aggregation period, and partials forward — with bounded-
// backoff retry — to the final nodes. Pass it to ListenNetHandler.
type WindowPartialHost = window.PartialHandler

// WindowPartialHostOptions configures a hosted partial stage: this
// node's index, the partial node count, the final node addresses and
// the shared key→final hash seed.
type WindowPartialHostOptions = window.PartialHandlerOptions

// NewWindowPartialHost builds the remote-partial host for a plan — the
// engine room of `pkgnode -mode partial`. The plan must use SourceMark
// watermarks (WindowSpec.Sources ≥ 1), and the final nodes must be
// listening (they are dialed here).
func NewWindowPartialHost(plan *WindowPlan, o WindowPartialHostOptions) (*WindowPartialHost, error) {
	return plan.NewPartialHandler(o)
}

// SourceMark returns the control tuple a spout emits to advertise that
// source `source` will never again emit a tuple with event time below
// wm. With GroupSourceAware on the spout→partial edge and
// WindowSpec.Sources set, the aggregation's watermark becomes the exact
// minimum across sources — no Lateness sizing for skewed clocks.
func SourceMark(source int, wm int64) Tuple { return window.SourceMark(source, wm) }

// GroupSourceAware wraps a spout→partial grouping so SourceMark tuples
// broadcast to every partial instance while data routes through g
// unchanged.
func GroupSourceAware(g GroupingFactory) GroupingFactory { return window.SourceAware(g) }

module pkgstream

go 1.24

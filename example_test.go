package pkgstream_test

import (
	"fmt"

	"pkgstream"
)

// The core loop: route a skewed stream with PKG, charging the source's
// local load estimate. Key splitting keeps every key on at most two
// workers while the load stays near-perfectly balanced.
func ExampleNewPKG() {
	const workers = 4
	view := pkgstream.NewLoad(workers) // this source's local estimate
	p := pkgstream.NewPKG(workers, 2, 7, view)

	// A tiny skewed stream: key 1 is hot.
	stream := []uint64{1, 1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1}
	for _, key := range stream {
		w := p.Route(key)
		view.Add(w)
	}
	// The hot key's 6 messages alternate between its two candidates.
	fmt.Println("near-perfect:", view.Imbalance() <= 2)
	fmt.Println("candidates of hot key:", len(p.Candidates(1)))
	// Output:
	// near-perfect: true
	// candidates of hot key: 2
}

// Key grouping sends every occurrence of a key to the same worker —
// simple, stateless, and skew-blind.
func ExampleNewKeyGrouping() {
	p := pkgstream.NewKeyGrouping(4, 7)
	a, b := p.Route(42), p.Route(42)
	fmt.Println("stable:", a == b)
	// Output:
	// stable: true
}

// Simulate reproduces the paper's §V methodology on a synthetic dataset:
// here, partial key grouping with 5 sources doing local load estimation
// on a Cashtags-shaped drifting stream.
func ExampleSimulate() {
	res := pkgstream.Simulate(pkgstream.Cashtags.WithCap(50_000), pkgstream.SimOptions{
		Workers: 8,
		Sources: 5,
		Method:  pkgstream.SimPKG,
		Info:    pkgstream.InfoLocal,
		Seed:    42,
	})
	fmt.Println("label:", res.Label)
	fmt.Println("messages:", res.Messages)
	fmt.Println("balanced:", res.AvgImbalanceFraction < 0.001)
	// Output:
	// label: L5
	// messages: 50000
	// balanced: true
}

// MeasureStream regenerates Table I statistics for a dataset.
func ExampleMeasureStream() {
	spec := pkgstream.Synthetic2.WithCap(100_000)
	st := pkgstream.MeasureStream(spec.Open(42), 0)
	fmt.Println("messages:", st.Messages)
	fmt.Printf("p1 close to paper: %v\n", st.P1 > 0.06 && st.P1 < 0.08)
	// Output:
	// messages: 100000
	// p1 close to paper: true
}

// A SpaceSaving sketch never underestimates and bounds its error by N/k.
func ExampleNewSpaceSaving() {
	s := pkgstream.NewSpaceSaving(2)
	for i := 0; i < 10; i++ {
		s.Update(1)
	}
	s.Update(2)
	top := s.Top(1)
	fmt.Println("top item:", top[0].Item, "count:", top[0].Count)
	// Output:
	// top item: 1 count: 10
}

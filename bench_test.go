package pkgstream_test

// One benchmark per table and figure of the paper's evaluation: each
// executes the corresponding reproduction end to end at a reduced scale
// (cmd/pkgbench prints the full tables; these make `go test -bench=.`
// exercise every experiment and report its headline metric), plus
// micro-benchmarks of the routing hot path.

import (
	"strconv"
	"testing"
	"time"

	"pkgstream"
	"pkgstream/internal/experiments"
)

// benchScale keeps each experiment iteration in the sub-second to
// few-second range.
var benchScale = experiments.Scale{
	Name:            "bench",
	MessageCap:      100_000,
	ClusterSpecCap:  150_000,
	ClusterDuration: 5,
	Fig5bPeriods:    []float64{2, 5},
}

// runExperiment executes a registered experiment b.N times and returns
// the last result for metric extraction.
func runExperiment(b *testing.B, name string) []experiments.Table {
	b.Helper()
	e, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables = e.Run(benchScale, 42)
	}
	if len(tables) == 0 {
		b.Fatal("experiment produced no tables")
	}
	return tables
}

// cellMetric parses a table cell as a float for b.ReportMetric.
func cellMetric(b *testing.B, t experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkTable1DatasetStats(b *testing.B) {
	runExperiment(b, "table1")
}

func BenchmarkTable2AvgImbalance(b *testing.B) {
	tables := runExperiment(b, "table2")
	// Row 0 is PKG; column 2 is W=10 on WP.
	b.ReportMetric(cellMetric(b, tables[0], 0, 2), "pkg-imbalance-w10")
	b.ReportMetric(cellMetric(b, tables[0], 4, 2), "hash-imbalance-w10")
}

func BenchmarkFig2LocalVsGlobal(b *testing.B) {
	tables := runExperiment(b, "fig2")
	// WP table (index 1): G and L5 at W=10.
	b.ReportMetric(cellMetric(b, tables[1], 1, 2), "G-fraction-w10")
	b.ReportMetric(cellMetric(b, tables[1], 2, 2), "L5-fraction-w10")
}

func BenchmarkFig3TimeSeries(b *testing.B) {
	runExperiment(b, "fig3")
}

func BenchmarkFig4SkewedSources(b *testing.B) {
	runExperiment(b, "fig4")
}

func BenchmarkFig5aThroughput(b *testing.B) {
	tables := runExperiment(b, "fig5a")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cellMetric(b, t, last, 1), "pkg-thr-at-1ms")
	b.ReportMetric(cellMetric(b, t, last, 3), "kg-thr-at-1ms")
}

func BenchmarkFig5bMemory(b *testing.B) {
	tables := runExperiment(b, "fig5b")
	t := tables[0]
	// Row 1/2 are PKG/SG at the shortest period.
	b.ReportMetric(cellMetric(b, t, 1, 3), "pkg-counters")
	b.ReportMetric(cellMetric(b, t, 2, 3), "sg-counters")
}

func BenchmarkJaccardGvsL(b *testing.B) {
	tables := runExperiment(b, "jaccard")
	b.ReportMetric(cellMetric(b, tables[0], 0, 1), "jaccard")
}

func BenchmarkMemoryFootprint(b *testing.B) {
	runExperiment(b, "memory")
}

func BenchmarkAblationChoicesD(b *testing.B) {
	runExperiment(b, "ablation-d")
}

func BenchmarkAblationProbing(b *testing.B) {
	runExperiment(b, "ablation-probe")
}

func BenchmarkTheoremBounds(b *testing.B) {
	runExperiment(b, "theory")
}

// Micro-benchmarks of the public routing hot path.

func BenchmarkRoutePKG(b *testing.B) {
	view := pkgstream.NewLoad(100)
	p := pkgstream.NewPKG(100, 2, 1, view)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view.Add(p.Route(uint64(i) * 0x9e3779b97f4a7c15))
	}
}

func BenchmarkRouteKeyGrouping(b *testing.B) {
	p := pkgstream.NewKeyGrouping(100, 1)
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += p.Route(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

func BenchmarkSimulateWPQuick(b *testing.B) {
	spec := pkgstream.Wikipedia.WithCap(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := pkgstream.Simulate(spec, pkgstream.SimOptions{
			Workers: 10, Sources: 5,
			Method: pkgstream.SimPKG, Info: pkgstream.InfoLocal,
			Seed: uint64(i),
		})
		if res.Messages == 0 {
			b.Fatal("empty run")
		}
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// slidingSpout emits integer-keyed tuples with a logical clock for the
// windowed end-to-end benchmark.
type slidingSpout struct {
	n, i int
}

func (s *slidingSpout) Open(*pkgstream.Context) {}
func (s *slidingSpout) Close()                  {}
func (s *slidingSpout) Next(out pkgstream.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	out.Emit(pkgstream.Tuple{
		KeyHash:   uint64(s.i*2654435761)%1000 + 1,
		EmitNanos: int64(s.i) * int64(time.Millisecond),
	})
	return true
}

// BenchmarkEngineWindowedSlidingCount runs the full windowed two-phase
// pipeline end to end — PKG partials over sliding windows, watermark
// closing, merged finals — through the public API.
func BenchmarkEngineWindowedSlidingCount(b *testing.B) {
	const tuples = 100_000
	for i := 0; i < b.N; i++ {
		plan := pkgstream.MustWindowPlan(pkgstream.CountAggregator(), pkgstream.WindowSpec{
			Size:        10 * time.Second,
			Slide:       5 * time.Second,
			EveryTuples: 5_000,
		})
		var results int64
		tb := pkgstream.NewTopologyBuilder("winbench", uint64(i))
		tb.AddSpout("src", func() pkgstream.Spout { return &slidingSpout{n: tuples} }, 1)
		tb.WindowedAggregate("count", plan, 4).Input("src", pkgstream.GroupPartial())
		tb.AddBolt("sink", func() pkgstream.Bolt {
			return pkgstream.BoltFunc(func(t pkgstream.Tuple, _ pkgstream.Emitter) {
				if !t.Tick {
					results++ // single instance: no race
				}
			})
		}, 1).Input("count", pkgstream.GroupGlobal())
		top, err := tb.Build()
		if err != nil {
			b.Fatal(err)
		}
		if err := pkgstream.NewRuntime(top, pkgstream.RuntimeOptions{QueueSize: 2048}).Run(); err != nil {
			b.Fatal(err)
		}
		if results == 0 {
			b.Fatal("no windows closed")
		}
	}
	b.ReportMetric(float64(tuples*b.N)/b.Elapsed().Seconds(), "tuples/s")
}

func BenchmarkEngineWordCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		top, out, err := pkgstream.BuildWordCount(pkgstream.WordCountConfig{
			Words: 50_000, Vocab: 10_000, P1: 0.09,
			Sources: 2, Workers: 9, FlushEvery: 5000, K: 10,
			Grouping: pkgstream.WordCountPKG, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := pkgstream.NewRuntime(top, pkgstream.RuntimeOptions{QueueSize: 2048}).Run(); err != nil {
			b.Fatal(err)
		}
		if out.TotalWords != 100_000 {
			b.Fatal("lost tuples")
		}
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "words/s")
}

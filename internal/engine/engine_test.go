package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pkgstream/internal/rng"
	"pkgstream/internal/route"
)

// sliceSpout emits a fixed sequence of keys.
type sliceSpout struct {
	keys []string
	i    int
}

func (s *sliceSpout) Open(*Context) {}
func (s *sliceSpout) Close()        {}
func (s *sliceSpout) Next(out Emitter) bool {
	if s.i >= len(s.keys) {
		return false
	}
	out.Emit(Tuple{Key: s.keys[s.i]})
	s.i++
	return true
}

// genSpout emits n keys drawn from a generator function.
type genSpout struct {
	n   int
	i   int
	gen func(i int) string
}

func (s *genSpout) Open(*Context) {}
func (s *genSpout) Close()        {}
func (s *genSpout) Next(out Emitter) bool {
	if s.i >= s.n {
		return false
	}
	out.Emit(Tuple{Key: s.gen(s.i)})
	s.i++
	return true
}

// collectBolt records every tuple it sees (thread-safe via its own
// mutex so tests can share one sink across instances).
type collectBolt struct {
	mu    *sync.Mutex
	got   *[]Tuple
	ticks *int
}

func (b *collectBolt) Prepare(*Context) {}
func (b *collectBolt) Execute(t Tuple, _ Emitter) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.Tick {
		*b.ticks++
		return
	}
	*b.got = append(*b.got, t)
}
func (b *collectBolt) Cleanup(Emitter) {}

func zipfKeys(n int, seed uint64) []string {
	z := rng.NewZipf(rng.New(seed), rng.SolveZipfExponent(5000, 0.09), 5000)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", z.Next())
	}
	return keys
}

func TestBuilderValidation(t *testing.T) {
	mkSpout := func() Spout { return &sliceSpout{} }
	mkBolt := func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }

	cases := []struct {
		name  string
		build func() (*Topology, error)
		frag  string
	}{
		{"no spouts", func() (*Topology, error) {
			return NewBuilder("t", 1).Build()
		}, "no spouts"},
		{"nil spout factory", func() (*Topology, error) {
			return NewBuilder("t", 1).AddSpout("s", nil, 1).Build()
		}, "nil factory"},
		{"duplicate name", func() (*Topology, error) {
			b := NewBuilder("t", 1).AddSpout("x", mkSpout, 1)
			b.AddBolt("x", mkBolt, 1).Input("x", Shuffle())
			return b.Build()
		}, "duplicate"},
		{"zero parallelism", func() (*Topology, error) {
			return NewBuilder("t", 1).AddSpout("s", mkSpout, 0).Build()
		}, "parallelism"},
		{"bolt without inputs", func() (*Topology, error) {
			b := NewBuilder("t", 1).AddSpout("s", mkSpout, 1)
			b.AddBolt("b", mkBolt, 1)
			return b.Build()
		}, "no inputs"},
		{"unknown input", func() (*Topology, error) {
			b := NewBuilder("t", 1).AddSpout("s", mkSpout, 1)
			b.AddBolt("b", mkBolt, 1).Input("nope", Shuffle())
			return b.Build()
		}, "unknown"},
		{"nil grouping", func() (*Topology, error) {
			b := NewBuilder("t", 1).AddSpout("s", mkSpout, 1)
			b.AddBolt("b", mkBolt, 1).Input("s", nil)
			return b.Build()
		}, "nil grouping"},
		{"cycle", func() (*Topology, error) {
			b := NewBuilder("t", 1).AddSpout("s", mkSpout, 1)
			b.AddBolt("b1", mkBolt, 1).Input("s", Shuffle()).Input("b2", Shuffle())
			b.AddBolt("b2", mkBolt, 1).Input("b1", Shuffle())
			return b.Build()
		}, "cycle"},
	}
	for _, c := range cases {
		_, err := c.build()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestBuildValidTopology(t *testing.T) {
	b := NewBuilder("wc", 7)
	b.AddSpout("lines", func() Spout { return &sliceSpout{} }, 2)
	b.AddBolt("count", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, 4).
		Input("lines", Partial())
	b.AddBolt("agg", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, 1).
		Input("count", Global())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if top.Name() != "wc" {
		t.Errorf("Name = %q", top.Name())
	}
}

// runCollect runs a one-spout/one-bolt topology and returns the tuples
// seen by the bolt component (across all instances) plus the stats.
func runCollect(t *testing.T, keys []string, g GroupingFactory, parallelism int) ([]Tuple, Stats) {
	t.Helper()
	var mu sync.Mutex
	var got []Tuple
	ticks := 0
	b := NewBuilder("t", 42)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: keys} }, 1)
	b.AddBolt("sink", func() Bolt { return &collectBolt{mu: &mu, got: &got, ticks: &ticks} }, parallelism).
		Input("src", g)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{QueueSize: 64})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return got, rt.Stats()
}

func TestAllTuplesDelivered(t *testing.T) {
	keys := zipfKeys(5000, 1)
	got, stats := runCollect(t, keys, Shuffle(), 4)
	if len(got) != len(keys) {
		t.Fatalf("delivered %d tuples, want %d", len(got), len(keys))
	}
	if n := stats.TotalExecuted("sink"); n != int64(len(keys)) {
		t.Fatalf("executed %d, want %d", n, len(keys))
	}
	// Multiset of keys is preserved.
	want := map[string]int{}
	for _, k := range keys {
		want[k]++
	}
	for _, tu := range got {
		want[tu.Key]--
	}
	for k, c := range want {
		if c != 0 {
			t.Fatalf("key %s count off by %d", k, c)
		}
	}
}

func TestShuffleGroupingBalances(t *testing.T) {
	_, stats := runCollect(t, zipfKeys(4000, 2), Shuffle(), 8)
	if imb := stats.Imbalance("sink"); imb > 1 {
		t.Fatalf("shuffle imbalance %v > 1", imb)
	}
}

func TestKeyGroupingLocality(t *testing.T) {
	// Same key → same instance. Run with a sink that records instance.
	var mu sync.Mutex
	where := map[string]map[int]bool{}
	b := NewBuilder("t", 9)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: zipfKeys(10000, 3)} }, 1)
	b.AddBolt("sink", func() Bolt {
		var idx int
		return &ctxBolt{onPrepare: func(c *Context) { idx = c.Index }, onExec: func(tu Tuple, _ Emitter) {
			mu.Lock()
			if where[tu.Key] == nil {
				where[tu.Key] = map[int]bool{}
			}
			where[tu.Key][idx] = true
			mu.Unlock()
		}}
	}, 7).Input("src", Key())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(top, Options{}).Run(); err != nil {
		t.Fatal(err)
	}
	for k, insts := range where {
		if len(insts) != 1 {
			t.Fatalf("key %s executed on %d instances under key grouping", k, len(insts))
		}
	}
}

// ctxBolt wires closures into the Bolt interface.
type ctxBolt struct {
	onPrepare func(*Context)
	onExec    func(Tuple, Emitter)
	onCleanup func(Emitter)
}

func (b *ctxBolt) Prepare(c *Context) {
	if b.onPrepare != nil {
		b.onPrepare(c)
	}
}
func (b *ctxBolt) Execute(t Tuple, e Emitter) {
	if b.onExec != nil {
		b.onExec(t, e)
	}
}
func (b *ctxBolt) Cleanup(e Emitter) {
	if b.onCleanup != nil {
		b.onCleanup(e)
	}
}

func TestPartialGroupingTwoWorkersPerKey(t *testing.T) {
	var mu sync.Mutex
	where := map[string]map[int]bool{}
	b := NewBuilder("t", 11)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: zipfKeys(20000, 4)} }, 3)
	b.AddBolt("sink", func() Bolt {
		var idx int
		return &ctxBolt{onPrepare: func(c *Context) { idx = c.Index }, onExec: func(tu Tuple, _ Emitter) {
			mu.Lock()
			if where[tu.Key] == nil {
				where[tu.Key] = map[int]bool{}
			}
			where[tu.Key][idx] = true
			mu.Unlock()
		}}
	}, 9).Input("src", Partial())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(top, Options{}).Run(); err != nil {
		t.Fatal(err)
	}
	// Key splitting: with multiple sources the candidate *set* is shared
	// (same edge seed), so each key still reaches at most 2 instances.
	for k, insts := range where {
		if len(insts) > 2 {
			t.Fatalf("key %s reached %d > 2 instances under PKG", k, len(insts))
		}
	}
}

func TestPartialBeatsKeyGroupingImbalance(t *testing.T) {
	keys := zipfKeys(30000, 5)
	_, kgStats := runCollect(t, keys, Key(), 9)
	_, pkgStats := runCollect(t, keys, Partial(), 9)
	kg := kgStats.Imbalance("sink")
	pkg := pkgStats.Imbalance("sink")
	if pkg*5 > kg {
		t.Fatalf("PKG imbalance %v not well below KG %v", pkg, kg)
	}
}

func TestGlobalGrouping(t *testing.T) {
	_, stats := runCollect(t, zipfKeys(500, 6), Global(), 4)
	loads := stats.Loads("sink")
	if loads[0] != 500 {
		t.Fatalf("instance 0 executed %d, want 500", loads[0])
	}
	for i := 1; i < 4; i++ {
		if loads[i] != 0 {
			t.Fatalf("instance %d executed %d, want 0", i, loads[i])
		}
	}
}

func TestBroadcastGrouping(t *testing.T) {
	_, stats := runCollect(t, zipfKeys(300, 7), Broadcast(), 5)
	if n := stats.TotalExecuted("sink"); n != 300*5 {
		t.Fatalf("broadcast delivered %d, want %d", n, 300*5)
	}
}

func TestMultiStageTopologyAndCleanupFlush(t *testing.T) {
	// words → counter (accumulates, flushes on Cleanup) → sink.
	// End-to-end counts must equal the input histogram even though the
	// counters only emit at Cleanup.
	keys := zipfKeys(8000, 8)
	want := map[string]int64{}
	for _, k := range keys {
		want[k]++
	}

	var mu sync.Mutex
	got := map[string]int64{}

	b := NewBuilder("wc", 13)
	// One spout instance: each instance would otherwise replay the whole
	// slice, doubling the histogram.
	b.AddSpout("words", func() Spout { return &sliceSpout{keys: keys} }, 1)
	b.AddBolt("count", func() Bolt {
		counts := map[string]int64{}
		return &ctxBolt{
			onExec: func(tu Tuple, _ Emitter) { counts[tu.Key]++ },
			onCleanup: func(e Emitter) {
				for k, c := range counts {
					e.Emit(Tuple{Key: k, Values: Values{c}})
				}
			},
		}
	}, 6).Input("words", Partial())
	b.AddBolt("sink", func() Bolt {
		return &ctxBolt{onExec: func(tu Tuple, _ Emitter) {
			mu.Lock()
			got[tu.Key] += tu.Values[0].(int64)
			mu.Unlock()
		}}
	}, 1).Input("count", Global())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(top, Options{QueueSize: 32}).Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct keys, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("key %s: got %d, want %d", k, got[k], c)
		}
	}
}

func TestSpoutParallelism(t *testing.T) {
	// Each spout instance runs its own factory-made spout: total emitted
	// = instances × per-instance tuples.
	var mu sync.Mutex
	var got []Tuple
	ticks := 0
	b := NewBuilder("t", 3)
	b.AddSpout("src", func() Spout {
		return &genSpout{n: 100, gen: func(i int) string { return fmt.Sprintf("k%d", i) }}
	}, 4)
	b.AddBolt("sink", func() Bolt { return &collectBolt{mu: &mu, got: &got, ticks: &ticks} }, 2).
		Input("src", Shuffle())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("got %d tuples, want 400", len(got))
	}
	for _, inst := range rt.Stats().PerInstance["src"] {
		if inst.Emitted != 100 {
			t.Fatalf("spout instance emitted %d, want 100", inst.Emitted)
		}
	}
}

func TestTickTuplesDelivered(t *testing.T) {
	var mu sync.Mutex
	var got []Tuple
	ticks := 0
	b := NewBuilder("t", 3)
	b.AddSpout("src", func() Spout {
		return &slowSpout{n: 30, delay: 10 * time.Millisecond}
	}, 1)
	b.AddBolt("sink", func() Bolt { return &collectBolt{mu: &mu, got: &got, ticks: &ticks} }, 2).
		Input("src", Shuffle()).
		TickEvery(20 * time.Millisecond)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ticks == 0 {
		t.Fatal("no tick tuples delivered during a ~300ms run")
	}
	if len(got) != 30 {
		t.Fatalf("got %d data tuples, want 30", len(got))
	}
	// Ticks are not counted as executed load.
	if n := rt.Stats().TotalExecuted("sink"); n != 30 {
		t.Fatalf("executed %d, want 30 (ticks excluded)", n)
	}
}

type slowSpout struct {
	n     int
	i     int
	delay time.Duration
}

func (s *slowSpout) Open(*Context) {}
func (s *slowSpout) Close()        {}
func (s *slowSpout) Next(out Emitter) bool {
	if s.i >= s.n {
		return false
	}
	time.Sleep(s.delay)
	out.Emit(Tuple{Key: fmt.Sprintf("k%d", s.i)})
	s.i++
	return true
}

func TestEmitNanosStamped(t *testing.T) {
	got, _ := runCollect(t, []string{"a", "b"}, Shuffle(), 1)
	for _, tu := range got {
		if tu.EmitNanos == 0 {
			t.Fatal("spout tuple missing EmitNanos")
		}
	}
}

// TestSinkLatencyObserved: sink components (bolts with no downstream)
// record emit→delivery latency of sampled tuples into Stats.Latency.
func TestSinkLatencyObserved(t *testing.T) {
	keys := zipfKeys(2000, 7)
	b := NewBuilder("t", 42)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: keys} }, 1)
	b.AddBolt("sink", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, 2).
		Input("src", Shuffle())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{QueueSize: 64, LatencySample: 10})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	lat := st.LatencyTotals("sink")
	// 1-in-10 sampling over 2000 tuples: exactly 200 observations (the
	// emitter counts deterministically), all with sane non-negative
	// latencies.
	if want := int64(len(keys) / 10); lat.Count != want {
		t.Fatalf("latency count = %d, want %d", lat.Count, want)
	}
	if p99 := lat.Quantile(0.99); p99 <= 0 || p99 > int64(time.Minute) {
		t.Fatalf("implausible sink p99: %v", time.Duration(p99))
	}
	if len(st.Latency["sink"]) != 2 {
		t.Fatalf("latency instances = %d, want 2", len(st.Latency["sink"]))
	}
}

// TestLatencySampleDisabled: a negative LatencySample turns stamping
// off entirely — no tuple carries a LatStamp, no histogram fills.
func TestLatencySampleDisabled(t *testing.T) {
	b := NewBuilder("t", 42)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: zipfKeys(500, 7)} }, 1)
	b.AddBolt("sink", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, 1).
		Input("src", Shuffle())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{QueueSize: 64, LatencySample: -1})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if lat := rt.Stats().LatencyTotals("sink"); lat.Count != 0 {
		t.Fatalf("latency recorded with sampling disabled: %+v", lat)
	}
}

func TestBoltPanicIsReportedNotFatal(t *testing.T) {
	b := NewBuilder("t", 3)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: zipfKeys(1000, 9)} }, 1)
	b.AddBolt("bad", func() Bolt {
		n := 0
		return &ctxBolt{onExec: func(Tuple, Emitter) {
			n++
			if n == 5 {
				panic("boom")
			}
		}}
	}, 2).Input("src", Shuffle())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	err = NewRuntime(top, Options{QueueSize: 8}).Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestSpoutPanicIsReported(t *testing.T) {
	b := NewBuilder("t", 3)
	b.AddSpout("src", func() Spout { return &panicSpout{} }, 1)
	b.AddBolt("sink", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, 1).
		Input("src", Shuffle())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	err = NewRuntime(top, Options{}).Run()
	if err == nil || !strings.Contains(err.Error(), "spout-boom") {
		t.Fatalf("expected spout panic error, got %v", err)
	}
}

type panicSpout struct{ i int }

func (s *panicSpout) Open(*Context) {}
func (s *panicSpout) Close()        {}
func (s *panicSpout) Next(out Emitter) bool {
	s.i++
	if s.i > 3 {
		panic("spout-boom")
	}
	out.Emit(Tuple{Key: "x"})
	return true
}

func TestDiamondTopology(t *testing.T) {
	// src → (left, right) → join: the join bolt's channels must close
	// only after both branches finish, and receive everything.
	var mu sync.Mutex
	total := 0
	b := NewBuilder("diamond", 5)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: zipfKeys(2000, 10)} }, 1)
	pass := func() Bolt {
		return BoltFunc(func(t Tuple, out Emitter) { out.Emit(t) })
	}
	b.AddBolt("left", pass, 2).Input("src", Shuffle())
	b.AddBolt("right", pass, 3).Input("src", Shuffle())
	b.AddBolt("join", func() Bolt {
		return &ctxBolt{onExec: func(Tuple, Emitter) {
			mu.Lock()
			total++
			mu.Unlock()
		}}
	}, 2).Input("left", Key()).Input("right", Key())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(top, Options{QueueSize: 16}).Run(); err != nil {
		t.Fatal(err)
	}
	// src shuffles each tuple to exactly one of left/right? No: separate
	// subscriptions each receive every tuple, so join sees 2× the input.
	if total != 4000 {
		t.Fatalf("join saw %d tuples, want 4000 (2000 via each branch)", total)
	}
}

func TestPartialNValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PartialN(0) did not panic")
		}
	}()
	PartialN(0)
}

func TestStatsSnapshotIsolated(t *testing.T) {
	keys := zipfKeys(100, 11)
	_, stats := runCollect(t, keys, Shuffle(), 2)
	loads := stats.Loads("sink")
	loads[0] = -1
	if stats.Loads("sink")[0] == -1 {
		t.Fatal("Loads returned aliased storage")
	}
	if stats.Imbalance("missing") != 0 {
		t.Fatal("imbalance of unknown component should be 0")
	}
}

func TestStatsReadableWhileRunning(t *testing.T) {
	// Stats() uses atomic counters, so a monitor may poll it live (run
	// under -race to verify).
	b := NewBuilder("live", 21)
	b.AddSpout("src", func() Spout {
		return &slowSpout{n: 50, delay: time.Millisecond}
	}, 1)
	b.AddBolt("sink", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, 2).
		Input("src", Shuffle())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{})
	done := make(chan error, 1)
	go func() { done <- rt.Run() }()
	var peak int64
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if got := rt.Stats().TotalExecuted("sink"); got != 50 {
				t.Fatalf("final executed %d, want 50", got)
			}
			if peak > 50 {
				t.Fatalf("live executed count overshot: %d", peak)
			}
			return
		default:
			if n := rt.Stats().TotalExecuted("sink"); n > peak {
				peak = n
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestDeepPipelineDrains(t *testing.T) {
	// A 5-stage pipeline with tiny queues must still drain completely
	// (backpressure does not deadlock an acyclic DAG).
	const stages = 5
	b := NewBuilder("deep", 33)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: zipfKeys(3000, 12)} }, 1)
	pass := func() Bolt { return BoltFunc(func(t Tuple, out Emitter) { out.Emit(t) }) }
	prev := "src"
	for i := 0; i < stages; i++ {
		name := fmt.Sprintf("stage%d", i)
		b.AddBolt(name, pass, 3).Input(prev, Partial())
		prev = name
	}
	var mu sync.Mutex
	total := 0
	b.AddBolt("sink", func() Bolt {
		return &ctxBolt{onExec: func(Tuple, Emitter) {
			mu.Lock()
			total++
			mu.Unlock()
		}}
	}, 1).Input(prev, Global())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(top, Options{QueueSize: 4}).Run(); err != nil {
		t.Fatal(err)
	}
	if total != 3000 {
		t.Fatalf("sink saw %d tuples, want 3000", total)
	}
}

func BenchmarkEngineShuffleThroughput(b *testing.B) {
	var mu sync.Mutex
	var got []Tuple
	ticks := 0
	builder := NewBuilder("bench", 1)
	builder.AddSpout("src", func() Spout {
		return &genSpout{n: b.N, gen: func(i int) string { return "k" }}
	}, 1)
	builder.AddBolt("sink", func() Bolt { return &collectBolt{mu: &mu, got: &got, ticks: &ticks} }, 4).
		Input("src", Shuffle())
	top, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := NewRuntime(top, Options{QueueSize: 4096}).Run(); err != nil {
		b.Fatal(err)
	}
}

func TestPartialNMoreThanEightChoicesNotTruncated(t *testing.T) {
	// Regression: the seed engine's hand-rolled grouping drew candidates
	// into a fixed [8]int buffer, silently capping Greedy-d at d = 8.
	// Under the shared routing core a hot key must cycle through all d of
	// its candidates (each Select charges the emitter's local view, so
	// repeats of one key round-robin its candidate set).
	const d, n = 12, 16
	g := PartialN(d)(n, 5, 0)
	seen := map[int]bool{}
	for i := 0; i < 10*d; i++ {
		dst := g.Select(Tuple{Key: "hot"})
		if dst < 0 || dst >= n {
			t.Fatalf("Select returned %d out of range", dst)
		}
		seen[dst] = true
	}
	if len(seen) != d {
		t.Fatalf("hot key reached %d distinct instances, want all %d candidates", len(seen), d)
	}
}

func TestRouterValidatesAtConstruction(t *testing.T) {
	// Misconfiguration must fail at the Router() call site — the returned
	// factory runs inside instance goroutines, where a panic would kill
	// the process instead of surfacing through Runtime.Run.
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic at construction", name)
			}
		}()
		f()
	}
	mustPanic("unknown strategy", func() { Router(route.Strategy(42), 2) })
	mustPanic("off-greedy", func() { Router(route.StrategyOffGreedy, 2) })
	mustPanic("negative d", func() { Router(route.StrategyPKG, -1) })
	// Table-keeping strategies need state shared across emitters; a
	// per-emitter instance would silently break their single-destination
	// contract, so they are rejected too.
	mustPanic("potc", func() { Router(route.StrategyPoTC, 2) })
	mustPanic("on-greedy", func() { Router(route.StrategyOnGreedy, 0) })
}

func TestRouteKeyRecomputedAfterRekey(t *testing.T) {
	tu := Tuple{Key: "alpha"}
	h1 := tu.RouteKey()
	tu.Key = "beta" // rekey-and-forward pattern: cached hash must refresh
	if tu.RouteKey() == h1 {
		t.Fatal("stale KeyHash survived a rekey")
	}
	fresh := Tuple{Key: "beta"}
	if tu.RouteKey() != fresh.RouteKey() {
		t.Fatal("rekeyed tuple hashes differently from a fresh tuple")
	}
	// Integer-keyed tuples (no Key string) pass their explicit hash
	// through untouched.
	iv := Tuple{KeyHash: 42}
	if iv.RouteKey() != 42 {
		t.Fatalf("explicit KeyHash = %d, want 42", iv.RouteKey())
	}
}

// rekeyWhere runs src → mid → sink(Key()) and records which sink
// instance saw each key. When rekey is true the mid bolt rewrites the
// key before forwarding; otherwise the spout emits the final keys and
// mid forwards untouched. Identical names and topology seed mean both
// variants share every edge seed, so placements must agree.
func rekeyWhere(t *testing.T, keys []string, rekey bool) map[string]int {
	t.Helper()
	var mu sync.Mutex
	where := map[string]int{}
	spoutKeys := keys
	if !rekey {
		spoutKeys = make([]string, len(keys))
		for i, k := range keys {
			spoutKeys[i] = "re-" + k
		}
	}
	b := NewBuilder("rekey", 17)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: spoutKeys} }, 1)
	b.AddBolt("mid", func() Bolt {
		return BoltFunc(func(tu Tuple, out Emitter) {
			if rekey {
				tu.Key = "re-" + tu.Key
			}
			out.Emit(tu)
		})
	}, 2).Input("src", Key())
	b.AddBolt("sink", func() Bolt {
		var idx int
		return &ctxBolt{onPrepare: func(c *Context) { idx = c.Index }, onExec: func(tu Tuple, _ Emitter) {
			mu.Lock()
			where[tu.Key] = idx
			mu.Unlock()
		}}
	}, 7).Input("mid", Key())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(top, Options{}).Run(); err != nil {
		t.Fatal(err)
	}
	return where
}

func TestRekeyedTupleRoutesByNewKey(t *testing.T) {
	// A bolt that rewrites Key on a received tuple and forwards it must
	// route by the new key: the KeyHash cached by the upstream emitter
	// must not leak through the rekey. Compare sink placement against a
	// run where the final keys are emitted directly.
	keys := zipfKeys(3000, 14)
	rekeyed := rekeyWhere(t, keys, true)
	direct := rekeyWhere(t, keys, false)
	if len(rekeyed) != len(direct) {
		t.Fatalf("key sets differ: %d vs %d", len(rekeyed), len(direct))
	}
	for k, inst := range rekeyed {
		if direct[k] != inst {
			t.Fatalf("key %s: rekeyed route %d != fresh route %d (stale KeyHash?)",
				k, inst, direct[k])
		}
	}
}

func TestRouteKeyClearedKeyRoutesLikeEmptyKey(t *testing.T) {
	// Clearing Key after a hash was cached must route like a fresh
	// empty-key tuple, not by the previous key's hash.
	tu := Tuple{Key: "x"}
	tu.RouteKey()
	tu.Key = ""
	fresh := Tuple{Key: ""}
	if tu.RouteKey() != fresh.RouteKey() {
		t.Fatalf("cleared key routes by %d, fresh empty key by %d",
			tu.RouteKey(), fresh.RouteKey())
	}
}

func TestBatchSizeClampedToQueueSize(t *testing.T) {
	// QueueSize is the caller's backpressure budget: a larger BatchSize
	// must not inflate per-edge buffering past it.
	var mu sync.Mutex
	var got []Tuple
	ticks := 0
	b := NewBuilder("clamp", 1)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: zipfKeys(1000, 15)} }, 1)
	b.AddBolt("sink", func() Bolt { return &collectBolt{mu: &mu, got: &got, ticks: &ticks} }, 2).
		Input("src", Shuffle())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{QueueSize: 8, BatchSize: 512})
	if rt.opts.BatchSize != 8 {
		t.Fatalf("BatchSize = %d, want clamp to QueueSize 8", rt.opts.BatchSize)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("delivered %d tuples, want 1000", len(got))
	}
}

func TestForwardedTickFlushesPartialBatch(t *testing.T) {
	// A bolt forwarding a tick downstream must not leave it buffered
	// behind a partial batch: the tick (and the data before it, in edge
	// order) ships immediately.
	var mu sync.Mutex
	var got []Tuple
	ticks := 0
	b := NewBuilder("tickfwd", 1)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: []string{"a", "b", "c"}} }, 1)
	b.AddBolt("fwd", func() Bolt {
		n := 0
		return BoltFunc(func(tu Tuple, out Emitter) {
			out.Emit(tu)
			n++
			if n == 3 {
				out.Emit(Tuple{Tick: true}) // cascade a flush signal
			}
		})
	}, 1).Input("src", Shuffle())
	b.AddBolt("sink", func() Bolt { return &collectBolt{mu: &mu, got: &got, ticks: &ticks} }, 1).
		Input("fwd", Shuffle())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewRuntime(top, Options{QueueSize: 1024, BatchSize: 64}).Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ticks != 1 || len(got) != 3 {
		t.Fatalf("sink saw %d data + %d ticks, want 3 + 1", len(got), ticks)
	}
}

func TestRouteKeyPreservesExplicitHashAfterStringKey(t *testing.T) {
	// String→integer key conversion mid-topology: a bolt receives a
	// string-keyed tuple (hash already cached by the upstream emitter),
	// clears Key and sets its own KeyHash. The explicit hash must win
	// over both the stale cache and the empty-key rehash.
	tu := Tuple{Key: "word"}
	tu.RouteKey()
	tu.Key = ""
	tu.KeyHash = 42
	if got := tu.RouteKey(); got != 42 {
		t.Fatalf("explicit KeyHash after conversion = %d, want 42", got)
	}
}

// fakeOp is a minimal WindowedOp: the partial stage counts tuples and
// flushes one summary tuple at cleanup; the final stage sums them.
type fakeOp struct {
	finalPar int
	mu       *sync.Mutex
	total    *int64
}

func (op *fakeOp) NewPartial() Bolt {
	n := int64(0)
	return &hookBolt{
		exec: func(tu Tuple, _ Emitter) {
			if !tu.Tick {
				n++
			}
		},
		cleanup: func(out Emitter) { out.Emit(Tuple{Key: "sum", Values: Values{n}}) },
	}
}

func (op *fakeOp) NewFinal() Bolt {
	return BoltFunc(func(tu Tuple, _ Emitter) {
		if tu.Tick {
			return
		}
		op.mu.Lock()
		*op.total += tu.Values[0].(int64)
		op.mu.Unlock()
	})
}

func (op *fakeOp) FinalParallelism() int          { return op.finalPar }
func (op *fakeOp) FinalGrouping() GroupingFactory { return Key() }
func (op *fakeOp) TickEvery() time.Duration       { return 0 }

// hookBolt adapts closures (with a cleanup hook, unlike BoltFunc).
type hookBolt struct {
	exec    func(Tuple, Emitter)
	cleanup func(Emitter)
}

func (b *hookBolt) Prepare(*Context)             {}
func (b *hookBolt) Execute(t Tuple, out Emitter) { b.exec(t, out) }
func (b *hookBolt) Cleanup(out Emitter)          { b.cleanup(out) }

func TestWindowedAggregateExpandsToTwoStages(t *testing.T) {
	var mu sync.Mutex
	var total int64
	op := &fakeOp{finalPar: 2, mu: &mu, total: &total}
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i%17)
	}
	b := NewBuilder("wa", 1)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: keys} }, 1)
	b.WindowedAggregate("agg", op, 3).Input("src", Partial())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{QueueSize: 128})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if got := len(st.PerInstance["agg.partial"]); got != 3 {
		t.Fatalf("partial stage has %d instances, want 3", got)
	}
	if got := len(st.PerInstance["agg"]); got != 2 {
		t.Fatalf("final stage has %d instances, want 2", got)
	}
	if st.TotalExecuted("agg.partial") != 500 {
		t.Fatalf("partial executed %d, want 500", st.TotalExecuted("agg.partial"))
	}
	mu.Lock()
	defer mu.Unlock()
	if total != 500 {
		t.Fatalf("final summed %d, want 500", total)
	}
}

func TestWindowedAggregateNilOp(t *testing.T) {
	b := NewBuilder("wa", 1)
	b.AddSpout("src", func() Spout { return &sliceSpout{keys: []string{"a"}} }, 1)
	b.WindowedAggregate("agg", nil, 3).Input("src", Shuffle())
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nil op") {
		t.Fatalf("Build error = %v, want nil-op error", err)
	}
}

func TestWindowTotalsFold(t *testing.T) {
	s := Stats{Windows: map[string][]WindowStats{
		"c": {
			{Live: 1, MaxLive: 5, Flushes: 2, PartialsOut: 10, Merged: 0, WindowsClosed: 1, LateDropped: 0},
			{Live: 2, MaxLive: 9, Flushes: 3, PartialsOut: 20, Merged: 4, WindowsClosed: 2, LateDropped: 1},
		},
	}}
	got := s.WindowTotals("c")
	want := WindowStats{Live: 3, MaxLive: 9, Flushes: 5, PartialsOut: 30, Merged: 4, WindowsClosed: 3, LateDropped: 1}
	if got != want {
		t.Fatalf("WindowTotals = %+v, want %+v", got, want)
	}
	if z := s.WindowTotals("missing"); z != (WindowStats{}) {
		t.Fatalf("missing component totals = %+v", z)
	}
}

package engine

import (
	"pkgstream/internal/hash"
)

// Grouping routes one tuple to a downstream instance. Select returns the
// destination instance index in [0, n), or Broadcast (-1) to deliver the
// tuple to every instance. A Grouping instance belongs to a single
// emitting PEI, so implementations may keep per-emitter state (that is
// exactly how partial key grouping does local load estimation) and need
// no synchronization.
type Grouping interface {
	Select(t Tuple) int
}

// BroadcastAll is the Select return value that delivers to all instances.
const BroadcastAll = -1

// GroupingFactory builds one Grouping per (emitting instance, edge).
// n is the downstream parallelism; seed is the per-edge hash seed, shared
// by all emitters on the edge so their hash functions agree; emitter is
// the emitting instance index (used to decorrelate round-robin starts).
type GroupingFactory func(n int, seed uint64, emitter int) Grouping

// Shuffle returns round-robin shuffle grouping: perfect balance, no key
// locality.
func Shuffle() GroupingFactory {
	return func(n int, _ uint64, emitter int) Grouping {
		return &shuffleGrouping{n: n, next: emitter % n}
	}
}

type shuffleGrouping struct{ n, next int }

func (g *shuffleGrouping) Select(Tuple) int {
	r := g.next
	g.next++
	if g.next == g.n {
		g.next = 0
	}
	return r
}

// Key returns key grouping (Storm's "fields grouping"): all tuples with
// the same key reach the same instance, via a single Murmur hash.
func Key() GroupingFactory {
	return func(n int, seed uint64, _ int) Grouping {
		return &keyGrouping{n: uint64(n), seed: uint32(seed)}
	}
}

type keyGrouping struct {
	n    uint64
	seed uint32
}

func (g *keyGrouping) Select(t Tuple) int {
	return int(hash.String64(t.Key, g.seed) % g.n)
}

// Partial returns PARTIAL KEY GROUPING — the paper's contribution, in the
// same shape it ships for Storm: a custom grouping of fewer than 20
// lines. Each emitting instance keeps a local load estimate vector
// (local load estimation, §III.B) and sends every tuple to the less
// loaded of the key's two hash candidates (key splitting, §III.A).
func Partial() GroupingFactory { return PartialN(2) }

// PartialN generalizes Partial to d choices ("Greedy-d", §IV); d = 2 is
// the paper's PKG and captures essentially all the gain.
func PartialN(d int) GroupingFactory {
	if d <= 0 {
		panic("engine: PartialN with d <= 0")
	}
	return func(n int, seed uint64, _ int) Grouping {
		g := &partialGrouping{loads: make([]int64, n), seeds: make([]uint32, d)}
		for i := range g.seeds {
			g.seeds[i] = uint32(hash.Fmix64(seed + uint64(i)*0x9e3779b97f4a7c15))
		}
		return g
	}
}

// partialGrouping is the paper's grouping: choose the least-loaded of d
// hash candidates according to this emitter's own counts, then charge
// the choice to the local estimate. Candidates are drawn without
// replacement (the i-th hash selects among the n−i workers not yet
// chosen) so a key's choices never collide onto one worker.
type partialGrouping struct {
	loads []int64
	seeds []uint32
}

func (g *partialGrouping) Select(t Tuple) int {
	n := len(g.loads)
	best := -1
	var sel [8]int
	k := 0
	for i, s := range g.seeds {
		if i >= n || i >= len(sel) {
			break
		}
		r := int(hash.String64(t.Key, s) % uint64(n-i))
		pos := 0
		for pos < k && r >= sel[pos] {
			r++
			pos++
		}
		copy(sel[pos+1:k+1], sel[pos:k])
		sel[pos] = r
		k++
		if best < 0 || g.loads[r] < g.loads[best] {
			best = r
		}
	}
	g.loads[best]++
	return best
}

// Global returns global grouping: every tuple goes to instance 0 —
// the paper's single downstream aggregator.
func Global() GroupingFactory {
	return func(int, uint64, int) Grouping { return globalGrouping{} }
}

type globalGrouping struct{}

func (globalGrouping) Select(Tuple) int { return 0 }

// Broadcast returns broadcast grouping: every tuple is delivered to every
// downstream instance (used e.g. by shuffle-grouped model queries that
// must probe all workers, §VI.A).
func Broadcast() GroupingFactory {
	return func(int, uint64, int) Grouping { return broadcastGrouping{} }
}

type broadcastGrouping struct{}

func (broadcastGrouping) Select(Tuple) int { return BroadcastAll }

package engine

import (
	"fmt"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/route"
)

// Grouping routes one tuple to a downstream instance. Select returns the
// destination instance index in [0, n), or Broadcast (-1) to deliver the
// tuple to every instance. A Grouping instance belongs to a single
// emitting PEI, so implementations may keep per-emitter state (that is
// exactly how partial key grouping does local load estimation) and need
// no synchronization.
type Grouping interface {
	Select(t Tuple) int
}

// BroadcastAll is the Select return value that delivers to all instances.
const BroadcastAll = -1

// GroupingFactory builds one Grouping per (emitting instance, edge).
// n is the downstream parallelism; seed is the per-edge hash seed, shared
// by all emitters on the edge so their hash functions agree; emitter is
// the emitting instance index (used to decorrelate round-robin starts).
type GroupingFactory func(n int, seed uint64, emitter int) Grouping

// Router exposes a coordination-free strategy of the shared routing
// core (internal/route) as an engine grouping: the returned factory
// builds one router per emitting instance, backed by a per-emitter load
// view for the view-consulting strategies (local load estimation,
// §III.B) and a per-emitter hot-key classifier for the frequency-aware
// ones. d is the number of choices for PKG and is ignored by the other
// strategies (the D-Choices width travels in the hotkey knobs — see
// HotRouter).
//
// Only KG, SG, PKG, D-Choices and W-Choices are accepted — precisely
// the strategies whose decisions need no state shared across emitters
// (a D/W-Choices emitter owns its sketch just as a PKG emitter owns its
// load estimate). PoTC and OnGreedy require a key→worker table agreed
// on by every emitter (the coordination cost the paper's key splitting
// removes), so running them per-emitter would silently break their
// single-destination contract; OffGreedy additionally needs the whole
// key-frequency distribution up front. All three are rejected here.
func Router(s route.Strategy, d int) GroupingFactory {
	return HotRouter(s, d, hotkey.Config{})
}

// HotRouter is Router with explicit hot-key knobs for the
// frequency-aware strategies (D-Choices hot width hot.D, skew target
// hot.Epsilon, sketch and refresh parameters); the other strategies
// ignore hot. hot.Workers is filled per edge from the downstream
// parallelism.
func HotRouter(s route.Strategy, d int, hot hotkey.Config) GroupingFactory {
	// Validate here, synchronously: the returned factory runs inside the
	// runtime's instance goroutines, where a panic would kill the process
	// instead of surfacing at the topology-construction call site.
	switch s {
	case route.StrategyKG, route.StrategySG, route.StrategyPKG,
		route.StrategyDChoices, route.StrategyWChoices:
	case route.StrategyPoTC, route.StrategyOnGreedy:
		panic(fmt.Sprintf("engine: %v needs a routing table shared across emitters and cannot run as a per-emitter streaming grouping", s))
	case route.StrategyOffGreedy:
		panic("engine: OffGreedy is clairvoyant and cannot run as a streaming grouping")
	default:
		panic(fmt.Sprintf("engine: unknown routing strategy %v", s))
	}
	if d < 0 {
		panic(fmt.Sprintf("engine: Router with negative d %d", d))
	}
	if s == route.StrategyDChoices || s == route.StrategyWChoices {
		probe := hot
		probe.Workers = 1 // any positive count; per-edge W arrives later
		if err := probe.Validate(); err != nil {
			panic(fmt.Sprintf("engine: %v", err))
		}
	}
	return func(n int, seed uint64, emitter int) Grouping {
		cfg := route.Config{Strategy: s, Workers: n, Seed: seed, D: d, Start: emitter, Hot: hot}
		if s.NeedsView() {
			cfg.View = route.NewLoad(n)
		}
		r, err := route.New(cfg)
		if err != nil {
			panic(fmt.Sprintf("engine: %v", err))
		}
		g := &routerGrouping{r: r, view: cfg.View, oblivious: s == route.StrategySG}
		if ha, ok := r.(route.HotAware); ok {
			g.cls = ha.Classifier()
		}
		return g
	}
}

// routerGrouping adapts a shared route.Router to the Grouping interface:
// it routes on the tuple's cached 64-bit key hash and charges the choice
// to this emitter's own load view (when the strategy keeps one). This —
// plus the route package itself — is the entire engine-side
// implementation of every key-based strategy.
type routerGrouping struct {
	r         route.Router
	view      *route.Load
	cls       *hotkey.Classifier // non-nil for the frequency-aware strategies
	oblivious bool               // the router never reads the key (shuffle)
}

// HotkeyStats implements HotkeyStatsSource for frequency-aware edges;
// the runtime snapshots it into Stats.Hotkeys.
func (g *routerGrouping) HotkeyStats() (hotkey.Stats, bool) {
	if g.cls == nil {
		return hotkey.Stats{}, false
	}
	return g.cls.Stats(), true
}

// explainNote implements the emitter's route-tracing hook: it renders
// the routing decision for key-based strategies (strategy, key class,
// candidate set, per-candidate loads) without mutating the router —
// route.Explain never observes the key in a classifier's sketch.
func (g *routerGrouping) explainNote(t *Tuple) string {
	if g.oblivious {
		return g.r.Name()
	}
	return route.Explain(g.r, t.RouteKey()).String()
}

func (g *routerGrouping) Select(t Tuple) int {
	var key uint64
	if !g.oblivious {
		key = t.RouteKey()
	}
	w := g.r.Route(key)
	if g.view != nil {
		g.view.Add(w)
	}
	return w
}

// keyOblivious reports whether g never reads the tuple key, letting the
// emitter skip key hashing when no edge of the instance can use it.
// Unknown (user-supplied) groupings are assumed to read the key.
func keyOblivious(g Grouping) bool {
	switch g := g.(type) {
	case *routerGrouping:
		return g.oblivious
	case globalGrouping, broadcastGrouping:
		return true
	default:
		return false
	}
}

// Shuffle returns round-robin shuffle grouping: perfect balance, no key
// locality.
func Shuffle() GroupingFactory { return Router(route.StrategySG, 0) }

// Key returns key grouping (Storm's "fields grouping"): all tuples with
// the same key reach the same instance, via a single seeded hash of the
// tuple's key hash.
func Key() GroupingFactory { return Router(route.StrategyKG, 0) }

// Partial returns PARTIAL KEY GROUPING — the paper's contribution, in the
// same shape it ships for Storm: a custom grouping of a handful of lines.
// Each emitting instance keeps a local load estimate vector (local load
// estimation, §III.B) and sends every tuple to the less loaded of the
// key's two hash candidates (key splitting, §III.A).
func Partial() GroupingFactory { return PartialN(2) }

// PartialN generalizes Partial to d choices ("Greedy-d", §IV); d = 2 is
// the paper's PKG and captures essentially all the gain. Any d ≥ 1 is
// accepted — the shared candidate construction grows with d instead of
// silently truncating.
func PartialN(d int) GroupingFactory {
	if d <= 0 {
		panic("engine: PartialN with d <= 0")
	}
	return Router(route.StrategyPKG, d)
}

// DChoices returns frequency-aware partial key grouping (the ICDE 2016
// follow-up's D-Choices): each emitting instance classifies keys with
// its own Space-Saving sketch and widens hot keys to d > 2 candidates
// (hot.D, or per-key adaptive when 0) while the cold tail keeps PKG's
// two. The windowed aggregation downstream absorbs the wider key
// splitting unchanged — a key simply yields up to d (or W) partials per
// period instead of two.
func DChoices(hot hotkey.Config) GroupingFactory {
	return HotRouter(route.StrategyDChoices, 0, hot)
}

// WChoices returns the follow-up's W-Choices grouping: keys above the
// hot threshold round-robin over every downstream instance, the cold
// tail keeps PKG's two candidates.
func WChoices(hot hotkey.Config) GroupingFactory {
	return HotRouter(route.StrategyWChoices, 0, hot)
}

// Global returns global grouping: every tuple goes to instance 0 —
// the paper's single downstream aggregator.
func Global() GroupingFactory {
	return func(int, uint64, int) Grouping { return globalGrouping{} }
}

type globalGrouping struct{}

func (globalGrouping) Select(Tuple) int { return 0 }

// Broadcast returns broadcast grouping: every tuple is delivered to every
// downstream instance (used e.g. by shuffle-grouped model queries that
// must probe all workers, §VI.A).
func Broadcast() GroupingFactory {
	return func(int, uint64, int) Grouping { return broadcastGrouping{} }
}

type broadcastGrouping struct{}

func (broadcastGrouping) Select(Tuple) int { return BroadcastAll }

// Package engine is a miniature Storm-like distributed stream processing
// engine (DSPE): topologies are DAGs of spouts (sources) and bolts
// (operators), each component runs as a set of parallel instances (the
// paper's PEIs), and edges carry tuples partitioned by a pluggable
// stream grouping. It supplies the substrate the paper deploys on — in
// particular, PARTIAL KEY GROUPING is implemented exactly as the paper
// describes for Storm: a custom grouping of a handful of lines keeping a
// local load vector per emitting instance (see Partial in grouping.go).
//
// The engine runs each processing element instance on its own goroutine
// with a bounded input queue, giving real backpressure, real concurrency
// and real per-instance load imbalance — a faithful small-scale stand-in
// for the paper's Storm cluster.
package engine

import (
	"fmt"
	"math"
	"time"
	"unsafe"

	"pkgstream/internal/route"
)

// Values is the payload of a tuple.
type Values []any

// Tuple is the unit of data flowing through a topology.
type Tuple struct {
	// Key is the grouping key (what key grouping and partial key
	// grouping hash).
	Key string
	// KeyHash is the 64-bit routing hash of Key, the value the shared
	// routing core (internal/route) operates on. The runtime caches it
	// on first emit, so the key bytes are hashed once per tuple and
	// every downstream edge derives its candidates by mixing this hash
	// with its own seed; when Key is set, the runtime maintains this
	// field — treat it as read-only. Integer-keyed streams may set it
	// directly and leave Key empty — string and uint64 keys share one
	// routing path. Zero is the "unset" sentinel: a tuple whose KeyHash
	// is 0 routes as the empty key, so integer-keyed streams should set
	// a hash of their ID (any 64-bit mix), not a raw ID that may be 0.
	KeyHash uint64
	// hashedPtr/hashedLen record which Key value KeyHash was computed
	// from — the data pointer and length of that string — so a bolt
	// that rekeys a received tuple (t.Key = newKey; out.Emit(t)) gets a
	// fresh hash instead of routing by the stale one. Matching on
	// (pointer, length) is sound: two string headers with the same data
	// pointer and length hold the same bytes. The pair costs 10 bytes
	// where a string field costs 16, which is what keeps Tuple at 80
	// bytes with the 8-byte TraceID on board — the emit path moves
	// tuples by value, and +8 bytes measured ~14% on the batched hot
	// path (see LatStamp). Keys longer than 64 KiB are simply never
	// cached (hashed on every RouteKey), so the length fits uint16.
	hashedPtr *byte
	// Values is the payload.
	Values Values
	// EmitNanos is stamped by the runtime when a spout first emits the
	// tuple (if zero); bolts that derive tuples may copy it forward to
	// measure end-to-end latency at a sink. Windowed topologies often
	// pre-stamp it with LOGICAL event time for deterministic window
	// assignment, which is why latency measurement does not read it —
	// see LatStamp.
	EmitNanos int64
	// TraceID identifies the distributed trace this tuple belongs to:
	// the runtime assigns a fresh non-zero ID to a sampled
	// 1-in-Options.TraceSample subset of spout emits, every layer the
	// tuple passes appends a span to its process's ring buffer
	// (internal/trace), and forwarders carry the ID across process
	// boundaries in the tuple body (wire flag bit 8). Zero means "not
	// traced" and is the only per-tuple cost of the disabled path.
	// Declared before the narrow fields so the struct packs to 80 bytes.
	TraceID uint64
	// LatStamp is the wall-clock latency stamp: the runtime sets it
	// (via LatStampNow) on a sampled 1-in-Options.LatencySample subset
	// of spout emits (never overwriting a caller's value), downstream
	// observation points — sink delivery, the windowed partial stage,
	// remote partial handlers — resolve it against their own clock with
	// LatSince, and forwarders copy it across process boundaries in the
	// tuple body. Independent of EmitNanos so logical event time and
	// measured wall latency never fight over one field, and
	// deliberately 4 bytes — absolute microseconds truncated to 32
	// bits — so carrying it does not grow the Tuple struct (the emit
	// path moves tuples by value; +8 bytes measured ~14% on the batched
	// hot path). Zero means "not sampled".
	LatStamp uint32
	// hashedLen is the length half of the hash cache (see hashedPtr).
	hashedLen uint16
	// Tick marks engine-generated timer tuples (see BoltDecl.TickEvery).
	Tick bool
}

// LatStampNow reads the wall clock as a latency stamp: absolute
// microseconds truncated to 32 bits. Stamps wrap every ~71.6 minutes
// and LatSince resolves the wrap, so any in-flight latency below ~35
// minutes — half the wrap period, far beyond any streaming tuple's
// life — measures exactly. 0 is reserved as Tuple.LatStamp's "not
// sampled" sentinel; the one genuine zero per wrap maps to 1 (a 1 µs
// error once per 71.6 minutes).
func LatStampNow() uint32 {
	if s := uint32(uint64(time.Now().UnixNano()) / 1000); s != 0 {
		return s
	}
	return 1
}

// LatSince returns the nanoseconds elapsed since a LatStampNow stamp,
// resolving the 32-bit wrap (exact below ~35 minutes of flight time).
// Cross-machine clock skew can drive it negative; histogram
// observation clamps that to zero.
func LatSince(stamp uint32) int64 {
	return int64(int32(uint32(uint64(time.Now().UnixNano())/1000)-stamp)) * 1000
}

// RouteKey returns the 64-bit key the routing core routes on, computing
// and caching the hash of Key unless the cache already matches it (the
// match compares the key string's data pointer and length — the
// pointer-fast path for forwarded tuples, and header equality implies
// byte equality, so a hit is always sound). Tuples with an explicit
// KeyHash and no Key (integer-keyed streams) pass through untouched.
func (t *Tuple) RouteKey() uint64 {
	if t.Key == "" {
		if t.hashedPtr != nil {
			// The key was cleared after a string key's hash was cached.
			// If KeyHash is still that stale cache, rehash as the empty
			// key; if the caller overwrote it (string→integer key
			// conversion: set KeyHash, clear Key), their value stands.
			// The cached pointer keeps the old key's bytes reachable, so
			// rebuilding the string it was computed from is safe.
			if t.KeyHash == route.KeyHash(unsafe.String(t.hashedPtr, int(t.hashedLen))) {
				t.KeyHash = route.KeyHash("")
			}
			t.hashedPtr = nil
			t.hashedLen = 0
		} else if t.KeyHash == 0 {
			// Nothing cached and no explicit hash: the empty string key,
			// routed by its own hash so it lands with fresh Tuple{Key: ""}
			// tuples. Integer-keyed tuples (explicit non-zero KeyHash)
			// pass through untouched.
			t.KeyHash = route.KeyHash("")
		}
		return t.KeyHash
	}
	if t.KeyHash == 0 || t.hashedPtr != unsafe.StringData(t.Key) || int(t.hashedLen) != len(t.Key) {
		t.KeyHash = route.KeyHash(t.Key)
		if len(t.Key) <= math.MaxUint16 {
			t.hashedPtr = unsafe.StringData(t.Key)
			t.hashedLen = uint16(len(t.Key))
		} else {
			// Oversized keys are hashed on every call rather than widening
			// the cache; no real key is 64 KiB.
			t.hashedPtr = nil
			t.hashedLen = 0
		}
	}
	return t.KeyHash
}

// Context describes the processing element instance a component runs as.
type Context struct {
	// Topology is the topology name.
	Topology string
	// Component is the component name.
	Component string
	// Index is the instance index in [0, Parallelism).
	Index int
	// Parallelism is the number of instances of this component.
	Parallelism int
}

// Emitter sends tuples downstream. Emit blocks when a destination queue
// is full (backpressure).
type Emitter interface {
	Emit(t Tuple)
}

// Spout is a stream source. The runtime calls Next repeatedly from a
// single goroutine until it returns false, then Close.
type Spout interface {
	// Open is called once before the first Next.
	Open(ctx *Context)
	// Next emits zero or more tuples and reports whether the spout has
	// more data.
	Next(out Emitter) bool
	// Close is called once after the last Next.
	Close()
}

// Bolt is a stream operator. The runtime calls Execute for every input
// tuple from a single goroutine, then Cleanup once when all inputs are
// exhausted. Cleanup may emit (e.g. flush partial aggregates).
type Bolt interface {
	// Prepare is called once before the first Execute.
	Prepare(ctx *Context)
	// Execute processes one tuple, optionally emitting derived tuples.
	Execute(t Tuple, out Emitter)
	// Cleanup flushes remaining state when the input stream ends.
	Cleanup(out Emitter)
}

// BoltFunc adapts a function to the Bolt interface (no state hooks).
type BoltFunc func(t Tuple, out Emitter)

// Prepare implements Bolt.
func (f BoltFunc) Prepare(*Context) {}

// Execute implements Bolt.
func (f BoltFunc) Execute(t Tuple, out Emitter) { f(t, out) }

// Cleanup implements Bolt.
func (f BoltFunc) Cleanup(Emitter) {}

// input is one subscription of a bolt to an upstream component.
type input struct {
	from    string
	factory GroupingFactory
}

type spoutDecl struct {
	name        string
	factory     func() Spout
	parallelism int
}

type boltDecl struct {
	name        string
	factory     func() Bolt
	parallelism int
	inputs      []input
	tickEvery   time.Duration
}

// Builder assembles a Topology. Errors are accumulated and reported by
// Build, so declarations chain fluently.
type Builder struct {
	name   string
	seed   uint64
	spouts []spoutDecl
	bolts  []*BoltDecl
	errs   []error
}

// NewBuilder returns a Builder for a topology with the given name. The
// seed derives every grouping's hash functions, making runs reproducible.
func NewBuilder(name string, seed uint64) *Builder {
	return &Builder{name: name, seed: seed}
}

// AddSpout declares a stream source with the given parallelism. The
// factory is invoked once per instance.
func (b *Builder) AddSpout(name string, factory func() Spout, parallelism int) *Builder {
	if factory == nil {
		b.errs = append(b.errs, fmt.Errorf("engine: spout %q has nil factory", name))
		return b
	}
	b.spouts = append(b.spouts, spoutDecl{name: name, factory: factory, parallelism: parallelism})
	return b
}

// BoltDecl is a bolt under construction; chain Input (and optionally
// TickEvery) calls on it.
type BoltDecl struct {
	b    *Builder
	decl boltDecl
}

// AddBolt declares an operator with the given parallelism. The factory is
// invoked once per instance. Subscribe it to upstream components with
// Input.
func (b *Builder) AddBolt(name string, factory func() Bolt, parallelism int) *BoltDecl {
	bd := &BoltDecl{b: b, decl: boltDecl{name: name, factory: factory, parallelism: parallelism}}
	if factory == nil {
		b.errs = append(b.errs, fmt.Errorf("engine: bolt %q has nil factory", name))
	}
	b.bolts = append(b.bolts, bd)
	return bd
}

// Input subscribes the bolt to an upstream component with the given
// grouping.
func (bd *BoltDecl) Input(from string, g GroupingFactory) *BoltDecl {
	if g == nil {
		bd.b.errs = append(bd.b.errs,
			fmt.Errorf("engine: bolt %q input from %q has nil grouping", bd.decl.name, from))
		return bd
	}
	bd.decl.inputs = append(bd.decl.inputs, input{from: from, factory: g})
	return bd
}

// TickEvery makes the runtime deliver a Tick tuple to every instance of
// this bolt at the given wall-clock period — the mechanism behind the
// paper's periodic aggregation windows ("each T seconds").
func (bd *BoltDecl) TickEvery(d time.Duration) *BoltDecl {
	bd.decl.tickEvery = d
	return bd
}

// WindowedOp describes a two-phase windowed aggregation operator pair:
// a partial stage that accumulates under any grouping (partial key
// grouping splits each key over two instances) and a final stage that
// merges the periodically flushed partials and closes windows. It is
// implemented by internal/window.Plan; the engine stays agnostic of the
// window semantics and only wires the pair into the topology.
type WindowedOp interface {
	// NewPartial returns one partial-stage bolt instance.
	NewPartial() Bolt
	// NewFinal returns one final-stage bolt instance.
	NewFinal() Bolt
	// FinalParallelism is the final stage's instance count.
	FinalParallelism() int
	// FinalGrouping routes the partial→final edge (keyed for data,
	// broadcast for watermark marks).
	FinalGrouping() GroupingFactory
	// TickEvery is the wall-clock flush period for the partial stage
	// (0: no timer ticks).
	TickEvery() time.Duration
}

// RemoteWindowedOp is the optional WindowedOp extension behind the
// RemoteFinal option: ops that can forward their final stage across a
// process boundary return a forwarder-bolt factory for the given remote
// node addresses. Implemented by internal/window.Plan.
type RemoteWindowedOp interface {
	WindowedOp
	// NewRemoteFinal returns the factory for the forwarder replacing
	// the in-process final stage; seed derives the key→node hash.
	NewRemoteFinal(addrs []string, seed uint64) (func() Bolt, error)
}

// WindowedOption customizes a WindowedAggregate declaration.
type WindowedOption func(*windowedCfg)

type windowedCfg struct {
	remote        []string
	remotePartial *RemotePartialConfig
}

// RemoteFinal replaces the aggregation's in-process final stage with a
// forwarder that ships flushed partials (key-grouped) and watermark
// marks to remote final nodes at the given addresses — the multi-process
// form of the two-phase plan. The op must implement RemoteWindowedOp,
// and the aggregation's output then materializes at the remote nodes
// (query them with transport point queries); the local component named
// by the declaration emits nothing.
func RemoteFinal(addrs ...string) WindowedOption {
	return func(c *windowedCfg) { c.remote = addrs }
}

// WindowedAggregate declares a two-phase windowed aggregation: a partial
// stage named name+".partial" with the given parallelism, and the final
// stage named name — the PKG-partial → KG-final plan every split-key
// topology needs (paper §IV). Chain Input on the returned declaration to
// subscribe the partial stage to its upstream (typically with Partial());
// downstream bolts subscribe to name and receive the final stage's
// output. With the RemoteFinal option the final stage instead forwards
// over TCP to remote nodes (see RemoteFinal).
func (b *Builder) WindowedAggregate(name string, op WindowedOp, parallelism int, opts ...WindowedOption) *BoltDecl {
	if op == nil {
		b.errs = append(b.errs, fmt.Errorf("engine: windowed aggregate %q has nil op", name))
		return &BoltDecl{b: b}
	}
	var cfg windowedCfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.remotePartial != nil {
		if len(cfg.remote) > 0 {
			b.errs = append(b.errs, fmt.Errorf(
				"engine: windowed aggregate %q: RemotePartial and RemoteFinal are exclusive (partial nodes forward to their own finals)", name))
			return &BoltDecl{b: b}
		}
		rop, ok := op.(RemotePartialOp)
		if !ok {
			b.errs = append(b.errs, fmt.Errorf(
				"engine: windowed aggregate %q: op %T cannot run its partial stage remotely", name, op))
			return &BoltDecl{b: b}
		}
		factory, err := rop.NewRemotePartial(*cfg.remotePartial, b.seed)
		if err != nil {
			b.errs = append(b.errs, fmt.Errorf("engine: windowed aggregate %q: %w", name, err))
			return &BoltDecl{b: b}
		}
		// One forwarder funnel: the flow-controlled, PKG-routed hop to
		// the partial nodes happens inside it on ONE per-source load
		// view and sketch, so node count and the declared parallelism
		// stay independent. No timer ticks: flush cadence is the partial
		// nodes' business now.
		return b.AddBolt(name+".partial", factory, 1)
	}
	partial := b.AddBolt(name+".partial", op.NewPartial, parallelism)
	if d := op.TickEvery(); d > 0 {
		partial.TickEvery(d)
	}
	if len(cfg.remote) > 0 {
		rop, ok := op.(RemoteWindowedOp)
		if !ok {
			b.errs = append(b.errs, fmt.Errorf(
				"engine: windowed aggregate %q: op %T cannot host a remote final", name, op))
			return partial
		}
		factory, err := rop.NewRemoteFinal(cfg.remote, b.seed)
		if err != nil {
			b.errs = append(b.errs, fmt.Errorf("engine: windowed aggregate %q: %w", name, err))
			return partial
		}
		// One forwarder funnel: the key-grouped hop to the remote nodes
		// happens inside it, so node count and parallelism stay free.
		b.AddBolt(name, factory, 1).Input(name+".partial", op.FinalGrouping())
		return partial
	}
	b.AddBolt(name, op.NewFinal, op.FinalParallelism()).
		Input(name+".partial", op.FinalGrouping())
	return partial
}

// Topology is a validated dataflow DAG ready to run.
type Topology struct {
	name   string
	seed   uint64
	spouts []spoutDecl
	bolts  []boltDecl
	// order holds bolt names in topological order (for deterministic
	// startup; execution itself is concurrent).
	order []string
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// Build validates the declarations and returns the Topology: names must
// be unique and non-empty, parallelism positive, inputs must reference
// declared components, every bolt needs at least one input, at least one
// spout must exist, and the component graph must be acyclic.
func (b *Builder) Build() (*Topology, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.spouts) == 0 {
		return nil, fmt.Errorf("engine: topology %q has no spouts", b.name)
	}
	seen := map[string]bool{}
	check := func(name string, parallelism int, kind string) error {
		if name == "" {
			return fmt.Errorf("engine: %s with empty name", kind)
		}
		if seen[name] {
			return fmt.Errorf("engine: duplicate component name %q", name)
		}
		seen[name] = true
		if parallelism <= 0 {
			return fmt.Errorf("engine: %s %q has parallelism %d", kind, name, parallelism)
		}
		return nil
	}
	for _, s := range b.spouts {
		if err := check(s.name, s.parallelism, "spout"); err != nil {
			return nil, err
		}
	}
	bolts := make([]boltDecl, 0, len(b.bolts))
	for _, bd := range b.bolts {
		if err := check(bd.decl.name, bd.decl.parallelism, "bolt"); err != nil {
			return nil, err
		}
		if len(bd.decl.inputs) == 0 {
			return nil, fmt.Errorf("engine: bolt %q has no inputs", bd.decl.name)
		}
		bolts = append(bolts, bd.decl)
	}
	for _, bd := range bolts {
		for _, in := range bd.inputs {
			if !seen[in.from] {
				return nil, fmt.Errorf("engine: bolt %q subscribes to unknown component %q",
					bd.name, in.from)
			}
		}
	}
	order, err := topoSort(b.spouts, bolts)
	if err != nil {
		return nil, err
	}
	return &Topology{name: b.name, seed: b.seed, spouts: b.spouts, bolts: bolts, order: order}, nil
}

// topoSort returns bolt names in topological order, or an error if the
// component graph has a cycle.
func topoSort(spouts []spoutDecl, bolts []boltDecl) ([]string, error) {
	isSpout := map[string]bool{}
	for _, s := range spouts {
		isSpout[s.name] = true
	}
	indeg := map[string]int{}
	succ := map[string][]string{}
	for _, b := range bolts {
		indeg[b.name] = 0
	}
	for _, b := range bolts {
		for _, in := range b.inputs {
			if isSpout[in.from] {
				continue
			}
			succ[in.from] = append(succ[in.from], b.name)
			indeg[b.name]++
		}
	}
	var queue []string
	for _, b := range bolts {
		if indeg[b.name] == 0 {
			queue = append(queue, b.name)
		}
	}
	var order []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, m := range succ[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) != len(bolts) {
		return nil, fmt.Errorf("engine: topology contains a cycle")
	}
	return order, nil
}

package engine

import (
	"testing"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/rng"
)

// runHotTopology drives n Zipf words from one spout through the given
// grouping into a 20-instance sink and returns the runtime stats.
func runHotTopology(t *testing.T, g GroupingFactory, n int) Stats {
	t.Helper()
	z := rng.NewZipf(rng.New(7), rng.SolveZipfExponent(10_000, 0.4), 10_000)
	b := NewBuilder("hot", 5)
	b.AddSpout("src", func() Spout {
		return &genSpout{n: n, gen: func(int) string { return "w" + itoa(z.Next()) }}
	}, 1)
	b.AddBolt("sink", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, 20).
		Input("src", g)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return rt.Stats()
}

func TestHotkeyStatsSurface(t *testing.T) {
	const n = 40_000
	z := rng.NewZipf(rng.New(7), rng.SolveZipfExponent(10_000, 0.5), 10_000)
	b := NewBuilder("hot", 5)
	b.AddSpout("src", func() Spout {
		return &genSpout{n: n, gen: func(int) string {
			return "w" + itoa(z.Next())
		}}
	}, 1)
	b.AddBolt("sink", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, 20).
		Input("src", DChoices(hotkey.Config{RefreshEvery: 256}))
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(top, Options{})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()

	hs, ok := st.Hotkeys["src→sink"]
	if !ok || len(hs) != 1 {
		t.Fatalf("Stats.Hotkeys missing src→sink edge: %v", st.Hotkeys)
	}
	tot := st.HotkeyTotals("src→sink")
	if tot.Observed != n {
		t.Errorf("Observed = %d, want %d", tot.Observed, n)
	}
	if tot.ColdRouted+tot.HotRouted+tot.HeadRouted != n {
		t.Errorf("per-class counts %d+%d+%d don't sum to %d",
			tot.ColdRouted, tot.HotRouted, tot.HeadRouted, n)
	}
	// p1 = 0.5 on 20 workers: the top word must be classified beyond cold
	// and carry a visible share of the routed messages.
	if tot.HotKeys+tot.HeadKeys == 0 {
		t.Error("no hot or head keys on a p1=0.5 stream")
	}
	if tot.HotRouted+tot.HeadRouted < n/4 {
		t.Errorf("only %d of %d messages routed widened", tot.HotRouted+tot.HeadRouted, n)
	}
	// A plain PKG edge reports no hot-key stats.
	if _, ok := rt.Stats().Hotkeys["nope"]; ok {
		t.Error("unexpected edge")
	}
}

func TestPKGEdgeHasNoHotkeyStats(t *testing.T) {
	st := runHotTopology(t, Partial(), 2_000)
	if len(st.Hotkeys) != 0 {
		t.Errorf("PKG edge registered hot-key stats: %v", st.Hotkeys)
	}
}

// TestHotChoicesBeatPKGOnSkew is the engine-level shape check: on a
// heavily skewed stream over many workers, both frequency-aware
// groupings must end with strictly lower sink imbalance than PKG-2.
func TestHotChoicesBeatPKGOnSkew(t *testing.T) {
	const n = 60_000
	imb := func(g GroupingFactory) float64 {
		z := rng.NewZipf(rng.New(11), 2.0, 100_000)
		b := NewBuilder("imb", 9)
		b.AddSpout("src", func() Spout {
			return &genSpout{n: n, gen: func(int) string { return "w" + itoa(z.Next()) }}
		}, 1)
		b.AddBolt("sink", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, 50).
			Input("src", g)
		top, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		rt := NewRuntime(top, Options{})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.Stats().Imbalance("sink")
	}
	pkg := imb(Partial())
	dc := imb(DChoices(hotkey.Config{}))
	wc := imb(WChoices(hotkey.Config{}))
	if dc >= pkg || wc >= pkg {
		t.Errorf("imbalance not improved: PKG=%v D-Choices=%v W-Choices=%v", pkg, dc, wc)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

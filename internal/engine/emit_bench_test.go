package engine

// Benchmarks of the emit hot path: a wordcount-shaped topology (one
// spout streaming skewed word keys into a parallel counter bolt under
// partial key grouping) run at different batch sizes. BatchSize 1 is the
// tuple-at-a-time engine the seed shipped — one channel send and one
// clock read per tuple; BatchSize 64 is the default batched path. The
// ≥2× separation between the two is the acceptance bar for the batched
// runtime (results recorded in BENCH_pr1.json).

import (
	"fmt"
	"testing"
)

// cycleSpout emits n tuples, cycling through a precomputed key set so
// key generation stays off the measured path.
type cycleSpout struct {
	keys []string
	n    int
	i    int
}

func (s *cycleSpout) Open(*Context) {}
func (s *cycleSpout) Close()        {}
func (s *cycleSpout) Next(out Emitter) bool {
	if s.i >= s.n {
		return false
	}
	out.Emit(Tuple{Key: s.keys[s.i%len(s.keys)]})
	s.i++
	return true
}

func benchEmitPath(b *testing.B, batchSize, workers int) {
	keys := zipfKeys(4096, 7)
	n := b.N
	builder := NewBuilder("bench", 1)
	builder.AddSpout("src", func() Spout { return &cycleSpout{keys: keys, n: n} }, 1)
	builder.AddBolt("count", func() Bolt { return BoltFunc(func(Tuple, Emitter) {}) }, workers).
		Input("src", Partial())
	top, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	rt := NewRuntime(top, Options{QueueSize: 4096, BatchSize: batchSize})
	b.ReportAllocs()
	b.ResetTimer()
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "tuples/s")
}

func BenchmarkEmitPath(b *testing.B) {
	for _, bs := range []int{1, 64} {
		for _, w := range []int{4, 9} {
			b.Run(fmt.Sprintf("batch=%d/workers=%d", bs, w), func(b *testing.B) {
				benchEmitPath(b, bs, w)
			})
		}
	}
}

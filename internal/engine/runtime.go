package engine

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pkgstream/internal/edge"
	"pkgstream/internal/hash"
	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
	"pkgstream/internal/trace"
)

// Options configures a Runtime.
type Options struct {
	// QueueSize is the per-instance input buffer in tuples (default
	// 1024). Smaller queues apply backpressure sooner.
	QueueSize int
	// BatchSize is the number of tuples moved per channel operation
	// (default 64). Emitters buffer routed tuples per destination and
	// flush a batch when it fills, when the instance finishes, or — for
	// ticks — immediately; batching amortizes the channel synchronization
	// that dominates the per-tuple send path. Two consequences of
	// size/close flushing: a trickling emitter may hold up to
	// BatchSize−1 tuples back until it finishes, and spout timestamps
	// (EmitNanos) are read once per batch, so they can be up to
	// BatchSize−1 emits stale. Both are negligible for the saturated
	// finite streams this runtime executes; for trickle workloads that
	// need per-tuple delivery and stamping, set BatchSize to 1, which
	// degenerates to the unbatched tuple-at-a-time engine. BatchSize is
	// clamped to QueueSize so small queues keep bounding in-flight
	// tuples.
	BatchSize int
	// LatencySample is the spout-emit sampling interval for end-to-end
	// latency measurement: one in every LatencySample data tuples gets
	// a wall-clock stamp (Tuple.LatStamp) that the observation points —
	// sink delivery, the windowed partial stage, remote partial
	// handlers — turn into a latency histogram observation. Sampling
	// bounds both the clock-call cost on the emit path and the +4 bytes
	// a stamp adds to a tuple's wire body. 0 means the default of 64;
	// negative disables latency stamping entirely.
	LatencySample int
	// MetricsAddr, when non-empty, serves GET /metrics (the Prometheus
	// text exposition of MetricsRegistry) and /debug/pprof/* on this
	// address for the duration of Run.
	MetricsAddr string
	// TraceSample is the spout-emit sampling interval for distributed
	// tracing: one in every TraceSample data tuples gets a fresh trace
	// ID (Tuple.TraceID) and every layer it passes appends a span to
	// the process's ring buffer (internal/trace). Independent of
	// LatencySample so the two measurements never fight over sampling
	// budget. 0 or negative disables tracing — unlike latency stamping
	// it is strictly opt-in, so the default emit path pays only the
	// countdown decrement that never reaches zero.
	TraceSample int
	// TraceRing, when positive, resizes the process-global span ring
	// (trace.Default) to keep the last TraceRing spans — the flight
	// recorder depth. 0 keeps trace.DefaultRingSpans.
	TraceRing int
}

// InstanceStats are the counters of one processing element instance.
type InstanceStats struct {
	// Executed is the number of tuples processed (bolts only).
	Executed int64
	// Emitted is the number of tuples emitted downstream.
	Emitted int64
}

// WindowStats are the windowed-aggregation counters of one bolt
// instance (see internal/window): gauges and counters of the two-phase
// partial → final plan, surfaced through Stats so the aggregation period
// T's memory/throughput trade-off (paper §V Q4, Figure 5(b)) is
// observable on the live engine.
type WindowStats struct {
	// Live is the number of live (key, window) accumulators right now.
	Live int64
	// MaxLive is the high-water mark of Live — the instance's memory
	// footprint in partial counters.
	MaxLive int64
	// Flushes counts flush rounds (timer tick, tuple count, memory
	// pressure, or cleanup).
	Flushes int64
	// PartialsOut counts partial states emitted downstream (partial
	// stage only).
	PartialsOut int64
	// Merged counts partial states merged (final stage only).
	Merged int64
	// WindowsClosed counts (key, window) results emitted (final stage).
	WindowsClosed int64
	// LateDropped counts partials that arrived for an already-closed
	// window and were dropped (final stage).
	LateDropped int64
	// WMLagNs is the instance's watermark lag in nanoseconds at
	// snapshot time: for wall-clock event timelines, how far the
	// watermark trails wall clock; for logical timelines, how long ago
	// the watermark last advanced. 0 until the first advance.
	WMLagNs int64
}

// WindowStatsSource is implemented by bolts that expose windowing
// counters (the window subsystem's partial and final stages). The
// runtime snapshots every instance that implements it into
// Stats.Windows; implementations must be safe to read while the
// topology runs.
type WindowStatsSource interface {
	WindowStats() WindowStats
}

// HotkeyStats are the frequency-aware routing counters of one emitting
// instance on one edge (see internal/hotkey): the hot/head key
// populations its classifier currently tracks and the number of
// messages routed per class. Aliased so engine consumers need not
// import internal/hotkey separately.
type HotkeyStats = hotkey.Stats

// HotkeyStatsSource is implemented by groupings whose router classifies
// keys by frequency (D-Choices, W-Choices). The runtime snapshots every
// edge grouping that reports ok into Stats.Hotkeys; implementations
// must be safe to read while the topology runs.
type HotkeyStatsSource interface {
	// HotkeyStats returns the counters and whether this grouping is
	// frequency-aware at all (a plain PKG edge reports false).
	HotkeyStats() (HotkeyStats, bool)
}

// EdgeStats are the counters of one flow-controlled edge (see
// internal/edge): frames shipped, watermark broadcasts, credit stalls
// (the visible form of remote backpressure reaching this process), and
// the retry/failure tally of the reconnect path. Aliased so engine
// consumers need not import internal/edge separately.
type EdgeStats = edge.Stats

// EdgeStatsSource is implemented by bolts that drive a remote edge (the
// window subsystem's forwarders). The runtime snapshots every instance
// that implements it into Stats.Edges; implementations must be safe to
// read while the topology runs.
type EdgeStatsSource interface {
	EdgeStats() EdgeStats
}

// LatencyStats is one latency histogram snapshot (nanosecond
// observations): mergeable across instances, quantile-queryable for
// p50/p99/p999, and subtractable so two reads yield interval rates.
// Aliased so engine consumers need not import internal/metrics.
type LatencyStats = metrics.HistSnapshot

// LatencySeries is one named latency histogram a bolt exposes. Suffix
// is appended to the component name to form the Stats.Latency key:
// "" for the component's own arrival latency, ".staleness" for the
// final stage's window-close staleness.
type LatencySeries struct {
	Suffix string
	Stats  LatencyStats
}

// LatencyStatsSource is implemented by bolts that observe per-tuple
// latency (the window subsystem's partial stage) or window-close
// staleness (the final stage). The runtime snapshots every instance
// that implements it into Stats.Latency; implementations must be safe
// to read while the topology runs.
type LatencyStatsSource interface {
	LatencySeries() []LatencySeries
}

// Stats is a snapshot of per-instance counters, keyed by component name.
type Stats struct {
	PerInstance map[string][]InstanceStats
	// Windows holds the per-instance windowing counters of components
	// whose bolts implement WindowStatsSource.
	Windows map[string][]WindowStats
	// Hotkeys holds the per-emitting-instance hot-key counters of every
	// frequency-aware edge, keyed "from→to" (one slice entry per
	// emitting instance of the upstream component).
	Hotkeys map[string][]HotkeyStats
	// Edges holds the per-instance remote-edge counters of components
	// whose bolts implement EdgeStatsSource (the forwarders of
	// RemotePartial / RemoteFinal topologies).
	Edges map[string][]EdgeStats
	// Latency holds per-instance latency histograms keyed by series
	// name: a sink component's name for emit→sink delivery latency, a
	// windowed partial stage's name for emit→partial arrival latency,
	// and a final stage's name + ".staleness" for window-close
	// staleness (flush wall time − window end). Only sampled tuples
	// (Options.LatencySample) contribute.
	Latency map[string][]LatencyStats
}

// Loads returns the executed-tuple counts of a component's instances —
// the per-PEI load vector the paper's imbalance metric is computed on.
func (s Stats) Loads(component string) []int64 {
	insts := s.PerInstance[component]
	out := make([]int64, len(insts))
	for i, st := range insts {
		out[i] = st.Executed
	}
	return out
}

// TotalExecuted sums the executed counts of a component.
func (s Stats) TotalExecuted(component string) int64 {
	var t int64
	for _, st := range s.PerInstance[component] {
		t += st.Executed
	}
	return t
}

// Fold accumulates another instance's counters into w: counters and the
// Live gauge sum, MaxLive takes the maximum across instances (the worst
// single-instance footprint, the quantity Figure 5(b) plots). It is the
// single aggregation rule for WindowStats, shared by WindowTotals and
// the window subsystem's plan-level folds.
func (w *WindowStats) Fold(x WindowStats) {
	w.Live += x.Live
	if x.MaxLive > w.MaxLive {
		w.MaxLive = x.MaxLive
	}
	w.Flushes += x.Flushes
	w.PartialsOut += x.PartialsOut
	w.Merged += x.Merged
	w.WindowsClosed += x.WindowsClosed
	w.LateDropped += x.LateDropped
	if x.WMLagNs > w.WMLagNs {
		// The fold keeps the worst lag: the slowest instance is the one
		// holding results back (window close waits for the minimum
		// watermark).
		w.WMLagNs = x.WMLagNs
	}
}

// WindowTotals folds a component's per-instance window counters into
// one summary (see WindowStats.Fold).
func (s Stats) WindowTotals(component string) WindowStats {
	var t WindowStats
	for _, w := range s.Windows[component] {
		t.Fold(w)
	}
	return t
}

// HotkeyTotals folds an edge's per-emitter hot-key counters into one
// summary (see hotkey.Stats.Fold). The edge is named "from→to".
func (s Stats) HotkeyTotals(edge string) HotkeyStats {
	var t HotkeyStats
	for _, h := range s.Hotkeys[edge] {
		t.Fold(h)
	}
	return t
}

// EdgeTotals folds a component's per-instance remote-edge counters
// into one summary (see edge.Stats.Fold).
func (s Stats) EdgeTotals(component string) EdgeStats {
	var t EdgeStats
	for _, e := range s.Edges[component] {
		t.Fold(e)
	}
	return t
}

// LatencyTotals merges a series' per-instance latency histograms into
// one snapshot, ready for Quantile(0.5/0.99/0.999).
func (s Stats) LatencyTotals(series string) LatencyStats {
	var t LatencyStats
	for _, h := range s.Latency[series] {
		t = t.Merge(h)
	}
	return t
}

// Imbalance returns max − avg of a component's executed counts.
func (s Stats) Imbalance(component string) float64 {
	loads := s.Loads(component)
	if len(loads) == 0 {
		return 0
	}
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	return float64(max) - float64(sum)/float64(len(loads))
}

// instStats is the live, atomically updated form of InstanceStats.
type instStats struct {
	executed atomic.Int64
	emitted  atomic.Int64
	// lat is the emit→delivery latency histogram of a SINK instance (a
	// bolt with no downstream edges) — nil everywhere else. Sampled
	// tuples carrying a LatStamp observe into it on arrival.
	lat *metrics.Histogram
}

// Runtime executes a Topology: one goroutine per instance, bounded
// channels per bolt instance, cascading channel closure when upstream
// components finish.
type Runtime struct {
	top  *Topology
	opts Options

	stats map[string][]*instStats

	// winMu guards winSrc, hkSrc and edgeSrc: bolt instances and edge
	// groupings register themselves as stats sources when they are
	// created (instances start concurrently and Stats may be called
	// while the topology runs).
	winMu   sync.Mutex
	winSrc  map[string][]WindowStatsSource
	hkSrc   map[string][]HotkeyStatsSource
	edgeSrc map[string][]EdgeStatsSource
	latSrc  map[string][]LatencyStatsSource

	regOnce sync.Once
	reg     *metrics.Registry

	mu       sync.Mutex
	firstErr error
}

// NewRuntime prepares a runtime for the topology.
func NewRuntime(top *Topology, opts Options) *Runtime {
	if opts.QueueSize <= 0 {
		opts.QueueSize = 1024
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.BatchSize > opts.QueueSize {
		// A batch larger than the queue would let emit buffers hold far
		// more tuples than the caller's backpressure budget; clamp so
		// QueueSize keeps bounding in-flight tuples.
		opts.BatchSize = opts.QueueSize
	}
	if opts.LatencySample == 0 {
		opts.LatencySample = 64
	}
	if opts.LatencySample < 0 {
		opts.LatencySample = 0 // disabled
	}
	if opts.TraceSample < 0 {
		opts.TraceSample = 0 // disabled (and the opt-out default)
	}
	if opts.TraceRing > 0 {
		trace.Default.Resize(opts.TraceRing)
	}
	r := &Runtime{top: top, opts: opts, stats: map[string][]*instStats{},
		winSrc:  map[string][]WindowStatsSource{},
		hkSrc:   map[string][]HotkeyStatsSource{},
		edgeSrc: map[string][]EdgeStatsSource{},
		latSrc:  map[string][]LatencyStatsSource{}}
	for _, s := range top.spouts {
		r.stats[s.name] = newInstStats(s.parallelism)
	}
	for _, b := range top.bolts {
		r.stats[b.name] = newInstStats(b.parallelism)
	}
	if opts.LatencySample > 0 {
		// Sink instances (bolts nothing subscribes to) observe sampled
		// tuples' emit→delivery latency on arrival.
		hasDown := map[string]bool{}
		for _, b := range top.bolts {
			for _, in := range b.inputs {
				hasDown[in.from] = true
			}
		}
		for _, b := range top.bolts {
			if hasDown[b.name] {
				continue
			}
			for _, st := range r.stats[b.name] {
				st.lat = metrics.NewHistogram()
			}
		}
	}
	return r
}

func newInstStats(n int) []*instStats {
	out := make([]*instStats, n)
	for i := range out {
		out[i] = &instStats{}
	}
	return out
}

// Stats returns a snapshot of the per-instance counters. It may be called
// while the topology runs (counters are read atomically) or after Run.
func (r *Runtime) Stats() Stats {
	snap := Stats{PerInstance: map[string][]InstanceStats{},
		Windows: map[string][]WindowStats{}, Hotkeys: map[string][]HotkeyStats{},
		Edges: map[string][]EdgeStats{}, Latency: map[string][]LatencyStats{}}
	for name, insts := range r.stats {
		out := make([]InstanceStats, len(insts))
		for i, st := range insts {
			out[i] = InstanceStats{
				Executed: st.executed.Load(),
				Emitted:  st.emitted.Load(),
			}
			if st.lat != nil {
				if snap.Latency[name] == nil {
					snap.Latency[name] = make([]LatencyStats, len(insts))
				}
				snap.Latency[name][i] = st.lat.Snapshot()
			}
		}
		snap.PerInstance[name] = out
	}
	r.winMu.Lock()
	for name, srcs := range r.winSrc {
		out := make([]WindowStats, len(srcs))
		for i, src := range srcs {
			if src != nil {
				out[i] = src.WindowStats()
			}
		}
		snap.Windows[name] = out
	}
	for edgeName, srcs := range r.hkSrc {
		out := make([]HotkeyStats, len(srcs))
		for i, src := range srcs {
			if src != nil {
				out[i], _ = src.HotkeyStats()
			}
		}
		snap.Hotkeys[edgeName] = out
	}
	for name, srcs := range r.edgeSrc {
		out := make([]EdgeStats, len(srcs))
		for i, src := range srcs {
			if src != nil {
				out[i] = src.EdgeStats()
			}
		}
		snap.Edges[name] = out
	}
	for comp, srcs := range r.latSrc {
		for i, src := range srcs {
			if src == nil {
				continue
			}
			for _, se := range src.LatencySeries() {
				name := comp + se.Suffix
				if snap.Latency[name] == nil {
					snap.Latency[name] = make([]LatencyStats, len(srcs))
				}
				snap.Latency[name][i] = se.Stats
			}
		}
	}
	r.winMu.Unlock()
	return snap
}

// registerWindowSource records a bolt instance that exposes windowing
// counters, so Stats can snapshot it.
func (r *Runtime) registerWindowSource(component string, index, parallelism int, src WindowStatsSource) {
	r.winMu.Lock()
	defer r.winMu.Unlock()
	if r.winSrc[component] == nil {
		r.winSrc[component] = make([]WindowStatsSource, parallelism)
	}
	r.winSrc[component][index] = src
}

// registerHotkeySource records a frequency-aware edge grouping (one per
// emitting instance), so Stats can snapshot its hot-key counters.
func (r *Runtime) registerHotkeySource(edgeName string, index, parallelism int, src HotkeyStatsSource) {
	if _, ok := src.HotkeyStats(); !ok {
		return // a plain router edge: nothing to report
	}
	r.winMu.Lock()
	defer r.winMu.Unlock()
	if r.hkSrc[edgeName] == nil {
		r.hkSrc[edgeName] = make([]HotkeyStatsSource, parallelism)
	}
	r.hkSrc[edgeName][index] = src
}

// registerEdgeSource records a bolt instance that drives a remote edge,
// so Stats can snapshot its flow-control counters.
func (r *Runtime) registerEdgeSource(component string, index, parallelism int, src EdgeStatsSource) {
	r.winMu.Lock()
	defer r.winMu.Unlock()
	if r.edgeSrc[component] == nil {
		r.edgeSrc[component] = make([]EdgeStatsSource, parallelism)
	}
	r.edgeSrc[component][index] = src
}

// registerLatencySource records a bolt instance that observes latency,
// so Stats can snapshot its histograms.
func (r *Runtime) registerLatencySource(component string, index, parallelism int, src LatencyStatsSource) {
	r.winMu.Lock()
	defer r.winMu.Unlock()
	if r.latSrc[component] == nil {
		r.latSrc[component] = make([]LatencyStatsSource, parallelism)
	}
	r.latSrc[component][index] = src
}

// MetricsRegistry returns the runtime's metrics registry — executed/
// emitted counters per component and every latency series, all read
// live from Stats at scrape time. Options.MetricsAddr serves it over
// HTTP for the duration of Run; embedders can also mount it themselves.
func (r *Runtime) MetricsRegistry() *metrics.Registry {
	r.regOnce.Do(func() {
		reg := metrics.NewRegistry()
		register := func(name string) {
			insts := r.stats[name]
			labels := fmt.Sprintf("component=%q", name)
			reg.Counter("pkgstream_tuples_executed_total", labels, func() int64 {
				var t int64
				for _, st := range insts {
					t += st.executed.Load()
				}
				return t
			})
			reg.Counter("pkgstream_tuples_emitted_total", labels, func() int64 {
				var t int64
				for _, st := range insts {
					t += st.emitted.Load()
				}
				return t
			})
		}
		for _, s := range r.top.spouts {
			register(s.name)
		}
		for _, b := range r.top.bolts {
			register(b.name)
		}
		reg.HistogramVec("pkgstream_latency_seconds", func() map[string]metrics.HistSnapshot {
			st := r.Stats()
			out := make(map[string]metrics.HistSnapshot, len(st.Latency))
			for name := range st.Latency {
				out[name] = st.LatencyTotals(name)
			}
			return out
		})
		// The paper's headline metric, live: per-worker load (executed
		// tuples per bolt instance — the load vector I(t) is computed
		// on) and the imbalance fraction (max − avg) / total of each
		// component, the normalization of the paper's figures.
		bolts := make([]string, 0, len(r.top.bolts))
		for _, b := range r.top.bolts {
			bolts = append(bolts, b.name)
		}
		reg.GaugeVec("pkgstream_worker_load", func() map[string]float64 {
			out := map[string]float64{}
			for _, name := range bolts {
				for i, st := range r.stats[name] {
					out[fmt.Sprintf("component=%q,instance=\"%d\"", name, i)] =
						float64(st.executed.Load())
				}
			}
			return out
		})
		reg.GaugeVec("pkgstream_imbalance_fraction", func() map[string]float64 {
			out := map[string]float64{}
			for _, name := range bolts {
				var max, sum int64
				n := len(r.stats[name])
				for _, st := range r.stats[name] {
					l := st.executed.Load()
					if l > max {
						max = l
					}
					sum += l
				}
				if n == 0 || sum == 0 {
					out[fmt.Sprintf("component=%q", name)] = 0
					continue
				}
				imb := float64(max) - float64(sum)/float64(n)
				out[fmt.Sprintf("component=%q", name)] = imb / float64(sum)
			}
			return out
		})
		// Backpressure and progress gauges: per-component watermark lag
		// and window backlog (from every WindowStatsSource) plus edge
		// queue depth, in-flight credit and cumulative credit-wait time
		// (from every EdgeStatsSource). All read live at scrape time.
		reg.GaugeVec("pkgstream_watermark_lag_seconds", func() map[string]float64 {
			st := r.Stats()
			out := make(map[string]float64, len(st.Windows))
			for name := range st.Windows {
				out[fmt.Sprintf("component=%q", name)] =
					float64(st.WindowTotals(name).WMLagNs) / 1e9
			}
			return out
		})
		reg.GaugeVec("pkgstream_window_backlog", func() map[string]float64 {
			st := r.Stats()
			out := make(map[string]float64, len(st.Windows))
			for name := range st.Windows {
				out[fmt.Sprintf("component=%q", name)] =
					float64(st.WindowTotals(name).Live)
			}
			return out
		})
		reg.GaugeVec("pkgstream_edge_queue_depth", func() map[string]float64 {
			st := r.Stats()
			out := make(map[string]float64, len(st.Edges))
			for name := range st.Edges {
				out[fmt.Sprintf("component=%q", name)] =
					float64(st.EdgeTotals(name).Queue)
			}
			return out
		})
		reg.GaugeVec("pkgstream_edge_inflight_tuples", func() map[string]float64 {
			st := r.Stats()
			out := make(map[string]float64, len(st.Edges))
			for name := range st.Edges {
				out[fmt.Sprintf("component=%q", name)] =
					float64(st.EdgeTotals(name).InFlight)
			}
			return out
		})
		reg.GaugeVec("pkgstream_edge_credit_wait_seconds_total", func() map[string]float64 {
			st := r.Stats()
			out := make(map[string]float64, len(st.Edges))
			for name := range st.Edges {
				out[fmt.Sprintf("component=%q", name)] =
					float64(st.EdgeTotals(name).WaitNs) / 1e9
			}
			return out
		})
		// Flow-control actuation gauges: the live summed credit window
		// of each remote edge (static edges scrape as connections ×
		// configured window; adaptive edges move with their AIMD
		// controllers) and the per-destination-node service-time
		// estimates the edges learned from ack piggybacks (the weighted
		// argmin's input — a slowed node stands out immediately).
		reg.GaugeVec("pkgstream_edge_credit_window", func() map[string]float64 {
			st := r.Stats()
			out := make(map[string]float64, len(st.Edges))
			for name := range st.Edges {
				out[fmt.Sprintf("component=%q", name)] =
					float64(st.EdgeTotals(name).Window)
			}
			return out
		})
		reg.GaugeVec("pkgstream_edge_service_seconds", func() map[string]float64 {
			st := r.Stats()
			out := map[string]float64{}
			for name := range st.Edges {
				for node, ns := range st.EdgeTotals(name).ServiceNs {
					if ns > 0 {
						out[fmt.Sprintf("component=%q,node=\"%d\"", name, node)] =
							float64(ns) / 1e9
					}
				}
			}
			return out
		})
		r.reg = reg
	})
	return r.reg
}

func (r *Runtime) recordErr(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.firstErr == nil {
		r.firstErr = err
	}
}

// instanceErr converts a recovered panic value into the instance's
// topology error. Panic values that are themselves errors are wrapped
// (not stringified), so typed failures — a remote forwarder's
// *EdgeError after exhausted retries — survive to the Run caller's
// errors.As.
func instanceErr(kind, name string, index int, p any) error {
	if err, ok := p.(error); ok {
		return fmt.Errorf("engine: %s %s[%d] failed: %w", kind, name, index, err)
	}
	return fmt.Errorf("engine: %s %s[%d] panicked: %v", kind, name, index, p)
}

// subscription is one downstream edge of an emitting instance. Routed
// tuples accumulate in a per-destination buffer and move downstream a
// batch at a time through the edge abstraction — in-process topologies
// wire an edge.Local here (one bounded channel per destination, the
// unchanged PR 1 hot path: the interface costs one virtual call per
// BATCH, not per tuple).
type subscription struct {
	out edge.Edge[Tuple]
	// chans is the devirtualized view of a local edge (nil for any
	// other Edge implementation): at BatchSize 1 the interface call
	// per batch is an interface call per TUPLE, so the hot loop sends
	// straight into the channel when it can. Today Run wires ONLY
	// Local edges into subscriptions — remote hops ride forwarder
	// bolts (window.tupleForwarder/remoteFinal), which own their Wire
	// edge directly — so the interface branch below is the seam for a
	// future non-Local subscription edge, not a path the current
	// runtime exercises.
	chans []chan []Tuple
	n     int // destination parallelism
	group Grouping
	bufs  [][]Tuple
	// traced collects, per destination, the trace IDs buffered in bufs
	// awaiting the batch send — when the batch ships, each gets a
	// HopEnqueue span whose duration is the channel-send block time
	// (i.e. the backpressure a traced tuple actually experienced).
	traced [][]uint64
}

// send moves one batch through the subscription's edge. A Send that
// fails breaks the emitting instance (the panic is caught by the
// instance guard); Local edges never fail.
func (s *subscription) send(dst int, batch []Tuple) {
	if s.chans != nil {
		s.chans[dst] <- batch
		return
	}
	if err := s.out.Send(dst, batch); err != nil {
		panic(err)
	}
}

// emitter routes the tuples of one instance. stamp is true for spouts,
// which timestamp tuples for end-to-end latency measurement; the
// timestamp is read once per batch, not once per tuple, so a saturated
// spout pays one clock call per BatchSize emits.
type emitter struct {
	stats   *instStats
	subs    []subscription
	stamp   bool
	keyed   bool // some edge routes by key: hash once per tuple
	batch   int
	stamped int
	pending int // emits not yet added to the shared counter
	now     int64
	// comp is the emitting component's name — the note of HopEmit spans.
	comp string
	// latEvery samples spout emits for latency measurement: every
	// latEvery-th data tuple gets a wall-clock LatStamp (one
	// clock call per latEvery emits — the emit-path overhead knob).
	// Zero (bolts, or sampling disabled) stamps nothing.
	latEvery int
	// sinceLat counts DOWN to the next stamp so the per-tuple cost is
	// one decrement and one zero test; emitters that never stamp
	// (bolts, sampling disabled) start at MaxInt64 and simply never
	// reach zero. A tuple that can't take the stamp (a tick, or a
	// caller-stamped replay) defers it to the next emit.
	sinceLat int64
	// traceEvery / sinceTrace sample spout emits into distributed
	// traces, the same countdown idiom as latEvery / sinceLat: every
	// traceEvery-th data tuple gets a fresh TraceID and a HopEmit span.
	traceEvery int
	sinceTrace int64
}

// Emit implements Emitter. It blocks when a destination queue is full
// and a batch is ready for it.
func (e *emitter) Emit(t Tuple) {
	if e.stamp && t.EmitNanos == 0 {
		// The refresh counter tracks tuples actually stamped — not all
		// emits — so pre-stamped tuples (replays) can never consume a
		// refresh slot and leave fresh tuples with a zero or stale clock.
		if e.stamped%e.batch == 0 {
			e.now = time.Now().UnixNano()
		}
		e.stamped++
		t.EmitNanos = e.now
	}
	if e.sinceLat--; e.sinceLat == 0 {
		if t.Tick || t.LatStamp != 0 {
			e.sinceLat = 1
		} else {
			e.sinceLat = int64(e.latEvery)
			t.LatStamp = LatStampNow()
		}
	}
	if e.sinceTrace--; e.sinceTrace == 0 {
		if t.Tick || t.TraceID != 0 {
			e.sinceTrace = 1 // defer to the next emit
		} else {
			e.sinceTrace = int64(e.traceEvery)
			t.TraceID = trace.NewID()
			trace.Add(t.TraceID, trace.HopEmit, trace.Now(), 0, 0, 0, e.comp)
		}
	}
	if e.keyed {
		t.RouteKey() // hash the key once; every edge routes on the cached hash
	}
	// The shared emitted counter is updated once per batch, not per
	// tuple (Flush settles the remainder), keeping atomics off the
	// per-tuple path.
	e.pending++
	if e.pending >= e.batch {
		e.stats.emitted.Add(int64(e.pending))
		e.pending = 0
	}
	for i := range e.subs {
		s := &e.subs[i]
		var dst int
		if t.TraceID != 0 {
			dst = e.traceSelect(s, t)
		} else {
			dst = s.group.Select(t)
		}
		if dst == BroadcastAll {
			for d := 0; d < s.n; d++ {
				e.push(s, d, t)
			}
			continue
		}
		e.push(s, dst, t)
	}
}

// explainer is implemented by groupings that can render a routing
// decision for a trace span (routerGrouping, i.e. every key-based
// strategy); unknown groupings trace the chosen destination alone.
type explainer interface {
	explainNote(t *Tuple) string
}

// traceSelect is Select for traced tuples: it times the routing
// decision and records a HopRoute span carrying the chosen worker and
// — for key-based strategies — the strategy, key class, candidate set
// and per-candidate loads. It takes the tuple by value so the copy,
// whose address explainNote needs, escapes HERE — in Emit, &t would
// force every tuple onto the heap, traced or not (measured ~90 ns and
// an allocation per emit on the batched path).
func (e *emitter) traceSelect(s *subscription, t Tuple) int {
	start := trace.Now()
	dst := s.group.Select(t)
	dur := trace.Now() - start
	note := ""
	if ex, ok := s.group.(explainer); ok {
		note = ex.explainNote(&t)
	}
	trace.Add(t.TraceID, trace.HopRoute, start, dur, int64(dst), 0, note)
	return dst
}

// push appends t to the destination's pending batch, sending the batch
// downstream when it reaches the flush threshold. Ticks flush the
// destination immediately (after any buffered data, preserving edge
// FIFO) so forwarded timer signals are never delayed behind a partial
// batch. A Send that blocks IS the backpressure signal — local edges
// block on a full channel, wire edges on an exhausted credit window —
// and a Send that fails breaks the emitting instance (the panic is
// caught by the instance guard and surfaces as the topology error).
func (e *emitter) push(s *subscription, dst int, t Tuple) {
	buf := s.bufs[dst]
	if buf == nil {
		buf = make([]Tuple, 0, e.batch)
	}
	buf = append(buf, t)
	if t.TraceID != 0 {
		s.traced[dst] = append(s.traced[dst], t.TraceID)
	}
	if len(buf) >= e.batch || t.Tick {
		e.send(s, dst, buf)
		buf = nil
	}
	s.bufs[dst] = buf
}

// send moves one batch through the subscription, recording a HopEnqueue
// span for every traced tuple it carries (Dur = send block time, Arg1 =
// batch size, Arg2 = destination instance). Untraced batches pay one
// empty-slice check.
func (e *emitter) send(s *subscription, dst int, batch []Tuple) {
	ids := s.traced[dst]
	if len(ids) == 0 {
		s.send(dst, batch)
		return
	}
	start := trace.Now()
	s.send(dst, batch)
	dur := trace.Now() - start
	for _, id := range ids {
		trace.Add(id, trace.HopEnqueue, start, dur, int64(len(batch)), int64(dst), "")
	}
	s.traced[dst] = ids[:0]
}

// Flush sends every pending partial batch downstream and settles the
// emitted counter. The runtime calls it when the emitting instance
// finishes (spout exhausted, bolt cleaned up), so no tuple is ever
// stranded in an emit buffer.
func (e *emitter) Flush() {
	if e.pending > 0 {
		e.stats.emitted.Add(int64(e.pending))
		e.pending = 0
	}
	for i := range e.subs {
		s := &e.subs[i]
		for d, buf := range s.bufs {
			if len(buf) > 0 {
				e.send(s, d, buf)
				s.bufs[d] = nil
			}
		}
	}
}

// Run executes the topology to completion: spouts run until exhausted,
// queues drain, bolts flush via Cleanup, and Run returns the first
// instance error (a recovered panic), if any.
func (r *Runtime) Run() error {
	top := r.top

	if r.opts.MetricsAddr != "" {
		srv, err := metrics.ListenAndServe(r.opts.MetricsAddr, r.MetricsRegistry())
		if err != nil {
			return fmt.Errorf("engine: metrics server: %w", err)
		}
		defer srv.Close()
	}

	// One local edge per bolt: a bounded batch channel per instance.
	// The capacity is the tuple budget divided by the batch size, so
	// QueueSize keeps meaning "about this many buffered tuples".
	qcap := r.opts.QueueSize / r.opts.BatchSize
	if qcap < 1 {
		qcap = 1
	}
	edges := map[string]*edge.Local[Tuple]{}
	for _, b := range top.bolts {
		edges[b.name] = edge.NewLocal[Tuple](b.parallelism, qcap)
	}

	// Upstream sender counts per bolt: when all senders (upstream
	// instances plus the bolt's ticker, if any) are done, the bolt's
	// channels close.
	senders := map[string]*sync.WaitGroup{}
	for _, b := range top.bolts {
		senders[b.name] = &sync.WaitGroup{}
	}
	// Downstream subscriptions per component.
	downstream := map[string][]boltDecl{}
	for _, b := range top.bolts {
		for _, in := range b.inputs {
			downstream[in.from] = append(downstream[in.from], b)
		}
	}
	// Count real upstream senders.
	parallelism := map[string]int{}
	for _, s := range top.spouts {
		parallelism[s.name] = s.parallelism
	}
	for _, b := range top.bolts {
		parallelism[b.name] = b.parallelism
	}
	for _, b := range top.bolts {
		for _, in := range b.inputs {
			senders[b.name].Add(parallelism[in.from])
		}
	}

	// realDone[bolt] closes when every real upstream sender finished —
	// the signal for the bolt's ticker (if any) to stop.
	realDone := map[string]chan struct{}{}
	for _, b := range top.bolts {
		done := make(chan struct{})
		realDone[b.name] = done
		wg := senders[b.name]
		go func() {
			wg.Wait()
			close(done)
		}()
	}

	// Tickers count as senders too, so channels close only after the
	// ticker goroutine has exited (no send-on-closed-channel races).
	var tickers sync.WaitGroup
	closers := map[string]*sync.WaitGroup{}
	for _, b := range top.bolts {
		closerWG := &sync.WaitGroup{}
		closers[b.name] = closerWG
		if b.tickEvery > 0 {
			closerWG.Add(1)
			tickers.Add(1)
			go r.runTicker(b, edges[b.name], realDone[b.name], closerWG, &tickers)
		}
	}
	// Edge closers: wait for real senders + ticker, then close the
	// receive side.
	for _, b := range top.bolts {
		b := b
		go func() {
			senders[b.name].Wait()
			closers[b.name].Wait()
			edges[b.name].CloseRecv()
		}()
	}

	newEmitter := func(comp string, index int, stamp bool) *emitter {
		em := &emitter{stats: r.stats[comp][index], stamp: stamp, batch: r.opts.BatchSize, comp: comp}
		em.sinceLat = math.MaxInt64
		em.sinceTrace = math.MaxInt64
		if stamp {
			em.latEvery = r.opts.LatencySample
			if em.latEvery > 0 {
				em.sinceLat = int64(em.latEvery)
			}
			em.traceEvery = r.opts.TraceSample
			if em.traceEvery > 0 {
				em.sinceTrace = int64(em.traceEvery)
			}
		}
		for _, dst := range downstream[comp] {
			for _, in := range dst.inputs {
				if in.from != comp {
					continue
				}
				seed := edgeSeed(top.seed, comp, dst.name)
				group := in.factory(dst.parallelism, seed, index)
				if !keyOblivious(group) {
					em.keyed = true
				}
				if hs, ok := group.(HotkeyStatsSource); ok {
					r.registerHotkeySource(comp+"→"+dst.name, index, parallelism[comp], hs)
				}
				em.subs = append(em.subs, subscription{
					out:    edges[dst.name],
					chans:  edges[dst.name].Chans(),
					n:      dst.parallelism,
					group:  group,
					bufs:   make([][]Tuple, dst.parallelism),
					traced: make([][]uint64, dst.parallelism),
				})
			}
		}
		return em
	}

	var peis sync.WaitGroup

	// Bolts first (they block on their queues).
	for _, b := range top.bolts {
		for i := 0; i < b.parallelism; i++ {
			b, i := b, i
			peis.Add(1)
			go func() {
				defer peis.Done()
				defer func() {
					// Signal our downstream edges after Cleanup.
					for _, dst := range downstream[b.name] {
						for _, in := range dst.inputs {
							if in.from == b.name {
								senders[dst.name].Done()
							}
						}
					}
				}()
				r.runBolt(b, i, edges[b.name].Recv(i), newEmitter(b.name, i, false))
			}()
		}
	}

	// Spouts.
	for _, s := range top.spouts {
		for i := 0; i < s.parallelism; i++ {
			s, i := s, i
			peis.Add(1)
			go func() {
				defer peis.Done()
				defer func() {
					for _, dst := range downstream[s.name] {
						for _, in := range dst.inputs {
							if in.from == s.name {
								senders[dst.name].Done()
							}
						}
					}
				}()
				r.runSpout(s, i, newEmitter(s.name, i, true))
			}()
		}
	}

	peis.Wait()
	tickers.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.firstErr != nil {
		// Flight-recorder post-mortem: what the process was doing in the
		// spans leading up to the failure, on stderr next to the error.
		trace.DumpFailure(r.firstErr.Error())
	}
	return r.firstErr
}

func (r *Runtime) runTicker(b boltDecl, e *edge.Local[Tuple], done <-chan struct{},
	closerWG, tickers *sync.WaitGroup) {
	defer tickers.Done()
	defer closerWG.Done()
	ticker := time.NewTicker(b.tickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			for i := 0; i < e.Instances(); i++ {
				// Ticks are timing signals: each ships immediately as its
				// own singleton batch instead of waiting behind data.
				if !e.SendUnlessDone(i, []Tuple{{Tick: true}}, done) {
					return
				}
			}
		}
	}
}

func (r *Runtime) runSpout(decl spoutDecl, index int, em *emitter) {
	defer em.Flush() // registered first so it runs after the recover below
	defer func() {
		if p := recover(); p != nil {
			r.recordErr(instanceErr("spout", decl.name, index, p))
		}
	}()
	sp := decl.factory()
	ctx := &Context{Topology: r.top.name, Component: decl.name, Index: index, Parallelism: decl.parallelism}
	sp.Open(ctx)
	defer sp.Close()
	for sp.Next(em) {
	}
}

func (r *Runtime) runBolt(decl boltDecl, index int, in <-chan []Tuple, em *emitter) {
	defer em.Flush() // after Cleanup, before the caller signals downstream
	st := r.stats[decl.name][index]
	bolt := decl.factory()
	if src, ok := bolt.(WindowStatsSource); ok {
		r.registerWindowSource(decl.name, index, decl.parallelism, src)
	}
	if src, ok := bolt.(EdgeStatsSource); ok {
		r.registerEdgeSource(decl.name, index, decl.parallelism, src)
	}
	if src, ok := bolt.(LatencyStatsSource); ok {
		r.registerLatencySource(decl.name, index, decl.parallelism, src)
	}
	ctx := &Context{Topology: r.top.name, Component: decl.name, Index: index, Parallelism: decl.parallelism}

	broken := false
	guard := func(f func()) {
		defer func() {
			if p := recover(); p != nil {
				broken = true
				r.recordErr(instanceErr("bolt", decl.name, index, p))
			}
		}()
		f()
	}
	guard(func() { bolt.Prepare(ctx) })
	for batch := range in {
		if broken {
			continue // keep draining so upstream does not block forever
		}
		r.execBatch(bolt, batch, em, st, &broken, decl.name, index)
	}
	if !broken {
		guard(func() { bolt.Cleanup(em) })
	}
}

// execBatch runs one input batch through the bolt under a single panic
// guard, and settles the executed counter with one atomic add covering
// the batch's data tuples (ticks are timer signals, not load — the
// paper's imbalance is computed on data tuples only). A panic abandons
// the rest of the batch: the bolt is broken from that tuple on, and
// runBolt drains every later batch without executing.
func (r *Runtime) execBatch(bolt Bolt, batch []Tuple, em *emitter, st *instStats,
	broken *bool, name string, index int) {
	data := 0
	defer func() {
		if data > 0 {
			st.executed.Add(int64(data))
		}
		if p := recover(); p != nil {
			*broken = true
			r.recordErr(instanceErr("bolt", name, index, p))
		}
	}()
	lat := st.lat
	for _, t := range batch {
		if !t.Tick {
			data++
			if lat != nil && t.LatStamp != 0 {
				// A sampled tuple arriving at a sink: the end of its
				// emit→delivery measurement.
				lat.Observe(LatSince(t.LatStamp))
			}
		}
		if t.TraceID != 0 {
			// A traced tuple reaching this worker: Dur is the handler
			// time, the note names the component the trace crossed into.
			start := trace.Now()
			bolt.Execute(t, em)
			trace.Add(t.TraceID, trace.HopDispatch, start, trace.Now()-start,
				int64(index), 0, name)
			continue
		}
		bolt.Execute(t, em)
	}
}

// edgeSeed derives the hash seed of an edge from the topology seed and
// the endpoint names, so every emitter on the edge agrees on its hash
// functions while distinct edges stay independent.
func edgeSeed(seed uint64, from, to string) uint64 {
	h := hash.String64(from+"\x00"+to, uint32(seed))
	return h ^ hash.Fmix64(seed)
}

package engine

import (
	"fmt"
	"time"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/route"
)

// EdgeError is the typed failure of a remote topology edge: a forwarder
// exhausted its bounded retries against a node and broke its instance.
// It survives the runtime's panic recovery intact, so Run callers can
// pull it out with errors.As and learn WHICH node of WHICH component
// died — the difference between "the topology failed" and an actionable
// node-failure report.
type EdgeError struct {
	// Component is the forwarding component ("wc.partial", "wc").
	Component string
	// Addr is the unreachable node address.
	Addr string
	// Attempts is the number of delivery attempts made.
	Attempts int
	// Err is the final underlying error.
	Err error
}

// Error implements error.
func (e *EdgeError) Error() string {
	return fmt.Sprintf("engine: edge %s → %s failed after %d attempts: %v",
		e.Component, e.Addr, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *EdgeError) Unwrap() error { return e.Err }

// RemotePartialConfig parameterizes the spout→remote-partial tuple
// edge of a RemotePartial aggregation.
type RemotePartialConfig struct {
	// Addrs are the partial node addresses (required).
	Addrs []string
	// Strategy routes tuples over the nodes: PKG by default, or
	// D-Choices / W-Choices to widen hot keys with the forwarder's own
	// per-source sketch (nothing but keys crosses the wire, exactly as
	// with in-process groupings).
	Strategy route.Strategy
	// StrategySet forces Strategy to be honored verbatim (so KG, whose
	// value is the zero Strategy, is expressible).
	StrategySet bool
	// D is the candidate count for PKG (0: the paper's 2).
	D int
	// Hot carries the hot-key knobs for the frequency-aware strategies.
	Hot hotkey.Config
	// Window is the credit window per node connection in TUPLES
	// (0: the edge default, 1024). Reaching it stalls the forwarder —
	// and through the engine's bounded queues, the spout — until the
	// node acks: end-to-end backpressure across the process boundary.
	Window int
	// MaxBatchTuples caps how many tuples the edge accumulates per
	// node before shipping them as one wire.KindTupleBatch frame (0:
	// the edge default, 256, clamped to Window). 1 restores per-tuple
	// KindTuple frames.
	MaxBatchTuples int
	// MaxBatchBytes caps the encoded bytes per batch (0: the edge
	// default, 32 KiB).
	MaxBatchBytes int
	// Linger bounds how long a partially filled batch may wait for
	// more tuples before the edge ships it anyway (0: the forwarder
	// default, 2ms; negative: no linger flusher — batches ship only
	// when full or at watermarks).
	Linger time.Duration
	// AdaptiveWindow replaces the static credit window with a
	// per-connection AIMD controller: the window grows while
	// credit-wait stays near zero, and halves on sustained stalls or
	// when window × the node's measured service time exceeds the drain
	// budget (bufferbloat ahead of a degraded node). Window then only
	// sets the starting point; MinWindow/MaxWindow bound the
	// adaptation. Off by default.
	AdaptiveWindow bool
	// MinWindow / MaxWindow bound the adaptive window in tuples (0:
	// the edge defaults, 64 and 16× Window). Ignored without
	// AdaptiveWindow.
	MinWindow int
	MaxWindow int
	// WeightedRouting weighs the candidate argmin of the view-driven
	// strategies by each node's ack-piggybacked service time
	// (estimated drain time instead of raw load), the heterogeneous-
	// cluster variant: a slowed node sheds tuples to its keys' other
	// candidates automatically. Off by default.
	WeightedRouting bool
}

// RemotePartialOp is the optional WindowedOp extension behind the
// RemotePartial option: ops that can run their partial stage on remote
// nodes return a forwarder-bolt factory shipping raw tuples over a
// flow-controlled wire edge. Implemented by internal/window.Plan.
type RemotePartialOp interface {
	WindowedOp
	// NewRemotePartial returns the factory for the tuple forwarder
	// replacing the in-process partial stage; seed derives the edge's
	// candidate hash functions.
	NewRemotePartial(cfg RemotePartialConfig, seed uint64) (func() Bolt, error)
}

// RemotePartial runs the aggregation's PARTIAL stage on remote nodes:
// the local component named name+".partial" becomes a forwarder that
// ships raw tuples to the given addresses over a credit-flow-controlled
// wire edge (PKG-routed by default), and the remote nodes — pkgnode
// -mode partial, hosting window.PartialHandler — accumulate, flush and
// forward partials to their configured final nodes. No final stage runs
// locally; results materialize at the final nodes (drain them with
// transport.SubscribeResults or DrainResults). A slow or stalled
// partial node exhausts the edge's credit window, which blocks the
// forwarder, fills its bounded input queue, and stalls the spout —
// exactly the backpressure chain a local channel provides. The op must
// implement RemotePartialOp and use SourceMark watermarks
// (Spec.Sources ≥ 1): stream end is signalled by final marks, not by a
// channel close, across a process boundary.
func RemotePartial(addrs ...string) WindowedOption {
	return RemotePartialOpts(RemotePartialConfig{Addrs: addrs})
}

// RemotePartialOpts is RemotePartial with explicit edge knobs (routing
// strategy, hot-key widening, credit window, tuple batching).
func RemotePartialOpts(cfg RemotePartialConfig) WindowedOption {
	return func(c *windowedCfg) { c.remotePartial = &cfg }
}

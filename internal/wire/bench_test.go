package wire

import (
	"fmt"
	"testing"
)

// BenchmarkWireTuple measures one encode+decode round trip of a tuple
// frame — the hot path of the TCP transport. The PR-4 acceptance floor
// is 5M tuples/s; the hand-rolled codec runs well above it because the
// keyed-by-hash path (what transport.Source.Send emits) touches no
// allocator at all: encode appends into a reused buffer and decode
// reuses the Values slice.
func BenchmarkWireTuple(b *testing.B) {
	cases := []struct {
		name string
		t    Tuple
	}{
		{"hash-only", Tuple{KeyHash: 0x9e3779b97f4a7c15, EmitNanos: 1234567890}},
		{"string-key+2vals", Tuple{
			KeyHash: 42, Key: "the-quick-brown-fox", EmitNanos: 77,
			Values: []any{int64(123456), "payload"},
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			buf, err := AppendTuple(nil, &tc.t)
			if err != nil {
				b.Fatal(err)
			}
			var out Tuple
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err = AppendTuple(buf[:0], &tc.t)
				if err != nil {
					b.Fatal(err)
				}
				if err := DecodeTuple(buf[HeaderSize:], &out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if out.KeyHash != tc.t.KeyHash {
				b.Fatal("round trip lost the key hash")
			}
		})
	}
}

// BenchmarkWirePartial is the partial-flush path: what every aggregation
// period ships per live (key, window) pair.
func BenchmarkWirePartial(b *testing.B) {
	p := Partial{KeyHash: 7, Key: "word", Start: 30_000_000_000, Count: 1234}
	buf := AppendPartial(nil, &p)
	var out Partial
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendPartial(buf[:0], &p)
		if err := DecodePartial(buf[HeaderSize:], &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireSketch round-trips a checkpoint-sized summary (5W items
// at W=50) — the restart path, not a hot path, recorded for scale.
func BenchmarkWireSketch(b *testing.B) {
	s := Sketch{K: 250, N: 1_000_000}
	for i := 0; i < 250; i++ {
		s.Items = append(s.Items, SketchItem{
			Item: uint64(i) * 0x9e3779b9, Count: int64(250-i) * 1000, Err: int64(i),
		})
	}
	buf := AppendSketch(nil, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendSketch(buf[:0], &s)
		if _, err := DecodeSketch(buf[HeaderSize:]); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprintf("%d", len(buf))
}

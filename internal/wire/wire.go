// Package wire is the serialized form of everything that crosses a
// process boundary in a distributed PKG topology. The paper's whole
// point is *practical* load balancing for distributed stream processing
// engines — §V evaluates PKG across real Storm workers — and the
// windowed two-phase aggregation (internal/window) only spans processes
// once partials, watermarks and sketch summaries have a wire form. This
// package supplies it as a length-prefixed binary codec, hand-rolled
// (no reflection, no gob) so the tuple hot path stays at tens of
// millions of frames per second.
//
// Every frame is
//
//	version (1 byte) | kind (1 byte) | payload length (uint32 LE) | payload
//
// The version byte makes the protocol evolvable: a decoder rejects
// frames from a different version instead of misreading them. Payload
// lengths are bounded (MaxPayload) so a corrupt or hostile header can
// never drive an allocation. Decoding NEVER panics — every truncation,
// overflow and unknown tag returns an error (FuzzRoundTrip in this
// package holds that line).
//
// The five frame families:
//
//	Tuple    — a stream tuple: uint64 routing hash, optional string
//	           key, typed values (source → worker, fire and forget);
//	Partial  — one flushed (key, window) partial accumulator of the
//	           windowed two-phase aggregation (partial stage → final);
//	Mark     — a watermark from one source, identified by its source
//	           ID so the final stage can advance on the minimum across
//	           live sources;
//	Sketch   — a Space-Saving summary snapshot, used to checkpoint a
//	           source's hot-key classifier across restarts;
//	Query /  — a point-query request and its reply (client → worker →
//	Reply      client): per-key counts, closed window results, or
//	           node statistics.
//
// Three control families added for flow-controlled edges and push
// delivery (PR 5):
//
//	Credit    — sender → worker: opens a credit-based flow-control
//	            session on the connection, declaring the maximum number
//	            of unacknowledged tuples the sender will keep in
//	            flight;
//	Ack       — worker → sender: the cumulative count of tuples
//	            absorbed on this connection, replenishing the sender's
//	            credit window (a slow worker therefore stalls its
//	            sender instead of ballooning the TCP buffer);
//	Subscribe — client → final node: register this connection for push
//	            delivery of closed-window results (Reply frames are
//	            then server-initiated, removing the poll).
//
// One data family added for batched edges (PR 6):
//
//	TupleBatch — n stream tuples under ONE header: a uvarint count
//	             followed by n contiguous tuple bodies (the KindTuple
//	             payload layout, which is self-delimiting — no
//	             per-tuple header, version byte, or length prefix).
//	             This is what lets a flow-controlled edge amortize
//	             framing, syscalls and credit accounting over a whole
//	             batch. The protocol version stays 1: kinds are part
//	             of the header validation, so a pre-batch decoder
//	             rejects a TupleBatch frame cleanly ("unknown frame
//	             kind") instead of misreading it.
//
// One control family added for adaptive flow control (PR 10):
//
//	CreditUpdate — sender → worker: re-sizes a live flow-control
//	               session's window mid-stream, so the sender's AIMD
//	               controller can grow or shrink the in-flight bound
//	               without redialing. Additive under the same version-1
//	               unknown-kind rules as TupleBatch; Ack frames gained
//	               an optional trailing service-time field (old acks
//	               end at the count and keep decoding unchanged).
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version emitted and accepted by this build.
const Version = 1

// HeaderSize is the fixed size of every frame header.
const HeaderSize = 6

// MaxPayload bounds a frame's payload so a corrupt length field cannot
// drive an allocation (16 MiB is orders of magnitude above any frame
// this tree emits).
const MaxPayload = 1 << 24

// Kind identifies a frame family.
type Kind uint8

// The frame kinds.
const (
	KindInvalid Kind = iota
	// KindTuple is a stream tuple.
	KindTuple
	// KindPartial is one flushed (key, window) partial state.
	KindPartial
	// KindMark is a source watermark.
	KindMark
	// KindSketch is a Space-Saving summary snapshot.
	KindSketch
	// KindQuery is a point-query request.
	KindQuery
	// KindReply is a point-query reply.
	KindReply
	// KindCredit opens a flow-control session (sender → worker).
	KindCredit
	// KindAck replenishes a sender's credit window (worker → sender).
	KindAck
	// KindSubscribe registers a connection for result pushes.
	KindSubscribe
	// KindTupleBatch is a batch of stream tuples under one header.
	KindTupleBatch
	// KindCreditUpdate re-sizes a live flow-control session's window
	// mid-stream (sender → worker).
	KindCreditUpdate
	kindEnd
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindTuple:
		return "tuple"
	case KindPartial:
		return "partial"
	case KindMark:
		return "mark"
	case KindSketch:
		return "sketch"
	case KindQuery:
		return "query"
	case KindReply:
		return "reply"
	case KindCredit:
		return "credit"
	case KindAck:
		return "ack"
	case KindSubscribe:
		return "subscribe"
	case KindTupleBatch:
		return "tuple-batch"
	case KindCreditUpdate:
		return "credit-update"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Tuple is the wire form of a stream tuple: the 64-bit routing hash
// every strategy routes on, the optional string key, the event-time
// stamp, and a small set of typed values. Supported value types are
// int64, int (encoded as int64), uint64, float64, bool, string and
// []byte; AppendTuple reports anything else as an error instead of
// guessing.
type Tuple struct {
	// KeyHash is the 64-bit routing hash (engine.Tuple.KeyHash).
	KeyHash uint64
	// Key is the string key ("" for integer-keyed streams).
	Key string
	// EmitNanos is the event-time stamp in nanoseconds.
	EmitNanos int64
	// LatStamp is the wall-clock latency stamp of a sampled tuple
	// (engine.Tuple.LatStamp, absolute microseconds mod 2^32); 0 means
	// "not sampled" and costs nothing on the wire — the 4-byte stamp
	// travels only when present (flag bit 4).
	LatStamp uint32
	// TraceID is the distributed trace ID of a sampled tuple
	// (engine.Tuple.TraceID); 0 means "not traced" and costs nothing on
	// the wire — the 8-byte ID travels only when present (flag bit 8).
	TraceID uint64
	// Tick marks control tuples.
	Tick bool
	// Values is the payload.
	Values []any
}

// Partial is the wire form of one flushed (key, window) partial
// accumulator. On the Combiner fast path the state is a single int64
// (Count); general aggregator states travel as opaque bytes (Raw,
// encoded by a window.StateCodec).
type Partial struct {
	// KeyHash is the 64-bit routing hash (the final stage key-groups
	// partials on it).
	KeyHash uint64
	// Key is the original string key ("" for integer-keyed streams).
	Key string
	// Start is the window start in event-time nanoseconds.
	Start int64
	// Count is the int64 accumulator of the Combiner fast path.
	Count int64
	// Raw is the encoded accumulator of a general aggregator; nil
	// selects the Count fast path.
	Raw []byte
	// TraceID carries a traced tuple's trace ID onto the partial that
	// ships its window state downstream (flag bit 4); 0 means "no
	// traced tuple touched this window" and costs nothing on the wire.
	TraceID uint64
}

// Mark is the wire form of a watermark: source Source promises to never
// again send a tuple or partial with event time below WM. A WM of
// math.MaxInt64 is the source's final mark — "this source is done". The
// receiving final stage advances on the minimum across all live
// sources, which is what removes the manual lateness knob for
// multi-source topologies.
type Mark struct {
	// Source identifies the emitting source (globally unique per
	// stream; a remote windowed plan uses the partial instance index).
	Source uint32
	// WM is the watermark in event-time nanoseconds.
	WM int64
}

// Final reports whether this is the source's final mark.
func (m Mark) Final() bool { return m.WM == math.MaxInt64 }

// SketchItem is one monitored item of a Space-Saving summary.
type SketchItem struct {
	// Item is the item identifier (a key hash).
	Item uint64
	// Count is the estimated frequency (never negative).
	Count int64
	// Err bounds the overestimation of Count (never negative).
	Err int64
}

// Sketch is the wire form of a Space-Saving summary — the O(5W)
// checkpoint a source persists so a restart does not route head keys as
// cold until the sketch re-warms.
type Sketch struct {
	// K is the summary capacity.
	K int
	// N is the total observation weight.
	N int64
	// Items are the monitored items (at most K).
	Items []SketchItem
}

// QueryOp selects what a Query asks for.
type QueryOp uint8

// The query operations.
const (
	// OpCount asks for the node's count for Key (a counter worker's
	// partial count, or a final node's total over closed windows).
	OpCount QueryOp = 1
	// OpResults asks a final node for its closed window results so far
	// plus whether every expected source has sent its final mark.
	OpResults QueryOp = 2
	// OpStats asks for the node's absorbed frame count.
	OpStats QueryOp = 3
	// OpTrace asks for the node's retained trace spans (the flight
	// recorder ring) plus its process name, so a client can assemble
	// cross-process traces without HTTP.
	OpTrace QueryOp = 4
)

// Query is a point-query request.
type Query struct {
	// Op selects the operation.
	Op QueryOp
	// Key is the queried key hash (OpCount only).
	Key uint64
}

// WindowResult is one closed (key, window) pair in an OpResults reply.
type WindowResult struct {
	// KeyHash is the key's routing hash.
	KeyHash uint64
	// Key is the string key ("" for integer-keyed streams).
	Key string
	// Start and End delimit the window in event-time nanoseconds.
	Start, End int64
	// Value is the aggregated value on the int64 fast path.
	Value int64
	// Raw is the encoded value of a general aggregator; nil selects
	// Value.
	Raw []byte
}

// HistBucket is one non-empty bucket of a wire latency histogram.
type HistBucket struct {
	// Index is the bucket index in the log-linear layout of
	// internal/metrics (metrics.HistSnapshot.Sparse).
	Index uint32
	// Count is the bucket's observation count (never negative).
	Count int64
}

// LatencyHist is the wire form of a latency histogram snapshot: the
// sparse non-empty buckets plus the observation sum in nanoseconds.
// Mergeable on the receiving side (metrics.FromSparse + Merge), so a
// source pulls per-node latency summaries over the existing OpStats
// query without HTTP.
type LatencyHist struct {
	// Sum is the total of all observations in nanoseconds.
	Sum int64
	// Buckets are the non-empty buckets in ascending index order.
	Buckets []HistBucket
}

// Span is the wire form of one trace span (internal/trace.Span): a hop
// of a traced tuple's life, or a flight-recorder event (Trace 0). Spans
// travel in OpTrace replies as a trailing section so the pipeline
// experiment can assemble a tuple's cross-process causal path over the
// existing query channel.
type Span struct {
	// Trace is the tuple's trace ID (0 for flight-recorder events).
	Trace uint64
	// Start is the span's wall-clock start in nanoseconds since the
	// epoch; Dur its duration in nanoseconds.
	Start, Dur int64
	// Arg1, Arg2 are hop-specific integers.
	Arg1, Arg2 int64
	// Hop identifies the emitting layer (trace.Hop).
	Hop byte
	// Note is a short human-readable detail line.
	Note string
}

// Reply is a point-query reply.
type Reply struct {
	// Op echoes the request operation.
	Op QueryOp
	// Count answers OpCount and OpStats.
	Count int64
	// Done reports whether every expected source has sent its final
	// mark (OpResults).
	Done bool
	// Results are the closed windows so far (OpResults).
	Results []WindowResult
	// Lat is the node's tuple-latency histogram (OpStats, optional —
	// encoded as a trailing section, so pre-histogram decoders that
	// reject trailing bytes simply predate this field).
	Lat *LatencyHist
	// Stale is the node's window-close staleness histogram (OpStats,
	// optional).
	Stale *LatencyHist
	// Proc names the replying process (OpTrace — the process tag the
	// client stamps onto the returned spans when assembling
	// cross-process traces).
	Proc string
	// Spans are the node's retained trace spans (OpTrace, oldest
	// first — encoded as trailing section id 3, invisible to decoders
	// that predate it exactly like the histograms).
	Spans []Span
	// Telemetry is the node's backpressure and progress snapshot
	// (OpStats, optional — trailing section id 4, same compatibility
	// rule as the histograms and spans).
	Telemetry *Telemetry
}

// Telemetry is a node's backpressure and progress snapshot, carried on
// OpStats replies so a cluster-level poller (internal/obs, cmd/pkgtop)
// can merge one view without scraping every node's /metrics endpoint.
// The zero value means "nothing to report"; every field is a snapshot
// at reply time, not a delta.
type Telemetry struct {
	// EdgeInFlight is the number of unacknowledged tuples currently in
	// flight on the node's outbound flow-controlled edge; EdgeQueue is
	// the number of tuples buffered in local edge queues.
	EdgeInFlight, EdgeQueue int64
	// EdgeFrames counts frames sent on the outbound edge; EdgeStalls
	// counts sends that blocked on an exhausted credit window, and
	// EdgeWaitNs is the total nanoseconds those stalls lasted — the
	// stalls/frames and wait/wall ratios are the edge's backpressure
	// signal.
	EdgeFrames, EdgeStalls, EdgeWaitNs int64
	// WatermarkLagNs is how far, in nanoseconds, the node's minimum
	// source watermark trailed wall clock when it last advanced on a
	// wall-clock timeline (0 until a wall-clock mark arrives, frozen at
	// its last value once sources finish).
	WatermarkLagNs int64
	// WindowBacklog is the number of open (live) window slots.
	WindowBacklog int64
	// ServiceNs is the node's per-tuple service-time EWMA on the
	// dispatch path, in nanoseconds (0 until sampled).
	ServiceNs int64
	// EdgeWindow is the summed live credit window of the node's
	// outbound flow-controlled edge connections, in tuples (optional —
	// flag bit 2; 0 on nodes without a flow-controlled edge). Under the
	// adaptive controller this is the actuated value the in-flight
	// gauge is bounded by.
	EdgeWindow int64
	// CreditWait is the credit-stall wait-time histogram (optional).
	CreditWait *LatencyHist
}

// Credit opens a credit-based flow-control session on a connection
// (sender → worker). The sender promises to keep at most Window data
// items unacknowledged in flight, and the worker answers with
// cumulative Ack frames as it absorbs them. The window is denominated
// in TUPLES, not frames: a KindTuple or KindPartial frame costs one
// credit, a KindTupleBatch of n tuples costs n — so batching changes
// the framing, never the amount of buffered data a slow worker admits.
// Marks and queries are control traffic and exempt. A connection that
// never sends Credit runs un-flow-controlled, exactly as before — the
// session is strictly opt-in, so old senders keep working.
type Credit struct {
	// Window is the maximum number of unacknowledged tuples the sender
	// keeps in flight (≥ 1).
	Window int64
}

// Ack replenishes a sender's credit window (worker → sender): Count is
// the cumulative number of tuples the worker has absorbed (n per
// tuple batch) — not a delta — so a lost or reordered Ack can only
// under-report, never double-credit.
type Ack struct {
	// Count is the cumulative absorbed tuple count (≥ 0).
	Count int64
	// ServiceNs piggybacks the worker's per-tuple service-time EWMA in
	// nanoseconds (0: not sampled yet / an old worker — the field is
	// optional on the wire, so pre-update acks keep decoding).
	ServiceNs int64
}

// CreditUpdate re-sizes a live flow-control session's window
// (sender → worker): the sender's adaptive controller announces its
// new in-flight bound so the worker's ack cadence (every window/2
// absorbed tuples) tracks the CURRENT window. A worker that holds
// unacknowledged residue when the update arrives acks immediately —
// otherwise a window shrunk below the old cadence threshold could
// leave the sender waiting on an ack the worker would never send.
// Workers that predate the kind drop the unknown frame at ParseHeader,
// which fails the connection — the sender only emits updates when its
// adaptive mode is explicitly enabled.
type CreditUpdate struct {
	// Window is the new maximum number of unacknowledged tuples the
	// sender keeps in flight (≥ 1).
	Window int64
}

// Subscribe registers the connection it arrives on for push delivery of
// closed-window results: the final node then writes server-initiated
// Reply frames (OpResults-shaped) whenever windows close, removing the
// DrainResults poll from latency-sensitive consumers.
type Subscribe struct {
	// Offset is the index into the node's append-only result log at
	// which pushes start (0: everything, including results that closed
	// before the subscription).
	Offset int64
}

// Value type tags.
const (
	tInt64 byte = iota + 1
	tUint64
	tFloat64
	tBool
	tString
	tBytes
)

// frame reserves a header for kind k on dst and returns (dst, payload
// start) — finish backfills the length.
func frame(dst []byte, k Kind) ([]byte, int) {
	dst = append(dst, Version, byte(k), 0, 0, 0, 0)
	return dst, len(dst)
}

// finish backfills the payload length of the frame whose payload starts
// at `start`.
func finish(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start-4:start], uint32(len(dst)-start))
	return dst
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendTuple appends t as a framed KindTuple to dst and returns the
// extended slice. It reports an error (leaving dst unchanged in the
// returned slice) if a value has an unsupported type.
func AppendTuple(dst []byte, t *Tuple) ([]byte, error) {
	undo := len(dst)
	dst, start := frame(dst, KindTuple)
	dst, err := AppendTupleBody(dst, t)
	if err != nil {
		return dst[:undo], err
	}
	return finish(dst, start), nil
}

// AppendTupleBody appends t's encoded body — the KindTuple payload
// layout, with no frame header — to dst. Bodies are self-delimiting, so
// a batched edge accumulates them contiguously in a per-destination
// buffer and frames the whole run as one KindTupleBatch. On an
// unsupported value type the returned slice is dst unchanged.
func AppendTupleBody(dst []byte, t *Tuple) ([]byte, error) {
	undo := len(dst)
	var flags byte
	if t.Tick {
		flags |= 1
	}
	if t.Key == "" && len(t.Values) == 0 && t.LatStamp == 0 && t.TraceID == 0 {
		// Hash-only tuple — the per-tuple cost of a routing-heavy
		// stream: emit the fixed 18-byte body with one append and two
		// direct stores instead of four appends. Reused buffers take
		// the reslice arm and skip append's zeroing.
		n := len(dst)
		if cap(dst)-n >= tupleBodyMin {
			dst = dst[:n+tupleBodyMin]
		} else {
			dst = append(dst, make([]byte, tupleBodyMin)...)
		}
		b := dst[n:]
		b[0] = flags
		binary.LittleEndian.PutUint64(b[1:], t.KeyHash)
		binary.LittleEndian.PutUint64(b[9:], uint64(t.EmitNanos))
		b[17] = 0 // value count
		return dst, nil
	}
	if t.Key != "" {
		flags |= 2
	}
	if t.LatStamp != 0 {
		flags |= 4
	}
	if t.TraceID != 0 {
		flags |= 8
	}
	dst = append(dst, flags)
	dst = appendU64(dst, t.KeyHash)
	dst = appendI64(dst, t.EmitNanos)
	if t.LatStamp != 0 {
		dst = appendU32(dst, t.LatStamp)
	}
	if t.TraceID != 0 {
		dst = appendU64(dst, t.TraceID)
	}
	if t.Key != "" {
		dst = appendStr(dst, t.Key)
	}
	dst = binary.AppendUvarint(dst, uint64(len(t.Values)))
	for _, v := range t.Values {
		switch v := v.(type) {
		case int64:
			dst = append(dst, tInt64)
			dst = appendI64(dst, v)
		case int:
			dst = append(dst, tInt64)
			dst = appendI64(dst, int64(v))
		case uint64:
			dst = append(dst, tUint64)
			dst = appendU64(dst, v)
		case float64:
			dst = append(dst, tFloat64)
			dst = appendU64(dst, math.Float64bits(v))
		case bool:
			dst = append(dst, tBool)
			if v {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case string:
			dst = append(dst, tString)
			dst = appendStr(dst, v)
		case []byte:
			dst = append(dst, tBytes)
			dst = appendBytes(dst, v)
		default:
			return dst[:undo], fmt.Errorf("wire: tuple value of unsupported type %T", v)
		}
	}
	return dst, nil
}

// AppendTupleBatch appends ts as one framed KindTupleBatch to dst: a
// uvarint tuple count followed by the tuples' contiguous bodies. On an
// unsupported value type the returned slice is dst unchanged.
func AppendTupleBatch(dst []byte, ts []Tuple) ([]byte, error) {
	undo := len(dst)
	dst, start := frame(dst, KindTupleBatch)
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	for i := range ts {
		var err error
		if dst, err = AppendTupleBody(dst, &ts[i]); err != nil {
			return dst[:undo], err
		}
	}
	return finish(dst, start), nil
}

// AppendTupleBatchHeader appends the frame header and count prefix of a
// KindTupleBatch whose count tuple bodies span bodyLen bytes. The
// near-zero-copy half of the batched edge: the sender writes this
// prefix and then the accumulated body buffer straight to its
// connection, never assembling header and bodies into one allocation.
func AppendTupleBatchHeader(dst []byte, count, bodyLen int) []byte {
	dst, start := frame(dst, KindTupleBatch)
	dst = binary.AppendUvarint(dst, uint64(count))
	binary.LittleEndian.PutUint32(dst[start-4:start], uint32(len(dst)-start+bodyLen))
	return dst
}

// AppendPartial appends p as a framed KindPartial to dst.
func AppendPartial(dst []byte, p *Partial) []byte {
	dst, start := frame(dst, KindPartial)
	var flags byte
	if p.Key != "" {
		flags |= 1
	}
	if p.Raw != nil {
		flags |= 2
	}
	if p.TraceID != 0 {
		flags |= 4
	}
	dst = append(dst, flags)
	dst = appendU64(dst, p.KeyHash)
	dst = appendI64(dst, p.Start)
	if p.TraceID != 0 {
		dst = appendU64(dst, p.TraceID)
	}
	if p.Raw != nil {
		dst = appendBytes(dst, p.Raw)
	} else {
		dst = appendI64(dst, p.Count)
	}
	if p.Key != "" {
		dst = appendStr(dst, p.Key)
	}
	return finish(dst, start)
}

// AppendMark appends m as a framed KindMark to dst.
func AppendMark(dst []byte, m Mark) []byte {
	dst, start := frame(dst, KindMark)
	dst = binary.AppendUvarint(dst, uint64(m.Source))
	dst = appendI64(dst, m.WM)
	return finish(dst, start)
}

// AppendSketch appends s as a framed KindSketch to dst. Items with
// negative counts or error bounds are rejected by the decoder, not the
// encoder — a sketch snapshot never contains them.
func AppendSketch(dst []byte, s *Sketch) []byte {
	dst, start := frame(dst, KindSketch)
	dst = binary.AppendUvarint(dst, uint64(s.K))
	dst = appendI64(dst, s.N)
	dst = binary.AppendUvarint(dst, uint64(len(s.Items)))
	for _, it := range s.Items {
		dst = appendU64(dst, it.Item)
		dst = binary.AppendUvarint(dst, uint64(it.Count))
		dst = binary.AppendUvarint(dst, uint64(it.Err))
	}
	return finish(dst, start)
}

// AppendQuery appends q as a framed KindQuery to dst.
func AppendQuery(dst []byte, q Query) []byte {
	dst, start := frame(dst, KindQuery)
	dst = append(dst, byte(q.Op))
	dst = appendU64(dst, q.Key)
	return finish(dst, start)
}

// AppendReply appends r as a framed KindReply to dst.
func AppendReply(dst []byte, r *Reply) []byte {
	dst, start := frame(dst, KindReply)
	dst = append(dst, byte(r.Op))
	dst = appendI64(dst, r.Count)
	if r.Done {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Results)))
	for i := range r.Results {
		res := &r.Results[i]
		var flags byte
		if res.Key != "" {
			flags |= 1
		}
		if res.Raw != nil {
			flags |= 2
		}
		dst = append(dst, flags)
		dst = appendU64(dst, res.KeyHash)
		dst = appendI64(dst, res.Start)
		dst = appendI64(dst, res.End)
		if res.Raw != nil {
			dst = appendBytes(dst, res.Raw)
		} else {
			dst = appendI64(dst, res.Value)
		}
		if res.Key != "" {
			dst = appendStr(dst, res.Key)
		}
	}
	spanSec := r.Spans != nil || r.Proc != ""
	if r.Lat != nil || r.Stale != nil || spanSec || r.Telemetry != nil {
		// Trailing optional section: id-tagged entries so any subset can
		// travel alone; pre-section decoders reject the trailing bytes
		// cleanly and so simply predate these fields.
		var n byte
		if r.Lat != nil {
			n++
		}
		if r.Stale != nil {
			n++
		}
		if spanSec {
			n++
		}
		if r.Telemetry != nil {
			n++
		}
		dst = append(dst, n)
		if r.Lat != nil {
			dst = appendHist(dst, histIDLat, r.Lat)
		}
		if r.Stale != nil {
			dst = appendHist(dst, histIDStale, r.Stale)
		}
		if spanSec {
			dst = append(dst, secIDSpans)
			dst = appendStr(dst, r.Proc)
			dst = binary.AppendUvarint(dst, uint64(len(r.Spans)))
			for i := range r.Spans {
				s := &r.Spans[i]
				dst = appendU64(dst, s.Trace)
				dst = appendI64(dst, s.Start)
				dst = appendI64(dst, s.Dur)
				dst = appendI64(dst, s.Arg1)
				dst = appendI64(dst, s.Arg2)
				dst = append(dst, s.Hop)
				dst = appendStr(dst, s.Note)
			}
		}
		if t := r.Telemetry; t != nil {
			dst = append(dst, secIDTelemetry)
			var flags byte
			if t.CreditWait != nil {
				flags |= 1
			}
			if t.EdgeWindow > 0 {
				flags |= 2
			}
			dst = append(dst, flags)
			dst = appendI64(dst, t.EdgeInFlight)
			dst = appendI64(dst, t.EdgeQueue)
			dst = appendI64(dst, t.EdgeFrames)
			dst = appendI64(dst, t.EdgeStalls)
			dst = appendI64(dst, t.EdgeWaitNs)
			dst = appendI64(dst, t.WatermarkLagNs)
			dst = appendI64(dst, t.WindowBacklog)
			dst = appendI64(dst, t.ServiceNs)
			if t.EdgeWindow > 0 {
				dst = appendI64(dst, t.EdgeWindow)
			}
			if t.CreditWait != nil {
				dst = appendHistBody(dst, t.CreditWait)
			}
		}
	}
	return finish(dst, start)
}

// Entry ids of the Reply trailing section.
const (
	histIDLat      byte = 1
	histIDStale    byte = 2
	secIDSpans     byte = 3
	secIDTelemetry byte = 4
)

func appendHist(dst []byte, id byte, h *LatencyHist) []byte {
	return appendHistBody(append(dst, id), h)
}

func appendHistBody(dst []byte, h *LatencyHist) []byte {
	dst = appendI64(dst, h.Sum)
	dst = binary.AppendUvarint(dst, uint64(len(h.Buckets)))
	for _, b := range h.Buckets {
		dst = binary.AppendUvarint(dst, uint64(b.Index))
		dst = binary.AppendUvarint(dst, uint64(b.Count))
	}
	return dst
}

// AppendCredit appends c as a framed KindCredit to dst.
func AppendCredit(dst []byte, c Credit) []byte {
	dst, start := frame(dst, KindCredit)
	dst = binary.AppendUvarint(dst, uint64(c.Window))
	return finish(dst, start)
}

// AppendAck appends a as a framed KindAck to dst. The service-time
// field travels only when set, so pre-update receivers (which stop
// after Count) and the zero value stay byte-identical to the old
// encoding.
func AppendAck(dst []byte, a Ack) []byte {
	dst, start := frame(dst, KindAck)
	dst = binary.AppendUvarint(dst, uint64(a.Count))
	if a.ServiceNs > 0 {
		dst = binary.AppendUvarint(dst, uint64(a.ServiceNs))
	}
	return finish(dst, start)
}

// AppendCreditUpdate appends u as a framed KindCreditUpdate to dst.
func AppendCreditUpdate(dst []byte, u CreditUpdate) []byte {
	dst, start := frame(dst, KindCreditUpdate)
	dst = binary.AppendUvarint(dst, uint64(u.Window))
	return finish(dst, start)
}

// AppendSubscribe appends s as a framed KindSubscribe to dst.
func AppendSubscribe(dst []byte, s Subscribe) []byte {
	dst, start := frame(dst, KindSubscribe)
	dst = binary.AppendUvarint(dst, uint64(s.Offset))
	return finish(dst, start)
}

// reader is a bounds-checked cursor over one payload. All take methods
// return an error instead of panicking on truncated input.
type reader struct {
	b   []byte
	off int
}

var errTruncated = fmt.Errorf("wire: truncated payload")

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint")
	}
	r.off += n
	return v, nil
}

// length reads a uvarint length and checks it fits the remaining
// payload, so a corrupt length can never drive an allocation beyond the
// frame it arrived in.
func (r *reader) length() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b)-r.off) {
		return 0, fmt.Errorf("wire: length %d exceeds payload", v)
	}
	return int(v), nil
}

func (r *reader) str() (string, error) {
	n, err := r.length()
	if err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.length()
	if err != nil {
		return nil, err
	}
	b := make([]byte, n)
	copy(b, r.b[r.off:r.off+n])
	r.off += n
	return b, nil
}

func (r *reader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// DecodeTuple decodes a KindTuple payload into t, reusing t.Values'
// capacity. On error t's contents are unspecified.
func DecodeTuple(p []byte, t *Tuple) error {
	r := reader{b: p}
	if err := decodeTupleBody(&r, t); err != nil {
		return err
	}
	return r.done()
}

// tupleBodyMin is the smallest encoded tuple body: flags (1), key hash
// (8), emit time (8), value count (≥ 1). DecodeTupleBatch divides by it
// to keep a corrupt batch count from pre-allocating beyond what the
// payload could actually hold.
const tupleBodyMin = 18

// DecodeTupleBatch decodes a KindTupleBatch payload, returning the
// tuples appended to ts[:0] — steady-state callers pass the previous
// result back in, so the slice and each element's Values capacity are
// reused and decoding allocates nothing. On error the returned slice's
// contents are unspecified (its capacity remains reusable).
func DecodeTupleBatch(p []byte, ts []Tuple) ([]Tuple, error) {
	r := reader{b: p}
	n, err := r.uvarint()
	if err != nil {
		return ts, err
	}
	if n > uint64(len(p))/tupleBodyMin {
		return ts, errTruncated
	}
	ts = ts[:0]
	for i := uint64(0); i < n; i++ {
		if len(ts) < cap(ts) {
			ts = ts[:len(ts)+1]
		} else {
			ts = append(ts, Tuple{})
		}
		if err := decodeTupleBody(&r, &ts[len(ts)-1]); err != nil {
			return ts, err
		}
	}
	if err := r.done(); err != nil {
		return ts, err
	}
	return ts, nil
}

// decodeTupleBody decodes one self-delimiting tuple body at r's cursor,
// reusing t.Values' capacity.
func decodeTupleBody(r *reader, t *Tuple) error {
	var flags byte
	if r.off+tupleBodyMin <= len(r.b) {
		// Whole minimum body in range: read the 17-byte fixed prefix
		// under the one bounds check above instead of three.
		b := r.b[r.off:]
		flags = b[0]
		t.KeyHash = binary.LittleEndian.Uint64(b[1:])
		t.EmitNanos = int64(binary.LittleEndian.Uint64(b[9:]))
		r.off += 17
		t.Tick = flags&1 != 0
		t.Key = ""
	} else {
		var err error
		if flags, err = r.byte(); err != nil {
			return err
		}
		t.Tick = flags&1 != 0
		t.Key = ""
		if t.KeyHash, err = r.u64(); err != nil {
			return err
		}
		if t.EmitNanos, err = r.i64(); err != nil {
			return err
		}
	}
	var err error
	t.LatStamp = 0
	if flags&4 != 0 {
		if t.LatStamp, err = r.u32(); err != nil {
			return err
		}
	}
	t.TraceID = 0
	if flags&8 != 0 {
		if t.TraceID, err = r.u64(); err != nil {
			return err
		}
	}
	if flags&2 != 0 {
		if t.Key, err = r.str(); err != nil {
			return err
		}
		if t.Key == "" {
			return fmt.Errorf("wire: tuple key flag set on empty key")
		}
	}
	// Value count: almost always a single-byte uvarint (< 128 values),
	// read inline; the general path still handles the rest.
	var n int
	if r.off < len(r.b) && r.b[r.off] < 0x80 {
		n = int(r.b[r.off])
		r.off++
		if n > len(r.b)-r.off {
			return fmt.Errorf("wire: length %d exceeds payload", n)
		}
	} else if n, err = r.length(); err != nil { // ≥ 1 byte each: count ≤ remaining
		return err
	}
	t.Values = t.Values[:0]
	for i := 0; i < n; i++ {
		tag, err := r.byte()
		if err != nil {
			return err
		}
		var v any
		switch tag {
		case tInt64:
			v, err = r.i64()
		case tUint64:
			v, err = r.u64()
		case tFloat64:
			var bits uint64
			bits, err = r.u64()
			v = math.Float64frombits(bits)
		case tBool:
			var b byte
			b, err = r.byte()
			v = b != 0
		case tString:
			v, err = r.str()
		case tBytes:
			v, err = r.bytes()
		default:
			return fmt.Errorf("wire: unknown value tag %d", tag)
		}
		if err != nil {
			return err
		}
		t.Values = append(t.Values, v)
	}
	return nil
}

// DecodePartial decodes a KindPartial payload into p.
func DecodePartial(b []byte, p *Partial) error {
	r := reader{b: b}
	flags, err := r.byte()
	if err != nil {
		return err
	}
	p.Key = ""
	p.Raw = nil
	p.Count = 0
	p.TraceID = 0
	if p.KeyHash, err = r.u64(); err != nil {
		return err
	}
	if p.Start, err = r.i64(); err != nil {
		return err
	}
	if flags&4 != 0 {
		if p.TraceID, err = r.u64(); err != nil {
			return err
		}
	}
	if flags&2 != 0 {
		if p.Raw, err = r.bytes(); err != nil {
			return err
		}
		if p.Raw == nil { // zero-length state still selects the Raw path
			p.Raw = []byte{}
		}
	} else if p.Count, err = r.i64(); err != nil {
		return err
	}
	if flags&1 != 0 {
		if p.Key, err = r.str(); err != nil {
			return err
		}
		if p.Key == "" {
			return fmt.Errorf("wire: partial key flag set on empty key")
		}
	}
	return r.done()
}

// DecodeMark decodes a KindMark payload.
func DecodeMark(b []byte) (Mark, error) {
	r := reader{b: b}
	src, err := r.uvarint()
	if err != nil {
		return Mark{}, err
	}
	if src > math.MaxUint32 {
		return Mark{}, fmt.Errorf("wire: mark source %d overflows uint32", src)
	}
	wm, err := r.i64()
	if err != nil {
		return Mark{}, err
	}
	if err := r.done(); err != nil {
		return Mark{}, err
	}
	return Mark{Source: uint32(src), WM: wm}, nil
}

// DecodeSketch decodes a KindSketch payload.
func DecodeSketch(b []byte) (Sketch, error) {
	r := reader{b: b}
	k, err := r.uvarint()
	if err != nil {
		return Sketch{}, err
	}
	if k == 0 || k > MaxPayload {
		return Sketch{}, fmt.Errorf("wire: sketch capacity %d out of range", k)
	}
	n, err := r.i64()
	if err != nil {
		return Sketch{}, err
	}
	if n < 0 {
		return Sketch{}, fmt.Errorf("wire: negative sketch weight %d", n)
	}
	cnt, err := r.uvarint()
	if err != nil {
		return Sketch{}, err
	}
	if cnt > k {
		return Sketch{}, fmt.Errorf("wire: sketch holds %d items over capacity %d", cnt, k)
	}
	// Each item is ≥ 10 encoded bytes; the bound keeps a corrupt count
	// from pre-allocating beyond what the payload could actually hold.
	if cnt > uint64(len(b))/10 {
		return Sketch{}, errTruncated
	}
	s := Sketch{K: int(k), N: n, Items: make([]SketchItem, 0, cnt)}
	for i := uint64(0); i < cnt; i++ {
		item, err := r.u64()
		if err != nil {
			return Sketch{}, err
		}
		c, err := r.uvarint()
		if err != nil {
			return Sketch{}, err
		}
		e, err := r.uvarint()
		if err != nil {
			return Sketch{}, err
		}
		if c > math.MaxInt64 || e > math.MaxInt64 {
			return Sketch{}, fmt.Errorf("wire: sketch item overflows int64")
		}
		s.Items = append(s.Items, SketchItem{Item: item, Count: int64(c), Err: int64(e)})
	}
	if err := r.done(); err != nil {
		return Sketch{}, err
	}
	return s, nil
}

// DecodeQuery decodes a KindQuery payload.
func DecodeQuery(b []byte) (Query, error) {
	r := reader{b: b}
	op, err := r.byte()
	if err != nil {
		return Query{}, err
	}
	switch QueryOp(op) {
	case OpCount, OpResults, OpStats, OpTrace:
	default:
		return Query{}, fmt.Errorf("wire: unknown query op %d", op)
	}
	key, err := r.u64()
	if err != nil {
		return Query{}, err
	}
	if err := r.done(); err != nil {
		return Query{}, err
	}
	return Query{Op: QueryOp(op), Key: key}, nil
}

// DecodeReply decodes a KindReply payload.
func DecodeReply(b []byte) (Reply, error) {
	r := reader{b: b}
	op, err := r.byte()
	if err != nil {
		return Reply{}, err
	}
	count, err := r.i64()
	if err != nil {
		return Reply{}, err
	}
	doneB, err := r.byte()
	if err != nil {
		return Reply{}, err
	}
	n, err := r.uvarint()
	if err != nil {
		return Reply{}, err
	}
	// Each result is ≥ 26 encoded bytes; dividing keeps a corrupt count
	// from pre-allocating far beyond what the payload could hold.
	if n > uint64(len(b))/26 {
		return Reply{}, errTruncated
	}
	rep := Reply{Op: QueryOp(op), Count: count, Done: doneB != 0}
	if n > 0 {
		rep.Results = make([]WindowResult, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var res WindowResult
		flags, err := r.byte()
		if err != nil {
			return Reply{}, err
		}
		if res.KeyHash, err = r.u64(); err != nil {
			return Reply{}, err
		}
		if res.Start, err = r.i64(); err != nil {
			return Reply{}, err
		}
		if res.End, err = r.i64(); err != nil {
			return Reply{}, err
		}
		if flags&2 != 0 {
			if res.Raw, err = r.bytes(); err != nil {
				return Reply{}, err
			}
			if res.Raw == nil {
				res.Raw = []byte{}
			}
		} else if res.Value, err = r.i64(); err != nil {
			return Reply{}, err
		}
		if flags&1 != 0 {
			if res.Key, err = r.str(); err != nil {
				return Reply{}, err
			}
			if res.Key == "" {
				return Reply{}, fmt.Errorf("wire: result key flag set on empty key")
			}
		}
		rep.Results = append(rep.Results, res)
	}
	if r.off < len(r.b) {
		// Trailing optional section — absent entirely in pre-section
		// frames, which is what keeps both directions compatible.
		nh, err := r.byte()
		if err != nil {
			return Reply{}, err
		}
		if nh == 0 {
			// The encoder only writes the section when at least one
			// entry is present, so an empty section is corruption — and
			// rejecting it keeps plain trailing bytes an error.
			return Reply{}, fmt.Errorf("wire: empty reply trailing section")
		}
		for i := byte(0); i < nh; i++ {
			id, err := r.byte()
			if err != nil {
				return Reply{}, err
			}
			switch id {
			case histIDLat:
				if rep.Lat, err = decodeHist(&r); err != nil {
					return Reply{}, err
				}
			case histIDStale:
				if rep.Stale, err = decodeHist(&r); err != nil {
					return Reply{}, err
				}
			case secIDSpans:
				if err = decodeSpanSection(&r, &rep); err != nil {
					return Reply{}, err
				}
			case secIDTelemetry:
				if rep.Telemetry, err = decodeTelemetry(&r); err != nil {
					return Reply{}, err
				}
			default:
				return Reply{}, fmt.Errorf("wire: unknown reply section id %d", id)
			}
		}
	}
	if err := r.done(); err != nil {
		return Reply{}, err
	}
	return rep, nil
}

// decodeSpanSection decodes the span entry (secIDSpans) of a Reply's
// trailing section: the replying process name plus its retained spans.
func decodeSpanSection(r *reader, rep *Reply) error {
	var err error
	if rep.Proc, err = r.str(); err != nil {
		return err
	}
	ns, err := r.uvarint()
	if err != nil {
		return err
	}
	// Each span is ≥ 42 encoded bytes (five fixed 8-byte fields, a hop
	// byte, a note length); the bound keeps a corrupt count from
	// pre-allocating beyond what the payload could actually hold.
	if ns > uint64(len(r.b)-r.off)/42 {
		return errTruncated
	}
	if ns > 0 {
		rep.Spans = make([]Span, 0, ns)
	}
	for i := uint64(0); i < ns; i++ {
		var s Span
		if s.Trace, err = r.u64(); err != nil {
			return err
		}
		if s.Start, err = r.i64(); err != nil {
			return err
		}
		if s.Dur, err = r.i64(); err != nil {
			return err
		}
		if s.Arg1, err = r.i64(); err != nil {
			return err
		}
		if s.Arg2, err = r.i64(); err != nil {
			return err
		}
		if s.Hop, err = r.byte(); err != nil {
			return err
		}
		if s.Note, err = r.str(); err != nil {
			return err
		}
		rep.Spans = append(rep.Spans, s)
	}
	return nil
}

// decodeTelemetry decodes the telemetry entry (secIDTelemetry) of a
// Reply's trailing section: a flags byte, eight fixed gauge fields, an
// optional edge-window gauge gated on flag bit 2, and an optional
// credit-wait histogram gated on flag bit 1.
func decodeTelemetry(r *reader) (*Telemetry, error) {
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	if flags&^3 != 0 {
		return nil, fmt.Errorf("wire: unknown telemetry flags %#x", flags)
	}
	t := &Telemetry{}
	for _, f := range []*int64{
		&t.EdgeInFlight, &t.EdgeQueue, &t.EdgeFrames, &t.EdgeStalls,
		&t.EdgeWaitNs, &t.WatermarkLagNs, &t.WindowBacklog, &t.ServiceNs,
	} {
		if *f, err = r.i64(); err != nil {
			return nil, err
		}
	}
	if flags&2 != 0 {
		if t.EdgeWindow, err = r.i64(); err != nil {
			return nil, err
		}
		// The encoder only sets the bit for a positive window, so a
		// non-positive value here is a non-canonical payload.
		if t.EdgeWindow <= 0 {
			return nil, fmt.Errorf("wire: telemetry edge window %d out of range", t.EdgeWindow)
		}
	}
	if flags&1 != 0 {
		if t.CreditWait, err = decodeHist(r); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func decodeHist(r *reader) (*LatencyHist, error) {
	sum, err := r.i64()
	if err != nil {
		return nil, err
	}
	nb, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each bucket is ≥ 2 encoded bytes; the bound keeps a corrupt count
	// from pre-allocating beyond what the payload could actually hold.
	if nb > uint64(len(r.b)-r.off)/2 {
		return nil, errTruncated
	}
	h := &LatencyHist{Sum: sum}
	if nb > 0 {
		h.Buckets = make([]HistBucket, 0, nb)
	}
	for i := uint64(0); i < nb; i++ {
		idx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if idx > math.MaxUint32 {
			return nil, fmt.Errorf("wire: histogram bucket index %d overflows uint32", idx)
		}
		c, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if c > math.MaxInt64 {
			return nil, fmt.Errorf("wire: histogram bucket count overflows int64")
		}
		h.Buckets = append(h.Buckets, HistBucket{Index: uint32(idx), Count: int64(c)})
	}
	return h, nil
}

// DecodeCredit decodes a KindCredit payload.
func DecodeCredit(b []byte) (Credit, error) {
	r := reader{b: b}
	w, err := r.uvarint()
	if err != nil {
		return Credit{}, err
	}
	if w == 0 || w > math.MaxInt64 {
		return Credit{}, fmt.Errorf("wire: credit window %d out of range", w)
	}
	if err := r.done(); err != nil {
		return Credit{}, err
	}
	return Credit{Window: int64(w)}, nil
}

// DecodeAck decodes a KindAck payload. The trailing service-time field
// is optional (old acks end at Count); when present it must be
// non-zero — a zero would re-encode to the short form, so rejecting it
// keeps every accepted payload canonical.
func DecodeAck(b []byte) (Ack, error) {
	r := reader{b: b}
	n, err := r.uvarint()
	if err != nil {
		return Ack{}, err
	}
	if n > math.MaxInt64 {
		return Ack{}, fmt.Errorf("wire: ack count %d overflows int64", n)
	}
	a := Ack{Count: int64(n)}
	if r.off < len(r.b) {
		s, err := r.uvarint()
		if err != nil {
			return Ack{}, err
		}
		if s == 0 || s > math.MaxInt64 {
			return Ack{}, fmt.Errorf("wire: ack service time %d out of range", s)
		}
		a.ServiceNs = int64(s)
	}
	if err := r.done(); err != nil {
		return Ack{}, err
	}
	return a, nil
}

// DecodeCreditUpdate decodes a KindCreditUpdate payload.
func DecodeCreditUpdate(b []byte) (CreditUpdate, error) {
	r := reader{b: b}
	w, err := r.uvarint()
	if err != nil {
		return CreditUpdate{}, err
	}
	if w == 0 || w > math.MaxInt64 {
		return CreditUpdate{}, fmt.Errorf("wire: credit-update window %d out of range", w)
	}
	if err := r.done(); err != nil {
		return CreditUpdate{}, err
	}
	return CreditUpdate{Window: int64(w)}, nil
}

// DecodeSubscribe decodes a KindSubscribe payload.
func DecodeSubscribe(b []byte) (Subscribe, error) {
	r := reader{b: b}
	off, err := r.uvarint()
	if err != nil {
		return Subscribe{}, err
	}
	if off > math.MaxInt64 {
		return Subscribe{}, fmt.Errorf("wire: subscribe offset %d overflows int64", off)
	}
	if err := r.done(); err != nil {
		return Subscribe{}, err
	}
	return Subscribe{Offset: int64(off)}, nil
}

// ReadFrame reads one frame from r: it validates the header, bounds the
// payload, and returns the kind with the payload bytes (reusing buf's
// capacity when it suffices). io.EOF is returned exactly at a clean
// frame boundary; a header or payload cut short mid-frame returns
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) (Kind, []byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return KindInvalid, nil, err // io.EOF only on a clean boundary
	}
	kind, n, err := ParseHeader(hdr)
	if err != nil {
		return KindInvalid, nil, err
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return KindInvalid, nil, err
	}
	return kind, buf, nil
}

// ReadFrameBuffered is ReadFrame for a *bufio.Reader, without copying
// the payload out of the reader's buffer: for frames that fit the
// buffer the returned payload ALIASES it and is valid only until the
// next operation on r — the receive half of the near-zero-copy batched
// edge (decode reads the bytes in place; everything a decoded value
// retains is copied by the decoder). Frames larger than r's buffer
// fall back to a copying read into *buf, reusing and growing it as
// ReadFrame would. EOF semantics match ReadFrame: io.EOF exactly at a
// clean frame boundary, io.ErrUnexpectedEOF mid-frame.
func ReadFrameBuffered(r *bufio.Reader, buf *[]byte) (Kind, []byte, error) {
	hdr, err := r.Peek(HeaderSize)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return KindInvalid, nil, err
	}
	var h [HeaderSize]byte
	copy(h[:], hdr)
	kind, n, err := ParseHeader(h)
	if err != nil {
		return KindInvalid, nil, err
	}
	if HeaderSize+n <= r.Size() {
		p, err := r.Peek(HeaderSize + n)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return KindInvalid, nil, err
		}
		// Discard only advances the read cursor: p stays intact until
		// the next fill, i.e. until the caller reads the next frame.
		if _, err := r.Discard(HeaderSize + n); err != nil {
			return KindInvalid, nil, err
		}
		return kind, p[HeaderSize:], nil
	}
	if _, err := r.Discard(HeaderSize); err != nil {
		return KindInvalid, nil, err
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return KindInvalid, nil, err
	}
	return kind, b, nil
}

// ParseHeader validates a frame header and returns its kind and payload
// length.
func ParseHeader(hdr [HeaderSize]byte) (Kind, int, error) {
	if hdr[0] != Version {
		return KindInvalid, 0, fmt.Errorf("wire: version %d, want %d", hdr[0], Version)
	}
	kind := Kind(hdr[1])
	if kind == KindInvalid || kind >= kindEnd {
		return KindInvalid, 0, fmt.Errorf("wire: unknown frame kind %d", hdr[1])
	}
	n := binary.LittleEndian.Uint32(hdr[2:])
	if n > MaxPayload {
		return KindInvalid, 0, fmt.Errorf("wire: payload length %d exceeds limit %d", n, MaxPayload)
	}
	return kind, int(n), nil
}

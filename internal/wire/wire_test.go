package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// encodeAll returns one encoded frame per kind, exercising every
// optional field combination worth a seed.
func encodeAll(t testing.TB) [][]byte {
	t.Helper()
	var frames [][]byte
	add := func(b []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, b)
	}
	add(AppendTuple(nil, &Tuple{KeyHash: 0xdeadbeef, EmitNanos: 12345}))
	add(AppendTuple(nil, &Tuple{
		KeyHash: 7, Key: "gopher", EmitNanos: -3, Tick: true,
		Values: []any{int64(-42), 42, uint64(1) << 63, 3.14, true, false, "str", []byte{1, 2, 3}},
	}))
	add(AppendPartial(nil, &Partial{KeyHash: 9, Key: "word", Start: 1e9, Count: 17}), nil)
	add(AppendPartial(nil, &Partial{KeyHash: 9, Start: -5, Raw: []byte{0xca, 0xfe}}), nil)
	add(AppendMark(nil, Mark{Source: 3, WM: 1 << 40}), nil)
	add(AppendMark(nil, Mark{Source: math.MaxUint32, WM: math.MaxInt64}), nil)
	add(AppendSketch(nil, &Sketch{K: 4, N: 100, Items: []SketchItem{
		{Item: 1, Count: 60, Err: 0}, {Item: 2, Count: 30, Err: 10},
	}}), nil)
	add(AppendQuery(nil, Query{Op: OpCount, Key: 77}), nil)
	add(AppendQuery(nil, Query{Op: OpResults}), nil)
	add(AppendReply(nil, &Reply{Op: OpCount, Count: 12}), nil)
	add(AppendReply(nil, &Reply{Op: OpResults, Done: true, Results: []WindowResult{
		{KeyHash: 1, Key: "a", Start: 0, End: 30e9, Value: 5},
		{KeyHash: 2, Start: 30e9, End: 60e9, Raw: []byte{9}},
	}}), nil)
	add(AppendCredit(nil, Credit{Window: 1}), nil)
	add(AppendCredit(nil, Credit{Window: 1 << 20}), nil)
	add(AppendAck(nil, Ack{Count: 0}), nil)
	add(AppendAck(nil, Ack{Count: math.MaxInt64}), nil)
	add(AppendSubscribe(nil, Subscribe{Offset: 0}), nil)
	add(AppendSubscribe(nil, Subscribe{Offset: 32768}), nil)
	// Batch frames last, so the earlier seed filenames (indexed by
	// position here) stay stable across corpus regenerations.
	add(AppendTupleBatch(nil, []Tuple{
		{KeyHash: 0xfeed, EmitNanos: 1},
		{KeyHash: 8, Key: "batched", EmitNanos: -9, Tick: true,
			Values: []any{int64(5), uint64(6), 2.5, true, "v", []byte{7}}},
		{KeyHash: 1 << 60},
	}))
	add(AppendTupleBatch(nil, nil))
	add(AppendTuple(nil, &Tuple{KeyHash: 11, EmitNanos: 77, LatStamp: 1234567}))
	add(AppendTupleBatch(nil, []Tuple{
		{KeyHash: 12, EmitNanos: 1, LatStamp: 4e9},
		{KeyHash: 13, EmitNanos: 2},
	}))
	add(AppendTuple(nil, &Tuple{KeyHash: 21, EmitNanos: 5, TraceID: 0x0123456789abcdef}))
	add(AppendTuple(nil, &Tuple{
		KeyHash: 22, Key: "traced", EmitNanos: 6, LatStamp: 9, TraceID: 1,
		Values: []any{int64(3)},
	}))
	add(AppendPartial(nil, &Partial{KeyHash: 9, Key: "word", Start: 2e9, Count: 3, TraceID: math.MaxUint64}), nil)
	add(AppendTupleBatch(nil, []Tuple{
		{KeyHash: 14, EmitNanos: 3, TraceID: 7},
		{KeyHash: 15, EmitNanos: 4},
	}))
	add(AppendQuery(nil, Query{Op: OpTrace}), nil)
	// Replies carrying the optional trailing section. Cutting one exactly
	// at the section boundary yields a valid pre-section reply by design
	// (that is the compatibility contract), which is why
	// TestTruncationNeverPanics accepts a prefix only when re-encoding it
	// is byte-identical.
	add(AppendReply(nil, &Reply{Op: OpStats, Count: 6,
		Lat:   &LatencyHist{Sum: 12345, Buckets: []HistBucket{{Index: 3, Count: 7}}},
		Stale: &LatencyHist{Sum: 9e9, Buckets: []HistBucket{{Index: 1100, Count: 4}}},
	}), nil)
	add(AppendReply(nil, &Reply{Op: OpTrace, Proc: "pkgnode-final@127.0.0.1:7411",
		Spans: []Span{{Trace: 0xabc, Start: 100, Dur: 5, Arg1: 2, Arg2: -1, Hop: 1, Note: "PKG cands=[1 0]"}},
	}), nil)
	add(AppendReply(nil, &Reply{Op: OpStats, Count: 4, Telemetry: &Telemetry{
		EdgeInFlight: 3, EdgeQueue: 2, EdgeFrames: 100, EdgeStalls: 5,
		EdgeWaitNs: 9e6, WatermarkLagNs: 2e9, WindowBacklog: 7, ServiceNs: 450,
		CreditWait: &LatencyHist{Sum: 9e6, Buckets: []HistBucket{{Index: 900, Count: 5}}},
	}}), nil)
	// Adaptive flow control frames (PR 10), appended at corpus end.
	add(AppendCreditUpdate(nil, CreditUpdate{Window: 1}), nil)
	add(AppendCreditUpdate(nil, CreditUpdate{Window: 1 << 18}), nil)
	add(AppendAck(nil, Ack{Count: 4096, ServiceNs: 230}), nil)
	add(AppendAck(nil, Ack{Count: math.MaxInt64, ServiceNs: math.MaxInt64}), nil)
	add(AppendReply(nil, &Reply{Op: OpStats, Count: 2, Telemetry: &Telemetry{
		EdgeInFlight: 1, EdgeFrames: 10, ServiceNs: 90, EdgeWindow: 2048,
		CreditWait: &LatencyHist{Sum: 3e6, Buckets: []HistBucket{{Index: 870, Count: 1}}},
	}}), nil)
	return frames
}

// decodeFrame decodes one framed payload by kind, returning the decoded
// value for equality checks.
func decodeFrame(kind Kind, payload []byte) (any, error) {
	switch kind {
	case KindTuple:
		var tu Tuple
		err := DecodeTuple(payload, &tu)
		return tu, err
	case KindPartial:
		var p Partial
		err := DecodePartial(payload, &p)
		return p, err
	case KindMark:
		return DecodeMark(payload)
	case KindSketch:
		return DecodeSketch(payload)
	case KindQuery:
		return DecodeQuery(payload)
	case KindReply:
		return DecodeReply(payload)
	case KindCredit:
		return DecodeCredit(payload)
	case KindAck:
		return DecodeAck(payload)
	case KindSubscribe:
		return DecodeSubscribe(payload)
	case KindTupleBatch:
		ts, err := DecodeTupleBatch(payload, nil)
		return ts, err
	case KindCreditUpdate:
		return DecodeCreditUpdate(payload)
	default:
		panic("unreachable: ReadFrame only returns known kinds")
	}
}

// reencode encodes a decoded frame value back to wire form.
func reencode(v any) []byte {
	switch v := v.(type) {
	case Tuple:
		b, err := AppendTuple(nil, &v)
		if err != nil {
			panic(err)
		}
		return b
	case Partial:
		return AppendPartial(nil, &v)
	case Mark:
		return AppendMark(nil, v)
	case Sketch:
		return AppendSketch(nil, &v)
	case Query:
		return AppendQuery(nil, v)
	case Reply:
		return AppendReply(nil, &v)
	case Credit:
		return AppendCredit(nil, v)
	case Ack:
		return AppendAck(nil, v)
	case Subscribe:
		return AppendSubscribe(nil, v)
	case []Tuple:
		b, err := AppendTupleBatch(nil, v)
		if err != nil {
			panic(err)
		}
		return b
	case CreditUpdate:
		return AppendCreditUpdate(nil, v)
	default:
		panic("unreachable")
	}
}

func TestRoundTripAllFrameKinds(t *testing.T) {
	for i, fr := range encodeAll(t) {
		kind, payload, err := ReadFrame(bytes.NewReader(fr), nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		v, err := decodeFrame(kind, payload)
		if err != nil {
			t.Fatalf("frame %d (%v): %v", i, kind, err)
		}
		if got := reencode(v); !bytes.Equal(got, fr) {
			t.Fatalf("frame %d (%v): re-encoded bytes differ\n got %x\nwant %x", i, kind, got, fr)
		}
	}
}

func TestTupleRoundTripValues(t *testing.T) {
	in := Tuple{
		KeyHash: 123, Key: "k", EmitNanos: 55, Tick: true,
		Values: []any{int64(1), 2, uint64(3), 4.5, true, "s", []byte{6}},
	}
	b, err := AppendTuple(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out Tuple
	if err := DecodeTuple(b[HeaderSize:], &out); err != nil {
		t.Fatal(err)
	}
	// int encodes as int64 by design.
	want := Tuple{
		KeyHash: 123, Key: "k", EmitNanos: 55, Tick: true,
		Values: []any{int64(1), int64(2), uint64(3), 4.5, true, "s", []byte{6}},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("round trip:\n got %#v\nwant %#v", out, want)
	}
	if _, err := AppendTuple(nil, &Tuple{Values: []any{struct{}{}}}); err == nil {
		t.Fatal("unsupported value type accepted")
	}
}

func TestDecodeValuesReuseAcrossCalls(t *testing.T) {
	b1, _ := AppendTuple(nil, &Tuple{KeyHash: 1, Values: []any{int64(1), int64(2)}})
	b2, _ := AppendTuple(nil, &Tuple{KeyHash: 2})
	var tu Tuple
	if err := DecodeTuple(b1[HeaderSize:], &tu); err != nil {
		t.Fatal(err)
	}
	if len(tu.Values) != 2 {
		t.Fatalf("values = %v", tu.Values)
	}
	if err := DecodeTuple(b2[HeaderSize:], &tu); err != nil {
		t.Fatal(err)
	}
	if len(tu.Values) != 0 || tu.KeyHash != 2 {
		t.Fatalf("reused decode kept stale state: %#v", tu)
	}
}

// TestTupleBatchReuseAcrossCalls: the decode slice and each element's
// Values capacity survive across calls — the worker's steady-state
// zero-allocation path.
func TestTupleBatchReuseAcrossCalls(t *testing.T) {
	b1, err := AppendTupleBatch(nil, []Tuple{
		{KeyHash: 1, Values: []any{int64(10), int64(11)}},
		{KeyHash: 2, Values: []any{"x"}},
		{KeyHash: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := AppendTupleBatch(nil, []Tuple{{KeyHash: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := DecodeTupleBatch(b1[HeaderSize:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0].KeyHash != 1 || len(ts[0].Values) != 2 || ts[1].Values[0] != "x" {
		t.Fatalf("first decode: %#v", ts)
	}
	ts, err = DecodeTupleBatch(b2[HeaderSize:], ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].KeyHash != 4 || len(ts[0].Values) != 0 {
		t.Fatalf("reused decode kept stale state: %#v", ts)
	}
}

// TestTupleBatchHeaderMatchesAppend: framing pre-encoded bodies with
// AppendTupleBatchHeader is byte-identical to AppendTupleBatch — the
// edge's two-write send path speaks exactly the same frame.
func TestTupleBatchHeaderMatchesAppend(t *testing.T) {
	ts := []Tuple{
		{KeyHash: 5, Key: "k", EmitNanos: 9, Values: []any{int64(1)}},
		{KeyHash: 6, Tick: true},
	}
	want, err := AppendTupleBatch(nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	var bodies []byte
	for i := range ts {
		if bodies, err = AppendTupleBody(bodies, &ts[i]); err != nil {
			t.Fatal(err)
		}
	}
	got := AppendTupleBatchHeader(nil, len(ts), len(bodies))
	got = append(got, bodies...)
	if !bytes.Equal(got, want) {
		t.Fatalf("two-write framing differs\n got %x\nwant %x", got, want)
	}
}

// TestTupleBatchCorruptCount: a count field claiming more tuples than
// the payload could physically hold is rejected before any allocation.
func TestTupleBatchCorruptCount(t *testing.T) {
	b, err := AppendTupleBatch(nil, []Tuple{{KeyHash: 1}, {KeyHash: 2}})
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), b[HeaderSize:]...)
	payload[0] = 0xfa // count 250 over two encoded bodies
	if _, err := DecodeTupleBatch(payload, nil); err == nil {
		t.Fatal("corrupt batch count accepted")
	}
	// A count just one over the real tuple run errors too (truncation,
	// not a bad allocation bound).
	payload[0] = 3
	if _, err := DecodeTupleBatch(payload, nil); err == nil {
		t.Fatal("over-counted batch accepted")
	}
}

// TestTupleLatStampRoundTrip: the sampled-latency stamp travels only
// when present — a zero stamp keeps the 18-byte hash-only body.
func TestTupleLatStampRoundTrip(t *testing.T) {
	plain, err := AppendTuple(nil, &Tuple{KeyHash: 1, EmitNanos: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != HeaderSize+tupleBodyMin {
		t.Fatalf("zero-stamp tuple is %d bytes, want the %d-byte fast path",
			len(plain), HeaderSize+tupleBodyMin)
	}
	stamped, err := AppendTuple(nil, &Tuple{KeyHash: 1, EmitNanos: 2, LatStamp: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(stamped) != len(plain)+4 {
		t.Fatalf("stamp costs %d bytes, want 4", len(stamped)-len(plain))
	}
	var out Tuple
	if err := DecodeTuple(stamped[HeaderSize:], &out); err != nil {
		t.Fatal(err)
	}
	if out.LatStamp != 3 || out.KeyHash != 1 || out.EmitNanos != 2 {
		t.Fatalf("round trip: %#v", out)
	}
	// Decoding an unstamped tuple into the same struct resets the stamp.
	if err := DecodeTuple(plain[HeaderSize:], &out); err != nil {
		t.Fatal(err)
	}
	if out.LatStamp != 0 {
		t.Fatalf("stale LatStamp survived reuse: %d", out.LatStamp)
	}
}

// TestReplyHistRoundTrip: the optional trailing histogram section of an
// OpStats reply — each combination round-trips, a pre-histogram reply
// decodes with nil histograms, and corrupt sections are rejected.
func TestReplyHistRoundTrip(t *testing.T) {
	lat := &LatencyHist{Sum: 12345, Buckets: []HistBucket{{Index: 3, Count: 7}, {Index: 200, Count: 1}}}
	stale := &LatencyHist{Sum: 9e9, Buckets: []HistBucket{{Index: 1100, Count: 4}}}
	for _, rep := range []Reply{
		{Op: OpStats, Count: 10, Lat: lat},
		{Op: OpStats, Count: 10, Stale: stale},
		{Op: OpStats, Count: 10, Done: true, Lat: lat, Stale: stale},
		{Op: OpStats, Count: 10, Lat: &LatencyHist{}}, // empty histogram still travels
	} {
		b := AppendReply(nil, &rep)
		got, err := DecodeReply(b[HeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rep) {
			t.Fatalf("round trip:\n got %#v\nwant %#v", got, rep)
		}
	}
	// A reply without the section decodes to nil histograms (what an old
	// node's frames look like).
	old := AppendReply(nil, &Reply{Op: OpStats, Count: 5})
	got, err := DecodeReply(old[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Lat != nil || got.Stale != nil {
		t.Fatalf("pre-histogram reply grew histograms: %#v", got)
	}
	// Every strict truncation of the section errors; so do an unknown
	// histogram id and trailing bytes after the section.
	full := AppendReply(nil, &Reply{Op: OpStats, Lat: lat, Stale: stale})
	base := AppendReply(nil, &Reply{Op: OpStats})
	for cut := len(base) - HeaderSize + 1; cut < len(full)-HeaderSize; cut++ {
		if _, err := DecodeReply(full[HeaderSize:][:cut]); err == nil {
			t.Fatalf("section truncated at %d accepted", cut)
		}
	}
	bad := append(append([]byte(nil), full[HeaderSize:]...), 0)
	if _, err := DecodeReply(bad); err == nil {
		t.Fatal("trailing byte after section accepted")
	}
	bad = append([]byte(nil), full[HeaderSize:]...)
	bad[len(base)-HeaderSize+1] = 99 // first id byte
	if _, err := DecodeReply(bad); err == nil {
		t.Fatal("unknown histogram id accepted")
	}
}

// TestReplyTelemetryRoundTrip: the telemetry entry (secIDTelemetry) of
// a Reply's trailing section. Combinations round trip (alone, with and
// without the credit-wait histogram, alongside the other entries), a
// pre-telemetry reply decodes with a nil Telemetry, and truncated or
// flag-corrupted sections are rejected.
func TestReplyTelemetryRoundTrip(t *testing.T) {
	cw := &LatencyHist{Sum: 5e6, Buckets: []HistBucket{{Index: 880, Count: 2}, {Index: 901, Count: 1}}}
	full := Telemetry{
		EdgeInFlight: 12, EdgeQueue: 40, EdgeFrames: 1000, EdgeStalls: 3,
		EdgeWaitNs: 5e6, WatermarkLagNs: 1500e6, WindowBacklog: 9, ServiceNs: 230,
		CreditWait: cw,
	}
	for _, rep := range []Reply{
		{Op: OpStats, Count: 8, Telemetry: &full},
		{Op: OpStats, Telemetry: &Telemetry{}}, // all-zero snapshot still travels
		{Op: OpStats, Telemetry: &Telemetry{WatermarkLagNs: -1, ServiceNs: 77}},
		{Op: OpStats, Telemetry: &Telemetry{EdgeWindow: 4096}},
		{Op: OpStats, Telemetry: &Telemetry{EdgeWindow: 1, ServiceNs: 3, CreditWait: cw}},
		{Op: OpStats, Count: 8, Done: true,
			Lat:   &LatencyHist{Sum: 1, Buckets: []HistBucket{{Index: 1, Count: 1}}},
			Stale: &LatencyHist{}, Telemetry: &full},
	} {
		b := AppendReply(nil, &rep)
		got, err := DecodeReply(b[HeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rep) {
			t.Fatalf("round trip:\n got %#v\nwant %#v", got, rep)
		}
	}
	// A reply without the section decodes to nil telemetry (an old node).
	old := AppendReply(nil, &Reply{Op: OpStats, Count: 5})
	got, err := DecodeReply(old[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Telemetry != nil {
		t.Fatalf("pre-telemetry reply grew telemetry: %#v", got)
	}
	// Every strict truncation of the telemetry section errors.
	fullB := AppendReply(nil, &Reply{Op: OpStats, Telemetry: &full})
	base := AppendReply(nil, &Reply{Op: OpStats})
	for cut := len(base) - HeaderSize + 1; cut < len(fullB)-HeaderSize; cut++ {
		if _, err := DecodeReply(fullB[HeaderSize:][:cut]); err == nil {
			t.Fatalf("telemetry section truncated at %d accepted", cut)
		}
	}
	// Unknown flag bits are rejected, not silently dropped — dropping
	// them would make decode(encode(x)) lossy for a future encoder.
	bad := append([]byte(nil), fullB[HeaderSize:]...)
	flagsOff := len(base) - HeaderSize + 2 // section count, id, then flags
	if bad[flagsOff] != 1 {
		t.Fatalf("test layout drifted: byte at %d = %d, want flags 1", flagsOff, bad[flagsOff])
	}
	bad[flagsOff] = 5 // bit 4 is unassigned
	if _, err := DecodeReply(bad); err == nil {
		t.Fatal("unknown telemetry flags accepted")
	}
	// Claiming the edge-window field (bit 2) without its bytes present
	// is a truncation, not a silent zero.
	bad[flagsOff] = 3
	if _, err := DecodeReply(bad); err == nil {
		t.Fatal("edge-window flag without the field accepted")
	}
	// Trailing bytes after the section stay an error.
	bad = append(append([]byte(nil), fullB[HeaderSize:]...), 0)
	if _, err := DecodeReply(bad); err == nil {
		t.Fatal("trailing byte after telemetry section accepted")
	}
}

// TestTupleTraceIDRoundTrip: the trace ID travels only on sampled
// tuples — a zero ID keeps the 18-byte hash-only body, a set one costs
// exactly 8 bytes (flag bit 8).
func TestTupleTraceIDRoundTrip(t *testing.T) {
	plain, err := AppendTuple(nil, &Tuple{KeyHash: 1, EmitNanos: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != HeaderSize+tupleBodyMin {
		t.Fatalf("untraced tuple is %d bytes, want the %d-byte fast path",
			len(plain), HeaderSize+tupleBodyMin)
	}
	traced, err := AppendTuple(nil, &Tuple{KeyHash: 1, EmitNanos: 2, TraceID: 0xfeedface})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain)+8 {
		t.Fatalf("trace ID costs %d bytes, want 8", len(traced)-len(plain))
	}
	var out Tuple
	if err := DecodeTuple(traced[HeaderSize:], &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != 0xfeedface || out.KeyHash != 1 || out.EmitNanos != 2 {
		t.Fatalf("round trip: %#v", out)
	}
	// Decoding an untraced tuple into the same struct resets the ID.
	if err := DecodeTuple(plain[HeaderSize:], &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != 0 {
		t.Fatalf("stale TraceID survived reuse: %d", out.TraceID)
	}
	// Both optional scalars together stack in flag order: stamp then ID.
	both, err := AppendTuple(nil, &Tuple{KeyHash: 1, EmitNanos: 2, LatStamp: 3, TraceID: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != len(plain)+12 {
		t.Fatalf("stamp+trace cost %d bytes, want 12", len(both)-len(plain))
	}
	if err := DecodeTuple(both[HeaderSize:], &out); err != nil {
		t.Fatal(err)
	}
	if out.LatStamp != 3 || out.TraceID != 4 {
		t.Fatalf("round trip: %#v", out)
	}
}

// TestPartialTraceIDRoundTrip: flag bit 4 carries a traced partial's
// ID; untraced partials are unchanged on the wire and decode resets a
// reused struct's ID.
func TestPartialTraceIDRoundTrip(t *testing.T) {
	plain := AppendPartial(nil, &Partial{KeyHash: 5, Key: "w", Start: 1e9, Count: 2})
	traced := AppendPartial(nil, &Partial{KeyHash: 5, Key: "w", Start: 1e9, Count: 2, TraceID: 77})
	if len(traced) != len(plain)+8 {
		t.Fatalf("trace ID costs %d bytes, want 8", len(traced)-len(plain))
	}
	var out Partial
	if err := DecodePartial(traced[HeaderSize:], &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != 77 || out.Key != "w" || out.Count != 2 {
		t.Fatalf("round trip: %#v", out)
	}
	if err := DecodePartial(plain[HeaderSize:], &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != 0 {
		t.Fatalf("stale TraceID survived reuse: %d", out.TraceID)
	}
}

// TestReplySpansRoundTrip: the span entry (secIDSpans) of a Reply's
// trailing section — an OpTrace reply's payload. Combinations round
// trip (alone and alongside histograms), a pre-span reply decodes with
// no spans, and corrupt sections are rejected.
func TestReplySpansRoundTrip(t *testing.T) {
	spans := []Span{
		{Trace: 0xabc, Start: 100, Dur: 5, Arg1: 2, Arg2: -1, Hop: 1, Note: "PKG cands=[1 0]"},
		{Trace: 0xabc, Start: 105, Hop: 9},
		{Start: 7, Hop: 11, Note: "redial 127.0.0.1:7411"}, // flight event, Trace 0
	}
	lat := &LatencyHist{Sum: 42, Buckets: []HistBucket{{Index: 2, Count: 3}}}
	for _, rep := range []Reply{
		{Op: OpTrace, Proc: "pkgnode-final@127.0.0.1:7411", Spans: spans},
		{Op: OpTrace, Proc: "engine"}, // recorded nothing: Proc travels, no spans
		{Op: OpTrace, Spans: spans[:1]},
		{Op: OpStats, Count: 9, Lat: lat, Proc: "p", Spans: spans[1:]},
	} {
		b := AppendReply(nil, &rep)
		got, err := DecodeReply(b[HeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rep) {
			t.Fatalf("round trip:\n got %#v\nwant %#v", got, rep)
		}
	}
	// A reply without the section decodes to no spans (an old node).
	old := AppendReply(nil, &Reply{Op: OpTrace})
	got, err := DecodeReply(old[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Spans != nil || got.Proc != "" {
		t.Fatalf("pre-span reply grew spans: %#v", got)
	}
	// Every strict truncation of the span section errors.
	full := AppendReply(nil, &Reply{Op: OpTrace, Proc: "p", Spans: spans})
	base := AppendReply(nil, &Reply{Op: OpTrace})
	for cut := len(base) - HeaderSize + 1; cut < len(full)-HeaderSize; cut++ {
		if _, err := DecodeReply(full[HeaderSize:][:cut]); err == nil {
			t.Fatalf("span section truncated at %d accepted", cut)
		}
	}
	// A span count claiming more spans than the payload could physically
	// hold is rejected before any allocation.
	corrupt := AppendReply(nil, &Reply{Op: OpTrace, Proc: "p", Spans: spans[:1]})
	payload := append([]byte(nil), corrupt[HeaderSize:]...)
	// Layout: ...section count, secIDSpans, proc str "p" (uvarint 1 + 'p'),
	// span count — the last uvarint before the fixed span fields.
	idx := len(corrupt) - HeaderSize - (42 + len(spans[0].Note)) - 1
	if payload[idx] != 1 {
		t.Fatalf("test layout drifted: byte at %d = %d, want span count 1", idx, payload[idx])
	}
	payload[idx] = 250
	if _, err := DecodeReply(payload); err == nil {
		t.Fatal("corrupt span count accepted")
	}
	// Trailing bytes after the section stay an error.
	bad := append(append([]byte(nil), full[HeaderSize:]...), 0)
	if _, err := DecodeReply(bad); err == nil {
		t.Fatal("trailing byte after span section accepted")
	}
}

// TestAckServiceNsRoundTrip: the optional service-time piggyback on
// acks — absent on the zero value (old encoding preserved), present and
// round-tripping when set, canonical (an explicit zero is rejected as a
// trailing byte, not decoded back to the short form).
func TestAckServiceNsRoundTrip(t *testing.T) {
	plain := AppendAck(nil, Ack{Count: 9})
	got, err := DecodeAck(plain[HeaderSize:])
	if err != nil || got.ServiceNs != 0 || got.Count != 9 {
		t.Fatalf("plain ack: %#v, %v", got, err)
	}
	stamped := AppendAck(nil, Ack{Count: 9, ServiceNs: 480})
	if len(stamped) <= len(plain) {
		t.Fatalf("service time did not grow the frame: %d vs %d", len(stamped), len(plain))
	}
	got, err = DecodeAck(stamped[HeaderSize:])
	if err != nil || got.ServiceNs != 480 || got.Count != 9 {
		t.Fatalf("stamped ack: %#v, %v", got, err)
	}
	// A trailing zero is a non-canonical service field, not a valid ack.
	if _, err := DecodeAck(append(append([]byte(nil), plain[HeaderSize:]...), 0)); err == nil {
		t.Fatal("zero service field accepted")
	}
}

// TestCreditUpdateRoundTrip: the mid-session window re-size frame obeys
// the same validation as the session-opening Credit.
func TestCreditUpdateRoundTrip(t *testing.T) {
	b := AppendCreditUpdate(nil, CreditUpdate{Window: 512})
	kind, payload, err := ReadFrame(bytes.NewReader(b), nil)
	if err != nil || kind != KindCreditUpdate {
		t.Fatalf("read: %v, %v", kind, err)
	}
	u, err := DecodeCreditUpdate(payload)
	if err != nil || u.Window != 512 {
		t.Fatalf("round trip: %#v, %v", u, err)
	}
	if _, err := DecodeCreditUpdate([]byte{0}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := DecodeCreditUpdate(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestHeaderRejections(t *testing.T) {
	good, _ := AppendTuple(nil, &Tuple{KeyHash: 1})

	// Wrong version.
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, _, err := ReadFrame(bytes.NewReader(bad), nil); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Unknown kind.
	bad = append([]byte(nil), good...)
	bad[1] = 200
	if _, _, err := ReadFrame(bytes.NewReader(bad), nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Oversized payload length: rejected before any allocation.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[2:], MaxPayload+1)
	if _, _, err := ReadFrame(bytes.NewReader(bad), nil); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	for i, fr := range encodeAll(t) {
		// Every strict prefix must error (ReadFrame short read, or the
		// per-kind decoder on a cut payload) — and never panic.
		for cut := 0; cut < len(fr); cut++ {
			_, _, err := ReadFrame(bytes.NewReader(fr[:cut]), nil)
			if cut == 0 {
				if err != io.EOF {
					t.Fatalf("frame %d: empty read err = %v, want io.EOF", i, err)
				}
				continue
			}
			if err == nil {
				t.Fatalf("frame %d truncated at %d accepted", i, cut)
			}
		}
		// A truncated *payload* handed straight to the decoder errors too —
		// with one principled exception: cutting a Reply exactly at its
		// optional-trailing-section boundary yields what an older node
		// would have sent, which must keep decoding. Such a prefix is only
		// acceptable when it is canonical: re-encoding what it decoded to
		// reproduces the prefix byte for byte.
		kind, payload, err := ReadFrame(bytes.NewReader(fr), nil)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(payload); cut++ {
			v, err := decodeFrame(kind, payload[:cut])
			if err == nil && !bytes.Equal(reencode(v)[HeaderSize:], payload[:cut]) {
				t.Fatalf("frame %d (%v): payload truncated at %d/%d accepted",
					i, kind, cut, len(payload))
			}
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	for i, fr := range encodeAll(t) {
		kind, payload, err := ReadFrame(bytes.NewReader(fr), nil)
		if err != nil {
			t.Fatal(err)
		}
		grown := append(append([]byte(nil), payload...), 0)
		if _, err := decodeFrame(kind, grown); err == nil {
			t.Fatalf("frame %d (%v): trailing byte accepted", i, kind)
		}
	}
}

func TestReadFrameStream(t *testing.T) {
	var stream []byte
	frames := encodeAll(t)
	for _, fr := range frames {
		stream = append(stream, fr...)
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i := 0; ; i++ {
		kind, payload, err := ReadFrame(r, buf)
		if err == io.EOF {
			if i != len(frames) {
				t.Fatalf("EOF after %d frames, want %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeFrame(kind, payload); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = payload
	}
	// A stream cut mid-frame reports ErrUnexpectedEOF, not a clean EOF.
	r = bytes.NewReader(stream[:len(stream)-1])
	var err error
	for err == nil {
		_, _, err = ReadFrame(r, nil)
	}
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-frame cut err = %v, want %v", err, io.ErrUnexpectedEOF)
	}
}

// TestReadFrameBufferedMatchesReadFrame drives the zero-copy buffered
// reader over the full frame corpus with a deliberately tiny bufio
// buffer, so small frames take the aliasing Peek path and large ones
// the copying spill path — every frame must decode to exactly what
// ReadFrame yields, and EOF semantics must match (clean boundary:
// io.EOF; mid-frame cut: io.ErrUnexpectedEOF).
func TestReadFrameBufferedMatchesReadFrame(t *testing.T) {
	var stream []byte
	frames := encodeAll(t)
	for _, fr := range frames {
		stream = append(stream, fr...)
	}
	for _, size := range []int{16, 64, 1 << 16} {
		br := bufio.NewReaderSize(bytes.NewReader(stream), size)
		plain := bytes.NewReader(stream)
		var spill, buf []byte
		for i := 0; ; i++ {
			kind, payload, err := ReadFrameBuffered(br, &spill)
			wantKind, wantPayload, wantErr := ReadFrame(plain, buf)
			if err != wantErr || kind != wantKind {
				t.Fatalf("size %d frame %d: (%v, %v), want (%v, %v)", size, i, kind, err, wantKind, wantErr)
			}
			if err == io.EOF {
				if i != len(frames) {
					t.Fatalf("size %d: EOF after %d frames, want %d", size, i, len(frames))
				}
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(payload, wantPayload) {
				t.Fatalf("size %d frame %d: payload mismatch", size, i)
			}
			// Decode before the next read: the payload may alias the
			// bufio buffer and is only valid until then.
			if _, err := decodeFrame(kind, payload); err != nil {
				t.Fatalf("size %d frame %d: %v", size, i, err)
			}
			buf = wantPayload
		}
		// A stream cut mid-frame reports ErrUnexpectedEOF, not io.EOF.
		br = bufio.NewReaderSize(bytes.NewReader(stream[:len(stream)-1]), size)
		var err error
		for err == nil {
			_, _, err = ReadFrameBuffered(br, &spill)
		}
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("size %d: mid-frame cut err = %v, want %v", size, err, io.ErrUnexpectedEOF)
		}
	}
}

// FuzzRoundTrip feeds arbitrary bytes through the frame reader and every
// decoder: nothing may panic, and anything that decodes must re-encode
// and re-decode to the same value (the codec is self-consistent even on
// adversarial input that happens to parse).
func FuzzRoundTrip(f *testing.F) {
	for _, fr := range encodeAll(f) {
		f.Add(fr)
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, byte(KindTuple), 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err == nil {
			if v, derr := decodeFrame(kind, payload); derr == nil {
				re := reencode(v)
				k2, p2, err2 := ReadFrame(bytes.NewReader(re), nil)
				if err2 != nil || k2 != kind {
					t.Fatalf("re-encode of decoded %v failed: %v", kind, err2)
				}
				v2, derr2 := decodeFrame(k2, p2)
				if derr2 != nil {
					t.Fatalf("re-decode of %v failed: %v", kind, derr2)
				}
				if !reflect.DeepEqual(v, v2) {
					t.Fatalf("%v not stable:\n got %#v\nwant %#v", kind, v2, v)
				}
			}
		}
		// Raw payload bytes against every decoder: must never panic.
		var tu Tuple
		var pa Partial
		_ = DecodeTuple(data, &tu)
		_ = DecodePartial(data, &pa)
		_, _ = DecodeMark(data)
		_, _ = DecodeSketch(data)
		_, _ = DecodeQuery(data)
		_, _ = DecodeReply(data)
		_, _ = DecodeCredit(data)
		_, _ = DecodeCreditUpdate(data)
		_, _ = DecodeAck(data)
		_, _ = DecodeSubscribe(data)
		_, _ = DecodeTupleBatch(data, nil)
	})
}

// TestSeedCorpusCoversAllKinds regenerates the committed fuzz seed
// corpus when WIRE_WRITE_CORPUS=1 and otherwise verifies the files are
// present and decodable — the corpus is part of the repo so CI fuzzing
// starts from every frame kind, not from scratch.
func TestSeedCorpusCoversAllKinds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzRoundTrip")
	frames := encodeAll(t)
	if os.Getenv("WIRE_WRITE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, fr := range frames {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(fr)) + ")\n"
			name := filepath.Join(dir, "seed-"+Kind(fr[1]).String()+"-"+strconv.Itoa(i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz seed corpus missing (run with WIRE_WRITE_CORPUS=1 to regenerate): %v", err)
	}
	covered := map[Kind]bool{}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a go fuzz corpus file", e.Name())
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		data, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		kind, payload, err := ReadFrame(strings.NewReader(data), nil)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if _, err := decodeFrame(kind, payload); err != nil {
			t.Fatalf("%s (%v): %v", e.Name(), kind, err)
		}
		covered[kind] = true
	}
	for k := KindTuple; k < kindEnd; k++ {
		if k != KindInvalid && !covered[k] {
			t.Fatalf("seed corpus missing frame kind %v", k)
		}
	}
}

// Package trace is the per-tuple distributed tracing and flight
// recorder core. A sampled 1-in-N spout emit is assigned a non-zero
// 64-bit trace ID that rides the tuple through every hop — route
// decision, edge enqueue, wire send, worker dispatch, partial
// accumulate, flush, final merge, window close, result push — and each
// layer appends a Span to its process's ring buffer as the tuple
// passes. The ring is fixed-size and mutex-guarded with nanosecond
// hold times; because only traced tuples (and rare flow-control
// events) ever reach it, the untraced hot path pays exactly one
// predictable branch (`t.TraceID != 0`).
//
// The same ring doubles as a black-box flight recorder: edges record
// flow-control events (credit stalls, redials, backoff exhaustion)
// with trace ID 0, and the last Cap() entries are dumped to stderr on
// SIGQUIT (see HandleSIGQUIT) and on engine.Run failure — so a
// post-mortem of a typed EdgeError starts from what the node actually
// did, not from guesswork.
//
// Spans are exported two ways: Chrome trace_event JSON over
// `GET /debug/pktrace` (see Handler) for a browser timeline, and raw
// spans over the wire protocol's OpTrace query so the pipeline
// experiment can assemble one tuple's causal path across five real
// processes without HTTP.
package trace

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hop identifies the layer that emitted a span.
type Hop uint8

// The hops of a tuple's life, in causal order, plus HopEvent for
// flight-recorder entries that belong to no tuple.
const (
	// HopEmit is the spout emit that sampled the tuple into a trace.
	HopEmit Hop = 1 + iota
	// HopRoute is a routing decision: Arg1 = chosen worker, Note holds
	// strategy, key class, candidate set and per-candidate loads.
	HopRoute
	// HopEnqueue is a local-edge enqueue: Dur = channel block time,
	// Arg1 = batch size.
	HopEnqueue
	// HopWireSend is a wire-edge frame send: Arg1 = batch tuples,
	// Arg2 = credit wait ns.
	HopWireSend
	// HopDispatch is a worker picking the tuple up: Dur = handler time.
	HopDispatch
	// HopPartial is the partial stage accumulating the tuple:
	// Arg1 = live (key, window) slots after the accumulate.
	HopPartial
	// HopFlush is a partial flush that shipped the tuple's window state
	// downstream: Arg1 = the slot's window start.
	HopFlush
	// HopMerge is the final stage merging a partial of the trace:
	// Arg1 = window start (0 on the global-window fast path).
	HopMerge
	// HopWindowClose is the window containing the tuple closing:
	// Arg1 = window start, Arg2 = result count.
	HopWindowClose
	// HopResult is the closed result leaving the final stage.
	HopResult
	// HopEvent is a flight-recorder event (Trace == 0): credit stall,
	// redial, backoff exhaustion. Note names the event.
	HopEvent

	hopMax
)

var hopNames = [...]string{
	HopEmit:        "emit",
	HopRoute:       "route",
	HopEnqueue:     "enqueue",
	HopWireSend:    "wire-send",
	HopDispatch:    "dispatch",
	HopPartial:     "partial",
	HopFlush:       "flush",
	HopMerge:       "merge",
	HopWindowClose: "window-close",
	HopResult:      "result",
	HopEvent:       "event",
}

func (h Hop) String() string {
	if h >= 1 && h < hopMax {
		return hopNames[h]
	}
	return fmt.Sprintf("hop(%d)", uint8(h))
}

// Span is one hop of a traced tuple, or a flight-recorder event.
type Span struct {
	// Trace is the tuple's trace ID (0 for flight-recorder events).
	Trace uint64
	// Start is the wall-clock start in nanoseconds since the epoch.
	Start int64
	// Dur is the span duration in nanoseconds (0 for instants).
	Dur int64
	// Arg1, Arg2 are hop-specific integers (see the Hop constants).
	Arg1, Arg2 int64
	// Hop is the emitting layer.
	Hop Hop
	// Proc is the process the span was recorded in; filled on export
	// and assembly, empty inside a ring (the ring's owner knows).
	Proc string
	// Note is a short human-readable detail line.
	Note string
}

// Ring is a fixed-capacity span ring buffer. Record overwrites the
// oldest entry once full; Snapshot copies the surviving entries out in
// recording order. All methods are safe for concurrent use.
//
// The buffer is allocated on the first Record, not at construction: a
// Span holds two pointer words, so an eagerly allocated default-depth
// ring is ~320 KiB of pointer-bearing global the collector rescans
// every cycle — measured ~10% on the batched emit path with tracing
// disabled, purely from GC scan pressure in a small, hot heap. A
// process that never records a span never pays for the ring.
type Ring struct {
	mu  sync.Mutex
	k   int // capacity; buf is nil until the first Record
	buf []Span
	n   uint64 // total ever recorded
}

// DefaultRingSpans is the default flight-recorder depth.
const DefaultRingSpans = 4096

// NewRing returns a ring keeping the last k spans (k < 1 becomes
// DefaultRingSpans).
func NewRing(k int) *Ring {
	if k < 1 {
		k = DefaultRingSpans
	}
	return &Ring{k: k}
}

// Record appends one span, evicting the oldest when full.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	if r.buf == nil {
		r.buf = make([]Span, 0, r.k)
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = s
	}
	r.n++
	r.mu.Unlock()
}

// Snapshot returns a copy of the retained spans, oldest first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.buf))
	if len(r.buf) < cap(r.buf) || len(r.buf) == 0 {
		// Not yet wrapped — or never recorded, where the lazy buffer is
		// still nil and the wrap arithmetic below would divide by zero.
		copy(out, r.buf)
		return out
	}
	head := int(r.n % uint64(cap(r.buf))) // oldest entry
	m := copy(out, r.buf[head:])
	copy(out[m:], r.buf[:head])
	return out
}

// Total returns how many spans were ever recorded (≥ len(Snapshot());
// the difference is what the ring evicted).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.k
}

// Resize replaces the buffer with one keeping the last k spans,
// carrying over as many of the newest entries as fit (a never-recorded
// ring stays unallocated).
func (r *Ring) Resize(k int) {
	if k < 1 {
		k = DefaultRingSpans
	}
	old := r.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.k = k
	if r.buf == nil && len(old) == 0 {
		return
	}
	if len(old) > k {
		old = old[len(old)-k:]
	}
	r.buf = append(make([]Span, 0, k), old...)
}

// Default is the process-global ring every layer records into.
var Default = NewRing(DefaultRingSpans)

var procName atomic.Value // string

// SetProcess names this process in exported spans and dumps
// ("engine", "partial-0", "final-1", ...).
func SetProcess(name string) { procName.Store(name) }

// Process returns the name set by SetProcess, or "pid-<n>".
func Process() string {
	if v, ok := procName.Load().(string); ok && v != "" {
		return v
	}
	return fmt.Sprintf("pid-%d", os.Getpid())
}

// idState seeds trace IDs with the process start time so IDs from
// different processes (and restarts) never collide in practice.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// NewID returns a fresh non-zero trace ID: a splitmix64 draw over an
// atomic counter seeded per process.
func NewID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// Add records one hop of a traced tuple into the Default ring. Callers
// must have already checked the tuple is traced (TraceID != 0), so the
// untraced path never pays the call.
func Add(trace uint64, hop Hop, start, dur, arg1, arg2 int64, note string) {
	Default.Record(Span{Trace: trace, Hop: hop, Start: start, Dur: dur,
		Arg1: arg1, Arg2: arg2, Note: note})
}

// Event records a flight-recorder event (credit stall, redial, backoff
// exhaustion) into the Default ring with trace ID 0.
func Event(note string, arg1, arg2 int64) {
	Default.Record(Span{Hop: HopEvent, Start: time.Now().UnixNano(),
		Arg1: arg1, Arg2: arg2, Note: note})
}

// Now returns the wall clock in span units (nanoseconds since the
// epoch) — the single definition every recording site uses.
func Now() int64 { return time.Now().UnixNano() }

// Dump writes the ring human-readably, oldest first — the flight
// recorder's post-mortem form.
func (r *Ring) Dump(w io.Writer, reason string) {
	spans := r.Snapshot()
	fmt.Fprintf(w, "pktrace flight recorder: proc=%s reason=%q spans=%d recorded=%d cap=%d\n",
		Process(), reason, len(spans), r.Total(), r.Cap())
	for _, s := range spans {
		at := time.Unix(0, s.Start).UTC().Format("15:04:05.000000")
		if s.Trace == 0 {
			fmt.Fprintf(w, "  %s %-12s dur=%-10s arg1=%-8d arg2=%-8d %s\n",
				at, s.Hop, time.Duration(s.Dur), s.Arg1, s.Arg2, s.Note)
			continue
		}
		fmt.Fprintf(w, "  %s trace=%016x %-12s dur=%-10s arg1=%-8d arg2=%-8d %s\n",
			at, s.Trace, s.Hop, time.Duration(s.Dur), s.Arg1, s.Arg2, s.Note)
	}
}

// DumpFailure dumps the Default ring to stderr if it holds anything —
// the engine calls this when Run fails, so the events leading up to a
// typed EdgeError are on record.
func DumpFailure(reason string) {
	if Default.Total() == 0 {
		return
	}
	Default.Dump(os.Stderr, reason)
}

// ByTrace groups spans by trace ID, each group sorted by start time —
// the assembly step of cross-process tracing. Spans with trace ID 0
// (flight-recorder events) are dropped.
func ByTrace(spans []Span) map[uint64][]Span {
	out := map[uint64][]Span{}
	for _, s := range spans {
		if s.Trace == 0 {
			continue
		}
		out[s.Trace] = append(out[s.Trace], s)
	}
	for _, g := range out {
		sort.SliceStable(g, func(i, j int) bool { return g[i].Start < g[j].Start })
	}
	return out
}

package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
)

// chromeEvent is one entry of the Chrome trace_event JSON array
// (chrome://tracing and Perfetto both load it). Timestamps are
// MICROseconds; ph "X" is a complete event, "M" is metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint32         `json:"pid"`
	Tid  uint32         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromePid derives a stable numeric pid for a process name (the
// format wants numbers; a process_name metadata event carries the
// string).
func chromePid(proc string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(proc); i++ {
		h = (h ^ uint32(proc[i])) * 16777619
	}
	return h&0x7fffffff | 1
}

// WriteChrome writes spans as a Chrome trace_event JSON array. Spans
// without a Proc get proc; each trace ID becomes one "thread" so the
// timeline shows a traced tuple's hops on one row. Flight-recorder
// events (trace 0) share the 0 row.
func WriteChrome(w *json.Encoder, proc string, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans)+4)
	named := map[string]bool{}
	for _, s := range spans {
		p := s.Proc
		if p == "" {
			p = proc
		}
		pid := chromePid(p)
		if !named[p] {
			named[p] = true
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": p},
			})
		}
		ev := chromeEvent{
			Name: s.Hop.String(),
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  pid,
			Tid:  uint32(s.Trace) ^ uint32(s.Trace>>32),
			Args: map[string]any{
				"trace": fmt.Sprintf("%016x", s.Trace),
				"arg1":  s.Arg1,
				"arg2":  s.Arg2,
			},
		}
		if s.Note != "" {
			ev.Args["note"] = s.Note
		}
		events = append(events, ev)
	}
	return w.Encode(events)
}

// Handler serves r as Chrome trace_event JSON — mount it on the
// metrics mux as /debug/pktrace. Load the response in chrome://tracing
// or https://ui.perfetto.dev to see every retained span on a timeline.
func Handler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChrome(json.NewEncoder(w), Process(), r.Snapshot())
	})
}

// HandleSIGQUIT makes SIGQUIT dump the Default ring to stderr and keep
// running — the JVM's thread-dump idiom applied to the flight
// recorder: `kill -QUIT <pid>` inspects a live node without stopping
// it. Note this replaces the Go runtime's default SIGQUIT behavior
// (stack dump + exit) for this process. The returned stop function
// restores delivery and ends the goroutine.
func HandleSIGQUIT() (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				Default.Dump(os.Stderr, "SIGQUIT")
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

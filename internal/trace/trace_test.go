package trace

import (
	"strings"
	"testing"
)

func span(id uint64, start int64) Span {
	return Span{Trace: id, Start: start, Hop: HopEmit}
}

// TestRingLazyAllocation: a never-recorded ring answers every query
// without allocating its buffer — the regression test for the
// divide-by-zero a nil buffer once caused in Snapshot's wrap
// arithmetic (via Resize on a fresh ring).
func TestRingLazyAllocation(t *testing.T) {
	r := NewRing(8)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring snapshot = %v", got)
	}
	if r.Total() != 0 || r.Cap() != 8 {
		t.Fatalf("fresh ring total=%d cap=%d", r.Total(), r.Cap())
	}
	r.Resize(16) // must not panic, must not allocate
	if r.buf != nil {
		t.Fatal("Resize allocated a never-recorded ring's buffer")
	}
	if r.Cap() != 16 {
		t.Fatalf("cap after resize = %d, want 16", r.Cap())
	}
	r.Record(span(1, 10))
	if got := r.Snapshot(); len(got) != 1 || got[0].Trace != 1 {
		t.Fatalf("after first record: %v", got)
	}
}

// TestRingWrapOrder: once full, Record evicts the oldest span and
// Snapshot returns survivors oldest first.
func TestRingWrapOrder(t *testing.T) {
	r := NewRing(4)
	for i := int64(1); i <= 10; i++ {
		r.Record(span(uint64(i), i))
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	for i, s := range got {
		if want := uint64(7 + i); s.Trace != want {
			t.Fatalf("snapshot[%d].Trace = %d, want %d", i, s.Trace, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
}

// TestRingResizeCarriesNewest: shrinking keeps the newest spans.
func TestRingResizeCarriesNewest(t *testing.T) {
	r := NewRing(8)
	for i := int64(1); i <= 6; i++ {
		r.Record(span(uint64(i), i))
	}
	r.Resize(3)
	got := r.Snapshot()
	if len(got) != 3 || got[0].Trace != 4 || got[2].Trace != 6 {
		t.Fatalf("after shrink: %v", got)
	}
	// Growing keeps everything and continues recording seamlessly.
	r.Resize(10)
	r.Record(span(7, 7))
	if got := r.Snapshot(); len(got) != 4 || got[3].Trace != 7 {
		t.Fatalf("after grow: %v", got)
	}
}

func TestNewIDNonZeroAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
	}
}

// TestByTrace: grouping drops flight-recorder events (Trace 0) and
// sorts each trace's spans by start time.
func TestByTrace(t *testing.T) {
	spans := []Span{
		{Trace: 1, Start: 30, Hop: HopRoute},
		{Trace: 2, Start: 5, Hop: HopEmit},
		{Trace: 0, Start: 1, Hop: HopEvent, Note: "redial"},
		{Trace: 1, Start: 10, Hop: HopEmit},
	}
	got := ByTrace(spans)
	if len(got) != 2 {
		t.Fatalf("groups = %d, want 2", len(got))
	}
	g := got[1]
	if len(g) != 2 || g[0].Hop != HopEmit || g[1].Hop != HopRoute {
		t.Fatalf("trace 1 out of order: %v", g)
	}
}

func TestDumpRendersEventsAndTraces(t *testing.T) {
	r := NewRing(8)
	r.Record(Span{Trace: 0xabcd, Start: 1e9, Dur: 500, Hop: HopDispatch})
	r.Record(Span{Start: 2e9, Hop: HopEvent, Note: "credit-stall"})
	var b strings.Builder
	r.Dump(&b, "test")
	out := b.String()
	for _, want := range []string{"reason=\"test\"", "000000000000abcd", "dispatch", "credit-stall", "spans=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestHopNames(t *testing.T) {
	if HopEmit.String() != "emit" || HopWindowClose.String() != "window-close" {
		t.Fatal("hop names drifted")
	}
	if got := Hop(200).String(); got != "hop(200)" {
		t.Fatalf("unknown hop renders %q", got)
	}
}

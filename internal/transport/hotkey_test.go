package transport

import (
	"testing"

	"pkgstream/internal/rng"
)

// sendSkewed streams n keys: key 1 with probability p, the rest uniform
// over [2, 2+tail).
func sendSkewed(t *testing.T, src *Source, n int, p float64, tail uint64, seed uint64) {
	t.Helper()
	r := rng.NewStream(seed, 0)
	for i := 0; i < n; i++ {
		key := uint64(1)
		if r.Float64() >= p {
			key = 2 + r.Uint64()%tail
		}
		if err := src.Send(key); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestDChoicesSpreadsHotKeyOverTCP runs the frequency-aware source
// against real workers: the hot key must land on more than two workers,
// and — because candidate sets only ever widen — a point query over the
// key's current candidates must still see its *entire* count.
func TestDChoicesSpreadsHotKeyOverTCP(t *testing.T) {
	const n, w = 30_000, 12
	workers, addrs := startWorkers(t, w)
	src, err := DialSourceD(addrs, ModeDChoices, 42, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	sendSkewed(t, src, n, 0.5, 2_000, 9)
	waitTotal(t, workers, n)

	cands := src.Candidates(1)
	if len(cands) <= 2 {
		t.Fatalf("hot key candidates %v not widened beyond 2", cands)
	}
	// The widened set must cover every worker holding a partial count:
	// early (pre-classification) messages went to the PKG-2 pair, which
	// widening keeps (nested candidates).
	var onCands, everywhere int64
	holders := 0
	for i, wk := range workers {
		c := wk.Count(1)
		everywhere += c
		if c > 0 {
			holders++
		}
		for _, cand := range cands {
			if cand == i {
				onCands += c
				break
			}
		}
	}
	if holders <= 2 {
		t.Fatalf("hot key held by %d workers, want > 2", holders)
	}
	if onCands != everywhere {
		t.Fatalf("candidates hold %d of the hot key's %d count", onCands, everywhere)
	}
	got, err := Query(addrs, 1, cands)
	if err != nil {
		t.Fatal(err)
	}
	if got != everywhere {
		t.Fatalf("point query over %d candidates = %d, want %d", len(cands), got, everywhere)
	}

	// The local view matches what the workers absorbed.
	var viewTotal int64
	for _, l := range src.LocalLoads() {
		viewTotal += l
	}
	if viewTotal != n {
		t.Fatalf("local view total %d, want %d", viewTotal, n)
	}
}

// TestWChoicesHeadUsesAllWorkersOverTCP checks the W-Choices probe set
// and spread: the head key reaches every worker and its query must
// cover all of them.
func TestWChoicesHeadUsesAllWorkersOverTCP(t *testing.T) {
	const n, w = 20_000, 8
	workers, addrs := startWorkers(t, w)
	src, err := DialSourceD(addrs, ModeWChoices, 7, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	sendSkewed(t, src, n, 0.6, 1_000, 3)
	waitTotal(t, workers, n)

	cands := src.Candidates(1)
	if len(cands) != w {
		t.Fatalf("head key candidates %v, want all %d workers", cands, w)
	}
	var total int64
	spread := 0
	for _, wk := range workers {
		if c := wk.Count(1); c > 0 {
			spread++
			total += c
		}
	}
	if spread != w {
		t.Fatalf("head key reached %d of %d workers", spread, w)
	}
	got, err := Query(addrs, 1, cands)
	if err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("query = %d, want %d", got, total)
	}
	// A cold tail key keeps the two-candidate probe set.
	cold := src.Candidates(999_999_999)
	if len(cold) != 2 {
		t.Fatalf("cold key candidates %v, want 2", cold)
	}
}

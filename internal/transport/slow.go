package transport

import (
	"time"

	"pkgstream/internal/wire"
)

// Slow wraps h with a fixed per-tuple dispatch delay — the fault
// injector behind `pkgnode -slow-worker` and the heterogeneous-cluster
// scenarios in tests and CI. The delay runs inside the worker's
// serialized dispatch, so it inflates the sampled service-time EWMA
// exactly like genuinely slow handler work would: senders observe the
// degradation through ack-piggybacked service rates, not through any
// side channel. Marks, queries and subscriptions stay undelayed
// (control traffic is not "work").
//
// The returned handler preserves the wrapped handler's optional
// capabilities: batches still dispatch in one call when h batches
// (delayed by per-tuple × batch size), and push subscriptions still
// reach h when it pushes.
func Slow(h Handler, perTuple time.Duration) Handler {
	if perTuple <= 0 {
		return h
	}
	s := slowHandler{h: h, d: perTuple}
	bh, _ := h.(TupleBatchHandler)
	ph, _ := h.(PushHandler)
	switch {
	case bh != nil && ph != nil:
		return &slowBatchPushHandler{slowBatchHandler{s, bh}, ph}
	case bh != nil:
		return &slowBatchHandler{s, bh}
	case ph != nil:
		return &slowPushHandler{s, ph}
	default:
		return &s
	}
}

type slowHandler struct {
	h Handler
	d time.Duration
}

func (s *slowHandler) HandleTuple(t *wire.Tuple) {
	time.Sleep(s.d)
	s.h.HandleTuple(t)
}

func (s *slowHandler) HandlePartial(p *wire.Partial) {
	time.Sleep(s.d)
	s.h.HandlePartial(p)
}

func (s *slowHandler) HandleMark(m wire.Mark)              { s.h.HandleMark(m) }
func (s *slowHandler) HandleQuery(q wire.Query) wire.Reply { return s.h.HandleQuery(q) }

type slowBatchHandler struct {
	slowHandler
	bh TupleBatchHandler
}

func (s *slowBatchHandler) HandleTupleBatch(ts []wire.Tuple) {
	time.Sleep(s.d * time.Duration(len(ts)))
	s.bh.HandleTupleBatch(ts)
}

type slowPushHandler struct {
	slowHandler
	ph PushHandler
}

func (s *slowPushHandler) HandleSubscribe(sub wire.Subscribe, sink ResultSink) {
	s.ph.HandleSubscribe(sub, sink)
}

type slowBatchPushHandler struct {
	slowBatchHandler
	ph PushHandler
}

func (s *slowBatchPushHandler) HandleSubscribe(sub wire.Subscribe, sink ResultSink) {
	s.ph.HandleSubscribe(sub, sink)
}

package transport

import (
	"sync"
	"testing"
	"time"

	"pkgstream/internal/rng"
)

// startWorkers spins up n workers on ephemeral loopback ports.
func startWorkers(t *testing.T, n int) ([]*Worker, []string) {
	t.Helper()
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	for i := range workers {
		w, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		addrs[i] = w.Addr()
		t.Cleanup(func() { _ = w.Close() })
	}
	return workers, addrs
}

func totalProcessed(ws []*Worker) int64 {
	var n int64
	for _, w := range ws {
		n += w.Processed()
	}
	return n
}

func waitTotal(t *testing.T, ws []*Worker, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for totalProcessed(ws) < want {
		if time.Now().After(deadline) {
			t.Fatalf("workers absorbed %d < %d", totalProcessed(ws), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEndToEndCountsOverTCP(t *testing.T) {
	workers, addrs := startWorkers(t, 5)
	src, err := DialSource(addrs, ModePKG, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	z := rng.NewZipf(rng.New(1), rng.SolveZipfExponent(2000, 0.09), 2000)
	truth := map[uint64]int64{}
	const n = 30_000
	for i := 0; i < n; i++ {
		k := z.Next()
		truth[k]++
		if err := src.Send(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	waitTotal(t, workers, n)

	// Every key's 2-probe distributed query equals its true count.
	for k := uint64(1); k <= 50; k++ {
		got, err := Query(addrs, k, src.Candidates(k))
		if err != nil {
			t.Fatal(err)
		}
		if got != truth[k] {
			t.Fatalf("key %d: distributed count %d, want %d", k, got, truth[k])
		}
	}
	// PKG keeps each key on ≤ 2 workers.
	for k := uint64(1); k <= 50; k++ {
		if c := src.Candidates(k); len(c) > 2 {
			t.Fatalf("key %d has %d candidates", k, len(c))
		}
	}
}

func TestPKGBalancesOverTCPWhereKGDoesNot(t *testing.T) {
	imbalance := func(ws []*Worker) float64 {
		var max, sum int64
		for _, w := range ws {
			p := w.Processed()
			if p > max {
				max = p
			}
			sum += p
		}
		return float64(max) - float64(sum)/float64(len(ws))
	}
	run := func(mode Mode) float64 {
		workers, addrs := startWorkers(t, 5)
		src, err := DialSource(addrs, mode, 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		z := rng.NewZipf(rng.New(3), rng.SolveZipfExponent(3000, 0.12), 3000)
		const n = 40_000
		for i := 0; i < n; i++ {
			if err := src.Send(z.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := src.Flush(); err != nil {
			t.Fatal(err)
		}
		waitTotal(t, workers, n)
		return imbalance(workers)
	}
	pkg := run(ModePKG)
	kg := run(ModeKG)
	if pkg*5 > kg {
		t.Fatalf("PKG imbalance %v not well below KG %v over TCP", pkg, kg)
	}
}

func TestMultipleIndependentSources(t *testing.T) {
	// Two sources with private local estimates and zero coordination:
	// total worker load must still balance (§III.B over a real network).
	workers, addrs := startWorkers(t, 4)
	const perSource = 20_000
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			src, err := DialSource(addrs, ModePKG, 99, id)
			if err != nil {
				t.Error(err)
				return
			}
			defer src.Close()
			z := rng.NewZipf(rng.New(uint64(id)+10), rng.SolveZipfExponent(1000, 0.1), 1000)
			for i := 0; i < perSource; i++ {
				if err := src.Send(z.Next()); err != nil {
					t.Error(err)
					return
				}
			}
			if err := src.Flush(); err != nil {
				t.Error(err)
			}
			if loads := src.LocalLoads(); len(loads) != 4 {
				t.Errorf("local loads %v", loads)
			}
		}(s)
	}
	wg.Wait()
	waitTotal(t, workers, 2*perSource)

	var max, sum int64
	for _, w := range workers {
		p := w.Processed()
		if p > max {
			max = p
		}
		sum += p
	}
	imb := float64(max) - float64(sum)/4
	if imb > 0.01*float64(sum) {
		t.Fatalf("two uncoordinated sources left imbalance %v of %d", imb, sum)
	}
}

func TestShuffleModeRoundRobin(t *testing.T) {
	workers, addrs := startWorkers(t, 3)
	src, err := DialSource(addrs, ModeSG, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 3000; i++ {
		if err := src.Send(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	waitTotal(t, workers, 3000)
	for _, w := range workers {
		if w.Processed() != 1000 {
			t.Fatalf("worker %s processed %d, want 1000", w.Addr(), w.Processed())
		}
	}
	if got := src.Candidates(5); len(got) != 3 {
		t.Fatalf("SG candidates = %v", got)
	}
}

func TestQueryUnknownKeyZero(t *testing.T) {
	_, addrs := startWorkers(t, 2)
	got, err := Query(addrs, 12345, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("unknown key counted %d", got)
	}
	if _, err := Query(addrs, 1, []int{5}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := DialSource(nil, ModePKG, 1, 0); err == nil {
		t.Fatal("empty addrs accepted")
	}
	if _, err := DialSource([]string{"127.0.0.1:1"}, ModePKG, 1, 0); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	_, addrs := startWorkers(t, 1)
	if _, err := DialSource(addrs, Mode(99), 1, 0); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestWorkerCloseIdempotentAndUnblocksDial(t *testing.T) {
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := DialSource([]string{w.Addr()}, ModePKG, 1, 0); err == nil {
		t.Fatal("dial to closed worker succeeded")
	}
}

func TestProtocolViolationDropsConnection(t *testing.T) {
	workers, addrs := startWorkers(t, 1)
	src, err := DialSource(addrs, ModeKG, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Valid frame, then garbage: the worker keeps the first and drops the
	// connection on the second without crashing.
	if err := src.Send(7); err != nil {
		t.Fatal(err)
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	waitTotal(t, workers, 1)
	if _, err := src.conns[0].Write([]byte{'X', 0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = src.Close()
	// Worker still answers queries afterwards.
	got, err := Query(addrs, 7, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("count after violation = %d", got)
	}
}

func BenchmarkSendOverLoopback(b *testing.B) {
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	src, err := DialSource([]string{w.Addr()}, ModePKG, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		b.Fatal(err)
	}
}

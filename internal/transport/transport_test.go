package transport

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"pkgstream/internal/rng"
	"pkgstream/internal/route"
	"pkgstream/internal/wire"
)

// startWorkers spins up n workers on ephemeral loopback ports.
func startWorkers(t *testing.T, n int) ([]*Worker, []string) {
	t.Helper()
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	for i := range workers {
		w, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		addrs[i] = w.Addr()
		t.Cleanup(func() { _ = w.Close() })
	}
	return workers, addrs
}

func totalProcessed(ws []*Worker) int64 {
	var n int64
	for _, w := range ws {
		n += w.Processed()
	}
	return n
}

func waitTotal(t *testing.T, ws []*Worker, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for totalProcessed(ws) < want {
		if time.Now().After(deadline) {
			t.Fatalf("workers absorbed %d < %d", totalProcessed(ws), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEndToEndCountsOverTCP(t *testing.T) {
	workers, addrs := startWorkers(t, 5)
	src, err := DialSource(addrs, ModePKG, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	z := rng.NewZipf(rng.New(1), rng.SolveZipfExponent(2000, 0.09), 2000)
	truth := map[uint64]int64{}
	const n = 30_000
	for i := 0; i < n; i++ {
		k := z.Next()
		truth[k]++
		if err := src.Send(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	waitTotal(t, workers, n)

	// Every key's 2-probe distributed query equals its true count.
	for k := uint64(1); k <= 50; k++ {
		got, err := Query(addrs, k, src.Candidates(k))
		if err != nil {
			t.Fatal(err)
		}
		if got != truth[k] {
			t.Fatalf("key %d: distributed count %d, want %d", k, got, truth[k])
		}
	}
	// PKG keeps each key on ≤ 2 workers.
	for k := uint64(1); k <= 50; k++ {
		if c := src.Candidates(k); len(c) > 2 {
			t.Fatalf("key %d has %d candidates", k, len(c))
		}
	}
}

func TestPKGBalancesOverTCPWhereKGDoesNot(t *testing.T) {
	imbalance := func(ws []*Worker) float64 {
		var max, sum int64
		for _, w := range ws {
			p := w.Processed()
			if p > max {
				max = p
			}
			sum += p
		}
		return float64(max) - float64(sum)/float64(len(ws))
	}
	run := func(mode Mode) float64 {
		workers, addrs := startWorkers(t, 5)
		src, err := DialSource(addrs, mode, 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		z := rng.NewZipf(rng.New(3), rng.SolveZipfExponent(3000, 0.12), 3000)
		const n = 40_000
		for i := 0; i < n; i++ {
			if err := src.Send(z.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := src.Flush(); err != nil {
			t.Fatal(err)
		}
		waitTotal(t, workers, n)
		return imbalance(workers)
	}
	pkg := run(ModePKG)
	kg := run(ModeKG)
	if pkg*5 > kg {
		t.Fatalf("PKG imbalance %v not well below KG %v over TCP", pkg, kg)
	}
}

func TestMultipleIndependentSources(t *testing.T) {
	// Two sources with private local estimates and zero coordination:
	// total worker load must still balance (§III.B over a real network).
	workers, addrs := startWorkers(t, 4)
	const perSource = 20_000
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			src, err := DialSource(addrs, ModePKG, 99, id)
			if err != nil {
				t.Error(err)
				return
			}
			defer src.Close()
			z := rng.NewZipf(rng.New(uint64(id)+10), rng.SolveZipfExponent(1000, 0.1), 1000)
			for i := 0; i < perSource; i++ {
				if err := src.Send(z.Next()); err != nil {
					t.Error(err)
					return
				}
			}
			if err := src.Flush(); err != nil {
				t.Error(err)
			}
			if loads := src.LocalLoads(); len(loads) != 4 {
				t.Errorf("local loads %v", loads)
			}
		}(s)
	}
	wg.Wait()
	waitTotal(t, workers, 2*perSource)

	var max, sum int64
	for _, w := range workers {
		p := w.Processed()
		if p > max {
			max = p
		}
		sum += p
	}
	imb := float64(max) - float64(sum)/4
	if imb > 0.01*float64(sum) {
		t.Fatalf("two uncoordinated sources left imbalance %v of %d", imb, sum)
	}
}

func TestShuffleModeRoundRobin(t *testing.T) {
	workers, addrs := startWorkers(t, 3)
	src, err := DialSource(addrs, ModeSG, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 3000; i++ {
		if err := src.Send(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	waitTotal(t, workers, 3000)
	for _, w := range workers {
		if w.Processed() != 1000 {
			t.Fatalf("worker %s processed %d, want 1000", w.Addr(), w.Processed())
		}
	}
	if got := src.Candidates(5); len(got) != 3 {
		t.Fatalf("SG candidates = %v", got)
	}
}

func TestQueryUnknownKeyZero(t *testing.T) {
	_, addrs := startWorkers(t, 2)
	got, err := Query(addrs, 12345, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("unknown key counted %d", got)
	}
	if _, err := Query(addrs, 1, []int{5}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := DialSource(nil, ModePKG, 1, 0); err == nil {
		t.Fatal("empty addrs accepted")
	}
	if _, err := DialSource([]string{"127.0.0.1:1"}, ModePKG, 1, 0); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	_, addrs := startWorkers(t, 1)
	if _, err := DialSource(addrs, Mode(99), 1, 0); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestWorkerCloseIdempotentAndUnblocksDial(t *testing.T) {
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := DialSource([]string{w.Addr()}, ModePKG, 1, 0); err == nil {
		t.Fatal("dial to closed worker succeeded")
	}
}

func TestProtocolViolationDropsConnection(t *testing.T) {
	workers, addrs := startWorkers(t, 1)
	src, err := DialSource(addrs, ModeKG, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Valid frame, then garbage: the worker keeps the first and drops the
	// connection on the second without crashing.
	if err := src.Send(7); err != nil {
		t.Fatal(err)
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	waitTotal(t, workers, 1)
	if _, err := src.conns[0].Write([]byte{'X', 0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = src.Close()
	// Worker still answers queries afterwards.
	got, err := Query(addrs, 7, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("count after violation = %d", got)
	}
}

// TestWorkerBatchDispatchCoalescesAcks drives a worker over a raw
// credit session: a TupleBatch frame of n tuples must be absorbed as
// ONE frame (one HandleTupleBatch dispatch for batch-aware handlers)
// and acknowledged with ONE cumulative tuple-denominated Ack — not n
// of either. Acks still fire on the half-window cadence, so a small
// batch below the threshold stays silently absorbed until a later
// batch tips it over.
func TestWorkerBatchDispatchCoalescesAcks(t *testing.T) {
	h := NewCountHandler()
	w, err := ListenHandler("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	readAck := func() wire.Ack {
		t.Helper()
		var hdr [wire.HeaderSize]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatal(err)
		}
		kind, n, err := wire.ParseHeader(hdr)
		if err != nil {
			t.Fatal(err)
		}
		if kind != wire.KindAck {
			t.Fatalf("kind = %v, want ack", kind)
		}
		p := make([]byte, n)
		if _, err := io.ReadFull(conn, p); err != nil {
			t.Fatal(err)
		}
		a, err := wire.DecodeAck(p)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	batch := func(keys ...uint64) []byte {
		ts := make([]wire.Tuple, len(keys))
		for i, k := range keys {
			ts[i] = wire.Tuple{KeyHash: k}
		}
		f, err := wire.AppendTupleBatch(nil, ts)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Window 8 → the worker acks cumulatively once >4 tuples are unacked.
	buf := wire.AppendCredit(nil, wire.Credit{Window: 8})
	buf = append(buf, batch(1, 2, 3, 4, 5)...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	if a := readAck(); a.Count != 5 {
		t.Fatalf("ack after 5-tuple batch = %d, want cumulative 5", a.Count)
	}
	// 2 more tuples: below the half-window threshold, no ack yet; the
	// next batch must coalesce them into one cumulative count.
	if _, err := conn.Write(batch(6, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(batch(8, 9, 10)); err != nil {
		t.Fatal(err)
	}
	if a := readAck(); a.Count != 10 {
		t.Fatalf("ack after 2+3 tuples = %d, want cumulative 10", a.Count)
	}
	if err := w.WaitProcessed(10, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := w.Frames(); got != 3 {
		t.Fatalf("frames = %d, want 3 (one per batch)", got)
	}
	if got := w.Processed(); got != 10 {
		t.Fatalf("processed = %d tuples, want 10", got)
	}
	if got := h.Count(3); got != 1 {
		t.Fatalf("count(3) = %d, want 1", got)
	}
}

func BenchmarkSendOverLoopback(b *testing.B) {
	w, err := ListenWorker("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	src, err := DialSource([]string{w.Addr()}, ModePKG, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		b.Fatal(err)
	}
}

func TestDistributedPointQueryProbesExactlyTheCandidates(t *testing.T) {
	// §VI.A: a point query under PKG probes only the key's d candidate
	// workers and sums their partial counts. With the unified routing
	// core the candidate set is a pure function of (key, seed, W), so
	// the test can independently recompute it, check the query touches
	// exactly those workers, and check every other worker holds nothing.
	const (
		nWorkers = 8
		d        = 3
		seed     = 77
		n        = 20_000
	)
	workers, addrs := startWorkers(t, nWorkers)
	src, err := DialSourceD(addrs, ModePKG, seed, 0, d)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	z := rng.NewZipf(rng.New(3), rng.SolveZipfExponent(500, 0.09), 500)
	truth := map[uint64]int64{}
	for i := 0; i < n; i++ {
		k := z.Next()
		truth[k]++
		if err := src.Send(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	waitTotal(t, workers, n)

	// An independent party (the query router) recomputes the candidate
	// set from the shared core with nothing but the key and the seed.
	independent := route.NewPKG(nWorkers, d, seed, route.NewLoad(nWorkers))
	for k := uint64(1); k <= 40; k++ {
		cands := src.Candidates(k)
		if len(cands) != d {
			t.Fatalf("key %d: %d candidates, want %d", k, len(cands), d)
		}
		want := independent.Candidates(k)
		inSet := map[int]bool{}
		for i, c := range cands {
			if c != want[i] {
				t.Fatalf("key %d: source candidates %v != recomputed %v", k, cands, want)
			}
			if inSet[c] {
				t.Fatalf("key %d: duplicate candidate %d", k, c)
			}
			inSet[c] = true
		}
		// The d-probe query returns the exact global count...
		got, err := Query(addrs, k, cands)
		if err != nil {
			t.Fatal(err)
		}
		if got != truth[k] {
			t.Fatalf("key %d: distributed count %d, want %d", k, got, truth[k])
		}
		// ...because the candidate partial counts sum to it, and no
		// non-candidate worker holds any share of the key.
		var fromCands int64
		for w := range workers {
			c := workers[w].Count(k)
			if inSet[w] {
				fromCands += c
			} else if c != 0 {
				t.Fatalf("key %d: non-candidate worker %d holds count %d", k, w, c)
			}
		}
		if fromCands != truth[k] {
			t.Fatalf("key %d: candidate partial counts sum to %d, want %d", k, fromCands, truth[k])
		}
	}
}

func TestDialSourceDValidatesChoices(t *testing.T) {
	_, addrs := startWorkers(t, 3)
	// d <= 0 is an error, not a panic, and must not leak connections.
	if _, err := DialSourceD(addrs, ModePKG, 1, 0, 0); err == nil {
		t.Fatal("DialSourceD with d=0 did not error")
	}
	// d > W clamps to W so candidate sets stay duplicate-free and point
	// queries never sum one worker's partial count twice.
	src, err := DialSourceD(addrs, ModePKG, 1, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for k := uint64(0); k < 50; k++ {
		cands := src.Candidates(k)
		if len(cands) != len(addrs) {
			t.Fatalf("key %d: %d candidates, want clamp to %d", k, len(cands), len(addrs))
		}
		seen := map[int]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("key %d: duplicate candidate %d after clamping", k, c)
			}
			seen[c] = true
		}
	}
}

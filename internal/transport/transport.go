// Package transport runs partial key grouping across real network
// boundaries: worker processes listen on TCP, source processes hold one
// connection per worker and route each frame with a partitioner driven
// by their own local load estimate — nothing but keys and already-local
// state ever crosses the wire, which is the paper's whole point: PKG
// needs no load gossip, no routing-table synchronization and no
// coordination among sources.
//
// Frames are the versioned, length-prefixed binary protocol of
// internal/wire: tuples (fire and forget), windowed partials and
// watermark marks (the two-phase aggregation's distributed form),
// sketch snapshots (source checkpoints), and point-query
// request/replies. The processing side of a worker is a pluggable
// Handler — the classic partial counter (CountHandler), or the windowed
// final stage (window.FinalHandler) so an aggregation's merge phase can
// live in another process.
//
// A distributed point query probes only the key's candidate workers —
// two under PKG — and sums their partial counts (§VI.A).
package transport

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
	"pkgstream/internal/route"
	"pkgstream/internal/sketch"
	"pkgstream/internal/wire"
)

// Worker is a TCP server dispatching decoded frames to its Handler. It
// serves any number of concurrent sources and query clients; handler
// calls are serialized across connections.
type Worker struct {
	ln net.Listener
	h  Handler
	// counter is the default handler, kept for the counter-specific
	// accessors (nil when a custom handler was supplied).
	counter *CountHandler

	// hmu serializes handler dispatch across connections, so handlers
	// can run single-threaded state machines (window.FinalHandler).
	hmu sync.Mutex

	mu        sync.Mutex
	processed int64
	frames    int64
	conns     map[net.Conn]struct{}

	// serviceNs is the per-tuple service-time EWMA of handler dispatch,
	// in nanoseconds — fed by 1-in-serviceSampleEvery data frames per
	// connection, so the unsampled frame path never reads a clock.
	serviceNs atomic.Int64

	wg     sync.WaitGroup
	closed chan struct{}
}

// serviceSampleEvery is the per-connection sampling period of the
// service-time EWMA: one timed dispatch per this many data frames.
const serviceSampleEvery = 64

// ListenWorker starts a counting worker on addr (use "127.0.0.1:0" for
// an ephemeral port) — the classic PKG worker holding partial counts
// for the keys routed to it.
func ListenWorker(addr string) (*Worker, error) {
	return ListenWorkerSlow(addr, 0)
}

// ListenWorkerSlow is ListenWorker with a fixed per-tuple dispatch
// delay injected ahead of the counting handler (see Slow; 0 injects
// nothing) — the CLI fault injector behind `pkgnode -slow-worker` for
// reproducible heterogeneous-cluster scenarios.
func ListenWorkerSlow(addr string, perTuple time.Duration) (*Worker, error) {
	h := NewCountHandler()
	w, err := ListenHandler(addr, Slow(h, perTuple))
	if err != nil {
		return nil, err
	}
	w.counter = h
	return w, nil
}

// ListenHandler starts a worker on addr with a custom frame handler —
// the hosting primitive behind cmd/pkgnode.
func ListenHandler(addr string, h Handler) (*Worker, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	w := &Worker{
		ln:     ln,
		h:      h,
		closed: make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.closed:
				return
			default:
				// Transient accept error: keep serving.
				continue
			}
		}
		w.wg.Add(1)
		go w.serve(conn)
	}
}

func (w *Worker) serve(conn net.Conn) {
	defer w.wg.Done()
	defer conn.Close()
	w.mu.Lock()
	w.conns[conn] = struct{}{}
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	select {
	case <-w.closed:
		// Close swept w.conns before this connection registered (the
		// accept → register window): it would never be closed, and an
		// idle peer would pin Close's wg.Wait forever. Bail instead.
		return
	default:
	}
	r := bufio.NewReaderSize(conn, 1<<17)
	var (
		payload []byte
		tup     wire.Tuple
		tups    []wire.Tuple
		par     wire.Partial
		reply   []byte
	)
	// Batch frames dispatch in one call when the handler supports it;
	// otherwise the worker unrolls the batch into per-tuple calls under
	// a single lock hold.
	bh, _ := w.h.(TupleBatchHandler)
	// wmu serializes every write on this connection: query replies from
	// this goroutine, flow-control acks, and — once subscribed — result
	// frames pushed by handler calls running on OTHER connections.
	wmu := &sync.Mutex{}
	// Credit flow control, armed by a wire.Credit frame: the sender
	// keeps at most `window` unacknowledged TUPLES in flight (a batch
	// of n costs n), and this side replenishes it with cumulative Acks
	// as the handler absorbs them (every window/2 tuples, so the
	// sender's window can never drain to zero with the worker idle).
	// Acks are per batch, never per tuple — one accounting pass and at
	// most one ack write however many tuples a frame carried.
	var fcWindow, fcProcessed, fcAcked int64
	var ackBuf []byte
	// Service-time sampling countdown: every serviceSampleEvery-th data
	// frame times its handler dispatch (two clock reads inside the hmu
	// hold) and folds the per-tuple duration into the worker EWMA. The
	// other frames pay one decrement and a branch.
	svc := int64(serviceSampleEvery)
	ack := func() bool {
		fcAcked = fcProcessed
		// Each ack piggybacks the worker's service-time EWMA, so every
		// sender passively learns this worker's speed at ack cadence —
		// the signal the load-aware router and the sender's adaptive
		// window controller both feed on. Costs 1-2 bytes per ack, zero
		// extra frames.
		ackBuf = wire.AppendAck(ackBuf[:0], wire.Ack{
			Count: fcProcessed, ServiceNs: w.ServiceNanos(),
		})
		wmu.Lock()
		_, err := conn.Write(ackBuf)
		wmu.Unlock()
		return err == nil
	}
	absorbedN := func(n int64) bool {
		w.addProcessed(n)
		if fcWindow <= 0 {
			return true
		}
		fcProcessed += n
		if every := fcWindow / 2; fcProcessed-fcAcked > every {
			return ack()
		}
		return true
	}
	for {
		// Zero-copy read: p aliases r's buffer for frames that fit it
		// (the decoders below copy anything a decoded value retains),
		// with payload as the spill buffer for oversized frames.
		kind, p, err := wire.ReadFrameBuffered(r, &payload)
		if err != nil {
			return // EOF, peer gone, or protocol violation: drop the connection
		}
		switch kind {
		case wire.KindTuple:
			if err := wire.DecodeTuple(p, &tup); err != nil {
				return
			}
			w.addFrames(1)
			w.hmu.Lock()
			if svc--; svc <= 0 {
				svc = serviceSampleEvery
				t0 := time.Now()
				w.h.HandleTuple(&tup)
				w.recordService(time.Since(t0).Nanoseconds(), 1)
			} else {
				w.h.HandleTuple(&tup)
			}
			w.hmu.Unlock()
			if !absorbedN(1) {
				return
			}
		case wire.KindTupleBatch:
			var err error
			if tups, err = wire.DecodeTupleBatch(p, tups); err != nil {
				return
			}
			w.addFrames(1)
			w.hmu.Lock()
			var t0 time.Time
			if svc--; svc <= 0 {
				svc = serviceSampleEvery
				t0 = time.Now()
			}
			if bh != nil {
				bh.HandleTupleBatch(tups)
			} else {
				for i := range tups {
					w.h.HandleTuple(&tups[i])
				}
			}
			if !t0.IsZero() && len(tups) > 0 {
				w.recordService(time.Since(t0).Nanoseconds(), int64(len(tups)))
			}
			w.hmu.Unlock()
			if !absorbedN(int64(len(tups))) {
				return
			}
		case wire.KindPartial:
			if err := wire.DecodePartial(p, &par); err != nil {
				return
			}
			w.addFrames(1)
			w.hmu.Lock()
			if svc--; svc <= 0 {
				svc = serviceSampleEvery
				t0 := time.Now()
				w.h.HandlePartial(&par)
				w.recordService(time.Since(t0).Nanoseconds(), 1)
			} else {
				w.h.HandlePartial(&par)
			}
			w.hmu.Unlock()
			if !absorbedN(1) {
				return
			}
		case wire.KindMark:
			m, err := wire.DecodeMark(p)
			if err != nil {
				return
			}
			w.hmu.Lock()
			w.h.HandleMark(m)
			w.hmu.Unlock()
		case wire.KindCredit:
			c, err := wire.DecodeCredit(p)
			if err != nil {
				return
			}
			fcWindow = c.Window
		case wire.KindCreditUpdate:
			u, err := wire.DecodeCreditUpdate(p)
			if err != nil {
				return
			}
			fcWindow = u.Window
			// Ack any residue immediately. The sender's stall invariant is
			// "in-flight == my window > the worker's ack threshold, so an
			// ack is coming"; a shrink can drop the sender's window BELOW
			// the unacked residue while that residue sits under the old
			// fcWindow/2 threshold — without this ack nothing would ever
			// wake the sender again. After it, absorbedN's cadence check
			// reads the updated fcWindow and tracks the new window.
			if fcProcessed > fcAcked && !ack() {
				return
			}
		case wire.KindSubscribe:
			s, err := wire.DecodeSubscribe(p)
			if err != nil {
				return
			}
			ph, ok := w.h.(PushHandler)
			if !ok {
				return // this node has nothing to push: protocol misuse
			}
			w.hmu.Lock()
			ph.HandleSubscribe(s, &connSink{mu: wmu, conn: conn})
			w.hmu.Unlock()
		case wire.KindQuery:
			q, err := wire.DecodeQuery(p)
			if err != nil {
				return
			}
			w.hmu.Lock()
			rep := w.h.HandleQuery(q)
			w.hmu.Unlock()
			if rep.Op == wire.OpStats {
				// The dispatch-path service-time EWMA belongs to the
				// worker, not the handler: stamp it onto every stats
				// reply so pollers see per-node service rates uniformly.
				if rep.Telemetry == nil {
					rep.Telemetry = &wire.Telemetry{}
				}
				rep.Telemetry.ServiceNs = w.ServiceNanos()
			}
			reply = wire.AppendReply(reply[:0], &rep)
			wmu.Lock()
			_, err = conn.Write(reply)
			wmu.Unlock()
			if err != nil {
				return
			}
		default:
			return // sketch/ack/reply frames have no business here: drop
		}
	}
}

// connSink pushes result frames on a subscribed connection, serialized
// with the connection's other writes. A write deadline keeps a stuck
// subscriber from stalling the handler chain indefinitely — the sink
// fails instead, and the handler drops it.
type connSink struct {
	mu   *sync.Mutex
	conn net.Conn
	buf  []byte
}

// Push implements ResultSink. The whole body — including the encode
// into the sink's scratch buffer — runs under the connection's write
// mutex, so concurrent Push calls (a handler pushing from its own
// timer goroutine while the serve loop answers a query) stay safe.
func (s *connSink) Push(rep *wire.Reply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = wire.AppendReply(s.buf[:0], rep)
	if err := s.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	defer s.conn.SetWriteDeadline(time.Time{})
	_, err := s.conn.Write(s.buf)
	return err
}

// recordService folds one sampled dispatch (dur nanoseconds over n
// tuples) into the per-tuple service-time EWMA with α = 1/8. The CAS
// loop keeps concurrent connections' updates from tearing; samples are
// rare enough that contention is immaterial.
func (w *Worker) recordService(dur, n int64) {
	per := dur / n
	for {
		old := w.serviceNs.Load()
		nv := per
		if old != 0 {
			nv = old + (per-old)/8
		}
		if w.serviceNs.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ServiceNanos returns the worker's per-tuple service-time EWMA in
// nanoseconds: how long one tuple holds the dispatch path, sampled
// every serviceSampleEvery data frames per connection (0 until the
// first sample lands). This is the per-worker service rate a placement
// controller needs to weigh heterogeneous workers.
func (w *Worker) ServiceNanos() int64 { return w.serviceNs.Load() }

func (w *Worker) addProcessed(n int64) {
	w.mu.Lock()
	w.processed += n
	w.mu.Unlock()
}

func (w *Worker) addFrames(n int64) {
	w.mu.Lock()
	w.frames += n
	w.mu.Unlock()
}

// Processed returns the number of data items (tuples and partials)
// absorbed — tuples inside a batch frame count individually, so the
// number is framing-independent.
func (w *Worker) Processed() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.processed
}

// Frames returns the number of data frames absorbed (a tuple batch
// counts once). Processed/Frames is the effective batching ratio on
// the receive side.
func (w *Worker) Frames() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.frames
}

// DistinctKeys returns the number of live partial counters (0 for a
// custom handler).
func (w *Worker) DistinctKeys() int {
	if w.counter == nil {
		return 0
	}
	return w.counter.DistinctKeys()
}

// Count returns the worker's partial count for key (0 for a custom
// handler).
func (w *Worker) Count(key uint64) int64 {
	if w.counter == nil {
		return 0
	}
	return w.counter.Count(key)
}

// WaitProcessed blocks until the worker has absorbed at least n data
// frames or the timeout expires.
func (w *Worker) WaitProcessed(n int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if w.Processed() >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: worker %s processed %d < %d after %v",
				w.Addr(), w.Processed(), n, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops accepting, drops every live connection, and waits for
// the serve goroutines to finish. Dropping (rather than draining)
// matters for teardown liveness: a source that never hangs up must not
// pin the worker open — it observes the close as a connection error
// and may redial elsewhere or retry.
func (w *Worker) Close() error {
	select {
	case <-w.closed:
		return nil
	default:
	}
	close(w.closed)
	err := w.ln.Close()
	w.mu.Lock()
	for conn := range w.conns {
		conn.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return err
}

// Mode selects the source's partitioning strategy. It is the shared
// strategy type of the routing core — transport no longer keeps its own
// enumeration.
type Mode = route.Strategy

// Source partitioning modes. Note the numeric values follow the shared
// Strategy ordering (KG=0, SG=1, PKG=2), not this package's historical
// one (PKG was 0): always use the named constants — a raw integer or a
// zero-valued Mode now selects KG, not PKG.
const (
	// ModePKG routes with partial key grouping on a local load estimate.
	ModePKG = route.StrategyPKG
	// ModeKG routes with a single hash.
	ModeKG = route.StrategyKG
	// ModeSG routes round-robin.
	ModeSG = route.StrategySG
	// ModeDChoices routes with frequency-aware PKG (ICDE 2016
	// follow-up): the source carries its own Space-Saving sketch and
	// widens hot keys to d > 2 candidate workers. Nothing but the keys
	// ever crosses the wire — classification is per-source, so zero
	// coordination is preserved.
	ModeDChoices = route.StrategyDChoices
	// ModeWChoices spreads keys above the hot threshold round-robin
	// over every worker, again from purely source-local state.
	ModeWChoices = route.StrategyWChoices
)

// SourceOptions parameterizes DialSourceOpts. The zero value of every
// field except Mode picks the historical defaults.
type SourceOptions struct {
	// Mode is the partitioning strategy.
	Mode Mode
	// Seed derives the candidate hash functions; it must match across
	// the sources of one stream (the only thing they share — baked into
	// the binary, never communicated).
	Seed uint64
	// Start decorrelates shuffle round-robins of parallel sources.
	Start int
	// D is the number of hash choices for PKG ("Greedy-d") and the
	// hot-key width for D-Choices; 0 selects 2 (PKG) / adaptive
	// (D-Choices). Ignored by the other modes.
	D int
	// SourceID identifies this source in the watermark marks it emits
	// (wire.Mark.Source); 0 adopts Start. Parallel sources feeding one
	// final stage must use distinct IDs, since the final advances on
	// the minimum watermark across live sources.
	SourceID int
	// Hot carries the hot-key classification knobs for the
	// frequency-aware modes (Workers is filled from the address count).
	Hot hotkey.Config
	// SketchPath checkpoints the hot-key sketch of the frequency-aware
	// modes: restored on dial when the file exists (so a restarted
	// source classifies head keys as head from its first message
	// instead of routing them cold until the sketch re-warms), written
	// on Close. Setting it for a sketch-free mode is an error.
	SketchPath string
}

// Source is a stream source holding one TCP connection per worker and a
// router over them. Each Source keeps its own local load estimate —
// parallel sources never talk to each other.
type Source struct {
	conns []net.Conn
	bufs  []*bufio.Writer
	rds   []*bufio.Reader
	part  route.Router
	pkg   *route.PKG
	view  *metrics.Load
	sent  int64

	id         uint32
	sketchPath string
	scratch    []byte
}

// DialSource connects to the given worker addresses with the paper's two
// hash choices. The seed must match across sources so their candidate
// hash functions agree (the only thing sources share — and it is baked
// into the binary, not communicated). start decorrelates shuffle
// round-robins of parallel sources.
func DialSource(addrs []string, mode Mode, seed uint64, start int) (*Source, error) {
	return DialSourceOpts(addrs, SourceOptions{Mode: mode, Seed: seed, Start: start, D: 2})
}

// DialSourceD is DialSource generalized to d hash choices for PKG
// ("Greedy-d") and to the hot-key width for D-Choices (d ≤ 2 selects
// the adaptive policy there; d is ignored by the other modes). Point
// queries probe a key's candidate workers, so larger d trades query
// fan-out for balance.
func DialSourceD(addrs []string, mode Mode, seed uint64, start, d int) (*Source, error) {
	if mode == ModePKG && d <= 0 {
		// Explicitly requesting zero choices is an error here; only the
		// options struct's zero value means "default" (DialSourceOpts).
		return nil, fmt.Errorf("transport: PKG needs at least one choice, got d=%d", d)
	}
	return DialSourceOpts(addrs, SourceOptions{Mode: mode, Seed: seed, Start: start, D: d})
}

// DialSourceOpts is the fully parameterized dial.
func DialSourceOpts(addrs []string, o SourceOptions) (*Source, error) {
	if len(addrs) == 0 {
		return nil, errors.New("transport: no worker addresses")
	}
	d := o.D
	if o.Mode == ModePKG {
		if d == 0 {
			d = 2 // the paper's two choices
		}
		if d < 0 {
			return nil, fmt.Errorf("transport: PKG needs at least one choice, got d=%d", d)
		}
		if d > len(addrs) {
			// Every worker is already a candidate; clamping keeps the
			// candidate set duplicate-free so point queries never
			// double-count a worker's partial count.
			d = len(addrs)
		}
	}
	s := &Source{id: uint32(o.SourceID)}
	if o.SourceID == 0 {
		s.id = uint32(o.Start)
	}
	for _, a := range addrs {
		conn, err := net.DialTimeout("tcp", a, 5*time.Second)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("transport: dial %s: %w", a, err)
		}
		s.conns = append(s.conns, conn)
		s.bufs = append(s.bufs, bufio.NewWriterSize(conn, 1<<16))
		s.rds = append(s.rds, bufio.NewReaderSize(conn, 1<<12))
	}
	n := len(addrs)
	switch o.Mode {
	case ModePKG:
		s.view = metrics.NewLoad(n)
		s.pkg = route.NewPKG(n, d, o.Seed, s.view)
		s.part = s.pkg
	case ModeKG:
		s.part = route.NewKeyGrouping(n, o.Seed)
	case ModeSG:
		s.part = route.NewShuffleGrouping(n, o.Start)
	case ModeDChoices, ModeWChoices:
		// This source's sketch: frequency classification, like the load
		// estimate, never leaves the process. d ≤ 2 means adaptive (the
		// classifier clamps fixed widths beyond W internally).
		hc := o.Hot
		if d > 2 && hc.D == 0 {
			hc.D = d
		}
		s.view = metrics.NewLoad(n)
		r, err := route.New(route.Config{
			Strategy: o.Mode, Workers: n, Seed: o.Seed, Start: o.Start,
			View: s.view, Hot: hc,
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.part = r
	default:
		s.Close()
		return nil, fmt.Errorf("transport: unknown mode %d", o.Mode)
	}
	if o.SketchPath != "" {
		if _, ok := s.part.(route.HotAware); !ok {
			s.Close()
			return nil, fmt.Errorf("transport: SketchPath set for mode %v, which keeps no sketch", o.Mode)
		}
		if err := s.restoreSketch(o.SketchPath); err != nil {
			// sketchPath is still unset here, so the failure-path Close
			// cannot overwrite the (possibly corrupt) checkpoint with a
			// fresh empty sketch — the evidence survives for inspection.
			s.Close()
			return nil, err
		}
		s.sketchPath = o.SketchPath
	}
	return s, nil
}

// Send routes one key to its worker — the classic fire-and-forget data
// path, now a minimal wire tuple.
func (s *Source) Send(key uint64) error {
	w := s.part.Route(key)
	if s.view != nil {
		s.view.Add(w)
	}
	var err error
	s.scratch, err = wire.AppendTuple(s.scratch[:0], &wire.Tuple{KeyHash: key})
	if err != nil {
		return err
	}
	if _, err := s.bufs[w].Write(s.scratch); err != nil {
		return fmt.Errorf("transport: send to worker %d: %w", w, err)
	}
	s.sent++
	return nil
}

// SendTuple routes one full tuple (string key, event time, values) by
// its KeyHash.
func (s *Source) SendTuple(t *wire.Tuple) error {
	w := s.part.Route(t.KeyHash)
	if s.view != nil {
		s.view.Add(w)
	}
	var err error
	s.scratch, err = wire.AppendTuple(s.scratch[:0], t)
	if err != nil {
		return err
	}
	if _, err := s.bufs[w].Write(s.scratch); err != nil {
		return fmt.Errorf("transport: send to worker %d: %w", w, err)
	}
	s.sent++
	return nil
}

// SendPartial routes one flushed (key, window) partial by its KeyHash.
// The final stage key-groups partials, so use ModeKG when the
// destination workers host a windowed final stage — all partials of a
// key must meet at one node.
func (s *Source) SendPartial(p *wire.Partial) error {
	w := s.part.Route(p.KeyHash)
	if s.view != nil {
		s.view.Add(w)
	}
	s.scratch = wire.AppendPartial(s.scratch[:0], p)
	if _, err := s.bufs[w].Write(s.scratch); err != nil {
		return fmt.Errorf("transport: send partial to worker %d: %w", w, err)
	}
	s.sent++
	return nil
}

// SendMark broadcasts this source's watermark to every worker: the
// source promises to never again send a tuple or partial with event
// time below wm (math.MaxInt64: this source is done). Buffered frames
// are flushed first so the promise arrives after everything it covers.
func (s *Source) SendMark(wm int64) error {
	return s.SendMarkFrom(s.id, wm)
}

// SendMarkFrom is SendMark with an explicit source ID — for funnels
// that relay the watermarks of several upstream sources (the windowed
// remote-final forwarder relays one mark per partial instance) over a
// single connection set.
func (s *Source) SendMarkFrom(source uint32, wm int64) error {
	if err := s.Flush(); err != nil {
		return err
	}
	s.scratch = wire.AppendMark(s.scratch[:0], wire.Mark{Source: source, WM: wm})
	for i, b := range s.bufs {
		if _, err := b.Write(s.scratch); err != nil {
			return fmt.Errorf("transport: mark to worker %d: %w", i, err)
		}
		if err := b.Flush(); err != nil {
			return fmt.Errorf("transport: mark to worker %d: %w", i, err)
		}
	}
	return nil
}

// SourceID returns the ID this source stamps on its watermark marks.
func (s *Source) SourceID() uint32 { return s.id }

// Sent returns the number of data frames sent.
func (s *Source) Sent() int64 { return s.sent }

// LocalLoads returns this source's local load estimate (nil for KG/SG).
func (s *Source) LocalLoads() []int64 {
	if s.view == nil {
		return nil
	}
	return s.view.Snapshot()
}

// Flush pushes buffered frames to the network.
func (s *Source) Flush() error {
	for i, b := range s.bufs {
		if err := b.Flush(); err != nil {
			return fmt.Errorf("transport: flush worker %d: %w", i, err)
		}
	}
	return nil
}

// QueryWorker sends a point query to worker w over this source's
// connection and waits for the reply. The source's buffered frames to
// that worker are flushed first, so — frames being processed in
// connection order — the reply reflects everything this source sent
// before the query.
func (s *Source) QueryWorker(w int, q wire.Query) (wire.Reply, error) {
	if w < 0 || w >= len(s.conns) {
		return wire.Reply{}, fmt.Errorf("transport: worker %d out of range", w)
	}
	s.scratch = wire.AppendQuery(s.scratch[:0], q)
	if _, err := s.bufs[w].Write(s.scratch); err != nil {
		return wire.Reply{}, err
	}
	if err := s.bufs[w].Flush(); err != nil {
		return wire.Reply{}, err
	}
	if err := s.conns[w].SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return wire.Reply{}, err
	}
	defer s.conns[w].SetReadDeadline(time.Time{})
	kind, payload, err := wire.ReadFrame(s.rds[w], nil)
	if err != nil {
		return wire.Reply{}, fmt.Errorf("transport: query worker %d: %w", w, err)
	}
	if kind != wire.KindReply {
		return wire.Reply{}, fmt.Errorf("transport: worker %d answered with %v", w, kind)
	}
	return wire.DecodeReply(payload)
}

// Close flushes and closes all connections, checkpointing the hot-key
// sketch first when a SketchPath was configured.
func (s *Source) Close() error {
	var first error
	if s.sketchPath != "" {
		if err := s.saveSketch(); err != nil {
			first = err
		}
	}
	for _, b := range s.bufs {
		if err := b.Flush(); err != nil && first == nil {
			first = err
		}
	}
	for _, c := range s.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Candidates returns the key's candidate workers under this source's
// router (all workers for SG, one for KG, the d hash choices for PKG,
// and the class-widened set for D-Choices/W-Choices). For the
// frequency-aware modes the set reflects the key's *current* class: a
// key that cooled down since it was last routed may hold stale partial
// counts on workers outside the returned set, so exact point queries
// across a class change must widen to the key's historical maximum (or
// simply all workers).
func (s *Source) Candidates(key uint64) []int {
	return route.ProbeSet(s.part, key)
}

// SketchSummary snapshots this source's hot-key sketch; ok is false for
// modes that keep none.
func (s *Source) SketchSummary() (sketch.Summary, bool) {
	ha, ok := s.part.(route.HotAware)
	if !ok {
		return sketch.Summary{}, false
	}
	return ha.Classifier().Snapshot(), true
}

// saveSketch wire-encodes the sketch snapshot and writes it atomically.
func (s *Source) saveSketch() error {
	sum, ok := s.SketchSummary()
	if !ok {
		return nil
	}
	ws := summaryToWire(sum)
	buf := wire.AppendSketch(nil, &ws)
	tmp := s.sketchPath + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("transport: checkpoint sketch: %w", err)
	}
	if err := os.Rename(tmp, s.sketchPath); err != nil {
		return fmt.Errorf("transport: checkpoint sketch: %w", err)
	}
	return nil
}

// restoreSketch re-warms the classifier from a checkpoint file, if one
// exists. A missing file is not an error (first run); a corrupt one is.
func (s *Source) restoreSketch(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("transport: restore sketch: %w", err)
	}
	kind, payload, err := wire.ReadFrame(bytes.NewReader(raw), nil)
	if err != nil {
		return fmt.Errorf("transport: restore sketch %s: %w", path, err)
	}
	if kind != wire.KindSketch {
		return fmt.Errorf("transport: restore sketch %s: unexpected %v frame", path, kind)
	}
	ws, err := wire.DecodeSketch(payload)
	if err != nil {
		return fmt.Errorf("transport: restore sketch %s: %w", path, err)
	}
	ha := s.part.(route.HotAware) // checked at dial
	if err := ha.Classifier().Restore(wireToSummary(ws)); err != nil {
		return fmt.Errorf("transport: restore sketch %s: %w", path, err)
	}
	return nil
}

// summaryToWire converts a sketch summary to its wire form.
func summaryToWire(sum sketch.Summary) wire.Sketch {
	ws := wire.Sketch{K: sum.K, N: sum.N, Items: make([]wire.SketchItem, len(sum.Items))}
	for i, it := range sum.Items {
		ws.Items[i] = wire.SketchItem{Item: it.Item, Count: it.Count, Err: it.Err}
	}
	return ws
}

// wireToSummary converts a wire sketch back to a sketch summary.
func wireToSummary(ws wire.Sketch) sketch.Summary {
	sum := sketch.Summary{K: ws.K, N: ws.N, Items: make([]sketch.Counted, len(ws.Items))}
	for i, it := range ws.Items {
		sum.Items[i] = sketch.Counted{Item: it.Item, Count: it.Count, Err: it.Err}
	}
	return sum
}

// Query answers a distributed point query for key against the given
// worker addresses using a fresh connection per probe: it sums the
// partial counts of the key's candidate workers only.
func Query(addrs []string, key uint64, candidates []int) (int64, error) {
	var total int64
	for _, w := range candidates {
		if w < 0 || w >= len(addrs) {
			return 0, fmt.Errorf("transport: candidate %d out of range", w)
		}
		rep, err := QueryAddr(addrs[w], wire.Query{Op: wire.OpCount, Key: key})
		if err != nil {
			return 0, err
		}
		total += rep.Count
	}
	return total, nil
}

// DrainResults polls a windowed final node until every upstream source
// has sent its final mark (Reply.Done), then pages through its closed
// (key, window) results — the client half of window.FinalHandler's
// OpResults protocol (Query.Key carries the page offset; results are
// append-only, so offsets are stable).
func DrainResults(addr string, timeout time.Duration) ([]wire.WindowResult, error) {
	// Wait on the cheap fixed-size status probe; shipping result pages
	// only starts once the node is done.
	deadline := time.Now().Add(timeout)
	var rep wire.Reply
	for {
		var err error
		rep, err = QueryAddr(addr, wire.Query{Op: wire.OpStats})
		if err == nil && rep.Done {
			break
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("transport: %s not done after %v (%d results)",
					addr, timeout, rep.Count)
			}
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
	}
	var out []wire.WindowResult
	for int64(len(out)) < rep.Count {
		next, err := QueryAddr(addr, wire.Query{Op: wire.OpResults, Key: uint64(len(out))})
		if err != nil {
			return nil, err
		}
		if len(next.Results) == 0 {
			return nil, fmt.Errorf("transport: drain %s stalled at %d/%d results",
				addr, len(out), rep.Count)
		}
		out = append(out, next.Results...)
	}
	return out, nil
}

// SubscribeResults registers with a windowed final node for push
// delivery and accumulates the pushed closed-window results until the
// node reports Done — the drain-free replacement for DrainResults:
// instead of polling OpStats, the node writes a Reply frame on this
// connection the moment windows close, so results arrive with no poll
// interval in the latency path.
func SubscribeResults(addr string, timeout time.Duration) ([]wire.WindowResult, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: subscribe dial %s: %w", addr, err)
	}
	defer conn.Close()
	buf := wire.AppendSubscribe(nil, wire.Subscribe{})
	if _, err := conn.Write(buf); err != nil {
		return nil, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(conn, 1<<17)
	var out []wire.WindowResult
	var payload []byte
	for {
		kind, p, err := wire.ReadFrame(r, payload)
		if err != nil {
			return nil, fmt.Errorf("transport: subscribe %s after %d results: %w",
				addr, len(out), err)
		}
		payload = p
		if kind != wire.KindReply {
			return nil, fmt.Errorf("transport: %s pushed a %v frame", addr, kind)
		}
		rep, err := wire.DecodeReply(p)
		if err != nil {
			return nil, err
		}
		out = append(out, rep.Results...)
		// The node sets Done on the last frame of a fully caught-up
		// push (its result log is final and everything from the
		// subscription offset has been delivered), so Done alone ends
		// the session — correct for any Subscribe offset, since
		// Reply.Count is the node's TOTAL log length, not the
		// subscriber's share.
		if rep.Done {
			return out, nil
		}
	}
}

// SplitAddrs parses a comma-separated node address list (the form the
// PKGNODE_*_ADDRS environment variables and pkgnode's -final flag
// take), trimming whitespace and dropping empty entries.
func SplitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// QueryAddr sends one point query to a worker address over a fresh
// connection and returns the reply.
func QueryAddr(addr string, q wire.Query) (wire.Reply, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return wire.Reply{}, fmt.Errorf("transport: query dial %s: %w", addr, err)
	}
	defer conn.Close()
	buf := wire.AppendQuery(nil, q)
	if _, err := conn.Write(buf); err != nil {
		return wire.Reply{}, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return wire.Reply{}, err
	}
	kind, payload, err := wire.ReadFrame(bufio.NewReader(conn), nil)
	if err != nil {
		return wire.Reply{}, fmt.Errorf("transport: query %s: %w", addr, err)
	}
	if kind != wire.KindReply {
		return wire.Reply{}, fmt.Errorf("transport: %s answered with %v", addr, kind)
	}
	return wire.DecodeReply(payload)
}

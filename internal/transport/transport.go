// Package transport runs partial key grouping across real network
// boundaries: worker processes listen on TCP, source processes hold one
// connection per worker and route each key with a partitioner driven by
// their own local load estimate — nothing but the key ever crosses the
// wire, which is the paper's whole point: PKG needs no load gossip, no
// routing-table synchronization and no coordination among sources.
//
// The wire protocol is deliberately small: length-free fixed frames,
// one byte of type followed by an 8-byte little-endian key.
//
//	data  frame: 'D' + key     (source → worker, fire and forget)
//	query frame: 'Q' + key     (client → worker, answered with a count)
//	count reply: 8-byte count  (worker → client)
//
// A distributed point query probes only the key's candidate workers —
// two under PKG — and sums their partial counts (§VI.A).
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
	"pkgstream/internal/route"
)

// Frame types.
const (
	frameData  = 'D'
	frameQuery = 'Q'
)

// frameSize is the fixed wire size of every request frame.
const frameSize = 1 + 8

// Worker is a TCP server holding partial counts for the keys routed to
// it. It serves any number of concurrent sources and query clients.
type Worker struct {
	ln net.Listener

	mu        sync.Mutex
	counts    map[uint64]int64
	processed int64

	wg     sync.WaitGroup
	closed chan struct{}
}

// ListenWorker starts a worker on addr (use "127.0.0.1:0" for an
// ephemeral port).
func ListenWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	w := &Worker{
		ln:     ln,
		counts: make(map[uint64]int64),
		closed: make(chan struct{}),
	}
	w.wg.Add(1)
	go w.acceptLoop()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.closed:
				return
			default:
				// Transient accept error: keep serving.
				continue
			}
		}
		w.wg.Add(1)
		go w.serve(conn)
	}
}

func (w *Worker) serve(conn net.Conn) {
	defer w.wg.Done()
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 1<<16)
	var buf [frameSize]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return // EOF or peer gone: the stream is done
		}
		key := binary.LittleEndian.Uint64(buf[1:])
		switch buf[0] {
		case frameData:
			w.mu.Lock()
			w.counts[key]++
			w.processed++
			w.mu.Unlock()
		case frameQuery:
			w.mu.Lock()
			c := w.counts[key]
			w.mu.Unlock()
			var reply [8]byte
			binary.LittleEndian.PutUint64(reply[:], uint64(c))
			if _, err := conn.Write(reply[:]); err != nil {
				return
			}
		default:
			return // protocol violation: drop the connection
		}
	}
}

// Processed returns the number of data frames absorbed.
func (w *Worker) Processed() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.processed
}

// DistinctKeys returns the number of live partial counters.
func (w *Worker) DistinctKeys() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.counts)
}

// Count returns the worker's partial count for key.
func (w *Worker) Count(key uint64) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.counts[key]
}

// WaitProcessed blocks until the worker has absorbed at least n data
// frames or the timeout expires.
func (w *Worker) WaitProcessed(n int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if w.Processed() >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: worker %s processed %d < %d after %v",
				w.Addr(), w.Processed(), n, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (w *Worker) Close() error {
	select {
	case <-w.closed:
		return nil
	default:
	}
	close(w.closed)
	err := w.ln.Close()
	w.wg.Wait()
	return err
}

// Mode selects the source's partitioning strategy. It is the shared
// strategy type of the routing core — transport no longer keeps its own
// enumeration.
type Mode = route.Strategy

// Source partitioning modes. Note the numeric values follow the shared
// Strategy ordering (KG=0, SG=1, PKG=2), not this package's historical
// one (PKG was 0): always use the named constants — a raw integer or a
// zero-valued Mode now selects KG, not PKG.
const (
	// ModePKG routes with partial key grouping on a local load estimate.
	ModePKG = route.StrategyPKG
	// ModeKG routes with a single hash.
	ModeKG = route.StrategyKG
	// ModeSG routes round-robin.
	ModeSG = route.StrategySG
	// ModeDChoices routes with frequency-aware PKG (ICDE 2016
	// follow-up): the source carries its own Space-Saving sketch and
	// widens hot keys to d > 2 candidate workers. Nothing but the keys
	// ever crosses the wire — classification is per-source, so zero
	// coordination is preserved.
	ModeDChoices = route.StrategyDChoices
	// ModeWChoices spreads keys above the hot threshold round-robin
	// over every worker, again from purely source-local state.
	ModeWChoices = route.StrategyWChoices
)

// Source is a stream source holding one TCP connection per worker and a
// router over them. Each Source keeps its own local load estimate —
// parallel sources never talk to each other.
type Source struct {
	conns []net.Conn
	bufs  []*bufio.Writer
	part  route.Router
	pkg   *route.PKG
	view  *metrics.Load
	sent  int64
}

// DialSource connects to the given worker addresses with the paper's two
// hash choices. The seed must match across sources so their candidate
// hash functions agree (the only thing sources share — and it is baked
// into the binary, not communicated). start decorrelates shuffle
// round-robins of parallel sources.
func DialSource(addrs []string, mode Mode, seed uint64, start int) (*Source, error) {
	return DialSourceD(addrs, mode, seed, start, 2)
}

// DialSourceD is DialSource generalized to d hash choices for PKG
// ("Greedy-d") and to the hot-key width for D-Choices (d ≤ 2 selects
// the adaptive policy there; d is ignored by the other modes). Point
// queries probe a key's candidate workers, so larger d trades query
// fan-out for balance.
func DialSourceD(addrs []string, mode Mode, seed uint64, start, d int) (*Source, error) {
	if len(addrs) == 0 {
		return nil, errors.New("transport: no worker addresses")
	}
	if mode == ModePKG {
		if d <= 0 {
			return nil, fmt.Errorf("transport: PKG needs at least one choice, got d=%d", d)
		}
		if d > len(addrs) {
			// Every worker is already a candidate; clamping keeps the
			// candidate set duplicate-free so point queries never
			// double-count a worker's partial count.
			d = len(addrs)
		}
	}
	s := &Source{}
	for _, a := range addrs {
		conn, err := net.DialTimeout("tcp", a, 5*time.Second)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("transport: dial %s: %w", a, err)
		}
		s.conns = append(s.conns, conn)
		s.bufs = append(s.bufs, bufio.NewWriterSize(conn, 1<<16))
	}
	n := len(addrs)
	switch mode {
	case ModePKG:
		s.view = metrics.NewLoad(n)
		s.pkg = route.NewPKG(n, d, seed, s.view)
		s.part = s.pkg
	case ModeKG:
		s.part = route.NewKeyGrouping(n, seed)
	case ModeSG:
		s.part = route.NewShuffleGrouping(n, start)
	case ModeDChoices, ModeWChoices:
		// This source's sketch: frequency classification, like the load
		// estimate, never leaves the process. d ≤ 2 means adaptive (the
		// classifier clamps fixed widths beyond W internally).
		hc := hotkey.Config{}
		if d > 2 {
			hc.D = d
		}
		s.view = metrics.NewLoad(n)
		r, err := route.New(route.Config{
			Strategy: mode, Workers: n, Seed: seed, Start: start,
			View: s.view, Hot: hc,
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		s.part = r
	default:
		s.Close()
		return nil, fmt.Errorf("transport: unknown mode %d", mode)
	}
	return s, nil
}

// Send routes one key to its worker.
func (s *Source) Send(key uint64) error {
	w := s.part.Route(key)
	if s.view != nil {
		s.view.Add(w)
	}
	var buf [frameSize]byte
	buf[0] = frameData
	binary.LittleEndian.PutUint64(buf[1:], key)
	if _, err := s.bufs[w].Write(buf[:]); err != nil {
		return fmt.Errorf("transport: send to worker %d: %w", w, err)
	}
	s.sent++
	return nil
}

// Sent returns the number of keys sent.
func (s *Source) Sent() int64 { return s.sent }

// LocalLoads returns this source's local load estimate (nil for KG/SG).
func (s *Source) LocalLoads() []int64 {
	if s.view == nil {
		return nil
	}
	return s.view.Snapshot()
}

// Flush pushes buffered frames to the network.
func (s *Source) Flush() error {
	for i, b := range s.bufs {
		if err := b.Flush(); err != nil {
			return fmt.Errorf("transport: flush worker %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes and closes all connections.
func (s *Source) Close() error {
	var first error
	for i, b := range s.bufs {
		if err := b.Flush(); err != nil && first == nil {
			first = err
		}
		_ = i
	}
	for _, c := range s.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Candidates returns the key's candidate workers under this source's
// router (all workers for SG, one for KG, the d hash choices for PKG,
// and the class-widened set for D-Choices/W-Choices). For the
// frequency-aware modes the set reflects the key's *current* class: a
// key that cooled down since it was last routed may hold stale partial
// counts on workers outside the returned set, so exact point queries
// across a class change must widen to the key's historical maximum (or
// simply all workers).
func (s *Source) Candidates(key uint64) []int {
	return route.ProbeSet(s.part, key)
}

// Query answers a distributed point query for key against the given
// worker addresses using a fresh connection per probe: it sums the
// partial counts of the key's candidate workers only.
func Query(addrs []string, key uint64, candidates []int) (int64, error) {
	var total int64
	for _, w := range candidates {
		if w < 0 || w >= len(addrs) {
			return 0, fmt.Errorf("transport: candidate %d out of range", w)
		}
		c, err := queryOne(addrs[w], key)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

func queryOne(addr string, key uint64) (int64, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, fmt.Errorf("transport: query dial %s: %w", addr, err)
	}
	defer conn.Close()
	var buf [frameSize]byte
	buf[0] = frameQuery
	binary.LittleEndian.PutUint64(buf[1:], key)
	if _, err := conn.Write(buf[:]); err != nil {
		return 0, err
	}
	var reply [8]byte
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return 0, err
	}
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(reply[:])), nil
}

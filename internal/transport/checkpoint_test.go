package transport

import (
	"path/filepath"
	"testing"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/rng"
)

// skewedKeys returns a deterministic stream of n keys: key 1 with
// probability p, the rest uniform over [2, 2+tail).
func skewedKeys(n int, p float64, tail uint64, seed uint64) []uint64 {
	r := rng.NewStream(seed, 0)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = 1
		if r.Float64() >= p {
			keys[i] = 2 + r.Uint64()%tail
		}
	}
	return keys
}

func sendAll(t *testing.T, src *Source, keys []uint64) {
	t.Helper()
	for _, k := range keys {
		if err := src.Send(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
}

func workerImbalance(ws []*Worker) float64 {
	var max, sum int64
	for _, w := range ws {
		p := w.Processed()
		if p > max {
			max = p
		}
		sum += p
	}
	return float64(max) - float64(sum)/float64(len(ws))
}

// TestSketchCheckpointRestoresHeadClassification: a source that
// checkpoints its Space-Saving sketch on Close and re-warms from the
// file on dial classifies a known head key as head from its very first
// message — the restarted source never routes it cold (the ROADMAP gap
// this satellite closes).
func TestSketchCheckpointRestoresHeadClassification(t *testing.T) {
	const w, n = 12, 8192
	_, addrs := startWorkers(t, w)
	path := filepath.Join(t.TempDir(), "sketch.ckpt")
	opts := SourceOptions{Mode: ModeDChoices, Seed: 42, SketchPath: path}

	// First life: key 1 carries 70% — beyond the head threshold
	// dCap(1+ε)/W = 6·1.25/12 = 0.625 (adaptive dCap = ⌈W/2⌉).
	src1, err := DialSourceOpts(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	sendAll(t, src1, skewedKeys(n, 0.7, 500, 9))
	if got := len(src1.Candidates(1)); got != w {
		t.Fatalf("head key widened to %d candidates before restart, want %d", got, w)
	}
	if err := src1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the restored classifier must be head-aware *before*
	// any observation.
	src2, err := DialSourceOpts(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	if got := len(src2.Candidates(1)); got != w {
		t.Fatalf("restarted source gives the head key %d candidates, want %d immediately", got, w)
	}
	sum, ok := src2.SketchSummary()
	if !ok || sum.N != n {
		t.Fatalf("restored sketch weight %d (ok=%v), want %d", sum.N, ok, n)
	}

	// A restart WITHOUT the checkpoint routes the same key cold.
	cold, err := DialSourceOpts(addrs, SourceOptions{Mode: ModeDChoices, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if got := len(cold.Candidates(1)); got != 2 {
		t.Fatalf("fresh source gives the head key %d candidates, want 2", got)
	}
}

// TestRestartedSourceImbalanceWithin2x is the PR-4 acceptance
// criterion: killing and restarting a D-Choices source mid-stream, with
// the sketch checkpointed across the restart, leaves the end-to-end
// worker imbalance within 2x of the uninterrupted run — and strictly
// better than the same restart without the checkpoint (which re-enters
// warmup and routes the head key over two workers until the sketch
// re-warms). Everything here is deterministic: one source goroutine,
// seeded streams.
func TestRestartedSourceImbalanceWithin2x(t *testing.T) {
	const (
		w    = 12
		n    = 40_000
		seed = 42
	)
	hot := hotkey.Config{Warmup: 4096, RefreshEvery: 1024}
	keys := skewedKeys(n, 0.4, 2_000, 7)

	run := func(sketchPath string, restart, restoreSecondLife bool) float64 {
		workers, addrs := startWorkers(t, w)
		opts := SourceOptions{Mode: ModeDChoices, Seed: seed, Hot: hot, SketchPath: sketchPath}
		src, err := DialSourceOpts(addrs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !restart {
			sendAll(t, src, keys)
			if err := src.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			sendAll(t, src, keys[:n/2])
			if err := src.Close(); err != nil { // checkpoints the sketch
				t.Fatal(err)
			}
			second := opts
			if !restoreSecondLife {
				second.SketchPath = ""
			}
			src2, err := DialSourceOpts(addrs, second)
			if err != nil {
				t.Fatal(err)
			}
			sendAll(t, src2, keys[n/2:])
			if err := src2.Close(); err != nil {
				t.Fatal(err)
			}
		}
		waitTotal(t, workers, n)
		return workerImbalance(workers)
	}

	dir := t.TempDir()
	uninterrupted := run(filepath.Join(dir, "a.ckpt"), false, false)
	restored := run(filepath.Join(dir, "b.ckpt"), true, true)
	amnesiac := run(filepath.Join(dir, "c.ckpt"), true, false)

	t.Logf("imbalance: uninterrupted %.0f, restart+restore %.0f, restart cold %.0f",
		uninterrupted, restored, amnesiac)
	if restored > 2*uninterrupted {
		t.Fatalf("restored restart imbalance %.0f exceeds 2x uninterrupted %.0f",
			restored, uninterrupted)
	}
	if restored >= amnesiac {
		t.Fatalf("sketch restore did not help: restored %.0f ≥ cold restart %.0f",
			restored, amnesiac)
	}
}

package transport

import (
	"sync"

	"pkgstream/internal/trace"
	"pkgstream/internal/wire"
)

// Handler is the pluggable processing side of a Worker: every decoded
// frame the worker absorbs is dispatched to exactly one of these
// methods. The worker SERIALIZES handler calls across all of its
// connections, so a handler needs no locking for frame-driven state —
// window.FinalHandler runs an ordinary single-threaded FinalBolt behind
// this contract. State also read from *other* goroutines (a test
// polling counts while sources stream) still needs the handler's own
// synchronization.
//
// The pointer arguments are only valid for the duration of the call:
// the worker reuses its decode buffers, so a handler that retains a
// tuple or partial must copy it.
type Handler interface {
	// HandleTuple absorbs one stream tuple.
	HandleTuple(t *wire.Tuple)
	// HandlePartial absorbs one flushed (key, window) partial.
	HandlePartial(p *wire.Partial)
	// HandleMark absorbs one source watermark.
	HandleMark(m wire.Mark)
	// HandleQuery answers a point query; the reply is written back on
	// the connection the query arrived on.
	HandleQuery(q wire.Query) wire.Reply
}

// TupleBatchHandler is the optional Handler extension for batched
// tuple frames (wire.KindTupleBatch): the worker hands the whole
// decoded batch over in ONE serialized call — one lock acquisition,
// one ack-accounting pass — instead of n HandleTuple dispatches.
// Handlers without it keep working: the worker unrolls the batch into
// per-tuple HandleTuple calls under a single lock hold. The slice, the
// tuples and their Values are only valid for the duration of the call
// (the worker reuses its decode buffers).
type TupleBatchHandler interface {
	Handler
	// HandleTupleBatch absorbs one decoded tuple batch.
	HandleTupleBatch(ts []wire.Tuple)
}

// ResultSink is the push half of a Subscribe session: the worker hands
// one to the handler when a connection subscribes, and the handler
// writes server-initiated Reply frames through it whenever it has news
// (closed windows, the final Done). Push is safe to call from any
// handler method (writes are serialized with the connection's query
// replies and acks); a failed Push means the subscriber is gone and
// the handler should drop the sink.
type ResultSink interface {
	// Push writes one OpResults-shaped reply on the subscribed
	// connection.
	Push(rep *wire.Reply) error
}

// PushHandler is the optional Handler extension for push delivery: a
// worker that receives a wire.Subscribe frame dispatches it here with
// a sink bound to the subscribing connection. Handlers that do not
// implement it make Subscribe a protocol violation (the connection
// drops), so a counter node cannot be subscribed to by mistake.
type PushHandler interface {
	Handler
	// HandleSubscribe registers a subscriber. The sink stays valid
	// until a Push fails.
	HandleSubscribe(s wire.Subscribe, sink ResultSink)
}

// CountHandler is the classic PKG worker: a per-key partial counter
// over everything routed to it. Tuples count 1 under their routing
// hash; partials add their Combiner count (opaque states are counted
// as 1 — a counter worker cannot merge them). It answers OpCount with
// the key's partial count and OpStats with the number of frames
// absorbed.
type CountHandler struct {
	mu        sync.Mutex
	counts    map[uint64]int64
	processed int64
}

// NewCountHandler returns an empty counter.
func NewCountHandler() *CountHandler {
	return &CountHandler{counts: make(map[uint64]int64)}
}

// HandleTuple implements Handler.
func (h *CountHandler) HandleTuple(t *wire.Tuple) {
	h.mu.Lock()
	h.counts[t.KeyHash]++
	h.processed++
	h.mu.Unlock()
	if t.TraceID != 0 {
		trace.Add(t.TraceID, trace.HopDispatch, trace.Now(), 0, 0, 0, "counter")
	}
}

// HandleTupleBatch implements TupleBatchHandler: the whole batch
// counts under one lock acquisition.
func (h *CountHandler) HandleTupleBatch(ts []wire.Tuple) {
	h.mu.Lock()
	for i := range ts {
		h.counts[ts[i].KeyHash]++
	}
	h.processed += int64(len(ts))
	h.mu.Unlock()
	for i := range ts {
		if ts[i].TraceID != 0 {
			trace.Add(ts[i].TraceID, trace.HopDispatch, trace.Now(), 0, 0, 0, "counter")
		}
	}
}

// HandlePartial implements Handler.
func (h *CountHandler) HandlePartial(p *wire.Partial) {
	n := p.Count
	if p.Raw != nil {
		n = 1
	}
	h.mu.Lock()
	h.counts[p.KeyHash] += n
	h.processed++
	h.mu.Unlock()
}

// HandleMark implements Handler (counters have no windows to close).
func (h *CountHandler) HandleMark(wire.Mark) {}

// HandleQuery implements Handler.
func (h *CountHandler) HandleQuery(q wire.Query) wire.Reply {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch q.Op {
	case wire.OpCount:
		return wire.Reply{Op: q.Op, Count: h.counts[q.Key]}
	case wire.OpStats:
		return wire.Reply{Op: q.Op, Count: h.processed}
	case wire.OpTrace:
		return wire.Reply{Op: q.Op, Proc: trace.Process(), Spans: TraceSpans()}
	default:
		return wire.Reply{Op: q.Op}
	}
}

// TraceSpans snapshots the process-global trace ring in wire form —
// the payload of an OpTrace reply (nil when nothing was recorded).
func TraceSpans() []wire.Span {
	spans := trace.Default.Snapshot()
	if len(spans) == 0 {
		return nil
	}
	out := make([]wire.Span, len(spans))
	for i, s := range spans {
		out[i] = wire.Span{Trace: s.Trace, Start: s.Start, Dur: s.Dur,
			Arg1: s.Arg1, Arg2: s.Arg2, Hop: byte(s.Hop), Note: s.Note}
	}
	return out
}

// SpansFromWire converts an OpTrace reply's spans back to trace spans,
// stamping the replying process's name on each — the assembly input
// for cross-process traces (trace.ByTrace).
func SpansFromWire(proc string, ss []wire.Span) []trace.Span {
	out := make([]trace.Span, len(ss))
	for i, s := range ss {
		out[i] = trace.Span{Trace: s.Trace, Start: s.Start, Dur: s.Dur,
			Arg1: s.Arg1, Arg2: s.Arg2, Hop: trace.Hop(s.Hop), Proc: proc, Note: s.Note}
	}
	return out
}

// Count returns the partial count for key.
func (h *CountHandler) Count(key uint64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts[key]
}

// DistinctKeys returns the number of live partial counters.
func (h *CountHandler) DistinctKeys() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.counts)
}

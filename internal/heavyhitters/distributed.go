package heavyhitters

import (
	"pkgstream/internal/metrics"
	"pkgstream/internal/route"
)

// Distributed runs the paper's §VI.C architecture: a set of W workers,
// each holding one SpaceSaving summary, fed through a stream partitioner.
// Under PKG each item is tracked by at most two deterministic workers, so
// a query merges exactly two summaries; under shuffle grouping an item
// may live on every worker and a query must merge all W.
type Distributed struct {
	workers []*SpaceSaving
	part    route.Router
	pkg     *route.PKG // non-nil when partial key grouping is used
	view    *metrics.Load
}

// Strategy selects the routing scheme of a Distributed tracker.
type Strategy int

// Routing schemes of §VI.C.
const (
	// ByPKG routes with partial key grouping: ≤2 summaries per item.
	ByPKG Strategy = iota
	// ByKey routes with key grouping: 1 summary per item, but the
	// worker loads inherit the stream's skew.
	ByKey
	// ByShuffle routes round-robin: perfectly balanced, but an item may
	// be spread over all W summaries.
	ByShuffle
)

// NewDistributed returns a distributed tracker over w workers, each with
// a SpaceSaving summary of capacity k.
func NewDistributed(w, k int, strategy Strategy, seed uint64) *Distributed {
	if w <= 0 {
		panic("heavyhitters: NewDistributed with w <= 0")
	}
	d := &Distributed{workers: make([]*SpaceSaving, w)}
	for i := range d.workers {
		d.workers[i] = New(k)
	}
	switch strategy {
	case ByPKG:
		d.view = metrics.NewLoad(w)
		d.pkg = route.NewPKG(w, 2, seed, d.view)
		d.part = d.pkg
	case ByKey:
		d.part = route.NewKeyGrouping(w, seed)
	case ByShuffle:
		d.part = route.NewShuffleGrouping(w, 0)
	default:
		panic("heavyhitters: unknown strategy")
	}
	return d
}

// Update routes one occurrence of item to a worker summary.
func (d *Distributed) Update(item uint64) {
	w := d.part.Route(item)
	if d.view != nil {
		d.view.Add(w)
	}
	d.workers[w].Update(item)
}

// Estimate answers a point query. Under PKG it probes only the item's two
// candidate workers; under key grouping, one; under shuffle, all W.
// The returned error bound is the sum of the probed summaries' bounds.
func (d *Distributed) Estimate(item uint64) Counted {
	probes := d.probeSet(item)
	var c Counted
	c.Item = item
	for _, w := range probes {
		e := d.workers[w].Estimate(item)
		c.Count += e.Count
		c.Err += e.Err
	}
	return c
}

// ProbeCount returns how many workers a query for item touches.
func (d *Distributed) ProbeCount(item uint64) int { return len(d.probeSet(item)) }

func (d *Distributed) probeSet(item uint64) []int {
	return route.ProbeSet(d.part, item)
}

// TopK merges the worker summaries (into capacity k) and returns the j
// top items. Under PKG an individual item's merged error comes from at
// most two summaries; under shuffle grouping, up to W. The one-shot
// W-way Merge is deliberate: SpaceSaving merging is order-sensitive
// (capacity truncation plus min-count slack at every step), so a
// pairwise fold would inflate the error bounds — the streaming
// TopKAgg/BuildTopology path accepts that as the price of incremental
// aggregation, a synchronous query should not.
func (d *Distributed) TopK(k, j int) []Counted {
	return Merge(k, d.workers...).Top(j)
}

// WorkerLoads returns the number of updates each worker absorbed — the
// load balance the partitioning strategy achieved.
func (d *Distributed) WorkerLoads() []int64 {
	out := make([]int64, len(d.workers))
	for i, w := range d.workers {
		out[i] = w.N()
	}
	return out
}

// Imbalance returns max − avg of the worker loads.
func (d *Distributed) Imbalance() float64 {
	loads := d.WorkerLoads()
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	return float64(max) - float64(sum)/float64(len(loads))
}

// Package heavyhitters answers streaming top-k queries with the
// distributed pattern of the paper's §VI.C: route items to two workers
// with partial key grouping, keep one SPACESAVING summary per worker,
// and merge exactly two summaries per key at query time — so the
// per-item error depends on two summary error terms regardless of the
// parallelism level, unlike shuffle grouping where it grows with W.
//
// The SpaceSaving summary itself lives in internal/sketch (it is shared
// with the hot-key classifier of internal/hotkey); this package
// re-exports it under its historical names and adds the distributed
// query layers on top.
package heavyhitters

import "pkgstream/internal/sketch"

// Counted is one item of a summary or query result: an item identifier
// with its estimated count and overestimation bound.
type Counted = sketch.Counted

// SpaceSaving maintains the top-k items of a stream in O(k) space. See
// sketch.SpaceSaving for the guarantees.
type SpaceSaving = sketch.SpaceSaving

// New returns a SpaceSaving summary with capacity k. It panics if
// k <= 0.
func New(k int) *SpaceSaving { return sketch.New(k) }

// Merge combines several summaries into a fresh one with the given
// capacity, degrading the error bounds by the sum of the inputs' error
// terms (Berinde et al.) — which is why the paper's PKG split (exactly
// two summaries per key) beats shuffle grouping (W summaries per key).
func Merge(k int, summaries ...*SpaceSaving) *SpaceSaving {
	return sketch.Merge(k, summaries...)
}

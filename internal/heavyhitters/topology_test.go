package heavyhitters

import (
	"testing"

	"pkgstream/internal/engine"
)

// runTopTopology builds and runs a distributed top-k topology, returning
// its output and runtime stats.
func runTopTopology(t *testing.T, cfg TopologyConfig) (*TopologyOutput, engine.Stats) {
	t.Helper()
	top, out, err := BuildTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 256})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return out, rt.Stats()
}

func TestTopologyFindsHeadUnderEveryStrategy(t *testing.T) {
	for _, s := range []Strategy{ByPKG, ByKey, ByShuffle} {
		cfg := TopologyConfig{
			Items: 30000, Vocab: 3000, P1: 0.1, Sources: 2, Workers: 6,
			Capacity: 512, K: 10, FlushEvery: 5000, Strategy: s, Seed: 5,
		}
		out, st := runTopTopology(t, cfg)
		if len(out.Top) == 0 {
			t.Fatalf("strategy %v: empty top", s)
		}
		if out.Top[0].Item != 1 {
			t.Errorf("strategy %v: top item %d, want the Zipf head 1", s, out.Top[0].Item)
		}
		total := int64(cfg.Items * cfg.Sources)
		// SpaceSaving never underestimates, so the head count is at
		// least its true frequency (≈ p1·total) and at most the stream.
		if c := out.Top[0].Count; c < int64(0.07*float64(total)) || c > total {
			t.Errorf("strategy %v: head count %d implausible for %d items", s, c, total)
		}
		if got := st.TotalExecuted("summary.partial"); got != total {
			t.Errorf("strategy %v: partial stage executed %d, want %d", s, got, total)
		}
		if out.SummariesMerged == 0 {
			t.Errorf("strategy %v: no summaries merged", s)
		}
	}
}

func TestTopologyPKGBalancesPartialLoad(t *testing.T) {
	imbalance := func(s Strategy) float64 {
		_, st := runTopTopology(t, TopologyConfig{
			Items: 40000, Vocab: 4000, P1: 0.15, Sources: 2, Workers: 8,
			Capacity: 256, K: 5, FlushEvery: 8000, Strategy: s, Seed: 11,
		})
		return st.Imbalance("summary.partial")
	}
	pkg, kg := imbalance(ByPKG), imbalance(ByKey)
	if pkg*3 > kg {
		t.Fatalf("PKG partial imbalance %v not well below KG %v", pkg, kg)
	}
}

func TestTopologyPeriodicFlushBoundsMemory(t *testing.T) {
	// Per-instance scope with a global window holds exactly one live
	// summary per partial instance, flushed every period.
	_, st := runTopTopology(t, TopologyConfig{
		Items: 20000, Vocab: 2000, P1: 0.1, Sources: 1, Workers: 4,
		Capacity: 128, K: 5, FlushEvery: 2000, Strategy: ByPKG, Seed: 3,
	})
	w := st.WindowTotals("summary.partial")
	if w.MaxLive != 1 {
		t.Errorf("per-instance scope MaxLive = %d, want 1", w.MaxLive)
	}
	// 20000 items across 4 workers at T=2000 → at least 10 flush rounds.
	if w.Flushes < 10 {
		t.Errorf("only %d flush rounds at T=2000", w.Flushes)
	}
	if got := st.WindowTotals("summary").Merged; got != w.PartialsOut {
		t.Errorf("final merged %d summaries, partial flushed %d", got, w.PartialsOut)
	}
}

func TestTopologyValidation(t *testing.T) {
	base := TopologyConfig{
		Items: 100, Vocab: 50, P1: 0.1, Sources: 1, Workers: 2,
		Capacity: 16, K: 3, Strategy: ByPKG,
	}
	bad := []func(*TopologyConfig){
		func(c *TopologyConfig) { c.Items = 0 },
		func(c *TopologyConfig) { c.Vocab = 0 },
		func(c *TopologyConfig) { c.Sources = 0 },
		func(c *TopologyConfig) { c.Workers = 0 },
		func(c *TopologyConfig) { c.P1 = 0 },
		func(c *TopologyConfig) { c.Capacity = 0 },
		func(c *TopologyConfig) { c.Strategy = Strategy(99) },
		func(c *TopologyConfig) { c.FlushEvery = -1 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, _, err := BuildTopology(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

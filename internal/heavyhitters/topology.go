package heavyhitters

import (
	"fmt"
	"sync"

	"pkgstream/internal/engine"
	"pkgstream/internal/rng"
	"pkgstream/internal/window"
)

// TopKAgg is the §VI.C distributed top-k expressed as a shared
// window.Aggregator over SpaceSaving summaries: the partial stage keeps
// one summary per instance per window (Spec.PerInstance), flushes it
// every aggregation period, and the final stage merges the flushed
// summaries with Berinde-style error accounting. Under PKG each item
// lives in at most two partial summaries per period, which is what
// bounds the merged error.
//
// Merge is commutative but only approximately associative: every
// pairwise SpaceSaving merge truncates to capacity and folds min-count
// slack in, so the merged counts and error bounds depend slightly on
// arrival order. The guarantees survive (estimates never
// underestimate, errors stay bounded), but two runs of the same
// topology may report marginally different counts for tail items —
// TopologyConfig.Seed makes the stream reproducible, not the merge
// order. Synchronous queries that can see all summaries at once should
// use the one-shot W-way Merge instead (Distributed.TopK does).
type TopKAgg struct {
	// Capacity is each summary's capacity k.
	Capacity int
}

// Init implements window.Aggregator.
func (a TopKAgg) Init() window.State { return New(a.Capacity) }

// Accumulate implements window.Aggregator: the item is the tuple's
// KeyHash (integer-keyed stream).
func (a TopKAgg) Accumulate(s window.State, t engine.Tuple) window.State {
	ss := s.(*SpaceSaving)
	ss.Update(t.KeyHash)
	return ss
}

// Merge implements window.Aggregator.
func (a TopKAgg) Merge(x, y window.State) window.State {
	return Merge(a.Capacity, x.(*SpaceSaving), y.(*SpaceSaving))
}

// Output implements window.Aggregator: the merged summary itself, so
// sinks can run point and top-j queries against it.
func (a TopKAgg) Output(_ string, s window.State) any { return s.(*SpaceSaving) }

// TopologyConfig parameterizes the distributed top-k topology on the
// live engine: Zipf item spouts → windowed SpaceSaving partials (routed
// per Strategy) → a merging final stage → a top-K sink.
type TopologyConfig struct {
	// Items is the number of items each spout instance emits.
	Items int
	// Vocab is the item universe size; item i is drawn Zipf-distributed
	// with the given P1 head probability.
	Vocab uint64
	// P1 is the frequency of the most common item.
	P1 float64
	// Sources is the spout parallelism.
	Sources int
	// Workers is the summary (partial-stage) parallelism.
	Workers int
	// Capacity is the per-summary SpaceSaving capacity k.
	Capacity int
	// K is the top-k reported by the sink.
	K int
	// FlushEvery is the aggregation period T as a tuple count per
	// partial instance (0: flush only at stream end).
	FlushEvery int
	// Strategy selects the routing scheme (ByPKG, ByKey, ByShuffle).
	Strategy Strategy
	// Seed makes runs reproducible.
	Seed uint64
}

// TopologyOutput collects the merged result of a topology run.
type TopologyOutput struct {
	mu sync.Mutex
	// Top is the final merged top-K.
	Top []Counted
	// SummariesMerged counts the partial summaries the final stage
	// consumed: one per (instance, window, period) — at most W per
	// period regardless of strategy, but under PKG each individual
	// item's error spans at most two of them.
	SummariesMerged int64
}

// itemSpout emits Zipf-distributed integer items as KeyHash-keyed
// tuples.
type itemSpout struct {
	n    int
	i    int
	voc  uint64
	s    float64
	seed uint64
	z    *rng.Zipf
}

func (s *itemSpout) Open(ctx *engine.Context) {
	s.z = rng.NewZipf(rng.NewStream(s.seed, uint64(ctx.Index)), s.s, s.voc)
}

func (s *itemSpout) Close() {}

func (s *itemSpout) Next(out engine.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	out.Emit(engine.Tuple{KeyHash: s.z.Next()})
	s.i++
	return true
}

// topSink folds the final stage's merged summaries (one Result per
// window) into the run's top-K.
type topSink struct {
	cfg  TopologyConfig
	out  *TopologyOutput
	plan *window.Plan
	sum  *SpaceSaving
}

func (b *topSink) Prepare(*engine.Context) {}

func (b *topSink) Execute(t engine.Tuple, _ engine.Emitter) {
	if t.Tick {
		return
	}
	s := t.Values[0].(window.Result).Value.(*SpaceSaving)
	if b.sum == nil {
		b.sum = s
		return
	}
	b.sum = Merge(b.cfg.Capacity, b.sum, s)
}

func (b *topSink) Cleanup(engine.Emitter) {
	b.out.mu.Lock()
	defer b.out.mu.Unlock()
	if b.sum != nil {
		b.out.Top = b.sum.Top(b.cfg.K)
	}
	b.out.SummariesMerged = b.plan.FinalStats().Merged
}

// BuildTopology assembles the distributed top-k topology. The returned
// TopologyOutput is filled when the topology finishes.
func BuildTopology(cfg TopologyConfig) (*engine.Topology, *TopologyOutput, error) {
	if cfg.Items <= 0 || cfg.Vocab == 0 || cfg.Sources <= 0 || cfg.Workers <= 0 {
		return nil, nil, fmt.Errorf("heavyhitters: Items, Vocab, Sources and Workers must be positive")
	}
	if cfg.P1 <= 0 || cfg.P1 >= 1 {
		return nil, nil, fmt.Errorf("heavyhitters: P1 = %v out of (0,1)", cfg.P1)
	}
	if cfg.Capacity <= 0 {
		return nil, nil, fmt.Errorf("heavyhitters: Capacity must be positive")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	var grouping engine.GroupingFactory
	switch cfg.Strategy {
	case ByPKG:
		grouping = engine.Partial()
	case ByKey:
		grouping = engine.Key()
	case ByShuffle:
		grouping = engine.Shuffle()
	default:
		return nil, nil, fmt.Errorf("heavyhitters: unknown strategy %v", cfg.Strategy)
	}
	plan, err := window.NewPlan(TopKAgg{Capacity: cfg.Capacity},
		window.Spec{PerInstance: true, EveryTuples: cfg.FlushEvery})
	if err != nil {
		return nil, nil, fmt.Errorf("heavyhitters: %v", err)
	}

	out := &TopologyOutput{}
	s := rng.SolveZipfExponent(cfg.Vocab, cfg.P1)
	b := engine.NewBuilder("heavyhitters-topk", cfg.Seed)
	b.AddSpout("items", func() engine.Spout {
		return &itemSpout{n: cfg.Items, voc: cfg.Vocab, s: s, seed: cfg.Seed}
	}, cfg.Sources)
	b.WindowedAggregate("summary", plan, cfg.Workers).Input("items", grouping)
	b.AddBolt("topk", func() engine.Bolt {
		return &topSink{cfg: cfg, out: out, plan: plan}
	}, 1).Input("summary", engine.Global())
	top, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return top, out, nil
}

package heavyhitters

import (
	"testing"

	"pkgstream/internal/rng"
)

func feed(d *Distributed, seed uint64, n int) map[uint64]int64 {
	z := rng.NewZipf(rng.New(seed), rng.SolveZipfExponent(5000, 0.08), 5000)
	truth := map[uint64]int64{}
	for i := 0; i < n; i++ {
		item := z.Next()
		d.Update(item)
		truth[item]++
	}
	return truth
}

func TestDistributedPKGTwoProbes(t *testing.T) {
	d := NewDistributed(9, 256, ByPKG, 1)
	feed(d, 1, 50000)
	for item := uint64(1); item <= 100; item++ {
		if n := d.ProbeCount(item); n > 2 {
			t.Fatalf("item %d: %d probes under PKG, want ≤ 2", item, n)
		}
	}
}

func TestDistributedShuffleProbesAll(t *testing.T) {
	d := NewDistributed(9, 256, ByShuffle, 1)
	feed(d, 1, 10000)
	if n := d.ProbeCount(42); n != 9 {
		t.Fatalf("shuffle probes %d workers, want 9", n)
	}
}

func TestDistributedKeyOneProbe(t *testing.T) {
	d := NewDistributed(9, 256, ByKey, 1)
	feed(d, 1, 10000)
	if n := d.ProbeCount(42); n != 1 {
		t.Fatalf("key grouping probes %d workers, want 1", n)
	}
}

func TestDistributedEstimatesNeverUnderestimate(t *testing.T) {
	for _, strat := range []Strategy{ByPKG, ByKey, ByShuffle} {
		d := NewDistributed(9, 512, strat, 2)
		truth := feed(d, 3, 100000)
		// Check the true heavy hitters.
		for item := uint64(1); item <= 20; item++ {
			got := d.Estimate(item)
			if got.Count < truth[item] {
				t.Errorf("strategy %v: item %d estimate %d < true %d",
					strat, item, got.Count, truth[item])
			}
			if got.Count-got.Err > truth[item] {
				t.Errorf("strategy %v: item %d est-err %d > true %d",
					strat, item, got.Count-got.Err, truth[item])
			}
		}
	}
}

func TestDistributedTopKFindsTrueTop(t *testing.T) {
	d := NewDistributed(9, 512, ByPKG, 4)
	truth := feed(d, 5, 150000)
	top := d.TopK(512, 5)
	// With a Zipf stream the true top item is rank 1.
	var bestItem uint64
	var bestCount int64
	for item, c := range truth {
		if c > bestCount {
			bestItem, bestCount = item, c
		}
	}
	if top[0].Item != bestItem {
		t.Fatalf("TopK[0] = %d, want %d", top[0].Item, bestItem)
	}
}

func TestDistributedPKGBalancesBetterThanKey(t *testing.T) {
	pkg := NewDistributed(9, 512, ByPKG, 6)
	feed(pkg, 7, 100000)
	kg := NewDistributed(9, 512, ByKey, 6)
	feed(kg, 7, 100000)
	if pkg.Imbalance()*5 > kg.Imbalance() {
		t.Fatalf("PKG imbalance %v not well below KG %v", pkg.Imbalance(), kg.Imbalance())
	}
	var total int64
	for _, l := range pkg.WorkerLoads() {
		total += l
	}
	if total != 100000 {
		t.Fatalf("worker loads sum to %d", total)
	}
}

func TestDistributedPKGErrorBeatsShuffleAtEqualCapacity(t *testing.T) {
	// §VI.C: with PKG an item's error sums over ≤2 summaries; with
	// shuffle it sums over up to W. At equal per-worker capacity the PKG
	// point-query error bound should not exceed shuffle's.
	pkg := NewDistributed(9, 128, ByPKG, 8)
	feed(pkg, 9, 120000)
	sg := NewDistributed(9, 128, ByShuffle, 8)
	feed(sg, 9, 120000)
	var pkgErr, sgErr int64
	for item := uint64(100); item <= 200; item++ { // mid-popularity items
		pkgErr += pkg.Estimate(item).Err
		sgErr += sg.Estimate(item).Err
	}
	if pkgErr > sgErr {
		t.Fatalf("PKG total error %d exceeds shuffle %d", pkgErr, sgErr)
	}
}

func TestDistributedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("w=0 did not panic")
		}
	}()
	NewDistributed(0, 10, ByPKG, 1)
}

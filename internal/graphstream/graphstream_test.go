package graphstream

import (
	"strings"
	"testing"

	"pkgstream/internal/dataset"
)

func feedGraph(g *InDegree, cap int64, seed uint64) map[uint64]int64 {
	s := dataset.LJ.WithCap(cap).Open(seed)
	truth := map[uint64]int64{}
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		g.ProcessEdge(m.SrcKey, m.Key)
		truth[m.Key]++
	}
	return truth
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(Config{Workers: 0, Sources: 1}) },
		func() { New(Config{Workers: 1, Sources: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDegreesExact(t *testing.T) {
	// The 2-probe aggregated degree must equal the true in-degree for
	// every vertex: key splitting loses no counts.
	g := New(Config{Workers: 10, Sources: 5, Assignment: KeyedSources, Seed: 1})
	truth := feedGraph(g, 50_000, 1)
	if g.Edges() != 50_000 {
		t.Fatalf("Edges = %d", g.Edges())
	}
	for v, want := range truth {
		if got := g.Degree(v); got != want {
			t.Fatalf("vertex %d: degree %d, want %d", v, got, want)
		}
	}
	if g.Degree(99_999_999) != 0 {
		t.Fatal("unseen vertex should have degree 0")
	}
}

func TestSkewedSourcesStillBalanceWorkers(t *testing.T) {
	// Figure 4: worker imbalance under skewed source assignment stays in
	// the same league as under uniform assignment, even though the
	// sources themselves are heavily imbalanced.
	uni := New(Config{Workers: 10, Sources: 5, Assignment: UniformSources, Seed: 2})
	feedGraph(uni, 100_000, 2)
	skew := New(Config{Workers: 10, Sources: 5, Assignment: KeyedSources, Seed: 2})
	feedGraph(skew, 100_000, 2)

	if skew.SourceImbalanceFraction() < 10*uni.SourceImbalanceFraction() {
		t.Errorf("keyed sources should be imbalanced: %v vs uniform %v",
			skew.SourceImbalanceFraction(), uni.SourceImbalanceFraction())
	}
	if skew.WorkerImbalanceFraction() > 10*uni.WorkerImbalanceFraction()+1e-4 {
		t.Errorf("worker imbalance under skew %v ≫ uniform %v",
			skew.WorkerImbalanceFraction(), uni.WorkerImbalanceFraction())
	}
	// Absolute worker balance is good (paper: "very low absolute values").
	if skew.WorkerImbalanceFraction() > 1e-3 {
		t.Errorf("worker imbalance fraction %v too high", skew.WorkerImbalanceFraction())
	}
}

func TestTopDegreesOrdering(t *testing.T) {
	g := New(Config{Workers: 5, Sources: 2, Seed: 3})
	truth := feedGraph(g, 30_000, 3)
	top := g.TopDegrees(10)
	if len(top) != 10 {
		t.Fatalf("TopDegrees returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Degree < top[i].Degree {
			t.Fatal("TopDegrees not sorted")
		}
	}
	// The reported degrees are the true ones.
	for _, vd := range top {
		if truth[vd.Vertex] != vd.Degree {
			t.Fatalf("vertex %d: top degree %d != true %d", vd.Vertex, vd.Degree, truth[vd.Vertex])
		}
	}
	if g.TopDegrees(0) != nil {
		t.Fatal("TopDegrees(0) should be nil")
	}
}

func TestCounterFootprintAtMostTwoPerVertex(t *testing.T) {
	g := New(Config{Workers: 10, Sources: 4, Seed: 4})
	truth := feedGraph(g, 40_000, 4)
	if g.CounterFootprint() > 2*len(truth) {
		t.Fatalf("footprint %d exceeds 2×distinct %d", g.CounterFootprint(), 2*len(truth))
	}
}

func TestString(t *testing.T) {
	g := New(Config{Workers: 2, Sources: 1, Seed: 5})
	if s := g.String(); !strings.Contains(s, "workers=2") {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkProcessEdge(b *testing.B) {
	g := New(Config{Workers: 10, Sources: 5, Assignment: KeyedSources, Seed: 1})
	s := dataset.LJ.WithCap(int64(b.N) + 1).Open(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := s.Next()
		g.ProcessEdge(m.SrcKey, m.Key)
	}
}

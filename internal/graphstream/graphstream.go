// Package graphstream implements the paper's Q3 robustness application
// (§V, Figure 4): streaming in-degree aggregation over a directed graph's
// edge stream. The source PEs are keyed by the edge's *source* vertex —
// so the out-degree skew of the graph lands on the sources — and each
// source inverts the edge, forwarding it keyed by the *destination*
// vertex to the workers, whose load follows the in-degree skew. The
// experiment shows PKG with local load estimation balances the workers
// even when the sources themselves receive highly uneven shares of the
// stream (i.e. PKG can be chained after key grouping).
package graphstream

import (
	"fmt"
	"sort"

	"pkgstream/internal/hash"
	"pkgstream/internal/metrics"
	"pkgstream/internal/route"
)

// Assignment selects how edges are divided among the source PEs.
type Assignment int

const (
	// UniformSources deals edges to sources round-robin.
	UniformSources Assignment = iota
	// KeyedSources key-groups edges onto sources by source vertex,
	// projecting the out-degree skew onto the sources (the paper's
	// robustness setting).
	KeyedSources
)

// String returns the assignment label used in Figure 4.
func (a Assignment) String() string {
	if a == KeyedSources {
		return "Skewed"
	}
	return "Uniform"
}

// Config parameterizes an in-degree aggregation run.
type Config struct {
	// Workers is the number of degree-counting PEIs.
	Workers int
	// Sources is the number of edge-inverting source PEIs.
	Sources int
	// Assignment selects uniform or skewed source assignment.
	Assignment Assignment
	// Seed drives hashing.
	Seed uint64
}

// InDegree is the running distributed in-degree computation: each worker
// holds partial in-degree counters for the destination vertices routed to
// it by per-source PKG partitioners with local load estimation.
type InDegree struct {
	cfg     Config
	parts   []*route.PKG
	views   []*metrics.Load
	workers []map[uint64]int64
	loads   *metrics.Load
	srcLoad *metrics.Load
	rr      int
	srcSeed uint64
	edges   int64
}

// New returns an empty in-degree computation. It panics on non-positive
// Workers or Sources.
func New(cfg Config) *InDegree {
	if cfg.Workers <= 0 || cfg.Sources <= 0 {
		panic("graphstream: Workers and Sources must be positive")
	}
	g := &InDegree{
		cfg:     cfg,
		parts:   make([]*route.PKG, cfg.Sources),
		views:   make([]*metrics.Load, cfg.Sources),
		workers: make([]map[uint64]int64, cfg.Workers),
		loads:   metrics.NewLoad(cfg.Workers),
		srcLoad: metrics.NewLoad(cfg.Sources),
		srcSeed: hash.Fmix64(cfg.Seed ^ 0x6a09e667f3bcc908),
	}
	partSeed := hash.Fmix64(cfg.Seed + 0xbb67ae8584caa73b)
	for s := range g.parts {
		g.views[s] = metrics.NewLoad(cfg.Workers)
		g.parts[s] = route.NewPKG(cfg.Workers, 2, partSeed, g.views[s])
	}
	for w := range g.workers {
		g.workers[w] = make(map[uint64]int64)
	}
	return g
}

// ProcessEdge routes one directed edge src→dst: the edge reaches a source
// PE (keyed by src under KeyedSources), is inverted, and its destination
// vertex is partially key grouped onto a worker that increments dst's
// in-degree.
func (g *InDegree) ProcessEdge(src, dst uint64) {
	var s int
	if g.cfg.Assignment == KeyedSources {
		s = int(hash.Mix64(src, g.srcSeed) % uint64(g.cfg.Sources))
	} else {
		s = g.rr
		g.rr++
		if g.rr == g.cfg.Sources {
			g.rr = 0
		}
	}
	g.srcLoad.Add(s)
	w := g.parts[s].Route(dst)
	g.views[s].Add(w)
	g.loads.Add(w)
	g.workers[w][dst]++
	g.edges++
}

// Degree returns the aggregated in-degree of vertex v, summing the ≤2
// partial counters its PKG candidates may hold.
func (g *InDegree) Degree(v uint64) int64 {
	cands := g.parts[0].Candidates(v)
	if cands[0] == cands[1] {
		return g.workers[cands[0]][v]
	}
	return g.workers[cands[0]][v] + g.workers[cands[1]][v]
}

// Edges returns the number of edges processed.
func (g *InDegree) Edges() int64 { return g.edges }

// WorkerImbalance returns max − avg of the worker loads — the metric of
// Figure 4.
func (g *InDegree) WorkerImbalance() float64 { return g.loads.Imbalance() }

// WorkerImbalanceFraction returns WorkerImbalance over the edge count.
func (g *InDegree) WorkerImbalanceFraction() float64 { return g.loads.ImbalanceFraction() }

// SourceImbalanceFraction returns the imbalance fraction *of the
// sources* — large under KeyedSources, ≈0 under UniformSources.
func (g *InDegree) SourceImbalanceFraction() float64 { return g.srcLoad.ImbalanceFraction() }

// VertexDegree is a vertex with its in-degree.
type VertexDegree struct {
	Vertex uint64
	Degree int64
}

// TopDegrees returns the k highest in-degree vertices (aggregated across
// partial counters) in decreasing order.
func (g *InDegree) TopDegrees(k int) []VertexDegree {
	if k <= 0 {
		return nil
	}
	total := make(map[uint64]int64)
	for _, m := range g.workers {
		for v, c := range m {
			total[v] += c
		}
	}
	out := make([]VertexDegree, 0, len(total))
	for v, c := range total {
		out = append(out, VertexDegree{Vertex: v, Degree: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree != out[j].Degree {
			return out[i].Degree > out[j].Degree
		}
		return out[i].Vertex < out[j].Vertex
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// CounterFootprint returns the distinct (vertex, worker) counter pairs.
func (g *InDegree) CounterFootprint() int {
	n := 0
	for _, m := range g.workers {
		n += len(m)
	}
	return n
}

// String summarizes the computation state.
func (g *InDegree) String() string {
	return fmt.Sprintf("InDegree(edges=%d, workers=%d, sources=%d, %s)",
		g.edges, g.cfg.Workers, g.cfg.Sources, g.cfg.Assignment)
}

package spdt

import (
	"fmt"

	"pkgstream/internal/metrics"
	"pkgstream/internal/rng"
	"pkgstream/internal/route"
)

// Strategy selects how training data is spread over the workers.
type Strategy int

// Parallelization strategies of §VI.B.
const (
	// ShuffleSamples sends whole samples round-robin: every worker may
	// hold histograms for every (leaf, feature, class) triplet — the
	// original Ben-Haim & Tom-Tov layout with W·D·C·L histograms and
	// W-way merges at the aggregator.
	ShuffleSamples Strategy = iota
	// PKGFeatures splits each sample into per-feature sub-messages
	// routed by partial key grouping on the feature id: each feature is
	// tracked by at most two workers, for 2·D·C·L histograms and 2-way
	// merges.
	PKGFeatures
	// KeyFeatures routes per-feature sub-messages by a single hash:
	// one worker per feature, but worker load inherits any feature skew.
	KeyFeatures
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case ShuffleSamples:
		return "shuffle-samples"
	case PKGFeatures:
		return "pkg-features"
	case KeyFeatures:
		return "key-features"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// workerState holds one worker's histograms: leaf id → (feature, class)
// slot → histogram.
type workerState map[int][]*Histogram

// Trainer drives the parallel streaming decision tree: a coordinator
// routes training data to W workers that build histograms over their
// sub-streams; every batchSize samples the aggregator merges the workers'
// histograms per leaf and attempts splits.
type Trainer struct {
	tree     *Tree
	strategy Strategy
	workers  []workerState
	counts   map[int][]int64 // leaf id → class counts (coordinator-side)

	part route.Router
	view *metrics.Load
	rr   int

	loads *metrics.Load

	batchSize int
	pending   int

	mergeInputs int64
	samples     int64
}

// NewTrainer returns a parallel trainer over w workers, syncing every
// batchSize samples.
func NewTrainer(params Params, w int, strategy Strategy, batchSize int, seed uint64) (*Trainer, error) {
	if w <= 0 {
		return nil, fmt.Errorf("spdt: NewTrainer needs w >= 1")
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("spdt: NewTrainer needs batchSize >= 1")
	}
	tree, err := New(params)
	if err != nil {
		return nil, err
	}
	tr := &Trainer{
		tree:      tree,
		strategy:  strategy,
		workers:   make([]workerState, w),
		counts:    map[int][]int64{},
		loads:     metrics.NewLoad(w),
		batchSize: batchSize,
	}
	for i := range tr.workers {
		tr.workers[i] = workerState{}
	}
	switch strategy {
	case ShuffleSamples:
		// round-robin over whole samples
	case PKGFeatures:
		tr.view = metrics.NewLoad(w)
		tr.part = route.NewPKG(w, 2, rng.SplitMix64(&seed), tr.view)
	case KeyFeatures:
		tr.part = route.NewKeyGrouping(w, rng.SplitMix64(&seed))
	default:
		return nil, fmt.Errorf("spdt: unknown strategy %v", strategy)
	}
	return tr, nil
}

// Tree returns the shared model.
func (tr *Trainer) Tree() *Tree { return tr.tree }

// slot returns the worker histogram for (leaf, feature, class), creating
// it on demand.
func (tr *Trainer) slot(w int, leaf *Node, feature, class int) *Histogram {
	p := tr.tree.params
	grid := tr.workers[w][leaf.id]
	if grid == nil {
		grid = make([]*Histogram, p.Features*p.Classes)
		tr.workers[w][leaf.id] = grid
	}
	i := feature*p.Classes + class
	if grid[i] == nil {
		grid[i] = NewHistogram(p.MaxBins)
	}
	return grid[i]
}

// Train incorporates one labeled sample; the model may grow on batch
// boundaries.
func (tr *Trainer) Train(x []float64, label int) {
	p := tr.tree.params
	if len(x) != p.Features {
		panic(fmt.Sprintf("spdt: sample has %d features, want %d", len(x), p.Features))
	}
	if label < 0 || label >= p.Classes {
		panic(fmt.Sprintf("spdt: label %d out of range", label))
	}
	leaf := tr.tree.RouteLeaf(x)
	cnt := tr.counts[leaf.id]
	if cnt == nil {
		cnt = make([]int64, p.Classes)
		tr.counts[leaf.id] = cnt
	}
	cnt[label]++
	leaf.class = argmaxI64(cnt)

	switch tr.strategy {
	case ShuffleSamples:
		w := tr.rr
		tr.rr++
		if tr.rr == len(tr.workers) {
			tr.rr = 0
		}
		tr.loads.AddN(w, int64(p.Features))
		for f, v := range x {
			tr.slot(w, leaf, f, label).Update(v)
		}
	default:
		for f, v := range x {
			w := tr.part.Route(uint64(f) + 1)
			if tr.view != nil {
				tr.view.Add(w)
			}
			tr.loads.Add(w)
			tr.slot(w, leaf, f, label).Update(v)
		}
	}

	tr.samples++
	tr.pending++
	if tr.pending >= tr.batchSize {
		tr.Sync()
	}
}

// Sync merges worker histograms per leaf and lets the tree attempt
// splits — the aggregator step. Worker state for split leaves is
// discarded (the fresh children restart their statistics).
func (tr *Trainer) Sync() {
	tr.pending = 0
	p := tr.tree.params
	for _, leaf := range tr.tree.Leaves() {
		cnt := tr.counts[leaf.id]
		if cnt == nil {
			continue
		}
		merged := make([][]*Histogram, p.Features)
		for f := 0; f < p.Features; f++ {
			merged[f] = make([]*Histogram, p.Classes)
			for c := 0; c < p.Classes; c++ {
				i := f*p.Classes + c
				var parts []*Histogram
				for _, ws := range tr.workers {
					if grid := ws[leaf.id]; grid != nil && grid[i] != nil {
						parts = append(parts, grid[i])
					}
				}
				tr.mergeInputs += int64(len(parts))
				merged[f][c] = MergeAll(p.MaxBins, parts...)
			}
		}
		id := leaf.id
		if tr.tree.TrySplit(leaf, merged, cnt) {
			delete(tr.counts, id)
			for _, ws := range tr.workers {
				delete(ws, id)
			}
		}
	}
}

// Predict returns the current model's prediction.
func (tr *Trainer) Predict(x []float64) int { return tr.tree.Predict(x) }

// HistogramCount returns the number of live histograms across all
// workers — W·D·C·L for shuffle, at most 2·D·C·L for PKG (§VI.B).
func (tr *Trainer) HistogramCount() int {
	n := 0
	for _, ws := range tr.workers {
		for _, grid := range ws {
			for _, h := range grid {
				if h != nil {
					n++
				}
			}
		}
	}
	return n
}

// MergeInputs returns the cumulative number of worker histograms the
// aggregator has merged — the aggregation cost PKG bounds at 2 per
// triplet.
func (tr *Trainer) MergeInputs() int64 { return tr.mergeInputs }

// WorkerLoads returns per-worker sub-message counts.
func (tr *Trainer) WorkerLoads() []int64 { return tr.loads.Snapshot() }

// Imbalance returns max − avg of the worker loads.
func (tr *Trainer) Imbalance() float64 { return tr.loads.Imbalance() }

// Samples returns the number of samples trained on.
func (tr *Trainer) Samples() int64 { return tr.samples }

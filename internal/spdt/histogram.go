// Package spdt implements the Streaming Parallel Decision Tree of
// Ben-Haim & Tom-Tov (JMLR 2010), the §VI.B application of the paper:
// workers build fixed-size approximate histograms over their sub-streams,
// an aggregator merges them per (leaf, feature, class) triplet and grows
// the tree by choosing split points from the merged histograms.
//
// The partitioning strategy determines the histogram footprint: with
// shuffle grouping every worker may hold histograms for every triplet
// (W·D·C·L histograms, and W-way merges); with partial key grouping on
// the feature of each sub-message a feature lives on at most two workers
// (2·D·C·L histograms and 2-way merges) — the memory and aggregation
// saving the paper claims.
package spdt

import (
	"fmt"
	"math"
	"sort"
)

// Bin is one histogram bin: a centroid P with mass M.
type Bin struct {
	P float64
	M float64
}

// Histogram is the fixed-size mergeable histogram of Ben-Haim & Tom-Tov:
// at most maxBins (centroid, mass) pairs; inserting or merging beyond
// that repeatedly fuses the two closest centroids (their Algorithm 1/2).
type Histogram struct {
	maxBins int
	bins    []Bin
}

// NewHistogram returns an empty histogram with the given bin budget.
// It panics if maxBins < 2.
func NewHistogram(maxBins int) *Histogram {
	if maxBins < 2 {
		panic("spdt: NewHistogram needs maxBins >= 2")
	}
	return &Histogram{maxBins: maxBins, bins: make([]Bin, 0, maxBins+1)}
}

// MaxBins returns the bin budget.
func (h *Histogram) MaxBins() int { return h.maxBins }

// Len returns the number of live bins.
func (h *Histogram) Len() int { return len(h.bins) }

// Count returns the total mass.
func (h *Histogram) Count() float64 {
	var c float64
	for _, b := range h.bins {
		c += b.M
	}
	return c
}

// Bins returns a copy of the bins in increasing centroid order.
func (h *Histogram) Bins() []Bin {
	out := make([]Bin, len(h.bins))
	copy(out, h.bins)
	return out
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram(h.maxBins)
	c.bins = append(c.bins, h.bins...)
	return c
}

// Update adds one point at p (the update procedure, Algorithm 1).
func (h *Histogram) Update(p float64) { h.UpdateW(p, 1) }

// UpdateW adds a point with weight w. It panics on non-finite p or
// non-positive w.
func (h *Histogram) UpdateW(p, w float64) {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		panic("spdt: UpdateW with non-finite point")
	}
	if w <= 0 {
		panic("spdt: UpdateW with non-positive weight")
	}
	h.insert(Bin{P: p, M: w})
	h.trim()
}

// insert places b keeping bins sorted, fusing with an existing bin at
// exactly the same centroid.
func (h *Histogram) insert(b Bin) {
	i := sort.Search(len(h.bins), func(i int) bool { return h.bins[i].P >= b.P })
	if i < len(h.bins) && h.bins[i].P == b.P {
		h.bins[i].M += b.M
		return
	}
	h.bins = append(h.bins, Bin{})
	copy(h.bins[i+1:], h.bins[i:])
	h.bins[i] = b
}

// trim fuses closest centroid pairs until the budget holds.
func (h *Histogram) trim() {
	for len(h.bins) > h.maxBins {
		best := 0
		bestGap := math.Inf(1)
		for i := 0; i+1 < len(h.bins); i++ {
			if gap := h.bins[i+1].P - h.bins[i].P; gap < bestGap {
				bestGap = gap
				best = i
			}
		}
		a, b := h.bins[best], h.bins[best+1]
		m := a.M + b.M
		h.bins[best] = Bin{P: (a.P*a.M + b.P*b.M) / m, M: m}
		h.bins = append(h.bins[:best+1], h.bins[best+2:]...)
	}
}

// Merge folds other into h (the merge procedure, Algorithm 2). The result
// keeps h's bin budget; other is unchanged.
func (h *Histogram) Merge(other *Histogram) {
	for _, b := range other.bins {
		h.insert(b)
	}
	h.trim()
}

// MergeAll merges several histograms into a fresh one with the given
// budget.
func MergeAll(maxBins int, hs ...*Histogram) *Histogram {
	out := NewHistogram(maxBins)
	for _, h := range hs {
		if h != nil {
			out.Merge(h)
		}
	}
	return out
}

// Sum estimates the number of points ≤ b (the sum procedure, Algorithm
// 3): full mass of bins left of the enclosing interval, half the
// enclosing bin, plus the trapezoidal share of the interval [p_i, b].
func (h *Histogram) Sum(b float64) float64 {
	n := len(h.bins)
	if n == 0 {
		return 0
	}
	if b < h.bins[0].P {
		return 0
	}
	if b >= h.bins[n-1].P {
		return h.Count()
	}
	// Find i with p_i <= b < p_{i+1}.
	i := sort.Search(n, func(j int) bool { return h.bins[j].P > b }) - 1
	pi, pj := h.bins[i], h.bins[i+1]
	frac := (b - pi.P) / (pj.P - pi.P)
	mb := pi.M + (pj.M-pi.M)*frac
	s := (pi.M + mb) / 2 * frac
	for j := 0; j < i; j++ {
		s += h.bins[j].M
	}
	return s + pi.M/2
}

// Uniform returns k−1 candidate points that divide the histogram's mass
// into k approximately equal parts (the uniform procedure, Algorithm 4).
// Duplicates are removed; the result is strictly increasing and may be
// shorter than k−1 for tiny histograms.
func (h *Histogram) Uniform(k int) []float64 {
	if k < 2 {
		panic("spdt: Uniform needs k >= 2")
	}
	n := len(h.bins)
	total := h.Count()
	if n == 0 || total == 0 {
		return nil
	}
	if n == 1 {
		return nil
	}
	// cum[i] = Sum(p_i) = mass strictly left of bin i plus half of bin i.
	cum := make([]float64, n)
	run := 0.0
	for i, b := range h.bins {
		cum[i] = run + b.M/2
		run += b.M
	}
	var out []float64
	for j := 1; j < k; j++ {
		s := float64(j) / float64(k) * total
		if s <= cum[0] {
			continue
		}
		if s >= cum[n-1] {
			continue
		}
		i := sort.Search(n, func(x int) bool { return cum[x] > s }) - 1
		d := s - cum[i]
		a := h.bins[i+1].M - h.bins[i].M
		var z float64
		if math.Abs(a) < 1e-12 {
			if h.bins[i].M > 0 {
				z = d / h.bins[i].M
			}
		} else {
			disc := h.bins[i].M*h.bins[i].M + 2*a*d
			if disc < 0 {
				disc = 0
			}
			z = (-h.bins[i].M + math.Sqrt(disc)) / a
		}
		if z < 0 {
			z = 0
		}
		if z > 1 {
			z = 1
		}
		u := h.bins[i].P + (h.bins[i+1].P-h.bins[i].P)*z
		if len(out) == 0 || u > out[len(out)-1] {
			out = append(out, u)
		}
	}
	return out
}

// String renders the histogram for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram(bins=%d/%d, count=%.0f)", len(h.bins), h.maxBins, h.Count())
}

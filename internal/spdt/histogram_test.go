package spdt

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pkgstream/internal/rng"
)

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(1) },
		func() { NewHistogram(4).UpdateW(1, 0) },
		func() { NewHistogram(4).UpdateW(math.NaN(), 1) },
		func() { NewHistogram(4).Uniform(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramExactUnderBudget(t *testing.T) {
	h := NewHistogram(10)
	for _, p := range []float64{5, 1, 3, 1} { // duplicate 1 fuses
		h.Update(p)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %v", h.Count())
	}
	bins := h.Bins()
	if bins[0].P != 1 || bins[0].M != 2 {
		t.Fatalf("bins = %+v", bins)
	}
	// Bins sorted.
	for i := 1; i < len(bins); i++ {
		if bins[i-1].P >= bins[i].P {
			t.Fatal("bins not strictly increasing")
		}
	}
}

func TestHistogramTrimPreservesMassAndMean(t *testing.T) {
	h := NewHistogram(8)
	src := rng.New(1)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := src.NormFloat64()
		sum += v
		h.Update(v)
	}
	if h.Len() > 8 {
		t.Fatalf("budget exceeded: %d bins", h.Len())
	}
	if math.Abs(h.Count()-n) > 1e-6 {
		t.Fatalf("mass not preserved: %v", h.Count())
	}
	// Centroid-weighted mean is preserved exactly by closest-pair fusion.
	var m float64
	for _, b := range h.Bins() {
		m += b.P * b.M
	}
	if math.Abs(m-sum) > 1e-6*n {
		t.Fatalf("mean drifted: %v vs %v", m/n, sum/n)
	}
}

func TestSumMatchesEmpiricalCDF(t *testing.T) {
	h := NewHistogram(64)
	src := rng.New(2)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.NormFloat64()
		h.Update(xs[i])
	}
	sort.Float64s(xs)
	for _, q := range []float64{-2, -1, -0.5, 0, 0.5, 1, 2} {
		got := h.Sum(q) / n
		want := float64(sort.SearchFloat64s(xs, q)) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Sum(%v)/n = %v, empirical CDF %v", q, got, want)
		}
	}
}

func TestSumEdgeCases(t *testing.T) {
	h := NewHistogram(4)
	if h.Sum(0) != 0 {
		t.Fatal("empty histogram Sum != 0")
	}
	h.Update(5)
	if h.Sum(4) != 0 {
		t.Fatal("Sum below min centroid != 0")
	}
	if h.Sum(5) != 1 || h.Sum(100) != 1 {
		t.Fatal("Sum at/above max centroid != Count")
	}
}

func TestSumMonotoneProperty(t *testing.T) {
	h := NewHistogram(16)
	src := rng.New(3)
	for i := 0; i < 2000; i++ {
		h.Update(src.NormFloat64() * 10)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return h.Sum(a) <= h.Sum(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAdditiveCount(t *testing.T) {
	a, b := NewHistogram(12), NewHistogram(12)
	src := rng.New(4)
	for i := 0; i < 3000; i++ {
		a.Update(src.NormFloat64())
		b.Update(src.NormFloat64() + 3)
	}
	ca, cb := a.Count(), b.Count()
	a.Merge(b)
	if math.Abs(a.Count()-(ca+cb)) > 1e-6 {
		t.Fatalf("merged count %v != %v", a.Count(), ca+cb)
	}
	if a.Len() > 12 {
		t.Fatalf("merge exceeded budget: %d bins", a.Len())
	}
	// b unchanged.
	if b.Count() != cb {
		t.Fatal("Merge mutated its argument")
	}
}

func TestMergeAllAndClone(t *testing.T) {
	a, b := NewHistogram(8), NewHistogram(8)
	a.Update(1)
	b.Update(2)
	m := MergeAll(8, a, nil, b)
	if m.Count() != 2 {
		t.Fatalf("MergeAll count %v", m.Count())
	}
	c := a.Clone()
	c.Update(9)
	if a.Count() != 1 {
		t.Fatal("Clone aliased storage")
	}
}

func TestMergedSumApproximatesCombinedCDF(t *testing.T) {
	// The mergeability property the whole SPDT aggregation relies on:
	// merging per-worker histograms approximates the histogram of the
	// union stream.
	whole := NewHistogram(32)
	parts := make([]*Histogram, 4)
	for i := range parts {
		parts[i] = NewHistogram(32)
	}
	src := rng.New(5)
	const n = 40000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = src.NormFloat64()
		whole.Update(xs[i])
		parts[i%4].Update(xs[i])
	}
	merged := MergeAll(32, parts...)
	sort.Float64s(xs)
	for _, q := range []float64{-1.5, -0.5, 0, 0.5, 1.5} {
		mergedCDF := merged.Sum(q) / n
		trueCDF := float64(sort.SearchFloat64s(xs, q)) / n
		if math.Abs(mergedCDF-trueCDF) > 0.025 {
			t.Errorf("merged Sum(%v)/n = %v, true CDF %v", q, mergedCDF, trueCDF)
		}
	}
}

func TestUniformSplitsBalanceMass(t *testing.T) {
	h := NewHistogram(64)
	src := rng.New(6)
	const n = 30000
	for i := 0; i < n; i++ {
		h.Update(src.Float64() * 100) // uniform [0, 100)
	}
	us := h.Uniform(4)
	if len(us) == 0 {
		t.Fatal("no candidates returned")
	}
	for i := 1; i < len(us); i++ {
		if us[i-1] >= us[i] {
			t.Fatal("candidates not strictly increasing")
		}
	}
	// Quartile candidates of uniform data should be near 25/50/75.
	want := []float64{25, 50, 75}
	if len(us) == 3 {
		for i, u := range us {
			if math.Abs(u-want[i]) > 5 {
				t.Errorf("candidate %d = %v, want ≈%v", i, u, want[i])
			}
		}
	}
	// Each candidate should split the mass near its quantile.
	for i, u := range us {
		frac := h.Sum(u) / h.Count()
		want := float64(i+1) / 4
		if math.Abs(frac-want) > 0.05 {
			t.Errorf("candidate %d at mass fraction %v, want ≈%v", i, frac, want)
		}
	}
}

func TestUniformDegenerateCases(t *testing.T) {
	h := NewHistogram(8)
	if got := h.Uniform(5); got != nil {
		t.Fatal("empty histogram should yield no candidates")
	}
	h.Update(3)
	if got := h.Uniform(5); got != nil {
		t.Fatal("single-bin histogram should yield no candidates")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(4)
	h.Update(1)
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkHistogramUpdate(b *testing.B) {
	h := NewHistogram(32)
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Update(src.NormFloat64())
	}
}

func BenchmarkHistogramMerge(b *testing.B) {
	src := rng.New(1)
	a, c := NewHistogram(32), NewHistogram(32)
	for i := 0; i < 1000; i++ {
		a.Update(src.NormFloat64())
		c.Update(src.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Clone().Merge(c)
	}
}

package spdt

import (
	"testing"
)

func TestTreeParamsValidation(t *testing.T) {
	bad := []Params{
		{Features: 0, Classes: 2},
		{Features: 2, Classes: 1},
		{Features: 2, Classes: 2, MaxBins: 1},
		{Features: 2, Classes: 2, Candidates: 1},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	tr, err := New(Params{Features: 3, Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Params()
	if p.MaxBins != 32 || p.Candidates != 10 || p.MinLeafSamples != 200 || p.MaxDepth != 8 {
		t.Fatalf("defaults not applied: %+v", p)
	}
}

func TestTreeUpdatePanics(t *testing.T) {
	tr, _ := New(Params{Features: 2, Classes: 2})
	for _, f := range []func(){
		func() { tr.Update([]float64{1}, 0) },
		func() { tr.Update([]float64{1, 2}, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSequentialTreeLearnsThreshold(t *testing.T) {
	gen := NewDataGen(4, 2, 1, 3, 1)
	tr, err := New(Params{Features: 4, Classes: 2, MinLeafSamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := gen.Batch(6000)
	for i := range xs {
		tr.Update(xs[i], ys[i])
	}
	if tr.Splits() == 0 {
		t.Fatal("tree never split")
	}
	tx, ty := gen.Batch(2000)
	correct := 0
	for i := range tx {
		if tr.Predict(tx[i]) == ty[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tx)); acc < 0.9 {
		t.Fatalf("sequential accuracy %v < 0.9 (splits=%d)", acc, tr.Splits())
	}
	// The first split should be on an informative feature near the
	// decision boundary (mean shift 3 → boundary ≈ 1.5).
	root := tr.root
	if root.leaf {
		t.Fatal("root still leaf")
	}
	if root.feature != 0 {
		t.Errorf("first split on feature %d, want 0 (the informative one)", root.feature)
	}
	if root.threshold < 0.5 || root.threshold > 2.5 {
		t.Errorf("first threshold %v, want ≈1.5", root.threshold)
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	gen := NewDataGen(3, 2, 3, 2, 2)
	tr, _ := New(Params{Features: 3, Classes: 2, MinLeafSamples: 50, MaxDepth: 2})
	xs, ys := gen.Batch(20000)
	for i := range xs {
		tr.Update(xs[i], ys[i])
	}
	if d := tr.Depth(); d > 2 {
		t.Fatalf("depth %d exceeds MaxDepth 2", d)
	}
}

func TestTreeStructureConsistency(t *testing.T) {
	gen := NewDataGen(3, 3, 2, 3, 3)
	tr, _ := New(Params{Features: 3, Classes: 3, MinLeafSamples: 100})
	xs, ys := gen.Batch(5000)
	for i := range xs {
		tr.Update(xs[i], ys[i])
	}
	// nodes = 1 + 2·splits; leaves = splits + 1.
	if tr.Nodes() != 1+2*tr.Splits() {
		t.Fatalf("nodes %d != 1 + 2·splits %d", tr.Nodes(), tr.Splits())
	}
	if got := len(tr.Leaves()); got != tr.Splits()+1 {
		t.Fatalf("leaves %d != splits+1 %d", got, tr.Splits()+1)
	}
	// Every leaf is reachable and classes are in range.
	for _, l := range tr.Leaves() {
		if !l.Leaf() {
			t.Fatal("Leaves returned non-leaf")
		}
		if l.class < 0 || l.class >= 3 {
			t.Fatalf("leaf class %d out of range", l.class)
		}
	}
}

func TestPureLeafNeverSplits(t *testing.T) {
	tr, _ := New(Params{Features: 1, Classes: 2, MinLeafSamples: 10})
	for i := 0; i < 1000; i++ {
		tr.Update([]float64{float64(i % 7)}, 0) // single class: entropy 0
	}
	if tr.Splits() != 0 {
		t.Fatalf("pure stream caused %d splits", tr.Splits())
	}
}

func TestParallelTrainerValidation(t *testing.T) {
	p := Params{Features: 2, Classes: 2}
	if _, err := NewTrainer(p, 0, ShuffleSamples, 10, 1); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := NewTrainer(p, 2, ShuffleSamples, 0, 1); err == nil {
		t.Error("batch=0 accepted")
	}
	if _, err := NewTrainer(p, 2, Strategy(99), 10, 1); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := NewTrainer(Params{Features: 0, Classes: 2}, 2, ShuffleSamples, 10, 1); err == nil {
		t.Error("bad params accepted")
	}
}

func TestParallelMatchesSequentialAccuracy(t *testing.T) {
	// Ben-Haim & Tom-Tov's empirical claim, reproduced at small scale:
	// the parallel tree's accuracy tracks the sequential tree's.
	gen := NewDataGen(4, 2, 1, 3, 7)
	xs, ys := gen.Batch(6000)
	tx, ty := gen.Batch(2000)

	seq, _ := New(Params{Features: 4, Classes: 2, MinLeafSamples: 300})
	for i := range xs {
		seq.Update(xs[i], ys[i])
	}
	acc := func(pred func([]float64) int) float64 {
		c := 0
		for i := range tx {
			if pred(tx[i]) == ty[i] {
				c++
			}
		}
		return float64(c) / float64(len(tx))
	}
	seqAcc := acc(seq.Predict)

	for _, strat := range []Strategy{ShuffleSamples, PKGFeatures, KeyFeatures} {
		par, err := NewTrainer(Params{Features: 4, Classes: 2, MinLeafSamples: 300}, 6, strat, 500, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			par.Train(xs[i], ys[i])
		}
		parAcc := acc(par.Predict)
		if parAcc < seqAcc-0.05 {
			t.Errorf("%v: parallel accuracy %v well below sequential %v", strat, parAcc, seqAcc)
		}
		if par.Tree().Splits() == 0 {
			t.Errorf("%v: parallel tree never split", strat)
		}
		if par.Samples() != int64(len(xs)) {
			t.Errorf("%v: samples %d", strat, par.Samples())
		}
	}
}

func TestHistogramFootprintOrdering(t *testing.T) {
	// §VI.B: shuffle keeps W·D·C·L histograms; PKG on features keeps at
	// most 2·D·C·L, independent of W.
	const W = 8
	gen := NewDataGen(6, 2, 2, 3, 13)
	xs, ys := gen.Batch(4000)
	run := func(strat Strategy) *Trainer {
		tr, err := NewTrainer(Params{Features: 6, Classes: 2, MinLeafSamples: 1 << 30}, W, strat, 1<<30, 17)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			tr.Train(xs[i], ys[i])
		}
		return tr
	}
	sg := run(ShuffleSamples)
	pkg := run(PKGFeatures)
	kg := run(KeyFeatures)

	// One leaf (splitting disabled): D·C = 12 triplet slots.
	dcl := 6 * 2
	if sg.HistogramCount() != W*dcl {
		t.Errorf("shuffle footprint %d, want %d (W·D·C·L)", sg.HistogramCount(), W*dcl)
	}
	if pkg.HistogramCount() > 2*dcl {
		t.Errorf("PKG footprint %d exceeds 2·D·C·L = %d", pkg.HistogramCount(), 2*dcl)
	}
	if kg.HistogramCount() > dcl {
		t.Errorf("KG footprint %d exceeds D·C·L = %d", kg.HistogramCount(), dcl)
	}
	if !(kg.HistogramCount() <= pkg.HistogramCount() && pkg.HistogramCount() < sg.HistogramCount()) {
		t.Errorf("footprint ordering violated: %d %d %d",
			kg.HistogramCount(), pkg.HistogramCount(), sg.HistogramCount())
	}
}

func TestMergeInputsOrdering(t *testing.T) {
	// Aggregation cost: the aggregator merges ≤2 histograms per triplet
	// under PKG vs up to W under shuffle.
	const W = 8
	gen := NewDataGen(4, 2, 1, 3, 19)
	xs, ys := gen.Batch(3000)
	run := func(strat Strategy) *Trainer {
		tr, err := NewTrainer(Params{Features: 4, Classes: 2, MinLeafSamples: 500}, W, strat, 1000, 23)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			tr.Train(xs[i], ys[i])
		}
		return tr
	}
	sg, pkg := run(ShuffleSamples), run(PKGFeatures)
	if pkg.MergeInputs() >= sg.MergeInputs() {
		t.Errorf("PKG merge inputs %d not below shuffle %d", pkg.MergeInputs(), sg.MergeInputs())
	}
}

func TestParallelLoadBalance(t *testing.T) {
	// With skewed *feature* messages (more informative features appear in
	// every sample equally here, so loads are near-uniform), PKG must
	// not be worse than KG on worker load.
	gen := NewDataGen(8, 2, 2, 3, 29)
	xs, ys := gen.Batch(2000)
	run := func(strat Strategy) *Trainer {
		tr, _ := NewTrainer(Params{Features: 8, Classes: 2, MinLeafSamples: 1 << 30}, 5, strat, 1<<30, 31)
		for i := range xs {
			tr.Train(xs[i], ys[i])
		}
		return tr
	}
	pkg, kg := run(PKGFeatures), run(KeyFeatures)
	if pkg.Imbalance() > kg.Imbalance()+1 {
		t.Errorf("PKG imbalance %v above KG %v", pkg.Imbalance(), kg.Imbalance())
	}
	var total int64
	for _, l := range pkg.WorkerLoads() {
		total += l
	}
	if total != int64(len(xs)*8) {
		t.Errorf("loads sum to %d, want %d", total, len(xs)*8)
	}
}

func TestParallelTrainPanics(t *testing.T) {
	tr, _ := NewTrainer(Params{Features: 2, Classes: 2}, 2, ShuffleSamples, 100, 1)
	for _, f := range []func(){
		func() { tr.Train([]float64{1}, 0) },
		func() { tr.Train([]float64{1, 2}, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkSequentialTreeUpdate(b *testing.B) {
	gen := NewDataGen(8, 2, 2, 3, 1)
	tr, _ := New(Params{Features: 8, Classes: 2, MinLeafSamples: 1000})
	xs, ys := gen.Batch(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % 1024
		tr.Update(xs[j], ys[j])
	}
}

package spdt

import "pkgstream/internal/rng"

// DataGen produces synthetic Gaussian classification data: each class
// shifts the mean of the first `informative` features by `shift`; the
// remaining features are pure noise. A depth-1 tree on an informative
// feature already separates the classes, so streaming trees of modest
// depth reach high accuracy — a convenient testbed for the §VI.B
// algorithm.
type DataGen struct {
	features    int
	classes     int
	informative int
	shift       float64
	src         *rng.Source
}

// NewDataGen returns a deterministic generator. It panics on non-positive
// dimensions or informative > features.
func NewDataGen(features, classes, informative int, shift float64, seed uint64) *DataGen {
	if features <= 0 || classes <= 1 || informative <= 0 || informative > features {
		panic("spdt: NewDataGen with invalid dimensions")
	}
	return &DataGen{
		features:    features,
		classes:     classes,
		informative: informative,
		shift:       shift,
		src:         rng.New(seed),
	}
}

// Next returns one labeled sample.
func (g *DataGen) Next() ([]float64, int) {
	class := g.src.Intn(g.classes)
	x := make([]float64, g.features)
	for f := range x {
		x[f] = g.src.NormFloat64()
		if f < g.informative {
			x[f] += g.shift * float64(class)
		}
	}
	return x, class
}

// Batch returns n samples as parallel slices.
func (g *DataGen) Batch(n int) ([][]float64, []int) {
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		xs[i], ys[i] = g.Next()
	}
	return xs, ys
}

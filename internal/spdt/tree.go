package spdt

import (
	"fmt"
	"math"
)

// Params configures a streaming decision tree.
type Params struct {
	// Features is the dimensionality of the input vectors.
	Features int
	// Classes is the number of class labels.
	Classes int
	// MaxBins is the per-histogram bin budget B (default 32).
	MaxBins int
	// Candidates is the number of equal-mass split candidates B̃ probed
	// per feature (default 10).
	Candidates int
	// MinLeafSamples is the number of samples a leaf must absorb before
	// a split is attempted (default 200).
	MinLeafSamples int
	// MaxDepth bounds the tree depth (default 8).
	MaxDepth int
	// MinGain is the smallest admissible entropy gain (default 1e-3).
	MinGain float64
}

func (p Params) withDefaults() (Params, error) {
	if p.Features <= 0 || p.Classes <= 1 {
		return p, fmt.Errorf("spdt: need Features >= 1 and Classes >= 2")
	}
	if p.MaxBins == 0 {
		p.MaxBins = 32
	}
	if p.MaxBins < 2 {
		return p, fmt.Errorf("spdt: MaxBins must be >= 2")
	}
	if p.Candidates == 0 {
		p.Candidates = 10
	}
	if p.Candidates < 2 {
		return p, fmt.Errorf("spdt: Candidates must be >= 2")
	}
	if p.MinLeafSamples == 0 {
		p.MinLeafSamples = 200
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 8
	}
	if p.MinGain == 0 {
		p.MinGain = 1e-3
	}
	return p, nil
}

// Node is one tree node. Leaves carry class statistics; internal nodes
// carry a (feature, threshold) test.
type Node struct {
	id    int
	depth int

	leaf  bool
	class int

	counts []int64
	hists  [][]*Histogram // [feature][class], sequential training only

	feature   int
	threshold float64
	left      *Node
	right     *Node
}

// ID returns the node's stable identifier (used by parallel workers to
// key their per-leaf histograms).
func (n *Node) ID() int { return n.id }

// Leaf reports whether the node is a leaf.
func (n *Node) Leaf() bool { return n.leaf }

// Tree is a streaming decision tree grown from approximate histograms.
// Use New + Update for the sequential algorithm; the parallel trainer in
// trainer.go drives the same split machinery from merged worker
// histograms.
type Tree struct {
	params Params
	root   *Node
	nextID int
	nodes  int
	splits int
}

// New returns a single-leaf tree. The returned error reports invalid
// Params.
func New(params Params) (*Tree, error) {
	p, err := params.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{params: p}
	t.root = t.newLeaf(0, 0)
	return t, nil
}

// Params returns the effective parameters (defaults applied).
func (t *Tree) Params() Params { return t.params }

func (t *Tree) newLeaf(depth, class int) *Node {
	n := &Node{
		id:     t.nextID,
		depth:  depth,
		leaf:   true,
		class:  class,
		counts: make([]int64, t.params.Classes),
	}
	t.nextID++
	t.nodes++
	return n
}

// ensureHists lazily allocates a leaf's histogram grid (sequential mode).
func (t *Tree) ensureHists(n *Node) {
	if n.hists != nil {
		return
	}
	n.hists = make([][]*Histogram, t.params.Features)
	for f := range n.hists {
		n.hists[f] = make([]*Histogram, t.params.Classes)
		for c := range n.hists[f] {
			n.hists[f][c] = NewHistogram(t.params.MaxBins)
		}
	}
}

// RouteLeaf walks x down to its leaf.
func (t *Tree) RouteLeaf(x []float64) *Node {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// Predict returns the class of the leaf x lands in.
func (t *Tree) Predict(x []float64) int { return t.RouteLeaf(x).class }

// Update incorporates one labeled sample (sequential streaming: the
// compress–then–grow loop of Ben-Haim & Tom-Tov with W = 1).
func (t *Tree) Update(x []float64, label int) {
	if len(x) != t.params.Features {
		panic(fmt.Sprintf("spdt: sample has %d features, want %d", len(x), t.params.Features))
	}
	if label < 0 || label >= t.params.Classes {
		panic(fmt.Sprintf("spdt: label %d out of range", label))
	}
	n := t.RouteLeaf(x)
	t.ensureHists(n)
	n.counts[label]++
	for f, v := range x {
		n.hists[f][label].Update(v)
	}
	var total int64
	for _, c := range n.counts {
		total += c
	}
	n.class = argmaxI64(n.counts)
	if total >= int64(t.params.MinLeafSamples) {
		t.TrySplit(n, n.hists, n.counts)
	}
}

// Nodes returns the total number of nodes.
func (t *Tree) Nodes() int { return t.nodes }

// Splits returns how many splits have been performed.
func (t *Tree) Splits() int { return t.splits }

// Leaves returns the current leaves.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.leaf {
			out = append(out, n)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if n.leaf {
			return n.depth
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l
		}
		return r
	}
	return walk(t.root)
}

// TrySplit attempts to split leaf n given per-(feature, class) histograms
// and per-class sample counts (which may come from the node itself in
// sequential mode, or from merged worker histograms in parallel mode).
// It returns true if the leaf was split.
func (t *Tree) TrySplit(n *Node, hists [][]*Histogram, counts []int64) bool {
	if !n.leaf || n.depth >= t.params.MaxDepth {
		return false
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total < int64(t.params.MinLeafSamples) {
		return false
	}
	parentH := entropyI64(counts, total)
	if parentH == 0 {
		return false // pure leaf
	}

	bestGain := 0.0
	bestFeature := -1
	bestThreshold := 0.0
	var bestLeft, bestRight []float64

	for f := 0; f < t.params.Features; f++ {
		merged := MergeAll(t.params.MaxBins, hists[f]...)
		if merged.Count() == 0 {
			continue
		}
		for _, u := range merged.Uniform(t.params.Candidates) {
			left := make([]float64, t.params.Classes)
			right := make([]float64, t.params.Classes)
			var nl, nr float64
			for c := 0; c < t.params.Classes; c++ {
				h := hists[f][c]
				if h == nil {
					continue
				}
				l := h.Sum(u)
				r := h.Count() - l
				if l < 0 {
					l = 0
				}
				if r < 0 {
					r = 0
				}
				left[c], right[c] = l, r
				nl += l
				nr += r
			}
			if nl <= 0 || nr <= 0 {
				continue
			}
			gain := parentH - (nl*entropyF(left, nl)+nr*entropyF(right, nr))/(nl+nr)
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = u
				bestLeft, bestRight = left, right
			}
		}
	}
	if bestFeature < 0 || bestGain < t.params.MinGain {
		return false
	}

	n.leaf = false
	n.feature = bestFeature
	n.threshold = bestThreshold
	n.hists = nil
	n.counts = nil
	n.left = t.newLeaf(n.depth+1, argmaxF(bestLeft))
	n.right = t.newLeaf(n.depth+1, argmaxF(bestRight))
	t.splits++
	return true
}

// entropyI64 is the Shannon entropy of integer class counts.
func entropyI64(counts []int64, total int64) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// entropyF is the Shannon entropy of fractional class masses.
func entropyF(masses []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, m := range masses {
		if m <= 0 {
			continue
		}
		p := m / total
		h -= p * math.Log2(p)
	}
	return h
}

func argmaxI64(xs []int64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func argmaxF(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

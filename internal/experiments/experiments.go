// Package experiments defines one reproduction per table and figure of
// the paper's evaluation (§V), plus the ablations suggested by its
// analysis. Each experiment returns formatted text tables whose rows
// mirror what the paper reports; cmd/pkgbench prints them and
// bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
)

// Scale bounds the cost of a reproduction run. The paper's datasets
// reach 1.2G messages; scaled runs preserve every distribution *shape*
// (p1 is kept exactly, see dataset.WithCap) so the qualitative results
// are unchanged while the suite regenerates in seconds to minutes.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// MessageCap bounds each dataset's stream length.
	MessageCap int64
	// ClusterSpecCap bounds the stream feeding the cluster simulator.
	ClusterSpecCap int64
	// ClusterDuration is the simulated seconds per Figure 5(a) point.
	ClusterDuration float64
	// Fig5bPeriods lists the aggregation periods T (seconds) swept in
	// Figure 5(b).
	Fig5bPeriods []float64
}

// The three standard scales.
var (
	// Quick regenerates everything in roughly half a minute.
	Quick = Scale{
		Name:            "quick",
		MessageCap:      200_000,
		ClusterSpecCap:  300_000,
		ClusterDuration: 10,
		Fig5bPeriods:    []float64{10, 30, 60},
	}
	// Default favors fidelity; the full suite takes a few minutes.
	Default = Scale{
		Name:            "default",
		MessageCap:      2_000_000,
		ClusterSpecCap:  2_000_000,
		ClusterDuration: 30,
		Fig5bPeriods:    []float64{10, 30, 60, 300, 600},
	}
	// Full runs streams at up to the Wikipedia dataset's true size
	// (22M messages); the Twitter stream is still capped there, since
	// 1.2G messages adds nothing but hours (p1 and K govern the result).
	Full = Scale{
		Name:            "full",
		MessageCap:      22_000_000,
		ClusterSpecCap:  22_000_000,
		ClusterDuration: 60,
		Fig5bPeriods:    []float64{10, 30, 60, 300, 600},
	}
)

// ScaleByName resolves quick/default/full.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "default", "":
		return Default, nil
	case "full":
		return Full, nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (quick|default|full)", name)
	}
}

// Table is a formatted experiment result.
type Table struct {
	// Title names the table/figure being reproduced.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells (ragged rows are padded on render).
	Rows [][]string
	// Notes are printed under the table (paper reference values, caveats).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	writeRow := func(cells []string) {
		for i := range t.Columns {
			if i > 0 {
				b.WriteString("  ")
			}
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Experiment is a named, runnable reproduction.
type Experiment struct {
	// Name is the CLI identifier (e.g. "table2", "fig5a").
	Name string
	// Paper identifies the table/figure reproduced.
	Paper string
	// Description says what is being shown.
	Description string
	// Run executes the reproduction.
	Run func(sc Scale, seed uint64) []Table
}

// Registry lists every reproduction in paper order, followed by the
// ablations.
var Registry = []Experiment{
	{"table1", "Table I", "dataset summary: messages, keys, p1", Table1},
	{"table2", "Table II", "average imbalance: PKG vs Off/On-Greedy, PoTC, hashing on WP and TW", Table2},
	{"fig2", "Figure 2", "imbalance fraction vs workers for H, G, L5-L20 on five datasets", Fig2},
	{"fig3", "Figure 3", "imbalance fraction through time for G, L5, L5P1", Fig3},
	{"fig4", "Figure 4", "uniform vs skewed source assignment on graph streams", Fig4},
	{"fig5a", "Figure 5(a)", "cluster throughput and latency vs CPU delay for PKG, SG, KG", Fig5a},
	{"fig5b", "Figure 5(b)", "cluster throughput vs memory across aggregation periods", Fig5b},
	{"jaccard", "§V Q2", "routing agreement between global oracle and local estimation", JaccardGL},
	{"memory", "§V Q4", "counter footprint of KG, PKG, SG on WP", Memory},
	{"ablation-d", "§III/§IV", "Greedy-d imbalance for d = 1..5 (two choices capture the gain)", AblationD},
	{"ablation-probe", "§V Q2", "probing period sweep (probing does not help)", AblationProbe},
	{"theory", "Theorem 4.1", "I(m)/(m/n) for d = 1 vs d = 2 under uniform keys, and used-bin fraction", Theory},
	{"window-t", "§V Q4 / Figure 5(b)", "aggregation period T on the live engine: memory vs throughput, cross-checked against the cluster model", WindowT},
	{"hotkey", "ICDE'16 follow-up", "D-Choices and W-Choices vs PKG-2 across skew z and scale W, cross-checked on the live engine", Hotkey},
	{"pipeline", "§V distributed", "windowed wordcount: in-process vs remote-final vs fully distributed spout→(TCP)→partial→(TCP)→final (exact-count gates; set PKGNODE_ADDRS and/or PKGNODE_PARTIAL_ADDRS+PKGNODE_FINAL_ADDRS for real processes)", Pipeline},
	{"pipeline-slow", "§V heterogeneous", "fully distributed pipeline with one slowed partial node: static edge vs adaptive (AIMD windows + service-rate-weighted routing), exact-count gated", PipelineSlow},
	{"rebalance", "§VIII", "key grouping with Flux-style migration vs PKG (costs and atomicity floor)", Rebalance},
	{"vi-apps", "§VI", "application-level claims: probes, footprints, merges, accuracy under KG/SG/PKG", Applications},
}

// ByName resolves an experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range Registry {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// formatting helpers shared across experiments.

func sci(v float64) string {
	if v == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", v)
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func ms(v float64) string { return fmt.Sprintf("%.1f", v*1000) }

package experiments

import (
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pkgstream/internal/engine"
	"pkgstream/internal/trace"
	"pkgstream/internal/window"
)

// tiny is a minimal scale so the whole registry runs in seconds.
var tiny = Scale{
	Name:            "tiny",
	MessageCap:      60_000,
	ClusterSpecCap:  100_000,
	ClusterDuration: 5,
	Fig5bPeriods:    []float64{2, 5},
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "full", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("nope"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRegistryResolvesAndIsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		got, err := ByName(e.Name)
		if err != nil || got.Name != e.Name {
			t.Errorf("ByName(%q) failed: %v", e.Name, err)
		}
		if e.Run == nil || e.Description == "" || e.Paper == "" {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"a", "bb"}, Notes: []string{"n"}}
	tb.AddRow("1", "2")
	tb.AddRow("longer") // ragged row padded
	s := tb.String()
	for _, frag := range []string{"== T ==", "a", "bb", "longer", "note: n"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q:\n%s", frag, s)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	quoted := Table{Columns: []string{`with"quote`, "with,comma"}}
	qcsv := quoted.CSV()
	if !strings.Contains(qcsv, `"with""quote"`) || !strings.Contains(qcsv, `"with,comma"`) {
		t.Errorf("CSV escaping wrong: %q", qcsv)
	}
}

// cell parses a table cell as float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range Registry {
		tables := e.Run(tiny, 1)
		if len(tables) == 0 {
			t.Errorf("%s produced no tables", e.Name)
			continue
		}
		for _, tb := range tables {
			if tb.Title == "" || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
				t.Errorf("%s produced empty table %+v", e.Name, tb.Title)
			}
			if s := tb.String(); len(s) == 0 {
				t.Errorf("%s renders empty", e.Name)
			}
		}
	}
}

func TestTable1MatchesPaperP1(t *testing.T) {
	tb := Table1(tiny, 2)[0]
	if len(tb.Rows) != 8 {
		t.Fatalf("Table I has %d rows, want 8", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		got := cell(t, row[4])
		want := cell(t, row[5])
		if want == 0 {
			t.Fatalf("paper p1 zero in row %v", row)
		}
		if d := (got - want) / want; d > 0.15 || d < -0.15 {
			t.Errorf("%s: measured p1 %v deviates from paper %v", row[1], got, want)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tables := Table2(tiny, 3)
	if len(tables) != 2 {
		t.Fatalf("Table II should cover WP and TW")
	}
	wp := tables[0]
	byName := map[string][]string{}
	for _, row := range wp.Rows {
		byName[row[0]] = row[1:]
	}
	// At W=5 (column 0): hashing orders of magnitude above PKG.
	pkg := cell(t, byName["PKG"][0])
	hash := cell(t, byName["Hashing"][0])
	if pkg*50 > hash {
		t.Errorf("W=5: PKG %v not ≪ Hashing %v", pkg, hash)
	}
	// At W=100 (past 2/p1 ≈ 21 for WP) everything is large and similar.
	pkg100 := cell(t, byName["PKG"][3])
	hash100 := cell(t, byName["Hashing"][3])
	if pkg100*20 < hash100 {
		t.Errorf("W=100: PKG %v should approach Hashing %v past the p1 limit", pkg100, hash100)
	}
}

func TestFig2Shape(t *testing.T) {
	tables := Fig2(tiny, 4)
	if len(tables) != 5 {
		t.Fatalf("Figure 2 should cover 5 datasets, got %d", len(tables))
	}
	for _, tb := range tables {
		byName := map[string][]string{}
		for _, row := range tb.Rows {
			byName[row[0]] = row[1:]
		}
		// W=10 column: H ≫ G, and L5..L20 within 10x of G.
		h := cell(t, byName["H"][1])
		g := cell(t, byName["G"][1])
		if g*10 > h {
			t.Errorf("%s: G %v not well below H %v at W=10", tb.Title, g, h)
		}
		for _, l := range []string{"L5", "L10", "L15", "L20"} {
			lv := cell(t, byName[l][1])
			if lv > 10*g+1e-3 {
				t.Errorf("%s: %s=%v more than an order above G=%v", tb.Title, l, lv, g)
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tb := Fig4(tiny, 5)[0]
	// Pair uniform/skewed rows and compare each W column.
	for i := 0; i+1 < len(tb.Rows); i += 2 {
		uni, skew := tb.Rows[i], tb.Rows[i+1]
		if uni[1] != "Uniform" || skew[1] != "Skewed" {
			t.Fatalf("row pairing broken: %v / %v", uni, skew)
		}
		for c := 3; c < len(uni); c++ {
			u, s := cell(t, uni[c]), cell(t, skew[c])
			if s > 10*u+1e-3 {
				t.Errorf("%s %s col %d: skewed %v ≫ uniform %v", uni[0], uni[2], c, s, u)
			}
		}
	}
}

func TestFig5aShape(t *testing.T) {
	tb := Fig5a(tiny, 6)[0]
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	pkg0, kg0 := cell(t, first[1]), cell(t, first[3])
	pkg1, kg1 := cell(t, last[1]), cell(t, last[3])
	if kg1 >= pkg1 {
		t.Errorf("at 1ms KG %v should be below PKG %v", kg1, pkg1)
	}
	kgDrop := 1 - kg1/kg0
	pkgDrop := 1 - pkg1/pkg0
	if kgDrop <= pkgDrop {
		t.Errorf("KG decline %v should exceed PKG decline %v", kgDrop, pkgDrop)
	}
	// PKG ≈ SG at every delay.
	for _, row := range tb.Rows {
		p, s := cell(t, row[1]), cell(t, row[2])
		if d := (p - s) / s; d > 0.1 || d < -0.1 {
			t.Errorf("delay %s: PKG %v and SG %v diverge", row[0], p, s)
		}
	}
}

func TestFig5bShape(t *testing.T) {
	tb := Fig5b(tiny, 7)[0]
	// Row 0 is the KG reference; then (PKG, SG) pairs per period.
	if tb.Rows[0][1] != "KG(ref)" {
		t.Fatalf("first row should be the KG reference: %v", tb.Rows[0])
	}
	for i := 1; i+1 < len(tb.Rows); i += 2 {
		pkg, sg := tb.Rows[i], tb.Rows[i+1]
		if pkg[1] != "PKG" || sg[1] != "SG" {
			t.Fatalf("row pairing broken: %v / %v", pkg, sg)
		}
		if cell(t, pkg[2]) <= cell(t, sg[2]) {
			t.Errorf("T=%s: PKG throughput %s not above SG %s", pkg[0], pkg[2], sg[2])
		}
		if cell(t, pkg[3]) >= cell(t, sg[3]) {
			t.Errorf("T=%s: PKG memory %s not below SG %s", pkg[0], pkg[3], sg[3])
		}
	}
}

func TestJaccardShape(t *testing.T) {
	tb := JaccardGL(tiny, 8)[0]
	j := cell(t, tb.Rows[0][1])
	if j <= 0.05 || j >= 0.95 {
		t.Errorf("Jaccard %v should show partial (not total) agreement", j)
	}
}

func TestMemoryShape(t *testing.T) {
	tb := Memory(tiny, 9)[0]
	kg := cell(t, tb.Rows[0][1])
	pkg := cell(t, tb.Rows[1][1])
	sg := cell(t, tb.Rows[2][1])
	if !(kg <= pkg && pkg < sg) {
		t.Errorf("memory ordering KG ≤ PKG < SG violated: %v %v %v", kg, pkg, sg)
	}
	if pkg > 2*kg {
		t.Errorf("PKG counters %v above 2×KG %v", pkg, kg)
	}
}

func TestAblationDShape(t *testing.T) {
	tb := AblationD(tiny, 10)[0]
	// Column W=10 (index 2): d=1 far above d=2; d=5 no worse than 3x d=2.
	d1 := cell(t, tb.Rows[0][2])
	d2 := cell(t, tb.Rows[1][2])
	d5 := cell(t, tb.Rows[4][2])
	if d2*5 > d1 {
		t.Errorf("d=2 (%v) not well below d=1 (%v)", d2, d1)
	}
	if d5 > 3*d2+1e-4 {
		t.Errorf("d=5 (%v) worse than d=2 (%v)", d5, d2)
	}
}

func TestRebalanceShape(t *testing.T) {
	tb := Rebalance(tiny, 12)[0]
	// Rows come in triples (Hashing, Rebalance, PKG) per W.
	for i := 0; i+2 < len(tb.Rows); i += 3 {
		h, r, p := tb.Rows[i], tb.Rows[i+1], tb.Rows[i+2]
		if h[1] != "Hashing" || r[1] != "Rebalance" || p[1] != "PKG" {
			t.Fatalf("row grouping broken: %v %v %v", h[1], r[1], p[1])
		}
		hImb, rImb, pImb := cell(t, h[2]), cell(t, r[2]), cell(t, p[2])
		if rImb >= hImb {
			t.Errorf("W=%s: rebalancing %v not below hashing %v", h[0], rImb, hImb)
		}
		if pImb > rImb {
			t.Errorf("W=%s: PKG %v worse than rebalancing %v", h[0], pImb, rImb)
		}
		if cell(t, r[4]) <= 0 || cell(t, r[6]) <= 0 {
			t.Errorf("W=%s: rebalancing shows no costs: %v", h[0], r)
		}
	}
}

func TestApplicationsShape(t *testing.T) {
	tables := Applications(tiny, 13)
	if len(tables) != 3 {
		t.Fatalf("want 3 application tables, got %d", len(tables))
	}
	// Naive Bayes: probes 1 (KG), 9 (SG), ≤2 (PKG); identical accuracy.
	nb := tables[0]
	if cell(t, nb.Rows[0][4]) != 1 || cell(t, nb.Rows[1][4]) != 9 || cell(t, nb.Rows[2][4]) > 2 {
		t.Errorf("NB probe counts wrong: %v", nb.Rows)
	}
	if nb.Rows[0][1] != nb.Rows[1][1] || nb.Rows[1][1] != nb.Rows[2][1] {
		t.Errorf("NB accuracy differs across layouts: %v", nb.Rows)
	}
	// Heavy hitters: PKG imbalance far below KG; probes ≤ 2.
	hh := tables[1]
	if cell(t, hh.Rows[2][1])*3 > cell(t, hh.Rows[0][1]) {
		t.Errorf("HH PKG imbalance not well below KG: %v", hh.Rows)
	}
	if cell(t, hh.Rows[2][2]) > 2 {
		t.Errorf("HH PKG probes > 2: %v", hh.Rows)
	}
	// SPDT: PKG histograms strictly below shuffle's.
	sp := tables[2]
	if cell(t, sp.Rows[2][2]) >= cell(t, sp.Rows[0][2]) {
		t.Errorf("SPDT PKG histograms not below shuffle: %v", sp.Rows)
	}
}

func TestTheoryShape(t *testing.T) {
	tables := Theory(tiny, 11)
	ratios := tables[0]
	for _, row := range ratios.Rows {
		r1, r2 := cell(t, row[1]), cell(t, row[2])
		if r2 > 1.0 {
			t.Errorf("n=%s: Greedy-2 ratio %v not O(1)-small", row[0], r2)
		}
		if r1 < r2 {
			t.Errorf("n=%s: Greedy-1 ratio %v below Greedy-2 %v", row[0], r1, r2)
		}
	}
	used := tables[1]
	for _, row := range used.Rows {
		f := cell(t, row[1])
		if f < 0.75 || f > 0.95 {
			t.Errorf("n=%s: used-bin fraction %v far from 1-1/e² ≈ 0.865", row[0], f)
		}
	}
}

func TestWindowTShape(t *testing.T) {
	tables := WindowT(tiny, 3)
	if len(tables) != 2 {
		t.Fatalf("WindowT should produce engine + cluster tables")
	}
	eng := tables[0]
	// As T grows down the rows: memory (max live counters) rises
	// monotonically, flush traffic falls monotonically — the engine-side
	// Figure 5(b) direction (wall-clock words/s is not asserted; flush
	// traffic is the deterministic throughput-cost proxy).
	for i := 1; i < len(eng.Rows); i++ {
		prev, cur := eng.Rows[i-1], eng.Rows[i]
		if cell(t, prev[2]) > cell(t, cur[2]) {
			t.Errorf("T=%s→%s: max live counters fell %s→%s, want monotone rise with T",
				prev[0], cur[0], prev[2], cur[2])
		}
		if cell(t, prev[3]) < cell(t, cur[3]) {
			t.Errorf("T=%s→%s: partials flushed rose %s→%s, want monotone fall with T",
				prev[0], cur[0], prev[3], cur[3])
		}
	}
	// Endpoints differ by a wide margin (the sweep spans 256× in T).
	if cell(t, eng.Rows[0][2])*2 > cell(t, eng.Rows[len(eng.Rows)-1][2]) {
		t.Errorf("memory spread too small: %s vs %s",
			eng.Rows[0][2], eng.Rows[len(eng.Rows)-1][2])
	}
	// The cluster model agrees on the direction: longer T, more memory,
	// no less throughput.
	clu := tables[1]
	for i := 1; i < len(clu.Rows); i++ {
		prev, cur := clu.Rows[i-1], clu.Rows[i]
		if cell(t, prev[1]) > cell(t, cur[1]) {
			t.Errorf("cluster T=%s→%s: throughput fell %s→%s", prev[0], cur[0], prev[1], cur[1])
		}
		if cell(t, prev[2]) > cell(t, cur[2]) {
			t.Errorf("cluster T=%s→%s: memory fell %s→%s", prev[0], cur[0], prev[2], cur[2])
		}
	}
}

// TestPipelineExactMatch is the acceptance gate for the multi-process
// pipeline: the windowed wordcount must produce byte-identical
// per-(word, window) counts whether the final stage merges in-process
// or behind the TCP wire protocol — and, with one deterministic source,
// the partial-stage imbalance must be identical too (the wire hop moves
// the merge, not the routing).
func TestPipelineExactMatch(t *testing.T) {
	res := runPipeline(tiny, 3, "")
	if !res.match {
		for _, tb := range res.tables {
			t.Log(tb.String())
		}
		t.Fatal("remote-final counts differ from the in-process engine")
	}
	if !res.match3 {
		for _, tb := range res.tables {
			t.Log(tb.String())
		}
		t.Fatal("remote-partial counts differ from the in-process engine")
	}
	if res.local.pairs == 0 || res.local.total == 0 {
		t.Fatalf("degenerate run: %+v", res.local)
	}
	if res.local.imbalance != res.remote.imbalance {
		t.Fatalf("partial imbalance differs: local %v, remote %v",
			res.local.imbalance, res.remote.imbalance)
	}
	if res.remote3.total != res.local.total {
		t.Fatalf("remote-partial total %d, want %d", res.remote3.total, res.local.total)
	}
	// Every deployment mode must report sampled end-to-end latency, with
	// sane quantile ordering — including the fully distributed shape,
	// whose histogram is merged from the partial nodes' OpStats replies.
	for _, r := range []struct {
		name string
		run  pipeRun
	}{{"in-process", res.local}, {"remote-final", res.remote}, {"remote-partial", res.remote3}} {
		if r.run.lat.Count == 0 {
			t.Errorf("%s: no latency observations", r.name)
			continue
		}
		p50, p99 := r.run.lat.Quantile(0.5), r.run.lat.Quantile(0.99)
		if p50 <= 0 || p99 < p50 {
			t.Errorf("%s: implausible quantiles p50=%d p99=%d", r.name, p50, p99)
		}
	}
}

// TestPipelineStatsWhileStreaming hammers Stats() — per-instance
// counters, window totals, imbalance, AND the latency histograms with
// their quantile math — from concurrent pollers while the pipeline
// wordcount streams. Run under -race (CI does) this is the proof that
// live observability never torments the data path; the final counts
// must still be complete.
func TestPipelineStatsWhileStreaming(t *testing.T) {
	const n = 40000
	var mu sync.Mutex
	counts := map[string]int64{}
	b, _ := pipeTopology(n, 3)
	b.AddBolt("sink", func() engine.Bolt {
		return engine.BoltFunc(func(tu engine.Tuple, _ engine.Emitter) {
			if tu.Tick {
				return
			}
			res := tu.Values[0].(window.Result)
			mu.Lock()
			counts[fmt.Sprintf("%s@%d", res.Key, res.Start)] += res.Value.(int64)
			mu.Unlock()
		})
	}, 1).Input("wc", engine.Global())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 2048, LatencySample: 8})

	done := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 3; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-done:
					return
				default:
					st := rt.Stats()
					_ = st.Imbalance("wc.partial")
					lat := st.LatencyTotals("wc.partial")
					_ = lat.Quantile(0.5)
					_ = lat.Quantile(0.999)
					_ = st.LatencyTotals("wc.staleness")
					_ = st.LatencyTotals("sink")
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}
	err = rt.Run()
	close(done)
	pollers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("window counts sum to %d, want %d", total, n)
	}
	if lat := rt.Stats().LatencyTotals("wc.partial"); lat.Count == 0 {
		t.Fatal("no latency observations after the run")
	}
}

// TestPipelineTraceWhileStreaming streams the pipeline wordcount with
// every tuple traced (TraceSample 1) while concurrent pollers hammer
// Stats() and drain the /debug/pktrace handler mid-stream — the ring is
// being overwritten by the data path while WriteChrome snapshots it.
// Run under -race (CI does) this is the proof that full-rate tracing
// and its query surface never torment the data path; the final counts
// must still be complete and at least one trace must assemble
// end-to-end (emit through window close).
func TestPipelineTraceWhileStreaming(t *testing.T) {
	const n = 40000
	var mu sync.Mutex
	counts := map[string]int64{}
	b, _ := pipeTopology(n, 3)
	b.AddBolt("sink", func() engine.Bolt {
		return engine.BoltFunc(func(tu engine.Tuple, _ engine.Emitter) {
			if tu.Tick {
				return
			}
			res := tu.Values[0].(window.Result)
			mu.Lock()
			counts[fmt.Sprintf("%s@%d", res.Key, res.Start)] += res.Value.(int64)
			mu.Unlock()
		})
	}, 1).Input("wc", engine.Global())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{
		QueueSize: 2048, LatencySample: 8, TraceSample: 1,
	})
	// Full-rate tracing of 40k tuples records ~340k spans, and the tail
	// of the run is emit-free: the spout finishes while the sink still
	// drains, so the flush/merge/close burst (tens of thousands of spans
	// with every slot traced) evicts every emit span from any
	// ring that can't hold the whole run. Widen the ring to cover it all
	// (~40 MiB for the test's duration) so the end-to-end assertion
	// below is deterministic, and restore after.
	oldCap := trace.Default.Cap()
	trace.Default.Resize(1 << 19)
	defer trace.Default.Resize(oldCap)

	srv := httptest.NewServer(trace.Handler(trace.Default))
	defer srv.Close()
	done := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 3; p++ {
		pollers.Add(1)
		go func(p int) {
			defer pollers.Done()
			for {
				select {
				case <-done:
					return
				default:
					if p == 0 {
						// One poller drains the chrome-trace endpoint
						// (a full ring snapshot + JSON render per hit).
						resp, err := srv.Client().Get(srv.URL)
						if err == nil {
							resp.Body.Close()
						}
					} else {
						st := rt.Stats()
						_ = st.Imbalance("wc.partial")
						_ = st.LatencyTotals("wc.partial").Quantile(0.99)
						_ = trace.ByTrace(trace.Default.Snapshot())
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(p)
	}
	err = rt.Run()
	close(done)
	pollers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("window counts sum to %d, want %d", total, n)
	}
	// The ring holds the last spans of a full-rate run; the newest
	// traces must still assemble across the whole local hop chain.
	assembled := trace.ByTrace(trace.Default.Snapshot())
	complete := 0
	for _, spans := range assembled {
		var emit, closed bool
		for _, s := range spans {
			emit = emit || s.Hop == trace.HopEmit
			closed = closed || s.Hop == trace.HopWindowClose
		}
		if emit && closed {
			complete++
		}
	}
	if complete == 0 {
		byHop := map[trace.Hop]int{}
		for _, s := range trace.Default.Snapshot() {
			byHop[s.Hop]++
		}
		t.Fatalf("no end-to-end trace assembled from %d retained traces (cap=%d total=%d hops=%v)",
			len(assembled), trace.Default.Cap(), trace.Default.Total(), byHop)
	}
}

// TestHotkeyHeadlineOrdering is the acceptance gate for the
// frequency-aware strategies: on the high-skew (z = 2.0) stream at
// scale (W ≥ 50), D-Choices and W-Choices must achieve strictly lower
// imbalance than PKG-2 — in the routing simulation AND on the live
// engine, deterministically in the seeded harness. A regression in
// either layer fails this test, and with it CI.
func TestHotkeyHeadlineOrdering(t *testing.T) {
	tables := Hotkey(tiny, 1)
	if len(tables) != 2 {
		t.Fatalf("Hotkey should produce simulation + engine tables, got %d", len(tables))
	}
	sim := tables[0]
	checked := 0
	for _, row := range sim.Rows {
		z, w := cell(t, row[0]), cell(t, row[2])
		if z < 2.0 || w < 50 {
			continue
		}
		pkg, dc, wc := cell(t, row[3]), cell(t, row[4]), cell(t, row[5])
		if dc >= pkg {
			t.Errorf("sim z=%v W=%v: D-Choices %v not strictly below PKG %v", z, w, dc, pkg)
		}
		if wc >= pkg {
			t.Errorf("sim z=%v W=%v: W-Choices %v not strictly below PKG %v", z, w, wc, pkg)
		}
		// "Near-perfect" vs "degrades": an order of magnitude between them.
		if dc*10 >= pkg || wc*10 >= pkg {
			t.Errorf("sim z=%v W=%v: hot-key strategies not an order of magnitude better (pkg=%v dc=%v wc=%v)",
				z, w, pkg, dc, wc)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no z ≥ 2.0, W ≥ 50 rows in the simulation table")
	}

	eng := tables[1]
	imb := map[string]float64{}
	for _, row := range eng.Rows {
		imb[row[0]] = cell(t, row[1])
	}
	for _, g := range []string{"pkg", "dchoices", "wchoices"} {
		if _, ok := imb[g]; !ok {
			t.Fatalf("engine table missing %q row: %v", g, eng.Rows)
		}
	}
	if imb["dchoices"] >= imb["pkg"] || imb["wchoices"] >= imb["pkg"] {
		t.Errorf("engine cross-check ordering broken: %v", imb)
	}
}

// TestHotkeyDeterministic pins the experiment end to end: both tables
// must be cell-for-cell identical across runs with the same seed (the
// engine half uses a single source precisely to make routing,
// classification and flush segmentation deterministic).
func TestHotkeyDeterministic(t *testing.T) {
	a, b := Hotkey(tiny, 5), Hotkey(tiny, 5)
	for ti := range a {
		for ri := range a[ti].Rows {
			for ci := range a[ti].Rows[ri] {
				if a[ti].Rows[ri][ci] != b[ti].Rows[ri][ci] {
					t.Fatalf("table %d row %d cell %d differs: %q vs %q",
						ti, ri, ci, a[ti].Rows[ri][ci], b[ti].Rows[ri][ci])
				}
			}
		}
	}
}

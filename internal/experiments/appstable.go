package experiments

import (
	"fmt"

	"pkgstream/internal/heavyhitters"
	"pkgstream/internal/naivebayes"
	"pkgstream/internal/rng"
	"pkgstream/internal/spdt"
)

// Applications regenerates the §VI claims as one table per application:
// for naive Bayes (§VI.A), heavy hitters (§VI.C) and the streaming
// parallel decision tree (§VI.B), it reports the quantities the paper
// argues about — query probe counts, state footprints, aggregation
// inputs and load balance — under KG, SG and PKG.
func Applications(sc Scale, seed uint64) []Table {
	return []Table{
		nbTable(sc, seed),
		hhTable(sc, seed),
		spdtTable(sc, seed),
	}
}

func nbTable(sc Scale, seed uint64) Table {
	const (
		workers = 9
		classes = 2
		vocab   = 5000
		docLen  = 20
	)
	docs := int(sc.MessageCap / 100)
	if docs < 500 {
		docs = 500
	}
	gen := naivebayes.NewGenerator(classes, vocab, docLen, 0.09, seed)
	train := gen.Batch(docs)
	test := gen.Batch(docs / 5)

	t := Table{
		Title:   "§VI.A — naive Bayes, vertical parallelism (W=9)",
		Columns: []string{"Strategy", "Accuracy%", "Imbalance", "Counters", "Probes/token"},
		Notes: []string{
			"claims: identical predictions under every layout; PKG probes 2 workers (KG 1, SG W);",
			"PKG counters ≤ 2K; PKG load balance ≈ SG ≪ KG",
		},
	}
	for _, s := range []struct {
		name  string
		strat naivebayes.Strategy
	}{{"KG", naivebayes.ByKey}, {"SG", naivebayes.ByShuffle}, {"PKG", naivebayes.ByPKG}} {
		d := naivebayes.NewDistributed(workers, classes, vocab, 1, s.strat, seed)
		for _, smp := range train {
			d.Train(smp)
		}
		correct := 0
		for _, smp := range test {
			if d.Predict(smp.Tokens) == smp.Class {
				correct++
			}
		}
		t.AddRow(s.name,
			f1(100*float64(correct)/float64(len(test))),
			f1(d.Imbalance()),
			fmt.Sprint(d.CounterFootprint()),
			fmt.Sprint(d.ProbesPerToken(1)))
	}
	return t
}

func hhTable(sc Scale, seed uint64) Table {
	const (
		workers  = 9
		capacity = 256
	)
	n := sc.MessageCap
	if n > 500_000 {
		n = 500_000
	}
	t := Table{
		Title:   "§VI.C — heavy hitters via SpaceSaving (W=9, k=256)",
		Columns: []string{"Strategy", "Imbalance", "Probes/query", "Top-1 err bound"},
		Notes: []string{
			"claims: PKG probes 2 summaries per item (error bound sums over 2, not W);",
			"PKG load balance ≈ SG ≪ KG",
		},
	}
	for _, s := range []struct {
		name  string
		strat heavyhitters.Strategy
	}{{"KG", heavyhitters.ByKey}, {"SG", heavyhitters.ByShuffle}, {"PKG", heavyhitters.ByPKG}} {
		d := heavyhitters.NewDistributed(workers, capacity, s.strat, seed)
		z := zipfStream(seed+1, 0.08, 20_000)
		for i := int64(0); i < n; i++ {
			d.Update(z())
		}
		est := d.Estimate(1)
		t.AddRow(s.name, f1(d.Imbalance()),
			fmt.Sprint(d.ProbeCount(1)), fmt.Sprint(est.Err))
	}
	return t
}

func spdtTable(sc Scale, seed uint64) Table {
	const (
		workers  = 8
		features = 8
		classes  = 2
	)
	samples := int(sc.MessageCap / 50)
	if samples < 2000 {
		samples = 2000
	}
	gen := spdt.NewDataGen(features, classes, 2, 3, seed)
	xs, ys := gen.Batch(samples)
	tx, ty := gen.Batch(samples / 4)

	t := Table{
		Title:   "§VI.B — streaming parallel decision tree (W=8, D=8, C=2)",
		Columns: []string{"Strategy", "Accuracy%", "Histograms", "Merge inputs", "Splits"},
		Notes: []string{
			"claims: PKG-on-features caps histogram state at 2·D·C·L (shuffle: W·D·C·L)",
			"and the aggregator merges ≤2 inputs per triplet, at equal accuracy",
		},
	}
	params := spdt.Params{Features: features, Classes: classes, MinLeafSamples: samples / 10}
	for _, s := range []struct {
		name  string
		strat spdt.Strategy
	}{{"SG", spdt.ShuffleSamples}, {"KG", spdt.KeyFeatures}, {"PKG", spdt.PKGFeatures}} {
		tr, err := spdt.NewTrainer(params, workers, s.strat, samples/8, seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: spdt: %v", err))
		}
		for i := range xs {
			tr.Train(xs[i], ys[i])
		}
		correct := 0
		for i := range tx {
			if tr.Predict(tx[i]) == ty[i] {
				correct++
			}
		}
		t.AddRow(s.name,
			f1(100*float64(correct)/float64(len(tx))),
			fmt.Sprint(tr.HistogramCount()),
			fmt.Sprint(tr.MergeInputs()),
			fmt.Sprint(tr.Tree().Splits()))
	}
	return t
}

// zipfStream returns an endless key sampler with the given head
// probability for the §VI tables.
func zipfStream(seed uint64, p1 float64, k uint64) func() uint64 {
	z := rng.NewZipf(rng.New(seed), rng.SolveZipfExponent(k, p1), k)
	return z.Next
}

package experiments

import (
	"fmt"

	"pkgstream/internal/dataset"
	"pkgstream/internal/metrics"
	"pkgstream/internal/rebalance"
	"pkgstream/internal/route"
)

// Rebalance answers the paper's §VIII open question — "can a solution
// based on rebalancing be practical?" — empirically: key grouping with
// Flux-style periodic key migration is compared against plain hashing
// and against PKG on the WP stream, reporting both the achieved balance
// and the costs rebalancing pays that PKG avoids (migrations, moved
// state, routing-table entries).
func Rebalance(sc Scale, seed uint64) []Table {
	spec := dataset.WP.WithCap(sc.MessageCap)
	t := Table{
		Title: "§VIII open question — rebalancing KG vs PKG on WP",
		Columns: []string{"W", "Technique", "AvgImbalance", "Fraction",
			"Migrations", "MovedState", "RoutingTable"},
		Notes: []string{
			"shape to check: rebalancing lands between hashing and PKG while paying nonzero",
			"migration/coordination costs; past W ≈ 1/p1 its atomicity floor binds, PKG's (2/p1) does not",
		},
	}
	for _, w := range []int{5, 10, 15} {
		// Plain hashing.
		h := runDriver(spec, seed, route.NewKeyGrouping(w, seed), w)
		t.AddRow(fmt.Sprint(w), "Hashing", f1(h.avg), sci(h.frac), "0", "0", "0")

		// Rebalancing KG.
		rb, err := rebalance.New(rebalance.Config{Workers: w, Seed: seed})
		if err != nil {
			panic(fmt.Sprintf("experiments: rebalance: %v", err))
		}
		r := runDriver(spec, seed, rb, w)
		t.AddRow(fmt.Sprint(w), "Rebalance", f1(r.avg), sci(r.frac),
			fmt.Sprint(rb.Migrations()), fmt.Sprint(rb.MigratedState()),
			fmt.Sprint(rb.RoutingTableSize()))

		// PKG with global info (no migration, no table).
		truth := metrics.NewLoad(w)
		pkg := route.NewPKG(w, 2, seed, truth)
		p := runDriverWith(spec, seed, pkg, truth)
		t.AddRow(fmt.Sprint(w), "PKG", f1(p.avg), sci(p.frac), "0", "0", "0")
	}
	return []Table{t}
}

type driverResult struct {
	avg  float64
	frac float64
}

// runDriver routes the whole stream through p, sampling imbalance 1000
// times, with a fresh truth vector.
func runDriver(spec dataset.Spec, seed uint64, p route.Router, w int) driverResult {
	return runDriverWith(spec, seed, p, metrics.NewLoad(w))
}

// runDriverWith is runDriver against a caller-supplied truth vector
// (needed when the partitioner's view *is* the truth, as for PKG-G).
func runDriverWith(spec dataset.Spec, seed uint64, p route.Router, truth *metrics.Load) driverResult {
	s := spec.Open(seed)
	sample := spec.Messages / 1000
	if sample < 1 {
		sample = 1
	}
	var i int64
	var imbSum float64
	var samples int64
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		truth.Add(p.Route(m.Key))
		i++
		if i%sample == 0 {
			imbSum += truth.Imbalance()
			samples++
		}
	}
	avg := 0.0
	if samples > 0 {
		avg = imbSum / float64(samples)
	}
	return driverResult{avg: avg, frac: avg / float64(i)}
}

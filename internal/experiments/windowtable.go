package experiments

import (
	"fmt"
	"time"

	"pkgstream/internal/cluster"
	"pkgstream/internal/engine"
	"pkgstream/internal/wordcount"
)

// WindowT sweeps the aggregation period T on the LIVE engine — the
// windowed word count under PKG — reproducing the Figure 5(b)
// memory-vs-throughput lever outside the simulator, then cross-checks
// the direction against the discrete-event cluster model. T is a tuple
// count on the engine (deterministic) and seconds in the simulator; the
// shape to match is the direction: shrinking T cuts the partial stage's
// memory (live counters) and its throughput (more flush traffic), both
// monotonically.
func WindowT(sc Scale, seed uint64) []Table {
	words := int(sc.MessageCap / 4)
	if words < 50_000 {
		words = 50_000
	}
	eng := Table{
		Title: "§V Q4 / Figure 5(b) on the engine — aggregation period T sweep (wordcount, PKG, 1 source, 9 workers)",
		Columns: []string{"T(tuples)", "words/s", "max live counters", "partials flushed",
			"flush rounds", "merged"},
		Notes: []string{
			"shape to check: as T shrinks, max live counters fall monotonically while flush",
			"traffic (partials flushed) rises — the memory/throughput trade-off of Figure 5(b)",
			"words/s is wall-clock and machine-dependent; the deterministic flush-traffic",
			"column is the throughput cost's stable proxy",
		},
	}
	for _, T := range []int{250, 1_000, 4_000, 16_000, 64_000} {
		// A single source keeps the flush segmentation — and so the live
		// counter and flush-traffic columns — deterministic in the seed:
		// with concurrent sources the batch interleaving would decide
		// which words share a flush period.
		cfg := wordcount.Config{
			Words: 2 * words, Vocab: 30_000, P1: 0.0932, Sources: 1, Workers: 9,
			FlushEvery: T, K: 10, Grouping: wordcount.UsePKG, Seed: seed,
		}
		top, out, err := wordcount.Build(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: window-t: %v", err))
		}
		rt := engine.NewRuntime(top, engine.Options{QueueSize: 2048})
		start := time.Now()
		if err := rt.Run(); err != nil {
			panic(fmt.Sprintf("experiments: window-t: %v", err))
		}
		elapsed := time.Since(start).Seconds()
		eng.AddRow(fmt.Sprint(T),
			f0(float64(out.TotalWords)/elapsed),
			fmt.Sprint(out.MaxCounterResidency),
			fmt.Sprint(out.PartialsFlushed),
			fmt.Sprint(out.FlushRounds),
			fmt.Sprint(out.PartialsMerged))
	}

	clu := Table{
		Title:   "cluster cross-check — PKG throughput and memory vs T (Figure 5(b) model, 0.4ms delay)",
		Columns: []string{"T(s)", "throughput", "avg counters"},
		Notes: []string{
			"same direction as the engine sweep: longer T buys throughput at the cost of memory",
		},
	}
	for _, T := range sc.Fig5bPeriods {
		p := clusterParams(cluster.PKG, sc, seed)
		p.AggPeriod = T
		if min := p.Warmup + 3*T; p.Duration < min {
			p.Duration = min
		}
		r, err := cluster.Run(p)
		if err != nil {
			panic(fmt.Sprintf("experiments: window-t: %v", err))
		}
		clu.AddRow(f0(T), f0(r.Throughput), f0(r.AvgCounters))
	}
	return []Table{eng, clu}
}

package experiments

import (
	"fmt"

	"pkgstream/internal/dataset"
	"pkgstream/internal/metrics"
	"pkgstream/internal/simulate"
)

// fig2Workers are the worker counts swept throughout §V.
var fig2Workers = []int{5, 10, 50, 100}

// Table1 regenerates Table I: the summary statistics of each dataset as
// actually produced by the generators at this scale.
func Table1(sc Scale, seed uint64) []Table {
	t := Table{
		Title:   "Table I — datasets (synthetic, matched on messages/keys/p1)",
		Columns: []string{"Dataset", "Symbol", "Messages", "Keys", "p1(%)", "paper p1(%)"},
		Notes: []string{
			"streams are scaled to ≤ " + fmt.Sprint(sc.MessageCap) + " messages; p1 is preserved by construction",
		},
	}
	for _, full := range dataset.All {
		spec := full.WithCap(sc.MessageCap)
		st := dataset.Measure(spec.Open(seed), 0)
		t.AddRow(spec.Name, spec.Symbol,
			fmt.Sprint(st.Messages), fmt.Sprint(st.DistinctKeys),
			f2(st.P1*100), f2(full.P1*100))
	}
	return []Table{t}
}

// Table2 regenerates Table II: average imbalance of PKG, Off-Greedy,
// On-Greedy, PoTC and Hashing on WP and TW across worker counts.
func Table2(sc Scale, seed uint64) []Table {
	methods := []struct {
		name string
		opts simulate.Options
	}{
		{"PKG", simulate.Options{Method: simulate.PKG, Info: simulate.Global}},
		{"Off-Greedy", simulate.Options{Method: simulate.OffGreedy}},
		{"On-Greedy", simulate.Options{Method: simulate.OnGreedy}},
		{"PoTC", simulate.Options{Method: simulate.PoTC}},
		{"Hashing", simulate.Options{Method: simulate.Hashing}},
	}
	var out []Table
	for _, ds := range []dataset.Spec{dataset.WP, dataset.TW} {
		spec := ds.WithCap(sc.MessageCap)
		t := Table{
			Title:   "Table II — average imbalance on " + spec.Symbol,
			Columns: []string{"Method"},
			Notes: []string{
				"paper (full scale, WP): PKG 0.8 / 2.9 / 5.9e5 / 8.0e5 for W = 5/10/50/100",
				"shape to check: all ≪ Hashing below W ≈ 2/p1; binary flip past it; PKG ≤ Off-Greedy league",
			},
		}
		for _, w := range fig2Workers {
			t.Columns = append(t.Columns, fmt.Sprintf("W=%d", w))
		}
		for _, m := range methods {
			row := []string{m.name}
			for _, w := range fig2Workers {
				opts := m.opts
				opts.Workers = w
				opts.Seed = seed
				res := simulate.Run(spec, opts)
				row = append(row, sci(res.AvgImbalance))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

// Fig2 regenerates Figure 2: the average imbalance fraction for hashing
// (H), PKG with a global oracle (G) and PKG with local estimation at
// S = 5, 10, 15, 20 sources, across worker counts and five datasets.
func Fig2(sc Scale, seed uint64) []Table {
	configs := []simulate.Options{
		{Method: simulate.Hashing},
		{Method: simulate.PKG, Info: simulate.Global},
		{Method: simulate.PKG, Info: simulate.Local, Sources: 5},
		{Method: simulate.PKG, Info: simulate.Local, Sources: 10},
		{Method: simulate.PKG, Info: simulate.Local, Sources: 15},
		{Method: simulate.PKG, Info: simulate.Local, Sources: 20},
	}
	var out []Table
	for _, ds := range []dataset.Spec{dataset.TW, dataset.WP, dataset.CT, dataset.LN1, dataset.LN2} {
		spec := ds.WithCap(sc.MessageCap)
		t := Table{
			Title:   "Figure 2 — avg imbalance fraction on " + spec.Symbol,
			Columns: []string{"Technique"},
			Notes: []string{
				"shape to check: H orders of magnitude above G/L; L within 1 order of G; flip past W ≈ 2/p1",
			},
		}
		for _, w := range fig2Workers {
			t.Columns = append(t.Columns, fmt.Sprintf("W=%d", w))
		}
		for _, cfg := range configs {
			row := []string{cfg.Label()}
			for _, w := range fig2Workers {
				opts := cfg
				opts.Workers = w
				opts.Seed = seed
				res := simulate.Run(spec, opts)
				row = append(row, sci(res.AvgImbalanceFraction))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

// Fig3 regenerates Figure 3: the imbalance fraction through time for the
// global oracle (G), local estimation with 5 sources (L5) and local
// estimation with 1-minute probing (L5P1), on TW, WP and CT at W = 10
// and 50.
func Fig3(sc Scale, seed uint64) []Table {
	configs := []simulate.Options{
		{Method: simulate.PKG, Info: simulate.Global},
		{Method: simulate.PKG, Info: simulate.Local, Sources: 5},
		{Method: simulate.PKG, Info: simulate.Probing, Sources: 5, ProbeEveryHours: 1.0 / 60},
	}
	var out []Table
	for _, ds := range []dataset.Spec{dataset.TW, dataset.WP, dataset.CT} {
		spec := ds.WithCap(sc.MessageCap)
		for _, w := range []int{10, 50} {
			t := Table{
				Title:   fmt.Sprintf("Figure 3 — imbalance fraction over time, %s, W=%d", spec.Symbol, w),
				Columns: []string{"hours"},
				Notes: []string{
					"shape to check: G and L5 nearly indistinguishable; probing (L5P1) does not improve on L5",
				},
			}
			var series []metrics.Series
			for _, cfg := range configs {
				opts := cfg
				opts.Workers = w
				opts.Seed = seed
				res := simulate.Run(spec, opts)
				t.Columns = append(t.Columns, res.Label)
				series = append(series, res.Series.Downsample(12))
			}
			n := 0
			for _, s := range series {
				if s.Len() > n {
					n = s.Len()
				}
			}
			for i := 0; i < n; i++ {
				row := make([]string, 0, len(series)+1)
				tHours := ""
				if i < series[0].Len() {
					tHours = f1(series[0].Pts[i].T)
				}
				row = append(row, tHours)
				for _, s := range series {
					if i < s.Len() {
						row = append(row, sci(s.Pts[i].V))
					} else {
						row = append(row, "")
					}
				}
				t.AddRow(row...)
			}
			out = append(out, t)
		}
	}
	return out
}

// Fig4 regenerates Figure 4: the average imbalance fraction with uniform
// vs key-grouped (skewed) assignment of graph edges to sources, on the
// LiveJournal-shaped stream (plus Slashdot rows at W = 10).
func Fig4(sc Scale, seed uint64) []Table {
	t := Table{
		Title:   "Figure 4 — uniform vs skewed source assignment (graph streams)",
		Columns: []string{"Dataset", "Assignment", "Sources"},
		Notes: []string{
			"shape to check: skewed ≈ uniform at every configuration (PKG chains after key grouping)",
		},
	}
	for _, w := range fig2Workers {
		t.Columns = append(t.Columns, fmt.Sprintf("W=%d", w))
	}
	lj := dataset.LJ.WithCap(sc.MessageCap)
	for _, srcs := range []int{5, 10, 15, 20} {
		for _, asg := range []simulate.Assignment{simulate.ShuffleSources, simulate.KeySources} {
			label := "Uniform"
			if asg == simulate.KeySources {
				label = "Skewed"
			}
			row := []string{lj.Symbol, label, fmt.Sprintf("L%d", srcs)}
			for _, w := range fig2Workers {
				res := simulate.Run(lj, simulate.Options{
					Workers: w, Sources: srcs,
					Method: simulate.PKG, Info: simulate.Local,
					SourceAssignment: asg, Seed: seed,
				})
				row = append(row, sci(res.AvgImbalanceFraction))
			}
			t.AddRow(row...)
		}
	}
	for _, ds := range []dataset.Spec{dataset.SL1, dataset.SL2} {
		spec := ds.WithCap(sc.MessageCap)
		for _, asg := range []simulate.Assignment{simulate.ShuffleSources, simulate.KeySources} {
			label := "Uniform"
			if asg == simulate.KeySources {
				label = "Skewed"
			}
			row := []string{spec.Symbol, label, "L5"}
			for _, w := range fig2Workers {
				res := simulate.Run(spec, simulate.Options{
					Workers: w, Sources: 5,
					Method: simulate.PKG, Info: simulate.Local,
					SourceAssignment: asg, Seed: seed,
				})
				row = append(row, sci(res.AvgImbalanceFraction))
			}
			t.AddRow(row...)
		}
	}
	return []Table{t}
}

// JaccardGL reproduces the §V Q2 observation that the global oracle and
// local estimation reach similarly low imbalance through *different*
// routings: on WP with W = 10 the paper measured only 47% Jaccard
// agreement between their per-message destinations.
func JaccardGL(sc Scale, seed uint64) []Table {
	spec := dataset.WP.WithCap(sc.MessageCap)
	g := simulate.Run(spec, simulate.Options{
		Workers: 10, Method: simulate.PKG, Info: simulate.Global,
		Seed: seed, TrackDestinations: true,
	})
	l := simulate.Run(spec, simulate.Options{
		Workers: 10, Sources: 5, Method: simulate.PKG, Info: simulate.Local,
		Seed: seed, TrackDestinations: true,
	})
	j := metrics.Jaccard(g.Destinations, l.Destinations)
	t := Table{
		Title:   "§V Q2 — G vs L5 destination agreement on WP, W=10",
		Columns: []string{"Metric", "Value"},
		Notes:   []string{"paper: 47% Jaccard overlap — different routings, equally good balance"},
	}
	t.AddRow("Jaccard(G, L5)", f2(j))
	t.AddRow("G avg imbalance", f1(g.AvgImbalance))
	t.AddRow("L5 avg imbalance", f1(l.AvgImbalance))
	return []Table{t}
}

// Memory reproduces the §V Q4 memory comparison: the number of live
// counters a stateful word-count operator holds under each grouping on
// WP with 9 workers (paper: KG 2.9M, PKG 3.6M ≈ +30%, SG 7.2M ≈ 2×PKG).
func Memory(sc Scale, seed uint64) []Table {
	spec := dataset.WP.WithCap(sc.MessageCap)
	t := Table{
		Title:   "§V Q4 — counter footprint on WP, W=9",
		Columns: []string{"Grouping", "Counters", "Counters/K", "Distinct keys"},
		Notes: []string{
			"paper (full WP): KG 2.9M (1.0×K), PKG 3.6M (1.24×K), SG 7.2M (2.48×K)",
		},
	}
	for _, m := range []simulate.Method{simulate.Hashing, simulate.PKG, simulate.Shuffle} {
		opts := simulate.Options{Workers: 9, Method: m, Seed: seed, TrackMemory: true}
		if m == simulate.PKG {
			opts.Info = simulate.Global
		}
		name := map[simulate.Method]string{
			simulate.Hashing: "KG", simulate.PKG: "PKG", simulate.Shuffle: "SG",
		}[m]
		res := simulate.Run(spec, opts)
		t.AddRow(name, fmt.Sprint(res.Counters),
			f2(float64(res.Counters)/float64(res.DistinctKeys)),
			fmt.Sprint(res.DistinctKeys))
	}
	return []Table{t}
}

// AblationD sweeps the number of choices d in Greedy-d on WP: d = 2
// captures the exponential improvement over d = 1; d > 2 refines only
// constant factors (§III, Azar et al.).
func AblationD(sc Scale, seed uint64) []Table {
	spec := dataset.WP.WithCap(sc.MessageCap)
	t := Table{
		Title:   "Ablation — Greedy-d on WP (global info)",
		Columns: []string{"d", "W=5", "W=10", "W=15"},
		Notes: []string{
			"shape to check: d=1 ≫ d=2; d ≥ 3 within a constant factor of d=2",
		},
	}
	for _, d := range []int{1, 2, 3, 4, 5} {
		row := []string{fmt.Sprint(d)}
		for _, w := range []int{5, 10, 15} {
			res := simulate.Run(spec, simulate.Options{
				Workers: w, Method: simulate.PKG, Info: simulate.Global, D: d, Seed: seed,
			})
			row = append(row, sci(res.AvgImbalanceFraction))
		}
		t.AddRow(row...)
	}
	return []Table{t}
}

// AblationProbe sweeps the probing period: refreshing local estimates
// from true loads does not improve on pure local estimation (§V Q2).
func AblationProbe(sc Scale, seed uint64) []Table {
	spec := dataset.WP.WithCap(sc.MessageCap)
	t := Table{
		Title:   "Ablation — probing period on WP, W=10, S=5",
		Columns: []string{"Config", "AvgImbalance", "Fraction"},
		Notes:   []string{"shape to check: all rows in the same league — probing buys nothing"},
	}
	local := simulate.Run(spec, simulate.Options{
		Workers: 10, Sources: 5, Method: simulate.PKG, Info: simulate.Local, Seed: seed,
	})
	t.AddRow("L5 (no probing)", f1(local.AvgImbalance), sci(local.AvgImbalanceFraction))
	for _, tpMin := range []float64{1, 10, 60} {
		res := simulate.Run(spec, simulate.Options{
			Workers: 10, Sources: 5, Method: simulate.PKG, Info: simulate.Probing,
			ProbeEveryHours: tpMin / 60, Seed: seed,
		})
		t.AddRow(fmt.Sprintf("L5P%g", tpMin), f1(res.AvgImbalance), sci(res.AvgImbalanceFraction))
	}
	return []Table{t}
}

// Theory spot-checks Theorem 4.1/4.2: under a uniform distribution over
// 5n keys (so p1 = 1/(5n) meets the theorem's hypothesis), Greedy-2's
// imbalance is O(m/n) — the ratio I(m)/(m/n) stays bounded — while
// Greedy-1 carries the extra Θ(ln n / ln ln n) factor. It also measures
// the used-bin fraction with n keys on n bins, which §IV predicts to be
// ≈ 1 − 1/e² ≈ 0.865 for d = 2.
func Theory(sc Scale, seed uint64) []Table {
	t := Table{
		Title:   "Theorem 4.1/4.2 — uniform keys, I(m)/(m/n)",
		Columns: []string{"n", "d=1 ratio", "d=2 ratio", "d=1/d=2"},
		Notes: []string{
			"shape to check: d=2 ratio small and flat in n; d=1 ratio larger and growing",
		},
	}
	m := sc.MessageCap
	for _, n := range []int{10, 20, 50, 100} {
		spec := dataset.Spec{
			Name: "uniform", Symbol: "U", Messages: m, Keys: uint64(5 * n),
			P1: 1 / float64(5*n) * 1.0001, Kind: dataset.Zipf, DurationHours: 1,
		}
		ratio := func(d int) float64 {
			res := simulate.Run(spec, simulate.Options{
				Workers: n, Method: simulate.PKG, Info: simulate.Global, D: d, Seed: seed,
			})
			return res.FinalImbalance / (float64(m) / float64(n))
		}
		r1, r2 := ratio(1), ratio(2)
		div := "inf"
		if r2 > 0 {
			div = f1(r1 / r2)
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.3f", r1), fmt.Sprintf("%.3f", r2), div)
	}

	used := Table{
		Title:   "§IV — used-bin fraction, n keys on n bins, d=2",
		Columns: []string{"n", "used/n"},
		Notes:   []string{"theory: ≈ 1 − 1/e² ≈ 0.865 of bins receive load"},
	}
	for _, n := range []int{50, 100, 200} {
		spec := dataset.Spec{
			Name: "uniform", Symbol: "U", Messages: int64(200 * n), Keys: uint64(n),
			P1: 1 / float64(n) * 1.0001, Kind: dataset.Zipf, DurationHours: 1,
		}
		res := simulate.Run(spec, simulate.Options{
			Workers: n, Method: simulate.PKG, Info: simulate.Global, Seed: seed,
		})
		used.AddRow(fmt.Sprint(n), fmt.Sprintf("%.3f", float64(res.UsedWorkers)/float64(n)))
	}
	return []Table{t, used}
}

package experiments

import (
	"fmt"

	"pkgstream/internal/dataset"
	"pkgstream/internal/engine"
	"pkgstream/internal/rng"
	"pkgstream/internal/simulate"
	"pkgstream/internal/wordcount"
)

// hotkeyZipf builds a Zipf stream with a *given* exponent z — the sweep
// axis of the follow-up paper's evaluation ("When Two Choices Are not
// Enough", ICDE 2016). ZipfP1 converts z to the head probability the
// dataset generator is parameterized by.
func hotkeyZipf(z float64, keys uint64, messages int64) dataset.Spec {
	return dataset.Spec{
		Name: "Zipf", Symbol: fmt.Sprintf("Z%.1f", z), Messages: messages,
		Keys: keys, P1: rng.ZipfP1(keys, z), Kind: dataset.Zipf, DurationHours: 1,
	}
}

// Hotkey reproduces the ICDE 2016 follow-up's headline result: PKG with
// d = 2 balances well up to moderate skew and scale, but once a key's
// share exceeds what two workers can absorb (p1 > 2/W) its imbalance
// grows linearly with the stream, while D-Choices (hot keys widened to
// the d candidates their frequency warrants) and W-Choices (head keys
// spread over all W workers) hold near-perfect balance. The sweep
// crosses skew z with scale W in the routing simulator, then
// cross-checks one high-skew point on the live engine, where the
// windowed aggregation absorbs the widened key splitting and the
// classifier's population/per-class counters are observable.
func Hotkey(sc Scale, seed uint64) []Table {
	messages := sc.MessageCap
	if messages > 500_000 {
		messages = 500_000 // p1 and W govern the result, not stream length
	}
	const keys = 100_000

	sim := Table{
		Title: "ICDE'16 follow-up — imbalance fraction I(m)/m across skew z and scale W (local estimation, 1 source)",
		Columns: []string{"z", "p1(%)", "W", "PKG", "D-C", "W-C",
			"D-C hot|head", "W-C widened%"},
		Notes: []string{
			"PKG-2 parks p1/2 of the stream on one worker once p1 > 2/W: its fraction",
			"approaches (p1/2 - 1/W) at z = 2.0 while D-C/W-C stay near zero (the paper's",
			"Figure: two choices stop being enough at scale, frequency-awareness repairs it)",
			"D-C hot|head is the classifier population at end of run; W-C widened% is the",
			"share of messages its single threshold round-robins over all W",
		},
	}
	for _, z := range []float64{0.8, 1.4, 2.0} {
		spec := hotkeyZipf(z, keys, messages)
		for _, w := range []int{10, 50, 100} {
			row := []string{f1(z), f2(rng.ZipfP1(keys, z) * 100), fmt.Sprint(w)}
			var hotHead, widened string
			for _, m := range []simulate.Method{simulate.PKG, simulate.DChoices, simulate.WChoices} {
				r := simulate.Run(spec, simulate.Options{
					Workers: w, Method: m, Info: simulate.Local, Seed: seed,
				})
				row = append(row, sci(r.AvgImbalanceFraction))
				if m == simulate.DChoices {
					hotHead = fmt.Sprintf("%d|%d", r.Hotkey.HotKeys, r.Hotkey.HeadKeys)
				}
				if m == simulate.WChoices {
					widened = f1(100 * float64(r.Hotkey.HotRouted+r.Hotkey.HeadRouted) /
						float64(r.Messages))
				}
			}
			sim.AddRow(append(row, hotHead, widened)...)
		}
	}

	// Live-engine cross-check at the degenerate point (z = 2.0, W = 50):
	// the same strict ordering must hold for the partial stage's executed
	// loads, with the hot-key counters surfaced through engine Stats.
	words := int(sc.MessageCap / 4)
	if words < 50_000 {
		words = 50_000
	}
	const vocab, workers = 30_000, 50
	eng := Table{
		Title: "engine cross-check — partial-stage imbalance at z = 2.0, W = 50 (windowed wordcount, 1 source)",
		Columns: []string{"grouping", "imbalance", "I/m", "hot|head keys",
			"widened msgs%", "partials flushed"},
		Notes: []string{
			"same ordering as the simulation: PKG-2 degenerate, D-C and W-C near-perfect",
			"partials flushed is the aggregation cost of wider key splitting (W-C pays the",
			"most: every widened key can hold a counter on all W workers)",
		},
	}
	for _, g := range []wordcount.GroupingChoice{
		wordcount.UsePKG, wordcount.UseDChoices, wordcount.UseWChoices,
	} {
		cfg := wordcount.Config{
			// A single source keeps routing, classification and the flush
			// segmentation deterministic in the seed.
			Words: words, Vocab: vocab, P1: rng.ZipfP1(vocab, 2.0),
			Sources: 1, Workers: workers, FlushEvery: 4_000, K: 10,
			Grouping: g, Seed: seed,
		}
		top, out, err := wordcount.Build(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: hotkey: %v", err))
		}
		rt := engine.NewRuntime(top, engine.Options{QueueSize: 2048})
		if err := rt.Run(); err != nil {
			panic(fmt.Sprintf("experiments: hotkey: %v", err))
		}
		st := rt.Stats()
		imb := st.Imbalance("counter.partial")
		hk := st.HotkeyTotals("words→counter.partial")
		hotHead, widened := "-", "-"
		if hk.Observed > 0 {
			hotHead = fmt.Sprintf("%d|%d", hk.HotKeys, hk.HeadKeys)
			widened = f1(100 * float64(hk.HotRouted+hk.HeadRouted) / float64(hk.Observed))
		}
		eng.AddRow(string(g), f0(imb),
			sci(imb/float64(out.TotalWords)),
			hotHead, widened, fmt.Sprint(out.PartialsFlushed))
	}
	return []Table{sim, eng}
}

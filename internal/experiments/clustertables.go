package experiments

import (
	"fmt"

	"pkgstream/internal/cluster"
	"pkgstream/internal/dataset"
)

// clusterParams builds the calibrated Figure 5 configuration at the given
// scale.
func clusterParams(m cluster.Method, sc Scale, seed uint64) cluster.Params {
	p := cluster.Defaults(m)
	p.Spec = dataset.WP.WithCap(sc.ClusterSpecCap)
	p.Duration = sc.ClusterDuration
	p.Warmup = sc.ClusterDuration / 5
	p.Seed = seed
	return p
}

// Fig5a regenerates Figure 5(a): throughput (and latency) of PKG, SG and
// KG while sweeping the injected per-tuple CPU delay from 0.1 ms to 1 ms
// on the simulated 1-source/9-worker cluster.
func Fig5a(sc Scale, seed uint64) []Table {
	t := Table{
		Title: "Figure 5(a) — throughput and latency vs CPU delay (1 source, 9 workers)",
		Columns: []string{"delay(ms)",
			"PKG thr", "SG thr", "KG thr",
			"PKG lat(ms)", "SG lat(ms)", "KG lat(ms)"},
		Notes: []string{
			"shape to check: PKG ≈ SG throughout; KG saturates at ≈0.4ms; at 1ms KG has lost ≈60%, PKG/SG ≈37%",
			"paper: KG latency up to 45% above PKG when loaded",
			"absolute tuples/s reflect the simulator's calibrated source rate, not the authors' hardware",
		},
	}
	for _, delayMs := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		row := []string{f1(delayMs)}
		var thr, lat []string
		for _, m := range []cluster.Method{cluster.PKG, cluster.SG, cluster.KG} {
			p := clusterParams(m, sc, seed)
			p.CPUDelay = delayMs / 1000
			r, err := cluster.Run(p)
			if err != nil {
				panic(fmt.Sprintf("experiments: fig5a: %v", err))
			}
			thr = append(thr, f0(r.Throughput))
			lat = append(lat, ms(r.AvgLatency))
		}
		row = append(row, thr...)
		row = append(row, lat...)
		t.AddRow(row...)
	}
	return []Table{t}
}

// Fig5b regenerates Figure 5(b): throughput vs time-averaged counter
// memory for PKG and SG across aggregation periods T, with KG's running
// counters as the reference line, all at the 0.4 ms delay where KG
// saturates.
func Fig5b(sc Scale, seed uint64) []Table {
	t := Table{
		Title:   "Figure 5(b) — throughput vs memory across aggregation periods (delay 0.4ms)",
		Columns: []string{"T(s)", "Method", "Throughput", "AvgCounters", "AggUtil"},
		Notes: []string{
			"shape to check: PKG above-left of SG at every T (more throughput, less memory);",
			"PKG overtakes the KG reference once T > 30s; shorter T trades memory for throughput",
		},
	}
	kg, err := cluster.Run(clusterParams(cluster.KG, sc, seed))
	if err != nil {
		panic(fmt.Sprintf("experiments: fig5b: %v", err))
	}
	t.AddRow("-", "KG(ref)", f0(kg.Throughput), f0(float64(kg.FinalCounters)), "0.00")
	for _, T := range sc.Fig5bPeriods {
		for _, m := range []cluster.Method{cluster.PKG, cluster.SG} {
			p := clusterParams(m, sc, seed)
			p.AggPeriod = T
			// Long enough for several flush cycles.
			if min := p.Warmup + 3*T; p.Duration < min {
				p.Duration = min
			}
			r, err := cluster.Run(p)
			if err != nil {
				panic(fmt.Sprintf("experiments: fig5b: %v", err))
			}
			t.AddRow(f0(T), m.String(), f0(r.Throughput), f0(r.AvgCounters), f2(r.AggUtilization))
		}
	}
	return []Table{t}
}

package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"pkgstream/internal/engine"
	"pkgstream/internal/rng"
	"pkgstream/internal/transport"
	"pkgstream/internal/window"
	"pkgstream/internal/wire"
)

// Pipeline runs the distributed deployment shape the paper evaluates
// (§V runs PKG inside Storm across real workers): the same windowed
// wordcount executes (a) entirely inside one engine process and (b) as
// source→partial→(TCP)→final, with the final stage hosted behind the
// wire protocol on remote nodes — and the two runs must produce
// IDENTICAL per-(word, window) counts. By default the "remote" nodes
// are in-process TCP loopback listeners (every frame still crosses the
// stack); set PKGNODE_ADDRS to the comma-separated addresses of
// running `pkgnode` processes to span real process boundaries (the CI
// smoke job does exactly that).
//
// Fixed shape (the pkgnode defaults match it): 1 source, 4 partial
// instances under PKG, tumbling 1s windows over a logical 1ms-per-word
// clock, aggregation period T = 2000 tuples, 2 final nodes.
func Pipeline(sc Scale, seed uint64) []Table {
	res := runPipeline(sc, seed, os.Getenv("PKGNODE_ADDRS"))
	return res.tables
}

// Pipeline shape constants — keep in sync with cmd/pkgnode's flag
// defaults (-sources, -win-size) and the CI smoke job.
const (
	pipePartials = 4
	pipeNodes    = 2
	pipeWindow   = time.Second
	pipeEvery    = 2000 // aggregation period T in tuples
	pipeVocab    = 1000
	pipeTick     = time.Millisecond
	pipeMarks    = 500 // SourceMark cadence in tuples
)

// pipeSpout emits a deterministic Zipf word stream on a logical clock,
// advertising progress with source marks.
type pipeSpout struct {
	n    int
	seed uint64

	i int
	z *rng.Zipf
}

func (s *pipeSpout) Open(*engine.Context) {
	s.z = rng.NewZipf(rng.New(s.seed), rng.SolveZipfExponent(pipeVocab, 0.15), pipeVocab)
}
func (s *pipeSpout) Close() {}

func (s *pipeSpout) Next(out engine.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	at := int64(time.Duration(s.i) * pipeTick)
	out.Emit(engine.Tuple{Key: fmt.Sprintf("w%d", s.z.Next()), EmitNanos: at})
	if s.i%pipeMarks == 0 {
		out.Emit(window.SourceMark(0, at))
	}
	if s.i == s.n {
		out.Emit(window.SourceMark(0, int64(1)<<62))
		return false
	}
	return true
}

func pipeSpec() window.Spec {
	return window.Spec{Size: pipeWindow, EveryTuples: pipeEvery, Sources: 1}
}

// pipeRun is one measured deployment of the pipeline wordcount.
type pipeRun struct {
	counts    map[string]int64 // "word@start" → count
	pairs     int
	total     int64
	imbalance float64
	elapsed   time.Duration
}

// pipeResult is what runPipeline hands to Pipeline and to the tests.
type pipeResult struct {
	match          bool
	local, remote  pipeRun
	remoteDeployed string
	tables         []Table
}

// pipeTopology declares the shared half of both deployments; finalize
// is given the builder to attach the run's final stage.
func pipeTopology(n int, seed uint64, opts ...engine.WindowedOption) (*engine.Builder, *window.Plan) {
	plan := window.MustPlan(window.Count{}, pipeSpec())
	b := engine.NewBuilder("pipeline", seed)
	b.AddSpout("words", func() engine.Spout { return &pipeSpout{n: n, seed: seed} }, 1)
	b.WindowedAggregate("wc", plan, pipePartials, opts...).
		Input("words", window.SourceAware(engine.Partial()))
	return b, plan
}

// runLocal executes the in-process deployment.
func runLocal(n int, seed uint64) pipeRun {
	var mu sync.Mutex
	counts := map[string]int64{}
	b, _ := pipeTopology(n, seed)
	b.AddBolt("sink", func() engine.Bolt {
		return engine.BoltFunc(func(t engine.Tuple, _ engine.Emitter) {
			if t.Tick {
				return
			}
			res := t.Values[0].(window.Result)
			mu.Lock()
			counts[fmt.Sprintf("%s@%d", res.Key, res.Start)] += res.Value.(int64)
			mu.Unlock()
		})
	}, 1).Input("wc", engine.Global())
	top, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 2048})
	start := time.Now()
	if err := rt.Run(); err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	return summarize(counts, rt.Stats().Imbalance("wc.partial"), time.Since(start))
}

// runRemote executes the distributed deployment against the given final
// node addresses and drains their results.
func runRemote(n int, seed uint64, addrs []string) pipeRun {
	b, _ := pipeTopology(n, seed, engine.RemoteFinal(addrs...))
	top, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 2048})
	start := time.Now()
	if err := rt.Run(); err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	elapsed := time.Since(start)

	counts := map[string]int64{}
	imb := rt.Stats().Imbalance("wc.partial")
	for _, addr := range addrs {
		for _, res := range drainNode(addr) {
			counts[fmt.Sprintf("%s@%d", res.Key, res.Start)] += res.Value
		}
	}
	return summarize(counts, imb, elapsed)
}

// drainNode pages a final node's closed windows out once it is done.
func drainNode(addr string) []wire.WindowResult {
	out, err := transport.DrainResults(addr, 30*time.Second)
	if err != nil {
		panic(fmt.Sprintf("experiments: pipeline: drain %s: %v", addr, err))
	}
	return out
}

func summarize(counts map[string]int64, imb float64, elapsed time.Duration) pipeRun {
	r := pipeRun{counts: counts, pairs: len(counts), imbalance: imb, elapsed: elapsed}
	for _, c := range counts {
		r.total += c
	}
	return r
}

// equalCounts reports whether two per-(word, window) maps are
// identical.
func equalCounts(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// runPipeline executes both deployments and builds the report.
// addrsEnv is a comma-separated remote node list ("" spins up
// in-process loopback nodes).
func runPipeline(sc Scale, seed uint64, addrsEnv string) pipeResult {
	n := int(sc.MessageCap)
	res := pipeResult{remoteDeployed: "in-process TCP loopback nodes"}

	var addrs []string
	if addrsEnv != "" {
		for _, a := range strings.Split(addrsEnv, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		res.remoteDeployed = fmt.Sprintf("external pkgnode processes (%s)", addrsEnv)
	} else {
		for i := 0; i < pipeNodes; i++ {
			plan := window.MustPlan(window.Count{}, pipeSpec())
			h, err := plan.NewFinalHandler(pipePartials)
			if err != nil {
				panic(fmt.Sprintf("experiments: pipeline: %v", err))
			}
			w, err := transport.ListenHandler("127.0.0.1:0", h)
			if err != nil {
				panic(fmt.Sprintf("experiments: pipeline: %v", err))
			}
			defer w.Close()
			addrs = append(addrs, w.Addr())
		}
	}

	res.local = runLocal(n, seed)
	res.remote = runRemote(n, seed, addrs)
	res.match = equalCounts(res.local.counts, res.remote.counts)

	tb := Table{
		Title: "pipeline — windowed wordcount: in-process engine vs source→partial→(TCP)→final",
		Columns: []string{"deployment", "final nodes", "words", "(word,window) pairs",
			"total count", "partial imbalance", "words/s"},
		Notes: []string{
			fmt.Sprintf("exact-count match: %v — per-(word, window) counts %s across deployments",
				res.match, map[bool]string{true: "identical", false: "DIFFER"}[res.match]),
			fmt.Sprintf("remote final stage: %s", res.remoteDeployed),
			"partial imbalance is identical by construction: one deterministic source, same",
			"seed, same PKG decisions — the wire hop changes where merges happen, not routing",
		},
	}
	row := func(name string, nodes int, r pipeRun) {
		tb.AddRow(name, fmt.Sprint(nodes), fmt.Sprint(n), fmt.Sprint(r.pairs),
			fmt.Sprint(r.total), f1(r.imbalance),
			f0(float64(n)/r.elapsed.Seconds()))
	}
	row("in-process", 1, res.local)
	row("remote-final", len(addrs), res.remote)

	if !res.match {
		diff := Table{
			Title:   "pipeline MISMATCH detail (first 20)",
			Columns: []string{"(word@window)", "in-process", "remote"},
		}
		var keys []string
		for k := range res.local.counts {
			keys = append(keys, k)
		}
		for k := range res.remote.counts {
			if _, ok := res.local.counts[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		shown := 0
		for _, k := range keys {
			if res.local.counts[k] != res.remote.counts[k] && shown < 20 {
				diff.AddRow(k, fmt.Sprint(res.local.counts[k]), fmt.Sprint(res.remote.counts[k]))
				shown++
			}
		}
		res.tables = []Table{tb, diff}
		return res
	}
	res.tables = []Table{tb}
	return res
}

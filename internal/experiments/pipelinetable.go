package experiments

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"pkgstream/internal/engine"
	"pkgstream/internal/metrics"
	"pkgstream/internal/obs"
	"pkgstream/internal/rng"
	"pkgstream/internal/trace"
	"pkgstream/internal/transport"
	"pkgstream/internal/window"
	"pkgstream/internal/wire"
)

// Pipeline runs the distributed deployment shapes the paper evaluates
// (§V runs PKG inside Storm across real workers): the same windowed
// wordcount executes (a) entirely inside one engine process, (b) as
// source→partial→(TCP)→final with the FINAL stage hosted behind the
// wire protocol on remote nodes, and (c) as the fully distributed
// spout→(TCP)→partial→(TCP)→final shape, where the partial stage
// itself runs on remote nodes behind the credit-flow-controlled tuple
// edge — and all three runs must produce IDENTICAL per-(word, window)
// counts. By default the "remote" nodes are in-process TCP loopback
// listeners (every frame still crosses the stack); set PKGNODE_ADDRS
// to the addresses of running `pkgnode -mode final` processes for
// shape (b), and PKGNODE_PARTIAL_ADDRS + PKGNODE_FINAL_ADDRS to the
// addresses of `-mode partial` and `-mode final` process pairs for
// shape (c) — the CI smoke jobs do exactly that.
//
// Fixed shape (the pkgnode defaults match it): 1 source, 4 partial
// instances under PKG, tumbling 1s windows over a logical 1ms-per-word
// clock, aggregation period T = 2000 tuples, 2 final nodes — and for
// the fully distributed shape, 2 partial nodes routed by the tuple
// edge's own PKG.
func Pipeline(sc Scale, seed uint64) []Table {
	res := runPipeline(sc, seed, os.Getenv("PKGNODE_ADDRS"))
	return res.tables
}

// Pipeline shape constants — keep in sync with cmd/pkgnode's flag
// defaults (-sources, -nodes, -win-size) and the CI smoke jobs.
const (
	pipePartials     = 4
	pipeNodes        = 2
	pipePartialNodes = 2
	pipeWindow       = time.Second
	pipeEvery        = 2000 // aggregation period T in tuples
	pipeVocab        = 1000
	pipeTick         = time.Millisecond
	pipeMarks        = 500 // SourceMark cadence in tuples
	// pipeTraceSample traces 1 in this many spout emits during the fully
	// distributed run — enough traces to assemble a cross-process causal
	// path without crowding the flight-recorder rings.
	pipeTraceSample = 1000
)

// pipeSpout emits a deterministic Zipf word stream on a logical clock,
// advertising progress with source marks.
type pipeSpout struct {
	n    int
	seed uint64

	i int
	z *rng.Zipf
}

func (s *pipeSpout) Open(*engine.Context) {
	s.z = rng.NewZipf(rng.New(s.seed), rng.SolveZipfExponent(pipeVocab, 0.15), pipeVocab)
}
func (s *pipeSpout) Close() {}

func (s *pipeSpout) Next(out engine.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	at := int64(time.Duration(s.i) * pipeTick)
	out.Emit(engine.Tuple{Key: fmt.Sprintf("w%d", s.z.Next()), EmitNanos: at})
	if s.i%pipeMarks == 0 {
		out.Emit(window.SourceMark(0, at))
	}
	if s.i == s.n {
		out.Emit(window.SourceMark(0, int64(1)<<62))
		return false
	}
	return true
}

func pipeSpec() window.Spec {
	return window.Spec{Size: pipeWindow, EveryTuples: pipeEvery, Sources: 1}
}

// pipeRun is one measured deployment of the pipeline wordcount.
type pipeRun struct {
	counts    map[string]int64 // "word@start" → count
	pairs     int
	total     int64
	imbalance float64
	elapsed   time.Duration
	// lat is the emit→partial-arrival latency histogram of the run's
	// sampled tuples (engine.Options.LatencySample), folded across the
	// partial instances — or, for the fully distributed shape, merged
	// from the partial NODES' OpStats replies across real sockets.
	lat metrics.HistSnapshot
}

// pipeResult is what runPipeline hands to Pipeline and to the tests.
type pipeResult struct {
	match           bool // remote-final counts == in-process counts
	match3          bool // remote-partial counts == in-process counts
	local, remote   pipeRun
	remote3         pipeRun // fully distributed: remote partial AND final
	remoteDeployed  string
	remote3Deployed string
	tables          []Table
}

// pipeTopology declares the shared half of both deployments; finalize
// is given the builder to attach the run's final stage.
func pipeTopology(n int, seed uint64, opts ...engine.WindowedOption) (*engine.Builder, *window.Plan) {
	plan := window.MustPlan(window.Count{}, pipeSpec())
	b := engine.NewBuilder("pipeline", seed)
	b.AddSpout("words", func() engine.Spout { return &pipeSpout{n: n, seed: seed} }, 1)
	b.WindowedAggregate("wc", plan, pipePartials, opts...).
		Input("words", window.SourceAware(engine.Partial()))
	return b, plan
}

// runLocal executes the in-process deployment.
func runLocal(n int, seed uint64) pipeRun {
	var mu sync.Mutex
	counts := map[string]int64{}
	b, _ := pipeTopology(n, seed)
	b.AddBolt("sink", func() engine.Bolt {
		return engine.BoltFunc(func(t engine.Tuple, _ engine.Emitter) {
			if t.Tick {
				return
			}
			res := t.Values[0].(window.Result)
			mu.Lock()
			counts[fmt.Sprintf("%s@%d", res.Key, res.Start)] += res.Value.(int64)
			mu.Unlock()
		})
	}, 1).Input("wc", engine.Global())
	top, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 2048})
	start := time.Now()
	if err := rt.Run(); err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	st := rt.Stats()
	r := summarize(counts, st.Imbalance("wc.partial"), time.Since(start))
	r.lat = st.LatencyTotals("wc.partial")
	return r
}

// runRemote executes the distributed deployment against the given final
// node addresses and drains their results.
func runRemote(n int, seed uint64, addrs []string) pipeRun {
	b, _ := pipeTopology(n, seed, engine.RemoteFinal(addrs...))
	top, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 2048})
	start := time.Now()
	if err := rt.Run(); err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	elapsed := time.Since(start)

	counts := map[string]int64{}
	st := rt.Stats()
	imb := st.Imbalance("wc.partial")
	for _, addr := range addrs {
		for _, res := range drainNode(addr) {
			counts[fmt.Sprintf("%s@%d", res.Key, res.Start)] += res.Value
		}
	}
	r := summarize(counts, imb, elapsed)
	r.lat = st.LatencyTotals("wc.partial")
	return r
}

// drainNode pages a final node's closed windows out once it is done.
func drainNode(addr string) []wire.WindowResult {
	out, err := transport.DrainResults(addr, 30*time.Second)
	if err != nil {
		panic(fmt.Sprintf("experiments: pipeline: drain %s: %v", addr, err))
	}
	return out
}

// runRemotePartial executes the fully distributed deployment: the
// engine process keeps only the spout and a forwarder; tuples cross the
// flow-controlled wire edge to the partial nodes, which forward their
// flushed partials to the final nodes. Results are collected with the
// push subscription (no drain poll), and the partial imbalance is
// computed over the partial NODES' absorbed-tuple counts (OpStats) —
// the paper's worker-load vector, measured across real sockets.
func runRemotePartial(n int, seed uint64, paddrs, faddrs []string) pipeRun {
	// Explicit edge knobs, exercising the batched wire path end to end:
	// 256-tuple batches under a 1024-tuple credit window, with a short
	// linger so the tail of a skewed stream never waits on a full batch.
	// This is the run that exercises every hop, so it is the one that
	// traces: 1-in-pipeTraceSample spout emits carry a trace ID across
	// both wire edges, and the nodes' rings are queried back afterwards.
	r, _ := runRemotePartialCfg(n, seed, faddrs, engine.RemotePartialConfig{
		Addrs:          paddrs,
		Window:         1024,
		MaxBatchTuples: 256,
		MaxBatchBytes:  32 << 10,
		Linger:         2 * time.Millisecond,
	}, pipeTraceSample)
	return r
}

// runRemotePartialCfg is runRemotePartial with the edge configuration
// (cfg.Addrs names the partial nodes) and trace sampling under caller
// control, additionally returning the engine-side edge counters folded
// across the forwarder instances — the slow-worker experiment compares
// those between a static and an adaptive leg.
func runRemotePartialCfg(n int, seed uint64, faddrs []string, cfg engine.RemotePartialConfig, traceSample int) (pipeRun, engine.EdgeStats) {
	paddrs := cfg.Addrs
	b, _ := pipeTopology(n, seed, engine.RemotePartialOpts(cfg))
	top, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 2048, TraceSample: traceSample})
	start := time.Now()
	if err := rt.Run(); err != nil {
		panic(fmt.Sprintf("experiments: pipeline: %v", err))
	}
	elapsed := time.Since(start)

	// The partial nodes' loads and arrival-latency histograms ride the
	// OpStats replies — cross-process measurements without scraping
	// anything. obs owns the poll/merge arithmetic (pkgtop shows the
	// same numbers live).
	nodes := obs.Poll(paddrs, "partial")
	for _, nd := range nodes {
		if nd.Err != nil {
			panic(fmt.Sprintf("experiments: pipeline: stats %s: %v", nd.Addr, nd.Err))
		}
	}
	cl := obs.Merge(nodes)
	lat := cl.Lat
	imb := cl.Imbalance

	counts := map[string]int64{}
	for _, addr := range faddrs {
		res, err := transport.SubscribeResults(addr, 30*time.Second)
		if err != nil {
			panic(fmt.Sprintf("experiments: pipeline: subscribe %s: %v", addr, err))
		}
		for _, r := range res {
			counts[fmt.Sprintf("%s@%d", r.Key, r.Start)] += r.Value
		}
	}
	r := summarize(counts, imb, elapsed)
	r.lat = lat
	var es engine.EdgeStats
	for _, insts := range rt.Stats().Edges {
		for _, e := range insts {
			es.Fold(e)
		}
	}
	return r, es
}

// Slow-worker experiment shape: partial node 0 is slowed by a fixed
// per-tuple dispatch delay (transport.Slow — the same fault injector
// behind `pkgnode -slow-worker`), and the fully distributed pipeline
// runs twice over identical nodes: once with the static edge
// configuration and once with the adaptive controllers on
// (AdaptiveWindow + WeightedRouting). Small batches keep the worker's
// 1-in-64 frame service-time sampling firing early, so the senders
// learn the slow node's rate within the first few thousand tuples.
const (
	slowPipeDelay = 300 * time.Microsecond
	slowPipeBatch = 8
	slowPipeCap   = 40_000
)

// PipelineSlow reproduces the paper's heterogeneous-cluster concern
// (§V runs on uniform workers; real clusters are not) as an ablation:
// with one of the two partial nodes 4-5 orders slower per tuple than
// its peer, the static edge splits ~50/50 on local load counts and the
// run is gated on the slow node draining half the stream, while the
// adaptive edge weighs candidates by ack-learned service rates and
// sheds load to the fast node, and its AIMD windows stop queueing a
// full static window behind the slow node. Both legs must still match
// the in-process counts exactly — load-awareness moves tuples between
// partial NODES, which is exactly the split PKG makes safe.
func PipelineSlow(sc Scale, seed uint64) []Table {
	// A fifth of the scale's stream is plenty: the static leg drains at
	// the slow node's pace (~40 min of simulated work per 10k tuples it
	// absorbs), so the cap keeps the ablation seconds-long while leaving
	// thousands of post-convergence tuples in the adaptive leg.
	n := int(sc.MessageCap / 5)
	if n > slowPipeCap {
		n = slowPipeCap
	}
	local := runLocal(n, seed)

	type leg struct {
		name     string
		run      pipeRun
		es       engine.EdgeStats
		loads    []int64
		match    bool
		adaptive bool
	}
	runLeg := func(name string, adaptive bool) leg {
		var workers []*transport.Worker
		defer func() {
			for _, w := range workers {
				_ = w.Close()
			}
		}()
		listen := func(h transport.Handler) string {
			w, err := transport.ListenHandler("127.0.0.1:0", h)
			if err != nil {
				panic(fmt.Sprintf("experiments: pipeline-slow: %v", err))
			}
			workers = append(workers, w)
			return w.Addr()
		}
		faddrs := make([]string, pipeNodes)
		for i := range faddrs {
			plan := window.MustPlan(window.Count{}, pipeSpec())
			h, err := plan.NewFinalHandler(pipePartialNodes)
			if err != nil {
				panic(fmt.Sprintf("experiments: pipeline-slow: %v", err))
			}
			faddrs[i] = listen(h)
		}
		paddrs := make([]string, pipePartialNodes)
		for i := range paddrs {
			plan := window.MustPlan(window.Count{}, pipeSpec())
			h, err := plan.NewPartialHandler(window.PartialHandlerOptions{
				ID: i, Nodes: pipePartialNodes, FinalAddrs: faddrs, Seed: seed,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: pipeline-slow: %v", err))
			}
			var th transport.Handler = h
			if i == 0 {
				th = transport.Slow(h, slowPipeDelay)
			}
			paddrs[i] = listen(th)
		}
		r, es := runRemotePartialCfg(n, seed, faddrs, engine.RemotePartialConfig{
			Addrs:           paddrs,
			Window:          1024,
			MaxBatchTuples:  slowPipeBatch,
			MaxBatchBytes:   32 << 10,
			Linger:          2 * time.Millisecond,
			AdaptiveWindow:  adaptive,
			WeightedRouting: adaptive,
		}, 0)
		loads := make([]int64, len(paddrs))
		for i, nd := range obs.Poll(paddrs, "partial") {
			if nd.Err != nil {
				panic(fmt.Sprintf("experiments: pipeline-slow: stats %s: %v", nd.Addr, nd.Err))
			}
			loads[i] = nd.Count
		}
		return leg{name: name, run: r, es: es, loads: loads,
			match: equalCounts(local.counts, r.counts), adaptive: adaptive}
	}

	legs := []leg{
		runLeg("static", false),
		runLeg("adaptive", true),
	}

	tb := Table{
		Title: fmt.Sprintf("pipeline slow-worker — heterogeneous cluster: static vs adaptive edge (partial node 0 slowed %v/tuple)", slowPipeDelay),
		Columns: []string{"edge", "words", "words/s", "elapsed s", "slow-node share",
			"p50 ms", "p99 ms", "stalls", "stall wait ms", "end window"},
	}
	for _, l := range legs {
		share := 0.0
		if total := l.loads[0] + l.loads[1]; total > 0 {
			share = float64(l.loads[0]) / float64(total)
		}
		tb.AddRow(l.name, fmt.Sprint(n),
			f0(float64(n)/l.run.elapsed.Seconds()),
			f2(l.run.elapsed.Seconds()),
			f2(share),
			f2(float64(l.run.lat.Quantile(0.5))/1e6),
			f2(float64(l.run.lat.Quantile(0.99))/1e6),
			fmt.Sprint(l.es.Stalls),
			f1(float64(l.es.WaitNs)/1e6),
			fmt.Sprint(l.es.Window))
	}
	ratio := legs[1].run.elapsed.Seconds() / legs[0].run.elapsed.Seconds()
	speedup := 0.0
	if ratio > 0 {
		speedup = 1 / ratio
	}
	tb.Notes = []string{
		fmt.Sprintf("exact-count match (static): %v; exact-count match (adaptive): %v",
			legs[0].match, legs[1].match),
		fmt.Sprintf("slow-worker speedup: adaptive/static throughput = %.2f", speedup),
		fmt.Sprintf("adaptive >= 1.30x static: %v", speedup >= 1.30),
		"the static edge's PKG sees only local sent counts, so it splits the stream evenly",
		"and the run drains at the slow node's pace; the adaptive edge learns per-node",
		"service rates from ack piggybacks, routes by estimated drain time, and its AIMD",
		"windows stop parking a full credit window of tuples behind the slow node",
		"'slow-node share' is the slowed node's fraction of absorbed tuples (OpStats);",
		"'end window' sums the forwarders' live credit windows at run end",
	}
	return []Table{tb}
}

// pipeTraces assembles cross-process traces after the fully
// distributed run: the engine-local ring plus every node's OpTrace
// reply, grouped by trace ID. Loopback nodes share this process's ring
// and are deduped by process name; a node that cannot be queried
// contributes a gap, not a failure — tracing is diagnostic output.
func pipeTraces(nodeAddrs []string) map[uint64][]trace.Span {
	proc := trace.Process()
	local := trace.Default.Snapshot()
	all := make([]trace.Span, 0, len(local))
	for _, s := range local {
		s.Proc = proc
		all = append(all, s)
	}
	for _, addr := range nodeAddrs {
		rep, err := transport.QueryAddr(addr, wire.Query{Op: wire.OpTrace})
		if err != nil {
			continue
		}
		if rep.Proc == "" || rep.Proc == proc {
			continue // loopback node: its spans are already in the local ring
		}
		all = append(all, transport.SpansFromWire(rep.Proc, rep.Spans)...)
	}
	return trace.ByTrace(all)
}

// pipeTraceRoles reports which deployment roles a trace has spans
// from: the spout/routing engine, the partial stage, the final stage.
// Classification is by hop, not process name, so it works identically
// for loopback nodes (one process) and real pkgnode processes.
func pipeTraceRoles(spans []trace.Span) (spout, partial, final bool) {
	for _, s := range spans {
		switch s.Hop {
		case trace.HopEmit, trace.HopRoute, trace.HopEnqueue:
			spout = true
		case trace.HopPartial, trace.HopFlush:
			partial = true
		case trace.HopMerge, trace.HopWindowClose, trace.HopResult:
			final = true
		}
	}
	return
}

// pipeTraceTable renders the assembled traces: the most complete trace
// hop by hop with per-hop timings, plus one greppable summary line per
// fully assembled trace (the multiproc CI smoke gates on `roles=3`).
func pipeTraceTable(byID map[uint64][]trace.Span) Table {
	tb := Table{
		Title:   "pipeline tracing — cross-process per-tuple causal path (fully distributed run)",
		Columns: []string{"hop", "process", "+ms", "dur µs", "arg1", "arg2", "note"},
	}
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	roleCount := func(spans []trace.Span) int {
		sp, pa, fi := pipeTraceRoles(spans)
		return b2i(sp) + b2i(pa) + b2i(fi)
	}
	ids := make([]uint64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var best uint64
	bestRoles, bestSpans, complete := -1, -1, 0
	for _, id := range ids {
		roles, n := roleCount(byID[id]), len(byID[id])
		if roles == 3 {
			complete++
		}
		if roles > bestRoles || (roles == bestRoles && n > bestSpans) {
			best, bestRoles, bestSpans = id, roles, n
		}
	}
	if best != 0 {
		spans := byID[best]
		t0 := spans[0].Start
		for _, s := range spans {
			tb.AddRow(s.Hop.String(), s.Proc,
				f2(float64(s.Start-t0)/1e6), f1(float64(s.Dur)/1e3),
				fmt.Sprint(s.Arg1), fmt.Sprint(s.Arg2), s.Note)
		}
		last := spans[len(spans)-1]
		tb.Notes = append(tb.Notes, fmt.Sprintf(
			"shown: trace %016x — spout emit → %s in %.2f ms over %d hops",
			best, last.Hop, float64(last.Start+last.Dur-t0)/1e6, len(spans)))
	}
	tb.Notes = append(tb.Notes, fmt.Sprintf(
		"assembled traces: %d; spanning all three roles (spout/route, partial, final): %d",
		len(byID), complete))
	shown := 0
	for _, id := range ids {
		if roleCount(byID[id]) != 3 || shown >= 8 {
			continue
		}
		shown++
		procs := map[string]bool{}
		for _, s := range byID[id] {
			procs[s.Proc] = true
		}
		tb.Notes = append(tb.Notes, fmt.Sprintf("trace %016x: procs=%d roles=3 spans=%d",
			id, len(procs), len(byID[id])))
	}
	return tb
}

func summarize(counts map[string]int64, imb float64, elapsed time.Duration) pipeRun {
	r := pipeRun{counts: counts, pairs: len(counts), imbalance: imb, elapsed: elapsed}
	for _, c := range counts {
		r.total += c
	}
	return r
}

// equalCounts reports whether two per-(word, window) maps are
// identical.
func equalCounts(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// runPipeline executes all three deployments and builds the report.
// addrsEnv is a comma-separated final-node list for the remote-final
// shape ("" spins up in-process loopback nodes); the fully distributed
// shape reads PKGNODE_PARTIAL_ADDRS and PKGNODE_FINAL_ADDRS the same
// way.
func runPipeline(sc Scale, seed uint64, addrsEnv string) pipeResult {
	n := int(sc.MessageCap)
	res := pipeResult{
		remoteDeployed:  "in-process TCP loopback nodes",
		remote3Deployed: "in-process TCP loopback nodes",
	}

	var workers []*transport.Worker
	defer func() {
		for _, w := range workers {
			_ = w.Close()
		}
	}()
	listenLoop := func(h transport.Handler) string {
		w, err := transport.ListenHandler("127.0.0.1:0", h)
		if err != nil {
			panic(fmt.Sprintf("experiments: pipeline: %v", err))
		}
		workers = append(workers, w)
		return w.Addr()
	}
	newFinals := func(nodes, sources int) []string {
		addrs := make([]string, nodes)
		for i := range addrs {
			plan := window.MustPlan(window.Count{}, pipeSpec())
			h, err := plan.NewFinalHandler(sources)
			if err != nil {
				panic(fmt.Sprintf("experiments: pipeline: %v", err))
			}
			addrs[i] = listenLoop(h)
		}
		return addrs
	}

	var addrs []string
	if addrsEnv != "" {
		addrs = transport.SplitAddrs(addrsEnv)
		res.remoteDeployed = fmt.Sprintf("external pkgnode processes (%s)", addrsEnv)
	} else {
		addrs = newFinals(pipeNodes, pipePartials)
	}

	// The fully distributed shape: partial nodes forwarding to their
	// own final nodes.
	var paddrs, faddrs []string
	if pa, fa := os.Getenv("PKGNODE_PARTIAL_ADDRS"), os.Getenv("PKGNODE_FINAL_ADDRS"); pa != "" && fa != "" {
		paddrs, faddrs = transport.SplitAddrs(pa), transport.SplitAddrs(fa)
		res.remote3Deployed = fmt.Sprintf("external pkgnode processes (%s → %s)", pa, fa)
	} else {
		faddrs = newFinals(pipeNodes, pipePartialNodes)
		paddrs = make([]string, pipePartialNodes)
		for i := range paddrs {
			plan := window.MustPlan(window.Count{}, pipeSpec())
			h, err := plan.NewPartialHandler(window.PartialHandlerOptions{
				ID: i, Nodes: pipePartialNodes, FinalAddrs: faddrs, Seed: seed,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: pipeline: %v", err))
			}
			paddrs[i] = listenLoop(h)
		}
	}

	// Name the engine process for trace spans before anything records:
	// assembled cross-process traces group spans by these names.
	trace.SetProcess("engine")

	res.local = runLocal(n, seed)
	res.remote = runRemote(n, seed, addrs)
	res.remote3 = runRemotePartial(n, seed, paddrs, faddrs)
	res.match = equalCounts(res.local.counts, res.remote.counts)
	res.match3 = equalCounts(res.local.counts, res.remote3.counts)

	// Pull every node's retained spans back over the query channel and
	// assemble the fully distributed run's traces (the nodes are still
	// listening — loopback workers close at return, external pkgnodes at
	// their own shutdown).
	traceTable := pipeTraceTable(pipeTraces(append(append([]string{}, paddrs...), faddrs...)))

	tb := Table{
		Title: "pipeline — windowed wordcount: in-process vs remote final vs remote partial+final",
		Columns: []string{"deployment", "nodes", "words", "(word,window) pairs",
			"total count", "partial imbalance", "words/s",
			"p50 ms", "p99 ms", "p99.9 ms"},
		Notes: []string{
			fmt.Sprintf("exact-count match (remote-final): %v — per-(word, window) counts %s",
				res.match, map[bool]string{true: "identical", false: "DIFFER"}[res.match]),
			fmt.Sprintf("exact-count match (remote-partial): %v — per-(word, window) counts %s",
				res.match3, map[bool]string{true: "identical", false: "DIFFER"}[res.match3]),
			fmt.Sprintf("remote final stage: %s", res.remoteDeployed),
			fmt.Sprintf("remote partial stage: %s; tuples cross a credit-flow-controlled wire edge",
				res.remote3Deployed),
			"remote-final partial imbalance equals in-process by construction (same seed, same",
			"PKG decisions); remote-partial imbalance is over the partial NODES' tuple counts,",
			"routed by the tuple edge's own PKG, and results arrive via push subscription",
			"latency columns are emit→partial-arrival wall time of sampled tuples (1 in 64",
			"spout emits): routing + queues in-process, plus the credit-flow-controlled wire",
			"edge for remote-partial (pulled off the nodes' OpStats replies, no HTTP)",
		},
	}
	row := func(name string, nodes int, r pipeRun) {
		tb.AddRow(name, fmt.Sprint(nodes), fmt.Sprint(n), fmt.Sprint(r.pairs),
			fmt.Sprint(r.total), f1(r.imbalance),
			f0(float64(n)/r.elapsed.Seconds()),
			f2(float64(r.lat.Quantile(0.5))/1e6),
			f2(float64(r.lat.Quantile(0.99))/1e6),
			f2(float64(r.lat.Quantile(0.999))/1e6))
	}
	row("in-process", 1, res.local)
	row("remote-final", len(addrs), res.remote)
	row("remote-partial+final", len(paddrs)+len(faddrs), res.remote3)

	res.tables = []Table{tb, traceTable}
	for _, bad := range []struct {
		label string
		run   pipeRun
		ok    bool
	}{
		{"remote-final", res.remote, res.match},
		{"remote-partial", res.remote3, res.match3},
	} {
		if bad.ok {
			continue
		}
		diff := Table{
			Title:   fmt.Sprintf("pipeline MISMATCH detail, %s (first 20)", bad.label),
			Columns: []string{"(word@window)", "in-process", bad.label},
		}
		var keys []string
		for k := range res.local.counts {
			keys = append(keys, k)
		}
		for k := range bad.run.counts {
			if _, ok := res.local.counts[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		shown := 0
		for _, k := range keys {
			if res.local.counts[k] != bad.run.counts[k] && shown < 20 {
				diff.AddRow(k, fmt.Sprint(res.local.counts[k]), fmt.Sprint(bad.run.counts[k]))
				shown++
			}
		}
		res.tables = append(res.tables, diff)
	}
	return res
}

package route

import (
	"fmt"
	"sort"

	"pkgstream/internal/metrics"
)

// PoTC is the power of two choices applied to key grouping *without* key
// splitting ("static PoTC", §III.A): the first time a key is seen it is
// assigned to the less-loaded of its two candidates, and that choice is
// remembered in a routing table forever after. It preserves key-grouping
// atomicity but needs per-key state and, in a real distributed setting,
// coordination among sources — the costs the paper's key splitting
// removes. The paper evaluates it with global load information; give it
// the true load vector as its view.
type PoTC struct {
	w     int
	seeds []uint64
	view  *metrics.Load
	table map[uint64]int32
	cands []int
}

// NewPoTC returns a static-PoTC partitioner over w workers. It panics on
// invalid arguments (see NewPKG).
func NewPoTC(w int, seed uint64, view *metrics.Load) *PoTC {
	if w <= 0 {
		panic("route: NewPoTC with w <= 0")
	}
	if view == nil || view.N() != w {
		panic("route: NewPoTC with nil or mismatched view")
	}
	return &PoTC{
		w:     w,
		seeds: choiceSeeds(seed, 2),
		view:  view,
		table: make(map[uint64]int32),
		cands: make([]int, 2),
	}
}

// Route implements Router.
func (g *PoTC) Route(key uint64) int {
	if w, ok := g.table[key]; ok {
		return int(w)
	}
	candidates(g.cands, key, g.seeds, g.w)
	best := leastLoaded(g.view, g.cands)
	g.table[key] = int32(best)
	return best
}

// TableSize returns the number of routing-table entries — the per-key
// state the paper argues is impractical at billions of keys.
func (g *PoTC) TableSize() int { return len(g.table) }

// Workers implements Router.
func (g *PoTC) Workers() int { return g.w }

// Name implements Router.
func (g *PoTC) Name() string { return "PoTC" }

// OnGreedy is the online greedy baseline: a never-seen key is assigned to
// the least-loaded worker overall (all W workers are candidates) and the
// assignment is remembered. It is the d → ∞ limit of static PoTC and
// needs both a full routing table and global load knowledge.
type OnGreedy struct {
	w     int
	view  *metrics.Load
	table map[uint64]int32
}

// NewOnGreedy returns an online-greedy partitioner over w workers.
func NewOnGreedy(w int, view *metrics.Load) *OnGreedy {
	if w <= 0 {
		panic("route: NewOnGreedy with w <= 0")
	}
	if view == nil || view.N() != w {
		panic("route: NewOnGreedy with nil or mismatched view")
	}
	return &OnGreedy{w: w, view: view, table: make(map[uint64]int32)}
}

// Route implements Router.
func (g *OnGreedy) Route(key uint64) int {
	if w, ok := g.table[key]; ok {
		return int(w)
	}
	best := g.view.ArgMin()
	g.table[key] = int32(best)
	return best
}

// TableSize returns the number of routing-table entries.
func (g *OnGreedy) TableSize() int { return len(g.table) }

// Workers implements Router.
func (g *OnGreedy) Workers() int { return g.w }

// Name implements Router.
func (g *OnGreedy) Name() string { return "On-Greedy" }

// KeyFreq is a key with its total frequency in the stream, the input to
// the offline greedy baseline.
type KeyFreq struct {
	Key   uint64
	Count int64
}

// OffGreedy is the offline greedy baseline (LPT scheduling): given the
// *whole* key-frequency distribution up front, keys are sorted by
// decreasing frequency and each is assigned to the worker with the
// smallest total assigned frequency. It is clairvoyant — "an unfair
// comparison for online algorithms" — yet the paper shows PKG beats it,
// because no severed-key assignment can compensate for a single key
// whose frequency exceeds the ideal per-worker share, while key
// splitting spreads that key over two workers.
type OffGreedy struct {
	w        int
	table    map[uint64]int32
	fallback *KeyGrouping
}

// NewOffGreedy builds the LPT assignment for the given frequency
// distribution over w workers. Keys not present in freqs fall back to
// hashing (they should not occur when the distribution is complete).
func NewOffGreedy(w int, seed uint64, freqs []KeyFreq) *OffGreedy {
	if w <= 0 {
		panic("route: NewOffGreedy with w <= 0")
	}
	sorted := make([]KeyFreq, len(freqs))
	copy(sorted, freqs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		return sorted[i].Key < sorted[j].Key
	})
	assigned := metrics.NewLoad(w)
	table := make(map[uint64]int32, len(sorted))
	for _, kf := range sorted {
		best := assigned.ArgMin()
		table[kf.Key] = int32(best)
		assigned.AddN(best, kf.Count)
	}
	return &OffGreedy{w: w, table: table, fallback: NewKeyGrouping(w, seed)}
}

// Route implements Router.
func (g *OffGreedy) Route(key uint64) int {
	if w, ok := g.table[key]; ok {
		return int(w)
	}
	return g.fallback.Route(key)
}

// Workers implements Router.
func (g *OffGreedy) Workers() int { return g.w }

// Name implements Router.
func (g *OffGreedy) Name() string { return "Off-Greedy" }

// Assignment returns the worker assigned to key and whether the key was
// part of the offline distribution.
func (g *OffGreedy) Assignment(key uint64) (int, bool) {
	w, ok := g.table[key]
	return int(w), ok
}

var (
	_ Router = (*KeyGrouping)(nil)
	_ Router = (*ShuffleGrouping)(nil)
	_ Router = (*PKG)(nil)
	_ Router = (*PoTC)(nil)
	_ Router = (*OnGreedy)(nil)
	_ Router = (*OffGreedy)(nil)
)

// String formatting helper shared by reports: technique plus parameters.
func Describe(p Router) string {
	return fmt.Sprintf("%s/W=%d", p.Name(), p.Workers())
}

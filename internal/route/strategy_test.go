package route

import (
	"strings"
	"testing"

	"pkgstream/internal/metrics"
)

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		StrategyKG:        "KG",
		StrategySG:        "SG",
		StrategyPKG:       "PKG",
		StrategyPoTC:      "PoTC",
		StrategyOnGreedy:  "On-Greedy",
		StrategyOffGreedy: "Off-Greedy",
		Strategy(99):      "Strategy(99)",
	}
	for s, label := range want {
		if got := s.String(); got != label {
			t.Errorf("%d.String() = %q, want %q", int(s), got, label)
		}
	}
}

func TestStrategyNeedsView(t *testing.T) {
	for _, s := range []Strategy{StrategyPKG, StrategyPoTC, StrategyOnGreedy} {
		if !s.NeedsView() {
			t.Errorf("%v.NeedsView() = false, want true", s)
		}
	}
	for _, s := range []Strategy{StrategyKG, StrategySG, StrategyOffGreedy} {
		if s.NeedsView() {
			t.Errorf("%v.NeedsView() = true, want false", s)
		}
	}
}

func TestNewConstructsEveryStrategy(t *testing.T) {
	const w = 8
	cases := []Config{
		{Strategy: StrategyKG, Workers: w, Seed: 1},
		{Strategy: StrategySG, Workers: w, Start: 3},
		{Strategy: StrategyPKG, Workers: w, Seed: 1, View: NewLoad(w)},
		{Strategy: StrategyPKG, Workers: w, Seed: 1, D: 4, View: NewLoad(w)},
		{Strategy: StrategyPoTC, Workers: w, Seed: 1, View: NewLoad(w)},
		{Strategy: StrategyOnGreedy, Workers: w, View: NewLoad(w)},
		{Strategy: StrategyOffGreedy, Workers: w, Seed: 1,
			Freqs: []KeyFreq{{Key: 1, Count: 10}, {Key: 2, Count: 5}}},
	}
	for _, cfg := range cases {
		r, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		if r.Workers() != w {
			t.Errorf("%v: Workers() = %d, want %d", cfg.Strategy, r.Workers(), w)
		}
		for key := uint64(0); key < 100; key++ {
			if dst := r.Route(key); dst < 0 || dst >= w {
				t.Fatalf("%v: Route(%d) = %d out of range", cfg.Strategy, key, dst)
			}
		}
	}
}

func TestNewDefaultsPKGToTwoChoices(t *testing.T) {
	r, err := New(Config{Strategy: StrategyPKG, Workers: 10, Seed: 7, View: NewLoad(10)})
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := r.(*PKG)
	if !ok {
		t.Fatalf("New returned %T, want *PKG", r)
	}
	if pkg.D() != 2 {
		t.Fatalf("default D = %d, want 2", pkg.D())
	}
}

func TestNewRejectsInvalidConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		frag string
	}{
		{"zero workers", Config{Strategy: StrategyKG}, "positive Workers"},
		{"missing view", Config{Strategy: StrategyPKG, Workers: 4}, "needs a load view"},
		{"mismatched view", Config{Strategy: StrategyPoTC, Workers: 4, View: NewLoad(5)}, "want 4"},
		{"negative d", Config{Strategy: StrategyPKG, Workers: 4, D: -1, View: NewLoad(4)}, "positive D"},
		{"unknown strategy", Config{Strategy: Strategy(42), Workers: 4}, "unknown strategy"},
	}
	for _, c := range cases {
		_, err := New(c.cfg)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestKeyHashStable(t *testing.T) {
	// The engine caches KeyHash on tuples and every layer re-derives
	// candidates from it, so it must be a pure function of the key bytes.
	if KeyHash("hello") != KeyHash("hello") {
		t.Fatal("KeyHash not deterministic")
	}
	if KeyHash("hello") == KeyHash("world") {
		t.Fatal("KeyHash collided on distinct short keys (astronomically unlikely)")
	}
}

func TestCandidatesManyChoicesNoTruncation(t *testing.T) {
	// Regression for the engine's old hand-rolled copy, which silently
	// truncated Greedy-d at d = 8 (a fixed [8]int buffer). The shared
	// construction must keep producing distinct candidates past d = 8.
	const w, d = 32, 12
	g := NewPKG(w, d, 17, metrics.NewLoad(w))
	for key := uint64(0); key < 500; key++ {
		cands := g.Candidates(key)
		if len(cands) != d {
			t.Fatalf("key %d: %d candidates, want %d", key, len(cands), d)
		}
		seen := map[int]bool{}
		for _, c := range cands {
			if c < 0 || c >= w {
				t.Fatalf("key %d: candidate %d out of range", key, c)
			}
			if seen[c] {
				t.Fatalf("key %d: duplicate candidate %d at d=%d", key, c, d)
			}
			seen[c] = true
		}
	}
}

func TestProbeSet(t *testing.T) {
	const w = 6
	// PKG: the d distinct candidates.
	pkg := NewPKG(w, 3, 5, NewLoad(w))
	for key := uint64(0); key < 100; key++ {
		got := ProbeSet(pkg, key)
		want := pkg.Candidates(key)
		if len(got) != 3 {
			t.Fatalf("key %d: PKG probe set %v, want 3 distinct candidates", key, got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("key %d: probe set %v != candidates %v", key, got, want)
			}
		}
	}
	// PKG with d > W: duplicates from the repeat-padding are removed.
	wide := NewPKG(3, 5, 1, NewLoad(3))
	for key := uint64(0); key < 100; key++ {
		got := ProbeSet(wide, key)
		seen := map[int]bool{}
		for _, c := range got {
			if seen[c] {
				t.Fatalf("key %d: duplicate %d in probe set %v", key, c, got)
			}
			seen[c] = true
		}
		if len(got) > 3 {
			t.Fatalf("key %d: probe set %v larger than worker count", key, got)
		}
	}
	// KG: exactly the hash destination.
	kg := NewKeyGrouping(w, 9)
	if got := ProbeSet(kg, 42); len(got) != 1 || got[0] != kg.Route(42) {
		t.Fatalf("KG probe set = %v, want [%d]", got, kg.Route(42))
	}
	// Key-oblivious strategies: every worker.
	sg := NewShuffleGrouping(w, 0)
	if got := ProbeSet(sg, 42); len(got) != w {
		t.Fatalf("SG probe set has %d workers, want %d", len(got), w)
	}
}

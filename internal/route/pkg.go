package route

import (
	"fmt"

	"pkgstream/internal/hash"
	"pkgstream/internal/metrics"
)

// PKG is PARTIAL KEY GROUPING: the Greedy-d process of §IV with key
// splitting. Each key k has d candidate workers H1(k), ..., Hd(k); every
// message is routed to the candidate that is least loaded *according to
// the partitioner's load view*. No routing table is kept — a key may be
// served by all of its candidates over time (key splitting), which is
// what removes the need for coordination and makes the scheme adaptive
// to popularity drift.
//
// The paper's PKG is the d = 2 instance; d is a parameter here to support
// the ablation showing that d = 2 captures essentially all of the gain
// (more choices only improve constant factors, Azar et al.).
//
// The view is the information model:
//
//   - pass the true load vector shared with the driver → global oracle "G";
//   - pass a per-source vector that the source updates with its own
//     traffic → local load estimation "L" (the paper's practical choice);
//   - pass a per-source vector periodically refreshed from true loads →
//     probing "LP".
type PKG struct {
	w     int
	d     int
	seeds []uint64
	view  *metrics.Load
	rates *Rates
	cands []int
}

// NewPKG returns a PKG partitioner over w workers with d choices, hash
// seeds derived from seed, and the given load view. It panics on w <= 0,
// d <= 0, a nil view, or a view sized differently from w.
func NewPKG(w, d int, seed uint64, view *metrics.Load) *PKG {
	if w <= 0 {
		panic("route: NewPKG with w <= 0")
	}
	if view == nil {
		panic("route: NewPKG with nil view")
	}
	if view.N() != w {
		panic(fmt.Sprintf("route: NewPKG view has %d workers, want %d", view.N(), w))
	}
	return &PKG{
		w:     w,
		d:     d,
		seeds: choiceSeeds(seed, d),
		view:  view,
		cands: make([]int, d),
	}
}

// Route implements Router: it returns the least-loaded candidate
// under the current view. The caller records the message into the
// relevant load vectors afterwards.
func (g *PKG) Route(key uint64) int {
	if len(g.seeds) == 2 && g.w >= 2 {
		// The paper's d = 2, inlined: same candidate construction as
		// candidates() without staging the pair through g.cands.
		r0 := int(mod(hash.Mix64(key, g.seeds[0]), uint64(g.w)))
		r1 := int(mod(hash.Mix64(key, g.seeds[1]), uint64(g.w-1)))
		if r1 >= r0 {
			r1++
		}
		if g.rates != nil {
			g.cands = g.cands[:2]
			g.cands[0], g.cands[1] = r0, r1
			return leastLoadedWeighted(g.view, g.rates, g.cands)
		}
		if g.view.Get(r1) < g.view.Get(r0) {
			return r1
		}
		return r0
	}
	candidates(g.cands, key, g.seeds, g.w)
	if g.rates != nil {
		return leastLoadedWeighted(g.view, g.rates, g.cands)
	}
	return leastLoaded(g.view, g.cands)
}

// Candidates returns the candidate workers for key (a fresh slice). The
// candidate set is a pure function of the key and the construction seed,
// so any party — e.g. a query router probing the workers that may hold
// state for a key (§VI.A) — can recompute it.
func (g *PKG) Candidates(key uint64) []int {
	out := make([]int, g.d)
	candidates(out, key, g.seeds, g.w)
	return out
}

// SetRates attaches a per-worker service-rate view: when non-nil,
// Route switches from the plain load argmin to the heterogeneous
// weighted argmin (leastLoadedWeighted), preferring the candidate
// whose queue drains soonest under the measured service times. Pass
// nil to restore unweighted PKG. The view must cover all w workers.
func (g *PKG) SetRates(r *Rates) {
	if r != nil && r.N() != g.w {
		panic(fmt.Sprintf("route: SetRates over %d workers, want %d", r.N(), g.w))
	}
	g.rates = r
}

// View returns the load view this partitioner consults.
func (g *PKG) View() *metrics.Load { return g.view }

// D returns the number of choices.
func (g *PKG) D() int { return g.d }

// Workers implements Router.
func (g *PKG) Workers() int { return g.w }

// Name implements Router.
func (g *PKG) Name() string {
	if g.d == 2 {
		return "PKG"
	}
	return fmt.Sprintf("PKG(d=%d)", g.d)
}

package route

import "fmt"

// Strategy identifies one of the routing strategies studied in the
// paper. It is the single strategy enumeration shared by every layer:
// internal/simulate, internal/cluster and internal/transport alias their
// Method/Mode types to it instead of declaring private copies.
type Strategy int

// The six strategies of §V, in the order the paper introduces them.
const (
	// StrategyKG is key grouping: single-choice hashing ("H").
	StrategyKG Strategy = iota
	// StrategySG is shuffle grouping: round-robin routing.
	StrategySG
	// StrategyPKG is partial key grouping (Greedy-d with key splitting).
	StrategyPKG
	// StrategyPoTC is the power of two choices without key splitting.
	StrategyPoTC
	// StrategyOnGreedy assigns each new key to the globally least-loaded
	// worker and remembers the choice.
	StrategyOnGreedy
	// StrategyOffGreedy is the clairvoyant LPT baseline built from exact
	// key frequencies.
	StrategyOffGreedy
)

// String returns the technique label used in the paper's tables.
func (s Strategy) String() string {
	switch s {
	case StrategyKG:
		return "KG"
	case StrategySG:
		return "SG"
	case StrategyPKG:
		return "PKG"
	case StrategyPoTC:
		return "PoTC"
	case StrategyOnGreedy:
		return "On-Greedy"
	case StrategyOffGreedy:
		return "Off-Greedy"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// NeedsView reports whether the strategy consults a load view when
// routing (and therefore requires Config.View).
func (s Strategy) NeedsView() bool {
	switch s {
	case StrategyPKG, StrategyPoTC, StrategyOnGreedy:
		return true
	default:
		return false
	}
}

// Config describes a router to construct. Workers and Strategy are
// always required; the remaining fields apply to specific strategies.
type Config struct {
	// Strategy selects the routing technique.
	Strategy Strategy
	// Workers is the number of downstream workers W.
	Workers int
	// Seed derives the strategy's hash functions. Every source of a
	// stream must use the same seed so candidate sets agree (unused by
	// shuffle and on-greedy).
	Seed uint64
	// D is the number of choices for PKG (default 2; "Greedy-d").
	D int
	// View is the load view consulted by PKG, PoTC and OnGreedy: the
	// true loads for the global oracle, or a per-source estimate for
	// local estimation. The caller records routed messages into it.
	View *Load
	// Start is the round-robin offset for shuffle grouping (vary it per
	// source so parallel sources do not march in lockstep).
	Start int
	// Freqs is the exact key-frequency distribution for OffGreedy.
	Freqs []KeyFreq
}

// New constructs the router described by cfg. It returns an error (not a
// panic) for invalid configurations, making it suitable for wiring from
// user-facing layers.
func New(cfg Config) (Router, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("route: %v needs positive Workers, got %d", cfg.Strategy, cfg.Workers)
	}
	if cfg.Strategy.NeedsView() {
		if cfg.View == nil {
			return nil, fmt.Errorf("route: %v needs a load view", cfg.Strategy)
		}
		if cfg.View.N() != cfg.Workers {
			return nil, fmt.Errorf("route: %v view has %d workers, want %d",
				cfg.Strategy, cfg.View.N(), cfg.Workers)
		}
	}
	switch cfg.Strategy {
	case StrategyKG:
		return NewKeyGrouping(cfg.Workers, cfg.Seed), nil
	case StrategySG:
		return NewShuffleGrouping(cfg.Workers, cfg.Start), nil
	case StrategyPKG:
		d := cfg.D
		if d == 0 {
			d = 2
		}
		if d < 0 {
			return nil, fmt.Errorf("route: PKG needs positive D, got %d", d)
		}
		return NewPKG(cfg.Workers, d, cfg.Seed, cfg.View), nil
	case StrategyPoTC:
		return NewPoTC(cfg.Workers, cfg.Seed, cfg.View), nil
	case StrategyOnGreedy:
		return NewOnGreedy(cfg.Workers, cfg.View), nil
	case StrategyOffGreedy:
		return NewOffGreedy(cfg.Workers, cfg.Seed, cfg.Freqs), nil
	default:
		return nil, fmt.Errorf("route: unknown strategy %v", cfg.Strategy)
	}
}

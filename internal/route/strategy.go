package route

import (
	"fmt"

	"pkgstream/internal/hotkey"
)

// Strategy identifies one of the routing strategies studied in the
// paper. It is the single strategy enumeration shared by every layer:
// internal/simulate, internal/cluster and internal/transport alias their
// Method/Mode types to it instead of declaring private copies.
type Strategy int

// The six strategies of §V, in the order the paper introduces them.
const (
	// StrategyKG is key grouping: single-choice hashing ("H").
	StrategyKG Strategy = iota
	// StrategySG is shuffle grouping: round-robin routing.
	StrategySG
	// StrategyPKG is partial key grouping (Greedy-d with key splitting).
	StrategyPKG
	// StrategyPoTC is the power of two choices without key splitting.
	StrategyPoTC
	// StrategyOnGreedy assigns each new key to the globally least-loaded
	// worker and remembers the choice.
	StrategyOnGreedy
	// StrategyOffGreedy is the clairvoyant LPT baseline built from exact
	// key frequencies.
	StrategyOffGreedy
	// StrategyDChoices is frequency-aware PKG (the ICDE 2016 follow-up's
	// D-Choices): hot keys get d > 2 candidates, head keys all W, the
	// cold tail keeps 2.
	StrategyDChoices
	// StrategyWChoices is the follow-up's W-Choices: keys above the hot
	// threshold round-robin over all W workers, the cold tail keeps 2.
	StrategyWChoices
)

// String returns the technique label used in the paper's tables.
func (s Strategy) String() string {
	switch s {
	case StrategyKG:
		return "KG"
	case StrategySG:
		return "SG"
	case StrategyPKG:
		return "PKG"
	case StrategyPoTC:
		return "PoTC"
	case StrategyOnGreedy:
		return "On-Greedy"
	case StrategyOffGreedy:
		return "Off-Greedy"
	case StrategyDChoices:
		return "D-C"
	case StrategyWChoices:
		return "W-C"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// NeedsView reports whether the strategy consults a load view when
// routing (and therefore requires Config.View).
func (s Strategy) NeedsView() bool {
	switch s {
	case StrategyPKG, StrategyPoTC, StrategyOnGreedy, StrategyDChoices, StrategyWChoices:
		return true
	default:
		return false
	}
}

// Config describes a router to construct. Workers and Strategy are
// always required; the remaining fields apply to specific strategies.
type Config struct {
	// Strategy selects the routing technique.
	Strategy Strategy
	// Workers is the number of downstream workers W.
	Workers int
	// Seed derives the strategy's hash functions. Every source of a
	// stream must use the same seed so candidate sets agree (unused by
	// shuffle and on-greedy).
	Seed uint64
	// D is the number of choices for PKG (default 2; "Greedy-d").
	D int
	// View is the load view consulted by PKG, PoTC and OnGreedy: the
	// true loads for the global oracle, or a per-source estimate for
	// local estimation. The caller records routed messages into it.
	View *Load
	// Start is the round-robin offset for shuffle grouping and for the
	// head-key round-robin of W-Choices (vary it per source so parallel
	// sources do not march in lockstep).
	Start int
	// Freqs is the exact key-frequency distribution for OffGreedy.
	Freqs []KeyFreq
	// Rates is the optional per-worker service-rate view consulted by
	// PKG, DChoices and WChoices when non-nil: the candidate argmin
	// then weighs load counts by measured service time (the
	// heterogeneous-cluster variant; see Rates). The caller feeds it
	// from ack-piggybacked ServiceNs. Ignored by the other strategies.
	Rates *Rates
	// Hot holds the hot-key knobs for DChoices and WChoices: the
	// D-Choices width Hot.D (0 = adaptive), the skew target Hot.Epsilon,
	// and the sketch/refresh parameters. Hot.Workers is filled from
	// Workers; the PKG field D above is not consulted by the hot-key
	// strategies. Each router built from this Config owns a fresh
	// classifier, so parallel sources keep independent sketches.
	Hot hotkey.Config
}

// New constructs the router described by cfg. It returns an error (not a
// panic) for invalid configurations, making it suitable for wiring from
// user-facing layers.
func New(cfg Config) (Router, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("route: %v needs positive Workers, got %d", cfg.Strategy, cfg.Workers)
	}
	if cfg.Strategy.NeedsView() {
		if cfg.View == nil {
			return nil, fmt.Errorf("route: %v needs a load view", cfg.Strategy)
		}
		if cfg.View.N() != cfg.Workers {
			return nil, fmt.Errorf("route: %v view has %d workers, want %d",
				cfg.Strategy, cfg.View.N(), cfg.Workers)
		}
	}
	if cfg.Rates != nil && cfg.Rates.N() != cfg.Workers {
		return nil, fmt.Errorf("route: %v rate view has %d workers, want %d",
			cfg.Strategy, cfg.Rates.N(), cfg.Workers)
	}
	r, err := newRouter(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Rates != nil {
		if ra, ok := r.(RateAware); ok {
			ra.SetRates(cfg.Rates)
		}
	}
	return r, nil
}

// RateAware is implemented by routers whose candidate argmin can weigh
// loads by measured per-worker service rates (PKG, DChoices,
// WChoices). Hosts use it to attach or detach a Rates view without
// knowing the concrete strategy.
type RateAware interface {
	SetRates(*Rates)
}

func newRouter(cfg Config) (Router, error) {
	switch cfg.Strategy {
	case StrategyKG:
		return NewKeyGrouping(cfg.Workers, cfg.Seed), nil
	case StrategySG:
		return NewShuffleGrouping(cfg.Workers, cfg.Start), nil
	case StrategyPKG:
		d := cfg.D
		if d == 0 {
			d = 2
		}
		if d < 0 {
			return nil, fmt.Errorf("route: PKG needs positive D, got %d", d)
		}
		return NewPKG(cfg.Workers, d, cfg.Seed, cfg.View), nil
	case StrategyPoTC:
		return NewPoTC(cfg.Workers, cfg.Seed, cfg.View), nil
	case StrategyOnGreedy:
		return NewOnGreedy(cfg.Workers, cfg.View), nil
	case StrategyOffGreedy:
		return NewOffGreedy(cfg.Workers, cfg.Seed, cfg.Freqs), nil
	case StrategyDChoices, StrategyWChoices:
		hc := cfg.Hot
		hc.Workers = cfg.Workers
		if err := hc.Validate(); err != nil {
			return nil, fmt.Errorf("route: %v: %w", cfg.Strategy, err)
		}
		if cfg.Strategy == StrategyDChoices {
			return NewDChoices(cfg.Workers, cfg.Seed, cfg.View, hc), nil
		}
		return NewWChoices(cfg.Workers, cfg.Seed, cfg.View, hc, cfg.Start), nil
	default:
		return nil, fmt.Errorf("route: unknown strategy %v", cfg.Strategy)
	}
}

package route

import (
	"testing"
	"testing/quick"

	"pkgstream/internal/metrics"
	"pkgstream/internal/rng"
)

func TestKeyGroupingDeterministicAndInRange(t *testing.T) {
	g := NewKeyGrouping(7, 42)
	if g.Workers() != 7 || g.Name() != "KG" {
		t.Fatal("metadata wrong")
	}
	f := func(key uint64) bool {
		w := g.Route(key)
		return w >= 0 && w < 7 && g.Route(key) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyGroupingSeedSensitivity(t *testing.T) {
	a := NewKeyGrouping(100, 1)
	b := NewKeyGrouping(100, 2)
	same := 0
	for k := uint64(0); k < 1000; k++ {
		if a.Route(k) == b.Route(k) {
			same++
		}
	}
	// Two independent hashes agree with probability 1/W = 1%.
	if same > 60 {
		t.Fatalf("different seeds agreed on %d/1000 keys", same)
	}
}

func TestKeyGroupingUniformOverKeys(t *testing.T) {
	// Hashing distinct keys should populate every worker.
	g := NewKeyGrouping(10, 3)
	loads := metrics.NewLoad(10)
	for k := uint64(0); k < 10000; k++ {
		loads.Add(g.Route(k))
	}
	if loads.Used() != 10 {
		t.Fatalf("only %d/10 workers used", loads.Used())
	}
	if f := loads.ImbalanceFraction(); f > 0.01 {
		t.Errorf("hashing distinct keys should be near-uniform, imbalance fraction %v", f)
	}
}

func TestShuffleGroupingRoundRobin(t *testing.T) {
	g := NewShuffleGrouping(4, 0)
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i, w := range want {
		if got := g.Route(uint64(i * 7)); got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
	}
}

func TestShuffleGroupingImbalanceAtMostOne(t *testing.T) {
	g := NewShuffleGrouping(9, 5)
	loads := metrics.NewLoad(9)
	src := rng.New(1)
	for i := 0; i < 10000; i++ {
		loads.Add(g.Route(src.Uint64()))
	}
	if imb := loads.Imbalance(); imb > 1 {
		t.Fatalf("shuffle imbalance = %v, want ≤ 1", imb)
	}
}

func TestShuffleGroupingStartOffset(t *testing.T) {
	a := NewShuffleGrouping(5, 0)
	b := NewShuffleGrouping(5, 2)
	if a.Route(0) != 0 || b.Route(0) != 2 {
		t.Fatal("start offsets not honored")
	}
	c := NewShuffleGrouping(5, -3) // negative offsets are normalized
	if w := c.Route(0); w < 0 || w >= 5 {
		t.Fatalf("negative start produced worker %d", w)
	}
}

func TestConstructorPanics(t *testing.T) {
	view := metrics.NewLoad(4)
	cases := map[string]func(){
		"KG w=0":            func() { NewKeyGrouping(0, 1) },
		"SG w=0":            func() { NewShuffleGrouping(0, 0) },
		"PKG w=0":           func() { NewPKG(0, 2, 1, view) },
		"PKG nil view":      func() { NewPKG(4, 2, 1, nil) },
		"PKG view mismatch": func() { NewPKG(5, 2, 1, view) },
		"PKG d=0":           func() { NewPKG(4, 0, 1, view) },
		"PoTC w=0":          func() { NewPoTC(0, 1, view) },
		"PoTC mismatch":     func() { NewPoTC(5, 1, view) },
		"OnGreedy w=0":      func() { NewOnGreedy(0, view) },
		"OffGreedy w=0":     func() { NewOffGreedy(0, 1, nil) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDescribe(t *testing.T) {
	if got := Describe(NewKeyGrouping(8, 1)); got != "KG/W=8" {
		t.Errorf("Describe = %q", got)
	}
}

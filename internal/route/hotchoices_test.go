package route

import (
	"testing"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
	"pkgstream/internal/rng"
)

// asSet turns a candidate slice into a set.
func asSet(cands []int) map[int]bool {
	s := make(map[int]bool, len(cands))
	for _, c := range cands {
		s[c] = true
	}
	return s
}

// TestCandidatePrefixNesting is the structural property everything else
// rests on: the i-th candidate of a key depends only on (key, seed, W,
// i), so widening from 2 to d choices keeps the PKG-2 pair. Checked
// directly on the shared construction across random keys, seeds and
// worker counts, for every d up to 2W (the d > W clamp included).
func TestCandidatePrefixNesting(t *testing.T) {
	src := rng.NewStream(11, 0)
	for trial := 0; trial < 200; trial++ {
		w := 1 + int(src.Uint64()%80)
		seed := src.Uint64()
		key := src.Uint64()
		max := 2 * w
		if max < 2 {
			max = 2
		}
		seeds := choiceSeeds(seed, max)
		// choiceSeeds is itself prefix-stable.
		for i, s := range choiceSeeds(seed, 2) {
			if seeds[i] != s {
				t.Fatalf("choiceSeeds not prefix-stable at %d", i)
			}
		}
		prev := make([]int, 2)
		candidates(prev, key, seeds[:2], w)
		for d := 3; d <= max; d++ {
			cur := make([]int, d)
			candidates(cur, key, seeds[:d], w)
			for i, c := range prev {
				if cur[i] != c {
					t.Fatalf("w=%d d=%d: widening moved candidate %d from %d to %d",
						w, d, i, c, cur[i])
				}
			}
			// Distinctness up to the clamp: the first min(d, w) entries
			// are distinct workers in range.
			set := asSet(cur[:min(d, w)])
			if len(set) != min(d, w) {
				t.Fatalf("w=%d d=%d: candidates not distinct: %v", w, d, cur)
			}
			for c := range set {
				if c < 0 || c >= w {
					t.Fatalf("w=%d d=%d: candidate %d out of range", w, d, c)
				}
			}
			prev = cur
		}
	}
}

// hotStream drives a skewed stream through a router until its
// classifier has refreshed: key 1 carries share p, the tail is uniform.
func hotStream(r Router, n int, p float64, tail uint64, seed uint64) {
	src := rng.NewStream(seed, 1)
	for i := 0; i < n; i++ {
		if src.Float64() < p {
			r.Route(1)
		} else {
			r.Route(2 + src.Uint64()%tail)
		}
	}
}

// TestDChoicesWidensOverPKG2 checks the router-level superset property:
// for the same (key, seed, W), the probe set of every key under
// D-Choices contains the PKG-2 candidate pair — cold keys exactly, hot
// and head keys as a strict superset.
func TestDChoicesWidensOverPKG2(t *testing.T) {
	const w, seed = 50, 99
	view := metrics.NewLoad(w)
	dc := NewDChoices(w, seed, view, hotkey.Config{RefreshEvery: 256})
	hotStream(dc, 30_000, 0.4, 5000, 3)

	pkg := NewPKG(w, 2, seed, metrics.NewLoad(w))
	if dc.Classifier().Class(1) == hotkey.Cold {
		t.Fatal("40% key not classified hot")
	}
	checked := 0
	for _, key := range []uint64{1, 2, 3, 17, 999, 123456} {
		ps := asSet(ProbeSet(dc, key))
		for _, c := range dedup(pkg.Candidates(key)) {
			if !ps[c] {
				t.Errorf("key %d: PKG-2 candidate %d missing from D-Choices probe set %v",
					key, c, ProbeSet(dc, key))
			}
		}
		if dc.Classifier().Class(key) != hotkey.Cold {
			if len(ps) <= 2 {
				t.Errorf("hot key %d probe set %v not widened", key, ProbeSet(dc, key))
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no hot key exercised the widened path")
	}
}

// TestProbeSetCoversRouting checks that ProbeSet agrees with what the
// router could have chosen: with the classification frozen (large
// refresh period), every destination Route returns is in the key's
// probe set, for cold, hot and head keys, under both new strategies.
func TestProbeSetCoversRouting(t *testing.T) {
	const w = 20
	build := func(s Strategy, hc hotkey.Config) Router {
		r, err := New(Config{Strategy: s, Workers: w, Seed: 7, View: NewLoad(w), Hot: hc})
		if err != nil {
			t.Fatalf("New(%v): %v", s, err)
		}
		return r
	}
	for _, s := range []Strategy{StrategyDChoices, StrategyWChoices} {
		r := build(s, hotkey.Config{RefreshEvery: 1024})
		hotStream(r, 20_480, 0.5, 2000, 5)
		hk := r.(HotAware).Classifier()
		if hk.Class(1) == hotkey.Cold {
			t.Fatalf("%v: hot key stayed cold", s)
		}
		for _, key := range []uint64{1, 2, 42, 777} {
			ps := asSet(ProbeSet(r, key))
			view := r.(interface{ View() *metrics.Load }).View()
			for i := 0; i < 50; i++ {
				// Nudge the view between routes so argmin cycles through
				// candidates.
				dst := r.Route(key)
				view.Add(dst)
				if !ps[dst] {
					t.Fatalf("%v: key %d routed to %d outside probe set %v",
						s, key, dst, ProbeSet(r, key))
				}
			}
		}
		// W-Choices head keys must be able to reach every worker.
		if s == StrategyWChoices {
			if got := len(ProbeSet(r, 1)); got != w {
				t.Errorf("W-Choices head probe set has %d workers, want %d", got, w)
			}
		}
	}
}

// TestDChoicesClampBeyondW exercises the d > W clamp path: a fixed
// Hot.D far above W must yield exactly W distinct candidates for head
// keys, and the probe set must stay within range and duplicate-free.
func TestDChoicesClampBeyondW(t *testing.T) {
	const w = 7
	dc := NewDChoices(w, 3, metrics.NewLoad(w), hotkey.Config{D: 5 * w, RefreshEvery: 128})
	hotStream(dc, 10_000, 0.9, 50, 9)
	if dc.Classifier().Class(1) == hotkey.Cold {
		t.Fatal("90% key stayed cold")
	}
	ps := ProbeSet(dc, 1)
	if len(ps) != w {
		t.Fatalf("clamped probe set %v, want all %d workers", ps, w)
	}
	if len(asSet(ps)) != w {
		t.Fatalf("clamped probe set %v has duplicates", ps)
	}
}

// TestWChoicesRoundRobinSpreadsHead checks that head traffic lands on
// every worker with near-equal counts.
func TestWChoicesRoundRobinSpreadsHead(t *testing.T) {
	const w = 10
	view := metrics.NewLoad(w)
	wc := NewWChoices(w, 3, view, hotkey.Config{RefreshEvery: 128, Warmup: 128}, 0)
	for i := 0; i < 128; i++ {
		wc.Route(1) // warm the sketch: key 1 is the whole stream
	}
	counts := make([]int64, w)
	for i := 0; i < 1000; i++ {
		counts[wc.Route(1)]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("worker %d got %d head messages, want exactly 100 (round-robin): %v",
				i, c, counts)
		}
	}
}

// TestHotStrategyConfigErrors checks the factory-level validation.
func TestHotStrategyConfigErrors(t *testing.T) {
	bad := []Config{
		{Strategy: StrategyDChoices, Workers: 10},                                               // no view
		{Strategy: StrategyWChoices, Workers: 10},                                               // no view
		{Strategy: StrategyDChoices, Workers: 10, View: NewLoad(4)},                             // mismatched view
		{Strategy: StrategyDChoices, Workers: 10, View: NewLoad(10), Hot: hotkey.Config{D: 2}},  // D=2 is PKG
		{Strategy: StrategyWChoices, Workers: 10, View: NewLoad(10), Hot: hotkey.Config{D: -1}}, // negative D
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	for _, s := range []Strategy{StrategyDChoices, StrategyWChoices} {
		r, err := New(Config{Strategy: s, Workers: 10, View: NewLoad(10)})
		if err != nil {
			t.Errorf("%v with defaults rejected: %v", s, err)
			continue
		}
		if r.Workers() != 10 {
			t.Errorf("%v Workers = %d", s, r.Workers())
		}
		if !s.NeedsView() {
			t.Errorf("%v should need a view", s)
		}
	}
}

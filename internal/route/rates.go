package route

import "sync/atomic"

// Rates is a per-worker service-time view: the measured nanoseconds per
// tuple of each downstream worker, learned passively from the
// ServiceNs field piggybacked on transport acks. It is the second
// input — alongside the load view — of the heterogeneous-cluster
// variant of PKG ("Load Balancing for Skewed Streams on Heterogeneous
// Clusters"): where plain PKG picks the candidate with the fewest
// routed messages, the weighted argmin picks the candidate whose queue
// drains soonest, estimating drain time as load × service time. A
// worker running 4× slower therefore sheds load automatically instead
// of capping pipeline throughput at its pace.
//
// Zero means "no estimate yet" (no ack observed, or an old worker that
// does not stamp ServiceNs); candidates with no estimate borrow the
// smallest known candidate rate so an unmeasured worker is never
// penalized, and when nothing is known the argmin degrades to the
// plain load comparison. Writers are the transport ack readers (one
// goroutine per connection), readers are the routing hot path, so the
// slots are atomics: routing may observe a slightly stale rate, never
// a torn one.
type Rates struct {
	v []atomic.Int64
}

// NewRates returns a rate view over n workers with no estimates.
func NewRates(n int) *Rates {
	if n <= 0 {
		panic("route: NewRates with n <= 0")
	}
	return &Rates{v: make([]atomic.Int64, n)}
}

// N returns the number of workers.
func (r *Rates) N() int { return len(r.v) }

// Set records the latest service-time estimate (ns/tuple) for worker i.
// Non-positive estimates are ignored (0 is the "unknown" sentinel).
func (r *Rates) Set(i int, ns int64) {
	if ns <= 0 {
		return
	}
	r.v[i].Store(ns)
}

// Get returns worker i's service-time estimate, or 0 if none is known.
func (r *Rates) Get(i int) int64 { return r.v[i].Load() }

// Snapshot copies the current estimates into a fresh slice.
func (r *Rates) Snapshot() []int64 {
	out := make([]int64, len(r.v))
	for i := range r.v {
		out[i] = r.v[i].Load()
	}
	return out
}

// Package route is the single routing core shared by every layer of the
// system: the in-process engine (internal/engine), the simulation harness
// (internal/simulate), the discrete-event cluster model (internal/cluster)
// and the TCP transport (internal/transport) all make their per-message
// placement decisions here. It owns key hashing, candidate-set
// construction, load views, and the six strategies studied in the paper:
//
//   - KeyGrouping — single-choice hashing, the baseline used by every
//     DSPE ("H" in the figures).
//   - ShuffleGrouping — round-robin routing (perfect balance, no key
//     locality).
//   - PKG — PARTIAL KEY GROUPING, the paper's contribution: power of two
//     choices plus key splitting, generalized to d choices ("Greedy-d").
//   - PoTC — the power of two choices *without* key splitting (a routing
//     table remembers the first choice; "static PoTC" in §III.A).
//   - OnGreedy — online greedy: a brand-new key goes to the globally
//     least-loaded worker and sticks there.
//   - OffGreedy — offline greedy (LPT): keys sorted by decreasing
//     frequency are assigned to the least-loaded worker; an unfair
//     clairvoyant baseline.
//   - DChoices — frequency-aware PKG from the authors' ICDE 2016
//     follow-up: a per-source Space-Saving sketch (internal/hotkey)
//     classifies keys, hot keys widen to d > 2 candidates, head keys
//     to all W, the cold tail keeps 2.
//   - WChoices — the follow-up's aggressive variant: every key above
//     the hot threshold round-robins over all W workers.
//
// Every router is keyed on a 64-bit key hash. String keys enter the core
// through KeyHash exactly once (the engine caches the result on the
// tuple), after which string- and integer-keyed streams share one code
// path: per-strategy hash functions are derived by mixing the key hash
// with per-edge seeds, never by rehashing the bytes.
//
// Routers are pure deciders: Route inspects a load view but never
// mutates it. The driver (a simulation loop, an engine emitter, a TCP
// source) records each routed message into whichever load vectors
// implement the paper's information models — the true loads for the
// global oracle "G", a per-source estimate for local estimation "L", and
// a periodically refreshed estimate for probing "LP". This separation is
// exactly the paper's point: the same PKG decision rule works under any
// of the three information models, and under any host layer.
package route

import (
	"fmt"

	"pkgstream/internal/hash"
	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
)

// Router routes messages, identified by their 64-bit key hash, to one of
// W workers. Implementations are deterministic given their construction
// parameters and the sequence of Route calls, and are not safe for
// concurrent use (each source owns its instances).
type Router interface {
	// Route returns the destination worker in [0, Workers()) for a
	// message with the given key.
	Route(key uint64) int
	// Workers returns the number of downstream workers W.
	Workers() int
	// Name returns a short technique name for reports.
	Name() string
}

// Load is a per-worker load vector — the view a router consults when
// deciding. Aliased here so consumers of the routing core need not
// import internal/metrics separately.
type Load = metrics.Load

// NewLoad returns a zeroed load view over n workers.
func NewLoad(n int) *Load { return metrics.NewLoad(n) }

// KeyHash collapses a string key to the 64-bit key the routing core
// operates on (a Murmur3 hash with a fixed seed). Compute it once per
// message and carry it alongside the key: every strategy then derives its
// per-edge hash functions by *mixing* this value with seeds, so string
// and integer keys follow the same code path and the bytes are never
// rehashed per edge.
func KeyHash(key string) uint64 {
	return hash.String64(key, 0)
}

// KeyGrouping is single-choice hash partitioning: Pt(k) = H1(k) mod W.
// This is the key grouping primitive of Storm/Samza/S4 and the paper's
// main baseline. It keeps no state.
type KeyGrouping struct {
	w    int
	seed uint64
}

// NewKeyGrouping returns a KeyGrouping over w workers using a hash
// function derived from seed. It panics if w <= 0.
func NewKeyGrouping(w int, seed uint64) *KeyGrouping {
	if w <= 0 {
		panic("route: NewKeyGrouping with w <= 0")
	}
	return &KeyGrouping{w: w, seed: seed}
}

// Route implements Router.
func (g *KeyGrouping) Route(key uint64) int {
	return int(hash.Mix64(key, g.seed) % uint64(g.w))
}

// Workers implements Router.
func (g *KeyGrouping) Workers() int { return g.w }

// Name implements Router.
func (g *KeyGrouping) Name() string { return "KG" }

// ShuffleGrouping is round-robin routing, ignoring the key entirely. Its
// imbalance is at most one message, but every worker may see every key,
// which is what makes stateful operators expensive under shuffle
// grouping (memory O(W·K), aggregation O(W) per key, §II.A).
type ShuffleGrouping struct {
	w    int
	next int
}

// NewShuffleGrouping returns a ShuffleGrouping over w workers whose
// round-robin pointer starts at start (vary start per source so parallel
// sources do not march in lockstep). It panics if w <= 0.
func NewShuffleGrouping(w, start int) *ShuffleGrouping {
	if w <= 0 {
		panic("route: NewShuffleGrouping with w <= 0")
	}
	if start < 0 {
		start = -start
	}
	return &ShuffleGrouping{w: w, next: start % w}
}

// Route implements Router.
func (g *ShuffleGrouping) Route(_ uint64) int {
	r := g.next
	g.next++
	if g.next == g.w {
		g.next = 0
	}
	return r
}

// Workers implements Router.
func (g *ShuffleGrouping) Workers() int { return g.w }

// Name implements Router.
func (g *ShuffleGrouping) Name() string { return "SG" }

// choiceSeeds derives d independent hash-function seeds from a base
// seed. All sources of a stream must use the same base seed so that the
// candidate set {H1(k), ..., Hd(k)} of a key is identical everywhere —
// the property that lets PKG run with zero coordination.
func choiceSeeds(seed uint64, d int) []uint64 {
	if d <= 0 {
		panic(fmt.Sprintf("route: need at least one choice, got %d", d))
	}
	seeds := make([]uint64, d)
	st := seed
	for i := range seeds {
		seeds[i] = hash.Fmix64(st + 0x9e3779b97f4a7c15*uint64(i+1))
	}
	return seeds
}

// mod is x % m with the u64 division strength-reduced to a mask when m
// is a power of two (the common 2-worker local edge, and m = 1 for the
// second of two choices). Same value always — routing stays a pure
// function of (key, seeds, w) — just without the ~25-cycle divide on
// the per-tuple path.
func mod(x, m uint64) uint64 {
	if m&(m-1) == 0 {
		return x & (m - 1)
	}
	return x % m
}

// candidates fills dst with the d candidate workers of key, one per hash
// function, sampled *without replacement*: with naive independent hashes
// the two choices of a key collide with probability 1/W, and when the
// collision hits the hottest key the whole point of the second choice is
// lost to seed luck. The standard distinct-choices construction maps the
// i-th hash into the W−i workers not yet chosen, so the candidate set
// always has d distinct members (capped at W). It remains a pure
// function of (key, seeds, w), preserving PKG's zero-coordination
// property. This is the only copy of the construction in the tree; every
// layer that needs a candidate set obtains it from this package.
func candidates(dst []int, key uint64, seeds []uint64, w int) {
	if len(seeds) == 2 && w >= 2 {
		// The paper's d = 2 on the per-tuple hot path: the general
		// construction below collapses to "second choice drawn from the
		// w−1 workers other than the first". Identical output, none of
		// the selection bookkeeping.
		r0 := int(mod(hash.Mix64(key, seeds[0]), uint64(w)))
		r1 := int(mod(hash.Mix64(key, seeds[1]), uint64(w-1)))
		if r1 >= r0 {
			r1++
		}
		dst[0], dst[1] = r0, r1
		return
	}
	var buf [8]int
	var sel []int // ascending list of already-chosen candidates
	if len(seeds) <= len(buf) {
		sel = buf[:0]
	} else {
		sel = make([]int, 0, len(seeds))
	}
	for i, s := range seeds {
		if i >= w {
			// More choices than workers: every worker is already a
			// candidate; repeat the first (harmless for argmin).
			dst[i] = dst[0]
			continue
		}
		r := int(mod(hash.Mix64(key, s), uint64(w-i)))
		// Shift past chosen candidates in ascending order to land on the
		// r-th *unchosen* worker.
		pos := 0
		for pos < len(sel) && r >= sel[pos] {
			r++
			pos++
		}
		dst[i] = r
		sel = append(sel, 0)
		copy(sel[pos+1:], sel[pos:len(sel)-1])
		sel[pos] = r
	}
}

// ProbeSet returns the workers that may hold state for key under r —
// the set a distributed point query must probe (§VI.A): the d hash
// candidates under PKG (deduplicated, since d > W pads with repeats),
// the single hash destination under key grouping, and every worker for
// key-oblivious strategies like shuffle. For the frequency-aware
// strategies the set widens with the key's *current* class — the d (or
// W) candidates of a hot (or head) key under D-Choices, all workers for
// a non-cold key under W-Choices — so it is a pure function of the key,
// the router's construction parameters and its classification state; a
// key that cooled down since routing may hold stale partials outside
// its current probe set, the staleness window a query layer must bound
// with its aggregation period. This is the one implementation of
// probe-set derivation in the tree; deriving it never mutates the
// router (in particular it does not observe the key in a classifier's
// sketch).
func ProbeSet(r Router, key uint64) []int {
	switch p := r.(type) {
	case *PKG:
		return dedup(p.Candidates(key))
	case *DChoices:
		return dedup(p.Candidates(key))
	case *WChoices:
		if p.cls.Class(key) != hotkey.Cold {
			return allWorkers(p.w)
		}
		var cands [2]int
		candidates(cands[:], key, p.seeds, p.w)
		return dedup(cands[:])
	case *KeyGrouping:
		return []int{p.Route(key)}
	default:
		return allWorkers(r.Workers())
	}
}

// Explanation describes one routing decision for tracing: the strategy
// name, the key's frequency class (frequency-aware strategies only),
// the candidate set the decision chose from, and the per-candidate
// loads of the router's view at explanation time.
type Explanation struct {
	// Strategy is the router's short name ("PKG", "D-C", ...).
	Strategy string
	// Class is the key's frequency class ("cold", "hot", "head"); ""
	// when the strategy is not frequency-aware.
	Class string
	// Cands is the candidate set (ProbeSet of the key).
	Cands []int
	// Loads holds the view's load for each candidate, aligned with
	// Cands; nil when the router consults no view.
	Loads []int64
}

// Explain derives the Explanation of routing key under r. Like
// ProbeSet it never mutates the router — in particular it does not
// observe the key in a classifier's sketch — so a tracing layer can
// call it right after Route without perturbing the decision sequence.
func Explain(r Router, key uint64) Explanation {
	ex := Explanation{Strategy: r.Name(), Cands: ProbeSet(r, key)}
	if ha, ok := r.(HotAware); ok {
		ex.Class = ha.Classifier().Class(key).String()
	}
	if v, ok := r.(interface{ View() *metrics.Load }); ok {
		if view := v.View(); view != nil {
			ex.Loads = make([]int64, len(ex.Cands))
			for i, c := range ex.Cands {
				ex.Loads[i] = view.Get(c)
			}
		}
	}
	return ex
}

// String renders the explanation as a trace note, e.g.
// "PKG cands=[3 7] loads=[120 98]" or "D-C class=hot cands=[1 4 6 2]".
func (ex Explanation) String() string {
	s := ex.Strategy
	if ex.Class != "" {
		s += " class=" + ex.Class
	}
	s += fmt.Sprintf(" cands=%v", ex.Cands)
	if ex.Loads != nil {
		s += fmt.Sprintf(" loads=%v", ex.Loads)
	}
	return s
}

// dedup removes repeated workers from a candidate slice in place,
// preserving first-seen order (repeats arise when d exceeds W).
func dedup(cands []int) []int {
	out := cands[:0]
	for _, c := range cands {
		dup := false
		for _, seen := range out {
			if seen == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

func allWorkers(w int) []int {
	all := make([]int, w)
	for i := range all {
		all[i] = i
	}
	return all
}

// leastLoaded returns the candidate with the smallest load in view
// (first-listed wins ties, keeping routing deterministic).
func leastLoaded(view *metrics.Load, cands []int) int {
	best := cands[0]
	bestLoad := view.Get(best)
	for _, c := range cands[1:] {
		if l := view.Get(c); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	return best
}

// leastLoadedWeighted is the heterogeneous-cluster argmin: it returns
// the candidate whose queue drains soonest, estimating drain time as
// (load + 1) × service time — the +1 counts the tuple being routed, so
// even at equal (or zero) load the faster worker wins. Candidates with
// no rate estimate borrow the smallest known candidate rate (never
// penalize the unmeasured), and when no candidate has an estimate the
// decision degrades to the plain load comparison, which keeps cold
// starts and homogeneous clusters byte-identical to unweighted PKG.
// First-listed wins ties, keeping routing deterministic.
func leastLoadedWeighted(view *metrics.Load, rates *Rates, cands []int) int {
	minRate := int64(0)
	for _, c := range cands {
		if r := rates.Get(c); r > 0 && (minRate == 0 || r < minRate) {
			minRate = r
		}
	}
	if minRate == 0 {
		return leastLoaded(view, cands)
	}
	best := cands[0]
	bestScore := drainScore(view, rates, best, minRate)
	for _, c := range cands[1:] {
		if s := drainScore(view, rates, c, minRate); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// drainScore estimates worker c's drain time in float64 nanoseconds
// (floats sidestep int64 overflow on load × rate without changing the
// argmin: the comparison only needs monotonicity, not exact ns).
func drainScore(view *metrics.Load, rates *Rates, c int, minRate int64) float64 {
	r := rates.Get(c)
	if r <= 0 {
		r = minRate
	}
	return float64(view.Get(c)+1) * float64(r)
}

package route

import (
	"testing"
	"testing/quick"

	"pkgstream/internal/metrics"
)

func TestPoTCStableAssignment(t *testing.T) {
	view := metrics.NewLoad(10)
	g := NewPoTC(10, 3, view)
	first := make(map[uint64]int)
	gen := zipfGen(1, 1.3, 500)
	for i := 0; i < 20000; i++ {
		k := gen()
		w := g.Route(k)
		view.Add(w)
		if prev, ok := first[k]; ok && prev != w {
			t.Fatalf("key %d moved from %d to %d (static PoTC must not migrate)", k, prev, w)
		}
		first[k] = w
	}
	if g.TableSize() != len(first) {
		t.Fatalf("table size %d != distinct keys %d", g.TableSize(), len(first))
	}
}

func TestPoTCChoosesAmongTwoCandidates(t *testing.T) {
	view := metrics.NewLoad(16)
	g := NewPoTC(16, 7, view)
	ref := NewPKG(16, 2, 7, metrics.NewLoad(16)) // same seed → same candidate sets
	f := func(key uint64) bool {
		w := g.Route(key)
		c := ref.Candidates(key)
		return w == c[0] || w == c[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestOnGreedyAssignsNewKeysToLeastLoaded(t *testing.T) {
	view := metrics.NewLoad(5)
	g := NewOnGreedy(5, view)
	view.AddN(0, 10)
	view.AddN(1, 3)
	view.AddN(2, 7)
	view.AddN(3, 3)
	view.AddN(4, 9)
	// Least loaded is worker 1 (ties broken by lowest index).
	if w := g.Route(1001); w != 1 {
		t.Fatalf("new key went to %d, want 1", w)
	}
	view.AddN(1, 100)
	// The key sticks even when its worker becomes hot.
	if w := g.Route(1001); w != 1 {
		t.Fatalf("key migrated to %d", w)
	}
	// The next new key avoids the now-hot worker 1.
	if w := g.Route(1002); w != 3 {
		t.Fatalf("new key went to %d, want 3", w)
	}
	if g.TableSize() != 2 {
		t.Fatalf("table size %d", g.TableSize())
	}
}

func TestOnGreedyCloseToOffGreedy(t *testing.T) {
	// The paper observes On-Greedy performs very close to Off-Greedy for
	// moderate W. Both should crush hashing on a skewed stream.
	const w, n = 5, 200000

	freqs := map[uint64]int64{}
	gen := zipfGenP1(3, 0.09, 5000)
	for i := 0; i < n; i++ {
		freqs[gen()]++
	}
	kfs := make([]KeyFreq, 0, len(freqs))
	for k, c := range freqs {
		kfs = append(kfs, KeyFreq{Key: k, Count: c})
	}

	offTruth := metrics.NewLoad(w)
	off := NewOffGreedy(w, 99, kfs)
	gen = zipfGenP1(3, 0.09, 5000)
	drive(off, offTruth, gen, n)

	onTruth := metrics.NewLoad(w)
	on := NewOnGreedy(w, onTruth)
	gen = zipfGenP1(3, 0.09, 5000)
	drive(on, onTruth, gen, n)

	hashTruth := metrics.NewLoad(w)
	gen = zipfGenP1(3, 0.09, 5000)
	drive(NewKeyGrouping(w, 99), hashTruth, gen, n)

	// Paper Table II ordering at small W: Off-Greedy ≤ On-Greedy, and
	// both far below hashing (On-Greedy can be ~10x Off-Greedy, e.g.
	// 7.8 vs 0.8 at W=5 on WP, yet both are negligible next to 1.4e6
	// for hashing).
	if offTruth.Imbalance() > onTruth.Imbalance() {
		t.Errorf("Off-Greedy %v should be ≤ On-Greedy %v", offTruth.Imbalance(), onTruth.Imbalance())
	}
	if onTruth.Imbalance() > hashTruth.Imbalance()/10 {
		t.Errorf("On-Greedy %v should be far below hashing %v", onTruth.Imbalance(), hashTruth.Imbalance())
	}
}

func TestOffGreedyLPTExactSmallCase(t *testing.T) {
	// LPT on a tiny instance we can verify by hand: frequencies
	// 10, 8, 6, 4, 2 over 2 workers. LPT assigns 10→w0, 8→w1, 6→w1?
	// No: after 10→w0 (w0=10), 8→w1 (w1=8), 6→w1 (w1=14)? least is w1(8),
	// so 6→w1 → w1=14; then 4→w0 → w0=14; then 2→w0 or w1 (tie → w0)
	// → w0=16, w1=14.
	kfs := []KeyFreq{{1, 10}, {2, 8}, {3, 6}, {4, 4}, {5, 2}}
	g := NewOffGreedy(2, 1, kfs)
	wantAssign := map[uint64]int{1: 0, 2: 1, 3: 1, 4: 0, 5: 0}
	for k, want := range wantAssign {
		got, ok := g.Assignment(k)
		if !ok || got != want {
			t.Errorf("key %d assigned to %d (present=%v), want %d", k, got, ok, want)
		}
	}
	if _, ok := g.Assignment(999); ok {
		t.Error("unknown key reported as assigned")
	}
	// Unknown keys fall back to hashing, still in range.
	if w := g.Route(999); w < 0 || w > 1 {
		t.Errorf("fallback route = %d", w)
	}
}

func TestOffGreedyDeterministicOrder(t *testing.T) {
	// Equal counts are tie-broken by key, so construction order of the
	// frequency slice must not matter.
	a := NewOffGreedy(3, 1, []KeyFreq{{1, 5}, {2, 5}, {3, 5}})
	b := NewOffGreedy(3, 1, []KeyFreq{{3, 5}, {1, 5}, {2, 5}})
	for k := uint64(1); k <= 3; k++ {
		wa, _ := a.Assignment(k)
		wb, _ := b.Assignment(k)
		if wa != wb {
			t.Fatalf("key %d: order-dependent assignment %d vs %d", k, wa, wb)
		}
	}
}

func TestTableIIOrdering(t *testing.T) {
	// Reproduce the qualitative ordering of Table II at small scale with
	// W = 5 workers on a WP-like stream (p1 ≈ 9%): hashing is orders of
	// magnitude above everything that uses load information, and PKG
	// plays in the same tiny-imbalance league as the clairvoyant
	// Off-Greedy baseline.
	const w, n = 5, 300000
	mkGen := func() func() uint64 { return zipfGenP1(12, 0.093, 20000) }

	freqs := map[uint64]int64{}
	g := mkGen()
	for i := 0; i < n; i++ {
		freqs[g()]++
	}
	kfs := make([]KeyFreq, 0, len(freqs))
	for k, c := range freqs {
		kfs = append(kfs, KeyFreq{k, c})
	}

	imb := map[string]float64{}
	run := func(name string, p Router, truth *metrics.Load) {
		drive(p, truth, mkGen(), n)
		imb[name] = truth.Imbalance()
	}
	hT := metrics.NewLoad(w)
	run("H", NewKeyGrouping(w, 7), hT)
	pT := metrics.NewLoad(w)
	run("PoTC", NewPoTC(w, 7, pT), pT)
	oT := metrics.NewLoad(w)
	run("On", NewOnGreedy(w, oT), oT)
	fT := metrics.NewLoad(w)
	run("Off", NewOffGreedy(w, 7, kfs), fT)
	kT := metrics.NewLoad(w)
	run("PKG", NewPKG(w, 2, 7, kT), kT)

	if imb["PKG"] > 5*imb["Off"]+float64(w) {
		t.Errorf("PKG %v should be in Off-Greedy's league (%v)", imb["PKG"], imb["Off"])
	}
	if imb["Off"] > imb["H"]/10 {
		t.Errorf("Off-Greedy %v should crush hashing %v", imb["Off"], imb["H"])
	}
	if imb["PKG"] > imb["H"]/100 {
		t.Errorf("PKG %v should be orders below hashing %v", imb["PKG"], imb["H"])
	}
	if imb["PoTC"] < imb["PKG"] {
		t.Errorf("static PoTC %v should not beat PKG %v on a skewed stream", imb["PoTC"], imb["PKG"])
	}
}

func BenchmarkPoTCRoute(b *testing.B) {
	view := metrics.NewLoad(50)
	g := NewPoTC(50, 1, view)
	gen := zipfGen(1, 1.2, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view.Add(g.Route(gen()))
	}
}

func BenchmarkOffGreedyBuild(b *testing.B) {
	kfs := make([]KeyFreq, 100000)
	for i := range kfs {
		kfs[i] = KeyFreq{Key: uint64(i), Count: int64(100000 - i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewOffGreedy(50, 1, kfs)
	}
}

package route

import (
	"testing"
	"testing/quick"

	"pkgstream/internal/metrics"
	"pkgstream/internal/rng"
)

// drive routes n samples from gen through p, recording into truth (which
// doubles as the global view when p was built on it).
func drive(p Router, truth *metrics.Load, gen func() uint64, n int) {
	for i := 0; i < n; i++ {
		truth.Add(p.Route(gen()))
	}
}

func zipfGen(seed uint64, s float64, k uint64) func() uint64 {
	z := rng.NewZipf(rng.New(seed), s, k)
	return z.Next
}

// zipfGenP1 builds a generator whose most frequent key has probability p1
// — the knob the paper's analysis is written in terms of.
func zipfGenP1(seed uint64, p1 float64, k uint64) func() uint64 {
	return zipfGen(seed, rng.SolveZipfExponent(k, p1), k)
}

func TestPKGKeySplittingBoundsWorkersPerKey(t *testing.T) {
	// Over any routing history, a key may visit at most d distinct
	// workers — the defining property of key splitting.
	view := metrics.NewLoad(20)
	g := NewPKG(20, 2, 7, view)
	gen := zipfGen(1, 1.2, 100)
	seen := make(map[uint64]map[int]bool)
	for i := 0; i < 50000; i++ {
		k := gen()
		w := g.Route(k)
		view.Add(w)
		if seen[k] == nil {
			seen[k] = make(map[int]bool)
		}
		seen[k][w] = true
	}
	for k, ws := range seen {
		if len(ws) > 2 {
			t.Fatalf("key %d was routed to %d > 2 workers", k, len(ws))
		}
	}
}

func TestPKGRoutesToLeastLoadedCandidate(t *testing.T) {
	view := metrics.NewLoad(10)
	g := NewPKG(10, 2, 3, view)
	f := func(key uint64) bool {
		cands := g.Candidates(key)
		w := g.Route(key)
		// w must be a candidate with minimal view load.
		okCand := false
		for _, c := range cands {
			if c == w {
				okCand = true
			}
			if view.Get(c) < view.Get(w) {
				return false
			}
		}
		view.Add(w)
		return okCand
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestPKGCandidatesAgreeAcrossSources(t *testing.T) {
	// Independent instances with the same seed must compute identical
	// candidate sets — the zero-coordination property.
	a := NewPKG(16, 2, 99, metrics.NewLoad(16))
	b := NewPKG(16, 2, 99, metrics.NewLoad(16))
	f := func(key uint64) bool {
		ca, cb := a.Candidates(key), b.Candidates(key)
		return ca[0] == cb[0] && ca[1] == cb[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPKGBeatsHashingOnSkew(t *testing.T) {
	// The headline claim at small scale: on a skewed stream whose p1 is
	// below the balanceability bound 2/W, PKG's imbalance is orders of
	// magnitude below hashing's.
	const w, n = 10, 200000
	hTruth := metrics.NewLoad(w)
	drive(NewKeyGrouping(w, 5), hTruth, zipfGenP1(2, 0.1, 10000), n)

	pTruth := metrics.NewLoad(w)
	pkg := NewPKG(w, 2, 5, pTruth) // global view: pTruth is both truth and view
	drive(pkg, pTruth, zipfGenP1(2, 0.1, 10000), n)

	if pTruth.Imbalance()*10 > hTruth.Imbalance() {
		t.Fatalf("PKG imbalance %v not ≪ hashing %v", pTruth.Imbalance(), hTruth.Imbalance())
	}
}

func TestPKGSingleChoiceDegeneratesToHashing(t *testing.T) {
	// d = 1 must behave exactly like a single hash: stateless, load-blind.
	view := metrics.NewLoad(8)
	g := NewPKG(8, 1, 11, view)
	if g.Name() != "PKG(d=1)" {
		t.Errorf("Name = %q", g.Name())
	}
	f := func(key uint64) bool {
		w1 := g.Route(key)
		view.AddN(w1, 1000) // heavy load must not change a 1-choice route
		return g.Route(key) == w1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPKGMoreChoicesNeverWorseMuch(t *testing.T) {
	// Greedy-d imbalance should improve sharply from d=1 to d=2 (the
	// exponential gain), while d=5 only refines d=2 (constant factors,
	// §III). Use p1 well inside the balanceable regime so the comparison
	// reflects the choice process, not the p1 lower bound.
	const w, n = 20, 300000
	imb := make(map[int]float64)
	for _, d := range []int{1, 2, 5} {
		truth := metrics.NewLoad(w)
		g := NewPKG(w, d, 21, truth)
		drive(g, truth, zipfGenP1(4, 0.008, 50000), n)
		imb[d] = truth.Imbalance()
	}
	if imb[2] > imb[1]/2 {
		t.Errorf("d=2 imbalance %v not clearly below d=1 %v", imb[2], imb[1])
	}
	if imb[5] > imb[2]+5 {
		t.Errorf("d=5 imbalance %v worse than d=2 %v", imb[5], imb[2])
	}
}

func TestPKGAdaptsToDrift(t *testing.T) {
	// Key splitting makes decisions on current load, so when the hot key
	// changes mid-stream, imbalance stays low; a static assignment (PoTC)
	// cannot rebalance already-assigned keys.
	const w, n = 10, 100000
	gen := func(seed uint64) func() uint64 {
		z := rng.NewZipf(rng.New(seed), 1.4, 1000)
		i := 0
		return func() uint64 {
			i++
			k := z.Next()
			if i > n/2 {
				k = 1000 - k + 1 // invert ranking: cold keys become hot
			}
			return k
		}
	}
	pkgTruth := metrics.NewLoad(w)
	drive(NewPKG(w, 2, 31, pkgTruth), pkgTruth, gen(6), n)

	potcTruth := metrics.NewLoad(w)
	drive(NewPoTC(w, 31, potcTruth), potcTruth, gen(6), n)

	if pkgTruth.Imbalance() >= potcTruth.Imbalance() {
		t.Errorf("under drift, PKG imbalance %v should beat static PoTC %v",
			pkgTruth.Imbalance(), potcTruth.Imbalance())
	}
}

func TestPKGTheoremUniformDistribution(t *testing.T) {
	// Theorem 4.1: with p1 ≤ 1/(5n) (uniform over 5n keys qualifies) the
	// Greedy-2 imbalance is O(m/n). Check the ratio I(m)/(m/n) stays
	// bounded by a small constant across n, and that d=1 is clearly
	// worse — the Θ(ln n / ln ln n) factor in the paper's Theorem 4.2.
	const m = 200000
	for _, n := range []int{10, 20, 50} {
		keys := uint64(5 * n)
		d2 := metrics.NewLoad(n)
		drive(NewPKG(n, 2, 13, d2), d2, zipfGen(8, 0, keys), m)
		ratio2 := d2.Imbalance() / (float64(m) / float64(n))
		if ratio2 > 1.0 {
			t.Errorf("n=%d: Greedy-2 I(m)/(m/n) = %v, want O(1) (small)", n, ratio2)
		}
		d1 := metrics.NewLoad(n)
		drive(NewPKG(n, 1, 13, d1), d1, zipfGen(8, 0, keys), m)
		ratio1 := d1.Imbalance() / (float64(m) / float64(n))
		if ratio1 < 2*ratio2 {
			t.Errorf("n=%d: Greedy-1 ratio %v not ≫ Greedy-2 ratio %v", n, ratio1, ratio2)
		}
	}
}

func TestPKGLocalEstimationApproximatesGlobal(t *testing.T) {
	// Two sources with private views must still balance the *total* load:
	// each source balances its own portion, and loads are additive
	// (§III.B). Compare against the global-view imbalance.
	const w, n = 10, 200000
	// Global: one view == truth.
	gTruth := metrics.NewLoad(w)
	gp := NewPKG(w, 2, 17, gTruth)
	genG := zipfGen(9, 1.3, 20000)
	for i := 0; i < n; i++ {
		gTruth.Add(gp.Route(genG()))
	}

	// Local: two sources, each with its own estimate fed only by its own
	// messages; truth tracked separately.
	lTruth := metrics.NewLoad(w)
	views := []*metrics.Load{metrics.NewLoad(w), metrics.NewLoad(w)}
	parts := []*PKG{NewPKG(w, 2, 17, views[0]), NewPKG(w, 2, 17, views[1])}
	genL := zipfGen(9, 1.3, 20000)
	for i := 0; i < n; i++ {
		s := i % 2
		k := genL()
		dst := parts[s].Route(k)
		views[s].Add(dst)
		lTruth.Add(dst)
	}

	// Local estimation should be within an order of magnitude of global
	// (the paper: "less than one order of magnitude" difference).
	if lTruth.Imbalance() > 10*gTruth.Imbalance()+10 {
		t.Errorf("local imbalance %v too far above global %v",
			lTruth.Imbalance(), gTruth.Imbalance())
	}
	// And the local maximum imbalance bound: total imbalance ≤ sum of
	// per-source imbalances (loads are additive).
	sumLocal := views[0].Imbalance() + views[1].Imbalance()
	if lTruth.Imbalance() > sumLocal+1e-9 {
		t.Errorf("total imbalance %v exceeds sum of local imbalances %v",
			lTruth.Imbalance(), sumLocal)
	}
}

func TestPKGCandidatesDistinct(t *testing.T) {
	// Candidates are drawn without replacement: a key's d choices are
	// always distinct workers (as long as d ≤ W), so no key can lose its
	// second choice to a hash collision.
	for _, d := range []int{2, 3, 5} {
		for _, w := range []int{5, 10, 100} {
			g := NewPKG(w, d, uint64(w*d), metrics.NewLoad(w))
			f := func(key uint64) bool {
				cands := g.Candidates(key)
				seen := map[int]bool{}
				for _, c := range cands {
					if c < 0 || c >= w || seen[c] {
						return false
					}
					seen[c] = true
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
				t.Fatalf("d=%d w=%d: %v", d, w, err)
			}
		}
	}
}

func TestPKGCandidatesUniformCoverage(t *testing.T) {
	// Over many keys, each worker appears as a candidate with roughly
	// equal frequency (the without-replacement draw stays uniform).
	const w = 10
	g := NewPKG(w, 2, 77, metrics.NewLoad(w))
	counts := make([]int, w)
	for key := uint64(0); key < 20000; key++ {
		for _, c := range g.Candidates(key) {
			counts[c]++
		}
	}
	want := float64(20000*2) / w
	for i, c := range counts {
		if float64(c) < want*0.9 || float64(c) > want*1.1 {
			t.Errorf("worker %d appears %d times as candidate, want ≈%v", i, c, want)
		}
	}
}

func TestPKGMoreChoicesThanWorkers(t *testing.T) {
	// d > W degrades gracefully: every worker is a candidate.
	view := metrics.NewLoad(3)
	g := NewPKG(3, 5, 1, view)
	for key := uint64(0); key < 100; key++ {
		for _, c := range g.Candidates(key) {
			if c < 0 || c >= 3 {
				t.Fatalf("candidate %d out of range", c)
			}
		}
		w := g.Route(key)
		view.Add(w)
	}
	if view.Imbalance() > 1 {
		t.Fatalf("d ≥ W should behave like shuffle: imbalance %v", view.Imbalance())
	}
}

func TestPKGCandidatesFreshSlice(t *testing.T) {
	g := NewPKG(8, 2, 1, metrics.NewLoad(8))
	a := g.Candidates(42)
	a[0] = -99
	b := g.Candidates(42)
	if b[0] == -99 {
		t.Fatal("Candidates returned shared storage")
	}
}

func BenchmarkPKGRoute(b *testing.B) {
	view := metrics.NewLoad(100)
	g := NewPKG(100, 2, 1, view)
	gen := zipfGen(1, 1.2, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view.Add(g.Route(gen()))
	}
}

func BenchmarkKeyGroupingRoute(b *testing.B) {
	g := NewKeyGrouping(100, 1)
	gen := zipfGen(1, 1.2, 1_000_000)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += g.Route(gen())
	}
	_ = sink
}

package route

import (
	"math/rand"
	"testing"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
)

// TestWeightedArgminPrefersSoonestDrain pins the weighted decision
// rule: with rates attached, the candidate with the smaller
// (load + 1) × serviceNs wins even when it carries MORE load — the
// heterogeneous-cluster variant's whole point.
func TestWeightedArgminPrefersSoonestDrain(t *testing.T) {
	view := metrics.NewLoad(2)
	rates := NewRates(2)
	// Worker 0: load 30 at 100ns/tuple → drain 3100ns.
	// Worker 1: load 10 at 400ns/tuple → drain 4400ns.
	view.AddN(0, 30)
	view.AddN(1, 10)
	rates.Set(0, 100)
	rates.Set(1, 400)
	if got := leastLoadedWeighted(view, rates, []int{0, 1}); got != 0 {
		t.Fatalf("weighted argmin picked %d; worker 0 drains sooner despite more load", got)
	}
	// Unweighted would pick worker 1 (lower raw load) — the two rules
	// must genuinely disagree here or the case proves nothing.
	if got := leastLoaded(view, []int{0, 1}); got != 1 {
		t.Fatalf("unweighted argmin picked %d, want 1", got)
	}
}

// TestWeightedArgminUnknownRates pins the degradation ladder: no
// estimates at all falls back to the plain load argmin, and a
// candidate with no estimate borrows the smallest known rate rather
// than being penalized or preferred arbitrarily.
func TestWeightedArgminUnknownRates(t *testing.T) {
	view := metrics.NewLoad(3)
	rates := NewRates(3)
	view.AddN(0, 5)
	view.AddN(1, 3)
	view.AddN(2, 9)
	// All unknown: identical to leastLoaded.
	for _, cands := range [][]int{{0, 1}, {1, 2}, {0, 1, 2}, {2, 0}} {
		if w, u := leastLoadedWeighted(view, rates, cands), leastLoaded(view, cands); w != u {
			t.Fatalf("cands %v: weighted %d != unweighted %d with no rates", cands, w, u)
		}
	}
	// Worker 2 slow (400ns), worker 0 known fast (100ns), worker 1
	// unknown: 1 borrows 100ns, so (3+1)×100 beats (5+1)×100 and
	// (9+1)×400 — the unmeasured candidate competes at the best known
	// speed.
	rates.Set(0, 100)
	rates.Set(2, 400)
	if got := leastLoadedWeighted(view, rates, []int{0, 1, 2}); got != 1 {
		t.Fatalf("got %d, want the unknown-rate worker 1 to borrow the fastest rate and win", got)
	}
}

// TestPKGWeightedShedsFromSlowWorker runs PKG d=2 over two workers,
// one 4× slower, with the router's own decisions feeding the load
// view (the paper's local-estimation model). The weighted argmin must
// steer the split toward the fast worker roughly in proportion to the
// speed ratio; unweighted PKG splits ~50/50 on two workers.
func TestPKGWeightedShedsFromSlowWorker(t *testing.T) {
	const n = 100_000
	view := NewLoad(2)
	rates := NewRates(2)
	rates.Set(0, 100) // fast
	rates.Set(1, 400) // 4× slower
	g := NewPKG(2, 2, 42, view)
	g.SetRates(rates)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		dst := g.Route(rng.Uint64())
		view.Add(dst)
	}
	fast, slow := view.Get(0), view.Get(1)
	// Equal drain times ⇒ fast ≈ 4 × slow; allow slack for hash noise.
	if fast < 3*slow {
		t.Fatalf("weighted PKG sent fast=%d slow=%d; the slow worker did not shed (want ≥3× ratio)", fast, slow)
	}
	if fast+slow != n {
		t.Fatalf("routed %d tuples, want %d", fast+slow, n)
	}
}

// TestWeightedMatchesUnweightedUntilRatesArrive pins cold-start
// byte-identity: a rate-attached router with an empty Rates view must
// make exactly the decisions of an unweighted one, key for key — so
// enabling WeightedRouting cannot perturb a healthy homogeneous run.
func TestWeightedMatchesUnweightedUntilRatesArrive(t *testing.T) {
	viewA, viewB := NewLoad(4), NewLoad(4)
	a := NewPKG(4, 2, 9, viewA)
	b := NewPKG(4, 2, 9, viewB)
	b.SetRates(NewRates(4))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20_000; i++ {
		k := rng.Uint64()
		da, db := a.Route(k), b.Route(k)
		if da != db {
			t.Fatalf("decision diverged at tuple %d: %d vs %d with no rates known", i, da, db)
		}
		viewA.Add(da)
		viewB.Add(db)
	}
}

// TestRateAwareStrategies checks that Config.Rates reaches every
// view-driven strategy through New, and that mismatched sizing is an
// error, not a panic.
func TestRateAwareStrategies(t *testing.T) {
	hc := hotkey.Config{Epsilon: 0.01}
	for _, s := range []Strategy{StrategyPKG, StrategyDChoices, StrategyWChoices} {
		r, err := New(Config{
			Strategy: s, Workers: 4, Seed: 7, View: NewLoad(4),
			Rates: NewRates(4), Hot: hc,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if _, ok := r.(RateAware); !ok {
			t.Fatalf("%v router is not RateAware", s)
		}
	}
	if _, err := New(Config{
		Strategy: StrategyPKG, Workers: 4, Seed: 7, View: NewLoad(4),
		Rates: NewRates(3),
	}); err == nil {
		t.Fatal("mismatched rate view sizing did not error")
	}
}

package route

import (
	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
)

// DChoices is the frequency-aware generalization of PKG from the
// authors' follow-up ("When Two Choices Are not Enough", ICDE 2016):
// every source watches its own key frequencies with a Space-Saving
// sketch (internal/hotkey) and widens the candidate set of exactly the
// keys that need it —
//
//   - cold keys route over the same 2 candidates as PKG;
//   - hot keys route over d > 2 candidates (the configured Hot.D, or
//     per-key the ⌈p̂·W/(1+ε)⌉ workers the frequency warrants when
//     Hot.D is adaptive);
//   - head keys, which not even d candidates can hold within the skew
//     target, route over all W.
//
// The per-key candidate sets are nested: the i-th candidate depends only
// on (key, seed, W, i), so widening from 2 to d to W keeps every
// earlier candidate. A key's state therefore never moves when its class
// changes — widening only adds workers that may hold it, which is what
// keeps probe sets (ProbeSet) supersets of the PKG-2 pair and lets the
// windowed aggregation absorb the extra partials unchanged.
//
// Classification is per-source and the candidate sets are pure hash
// functions, so the scheme inherits PKG's zero coordination: sources
// share only the seed baked into the binary, never sketches or tables.
type DChoices struct {
	w     int
	seeds []uint64
	view  *metrics.Load
	rates *Rates
	cls   *hotkey.Classifier
	cands []int
}

// NewDChoices returns a D-Choices partitioner over w workers with hash
// seeds derived from seed, the given load view, and a fresh hot-key
// classifier configured by hc (hc.Workers is forced to w). It panics on
// invalid arguments, like the other constructors; use New for
// error-returning construction.
func NewDChoices(w int, seed uint64, view *metrics.Load, hc hotkey.Config) *DChoices {
	if w <= 0 {
		panic("route: NewDChoices with w <= 0")
	}
	if view == nil || view.N() != w {
		panic("route: NewDChoices with nil or mismatched view")
	}
	hc.Workers = w
	n := w
	if n < 2 {
		n = 2 // the cold path always derives two candidates
	}
	return &DChoices{
		w:     w,
		seeds: choiceSeeds(seed, n),
		view:  view,
		cls:   hotkey.NewClassifier(hc),
		cands: make([]int, n),
	}
}

// Route implements Router: it observes the key in this source's sketch,
// widens the candidate set to whatever the key's class warrants (a
// single classification lookup yields both), and returns the
// least-loaded candidate under the current view.
func (g *DChoices) Route(key uint64) int {
	_, d := g.cls.Observe(key)
	cands := g.cands[:d]
	candidates(cands, key, g.seeds[:d], g.w)
	if g.rates != nil {
		return leastLoadedWeighted(g.view, g.rates, cands)
	}
	return leastLoaded(g.view, cands)
}

// SetRates attaches a per-worker service-rate view (see PKG.SetRates):
// the widened candidate argmin then weighs loads by measured service
// time. Pass nil to restore the unweighted argmin.
func (g *DChoices) SetRates(r *Rates) {
	if r != nil && r.N() != g.w {
		panic("route: SetRates with mismatched rate view")
	}
	g.rates = r
}

// Candidates returns the candidate workers the key's *current* class
// yields (a fresh slice; 2 for cold keys). Unlike PKG.Candidates it
// depends on this source's classification state, not only on the key.
func (g *DChoices) Candidates(key uint64) []int {
	d := g.cls.Choices(key)
	out := make([]int, d)
	candidates(out, key, g.seeds[:d], g.w)
	return out
}

// Classifier returns this source's hot-key classifier.
func (g *DChoices) Classifier() *hotkey.Classifier { return g.cls }

// View returns the load view this partitioner consults.
func (g *DChoices) View() *metrics.Load { return g.view }

// Workers implements Router.
func (g *DChoices) Workers() int { return g.w }

// Name implements Router.
func (g *DChoices) Name() string { return "D-C" }

// WChoices is the follow-up paper's W-Choices: the simpler, more
// aggressive sibling of DChoices. Every key above the hot threshold —
// the paper's "head" of the distribution, the keys two candidates
// cannot hold within the skew target — is dealt round-robin over all W
// workers, spreading it perfectly; the cold tail keeps PKG's two
// candidates and its key locality. W-Choices trades the widest possible
// aggregation fan-in on head keys (one partial per worker) for the best
// achievable balance, where D-Choices meters the fan-in per key.
type WChoices struct {
	w     int
	seeds []uint64
	view  *metrics.Load
	rates *Rates
	cls   *hotkey.Classifier
	rr    int
	cands [2]int
}

// NewWChoices returns a W-Choices partitioner over w workers. start
// offsets the head-key round-robin (vary it per source so parallel
// sources do not march in lockstep). It panics on invalid arguments.
func NewWChoices(w int, seed uint64, view *metrics.Load, hc hotkey.Config, start int) *WChoices {
	if w <= 0 {
		panic("route: NewWChoices with w <= 0")
	}
	if view == nil || view.N() != w {
		panic("route: NewWChoices with nil or mismatched view")
	}
	hc.Workers = w
	if start < 0 {
		start = -start
	}
	return &WChoices{
		w:     w,
		seeds: choiceSeeds(seed, 2),
		view:  view,
		cls:   hotkey.NewClassifier(hc),
		rr:    start % w,
	}
}

// Route implements Router.
func (g *WChoices) Route(key uint64) int {
	if cl, _ := g.cls.Observe(key); cl != hotkey.Cold {
		r := g.rr
		g.rr++
		if g.rr == g.w {
			g.rr = 0
		}
		return r
	}
	candidates(g.cands[:], key, g.seeds, g.w)
	if g.rates != nil {
		return leastLoadedWeighted(g.view, g.rates, g.cands[:])
	}
	return leastLoaded(g.view, g.cands[:])
}

// SetRates attaches a per-worker service-rate view (see PKG.SetRates)
// consulted on the cold-key two-choices path; head keys keep their
// round-robin (perfect spread already ignores worker speed by design).
// Pass nil to restore the unweighted argmin.
func (g *WChoices) SetRates(r *Rates) {
	if r != nil && r.N() != g.w {
		panic("route: SetRates with mismatched rate view")
	}
	g.rates = r
}

// Classifier returns this source's hot-key classifier.
func (g *WChoices) Classifier() *hotkey.Classifier { return g.cls }

// View returns the load view this partitioner consults.
func (g *WChoices) View() *metrics.Load { return g.view }

// Workers implements Router.
func (g *WChoices) Workers() int { return g.w }

// Name implements Router.
func (g *WChoices) Name() string { return "W-C" }

// HotAware is implemented by routers that classify keys by frequency;
// hosts use it to surface hot-key statistics without knowing the
// concrete strategy.
type HotAware interface {
	Classifier() *hotkey.Classifier
}

var (
	_ Router    = (*DChoices)(nil)
	_ Router    = (*WChoices)(nil)
	_ HotAware  = (*DChoices)(nil)
	_ HotAware  = (*WChoices)(nil)
	_ RateAware = (*PKG)(nil)
	_ RateAware = (*DChoices)(nil)
	_ RateAware = (*WChoices)(nil)
)

package hotkey

import (
	"testing"

	"pkgstream/internal/sketch"
)

// oscillate streams `periods` refresh periods into c, steering key 1's
// *cumulative* estimated frequency to alternate between hi and lo
// across refresh boundaries (a fixed per-period count would damp
// towards the mean and stop crossing the threshold). The tail cycles
// over 200 distinct keys, well under the sketch capacity, so estimates
// are exact. Returns the number of class changes key 1 went through,
// sampled at every refresh boundary.
func oscillate(t *testing.T, c *Classifier, periods int, hi, lo float64) int {
	t.Helper()
	const period = 500
	changes := 0
	last := c.Class(1)
	var total, ofKey int64
	tail := uint64(0)
	for p := 0; p < periods; p++ {
		share := hi
		if p%2 == 1 {
			share = lo
		}
		want := int64(share * float64(total+period))
		add := want - ofKey
		if add < 0 {
			add = 0
		}
		if add > period {
			t.Fatalf("period %d: cannot reach share %v (needs %d of %d)", p, share, add, period)
		}
		for i := int64(0); i < period; i++ {
			if i < add {
				c.Observe(1)
				ofKey++
			} else {
				c.Observe(100 + tail%200)
				tail++
			}
			total++
		}
		if cl := c.Class(1); cl != last {
			changes++
			last = cl
		}
	}
	return changes
}

// TestHysteresisBoundsChurn is the PR-4 satellite gate: a key whose
// estimated frequency oscillates across the hot threshold flaps its
// class on every sketch refresh without hysteresis, and changes class
// at most once with the default band — because demotion now requires
// falling below (1−h)·threshold, not merely below the threshold.
func TestHysteresisBoundsChurn(t *testing.T) {
	// W=50, ε=0.25 ⇒ hot threshold 2(1+ε)/W = 0.05. The cumulative
	// frequency alternates 0.055 / 0.045: above the threshold, then
	// inside the default band [0.04, 0.05).
	base := Config{Workers: 50, RefreshEvery: 500, Warmup: 500}
	const periods = 12

	damped := NewClassifier(base) // default Hysteresis 0.2
	if got := oscillate(t, damped, periods, 0.055, 0.045); got > 1 {
		t.Fatalf("hysteresis: %d class changes over %d refreshes, want ≤ 1", got, periods)
	}
	if damped.Class(1) == Cold {
		t.Fatal("hysteresis: oscillating key ended cold — it never fell below the band")
	}

	raw := base
	raw.Hysteresis = 1e-9 // effectively no band
	undamped := NewClassifier(raw)
	if got := oscillate(t, undamped, periods, 0.055, 0.045); got < 4 {
		t.Fatalf("without hysteresis only %d class changes — oscillation stream is not crossing the threshold", got)
	}
}

// TestHysteresisStillDemotes: the band damps oscillation, it does not
// pin classes — a key whose frequency genuinely collapses is demoted
// once it falls below (1−h)·threshold.
func TestHysteresisStillDemotes(t *testing.T) {
	c := NewClassifier(Config{Workers: 50, RefreshEvery: 500, Warmup: 500})
	// Promote: 10% of the first period.
	if oscillate(t, c, 1, 0.10, 0.10); c.Class(1) == Cold {
		t.Fatal("key at 10% not promoted")
	}
	// Starve the key entirely: cumulative share decays below 0.04.
	if oscillate(t, c, 10, 0, 0); c.Class(1) != Cold {
		t.Fatalf("starved key still %v", c.Class(1))
	}
}

// TestHysteresisNoShrinkInsideBand: inside the band a hot key's widened
// candidate count keeps its high-water mark instead of tracking the
// estimate downwards (every shrink would strand partial state outside
// the probe set downstream) — but ABOVE the band the warranted width
// governs, so a key that spiked wide and settled lower narrows again.
func TestHysteresisNoShrinkInsideBand(t *testing.T) {
	c := NewClassifier(Config{Workers: 50, RefreshEvery: 500, Warmup: 500})
	// period streams one 500-observation refresh period with `hits`
	// observations of key 1 and an exact-sketch tail.
	tail := uint64(0)
	period := func(hits int) {
		for i := 0; i < 500; i++ {
			if i < hits {
				c.Observe(1)
			} else {
				c.Observe(100 + tail%200)
				tail++
			}
		}
	}
	// 40/500 = 8%: need = ceil(0.08·50/1.25) = 4 candidates.
	period(40)
	wide := c.Choices(1)
	if wide != 4 {
		t.Fatalf("hot key widened to %d, want 4", wide)
	}
	// Drop straight into the band: 42/1000 = 4.2% (hot threshold 5%,
	// band floor 4%) — still hot, and the width keeps its high-water
	// mark where the adaptive need would be the minimum 3.
	period(2)
	if cl := c.Class(1); cl == Cold {
		t.Fatal("key demoted inside the band")
	}
	if got := c.Choices(1); got != wide {
		t.Fatalf("candidate count changed %d → %d inside the band", wide, got)
	}
	// Climb back ABOVE the threshold at a lower level: 105/1500 = 7%,
	// plainly hot again, and the warranted width ceil(0.07·40) = 3
	// replaces the stale high-water mark — no ratchet outside the band.
	period(63)
	if got := c.Choices(1); got != 3 {
		t.Fatalf("candidate count %d above the band, want the warranted 3", got)
	}
}

// TestSnapshotRestoreClassifiesImmediately is the sketch-checkpoint
// satellite's core property: a classifier restored from a snapshot
// classifies a known head key as head before observing a single
// message.
func TestSnapshotRestoreClassifiesImmediately(t *testing.T) {
	cfg := Config{Workers: 50, RefreshEvery: 512, Warmup: 512}
	a := NewClassifier(cfg)
	// Key 1 carries 70% of the stream — above the head threshold
	// dCap(1+ε)/W = 25·1.25/50 = 0.625 (adaptive dCap = ⌈W/2⌉ = 25).
	for i := 0; i < 4096; i++ {
		if i%10 < 7 {
			a.Observe(1)
		} else {
			a.Observe(100 + uint64(i)%50)
		}
	}
	if a.Class(1) != Head {
		t.Fatalf("source classifier has key 1 as %v, want head", a.Class(1))
	}

	b := NewClassifier(cfg)
	if b.Class(1) != Cold {
		t.Fatal("fresh classifier not cold")
	}
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Class(1) != Head {
		t.Fatalf("restored classifier has key 1 as %v, want head immediately", b.Class(1))
	}
	if got, want := b.Stats().Observed, a.Stats().Observed; got != want {
		t.Fatalf("restored observed %d, want %d", got, want)
	}
	// And it keeps classifying as the stream continues.
	cl, d := b.Observe(1)
	if cl != Head || d != 50 {
		t.Fatalf("first observation after restore: class %v d %d", cl, d)
	}
}

// TestRestoreRemergesCapacityMismatch: a checkpoint written under a
// different sketch capacity is re-merged into the configured one
// rather than silently changing the classifier's memory bound.
func TestRestoreRemergesCapacityMismatch(t *testing.T) {
	big := sketch.New(512)
	for i := 0; i < 10_000; i++ {
		if i%2 == 0 {
			big.Update(7)
		} else {
			big.Update(uint64(i))
		}
	}
	c := NewClassifier(Config{Workers: 50, SketchCapacity: 64})
	if err := c.Restore(big.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if c.Class(7) == Cold {
		t.Fatal("head key lost in capacity re-merge")
	}
	if err := c.Restore(sketch.Summary{K: 0}); err == nil {
		t.Fatal("corrupt summary accepted")
	}
}

package hotkey

import (
	"math"
	"testing"

	"pkgstream/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Workers: -1},
		{Workers: 10, D: 1},
		{Workers: 10, D: 2},
		{Workers: 10, D: -3},
		{Workers: 10, Epsilon: -0.1},
		{Workers: 10, Epsilon: math.NaN()},
		{Workers: 10, RefreshEvery: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Config %+v validated", cfg)
		}
	}
	good := []Config{
		{Workers: 1},
		{Workers: 50},
		{Workers: 50, D: 3},
		{Workers: 50, D: 100}, // clamped later, not rejected
		{Workers: 50, Epsilon: 0.5, SketchCapacity: 10, RefreshEvery: 7, Warmup: 3},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Config %+v rejected: %v", cfg, err)
		}
	}
}

func TestThresholdsAreTheTwoChoiceBreakpoints(t *testing.T) {
	c := NewClassifier(Config{Workers: 50, Epsilon: 0.25})
	// Hot: two candidates exceed (1+ε)/W at p = 2(1+ε)/W.
	if got, want := c.HotThreshold(), 2*1.25/50; math.Abs(got-want) > 1e-12 {
		t.Errorf("HotThreshold = %v, want %v", got, want)
	}
	// Adaptive dCap = ⌈W/2⌉ = 25.
	if c.DCap() != 25 {
		t.Errorf("DCap = %d, want 25", c.DCap())
	}
	if got, want := c.HeadThreshold(), 25*1.25/50; math.Abs(got-want) > 1e-12 {
		t.Errorf("HeadThreshold = %v, want %v", got, want)
	}
	// Fixed D moves the head threshold down with it.
	f := NewClassifier(Config{Workers: 50, D: 5})
	if f.DCap() != 5 {
		t.Errorf("fixed DCap = %d, want 5", f.DCap())
	}
	if f.HeadThreshold() >= c.HeadThreshold() {
		t.Errorf("fixed d=5 head threshold %v not below adaptive %v",
			f.HeadThreshold(), c.HeadThreshold())
	}
}

// feed drives n observations of a two-level distribution: key 1 with
// probability p, the rest uniform over tail keys 2..K.
func feed(c *Classifier, n int, p float64, tail uint64, seed uint64) {
	src := rng.NewStream(seed, 0)
	for i := 0; i < n; i++ {
		if src.Float64() < p {
			c.Observe(1)
		} else {
			c.Observe(2 + src.Uint64()%tail)
		}
	}
}

func TestClassification(t *testing.T) {
	// W = 50, ε = 0.25: hot above 5%, head above 62.5% (adaptive dCap 25).
	c := NewClassifier(Config{Workers: 50, RefreshEvery: 256})
	feed(c, 20_000, 0.30, 1000, 7)
	if got := c.Class(1); got != Hot {
		t.Fatalf("30%% key classified %v, want hot", got)
	}
	// The warranted width: need = ⌈0.3·50/1.25⌉ = 12 (±1 for estimate noise).
	if d := c.Choices(1); d < 10 || d > 14 {
		t.Errorf("30%% key got %d choices, want ≈12", d)
	}
	if got := c.Class(999999); got != Cold {
		t.Errorf("unseen key classified %v, want cold", got)
	}
	if d := c.Choices(999999); d != 2 {
		t.Errorf("cold key got %d choices, want 2", d)
	}

	head := NewClassifier(Config{Workers: 50, RefreshEvery: 256})
	feed(head, 20_000, 0.80, 1000, 7)
	if got := head.Class(1); got != Head {
		t.Fatalf("80%% key classified %v, want head", got)
	}
	if d := head.Choices(1); d != 50 {
		t.Errorf("head key got %d choices, want all 50", d)
	}

	st := head.Stats()
	if st.HeadKeys != 1 || st.HotKeys != 0 {
		t.Errorf("populations hot=%d head=%d, want 0/1", st.HotKeys, st.HeadKeys)
	}
	if st.Observed != 20_000 {
		t.Errorf("Observed = %d, want 20000", st.Observed)
	}
	if st.HeadRouted == 0 || st.ColdRouted == 0 {
		t.Errorf("per-class counts not maintained: %+v", st)
	}
	if got := st.ColdRouted + st.HotRouted + st.HeadRouted; got != st.Observed {
		t.Errorf("class counts sum to %d, want %d", got, st.Observed)
	}
}

func TestFixedDClassification(t *testing.T) {
	// Fixed d = 5: a 30% key needs 12 > 5 workers, so it is head and
	// escalates to all W.
	c := NewClassifier(Config{Workers: 50, D: 5, RefreshEvery: 256})
	feed(c, 20_000, 0.30, 1000, 7)
	if got := c.Class(1); got != Head {
		t.Fatalf("30%% key under d=5 classified %v, want head", got)
	}
	// A 10% key needs 4 ≤ 5: hot, with exactly the configured d.
	c2 := NewClassifier(Config{Workers: 50, D: 5, RefreshEvery: 256})
	feed(c2, 20_000, 0.10, 1000, 7)
	if got := c2.Class(1); got != Hot {
		t.Fatalf("10%% key under d=5 classified %v, want hot", got)
	}
	if d := c2.Choices(1); d != 5 {
		t.Errorf("hot key under fixed d=5 got %d choices", d)
	}
}

func TestWarmupKeepsEverythingCold(t *testing.T) {
	c := NewClassifier(Config{Workers: 10, RefreshEvery: 1000, Warmup: 1000})
	for i := 0; i < 999; i++ {
		c.Observe(1) // 100% frequency, but below warmup
	}
	if got := c.Class(1); got != Cold {
		t.Errorf("key classified %v before warmup, want cold", got)
	}
	c.Observe(1) // observation 1000 triggers the first refresh
	if got := c.Class(1); got != Head {
		t.Errorf("key classified %v after warmup, want head", got)
	}
	if c.Stats().Refreshes != 1 {
		t.Errorf("Refreshes = %d, want 1", c.Stats().Refreshes)
	}
}

func TestClassificationFrozenBetweenRefreshes(t *testing.T) {
	c := NewClassifier(Config{Workers: 10, RefreshEvery: 100, Warmup: 100})
	for i := 0; i < 100; i++ {
		c.Observe(1)
	}
	if c.Class(1) != Head {
		t.Fatal("single-key stream not head")
	}
	// 99 cold observations: the class must not change until the refresh.
	for i := 0; i < 99; i++ {
		c.Observe(uint64(10 + i))
		if c.Class(1) != Head {
			t.Fatalf("classification churned mid-period at observation %d", i)
		}
	}
}

func TestStatsFold(t *testing.T) {
	a := Stats{Observed: 10, HotKeys: 1, Refreshes: 2, ColdRouted: 8, HotRouted: 2}
	b := Stats{Observed: 5, HeadKeys: 1, Refreshes: 7, ColdRouted: 5}
	a.Fold(b)
	if a.Observed != 15 || a.HotKeys != 1 || a.HeadKeys != 1 || a.Refreshes != 7 ||
		a.ColdRouted != 13 || a.HotRouted != 2 {
		t.Errorf("Fold wrong: %+v", a)
	}
}

func TestSmallWIsInert(t *testing.T) {
	// W ≤ 2: the hot threshold exceeds 1, so nothing is ever widened.
	c := NewClassifier(Config{Workers: 2, RefreshEvery: 64, Warmup: 64})
	for i := 0; i < 1000; i++ {
		c.Observe(1)
	}
	if c.Class(1) != Cold || c.Choices(1) != 2 {
		t.Errorf("W=2 classifier widened: class=%v choices=%d", c.Class(1), c.Choices(1))
	}
}

func TestWarmupBelowRefreshEvery(t *testing.T) {
	// The first classification fires exactly at Warmup even when that is
	// not a multiple of RefreshEvery.
	c := NewClassifier(Config{Workers: 10, RefreshEvery: 512, Warmup: 64})
	for i := 0; i < 64; i++ {
		c.Observe(1)
	}
	if got := c.Class(1); got != Head {
		t.Errorf("key classified %v right after a 64-observation warmup, want head", got)
	}
	if c.Stats().Refreshes != 1 {
		t.Errorf("Refreshes = %d, want 1", c.Stats().Refreshes)
	}
}

func TestObserveReturnsChoices(t *testing.T) {
	c := NewClassifier(Config{Workers: 50, RefreshEvery: 256})
	feed(c, 20_000, 0.30, 1000, 7)
	cl, d := c.Observe(1)
	if cl != Hot {
		t.Fatalf("class %v, want hot", cl)
	}
	if d != c.Choices(1) || d <= 2 {
		t.Errorf("Observe returned %d choices, Choices says %d", d, c.Choices(1))
	}
	cl, d = c.Observe(999_999)
	if cl != Cold || d != 2 {
		t.Errorf("cold key: class %v choices %d", cl, d)
	}
}

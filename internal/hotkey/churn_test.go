package hotkey

import (
	"testing"

	"pkgstream/internal/dataset"
)

// measureDriftChurn streams the CT drifting-popularity dataset (the
// paper's cashtag shape: the hot keys rotate every simulated week)
// through a classifier and measures the PARTIAL-COUNTER churn the
// classification inflicts downstream: every time a routed key's
// candidate width changes by Δ, about Δ workers gain or lose a partial
// counter for it (a widened key spreads onto new workers; a narrowed
// one strands state outside its probe set). Sampled at observation
// time, exactly when the router consults the classification.
func measureDriftChurn(t *testing.T, hysteresis float64) (churn int64, changes, demotions int) {
	t.Helper()
	// W = 200: the 2016 paper's "at scale" regime, where the hot
	// threshold 2(1+ε)/W = 1.25% puts a meaningful population of CT
	// keys near the classification boundaries.
	c := NewClassifier(Config{Workers: 200, Hysteresis: hysteresis})
	st := dataset.CT.WithCap(300_000).Open(7)
	last := map[uint64]int{}
	for {
		m, ok := st.Next()
		if !ok {
			break
		}
		_, d := c.Observe(m.Key)
		if old, seen := last[m.Key]; seen && old != d {
			delta := d - old
			if delta < 0 {
				delta = -delta
			}
			churn += int64(delta)
			changes++
			if d == 2 {
				demotions++ // a genuine hot→cold collapse
			}
		}
		last[m.Key] = d
	}
	return churn, changes, demotions
}

// TestDriftChurnBoundedByHysteresis is the ROADMAP churn measurement:
// on the CT drift stream a key is hot for one epoch and cold the next —
// a GENUINE class change the hysteresis band must let through (the
// partial state has to move eventually) while suppressing the estimate
// noise around the thresholds that would otherwise reshuffle candidate
// sets refresh after refresh.
func TestDriftChurnBoundedByHysteresis(t *testing.T) {
	churn, changes, demotions := measureDriftChurn(t, 0.2) // the default band
	churnRaw, changesRaw, _ := measureDriftChurn(t, 1e-9)  // effectively no band
	t.Logf("hysteresis: churn %d over %d changes (%d demotions); raw: churn %d over %d changes",
		churn, changes, demotions, churnRaw, changesRaw)

	// The drift must produce real demotions — the band damps, it does
	// not pin: a key whose epoch ended goes back to cold (its partial
	// state moves once, as it must).
	if demotions == 0 {
		t.Fatal("no hot→cold demotion across ~4 drift epochs — the drift stream is not exercising re-classification")
	}
	// The band must strictly reduce both the transition count and the
	// counter churn of the same stream: what it removes is exactly the
	// near-threshold flapping, while the genuine epoch transitions
	// survive in both runs.
	if churn >= churnRaw || changes >= changesRaw {
		t.Fatalf("hysteresis did not reduce churn: %d/%d changes with band vs %d/%d without",
			churn, changes, churnRaw, changesRaw)
	}
	// Absolute bound: ~586 refresh rounds over the stream; a classifier
	// thrashing near the thresholds would re-place counters every
	// round (tens of thousands of moves at W = 200). Bounded churn
	// means the total stays at the scale of the genuine transitions —
	// a few hundred counter moves for ~4 epochs of rotating hot keys.
	if churn > 1_000 {
		t.Fatalf("partial-counter churn %d on the drift stream — re-classification is thrashing", churn)
	}
}

// Package hotkey makes routing frequency-aware. The source paper's PKG
// balances well while every key can be served by two workers, but its
// follow-up ("When Two Choices Are not Enough: Balancing at Scale in
// Distributed Stream Processing", Nasir et al., ICDE 2016) shows that at
// large W the head of a skewed key distribution must be spread over
// d > 2 — or all — workers while the cold tail stays on two. The missing
// piece is a streaming estimate of each key's frequency: this package
// supplies it as a per-source Classifier over a Space-Saving sketch
// (internal/sketch, shared with the heavy-hitters application).
//
// Each source owns one Classifier and feeds it every key it routes, so
// classification needs zero coordination — exactly the property that
// makes PKG practical. Sources dealt a round-robin share of the stream
// see the same key distribution, so their sketches, and therefore their
// classifications, agree up to sketch error without ever talking to each
// other (the 2016 paper's observation).
//
// Classification is a pure function of the key's estimated frequency
// p̂(k), the worker count W, and the skew target ε (the tolerated excess
// over the ideal per-worker share 1/W). Spreading a key of frequency p
// over d workers puts p/d on each; keeping that within (1+ε)/W needs
//
//	need(k) = ⌈p̂(k)·W/(1+ε)⌉ workers.
//
// The classes follow:
//
//	cold:  need ≤ 2        — two choices suffice (stay on PKG-2);
//	hot:   2 < need ≤ dCap — D-Choices widens to d candidates;
//	head:  need > dCap     — even d is not enough; use all W workers.
//
// dCap is the configured D-Choices parameter d (Config.D), or ⌈W/2⌉ when
// D is left adaptive — once a key warrants more than half the workers,
// spreading it over all of them is both simpler and strictly better.
// The resulting frequency thresholds, HotThreshold = 2(1+ε)/W and
// HeadThreshold = dCap·(1+ε)/W, are the 2016 paper's shape: functions of
// W, d and the skew target only.
package hotkey

import (
	"fmt"
	"math"
	"sync/atomic"

	"pkgstream/internal/sketch"
)

// Class is a key's current routing class.
type Class uint8

// The three classes, in increasing frequency order.
const (
	// Cold keys keep the paper's two choices.
	Cold Class = iota
	// Hot keys warrant d > 2 candidate workers (D-Choices).
	Hot
	// Head keys warrant all W workers (W-Choices, or the D-Choices
	// escalation when even d candidates cannot hold them).
	Head
)

// String returns a short class label.
func (c Class) String() string {
	switch c {
	case Cold:
		return "cold"
	case Hot:
		return "hot"
	case Head:
		return "head"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config parameterizes a Classifier. The zero value of every field picks
// a sensible default; only Workers is required.
type Config struct {
	// Workers is the number of downstream workers W.
	Workers int
	// D is the number of candidate workers given to hot keys (the
	// D-Choices parameter). 0 selects the adaptive policy: each hot key
	// gets exactly the ⌈p̂·W/(1+ε)⌉ candidates its frequency warrants,
	// capped at ⌈W/2⌉ beyond which the key is head. Fixed values must be
	// ≥ 3 (2 would be plain PKG); values above W are clamped by the
	// candidate construction.
	D int
	// Epsilon is the skew target: the tolerated relative excess over the
	// ideal per-worker share 1/W when a key's traffic is split across
	// its candidates. 0 means "default" (0.25); there is no way to
	// request a literal zero target — use a small positive value (e.g.
	// 1e-9) for the strict 2/W threshold. Smaller targets classify more
	// keys as hot and spread them wider.
	Epsilon float64
	// SketchCapacity is the Space-Saving summary size. Default 5·W
	// (minimum 64): the sketch's overestimation is then at most
	// N/(5W) ≲ HotThreshold/10, so tail keys cannot be misclassified
	// upward by sketch error alone.
	SketchCapacity int
	// Hysteresis bounds re-classification churn around the thresholds:
	// a key is promoted when its estimated frequency exceeds a class
	// threshold, but demoted only once it falls below (1−Hysteresis)
	// times that threshold, so an estimate oscillating near a boundary
	// cannot flap the key's candidate set refresh after refresh (every
	// class change moves partial state across workers downstream).
	// Within the band a hot key's widened candidate count never
	// shrinks either. 0 means "default" (0.2); as with Epsilon there is
	// no way to request a literal zero band — use a small positive
	// value (e.g. 1e-9) for hysteresis-free classification. Must be
	// < 1.
	Hysteresis float64
	// RefreshEvery is the number of observations between classification
	// rebuilds (default 512). Between rebuilds the classification is
	// frozen, which bounds re-classification churn: a key's candidate
	// set changes at most once per refresh.
	RefreshEvery int
	// Warmup is the minimum number of observations before any key is
	// classified non-cold (default RefreshEvery): early estimates are
	// too noisy to widen on. The first classification happens exactly at
	// Warmup; later ones on multiples of RefreshEvery.
	Warmup int
}

// withDefaults fills zero fields; it does not validate.
func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.25
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.2
	}
	if c.SketchCapacity == 0 {
		c.SketchCapacity = 5 * c.Workers
		if c.SketchCapacity < 64 {
			c.SketchCapacity = 64
		}
	}
	if c.RefreshEvery == 0 {
		c.RefreshEvery = 512
	}
	if c.Warmup == 0 {
		c.Warmup = c.RefreshEvery
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("hotkey: Workers must be positive, got %d", c.Workers)
	}
	if c.D < 0 || c.D == 1 || c.D == 2 {
		return fmt.Errorf("hotkey: D must be 0 (adaptive) or ≥ 3, got %d", c.D)
	}
	if c.Epsilon < 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("hotkey: Epsilon must be a finite non-negative target, got %v", c.Epsilon)
	}
	if c.Hysteresis < 0 || c.Hysteresis >= 1 || math.IsNaN(c.Hysteresis) {
		return fmt.Errorf("hotkey: Hysteresis must be in [0, 1), got %v", c.Hysteresis)
	}
	if c.SketchCapacity < 0 || c.RefreshEvery < 0 || c.Warmup < 0 {
		return fmt.Errorf("hotkey: negative SketchCapacity, RefreshEvery or Warmup")
	}
	return nil
}

// Stats is a snapshot of a Classifier's counters. All fields are safe to
// read while the owning source routes.
type Stats struct {
	// Observed is the number of keys observed (messages routed).
	Observed int64
	// Tracked is the number of keys monitored by the sketch.
	Tracked int64
	// HotKeys and HeadKeys are the population of the hot and head
	// classes at the last refresh (HotKeys excludes HeadKeys).
	HotKeys, HeadKeys int64
	// Refreshes counts classification rebuilds.
	Refreshes int64
	// ColdRouted, HotRouted and HeadRouted count observed messages by
	// the class their key held at observation time.
	ColdRouted, HotRouted, HeadRouted int64
}

// Fold accumulates another snapshot into s: counters and populations
// sum (the total over sources), Refreshes takes the maximum.
func (s *Stats) Fold(x Stats) {
	s.Observed += x.Observed
	s.Tracked += x.Tracked
	s.HotKeys += x.HotKeys
	s.HeadKeys += x.HeadKeys
	if x.Refreshes > s.Refreshes {
		s.Refreshes = x.Refreshes
	}
	s.ColdRouted += x.ColdRouted
	s.HotRouted += x.HotRouted
	s.HeadRouted += x.HeadRouted
}

// Classifier tracks key frequencies for one source and classifies each
// key as cold, hot or head. It is owned by a single routing goroutine —
// Observe, Class and Choices are not safe for concurrent use — but
// Stats may be called from any goroutine while routing runs.
type Classifier struct {
	cfg  Config
	dCap int
	ss   *sketch.SpaceSaving
	// choices holds the widened candidate count of every non-cold key as
	// of the last refresh; absent keys are cold. Rebuilt, never mutated
	// in place.
	choices map[uint64]int

	observed   atomic.Int64
	tracked    atomic.Int64
	hotKeys    atomic.Int64
	headKeys   atomic.Int64
	refreshes  atomic.Int64
	coldRouted atomic.Int64
	hotRouted  atomic.Int64
	headRouted atomic.Int64
}

// NewClassifier returns a Classifier for the configuration. It panics on
// an invalid Config (use Config.Validate to check first when wiring from
// user input).
func NewClassifier(cfg Config) *Classifier {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	dCap := cfg.D
	if dCap == 0 {
		dCap = (cfg.Workers + 1) / 2
		if dCap < 3 {
			dCap = 3
		}
	}
	return &Classifier{
		cfg:     cfg,
		dCap:    dCap,
		ss:      sketch.New(cfg.SketchCapacity),
		choices: map[uint64]int{},
	}
}

// Workers returns the configured worker count W.
func (c *Classifier) Workers() int { return c.cfg.Workers }

// DCap returns the effective D-Choices parameter: Config.D, or the
// adaptive cap ⌈W/2⌉ beyond which a key is head.
func (c *Classifier) DCap() int { return c.dCap }

// HotThreshold returns the relative frequency above which a key is no
// longer cold: 2(1+ε)/W, the point where two candidates can no longer
// hold the key within the skew target.
func (c *Classifier) HotThreshold() float64 {
	return 2 * (1 + c.cfg.Epsilon) / float64(c.cfg.Workers)
}

// HeadThreshold returns the relative frequency above which a key is
// head: dCap·(1+ε)/W, the point where even dCap candidates cannot hold
// it within the skew target.
func (c *Classifier) HeadThreshold() float64 {
	return float64(c.dCap) * (1 + c.cfg.Epsilon) / float64(c.cfg.Workers)
}

// Observe records one routed message for key — updating the sketch and,
// at Warmup and then on every RefreshEvery-th observation, rebuilding
// the classification — and returns the key's class as of the last
// rebuild together with the candidate count it warrants (2 / d / W),
// counting the message into the per-class counters. Routers consume
// both values from the single classification lookup.
func (c *Classifier) Observe(key uint64) (Class, int) {
	c.ss.Update(key)
	n := c.ss.N()
	c.observed.Store(n)
	if n == int64(c.cfg.Warmup) ||
		(n > int64(c.cfg.Warmup) && n%int64(c.cfg.RefreshEvery) == 0) {
		c.refresh(n)
	}
	cl, d := c.classify(key)
	switch cl {
	case Head:
		c.headRouted.Add(1)
	case Hot:
		c.hotRouted.Add(1)
	default:
		c.coldRouted.Add(1)
	}
	return cl, d
}

// classify resolves key against the frozen choices table in one lookup.
func (c *Classifier) classify(key uint64) (Class, int) {
	d, ok := c.choices[key]
	switch {
	case !ok:
		return Cold, 2
	case d >= c.cfg.Workers:
		return Head, d
	default:
		return Hot, d
	}
}

// refresh rebuilds the choices table from the sketch: every monitored
// key whose estimated frequency warrants more than two workers enters
// with its widened candidate count. Estimates use the sketch's upper
// bound; with the default capacity the bound's slack is an order of
// magnitude below HotThreshold, so it cannot promote tail keys.
//
// Demotion is damped by Config.Hysteresis: a key keeps its class (and
// its candidate count never shrinks) until its frequency falls below
// (1−h) times the class threshold, so estimates oscillating around a
// boundary cannot flap the candidate set — and with it the downstream
// partial-state placement — on every rebuild.
func (c *Classifier) refresh(n int64) {
	w := c.cfg.Workers
	slack := 1 + c.cfg.Epsilon
	// Promotion boundaries in frequency form: need(k) > 2 ⟺ p > hotTh
	// and need(k) > dCap ⟺ p > headTh (ceil(x) > m ⟺ x > m).
	hotTh := 2 * slack / float64(w)
	headTh := float64(c.dCap) * slack / float64(w)
	keepHot := (1 - c.cfg.Hysteresis) * hotTh
	keepHead := (1 - c.cfg.Hysteresis) * headTh
	prev := c.choices
	next := make(map[uint64]int, len(prev))
	var hot, head int64
	// Items is sorted by decreasing count: below the hot retention
	// threshold nothing can be promoted or retained, so stop there.
	for _, it := range c.ss.Items() {
		p := float64(it.Count) / float64(n)
		if p < keepHot {
			break
		}
		old := prev[it.Item] // 0: was cold
		var d int
		switch {
		case p > headTh || (old >= w && p >= keepHead):
			// Head by promotion, or retained head within the band.
			d = w
		case p > hotTh || old > 2:
			// Hot by promotion, or a previously widened key retained by
			// hysteresis (p ≥ keepHot holds here). A demoted head key
			// lands here too, at the width its frequency now warrants.
			d = int(math.Ceil(p * float64(w) / slack))
			if c.cfg.D > 0 {
				d = c.cfg.D
			}
			if d < 3 {
				d = 3 // a retained key inside the band still warrants > 2
			}
			if p <= hotTh && old > 2 && old < w && d < old {
				d = old // no shrink INSIDE the band; above it the warranted
				//         width governs, so a key that spiked wide and
				//         settled lower (but still hot) narrows again
			}
			if d > w {
				d = w
			}
		default:
			continue // cold: in the band but never promoted
		}
		next[it.Item] = d
		if d >= w {
			head++
		} else {
			hot++
		}
	}
	c.choices = next
	c.hotKeys.Store(hot)
	c.headKeys.Store(head)
	c.tracked.Store(int64(c.ss.Size()))
	c.refreshes.Add(1)
}

// Class returns key's class as of the last refresh, without observing.
func (c *Classifier) Class(key uint64) Class {
	cl, _ := c.classify(key)
	return cl
}

// Choices returns the number of candidate workers key's class warrants:
// 2 when cold, the widened d when hot, W when head. Like Class it reads
// the frozen classification and never mutates, so probe-set derivation
// can call it freely.
func (c *Classifier) Choices(key uint64) int {
	_, d := c.classify(key)
	return d
}

// Snapshot captures the classifier's Space-Saving summary for
// checkpointing (it is small: O(SketchCapacity)). Call it from the
// owning routing goroutine, like Observe.
func (c *Classifier) Snapshot() sketch.Summary { return c.ss.Snapshot() }

// Restore replaces the classifier's sketch with a checkpointed summary
// and — when the summary is past warmup — rebuilds the classification
// immediately, so a restarted source classifies a known head key as
// head on its very first message instead of routing it cold until the
// sketch re-warms. A summary whose capacity differs from the configured
// one is re-merged into the configured capacity.
func (c *Classifier) Restore(sum sketch.Summary) error {
	ss, err := sketch.FromSummary(sum)
	if err != nil {
		return fmt.Errorf("hotkey: restore: %w", err)
	}
	if sum.K != c.cfg.SketchCapacity {
		ss = sketch.Merge(c.cfg.SketchCapacity, ss)
	}
	c.ss = ss
	n := ss.N()
	c.observed.Store(n)
	if n >= int64(c.cfg.Warmup) && n > 0 {
		c.refresh(n)
	}
	return nil
}

// Stats snapshots the counters. Safe to call from any goroutine.
func (c *Classifier) Stats() Stats {
	return Stats{
		Observed:   c.observed.Load(),
		Tracked:    c.tracked.Load(),
		HotKeys:    c.hotKeys.Load(),
		HeadKeys:   c.headKeys.Load(),
		Refreshes:  c.refreshes.Load(),
		ColdRouted: c.coldRouted.Load(),
		HotRouted:  c.hotRouted.Load(),
		HeadRouted: c.headRouted.Load(),
	}
}

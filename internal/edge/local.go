package edge

// Local is the in-process Edge: one bounded batch channel per
// destination instance, exactly the engine runtime's PR 1 hot path.
// Send is a single channel operation per batch — deliberately nothing
// else, not even a counter: the engine's emitters already account
// emits, and an atomic here would tax the BatchSize=1 configuration
// once per tuple. Backpressure is the channel blocking when the
// destination's queue is full. Many senders may share one Local (every
// upstream instance of an engine edge does); the receive side is torn
// down once by the owner with CloseRecv after all senders are done.
type Local[T any] struct {
	chans []chan []T
}

// NewLocal returns a Local edge to n destination instances, each with a
// buffer of capacity batches.
func NewLocal[T any](n, capacity int) *Local[T] {
	chans := make([]chan []T, n)
	for i := range chans {
		chans[i] = make(chan []T, capacity)
	}
	return &Local[T]{chans: chans}
}

// Instances returns the destination instance count.
func (e *Local[T]) Instances() int { return len(e.chans) }

// Send implements Edge: one blocking channel send. It never fails.
func (e *Local[T]) Send(dst int, batch []T) error {
	e.chans[dst] <- batch
	return nil
}

// SendUnlessDone is Send abandoned when done closes first — for timer
// goroutines that must never block on an edge whose receivers already
// finished. It reports whether the batch was delivered.
func (e *Local[T]) SendUnlessDone(dst int, batch []T, done <-chan struct{}) bool {
	select {
	case e.chans[dst] <- batch:
		return true
	case <-done:
		return false
	}
}

// Watermark implements Edge. Local topologies carry watermarks in-band
// as data (the engine's mark tuples broadcast by their grouping), so
// there is nothing separate to send.
func (e *Local[T]) Watermark(uint32, int64) error { return nil }

// Flush implements Edge: Send is unbuffered on top of the channel, so
// there is nothing to flush.
func (e *Local[T]) Flush() error { return nil }

// Close implements Edge. The sender side holds no resources; the
// receive side is closed separately (CloseRecv) once ALL senders are
// done, which is the owner's call to make, not any single sender's.
func (e *Local[T]) Close() error { return nil }

// Recv returns the receive channel of destination instance dst; it
// yields batches until CloseRecv.
func (e *Local[T]) Recv(dst int) <-chan []T { return e.chans[dst] }

// Chans exposes the raw destination channels — the devirtualized view
// of this edge for a send loop hot enough that even an interface call
// per batch shows up (the engine's BatchSize=1 configuration sends one
// batch per tuple). `e.Chans()[dst] <- batch` IS e.Send(dst, batch);
// nothing else may be done with the slice.
func (e *Local[T]) Chans() []chan []T { return e.chans }

// Queued returns the number of batches currently buffered across the
// destination channels — the edge's queue-depth gauge. It is computed
// from the channels' lengths at read time (len on a channel is safe
// concurrently), so the Send hot path stays exactly one channel
// operation with no added accounting.
func (e *Local[T]) Queued() int64 {
	var n int64
	for _, ch := range e.chans {
		n += int64(len(ch))
	}
	return n
}

// CloseRecv closes every destination channel. Call exactly once, after
// all senders have finished.
func (e *Local[T]) CloseRecv() {
	for _, ch := range e.chans {
		close(ch)
	}
}

package edge

import (
	"fmt"
	"testing"
	"time"

	"pkgstream/internal/transport"
	"pkgstream/internal/wire"
)

// BenchmarkWireEdgeThroughput measures the credit-flow-controlled tuple
// edge over TCP loopback: every tuple crosses the full stack (encode,
// bufio, kernel, decode, handler) AND the credit accounting, so the
// number is the honest ceiling for the spout→remote-partial hop — the
// companion to BenchmarkEmitPath's in-process edge (recorded together
// in BENCH_pr6.json). The batched variant ships KindTupleBatch frames
// (one header, one credit debit, one coalesced ack per batch); the
// unbatched variant pins the pre-batch per-tuple frame cost.
func BenchmarkWireEdgeThroughput(b *testing.B) {
	for _, bc := range []struct {
		name  string
		batch int
	}{
		// 512-tuple batches: deeper than the production default (256,
		// chosen for latency) to measure the throughput ceiling the
		// frame format allows.
		{name: "batched", batch: 512},
		{name: "unbatched", batch: 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var addrs []string
			var ws []*transport.Worker
			for i := 0; i < 2; i++ {
				w, err := transport.ListenWorker("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				ws = append(ws, w)
				addrs = append(addrs, w.Addr())
			}
			e, err := DialWire(addrs, WireOptions{
				Seed: 9, Window: 16384, MaxBatchTuples: bc.batch,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()

			keys := make([]uint64, 4096)
			for i := range keys {
				keys[i] = uint64(i+1) * 0x9e3779b97f4a7c15
			}
			b.ReportAllocs()
			b.ResetTimer()
			tup := wire.Tuple{}
			for i := 0; i < b.N; i++ {
				tup.KeyHash = keys[i%len(keys)]
				if err := e.SendTuple(&tup); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := waitTotal(ws, int64(b.N), time.Minute); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(float64(e.Stats().Stalls), "stalls")
		})
	}
}

func waitTotal(ws []*transport.Worker, n int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var sum int64
		for _, w := range ws {
			sum += w.Processed()
		}
		if sum >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("edge: workers absorbed %d/%d tuples in time", sum, n)
		}
		time.Sleep(time.Millisecond)
	}
}

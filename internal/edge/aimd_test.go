package edge

import (
	"sync/atomic"
	"testing"
	"time"

	"pkgstream/internal/transport"
	"pkgstream/internal/wire"
)

// TestAIMDGrowShrinkFloorCeiling drives the controller with synthetic
// epoch inputs through every transition of its state machine: additive
// growth on quiet epochs, multiplicative shrink on sustained stalls,
// drain-budget shrink on rising service time, and both clamps.
func TestAIMDGrowShrinkFloorCeiling(t *testing.T) {
	const floor, ceil = 64, 2048

	t.Run("grow-additive-while-quiet", func(t *testing.T) {
		a := newAIMD(256, floor, ceil)
		if got := a.decide(0, 0); got != 256+aimdStep {
			t.Fatalf("quiet epoch with no estimate: window %d, want %d", got, 256+aimdStep)
		}
		// With a service estimate that leaves headroom, growth continues.
		if got := a.decide(0, 1000); got != 256+2*aimdStep {
			t.Fatalf("quiet epoch with headroom: window %d, want %d", got, 256+2*aimdStep)
		}
	})

	t.Run("hold-at-drain-knee", func(t *testing.T) {
		a := newAIMD(256, floor, ceil)
		// serviceNs such that the current window fits the budget but one
		// more step would not: no stall, yet no growth either.
		svc := aimdDrainBudgetNs / (256 + aimdStep/2)
		if got := a.decide(0, svc); got != 256 {
			t.Fatalf("at the knee: window moved to %d, want hold at 256", got)
		}
	})

	t.Run("shrink-on-sustained-stall", func(t *testing.T) {
		a := newAIMD(1024, floor, ceil)
		if got := a.decide(aimdStallShrinkNs, 0); got != 512 {
			t.Fatalf("stalled epoch: window %d, want halved 512", got)
		}
		// Brushing the window for less than the threshold is NOT a
		// congestion signal.
		if got := a.decide(aimdStallShrinkNs/10, 0); got < 512 {
			t.Fatalf("sub-threshold stall shrank the window to %d", got)
		}
	})

	t.Run("shrink-on-drain-overrun", func(t *testing.T) {
		a := newAIMD(1024, floor, ceil)
		// 1024 tuples × 100µs each = 102ms of queue ahead of the worker,
		// over the 50ms budget: bufferbloat, shrink without any stall.
		if got := a.decide(0, int64(100*time.Microsecond)); got != 512 {
			t.Fatalf("drain overrun: window %d, want halved 512", got)
		}
		// A pathological estimate larger than the whole budget must not
		// overflow the comparison — it shrinks, never wraps.
		if got := a.decide(0, int64(1)<<62); got != 256 {
			t.Fatalf("huge estimate: window %d, want halved 256", got)
		}
	})

	t.Run("floor-clamps-shrink", func(t *testing.T) {
		a := newAIMD(floor+1, floor, ceil)
		for i := 0; i < 5; i++ {
			a.decide(aimdStallShrinkNs, 0)
		}
		if a.win != floor {
			t.Fatalf("repeated shrink bottomed at %d, want floor %d", a.win, floor)
		}
	})

	t.Run("ceiling-clamps-growth", func(t *testing.T) {
		a := newAIMD(ceil-aimdStep/2, floor, ceil)
		for i := 0; i < 5; i++ {
			a.decide(0, 0)
		}
		if a.win != ceil {
			t.Fatalf("repeated growth topped at %d, want ceiling %d", a.win, ceil)
		}
	})

	t.Run("start-clamped-into-bounds", func(t *testing.T) {
		if a := newAIMD(1, floor, ceil); a.win != floor {
			t.Fatalf("start below floor: %d, want %d", a.win, floor)
		}
		if a := newAIMD(1<<20, floor, ceil); a.win != ceil {
			t.Fatalf("start above ceiling: %d, want %d", a.win, ceil)
		}
	})
}

// TestWireEdgeWindowShrinkMidBatchNoDeadlock is the satellite
// regression for the ack-cadence/window coupling bug class. The
// hazard: the worker's ack cadence derives from ITS window (ack past
// window/2 unacked), so a sender-side shrink leaving residue under
// the OLD threshold but at-or-over the NEW window would stall the
// sender forever — the worker sees no reason to ack, the sender no
// credit to send.
//
// Construction: window 16 (worker acks past 8), 6 tuples in flight —
// under the old cadence no ack is due, ever. Shrink to 4 and send
// another batch: the sender stalls (6 ≥ 4) with the CreditUpdate
// buffered ahead of the stall flush. Liveness now depends entirely on
// the worker's ack-residue-immediately-on-update rule; everything
// must drain, in order, with the batch straddling the shrunk window.
func TestWireEdgeWindowShrinkMidBatchNoDeadlock(t *testing.T) {
	const window, batch = 16, 3
	h := &seqRecorder{gate: make(chan struct{}), abort: make(chan struct{})}
	w, err := transport.ListenHandler("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	e, err := DialWire([]string{w.Addr()}, WireOptions{
		Seed: 7, Window: window, MaxBatchTuples: batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Two full batches: 6 in flight, gated, below the worker's ack
	// threshold of 8 — with a static window this residue would sit
	// unacked forever and that would be fine.
	tup := wire.Tuple{}
	for i := 1; i <= 6; i++ {
		tup.KeyHash = uint64(i)
		if err := e.SendTuple(&tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// Shrink mid-stream, from the sending goroutine (the shipping path,
	// exactly where the AIMD controller calls it). In-flight (6) now
	// exceeds the window (4).
	e.setConnWindow(e.cs[0], 4)
	if st := e.Stats(); st.Window != 4 {
		t.Fatalf("Stats().Window = %d after shrink, want 4", st.Window)
	}
	if e.maxTuples != batch {
		t.Fatalf("maxTuples = %d; 4 ≥ batch %d, no re-clamp expected", e.maxTuples, batch)
	}

	// The next batch must stall on the shrunk window...
	sendErr := make(chan error, 1)
	go func() {
		tup := wire.Tuple{}
		for i := 7; i <= 9; i++ {
			tup.KeyHash = uint64(i)
			if err := e.SendTuple(&tup); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- e.Flush()
	}()
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-sendErr:
		t.Fatalf("sender finished against a gated worker over a shrunk window: %v", err)
	default:
	}

	// ...and the gate opening must drain everything: the worker absorbs
	// the residue, sees the CreditUpdate, acks immediately, and the
	// stalled batch straddles the 4-tuple window to completion.
	close(h.gate)
	select {
	case err := <-sendErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("DEADLOCK: sender still stalled after the worker drained (stats %+v)", e.Stats())
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		seq := h.snapshot()
		if len(seq) == 9 {
			for i := range seq {
				if seq[i] != uint64(i+1) {
					t.Fatalf("FIFO violated across the shrink: %v", seq)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker saw %v, want 9 tuples (stats %+v)", seq, e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := e.Stats(); st.Stalls == 0 {
		t.Fatalf("no stall recorded — the shrunk window never bit: %+v", st)
	}
}

// TestWireEdgeShrinkBelowBatchReclamps pins the MaxBatchTuples
// coupling: a window shrunk below the configured batch size must drag
// the live batch cap down with it, so steady-state batches keep
// fitting a single window grant.
func TestWireEdgeShrinkBelowBatchReclamps(t *testing.T) {
	h := &seqRecorder{}
	w, err := transport.ListenHandler("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	e, err := DialWire([]string{w.Addr()}, WireOptions{
		Seed: 7, Window: 64, MaxBatchTuples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.setConnWindow(e.cs[0], 8)
	if e.maxTuples != 8 {
		t.Fatalf("maxTuples = %d after shrinking the window to 8, want 8", e.maxTuples)
	}
	e.setConnWindow(e.cs[0], 128)
	if e.maxTuples != 16 {
		t.Fatalf("maxTuples = %d after re-growing, want the configured 16 back", e.maxTuples)
	}
}

// batchSeqRecorder is a seqRecorder with the batch capability, so
// transport.Slow charges its delay once per frame (per-tuple × batch
// size) instead of one timer-granularity sleep per tuple — the same
// shape a real slow batch-absorbing worker has.
type batchSeqRecorder struct{ seqRecorder }

func (h *batchSeqRecorder) HandleTupleBatch(ts []wire.Tuple) {
	for i := range ts {
		h.HandleTuple(&ts[i])
	}
}

// TestWireEdgeAdaptiveConvergesAndCounts runs a real adaptive edge
// against a deliberately slow worker long enough for several AIMD
// epochs: the edge must learn the worker's service rate from ack
// piggybacks, shrink the window off its 1024-tuple start (the 50ms
// drain budget cannot hold 1024 tuples at ~100µs each), and still
// deliver every tuple exactly once. A goroutine polls Stats() and
// ServiceRates() throughout — the -race half of the satellite: window
// adaptation, ack-driven rate learning and stats polling overlap
// freely. Small batches (8) keep the 1-in-64 frame sampling firing
// every 512 tuples, so rate estimates flow well before the run ends.
func TestWireEdgeAdaptiveConvergesAndCounts(t *testing.T) {
	const total = 4 * aimdEpochTuples
	h := &batchSeqRecorder{}
	w, err := transport.ListenHandler("127.0.0.1:0", transport.Slow(h, 80*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	e, err := DialWire([]string{w.Addr()}, WireOptions{
		Seed: 7, Window: 1024, MaxBatchTuples: 8, AdaptiveWindow: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	stop := make(chan struct{})
	var polls atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				st := e.Stats()
				_ = e.ServiceRates()
				if st.Window < 0 || st.InFlight < 0 {
					panic("negative gauge under concurrent adaptation")
				}
				polls.Add(1)
				time.Sleep(time.Millisecond)
			}
		}
	}()

	tup := wire.Tuple{}
	for i := 0; i < total; i++ {
		tup.KeyHash = uint64(i + 1)
		if err := e.SendTuple(&tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitProcessed(total, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)

	if got := len(h.snapshot()); got != total {
		t.Fatalf("worker recorded %d tuples, want exactly %d", got, total)
	}
	if rates := e.ServiceRates(); rates[0] == 0 {
		t.Fatal("no service rate learned from ack piggybacks")
	}
	st := e.Stats()
	if st.Window >= 1024 {
		t.Fatalf("window %d never shrank off its start against an 80µs/tuple worker", st.Window)
	}
	if st.Window < int64(e.winFloor) {
		t.Fatalf("window %d fell below the floor %d", st.Window, e.winFloor)
	}
	if polls.Load() == 0 {
		t.Fatal("stats poller never ran")
	}
}

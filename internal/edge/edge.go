// Package edge unifies every topology hop — the bounded in-process
// channels of the engine runtime and the TCP tuple path to a remote
// worker — behind one flow-controlled Edge abstraction. The paper's
// deployment shape (§V) is fully distributed: spouts, PKG-partial
// workers and final aggregators on separate machines, with the skewed
// heavy traffic on the spout→partial *tuple* edge. That edge is only
// honest when it carries the same backpressure contract as a local
// channel: a slow receiver must stall the sender, never balloon a TCP
// buffer or drop.
//
// Two implementations:
//
//   - Local wraps the engine's bounded batch channels — the PR 1 hot
//     path, unchanged: Send is one channel operation per batch, and
//     backpressure is the channel blocking when the receiver lags;
//   - Wire carries tuples over TCP with credit-based flow control
//     (wire.Credit / wire.Ack): the sender keeps at most Window
//     unacknowledged data frames in flight per connection, so a slow
//     remote worker stalls the upstream spout exactly like a full
//     local channel does.
package edge

// Edge is one directed topology hop fanning out to n destination
// instances. Implementations deliver batches in order per destination
// and exert backpressure by blocking Send.
type Edge[T any] interface {
	// Send delivers one batch to destination instance dst, blocking
	// while the destination's buffer (Local) or credit window (Wire) is
	// exhausted — the backpressure signal that stalls the emitter. The
	// callee takes ownership of the batch slice.
	Send(dst int, batch []T) error
	// Watermark broadcasts a source's event-time promise ("source will
	// never again send below wm") to every destination, after flushing
	// any buffered data the promise covers. Local edges carry
	// watermarks in-band as data (the engine's mark tuples), so their
	// Watermark is a no-op.
	Watermark(source uint32, wm int64) error
	// Flush pushes buffered frames toward the destinations (a no-op
	// for Local, whose Send is unbuffered).
	Flush() error
	// Close flushes and releases the sender side of the edge.
	Close() error
}

// Stats are the counters of one edge, snapshot-safe while the edge is
// in use.
type Stats struct {
	// Frames counts data batches (Local) or data frames (Wire) sent —
	// a Wire batch frame carrying n tuples counts once.
	Frames int64
	// Tuples counts individual tuples shipped (Wire only — the credit
	// denomination; Frames × batch size in the steady state).
	Tuples int64
	// Marks counts watermark broadcasts.
	Marks int64
	// Stalls counts sends that blocked on an exhausted credit window
	// (Wire only — the visible form of remote backpressure reaching
	// the sender).
	Stalls int64
	// Retries counts reconnect attempts after send failures.
	Retries int64
	// Failures counts operations that exhausted their retries.
	Failures int64
	// WaitNs is the total nanoseconds sends spent stalled on an
	// exhausted credit window (Wire only) — WaitNs over wall time is
	// the fraction of the run the edge was backpressured.
	WaitNs int64
	// InFlight is the number of unacknowledged tuples in flight across
	// the edge's connections at snapshot time (Wire only — a gauge, not
	// a counter; folding sums the gauges).
	InFlight int64
	// Queue is the number of tuples buffered in per-destination batch
	// buffers, encoded but not yet framed, at snapshot time (Wire only,
	// populated when the edge runs a linger flusher — without one the
	// edge is single-goroutine and buffers cannot be read safely from a
	// stats poller).
	Queue int64
	// Window is the summed live credit window of the edge's
	// connections at snapshot time (Wire only — on a static edge it is
	// connections × configured window; under AdaptiveWindow it moves
	// with the AIMD controllers; folding sums the gauges).
	Window int64
	// ServiceNs holds the per-destination service-time estimates (ns
	// per tuple) the edge has learned from ack piggybacks, indexed by
	// destination node; 0 means no estimate yet (Wire only).
	ServiceNs []int64
}

// Fold accumulates another edge's counters into s.
func (s *Stats) Fold(x Stats) {
	s.Frames += x.Frames
	s.Tuples += x.Tuples
	s.Marks += x.Marks
	s.Stalls += x.Stalls
	s.Retries += x.Retries
	s.Failures += x.Failures
	s.WaitNs += x.WaitNs
	s.InFlight += x.InFlight
	s.Queue += x.Queue
	s.Window += x.Window
	// Parallel edges to the same nodes each hold an estimate of the
	// same per-node quantity: keep the worst (slowest) one — the
	// conservative signal for dashboards and alerts.
	for len(s.ServiceNs) < len(x.ServiceNs) {
		s.ServiceNs = append(s.ServiceNs, 0)
	}
	for i, ns := range x.ServiceNs {
		if ns > s.ServiceNs[i] {
			s.ServiceNs[i] = ns
		}
	}
}

package edge

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pkgstream/internal/route"
	"pkgstream/internal/transport"
	"pkgstream/internal/wire"
)

func TestLocalEdgeDelivery(t *testing.T) {
	e := NewLocal[int](2, 4)
	if e.Instances() != 2 {
		t.Fatalf("instances = %d", e.Instances())
	}
	if err := e.Send(0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.Send(1, []int{3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Watermark(0, 99); err != nil {
		t.Fatal(err) // in-band: no-op, never an error
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e.CloseRecv()
	var got []int
	for b := range e.Recv(0) {
		got = append(got, b...)
	}
	for b := range e.Recv(1) {
		got = append(got, b...)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("received %v", got)
	}
}

func TestLocalEdgeSendUnlessDone(t *testing.T) {
	e := NewLocal[int](1, 1)
	done := make(chan struct{})
	if !e.SendUnlessDone(0, []int{1}, done) {
		t.Fatal("send into empty queue abandoned")
	}
	// The queue is full; a closed done channel must win the race.
	close(done)
	if e.SendUnlessDone(0, []int{2}, done) {
		t.Fatal("send into full queue delivered after done")
	}
}

// gatedHandler blocks every tuple on the gate — the deliberately slowed
// worker of the credit-stall regression test. It implements only the
// base Handler (no HandleTupleBatch), so the worker unrolls batch
// frames into per-tuple calls and the gate still bites tuple by tuple.
type gatedHandler struct {
	gate    chan struct{}
	handled atomic.Int64
}

func (h *gatedHandler) HandleTuple(*wire.Tuple) {
	<-h.gate
	h.handled.Add(1)
}
func (h *gatedHandler) HandlePartial(*wire.Partial)         {}
func (h *gatedHandler) HandleMark(wire.Mark)                {}
func (h *gatedHandler) HandleQuery(q wire.Query) wire.Reply { return wire.Reply{Op: q.Op} }

// TestWireEdgeCreditStall is the flow-control regression gate: a slowed
// worker must stall the sender at exactly Window in-flight TUPLES —
// bounded buffering, no drops — and everything must drain once the
// worker resumes. The unbatched subtest pins the pre-batch per-frame
// semantics; the batched subtest uses a batch size that does not
// divide the window, so the boundary lands mid-batch and the edge must
// split the batch into sub-frames rather than overshoot by even one
// tuple.
func TestWireEdgeCreditStall(t *testing.T) {
	for _, tc := range []struct {
		name       string
		batch      int
		wantFrames int64 // frames sent at the stall point
	}{
		// 8 per-tuple frames in flight at the stall.
		{name: "unbatched", batch: 1, wantFrames: 8},
		// Batches of 3: two full frames (6 tuples), then the third
		// batch straddles the window and ships a 2-tuple sub-frame.
		{name: "batched-straddle", batch: 3, wantFrames: 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const window, total = 8, 100
			h := &gatedHandler{gate: make(chan struct{})}
			w, err := transport.ListenHandler("127.0.0.1:0", h)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()

			e, err := DialWire([]string{w.Addr()}, WireOptions{
				Seed: 7, Window: window, MaxBatchTuples: tc.batch,
			})
			if err != nil {
				t.Fatal(err)
			}

			sendErr := make(chan error, 1)
			go func() {
				tup := wire.Tuple{}
				for i := 0; i < total; i++ {
					tup.KeyHash = uint64(i + 1)
					if err := e.SendTuple(&tup); err != nil {
						sendErr <- err
						return
					}
				}
				sendErr <- e.Flush()
			}()

			// The sender must reach the window and then stall there: with
			// the worker gated, not one tuple beyond the window may leave.
			deadline := time.Now().Add(5 * time.Second)
			for e.SentTuples() < window {
				if time.Now().After(deadline) {
					t.Fatalf("sender reached only %d/%d tuples", e.SentTuples(), window)
				}
				time.Sleep(time.Millisecond)
			}
			time.Sleep(100 * time.Millisecond)
			if got := e.SentTuples(); got != window {
				t.Fatalf("gated worker: %d tuples in flight, want exactly the window %d", got, window)
			}
			if got := e.Sent(); got != tc.wantFrames {
				t.Fatalf("gated worker: %d frames sent, want %d", got, tc.wantFrames)
			}
			select {
			case err := <-sendErr:
				t.Fatalf("sender finished while the worker was gated: %v", err)
			default:
			}

			// Resume the worker: credits replenish and everything drains.
			close(h.gate)
			if err := <-sendErr; err != nil {
				t.Fatal(err)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := w.WaitProcessed(total, 5*time.Second); err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			if st.Stalls == 0 {
				t.Fatal("no stalls recorded — the send path never saw backpressure")
			}
			if st.Tuples != total {
				t.Fatalf("tuples = %d, want %d", st.Tuples, total)
			}
			if tc.batch == 1 && st.Frames != total {
				t.Fatalf("unbatched frames = %d, want %d", st.Frames, total)
			}
			if tc.batch > 1 && st.Frames >= st.Tuples {
				t.Fatalf("batched run shipped %d frames for %d tuples — no batching happened", st.Frames, st.Tuples)
			}
			if st.Failures != 0 || st.Retries != 0 {
				t.Fatalf("unexpected retries/failures: %+v", st)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// seqRecorder records the KeyHash arrival order. While gated, tuples
// block; closing abort makes blocked (and subsequent) tuples drop
// unrecorded — a worker that dies mid-batch without absorbing what was
// in flight.
type seqRecorder struct {
	gate  chan struct{} // nil: record immediately
	abort chan struct{}

	mu  sync.Mutex
	seq []uint64
}

func (h *seqRecorder) HandleTuple(t *wire.Tuple) {
	if h.gate != nil {
		select {
		case <-h.gate:
		case <-h.abort:
			return
		}
	}
	h.mu.Lock()
	h.seq = append(h.seq, t.KeyHash)
	h.mu.Unlock()
}
func (h *seqRecorder) HandlePartial(*wire.Partial)         {}
func (h *seqRecorder) HandleMark(wire.Mark)                {}
func (h *seqRecorder) HandleQuery(q wire.Query) wire.Reply { return wire.Reply{Op: q.Op} }

func (h *seqRecorder) snapshot() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.seq...)
}

// TestWireEdgeBatchFIFOAcrossRedial: the sender stalls mid-batch on a
// gated worker, the worker dies, and a replacement comes up on the
// same address. The edge must redial, resend the pending sub-frame,
// and finish the stream — with the replacement observing a strictly
// increasing key sequence (per-destination FIFO holds across the
// stall/redial even though the batch was split around it).
func TestWireEdgeBatchFIFOAcrossRedial(t *testing.T) {
	const window, batch, total = 8, 3, 50
	h1 := &seqRecorder{gate: make(chan struct{}), abort: make(chan struct{})}
	w1, err := transport.ListenHandler("127.0.0.1:0", h1)
	if err != nil {
		t.Fatal(err)
	}
	addr := w1.Addr()
	e, err := DialWire([]string{addr}, WireOptions{
		Seed: 5, Window: window, MaxBatchTuples: batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	sendErr := make(chan error, 1)
	go func() {
		tup := wire.Tuple{}
		for i := 1; i <= total; i++ {
			tup.KeyHash = uint64(i)
			if err := e.SendTuple(&tup); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- e.Flush()
	}()

	// Wait for the mid-batch stall: 3+3 tuples in two full frames, then
	// a 2-tuple sub-frame exhausts the window with one tuple pending.
	deadline := time.Now().Add(5 * time.Second)
	for e.SentTuples() < window {
		if time.Now().After(deadline) {
			t.Fatalf("sender reached only %d/%d tuples", e.SentTuples(), window)
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the gated worker mid-batch (its blocked tuples drop
	// unrecorded) and bring an ungated replacement up on the address.
	close(h1.abort)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	h2 := &seqRecorder{}
	w2, err := transport.ListenHandler(addr, h2)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()

	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// The stream's tail must land on the replacement, in order.
	deadline = time.Now().Add(10 * time.Second)
	for {
		seq := h2.snapshot()
		if len(seq) > 0 && seq[len(seq)-1] == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replacement saw %v, never the final tuple (edge stats %+v)", seq, e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	seq := h2.snapshot()
	for i := 1; i < len(seq); i++ {
		if seq[i] <= seq[i-1] {
			t.Fatalf("FIFO violated across redial: %v", seq)
		}
	}
	if st := e.Stats(); st.Retries == 0 {
		t.Fatalf("no retries recorded across the restart: %+v", st)
	}
}

// TestWireFlushCloseNilConnGuard: a nil connection slot (a redial in
// flight, or a connect failure left mid-dial) must not panic Flush —
// the guard Close always had — and a send toward the empty slot
// redials instead of dereferencing it.
func TestWireFlushCloseNilConnGuard(t *testing.T) {
	w, err := transport.ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	e, err := DialWire([]string{w.Addr()}, WireOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.cs[0].conn.Close()
	e.cs[0] = nil
	if err := e.Flush(); err != nil {
		t.Fatalf("flush with a nil slot: %v", err)
	}
	if err := e.SendTuple(&wire.Tuple{KeyHash: 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("flush after redial: %v", err)
	}
	if err := w.WaitProcessed(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	e.cs[0] = nil // leave the slot empty again: Close must skip it
	if err := e.Close(); err != nil {
		t.Fatalf("close with a nil slot: %v", err)
	}
}

// TestWireEdgeRoutesWithinProbeSet: tuples land only on their candidate
// nodes, and the probe set the edge reports covers them — the property
// distributed point queries rely on.
func TestWireEdgeRoutesWithinProbeSet(t *testing.T) {
	var ws []*transport.Worker
	var addrs []string
	for i := 0; i < 4; i++ {
		w, err := transport.ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		ws = append(ws, w)
		addrs = append(addrs, w.Addr())
	}
	e, err := DialWire(addrs, WireOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const perKey, keys = 50, 20
	tup := wire.Tuple{}
	for k := 1; k <= keys; k++ {
		for i := 0; i < perKey; i++ {
			tup.KeyHash = uint64(k) * 0x9e3779b97f4a7c15
			if err := e.SendTuple(&tup); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	total := int64(perKey * keys)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sum int64
		for _, w := range ws {
			sum += w.Processed()
		}
		if sum >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers absorbed %d/%d", sum, total)
		}
		time.Sleep(time.Millisecond)
	}
	for k := 1; k <= keys; k++ {
		key := uint64(k) * 0x9e3779b97f4a7c15
		cands := e.Candidates(key)
		if len(cands) != 2 {
			t.Fatalf("key %d: %d candidates under PKG, want 2", k, len(cands))
		}
		inSet := map[int]bool{}
		for _, c := range cands {
			inSet[c] = true
		}
		var covered int64
		for i, w := range ws {
			if c := w.Count(key); c > 0 {
				if !inSet[i] {
					t.Fatalf("key %d: %d tuples on node %d outside probe set %v", k, c, i, cands)
				}
				covered += c
			}
		}
		if covered != perKey {
			t.Fatalf("key %d: probe set covers %d/%d tuples", k, covered, perKey)
		}
	}
	if ll := e.LocalLoads(); len(ll) != 4 {
		t.Fatalf("local loads = %v", ll)
	}
}

// TestWireEdgeReconnects: a vanished node is redialed with backoff and
// the edge keeps delivering — the first slice of node-failure handling.
func TestWireEdgeReconnects(t *testing.T) {
	w, err := transport.ListenWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := w.Addr()
	e, err := DialWire([]string{addr}, WireOptions{Seed: 3, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	tup := wire.Tuple{KeyHash: 11}
	for i := 0; i < 5; i++ {
		if err := e.SendTuple(&tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitProcessed(5, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill the node, then bring a fresh one up on the same address.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := transport.ListenWorker(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()

	// A watermark broadcast straddling the restart rides the redial
	// path too — marks are re-deliverable promises, and a restart
	// landing between two marks must not kill the edge.
	if err := e.Watermark(0, 100); err != nil {
		t.Fatalf("watermark across restart: %v", err)
	}

	// Sends ride the redial path (the reader marked the connection
	// broken); everything sent after the restart must reach the new
	// node.
	deadline := time.Now().Add(10 * time.Second)
	sent := int64(0)
	for w2.Processed() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("replacement node absorbed %d frames (edge stats %+v)", w2.Processed(), e.Stats())
		}
		if err := e.SendTuple(&tup); err != nil {
			t.Fatal(err)
		}
		sent++
		if err := e.Flush(); err != nil {
			// A flush straddling the crash may fail once; the next
			// SendTuple redials.
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := e.Stats(); st.Retries == 0 {
		t.Fatalf("no retries recorded across a node restart: %+v", st)
	}
}

// TestWireEdgeWatermarkOrdering: a watermark broadcast flushes the data
// it covers first, so the receiver never sees the promise before the
// tuples.
func TestWireEdgeWatermarkOrdering(t *testing.T) {
	h := transport.NewCountHandler()
	rec := &recordingHandler{inner: h}
	w, err := transport.ListenHandler("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	e, err := DialWire([]string{w.Addr()}, WireOptions{Seed: 1, ModeSet: true, Mode: route.StrategyKG})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tup := wire.Tuple{KeyHash: 5, EmitNanos: 10}
	for i := 0; i < 3; i++ {
		if err := e.SendTuple(&tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Watermark(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitProcessed(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.markAt != 3 {
		t.Fatalf("mark arrived after %d tuples, want 3", rec.markAt)
	}
	if st := e.Stats(); st.Marks != 1 {
		t.Fatalf("marks = %d", st.Marks)
	}
}

type recordingHandler struct {
	inner  transport.Handler
	mu     sync.Mutex
	seen   int
	markAt int
}

func (r *recordingHandler) HandleTuple(t *wire.Tuple) {
	r.mu.Lock()
	r.seen++
	r.mu.Unlock()
	r.inner.HandleTuple(t)
}
func (r *recordingHandler) HandlePartial(p *wire.Partial) { r.inner.HandlePartial(p) }
func (r *recordingHandler) HandleMark(m wire.Mark) {
	r.mu.Lock()
	r.markAt = r.seen
	r.mu.Unlock()
	r.inner.HandleMark(m)
}
func (r *recordingHandler) HandleQuery(q wire.Query) wire.Reply { return r.inner.HandleQuery(q) }

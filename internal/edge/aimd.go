package edge

// aimd is the per-connection credit-window controller of an adaptive
// Wire edge — TCP congestion control lifted one level, with tuples as
// the congestion unit and the worker's ack stream as the feedback
// channel. The window is probed upward additively while the link shows
// headroom and cut multiplicatively when either congestion signal
// fires:
//
//   - sustained credit stalls: the sender spent real time blocked on
//     an exhausted window this epoch. More in-flight credit would not
//     help — the worker is the bottleneck — and a smaller window keeps
//     the same throughput (the worker stays saturated) with less data
//     queued ahead of it;
//   - drain-time overrun: window × measured service time exceeds the
//     drain budget, i.e. the worker would need longer than the budget
//     to chew through a full window. That queue is pure latency
//     (bufferbloat): every tuple admitted at the window's edge waits
//     the whole drain time before its turn.
//
// Growth requires BOTH signals quiet: a stall-free epoch and a
// post-growth drain time still inside the budget (no service estimate
// yet counts as headroom — cold start must be able to grow). The
// asymmetry (additive up, multiplicative down) is what makes the loop
// stable around the knee instead of oscillating across it.
//
// The controller is a pure state machine over epoch summaries — no
// clocks, no goroutines — driven from the edge's shipping path and
// unit-testable with synthetic inputs.
type aimd struct {
	win   int64 // current window (tuples)
	floor int64 // multiplicative decrease never goes below this
	ceil  int64 // additive increase never goes above this
}

const (
	// aimdEpochTuples is the controller's decision cadence: one decide
	// per this many shipped tuples, so adaptation cost amortizes to
	// nothing on the hot path and epochs carry enough traffic for the
	// stall signal to be meaningful.
	aimdEpochTuples = 512
	// aimdStep is the additive increase per quiet epoch (tuples).
	aimdStep = 64
	// aimdStallShrinkNs is the per-epoch stalled time that counts as a
	// congestion signal (1ms — brushing the window for a few µs on a
	// scheduling hiccup should not halve it).
	aimdStallShrinkNs = int64(1e6)
	// aimdDrainBudgetNs bounds window × service time (50ms): the
	// longest queue, measured in the worker's own drain time, the
	// controller will keep ahead of a worker.
	aimdDrainBudgetNs = int64(50e6)
	// defaultMinWindow / defaultMaxWindowMult derive the window bounds
	// when WireOptions leaves them zero: floor 64 tuples, ceiling 16×
	// the configured base window.
	defaultMinWindow     = 64
	defaultMaxWindowMult = 16
)

// newAIMD returns a controller starting at start, clamped into
// [floor, ceil].
func newAIMD(start, floor, ceil int64) *aimd {
	if start < floor {
		start = floor
	}
	if start > ceil {
		start = ceil
	}
	return &aimd{win: start, floor: floor, ceil: ceil}
}

// decide closes one epoch: stallNs is the time the sender spent
// blocked on this connection's window during the epoch, serviceNs the
// worker's latest ack-piggybacked service-time estimate (0 = none
// yet). It returns the window for the next epoch.
func (a *aimd) decide(stallNs, serviceNs int64) int64 {
	if stallNs >= aimdStallShrinkNs ||
		(serviceNs > 0 && (serviceNs > aimdDrainBudgetNs || a.win*serviceNs > aimdDrainBudgetNs)) {
		a.win /= 2
		if a.win < a.floor {
			a.win = a.floor
		}
		return a.win
	}
	if stallNs == 0 &&
		(serviceNs == 0 || (serviceNs <= aimdDrainBudgetNs && (a.win+aimdStep)*serviceNs <= aimdDrainBudgetNs)) {
		a.win += aimdStep
		if a.win > a.ceil {
			a.win = a.ceil
		}
	}
	return a.win
}

package edge

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
	"pkgstream/internal/route"
	"pkgstream/internal/trace"
	"pkgstream/internal/wire"
)

// WireOptions parameterizes DialWire. The zero value of every field
// except Seed picks sensible defaults (PKG routing, the paper's two
// choices, a 1024-tuple credit window, 256-tuple batches).
type WireOptions struct {
	// Mode is the routing strategy over the destination nodes. The zero
	// value selects PKG (StrategyKG is never a useful default for a
	// tuple edge; ask for it explicitly via ModeSet).
	Mode route.Strategy
	// ModeSet forces Mode to be honored verbatim, so StrategyKG (whose
	// value is 0, indistinguishable from "unset") is reachable.
	ModeSet bool
	// Seed derives the candidate hash functions; it must match across
	// every sender of one stream.
	Seed uint64
	// Start decorrelates shuffle round-robins of parallel senders.
	Start int
	// D is the candidate count for PKG (0: the paper's 2) and the
	// fixed hot width for D-Choices.
	D int
	// Hot carries the hot-key classification knobs for the
	// frequency-aware modes.
	Hot hotkey.Config
	// Window is the credit window per connection: the maximum number
	// of unacknowledged TUPLES kept in flight (default 1024) — tuples,
	// not frames, so batching never changes how much data a slow
	// worker admits. Reaching it stalls Send until the worker's
	// cumulative Ack catches up — remote backpressure with bounded
	// buffering.
	Window int
	// MaxBatchTuples caps how many tuples accumulate per destination
	// before they ship as one wire.KindTupleBatch frame (default 256,
	// clamped to Window). 1 disables batching: every tuple ships as
	// its own KindTuple frame, the pre-batch path.
	MaxBatchTuples int
	// MaxBatchBytes caps the encoded bytes accumulated per batch
	// (default 32 KiB) — bounds worst-case batch latency and memory
	// for large tuples regardless of MaxBatchTuples.
	MaxBatchBytes int
	// Linger, when positive, runs a background flusher that ships any
	// partially filled batch (and the connection's buffered bytes) at
	// this interval, bounding how long a trickling stream can strand
	// tuples in a batch buffer. 0 keeps the edge a strictly
	// single-goroutine object: batches ship only when full or on
	// Flush/Watermark/Close.
	Linger time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// AdaptiveWindow turns the static per-connection credit window into
	// an AIMD feedback loop (see aimd): the window grows additively
	// while credit-wait stays near zero and the worker's measured
	// service time leaves drain headroom, and halves on sustained
	// stalls or drain-budget overruns. Window changes cross the wire as
	// mid-session wire.CreditUpdate frames so the worker's ack cadence
	// follows, and MaxBatchTuples re-clamps live when the window
	// shrinks below it. Off by default — the window stays pinned at
	// Window, byte-identical to the static edge.
	AdaptiveWindow bool
	// MinWindow / MaxWindow bound the adaptive window in tuples
	// (defaults: 64, and 16× Window). Ignored without AdaptiveWindow.
	MinWindow int
	MaxWindow int
	// WeightedRouting switches the candidate argmin of the view-driven
	// modes (PKG, D-Choices, W-Choices) to the heterogeneous weighted
	// form: candidates are compared by estimated drain time — local
	// load count × the worker's ack-piggybacked service time — instead
	// of load alone, so a slowed node sheds traffic to its keys' other
	// candidates automatically (see route.Rates). Until service
	// estimates arrive, routing is byte-identical to the unweighted
	// argmin.
	WeightedRouting bool
}

// wireConn is one flow-controlled connection of a Wire edge. The
// sending goroutine owns conn writes and the buffered writer; a
// dedicated reader goroutine consumes Ack frames and wakes blocked
// senders through cond.
type wireConn struct {
	conn net.Conn
	w    *bufio.Writer
	dst  int   // destination index (readAcks files service rates under it)
	ctl  *aimd // adaptive-window controller; nil on a static edge

	// epochTuples / epochStallNs are the AIMD epoch accumulators:
	// tuples shipped and time spent credit-stalled since the last
	// decide. Shipping-path state, like the batch buffers — only the
	// sending goroutine (or the linger flusher, under lmu) touches
	// them. Both reset on redial with the rest of the credit session.
	epochTuples  int64
	epochStallNs int64

	mu     sync.Mutex
	cond   *sync.Cond
	window int64 // live credit window (the configured base unless adaptive)
	sent   int64 // tuples written (possibly still buffered)
	acked  int64 // cumulative absorbed count from worker Acks
	err    error // sticky: reader saw a broken connection
}

// wireBatch is one destination's accumulating encode buffer: tuple
// bodies packed contiguously (wire.AppendTupleBody), plus each tuple's
// start offset so a batch that straddles the credit window can be
// split into sub-frames at any tuple boundary. Both slices are reused
// across batches — the steady state allocates nothing.
type wireBatch struct {
	body  []byte
	offs  []int
	count int
	// traced holds the trace IDs of traced tuples buffered in body;
	// when the batch ships they get HopWireSend spans.
	traced []uint64
}

func (b *wireBatch) reset() {
	b.body = b.body[:0]
	b.offs = b.offs[:0]
	b.count = 0
	b.traced = b.traced[:0]
}

// Wire is the TCP Edge: tuples routed over the destination nodes by a
// coordination-free router (the same per-source load estimate and
// hot-key sketch the in-process groupings use — nothing but keys
// crosses the wire), with credit-based flow control per connection.
// Tuples accumulate in per-destination batch buffers and ship as
// KindTupleBatch frames — one header, one credit acquisition and one
// (or zero) syscall per batch instead of per tuple. A Wire belongs to
// a single sending goroutine, like an engine grouping (the optional
// Linger flusher is internally synchronized); Stats may be read from
// anywhere.
type Wire struct {
	addrs  []string
	opts   WireOptions
	part   route.Router
	view   *route.Load
	rates  *route.Rates // per-node service times learned from Ack.ServiceNs
	cs     []*wireConn
	window int64 // configured base window (per-conn live windows may differ)

	// winFloor / winCeil bound the adaptive per-connection windows;
	// maxTuples is the live batch-size cap — opts.MaxBatchTuples
	// re-clamped to the smallest live window, so a shrunk window never
	// forces a batch to straddle it. Shipping-path state (see lmu).
	winFloor  int64
	winCeil   int64
	maxTuples int

	// csMu guards mutations of the cs slice (connect) against Stats
	// readers summing in-flight credit. The sending goroutine's own
	// reads of cs stay lock-free: connect runs on that goroutine (or
	// under lmu), so the sender always observes its own writes.
	csMu sync.Mutex

	scratch []byte
	hdr     []byte
	batches []wireBatch

	// lmu guards batches, conns and scratch buffers against the Linger
	// flusher; nil when no flusher runs, so the single-goroutine hot
	// path pays one nil check instead of a lock.
	lmu        *sync.Mutex
	lingerStop chan struct{} // immutable after DialWire; closed via lingerOnce
	lingerOnce sync.Once
	flushErr   error // sticky first error seen by the flusher

	// waitNs accumulates credit-wait time during the current shipping
	// operation (flushBatch/sendFrame reset it, acquireUpTo adds to it)
	// so HopWireSend spans can report how long their batch sat on an
	// exhausted window. Guarded by the same discipline as batches.
	waitNs int64

	frames   atomic.Int64
	tuples   atomic.Int64
	marks    atomic.Int64
	stalls   atomic.Int64
	retries  atomic.Int64
	failures atomic.Int64

	// waitTotal accumulates credit-wait time across the edge's
	// lifetime, and creditWait buckets the individual waits — both
	// touched only on the stall path (the window is exhausted and the
	// sender is about to block), never on an unobstructed send.
	waitTotal  atomic.Int64
	creditWait metrics.Histogram
	// lastQueue caches the queue gauge for stats reads that find lmu
	// held — the sender keeps lmu across a whole flushBatch, including
	// credit stalls, and a poller must never block behind a stall it is
	// trying to observe.
	lastQueue atomic.Int64
}

var _ Edge[wire.Tuple] = (*Wire)(nil)

// SendAttempts bounds delivery attempts per frame: the first try plus
// three redial-and-resend rounds with doubling backoff (~175ms total),
// enough to ride out a node restart without masking a dead peer for
// long. Exported so callers that wrap edge failures (the window
// forwarders' EdgeError) report the count this edge actually used.
const SendAttempts = 4

// DialWire connects a flow-controlled tuple edge to the given node
// addresses. Each connection opens with a wire.Credit frame declaring
// the tuple-denominated window, and a reader goroutine consumes the
// worker's cumulative Acks; SendTuple then blocks whenever a
// connection has Window unacknowledged tuples in flight.
func DialWire(addrs []string, o WireOptions) (*Wire, error) {
	if len(addrs) == 0 {
		return nil, errors.New("edge: no node addresses")
	}
	if o.Mode == 0 && !o.ModeSet {
		o.Mode = route.StrategyPKG
	}
	if o.Window <= 0 {
		o.Window = 1024
	}
	if o.MaxBatchTuples == 0 {
		o.MaxBatchTuples = 256
	}
	if o.MaxBatchTuples < 1 {
		o.MaxBatchTuples = 1
	}
	if o.MaxBatchTuples > o.Window {
		o.MaxBatchTuples = o.Window
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 32 << 10
	}
	if o.MaxBatchBytes > wire.MaxPayload-16 {
		o.MaxBatchBytes = wire.MaxPayload - 16
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MinWindow <= 0 {
		o.MinWindow = defaultMinWindow
	}
	if o.MinWindow > o.Window {
		o.MinWindow = o.Window
	}
	if o.MaxWindow <= 0 {
		o.MaxWindow = defaultMaxWindowMult * o.Window
	}
	if o.MaxWindow < o.Window {
		o.MaxWindow = o.Window
	}
	w := &Wire{addrs: addrs, opts: o, window: int64(o.Window),
		winFloor: int64(o.MinWindow), winCeil: int64(o.MaxWindow),
		maxTuples: o.MaxBatchTuples}
	n := len(addrs)
	w.batches = make([]wireBatch, n)
	w.rates = route.NewRates(n)
	cfg := route.Config{
		Strategy: o.Mode, Workers: n, Seed: o.Seed, Start: o.Start,
		D: o.D, Hot: o.Hot,
	}
	if o.Mode == route.StrategyPKG && cfg.D == 0 {
		cfg.D = 2
	}
	if cfg.D > n {
		cfg.D = n
	}
	if o.Mode.NeedsView() {
		w.view = route.NewLoad(n)
		cfg.View = w.view
	}
	if o.WeightedRouting {
		cfg.Rates = w.rates
	}
	part, err := route.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("edge: %w", err)
	}
	w.part = part
	for i, a := range addrs {
		if err := w.connect(i, a); err != nil {
			w.Close()
			return nil, err
		}
	}
	if o.Linger > 0 && o.MaxBatchTuples > 1 {
		w.lmu = &sync.Mutex{}
		w.lingerStop = make(chan struct{})
		go w.lingerLoop()
	}
	return w, nil
}

func (w *Wire) lock() {
	if w.lmu != nil {
		w.lmu.Lock()
	}
}

func (w *Wire) unlock() {
	if w.lmu != nil {
		w.lmu.Unlock()
	}
}

// lingerLoop ships partially filled batches and buffered bytes every
// Linger interval, so a trickling stream never strands tuples waiting
// for a batch to fill. Errors latch into flushErr and surface on the
// sender's next call — the flusher itself has nobody to report to.
func (w *Wire) lingerLoop() {
	t := time.NewTicker(w.opts.Linger)
	defer t.Stop()
	for {
		select {
		case <-w.lingerStop:
			return
		case <-t.C:
			w.lmu.Lock()
			for i := range w.batches {
				if w.batches[i].count == 0 {
					continue
				}
				if err := w.flushBatch(i); err != nil {
					if w.flushErr == nil {
						w.flushErr = err
					}
					break
				}
			}
			for _, c := range w.cs {
				if c != nil && c.w.Buffered() > 0 {
					_ = c.w.Flush() // a broken conn turns up as a sticky read error
				}
			}
			w.lmu.Unlock()
		}
	}
}

// connect (re)establishes connection i and opens its credit session.
// The session — and with it any adapted window — restarts from the
// configured base: a fresh connection has no stall history, and the
// controller re-converges within a few epochs.
func (w *Wire) connect(i int, addr string) error {
	conn, err := net.DialTimeout("tcp", addr, w.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("edge: dial %s: %w", addr, err)
	}
	c := &wireConn{conn: conn, w: bufio.NewWriterSize(conn, 1<<17),
		dst: i, window: w.window}
	if w.opts.AdaptiveWindow {
		c.ctl = newAIMD(w.window, w.winFloor, w.winCeil)
	}
	c.cond = sync.NewCond(&c.mu)
	// A dedicated buffer: connect runs inside the retry path, whose
	// frame argument may alias w.scratch.
	credit := wire.AppendCredit(nil, wire.Credit{Window: w.window})
	if _, err := c.w.Write(credit); err != nil {
		conn.Close()
		return fmt.Errorf("edge: credit to %s: %w", addr, err)
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return fmt.Errorf("edge: credit to %s: %w", addr, err)
	}
	w.csMu.Lock()
	for len(w.cs) <= i {
		w.cs = append(w.cs, nil)
	}
	w.cs[i] = c
	w.csMu.Unlock()
	if w.opts.AdaptiveWindow {
		// A redial reset this connection's window to the base, which
		// may raise the smallest live window and with it the batch cap.
		w.reclampMaxTuples()
	}
	go w.readAcks(c)
	return nil
}

// readAcks consumes the worker's cumulative Ack frames, replenishing
// the connection's credit. It exits when the connection breaks (the
// sticky error wakes and fails any blocked sender).
func (w *Wire) readAcks(c *wireConn) {
	r := bufio.NewReaderSize(c.conn, 1<<12)
	var buf []byte
	for {
		kind, payload, err := wire.ReadFrame(r, buf)
		if err != nil {
			c.mu.Lock()
			if c.err == nil {
				c.err = fmt.Errorf("edge: connection lost: %w", err)
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		buf = payload
		if kind != wire.KindAck {
			continue // tolerate unexpected control frames
		}
		a, err := wire.DecodeAck(payload)
		if err != nil {
			continue
		}
		if a.ServiceNs > 0 {
			// The worker's dispatch-time EWMA rides every ack: this is
			// how the edge learns per-node speed passively, feeding the
			// weighted argmin and the AIMD drain budget. Atomic slots —
			// routing may read a rate while it lands.
			w.rates.Set(c.dst, a.ServiceNs)
		}
		c.mu.Lock()
		if a.Count > c.acked {
			c.acked = a.Count
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// acquire claims one tuple credit on the connection, blocking while
// the window is exhausted. It flushes the connection's buffered frames
// before waiting — the worker can only ack what has actually reached
// it.
func (w *Wire) acquire(c *wireConn) error {
	n, err := w.acquireUpTo(c, 1)
	if err == nil && n != 1 {
		return errors.New("edge: zero-credit acquire") // unreachable: want ≥ 1
	}
	return err
}

// acquireUpTo claims between 1 and want tuple credits, blocking while
// no credit is available at all. Returning a partial grant is what
// lets a batch straddle the window boundary: the sender ships a
// sub-frame of exactly the granted tuples and blocks for the rest, so
// a stalled worker holds the sender at exactly Window tuples in
// flight.
func (w *Wire) acquireUpTo(c *wireConn, want int) (int, error) {
	c.mu.Lock()
	if c.err == nil && c.sent-c.acked >= c.window {
		w.stalls.Add(1)
		inflight := c.sent - c.acked
		stallStart := trace.Now()
		// Everything buffered must be on the wire before blocking, or
		// the worker can never drain and the stall never ends. This is
		// also what makes a window shrink deadlock-free: the
		// CreditUpdate announcing it was buffered before the data that
		// filled the shrunk window, so by the time the sender blocks
		// here the worker has seen the new window and acks accordingly.
		c.mu.Unlock()
		if err := c.w.Flush(); err != nil {
			return 0, err
		}
		c.mu.Lock()
		for c.err == nil && c.sent-c.acked >= c.window {
			c.cond.Wait()
		}
		// One flight-recorder entry per stall, spanning begin→end (Dur
		// is the wait; Arg1 the in-flight tuples that caused it).
		wait := trace.Now() - stallStart
		w.waitNs += wait
		c.epochStallNs += wait
		w.waitTotal.Add(wait)
		w.creditWait.Observe(wait)
		trace.Add(0, trace.HopEvent, stallStart, wait, inflight, 0, "credit-stall")
	}
	if err := c.err; err != nil {
		c.mu.Unlock()
		return 0, err
	}
	n := int(c.window - (c.sent - c.acked))
	if n > want {
		n = want
	}
	c.sent += int64(n)
	c.mu.Unlock()
	return n, nil
}

// Route returns the destination node SendTuple would pick for key,
// without sending (candidate derivation for tests and probes).
func (w *Wire) Route(key uint64) int { return w.part.Route(key) }

// SendTuple routes one tuple by its KeyHash — the per-tuple form the
// engine's remote-partial forwarder drives. The tuple's body is
// appended to its destination's batch buffer; the batch ships as one
// KindTupleBatch frame when it reaches MaxBatchTuples or
// MaxBatchBytes (or on Flush/Watermark/Close, or the Linger tick).
// With MaxBatchTuples 1 it ships immediately as a KindTuple frame.
// Credit is acquired per tuple either way; on a broken connection the
// shipping path redials with bounded backoff (the credit session
// restarts from zero) before giving up.
func (w *Wire) SendTuple(t *wire.Tuple) error {
	dst := w.part.Route(t.KeyHash)
	if w.view != nil {
		w.view.Add(dst)
	}
	if t.TraceID != 0 {
		// The remote hop's routing decision, recorded with the same
		// explanation the in-process groupings trace.
		trace.Add(t.TraceID, trace.HopRoute, trace.Now(), 0, int64(dst), 0,
			route.Explain(w.part, t.KeyHash).String())
	}
	if w.opts.MaxBatchTuples <= 1 {
		var err error
		w.scratch, err = wire.AppendTuple(w.scratch[:0], t)
		if err != nil {
			return err
		}
		return w.sendFrame(dst, w.scratch, t.TraceID)
	}
	w.lock()
	err := w.batchTuple(dst, t)
	w.unlock()
	return err
}

// Send implements Edge: the caller has already routed the batch to
// dst, so the edge charges its own load view for the whole batch in
// one operation and appends every tuple to dst's batch buffer — each
// tuple still consumes one credit when its batch ships, and a batch
// may stall mid-way when the window exhausts (per-destination FIFO is
// preserved; the remainder follows once credit returns).
func (w *Wire) Send(dst int, batch []wire.Tuple) error {
	if w.view != nil {
		w.view.AddN(dst, int64(len(batch)))
	}
	if w.opts.MaxBatchTuples <= 1 {
		for i := range batch {
			var err error
			w.scratch, err = wire.AppendTuple(w.scratch[:0], &batch[i])
			if err != nil {
				return err
			}
			if err := w.sendFrame(dst, w.scratch, batch[i].TraceID); err != nil {
				return err
			}
		}
		return nil
	}
	w.lock()
	defer w.unlock()
	for i := range batch {
		if err := w.batchTuple(dst, &batch[i]); err != nil {
			return err
		}
	}
	return nil
}

// batchTuple appends one tuple body to dst's batch buffer, shipping
// the batch when it fills. Callers hold the linger lock when one
// exists.
func (w *Wire) batchTuple(dst int, t *wire.Tuple) error {
	if w.flushErr != nil {
		return w.flushErr
	}
	b := &w.batches[dst]
	b.offs = append(b.offs, len(b.body))
	var err error
	if b.body, err = wire.AppendTupleBody(b.body, t); err != nil {
		b.offs = b.offs[:len(b.offs)-1]
		return err
	}
	if t.TraceID != 0 {
		b.traced = append(b.traced, t.TraceID)
	}
	b.count++
	if b.count >= w.maxTuples || len(b.body) >= w.opts.MaxBatchBytes {
		return w.flushBatch(dst)
	}
	return nil
}

// maybeAdapt accounts n shipped tuples toward dst's AIMD epoch and,
// when the epoch closes, runs the controller over the epoch's stall
// time and the node's latest service estimate. Shipping-path only
// (the caller holds the linger lock when one exists); no-op on a
// static edge.
func (w *Wire) maybeAdapt(dst int, n int) {
	c := w.cs[dst]
	if c == nil || c.ctl == nil {
		return
	}
	c.epochTuples += int64(n)
	if c.epochTuples < aimdEpochTuples {
		return
	}
	stall := c.epochStallNs
	c.epochTuples, c.epochStallNs = 0, 0
	if next := c.ctl.decide(stall, w.rates.Get(dst)); next != c.window {
		w.setConnWindow(c, next)
	}
}

// setConnWindow moves connection c's live window to next: the
// wire.CreditUpdate frame is buffered FIRST, then the local window
// moves — so the update always precedes, in FIFO frame order, any
// data admitted under the new window, and acquireUpTo's pre-stall
// flush guarantees the worker has re-aimed its ack cadence (acking
// any residue immediately, per the CreditUpdate contract) before the
// sender can block on the shrunk window. A write error is left for
// the data path: the next ship surfaces it through the redial path,
// which restarts the credit session anyway. Shipping-path only.
func (w *Wire) setConnWindow(c *wireConn, next int64) {
	w.hdr = wire.AppendCreditUpdate(w.hdr[:0], wire.CreditUpdate{Window: next})
	_, _ = c.w.Write(w.hdr)
	c.mu.Lock()
	grew := next > c.window
	c.window = next
	c.mu.Unlock()
	if grew {
		// A grown window admits more in-flight; no waiter can exist on
		// this goroutine, but the state change is broadcast-worthy for
		// symmetry with ack arrivals (and costs nothing off the stall
		// path).
		c.cond.Broadcast()
	}
	w.reclampMaxTuples()
}

// reclampMaxTuples recomputes the live batch cap: opts.MaxBatchTuples
// clamped to the smallest live connection window, floored at 1. A
// batch can therefore always ship inside one window grant in the
// steady state — shrinking the window shrinks batches with it instead
// of forcing every batch to straddle the boundary. Shipping-path only.
func (w *Wire) reclampMaxTuples() {
	m := int64(w.opts.MaxBatchTuples)
	for _, c := range w.cs {
		if c == nil {
			continue
		}
		c.mu.Lock()
		if c.window < m {
			m = c.window
		}
		c.mu.Unlock()
	}
	if m < 1 {
		m = 1
	}
	w.maxTuples = int(m)
}

// flushBatch ships destination dst's accumulated batch, splitting at
// the credit window: each sub-frame's tuples acquire their credits up
// front, so a batch straddling the window boundary stalls mid-batch
// with exactly Window tuples in flight — backpressure semantics are
// identical to the per-tuple path, just with amortized framing.
// Callers hold the linger lock when one exists.
func (w *Wire) flushBatch(dst int) error {
	b := &w.batches[dst]
	if b.count == 0 {
		return nil
	}
	var shipStart int64
	if len(b.traced) > 0 {
		w.waitNs = 0
		shipStart = trace.Now()
	}
	done := 0
	for done < b.count {
		var granted int
		err := w.withRedial(dst, func(c *wireConn) error {
			n, err := w.acquireUpTo(c, b.count-done)
			if err != nil {
				return err
			}
			granted = n
			start, end := b.offs[done], len(b.body)
			if done+n < b.count {
				end = b.offs[done+n]
			}
			w.hdr = wire.AppendTupleBatchHeader(w.hdr[:0], n, end-start)
			if _, err := c.w.Write(w.hdr); err != nil {
				return err
			}
			_, err = c.w.Write(b.body[start:end])
			return err
		})
		if err != nil {
			// The edge is terminally failing toward dst; the undelivered
			// remainder goes down with it (the same best-effort contract
			// as frames buffered on a dead connection).
			b.reset()
			return fmt.Errorf("edge: node %d (%s) unreachable after retries: %w", dst, w.addrs[dst], err)
		}
		done += granted
		w.frames.Add(1)
		w.tuples.Add(int64(granted))
	}
	w.maybeAdapt(dst, b.count)
	if len(b.traced) > 0 {
		// Every traced tuple the batch carried gets one HopWireSend
		// span: Dur covers the whole ship (including credit waits),
		// Arg1 is the batch size framing amortized over, Arg2 the
		// credit-wait share of Dur.
		dur := trace.Now() - shipStart
		for _, id := range b.traced {
			trace.Add(id, trace.HopWireSend, shipStart, dur,
				int64(b.count), w.waitNs, w.addrs[dst])
		}
	}
	b.reset()
	return nil
}

// withRedial runs op against dst's connection, redialing with bounded
// backoff and re-running op on each fresh connection until it succeeds
// or SendAttempts is exhausted. A nil slot (a connect failure left
// mid-dial, or a redial in flight) skips straight to redialing instead
// of dereferencing it. Frames already in flight on a dead connection
// may or may not have been absorbed — reconnecting is at-least-once
// for the operation being retried and best-effort for the buffered
// tail, which is the honest contract when the peer process vanished
// mid-stream.
func (w *Wire) withRedial(dst int, op func(c *wireConn) error) error {
	var err error
	if c := w.cs[dst]; c != nil {
		if err = op(c); err == nil {
			return nil
		}
	} else {
		err = errors.New("edge: no live connection")
	}
	backoff := 25 * time.Millisecond
	for attempt := 1; attempt < SendAttempts; attempt++ {
		w.retries.Add(1)
		trace.Event("redial "+w.addrs[dst], int64(dst), int64(attempt))
		time.Sleep(backoff)
		backoff *= 2
		if c := w.cs[dst]; c != nil {
			c.conn.Close()
		}
		if derr := w.connect(dst, w.addrs[dst]); derr != nil {
			err = derr
			continue
		}
		if err = op(w.cs[dst]); err == nil {
			return nil
		}
	}
	w.failures.Add(1)
	trace.Event("backoff-exhausted "+w.addrs[dst], int64(dst), SendAttempts)
	return err
}

// sendFrame ships one encoded per-tuple data frame to dst under flow
// control, riding the redial path when the connection is gone (the
// credit session restarts from zero on a fresh connection).
func (w *Wire) sendFrame(dst int, frame []byte, traceID uint64) error {
	var start int64
	if traceID != 0 {
		w.waitNs = 0
		start = trace.Now()
	}
	err := w.withRedial(dst, func(c *wireConn) error {
		if err := w.acquire(c); err != nil {
			return err
		}
		_, err := c.w.Write(frame)
		return err
	})
	if err != nil {
		return fmt.Errorf("edge: node %d (%s) unreachable after retries: %w", dst, w.addrs[dst], err)
	}
	if traceID != 0 {
		trace.Add(traceID, trace.HopWireSend, start, trace.Now()-start,
			1, w.waitNs, w.addrs[dst])
	}
	w.frames.Add(1)
	w.tuples.Add(1)
	w.maybeAdapt(dst, 1)
	return nil
}

// Watermark implements Edge: batched and buffered data is flushed
// first so the promise arrives after everything it covers, then the
// mark broadcasts to every node. Marks are control traffic and
// consume no credit, but they ride the same redial path as data — a
// node restart that lands on a mark relay (spouts emit marks every
// few hundred tuples, so many restarts do) must not kill an edge
// whose tuple path would survive it.
func (w *Wire) Watermark(source uint32, wm int64) error {
	w.lock()
	defer w.unlock()
	if w.flushErr != nil {
		return w.flushErr
	}
	for i := range w.cs {
		if err := w.flushBatch(i); err != nil {
			return err
		}
	}
	w.scratch = wire.AppendMark(w.scratch[:0], wire.Mark{Source: source, WM: wm})
	for i := range w.cs {
		if err := w.markConn(i, w.scratch); err != nil {
			return err
		}
	}
	w.marks.Add(1)
	return nil
}

// markConn flushes connection dst's buffered data and writes one mark
// frame behind it, riding the redial path when the connection is gone.
// Data buffered on a dead connection is lost with it; the mark — a
// monotone promise, safe to re-deliver — goes out on the fresh
// connection.
func (w *Wire) markConn(dst int, frame []byte) error {
	err := w.withRedial(dst, func(c *wireConn) error {
		if err := c.w.Flush(); err != nil {
			return err
		}
		if _, err := c.w.Write(frame); err != nil {
			return err
		}
		return c.w.Flush()
	})
	if err != nil {
		return fmt.Errorf("edge: mark to node %d (%s) failed after retries: %w", dst, w.addrs[dst], err)
	}
	return nil
}

// Flush implements Edge: every destination's accumulated batch ships
// and every connection's buffered frames go out. Nil connection slots
// (a redial in flight) are skipped, matching Close.
func (w *Wire) Flush() error {
	w.lock()
	defer w.unlock()
	if w.flushErr != nil {
		return w.flushErr
	}
	for i := range w.cs {
		if err := w.flushBatch(i); err != nil {
			return err
		}
		if c := w.cs[i]; c != nil { // flushBatch may have redialed: re-read
			if err := c.w.Flush(); err != nil {
				return fmt.Errorf("edge: flush node %d: %w", i, err)
			}
		}
	}
	return nil
}

// Close implements Edge: stop the linger flusher, ship any accumulated
// batches, then flush and close every connection (their reader
// goroutines exit on the close).
func (w *Wire) Close() error {
	if w.lingerStop != nil {
		w.lingerOnce.Do(func() { close(w.lingerStop) })
	}
	w.lock()
	defer w.unlock()
	var first error
	for i, c := range w.cs {
		if c == nil {
			continue
		}
		if err := w.flushBatch(i); err != nil && first == nil {
			first = err
		}
		if c = w.cs[i]; c == nil { // flushBatch may have redialed: re-read
			continue
		}
		if err := c.w.Flush(); err != nil && first == nil {
			first = err
		}
		if err := c.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Candidates returns the key's candidate nodes under this edge's
// router — the probe set point queries must cover (widened for hot
// keys under the frequency-aware modes, exactly as transport sources
// report it).
func (w *Wire) Candidates(key uint64) []int {
	return route.ProbeSet(w.part, key)
}

// LocalLoads returns the edge's local load estimate (nil for KG/SG).
func (w *Wire) LocalLoads() []int64 {
	if w.view == nil {
		return nil
	}
	return w.view.Snapshot()
}

// Sent returns the number of data frames sent (one per batch).
func (w *Wire) Sent() int64 { return w.frames.Load() }

// SentTuples returns the number of tuples shipped — the credit
// denomination, and Frames × batch size in the steady state.
func (w *Wire) SentTuples() int64 { return w.tuples.Load() }

// Stats snapshots the edge counters and gauges. The in-flight gauge
// sums sent−acked over the live connections under their locks, and the
// queue gauge counts batch-buffered tuples when a linger flusher
// serializes access to them — both read-time work, nothing added to
// the send path.
func (w *Wire) Stats() Stats {
	s := Stats{
		Frames:   w.frames.Load(),
		Tuples:   w.tuples.Load(),
		Marks:    w.marks.Load(),
		Stalls:   w.stalls.Load(),
		Retries:  w.retries.Load(),
		Failures: w.failures.Load(),
		WaitNs:   w.waitTotal.Load(),
	}
	w.csMu.Lock()
	cs := append(make([]*wireConn, 0, len(w.cs)), w.cs...)
	w.csMu.Unlock()
	for _, c := range cs {
		if c == nil {
			continue
		}
		c.mu.Lock()
		s.InFlight += c.sent - c.acked
		s.Window += c.window
		c.mu.Unlock()
	}
	s.ServiceNs = w.rates.Snapshot()
	if w.lmu != nil {
		// TryLock, not Lock: a credit-stalled sender holds lmu for the
		// whole stall, and a monitor polling stats to *observe* that
		// stall must not deadlock behind it. On contention serve the
		// last value seen.
		if w.lmu.TryLock() {
			for i := range w.batches {
				s.Queue += int64(w.batches[i].count)
			}
			w.lmu.Unlock()
			w.lastQueue.Store(s.Queue)
		} else {
			s.Queue = w.lastQueue.Load()
		}
	}
	return s
}

// CreditWait snapshots the credit-stall wait-time histogram: one
// observation per stall, the wait in nanoseconds.
func (w *Wire) CreditWait() metrics.HistSnapshot {
	return w.creditWait.Snapshot()
}

// ServiceRates snapshots the per-node service-time estimates (ns per
// tuple) learned from ack piggybacks; 0 means no estimate yet for that
// node. Populated on every edge — weighted routing only changes
// whether the router consults them.
func (w *Wire) ServiceRates() []int64 { return w.rates.Snapshot() }

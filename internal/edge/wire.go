package edge

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pkgstream/internal/hotkey"
	"pkgstream/internal/route"
	"pkgstream/internal/wire"
)

// WireOptions parameterizes DialWire. The zero value of every field
// except Seed picks sensible defaults (PKG routing, the paper's two
// choices, a 1024-frame credit window).
type WireOptions struct {
	// Mode is the routing strategy over the destination nodes. The zero
	// value selects PKG (StrategyKG is never a useful default for a
	// tuple edge; ask for it explicitly via ModeSet).
	Mode route.Strategy
	// ModeSet forces Mode to be honored verbatim, so StrategyKG (whose
	// value is 0, indistinguishable from "unset") is reachable.
	ModeSet bool
	// Seed derives the candidate hash functions; it must match across
	// every sender of one stream.
	Seed uint64
	// Start decorrelates shuffle round-robins of parallel senders.
	Start int
	// D is the candidate count for PKG (0: the paper's 2) and the
	// fixed hot width for D-Choices.
	D int
	// Hot carries the hot-key classification knobs for the
	// frequency-aware modes.
	Hot hotkey.Config
	// Window is the credit window per connection: the maximum number
	// of unacknowledged data frames kept in flight (default 1024).
	// Reaching it stalls Send until the worker's cumulative Ack
	// catches up — remote backpressure with bounded buffering.
	Window int
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
}

// wireConn is one flow-controlled connection of a Wire edge. The
// sending goroutine owns conn writes and the buffered writer; a
// dedicated reader goroutine consumes Ack frames and wakes blocked
// senders through cond.
type wireConn struct {
	conn net.Conn
	w    *bufio.Writer

	mu    sync.Mutex
	cond  *sync.Cond
	sent  int64 // data frames written (possibly still buffered)
	acked int64 // cumulative absorbed count from worker Acks
	err   error // sticky: reader saw a broken connection
}

// Wire is the TCP Edge: tuples routed over the destination nodes by a
// coordination-free router (the same per-source load estimate and
// hot-key sketch the in-process groupings use — nothing but keys
// crosses the wire), with credit-based flow control per connection. A
// Wire belongs to a single sending goroutine, like an engine grouping;
// Stats may be read from anywhere.
type Wire struct {
	addrs  []string
	opts   WireOptions
	part   route.Router
	view   *route.Load
	cs     []*wireConn
	window int64

	scratch []byte

	frames   atomic.Int64
	marks    atomic.Int64
	stalls   atomic.Int64
	retries  atomic.Int64
	failures atomic.Int64
}

var _ Edge[wire.Tuple] = (*Wire)(nil)

// SendAttempts bounds delivery attempts per frame: the first try plus
// three redial-and-resend rounds with doubling backoff (~175ms total),
// enough to ride out a node restart without masking a dead peer for
// long. Exported so callers that wrap edge failures (the window
// forwarders' EdgeError) report the count this edge actually used.
const SendAttempts = 4

// DialWire connects a flow-controlled tuple edge to the given node
// addresses. Each connection opens with a wire.Credit frame declaring
// the window, and a reader goroutine consumes the worker's cumulative
// Acks; SendTuple then blocks whenever a connection has Window
// unacknowledged frames in flight.
func DialWire(addrs []string, o WireOptions) (*Wire, error) {
	if len(addrs) == 0 {
		return nil, errors.New("edge: no node addresses")
	}
	if o.Mode == 0 && !o.ModeSet {
		o.Mode = route.StrategyPKG
	}
	if o.Window <= 0 {
		o.Window = 1024
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	w := &Wire{addrs: addrs, opts: o, window: int64(o.Window)}
	n := len(addrs)
	cfg := route.Config{
		Strategy: o.Mode, Workers: n, Seed: o.Seed, Start: o.Start,
		D: o.D, Hot: o.Hot,
	}
	if o.Mode == route.StrategyPKG && cfg.D == 0 {
		cfg.D = 2
	}
	if cfg.D > n {
		cfg.D = n
	}
	if o.Mode.NeedsView() {
		w.view = route.NewLoad(n)
		cfg.View = w.view
	}
	part, err := route.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("edge: %w", err)
	}
	w.part = part
	for i, a := range addrs {
		if err := w.connect(i, a); err != nil {
			w.Close()
			return nil, err
		}
	}
	return w, nil
}

// connect (re)establishes connection i and opens its credit session.
func (w *Wire) connect(i int, addr string) error {
	conn, err := net.DialTimeout("tcp", addr, w.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("edge: dial %s: %w", addr, err)
	}
	c := &wireConn{conn: conn, w: bufio.NewWriterSize(conn, 1<<16)}
	c.cond = sync.NewCond(&c.mu)
	// A dedicated buffer: connect runs inside sendFrame's retry path,
	// whose frame argument may alias w.scratch.
	credit := wire.AppendCredit(nil, wire.Credit{Window: w.window})
	if _, err := c.w.Write(credit); err != nil {
		conn.Close()
		return fmt.Errorf("edge: credit to %s: %w", addr, err)
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return fmt.Errorf("edge: credit to %s: %w", addr, err)
	}
	for len(w.cs) <= i {
		w.cs = append(w.cs, nil)
	}
	w.cs[i] = c
	go w.readAcks(c)
	return nil
}

// readAcks consumes the worker's cumulative Ack frames, replenishing
// the connection's credit. It exits when the connection breaks (the
// sticky error wakes and fails any blocked sender).
func (w *Wire) readAcks(c *wireConn) {
	r := bufio.NewReaderSize(c.conn, 1<<12)
	var buf []byte
	for {
		kind, payload, err := wire.ReadFrame(r, buf)
		if err != nil {
			c.mu.Lock()
			if c.err == nil {
				c.err = fmt.Errorf("edge: connection lost: %w", err)
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		buf = payload
		if kind != wire.KindAck {
			continue // tolerate unexpected control frames
		}
		a, err := wire.DecodeAck(payload)
		if err != nil {
			continue
		}
		c.mu.Lock()
		if a.Count > c.acked {
			c.acked = a.Count
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// acquire claims one credit on connection i, blocking while the window
// is exhausted. It flushes the connection's buffered frames before
// waiting — the worker can only ack what has actually reached it.
func (w *Wire) acquire(c *wireConn) error {
	c.mu.Lock()
	if c.err == nil && c.sent-c.acked >= w.window {
		w.stalls.Add(1)
		// Everything buffered must be on the wire before blocking, or
		// the worker can never drain and the stall never ends.
		c.mu.Unlock()
		if err := c.w.Flush(); err != nil {
			return err
		}
		c.mu.Lock()
		for c.err == nil && c.sent-c.acked >= w.window {
			c.cond.Wait()
		}
	}
	err := c.err
	if err == nil {
		c.sent++
	}
	c.mu.Unlock()
	return err
}

// Route returns the destination node SendTuple would pick for key,
// without sending (candidate derivation for tests and probes).
func (w *Wire) Route(key uint64) int { return w.part.Route(key) }

// SendTuple routes one tuple by its KeyHash and ships it under credit
// flow control — the per-tuple form the engine's remote-partial
// forwarder drives. On a broken connection it redials the destination
// with bounded backoff (the credit session restarts from zero) before
// giving up.
func (w *Wire) SendTuple(t *wire.Tuple) error {
	dst := w.part.Route(t.KeyHash)
	if w.view != nil {
		w.view.Add(dst)
	}
	var err error
	w.scratch, err = wire.AppendTuple(w.scratch[:0], t)
	if err != nil {
		return err
	}
	return w.sendFrame(dst, w.scratch)
}

// Send implements Edge: the caller has already routed the batch to
// dst, so the edge charges its own load view for the whole batch and
// ships frame by frame — each tuple consumes one credit, and a batch
// may stall mid-way when the window exhausts (per-destination FIFO is
// preserved; the remainder follows once credit returns).
func (w *Wire) Send(dst int, batch []wire.Tuple) error {
	if w.view != nil {
		for range batch {
			w.view.Add(dst)
		}
	}
	for i := range batch {
		var err error
		w.scratch, err = wire.AppendTuple(w.scratch[:0], &batch[i])
		if err != nil {
			return err
		}
		if err := w.sendFrame(dst, w.scratch); err != nil {
			return err
		}
	}
	return nil
}

// withRedial runs op against dst's connection, redialing with bounded
// backoff and re-running op on each fresh connection until it succeeds
// or SendAttempts is exhausted. Frames already in flight on a dead
// connection may or may not have been absorbed — reconnecting is
// at-least-once for the operation being retried and best-effort for
// the buffered tail, which is the honest contract when the peer
// process vanished mid-stream.
func (w *Wire) withRedial(dst int, op func(c *wireConn) error) error {
	err := op(w.cs[dst])
	if err == nil {
		return nil
	}
	backoff := 25 * time.Millisecond
	for attempt := 1; attempt < SendAttempts; attempt++ {
		w.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
		w.cs[dst].conn.Close()
		if derr := w.connect(dst, w.addrs[dst]); derr != nil {
			err = derr
			continue
		}
		if err = op(w.cs[dst]); err == nil {
			return nil
		}
	}
	w.failures.Add(1)
	return err
}

// sendFrame ships one encoded data frame to dst under flow control,
// riding the redial path when the connection is gone (the credit
// session restarts from zero on a fresh connection).
func (w *Wire) sendFrame(dst int, frame []byte) error {
	err := w.withRedial(dst, func(c *wireConn) error {
		if err := w.acquire(c); err != nil {
			return err
		}
		_, err := c.w.Write(frame)
		return err
	})
	if err != nil {
		return fmt.Errorf("edge: node %d (%s) unreachable after retries: %w", dst, w.addrs[dst], err)
	}
	w.frames.Add(1)
	return nil
}

// Watermark implements Edge: buffered data is flushed first so the
// promise arrives after everything it covers, then the mark broadcasts
// to every node. Marks are control traffic and consume no credit, but
// they ride the same redial path as data — a node restart that lands
// on a mark relay (spouts emit marks every few hundred tuples, so many
// restarts do) must not kill an edge whose tuple path would survive it.
func (w *Wire) Watermark(source uint32, wm int64) error {
	w.scratch = wire.AppendMark(w.scratch[:0], wire.Mark{Source: source, WM: wm})
	for i := range w.cs {
		if err := w.markConn(i, w.scratch); err != nil {
			return err
		}
	}
	w.marks.Add(1)
	return nil
}

// markConn flushes connection dst's buffered data and writes one mark
// frame behind it, riding the redial path when the connection is gone.
// Data buffered on a dead connection is lost with it; the mark — a
// monotone promise, safe to re-deliver — goes out on the fresh
// connection.
func (w *Wire) markConn(dst int, frame []byte) error {
	err := w.withRedial(dst, func(c *wireConn) error {
		if err := c.w.Flush(); err != nil {
			return err
		}
		if _, err := c.w.Write(frame); err != nil {
			return err
		}
		return c.w.Flush()
	})
	if err != nil {
		return fmt.Errorf("edge: mark to node %d (%s) failed after retries: %w", dst, w.addrs[dst], err)
	}
	return nil
}

// Flush implements Edge: every connection's buffered frames go out.
func (w *Wire) Flush() error {
	for i, c := range w.cs {
		if err := c.w.Flush(); err != nil {
			return fmt.Errorf("edge: flush node %d: %w", i, err)
		}
	}
	return nil
}

// Close implements Edge: flush and close every connection (their
// reader goroutines exit on the close).
func (w *Wire) Close() error {
	var first error
	for _, c := range w.cs {
		if c == nil {
			continue
		}
		if err := c.w.Flush(); err != nil && first == nil {
			first = err
		}
		if err := c.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Candidates returns the key's candidate nodes under this edge's
// router — the probe set point queries must cover (widened for hot
// keys under the frequency-aware modes, exactly as transport sources
// report it).
func (w *Wire) Candidates(key uint64) []int {
	return route.ProbeSet(w.part, key)
}

// LocalLoads returns the edge's local load estimate (nil for KG/SG).
func (w *Wire) LocalLoads() []int64 {
	if w.view == nil {
		return nil
	}
	return w.view.Snapshot()
}

// Sent returns the number of data frames sent.
func (w *Wire) Sent() int64 { return w.frames.Load() }

// Stats snapshots the edge counters.
func (w *Wire) Stats() Stats {
	return Stats{
		Frames:   w.frames.Load(),
		Marks:    w.marks.Load(),
		Stalls:   w.stalls.Load(),
		Retries:  w.retries.Load(),
		Failures: w.failures.Load(),
	}
}

// Package obs is the cluster observability plane: it polls OpStats
// from running nodes over the query channel (the same frames the
// pipeline experiment uses — no HTTP scrape), decodes each reply into a
// Node, and merges the fleet into one Cluster view: merged latency /
// staleness / credit-wait histograms, the paper's imbalance metric over
// the partial nodes' load vector, the slowest node's watermark lag, and
// per-edge backpressure ratios. cmd/pkgtop renders this view; the
// pipeline experiment computes its remote-partial row from it, so the
// two can never disagree about what the cluster did.
package obs

import (
	"pkgstream/internal/metrics"
	"pkgstream/internal/transport"
	"pkgstream/internal/window"
	"pkgstream/internal/wire"
)

// Node is one node's decoded OpStats reply. The zero value of every
// field except Addr/Role means "the node did not report it" — a node
// running a pre-telemetry build still decodes into a usable Node.
type Node struct {
	// Addr is the address that was polled; Role is the caller's label
	// for it ("partial", "final") and is carried through to output —
	// the reply itself does not name the node's role.
	Addr string `json:"addr"`
	Role string `json:"role,omitempty"`
	// Done mirrors the reply's completion flag; Count is the node's
	// headline counter (absorbed tuples on a partial node — the
	// paper's worker load — closed windows on a final node).
	Done  bool  `json:"done"`
	Count int64 `json:"count"`
	// Lat is the node's emit→arrival latency histogram and Stale its
	// window-close staleness histogram, whichever the node reports.
	Lat   metrics.HistSnapshot `json:"-"`
	Stale metrics.HistSnapshot `json:"-"`
	// Telemetry is the reply's backpressure/progress section, zero if
	// the node predates it; CreditWait is its optional histogram.
	Telemetry  wire.Telemetry       `json:"telemetry"`
	CreditWait metrics.HistSnapshot `json:"-"`
	// Err records a poll failure for this node; all other fields are
	// zero when set. Polling a fleet never fails as a whole.
	Err error `json:"-"`
}

// Poll queries every address for OpStats and decodes the replies, in
// order. Per-node failures land in Node.Err — callers that want the old
// all-or-nothing behavior check every Err; pkgtop renders the gap.
func Poll(addrs []string, role string) []Node {
	nodes := make([]Node, len(addrs))
	for i, addr := range addrs {
		nodes[i] = Node{Addr: addr, Role: role}
		rep, err := transport.QueryAddr(addr, wire.Query{Op: wire.OpStats})
		if err != nil {
			nodes[i].Err = err
			continue
		}
		nodes[i].Done = rep.Done
		nodes[i].Count = rep.Count
		nodes[i].Lat = window.HistFromWire(rep.Lat)
		nodes[i].Stale = window.HistFromWire(rep.Stale)
		if rep.Telemetry != nil {
			nodes[i].Telemetry = *rep.Telemetry
			nodes[i].Telemetry.CreditWait = nil // hist lives in CreditWait below
			nodes[i].CreditWait = window.HistFromWire(rep.Telemetry.CreditWait)
		}
	}
	return nodes
}

// Edge is one node's outbound-edge backpressure summary.
type Edge struct {
	Addr string `json:"addr"`
	Role string `json:"role,omitempty"`
	// Frames/Stalls/WaitNs mirror the node's telemetry; Ratio is
	// Stalls/Frames — the fraction of shipped frames that blocked on
	// credit, the visible form of downstream backpressure.
	Frames int64   `json:"frames"`
	Stalls int64   `json:"stalls"`
	WaitNs int64   `json:"wait_ns"`
	Ratio  float64 `json:"ratio"`
	// Window is the edge's summed live credit window (0 on nodes that
	// predate the gauge): pinned on a static edge, moving with the
	// AIMD controllers on an adaptive one.
	Window int64 `json:"window,omitempty"`
}

// Cluster is the merged fleet view.
type Cluster struct {
	// Lat, Stale and CreditWait are the nodes' histograms merged —
	// quantiles of Lat are cluster-wide latency quantiles, identical
	// to merging the raw OpStats replies directly (Merge is the only
	// aggregation applied).
	Lat        metrics.HistSnapshot `json:"-"`
	Stale      metrics.HistSnapshot `json:"-"`
	CreditWait metrics.HistSnapshot `json:"-"`
	// Loads is the partial nodes' Count vector — the paper's
	// worker-load vector I(t) measured across real sockets. Imbalance
	// is max(Loads) − avg(Loads) (the paper's metric) and
	// ImbalanceFraction normalizes it by the total, matching the
	// engine's pkgstream_imbalance_fraction gauge.
	Loads             []int64 `json:"loads"`
	Imbalance         float64 `json:"imbalance"`
	ImbalanceFraction float64 `json:"imbalance_fraction"`
	// MaxWatermarkLagNs is the slowest node's watermark lag — the
	// cluster cannot close windows faster than this node allows.
	// Backlog sums live (key, window) accumulators across the fleet.
	MaxWatermarkLagNs int64 `json:"max_watermark_lag_ns"`
	Backlog           int64 `json:"backlog"`
	// MaxServiceNs is the slowest node's dispatch service-time EWMA.
	MaxServiceNs int64 `json:"max_service_ns"`
	// Edges holds one backpressure summary per node that shipped at
	// least one frame.
	Edges []Edge `json:"edges"`
}

// Merge folds polled nodes into the cluster view. Nodes with Err set
// contribute nothing; the load vector (and so the imbalance metric) is
// taken over the partial-role nodes, matching the pipeline experiment.
func Merge(nodes []Node) Cluster {
	var c Cluster
	for i := range nodes {
		nd := &nodes[i]
		if nd.Err != nil {
			continue
		}
		c.Lat = c.Lat.Merge(nd.Lat)
		c.Stale = c.Stale.Merge(nd.Stale)
		c.CreditWait = c.CreditWait.Merge(nd.CreditWait)
		if nd.Role != "final" {
			c.Loads = append(c.Loads, nd.Count)
		}
		t := nd.Telemetry
		if t.WatermarkLagNs > c.MaxWatermarkLagNs {
			c.MaxWatermarkLagNs = t.WatermarkLagNs
		}
		if t.ServiceNs > c.MaxServiceNs {
			c.MaxServiceNs = t.ServiceNs
		}
		c.Backlog += t.WindowBacklog
		if t.EdgeFrames > 0 {
			c.Edges = append(c.Edges, Edge{
				Addr: nd.Addr, Role: nd.Role,
				Frames: t.EdgeFrames, Stalls: t.EdgeStalls, WaitNs: t.EdgeWaitNs,
				Ratio:  float64(t.EdgeStalls) / float64(t.EdgeFrames),
				Window: t.EdgeWindow,
			})
		}
	}
	c.Imbalance, c.ImbalanceFraction = Imbalance(c.Loads)
	return c
}

// Imbalance computes the paper's load-imbalance metric over a load
// vector: max − avg in absolute tuples, and the same normalized by the
// total. Zero-length or all-zero vectors report 0 — identical to the
// pipeline experiment's arithmetic, which this promotes.
func Imbalance(loads []int64) (abs, fraction float64) {
	if len(loads) == 0 {
		return 0, 0
	}
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	abs = float64(max) - float64(sum)/float64(len(loads))
	if sum > 0 {
		fraction = abs / float64(sum)
	}
	return abs, fraction
}

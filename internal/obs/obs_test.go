package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"pkgstream/internal/engine"
	"pkgstream/internal/transport"
	"pkgstream/internal/window"
	"pkgstream/internal/wire"
)

// obsSpout emits a deterministic word stream on a logical clock with
// source marks, ending with the end-of-stream mark — the same shape the
// pipeline experiment drives through the cluster.
type obsSpout struct{ n, i int }

func (s *obsSpout) Open(*engine.Context) {}
func (s *obsSpout) Close()               {}

func (s *obsSpout) Next(out engine.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	at := int64(s.i) * int64(time.Millisecond)
	out.Emit(engine.Tuple{Key: fmt.Sprintf("w%d", (s.i*s.i)%97), EmitNanos: at})
	if s.i%500 == 0 {
		out.Emit(window.SourceMark(0, at))
	}
	if s.i == s.n {
		out.Emit(window.SourceMark(0, int64(1)<<62))
		return false
	}
	return true
}

// startCluster stands up a loopback partial+final fleet and returns
// their addresses plus the handlers (for WaitDone).
func startCluster(t *testing.T, partialNodes, finalNodes int) (paddrs, faddrs []string, partials []*window.PartialHandler, finals []*window.FinalHandler) {
	t.Helper()
	spec := window.Spec{Size: time.Second, EveryTuples: 1500, Sources: 1}
	for i := 0; i < finalNodes; i++ {
		plan := window.MustPlan(window.Count{}, spec)
		h, err := plan.NewFinalHandler(partialNodes)
		if err != nil {
			t.Fatal(err)
		}
		w, err := transport.ListenHandler("127.0.0.1:0", h)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		finals = append(finals, h)
		faddrs = append(faddrs, w.Addr())
	}
	for i := 0; i < partialNodes; i++ {
		plan := window.MustPlan(window.Count{}, spec)
		h, err := plan.NewPartialHandler(window.PartialHandlerOptions{
			ID: i, Nodes: partialNodes, FinalAddrs: faddrs, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := transport.ListenHandler("127.0.0.1:0", h)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		partials = append(partials, h)
		paddrs = append(paddrs, w.Addr())
	}
	return paddrs, faddrs, partials, finals
}

// buildRuntime wires the spout through the flow-controlled tuple edge
// to the partial nodes.
func buildRuntime(t *testing.T, total int, paddrs []string) *engine.Runtime {
	t.Helper()
	spec := window.Spec{Size: time.Second, EveryTuples: 1500, Sources: 1}
	plan := window.MustPlan(window.Count{}, spec)
	b := engine.NewBuilder("obs", 21)
	b.AddSpout("words", func() engine.Spout { return &obsSpout{n: total} }, 1)
	b.WindowedAggregate("wc", plan, 2, engine.RemotePartial(paddrs...)).
		Input("words", window.SourceAware(engine.Partial()))
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return engine.NewRuntime(top, engine.Options{QueueSize: 512})
}

// TestMergeMatchesDirectMerge is the aggregator's exactness gate: the
// cluster view's merged latency histogram (and so its p99) must be
// byte-identical to merging the per-node OpStats replies by hand —
// obs applies histogram merge and nothing else.
func TestMergeMatchesDirectMerge(t *testing.T) {
	const total = 20_000
	paddrs, faddrs, partials, finals := startCluster(t, 2, 2)
	rt := buildRuntime(t, total, paddrs)
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for _, h := range partials {
		if err := h.WaitDone(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range finals {
		if err := h.WaitDone(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	nodes := Poll(paddrs, "partial")
	for _, nd := range nodes {
		if nd.Err != nil {
			t.Fatalf("poll %s: %v", nd.Addr, nd.Err)
		}
	}
	cl := Merge(append(nodes, Poll(faddrs, "final")...))

	// The reference: query each node directly and fold by hand.
	var direct int64
	var directLat = cl.Lat.Sub(cl.Lat) // zero snapshot
	var loads []int64
	for _, addr := range paddrs {
		rep, err := transport.QueryAddr(addr, wire.Query{Op: wire.OpStats})
		if err != nil {
			t.Fatal(err)
		}
		loads = append(loads, rep.Count)
		direct += rep.Count
		directLat = directLat.Merge(window.HistFromWire(rep.Lat))
	}
	if direct != total {
		t.Fatalf("partial nodes absorbed %d tuples, want %d", direct, total)
	}
	var sum int64
	for _, l := range cl.Loads {
		sum += l
	}
	if sum != total || len(cl.Loads) != len(paddrs) {
		t.Fatalf("cluster loads %v sum %d, want %d over %d nodes", cl.Loads, sum, total, len(paddrs))
	}
	if cl.Lat.Count != directLat.Count || cl.Lat.Sum != directLat.Sum {
		t.Fatalf("merged hist differs: obs %+v direct %+v", cl.Lat, directLat)
	}
	for _, p := range []float64{0.5, 0.99, 0.999} {
		if a, b := cl.Lat.Quantile(p), directLat.Quantile(p); a != b {
			t.Fatalf("q%.3f: obs %d != direct %d", p, a, b)
		}
	}
	abs, frac := Imbalance(loads)
	if cl.Imbalance != abs || cl.ImbalanceFraction != frac {
		t.Fatalf("imbalance: obs (%v, %v) != direct (%v, %v)", cl.Imbalance, cl.ImbalanceFraction, abs, frac)
	}
	// The stream ended on the logical timeline, so every node's lag is
	// "time since the watermark last advanced" — strictly positive.
	if cl.MaxWatermarkLagNs <= 0 {
		t.Fatalf("max watermark lag %d, want > 0 after end of stream", cl.MaxWatermarkLagNs)
	}
}

// TestPollWhileStreaming is the -race gate for the new telemetry: while
// the pipeline streams across the wire, hammer every read path the
// observability plane uses — OpStats polls (edge gauges, credit-wait
// histogram, watermark lag), the engine's Stats fold, and the metrics
// registry's text exposition, which walks the new gauge series.
func TestPollWhileStreaming(t *testing.T) {
	const total = 40_000
	paddrs, faddrs, partials, finals := startCluster(t, 2, 1)
	rt := buildRuntime(t, total, paddrs)
	runDone := make(chan error, 1)
	go func() { runDone <- rt.Run() }()

	var polls int
	for {
		select {
		case err := <-runDone:
			if err != nil {
				t.Fatal(err)
			}
			if polls == 0 {
				t.Fatal("stream finished before a single poll landed")
			}
			for _, h := range partials {
				if err := h.WaitDone(10 * time.Second); err != nil {
					t.Fatal(err)
				}
			}
			for _, h := range finals {
				if err := h.WaitDone(10 * time.Second); err != nil {
					t.Fatal(err)
				}
			}
			cl := Merge(append(Poll(paddrs, "partial"), Poll(faddrs, "final")...))
			var sum int64
			for _, l := range cl.Loads {
				sum += l
			}
			if sum != total {
				t.Fatalf("loads %v sum %d after concurrent polling, want %d", cl.Loads, sum, total)
			}
			return
		default:
		}
		polls++
		nodes := append(Poll(paddrs, "partial"), Poll(faddrs, "final")...)
		Merge(nodes) // exercise the fold concurrently with the stream
		st := rt.Stats()
		_ = st.EdgeTotals("wc.partial")   // queue/in-flight/credit-wait gauges
		_ = st.WindowTotals("wc.partial") // watermark-lag fold
		var buf bytes.Buffer
		if err := rt.MetricsRegistry().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		for _, series := range []string{
			"pkgstream_watermark_lag_seconds",
			"pkgstream_window_backlog",
			"pkgstream_edge_queue_depth",
			"pkgstream_edge_inflight_tuples",
			"pkgstream_edge_credit_wait_seconds_total",
		} {
			if !strings.Contains(buf.String(), series) {
				t.Fatalf("registry exposition is missing %s", series)
			}
		}
	}
}

// TestImbalanceArithmetic pins the promoted helper to the experiment's
// arithmetic.
func TestImbalanceArithmetic(t *testing.T) {
	cases := []struct {
		loads []int64
		abs   float64
		frac  float64
	}{
		{nil, 0, 0},
		{[]int64{0, 0}, 0, 0},
		{[]int64{10, 10}, 0, 0},
		{[]int64{30, 10}, 10, 0.25},
		{[]int64{4, 0, 0, 0}, 3, 0.75},
	}
	for _, c := range cases {
		abs, frac := Imbalance(c.loads)
		if abs != c.abs || frac != c.frac {
			t.Errorf("Imbalance(%v) = (%v, %v), want (%v, %v)", c.loads, abs, frac, c.abs, c.frac)
		}
	}
}

package rng

import "fmt"

// Alias samples from an arbitrary finite discrete distribution in O(1)
// per draw using Vose's alias method. It is used for the log-normal
// synthetic datasets (LN1, LN2), whose key-popularity weights are not a
// simple analytic family.
type Alias struct {
	src   *Source
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given non-negative weights
// (which need not be normalized) drawing randomness from src. It returns
// an error if weights is empty, contains a negative or non-finite value,
// or sums to zero.
func NewAlias(src *Source, weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias table needs at least one weight")
	}
	if n > 1<<31-1 {
		return nil, fmt.Errorf("rng: alias table too large (%d entries)", n)
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || w != w || w > 1e308 {
			return nil, fmt.Errorf("rng: invalid weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: alias weights sum to zero")
	}

	a := &Alias{
		src:   src,
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities: mean 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are numerically 1.
	for _, l := range large {
		a.prob[l] = 1
	}
	for _, s := range small {
		a.prob[s] = 1
	}
	return a, nil
}

// Next returns the next sampled index in [0, len(weights)).
func (a *Alias) Next() int {
	i := a.src.Intn(len(a.prob))
	if a.src.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

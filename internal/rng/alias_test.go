package rng

import (
	"math"
	"testing"
)

func TestAliasErrors(t *testing.T) {
	r := New(1)
	if _, err := NewAlias(r, nil); err == nil {
		t.Error("empty weights should error")
	}
	if _, err := NewAlias(r, []float64{1, -1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := NewAlias(r, []float64{0, 0}); err == nil {
		t.Error("zero-sum weights should error")
	}
	if _, err := NewAlias(r, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight should error")
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias(New(1), []float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := a.Next(); v != 0 {
			t.Fatalf("single-outcome alias returned %d", v)
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{10, 5, 2.5, 1, 1, 0.5}
	a, err := NewAlias(New(2), weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != len(weights) {
		t.Fatalf("N = %d", a.N())
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	const n = 1_000_000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Next()]++
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.003 {
			t.Errorf("outcome %d: freq %v, want %v", i, got, want)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a, err := NewAlias(New(3), []float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if a.Next() == 1 {
			t.Fatal("sampled zero-weight outcome")
		}
	}
}

func TestAliasSkewedHead(t *testing.T) {
	// A log-normal weight vector: the alias sampler's empirical head
	// frequency must track the normalized weight of the top key.
	src := New(4)
	w := LogNormalWeights(src, 2.245, 1.133, 1100)
	a, err := NewAlias(src, w)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500000
	top := 0
	for i := 0; i < n; i++ {
		if a.Next() == 0 {
			top++
		}
	}
	got := float64(top) / n
	if math.Abs(got-w[0])/w[0] > 0.05 {
		t.Errorf("top-key freq %v, want ≈%v", got, w[0])
	}
}

func BenchmarkAliasNext(b *testing.B) {
	src := New(1)
	w := LogNormalWeights(src, 1.789, 2.366, 16000)
	a, err := NewAlias(src, w)
	if err != nil {
		b.Fatal(err)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Next()
	}
	_ = sink
}

// Package rng provides deterministic pseudo-random number generation and
// the discrete samplers used to synthesize the paper's workloads.
//
// The experiments in the paper (Nasir et al., ICDE 2015) are driven by
// skewed key streams: Zipf-like real datasets (Wikipedia, Twitter),
// log-normal synthetics fitted to Orkut, and power-law graphs. This
// package supplies reproducible generators for all of them:
//
//   - Source: xoshiro256** PRNG seeded via SplitMix64, so streams are
//     stable across Go versions (unlike math/rand's unspecified sources).
//   - Zipf: O(1)-per-sample rank sampler for P(i) ∝ i^(-s) over a finite
//     key universe, valid for any s ≥ 0 (math/rand's Zipf requires s > 1).
//   - Alias: Vose alias method for arbitrary finite discrete
//     distributions (used for the log-normal key weights).
//
// All generators are deterministic functions of their seed.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 advances state and returns the next value of the SplitMix64
// sequence. It is used to expand a single 64-bit seed into the larger
// state of Source, and is exposed because it is a handy, well-distributed
// stream for deriving sub-seeds.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic pseudo-random number generator based on
// xoshiro256**. It is not safe for concurrent use; create one Source per
// goroutine (see Fork).
type Source struct {
	s        [4]uint64
	spare    float64
	hasSpare bool
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	src := &Source{}
	st := seed
	for i := range src.s {
		src.s[i] = SplitMix64(&st)
	}
	// xoshiro256** must not be seeded with the all-zero state. SplitMix64
	// cannot realistically produce four zero outputs, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return src
}

// NewStream returns a Source for the sub-stream `stream` of `seed`.
// Distinct stream numbers yield statistically independent sequences; use
// it to give each simulated source/worker/dataset its own generator.
func NewStream(seed, stream uint64) *Source {
	st := seed ^ (0x9e3779b97f4a7c15 * (stream + 1))
	return New(SplitMix64(&st))
}

// Fork derives a new independent Source from r, advancing r.
func (r *Source) Fork() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Uint64 returns the next value of the xoshiro256** sequence.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's nearly-divisionless method.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method (with one cached spare per pair).
func (r *Source) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *Source) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so the log is finite.
	return -math.Log(1 - r.Float64())
}

// LogNormal returns exp(mu + sigma*Z) with Z standard normal.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

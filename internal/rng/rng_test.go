package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for the SplitMix64 sequence with seed 0, from the
	// public-domain reference implementation by Sebastiano Vigna.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different-seed sources collided %d/1000 times", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatalf("streams 0 and 1 of seed 7 collided at step %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(1)
	child := parent.Fork()
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			t.Fatalf("fork collided with parent at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	cfg := &quick.Config{MaxCount: 2000, Rand: nil}
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(4)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates too far from %v", b, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ≈1", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	// The median of LogNormal(mu, sigma) is exp(mu).
	r := New(7)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(2, 0.5)
	}
	sortDescending(xs)
	median := xs[n/2]
	if want := math.Exp(2); math.Abs(median-want)/want > 0.05 {
		t.Errorf("log-normal median = %v, want ≈%v", median, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(9)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestSortDescending(t *testing.T) {
	r := New(10)
	f := func(n uint8) bool {
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = r.Float64()
		}
		sortDescending(xs)
		for i := 1; i < len(xs); i++ {
			if xs[i-1] < xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

package rng

import (
	"fmt"
	"math"
)

// zipfHeadSize is the number of top ranks sampled exactly from a
// cumulative table. The head of a skewed distribution carries nearly all
// of the mass that matters for load balancing (the paper's analysis is
// driven by p1, the probability of the single most frequent key), so the
// head is exact while the long tail is sampled by continuous inversion.
const zipfHeadSize = 4096

// Zipf samples ranks from {1, ..., K} with P(i) ∝ i^(-s), for any
// exponent s ≥ 0 (s = 0 is uniform). Unlike math/rand's Zipf it supports
// the s ≤ 1 regime, which is common in word-frequency data.
//
// Sampling is O(log H) for the top H = 4096 ranks (exact cumulative
// table) and O(1) for the tail (analytic inversion of the continuous
// power-law envelope, with rank boundaries at half-integers). Individual
// tail ranks carry probability ≤ P(H), so the tail approximation does not
// affect load-balance behaviour, which is dominated by the head.
type Zipf struct {
	src  *Source
	k    uint64
	s    float64
	norm float64 // approximate generalized harmonic number H(K, s)

	headCum  []float64 // headCum[i] = sum of i^(-s) for ranks 1..i+1 (unnormalized)
	headMass float64   // total unnormalized mass of the head
	h        uint64    // number of head ranks = min(K, zipfHeadSize)
}

// NewZipf returns a Zipf sampler over ranks 1..k with exponent s, drawing
// randomness from src. It panics if k == 0 or s < 0 or s is not finite.
func NewZipf(src *Source, s float64, k uint64) *Zipf {
	if k == 0 {
		panic("rng: NewZipf with k == 0")
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("rng: NewZipf with invalid exponent %v", s))
	}
	z := &Zipf{src: src, k: k, s: s}
	z.h = k
	if z.h > zipfHeadSize {
		z.h = zipfHeadSize
	}
	z.headCum = make([]float64, z.h)
	sum := 0.0
	for i := uint64(1); i <= z.h; i++ {
		sum += math.Exp(-s * math.Log(float64(i)))
		z.headCum[i-1] = sum
	}
	z.headMass = sum
	z.norm = sum
	if k > z.h {
		// Mass of ranks h+1..k, approximated by the midpoint-rule integral
		// ∫ x^(-s) dx over [h+0.5, k+0.5]. For a smooth decreasing
		// integrand this is accurate to O(h^-2) relative error.
		z.norm += powIntegral(float64(z.h)+0.5, float64(k)+0.5, s)
	}
	return z
}

// K returns the size of the rank universe.
func (z *Zipf) K() uint64 { return z.k }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Next returns the next sampled rank in [1, K].
func (z *Zipf) Next() uint64 {
	u := z.src.Float64() * z.norm
	if u < z.headMass {
		// Binary search the exact head table.
		lo, hi := 0, len(z.headCum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.headCum[mid] > u {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return uint64(lo) + 1
	}
	// Invert the continuous tail envelope. Rank r occupies [r-0.5, r+0.5).
	x := powIntegralInverse(float64(z.h)+0.5, z.s, u-z.headMass)
	r := uint64(x + 0.5)
	if r < z.h+1 {
		r = z.h + 1
	}
	if r > z.k {
		r = z.k
	}
	return r
}

// Prob returns the (approximately normalized) probability of rank i.
// It panics if i is outside [1, K].
func (z *Zipf) Prob(i uint64) float64 {
	if i == 0 || i > z.k {
		panic("rng: Zipf.Prob rank out of range")
	}
	return math.Exp(-z.s*math.Log(float64(i))) / z.norm
}

// P1 returns the probability of the most frequent rank.
func (z *Zipf) P1() float64 { return z.Prob(1) }

// powIntegral computes ∫ x^(-s) dx over [a, b].
func powIntegral(a, b, s float64) float64 {
	if b <= a {
		return 0
	}
	if s == 1 {
		return math.Log(b / a)
	}
	return (math.Pow(b, 1-s) - math.Pow(a, 1-s)) / (1 - s)
}

// powIntegralInverse returns x ≥ a such that ∫ t^(-s) dt over [a, x]
// equals m.
func powIntegralInverse(a, s, m float64) float64 {
	if m <= 0 {
		return a
	}
	if s == 1 {
		return a * math.Exp(m)
	}
	v := math.Pow(a, 1-s) + m*(1-s)
	if v <= 0 {
		// Numerically past the end of a decreasing envelope (s > 1);
		// callers clamp to K anyway.
		return math.Inf(1)
	}
	return math.Pow(v, 1/(1-s))
}

// SolveZipfExponent returns the exponent s ≥ 0 such that a Zipf
// distribution over k ranks has P(rank 1) = p1. This is how synthetic
// datasets are matched to the (keys, p1) statistics the paper reports in
// Table I: p1 pins the head of the distribution and k pins the support.
//
// p1 must lie in [1/k, 1); values at or below the uniform probability 1/k
// return 0 (uniform). The result is found by bisection on the strictly
// increasing map s → 1/H(k, s).
func SolveZipfExponent(k uint64, p1 float64) float64 {
	if k == 0 {
		panic("rng: SolveZipfExponent with k == 0")
	}
	if p1 >= 1 {
		panic("rng: SolveZipfExponent with p1 >= 1")
	}
	if p1 <= 1/float64(k) {
		return 0
	}
	lo, hi := 0.0, 64.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if ZipfP1(k, mid) < p1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ZipfP1 returns the head probability P(rank 1) = 1/H(k, s) of a Zipf
// distribution over k ranks with exponent s — the inverse of
// SolveZipfExponent, used to build a dataset Spec for a *given* skew
// exponent (e.g. the z sweeps of the ICDE 2016 follow-up's evaluation).
// It uses the same head-table-plus-integral approximation of H(k, s) as
// the sampler, so the pair round-trips.
func ZipfP1(k uint64, s float64) float64 {
	if k == 0 {
		panic("rng: ZipfP1 with k == 0")
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("rng: ZipfP1 with invalid exponent %v", s))
	}
	h := k
	if h > zipfHeadSize {
		h = zipfHeadSize
	}
	sum := 0.0
	for i := uint64(1); i <= h; i++ {
		sum += math.Exp(-s * math.Log(float64(i)))
	}
	if k > h {
		sum += powIntegral(float64(h)+0.5, float64(k)+0.5, s)
	}
	return 1 / sum
}

// LogNormalWeights samples k weights from a log-normal(mu, sigma)
// distribution, sorts them in decreasing order and normalizes them to sum
// to 1. This reproduces the paper's LN1/LN2 synthetic key-popularity
// distributions (parameters fitted to Orkut workloads).
func LogNormalWeights(src *Source, mu, sigma float64, k int) []float64 {
	if k <= 0 {
		panic("rng: LogNormalWeights with k <= 0")
	}
	w := make([]float64, k)
	total := 0.0
	for i := range w {
		w[i] = src.LogNormal(mu, sigma)
		total += w[i]
	}
	// Sort descending (insertion into a heap would be overkill; keys
	// counts here are small: 1.1k-16k in the paper).
	sortDescending(w)
	for i := range w {
		w[i] /= total
	}
	return w
}

// sortDescending sorts w in place in decreasing order using heapsort to
// avoid importing sort for a float64 slice hot path.
func sortDescending(w []float64) {
	n := len(w)
	// Build a min-heap, then repeatedly move the min to the end: the
	// result is descending order.
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMin(w, i, n)
	}
	for end := n - 1; end > 0; end-- {
		w[0], w[end] = w[end], w[0]
		siftDownMin(w, 0, end)
	}
}

func siftDownMin(w []float64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && w[child+1] < w[child] {
			child++
		}
		if w[root] <= w[child] {
			return
		}
		w[root], w[child] = w[child], w[root]
		root = child
	}
}

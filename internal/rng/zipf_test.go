package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfRanksInRange(t *testing.T) {
	r := New(1)
	z := NewZipf(r, 1.2, 1000)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 1 || v > 1000 {
			t.Fatalf("Zipf rank %d out of [1,1000]", v)
		}
	}
}

func TestZipfProbNormalization(t *testing.T) {
	// For a small universe the probabilities must sum to ≈1.
	for _, s := range []float64{0, 0.5, 1, 1.5, 2.5} {
		z := NewZipf(New(1), s, 500)
		sum := 0.0
		for i := uint64(1); i <= 500; i++ {
			sum += z.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("s=%v: probabilities sum to %v, want 1", s, sum)
		}
	}
}

func TestZipfProbNormalizationLargeK(t *testing.T) {
	// With K beyond the exact head, the tail-integral approximation of
	// the normalizer must keep the total mass within a small tolerance.
	for _, s := range []float64{0.8, 1.0, 1.5} {
		k := uint64(2_000_000)
		z := NewZipf(New(1), s, k)
		sum := 0.0
		for i := uint64(1); i <= k; i++ {
			sum += math.Exp(-s * math.Log(float64(i)))
		}
		sum /= z.norm
		if math.Abs(sum-1) > 1e-4 {
			t.Errorf("s=%v k=%d: total mass %v, want ≈1", s, k, sum)
		}
	}
}

func TestZipfEmpiricalHeadFrequencies(t *testing.T) {
	// The empirical frequency of the top ranks must match Prob closely.
	r := New(7)
	z := NewZipf(r, 1.1, 10000)
	const n = 2_000_000
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		v := z.Next()
		if v <= 5 {
			counts[v]++
		}
	}
	for rank := uint64(1); rank <= 5; rank++ {
		want := z.Prob(rank)
		got := float64(counts[rank]) / n
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("rank %d: empirical freq %v, want ≈%v", rank, got, want)
		}
	}
}

func TestZipfUniformCase(t *testing.T) {
	// s = 0 must be uniform over ranks.
	r := New(8)
	z := NewZipf(r, 0, 100)
	counts := make([]int, 101)
	const n = 500000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	want := float64(n) / 100
	for rank := 1; rank <= 100; rank++ {
		if math.Abs(float64(counts[rank])-want) > 6*math.Sqrt(want) {
			t.Errorf("uniform zipf rank %d count %d deviates from %v", rank, counts[rank], want)
		}
	}
}

func TestZipfSingleKey(t *testing.T) {
	z := NewZipf(New(1), 1.5, 1)
	for i := 0; i < 100; i++ {
		if v := z.Next(); v != 1 {
			t.Fatalf("K=1 Zipf returned %d", v)
		}
	}
	if p := z.P1(); math.Abs(p-1) > 1e-12 {
		t.Fatalf("K=1 P1 = %v, want 1", p)
	}
}

func TestZipfPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("k=0", func() { NewZipf(New(1), 1, 0) })
	mustPanic("s<0", func() { NewZipf(New(1), -1, 10) })
	mustPanic("s=NaN", func() { NewZipf(New(1), math.NaN(), 10) })
	mustPanic("prob out of range", func() { NewZipf(New(1), 1, 10).Prob(11) })
}

func TestSolveZipfExponentRoundTrip(t *testing.T) {
	cases := []struct {
		k  uint64
		p1 float64
	}{
		{2900, 0.0329},      // CT
		{77_000, 0.0328},    // SL1
		{290_000, 0.0932},   // WP scaled
		{2_900_000, 0.0932}, // WP full
		{1000, 0.2},
		{10, 0.5},
	}
	for _, c := range cases {
		s := SolveZipfExponent(c.k, c.p1)
		z := NewZipf(New(1), s, c.k)
		if got := z.P1(); math.Abs(got-c.p1)/c.p1 > 0.01 {
			t.Errorf("k=%d p1=%v: solved s=%v gives P1=%v", c.k, c.p1, s, got)
		}
	}
}

func TestSolveZipfExponentUniformFloor(t *testing.T) {
	if s := SolveZipfExponent(100, 0.01); s != 0 {
		t.Errorf("p1 = 1/k should give s = 0, got %v", s)
	}
	if s := SolveZipfExponent(100, 0.001); s != 0 {
		t.Errorf("p1 < 1/k should give s = 0, got %v", s)
	}
}

func TestSolveZipfExponentMonotonic(t *testing.T) {
	prev := -1.0
	for _, p1 := range []float64{0.02, 0.05, 0.1, 0.2, 0.4} {
		s := SolveZipfExponent(10000, p1)
		if s <= prev {
			t.Fatalf("exponent not increasing in p1: s(%v)=%v after %v", p1, s, prev)
		}
		prev = s
	}
}

func TestLogNormalWeights(t *testing.T) {
	r := New(3)
	w := LogNormalWeights(r, 1.789, 2.366, 16000)
	if len(w) != 16000 {
		t.Fatalf("got %d weights", len(w))
	}
	sum := 0.0
	for i, x := range w {
		if x < 0 {
			t.Fatalf("negative weight at %d", i)
		}
		if i > 0 && w[i-1] < x {
			t.Fatalf("weights not descending at %d", i)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	// With the paper's LN1 parameters the head should be heavily skewed:
	// the top key carries on the order of 10% of the mass.
	if w[0] < 0.01 {
		t.Errorf("LN1-like weights look too flat: w[0] = %v", w[0])
	}
}

func TestZipfProbDecreasing(t *testing.T) {
	z := NewZipf(New(1), 1.3, 100000)
	f := func(a, b uint16) bool {
		i, j := uint64(a)+1, uint64(b)+1
		if i > j {
			i, j = j, i
		}
		return z.Prob(i) >= z.Prob(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(New(1), 1.1, 3_000_000)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Next()
	}
	_ = sink
}

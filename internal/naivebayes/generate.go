package naivebayes

import (
	"pkgstream/internal/rng"
)

// Generator produces synthetic text-like classification data: each class
// draws tokens from a Zipf vocabulary under its own popularity ranking
// (class c's ranking is a rotation of class 0's), giving classes that are
// statistically separable while keeping the global token distribution
// heavily skewed — the sparse-dataset regime of §VI.A in which key
// grouping suffers load imbalance.
type Generator struct {
	classes   int
	vocab     uint64
	docLen    int
	z         *rng.Zipf
	src       *rng.Source
	rotations []uint64
}

// NewGenerator returns a deterministic sample generator. docLen is the
// number of tokens per document; p1 sets the head probability of the
// per-class token distribution.
func NewGenerator(classes int, vocab uint64, docLen int, p1 float64, seed uint64) *Generator {
	if classes <= 0 || vocab == 0 || docLen <= 0 {
		panic("naivebayes: NewGenerator needs positive classes, vocab and docLen")
	}
	src := rng.New(seed)
	g := &Generator{
		classes:   classes,
		vocab:     vocab,
		docLen:    docLen,
		z:         rng.NewZipf(src.Fork(), rng.SolveZipfExponent(vocab, p1), vocab),
		src:       src,
		rotations: make([]uint64, classes),
	}
	for c := range g.rotations {
		g.rotations[c] = uint64(c) * (vocab/uint64(classes) + 1)
	}
	return g
}

// Next returns one labeled sample with a uniformly random class.
func (g *Generator) Next() Sample {
	class := g.src.Intn(g.classes)
	tokens := make([]uint64, g.docLen)
	for i := range tokens {
		rank := g.z.Next()
		tokens[i] = (rank-1+g.rotations[class])%g.vocab + 1
	}
	return Sample{Tokens: tokens, Class: class}
}

// Batch returns n samples.
func (g *Generator) Batch(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

package naivebayes

import (
	"math"
	"testing"
)

func TestModelPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewModel(0, 10, 1) },
		func() { NewModel(2, 0, 1) },
		func() { NewModel(2, 10, 0) },
		func() { NewModel(2, 10, 1).Train(Sample{Class: 5}) },
		func() { NewDistributed(0, 2, 10, 1, ByPKG, 1) },
		func() { NewDistributed(3, 2, 10, 1, Strategy(99), 1) },
		func() { NewDistributed(3, 2, 10, 1, ByPKG, 1).Train(Sample{Class: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestModelCounts(t *testing.T) {
	m := NewModel(2, 100, 1)
	m.Train(Sample{Tokens: []uint64{1, 1, 2}, Class: 0})
	m.Train(Sample{Tokens: []uint64{2, 3}, Class: 1})
	if m.Docs() != 2 {
		t.Fatalf("Docs = %d", m.Docs())
	}
	if m.TokenCount(1, 0) != 2 || m.TokenCount(1, 1) != 0 {
		t.Fatalf("token 1 counts wrong")
	}
	if m.TokenCount(2, 0) != 1 || m.TokenCount(2, 1) != 1 {
		t.Fatalf("token 2 counts wrong")
	}
	if m.TokenCount(99, 0) != 0 {
		t.Fatalf("unseen token should count 0")
	}
}

func TestModelLearnsSeparableClasses(t *testing.T) {
	gen := NewGenerator(2, 2000, 20, 0.08, 1)
	m := NewModel(2, 2000, 1)
	for _, s := range gen.Batch(3000) {
		m.Train(s)
	}
	test := gen.Batch(1000)
	correct := 0
	for _, s := range test {
		if m.Predict(s.Tokens) == s.Class {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.9 {
		t.Fatalf("sequential accuracy %v < 0.9", acc)
	}
}

func TestDistributedMatchesSequentialExactly(t *testing.T) {
	// The paper's point: PKG changes *where* counters live, not *what*
	// they count. All strategies must reproduce the sequential counts
	// and therefore identical predictions.
	gen := NewGenerator(3, 1000, 15, 0.1, 2)
	train := gen.Batch(2000)
	test := gen.Batch(300)

	seq := NewModel(3, 1000, 1)
	for _, s := range train {
		seq.Train(s)
	}
	for _, strat := range []Strategy{ByPKG, ByKey, ByShuffle} {
		d := NewDistributed(7, 3, 1000, 1, strat, 5)
		for _, s := range train {
			d.Train(s)
		}
		for tok := uint64(1); tok <= 50; tok++ {
			for c := 0; c < 3; c++ {
				if got, want := d.TokenCount(tok, c), seq.TokenCount(tok, c); got != want {
					t.Fatalf("strategy %v: token %d class %d: %d != %d", strat, tok, c, got, want)
				}
			}
		}
		for i, s := range test {
			dp := d.LogPosterior(s.Tokens)
			sp := seq.LogPosterior(s.Tokens)
			for c := range dp {
				if math.Abs(dp[c]-sp[c]) > 1e-9 {
					t.Fatalf("strategy %v: posterior mismatch on sample %d class %d: %v vs %v",
						strat, i, c, dp[c], sp[c])
				}
			}
			if d.Predict(s.Tokens) != seq.Predict(s.Tokens) {
				t.Fatalf("strategy %v: prediction mismatch on sample %d", strat, i)
			}
		}
	}
}

func TestProbeCounts(t *testing.T) {
	pkg := NewDistributed(9, 2, 100, 1, ByPKG, 3)
	kg := NewDistributed(9, 2, 100, 1, ByKey, 3)
	sg := NewDistributed(9, 2, 100, 1, ByShuffle, 3)
	for tok := uint64(1); tok <= 50; tok++ {
		if n := pkg.ProbesPerToken(tok); n > 2 {
			t.Fatalf("PKG probes %d > 2", n)
		}
		if n := kg.ProbesPerToken(tok); n != 1 {
			t.Fatalf("KG probes %d != 1", n)
		}
		if n := sg.ProbesPerToken(tok); n != 9 {
			t.Fatalf("SG probes %d != 9 (broadcast)", n)
		}
	}
}

func TestLoadBalanceOrdering(t *testing.T) {
	gen := NewGenerator(2, 3000, 25, 0.15, 7)
	train := gen.Batch(4000)
	run := func(strat Strategy) *Distributed {
		d := NewDistributed(5, 2, 3000, 1, strat, 11)
		for _, s := range train {
			d.Train(s)
		}
		return d
	}
	pkg, kg, sg := run(ByPKG), run(ByKey), run(ByShuffle)
	if pkg.Imbalance()*3 > kg.Imbalance() {
		t.Errorf("PKG imbalance %v not well below KG %v", pkg.Imbalance(), kg.Imbalance())
	}
	if sg.Imbalance() > float64(len(train)) {
		t.Errorf("SG imbalance %v absurd", sg.Imbalance())
	}
	// Counter footprint ordering (§III.A): KG ≤ PKG ≤ SG.
	if !(kg.CounterFootprint() <= pkg.CounterFootprint() &&
		pkg.CounterFootprint() <= sg.CounterFootprint()) {
		t.Errorf("footprint ordering violated: %d %d %d",
			kg.CounterFootprint(), pkg.CounterFootprint(), sg.CounterFootprint())
	}
	if pkg.CounterFootprint() > 2*kg.CounterFootprint() {
		t.Errorf("PKG footprint %d above 2×KG %d", pkg.CounterFootprint(), kg.CounterFootprint())
	}
	var total int64
	for _, l := range pkg.WorkerLoads() {
		total += l
	}
	if total != int64(len(train)*25) {
		t.Errorf("loads sum to %d, want %d", total, len(train)*25)
	}
}

func TestDistributedAccuracy(t *testing.T) {
	gen := NewGenerator(2, 2000, 20, 0.08, 9)
	d := NewDistributed(9, 2, 2000, 1, ByPKG, 13)
	for _, s := range gen.Batch(3000) {
		d.Train(s)
	}
	test := gen.Batch(500)
	correct := 0
	for _, s := range test {
		if d.Predict(s.Tokens) == s.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.9 {
		t.Fatalf("distributed accuracy %v < 0.9", acc)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(2, 500, 10, 0.1, 42).Batch(100)
	b := NewGenerator(2, 500, 10, 0.1, 42).Batch(100)
	for i := range a {
		if a[i].Class != b[i].Class || len(a[i].Tokens) != len(b[i].Tokens) {
			t.Fatal("generator not deterministic")
		}
		for j := range a[i].Tokens {
			if a[i].Tokens[j] != b[i].Tokens[j] {
				t.Fatal("generator tokens not deterministic")
			}
		}
	}
	for _, s := range a {
		for _, tok := range s.Tokens {
			if tok < 1 || tok > 500 {
				t.Fatalf("token %d outside vocab", tok)
			}
		}
	}
}

func BenchmarkDistributedTrain(b *testing.B) {
	gen := NewGenerator(2, 5000, 20, 0.1, 1)
	batch := gen.Batch(1000)
	d := NewDistributed(9, 2, 5000, 1, ByPKG, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Train(batch[i%1000])
	}
}

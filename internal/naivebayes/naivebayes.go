// Package naivebayes implements the streaming multinomial naive Bayes
// classifier of the paper's §VI.A, parallelized vertically: the
// co-occurrence counters of each token (feature) are spread over workers
// by the stream partitioner. Under key grouping a token lives on one
// worker (skewed load, since token popularity is Zipf); under shuffle
// grouping a token may live on every worker, so a query must broadcast
// to all W and is sensitive to stragglers; under partial key grouping a
// token lives on at most two deterministic workers, so queries probe
// exactly two workers per token — the paper's middle ground.
package naivebayes

import (
	"fmt"
	"math"

	"pkgstream/internal/metrics"
	"pkgstream/internal/route"
)

// Sample is one training document: a bag of tokens with a class label.
type Sample struct {
	Tokens []uint64
	Class  int
}

// Model is the sequential multinomial naive Bayes baseline: exact
// co-occurrence counts of (token, class) plus class priors, with Laplace
// smoothing over a fixed vocabulary size.
type Model struct {
	classes int
	vocab   uint64
	alpha   float64

	counts      map[uint64][]int64 // token → per-class occurrence counts
	classDocs   []int64
	classTokens []int64
	docs        int64
}

// NewModel returns an empty model for the given number of classes, a
// vocabulary of `vocab` distinct tokens (used for smoothing), and Laplace
// parameter alpha. It panics on non-positive arguments.
func NewModel(classes int, vocab uint64, alpha float64) *Model {
	if classes <= 0 || vocab == 0 || alpha <= 0 {
		panic("naivebayes: NewModel needs positive classes, vocab and alpha")
	}
	return &Model{
		classes:     classes,
		vocab:       vocab,
		alpha:       alpha,
		counts:      make(map[uint64][]int64),
		classDocs:   make([]int64, classes),
		classTokens: make([]int64, classes),
	}
}

// Train incorporates one sample. It panics on an out-of-range class.
func (m *Model) Train(s Sample) {
	if s.Class < 0 || s.Class >= m.classes {
		panic(fmt.Sprintf("naivebayes: class %d out of range", s.Class))
	}
	m.docs++
	m.classDocs[s.Class]++
	for _, t := range s.Tokens {
		c := m.counts[t]
		if c == nil {
			c = make([]int64, m.classes)
			m.counts[t] = c
		}
		c[s.Class]++
		m.classTokens[s.Class]++
	}
}

// TokenCount returns the exact count of token under class.
func (m *Model) TokenCount(token uint64, class int) int64 {
	if c := m.counts[token]; c != nil {
		return c[class]
	}
	return 0
}

// Docs returns the number of training samples seen.
func (m *Model) Docs() int64 { return m.docs }

// logLikelihood computes the smoothed log posterior of the class given
// per-token count lookups, shared between the sequential and distributed
// implementations so their predictions agree exactly.
func logLikelihood(tokens []uint64, class int, lookup func(token uint64, class int) int64,
	classDocs, classTokens []int64, docs int64, vocab uint64, alpha float64) float64 {
	if docs == 0 {
		return 0
	}
	lp := math.Log((float64(classDocs[class]) + alpha) / (float64(docs) + alpha*float64(len(classDocs))))
	den := float64(classTokens[class]) + alpha*float64(vocab)
	for _, t := range tokens {
		lp += math.Log((float64(lookup(t, class)) + alpha) / den)
	}
	return lp
}

// LogPosterior returns the (unnormalized) log posterior of each class.
func (m *Model) LogPosterior(tokens []uint64) []float64 {
	out := make([]float64, m.classes)
	for c := range out {
		out[c] = logLikelihood(tokens, c, m.TokenCount, m.classDocs, m.classTokens,
			m.docs, m.vocab, m.alpha)
	}
	return out
}

// Predict returns the most likely class (lowest index on ties).
func (m *Model) Predict(tokens []uint64) int {
	return argmax(m.LogPosterior(tokens))
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Strategy selects the routing of token counters to workers.
type Strategy int

// Routing strategies of §VI.A.
const (
	// ByPKG: each token on ≤2 workers; queries probe 2.
	ByPKG Strategy = iota
	// ByKey: each token on 1 worker; load inherits the token skew.
	ByKey
	// ByShuffle: a token may be anywhere; queries broadcast to all W.
	ByShuffle
)

// Distributed is the vertically parallelized classifier: per-token
// counters live on workers chosen by the partitioning strategy, while the
// coordinator keeps only the O(classes) aggregate statistics every
// message passes through anyway.
type Distributed struct {
	classes int
	vocab   uint64
	alpha   float64

	workers []map[uint64][]int64
	part    route.Router
	pkg     *route.PKG
	view    *metrics.Load
	loads   *metrics.Load

	classDocs   []int64
	classTokens []int64
	docs        int64
}

// NewDistributed returns a distributed classifier over w workers.
func NewDistributed(w, classes int, vocab uint64, alpha float64, strategy Strategy, seed uint64) *Distributed {
	if w <= 0 {
		panic("naivebayes: NewDistributed with w <= 0")
	}
	if classes <= 0 || vocab == 0 || alpha <= 0 {
		panic("naivebayes: NewDistributed needs positive classes, vocab and alpha")
	}
	d := &Distributed{
		classes:     classes,
		vocab:       vocab,
		alpha:       alpha,
		workers:     make([]map[uint64][]int64, w),
		loads:       metrics.NewLoad(w),
		classDocs:   make([]int64, classes),
		classTokens: make([]int64, classes),
	}
	for i := range d.workers {
		d.workers[i] = make(map[uint64][]int64)
	}
	switch strategy {
	case ByPKG:
		d.view = metrics.NewLoad(w)
		d.pkg = route.NewPKG(w, 2, seed, d.view)
		d.part = d.pkg
	case ByKey:
		d.part = route.NewKeyGrouping(w, seed)
	case ByShuffle:
		d.part = route.NewShuffleGrouping(w, 0)
	default:
		panic("naivebayes: unknown strategy")
	}
	return d
}

// Train routes each token occurrence of the sample to a worker counter.
func (d *Distributed) Train(s Sample) {
	if s.Class < 0 || s.Class >= d.classes {
		panic(fmt.Sprintf("naivebayes: class %d out of range", s.Class))
	}
	d.docs++
	d.classDocs[s.Class]++
	for _, t := range s.Tokens {
		w := d.part.Route(t)
		if d.view != nil {
			d.view.Add(w)
		}
		d.loads.Add(w)
		c := d.workers[w][t]
		if c == nil {
			c = make([]int64, d.classes)
			d.workers[w][t] = c
		}
		c[s.Class]++
		d.classTokens[s.Class]++
	}
}

// probeSet returns the workers that may hold counters for token.
func (d *Distributed) probeSet(token uint64) []int {
	return route.ProbeSet(d.part, token)
}

// ProbesPerToken returns how many workers a query for token touches.
func (d *Distributed) ProbesPerToken(token uint64) int { return len(d.probeSet(token)) }

// TokenCount sums the partial counters of token under class across the
// token's probe set.
func (d *Distributed) TokenCount(token uint64, class int) int64 {
	var sum int64
	for _, w := range d.probeSet(token) {
		if c := d.workers[w][token]; c != nil {
			sum += c[class]
		}
	}
	return sum
}

// LogPosterior returns the per-class log posterior computed from the
// distributed counters. It equals the sequential model's exactly when
// trained on the same stream.
func (d *Distributed) LogPosterior(tokens []uint64) []float64 {
	out := make([]float64, d.classes)
	for c := range out {
		out[c] = logLikelihood(tokens, c, d.TokenCount, d.classDocs, d.classTokens,
			d.docs, d.vocab, d.alpha)
	}
	return out
}

// Predict returns the most likely class.
func (d *Distributed) Predict(tokens []uint64) int {
	return argmax(d.LogPosterior(tokens))
}

// WorkerLoads returns how many token updates each worker absorbed.
func (d *Distributed) WorkerLoads() []int64 { return d.loads.Snapshot() }

// Imbalance returns max − avg of the worker loads.
func (d *Distributed) Imbalance() float64 { return d.loads.Imbalance() }

// CounterFootprint returns the total number of (token, worker) counter
// vectors held — O(K) for key grouping, ≤2K for PKG, up to W·K for
// shuffle (§III.A).
func (d *Distributed) CounterFootprint() int {
	n := 0
	for _, m := range d.workers {
		n += len(m)
	}
	return n
}

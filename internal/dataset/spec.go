// Package dataset synthesizes the workloads of the paper's evaluation
// (Table I). The original datasets (Wikipedia page views, Twitter tweets,
// cashtags, SNAP graphs) are proprietary or impractically large to ship,
// so each is replaced by a generator matched on the statistics the paper
// itself reports and analyzes: the number of messages m, the number of
// distinct keys K, and the maximum key probability p1 — the quantity that
// drives the paper's entire analysis (good balance is achievable only
// while the number of workers stays below O(1/p1), Section IV).
//
// Four generator families cover all eight datasets:
//
//   - Zipf streams with the exponent solved so that P(top key) = p1
//     exactly (WP, TW, CT, SL1, SL2).
//   - Log-normal streams using the paper's own fitted parameters
//     (LN1, LN2), with the head pinned to the reported p1.
//   - Drifting streams, which periodically rotate the key-popularity
//     ranking to emulate the weekly churn of hot cashtags (CT).
//   - Graph edge streams with independently skewed out-degree (source
//     vertex) and in-degree (destination vertex) distributions
//     (LJ, SL1, SL2), used for the paper's Q3 robustness experiment.
package dataset

import (
	"fmt"
	"math"
)

// Kind identifies the generator family of a Spec.
type Kind int

// Generator families.
const (
	// Zipf is a stationary Zipf stream with exponent solved from (K, p1).
	Zipf Kind = iota
	// LogNormal draws key popularity weights from a log-normal
	// distribution with the Spec's Mu/Sigma, head pinned to P1.
	LogNormal
	// Drift is a Zipf stream whose rank→key mapping rotates every
	// DriftEveryHours, shifting which keys are hot (cashtag-style).
	Drift
	// Graph is an edge stream: Key is the (skewed) destination vertex and
	// SrcKey the (skewed) source vertex of each edge.
	Graph
)

// String returns the generator family name.
func (k Kind) String() string {
	switch k {
	case Zipf:
		return "zipf"
	case LogNormal:
		return "lognormal"
	case Drift:
		return "drift"
	case Graph:
		return "graph"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one dataset: its published statistics and the generator
// parameters used to reproduce them.
type Spec struct {
	Name   string
	Symbol string

	// Messages is the stream length m (Table I "Messages").
	Messages int64
	// Keys is the size of the key universe K (Table I "Keys").
	Keys uint64
	// P1 is the probability of the most frequent key (Table I "p1(%)",
	// here as a fraction).
	P1 float64

	Kind Kind

	// Mu and Sigma parameterize the log-normal key weights (LN1, LN2).
	Mu, Sigma float64

	// DriftEveryHours is the popularity-rotation period for Drift.
	DriftEveryHours float64

	// OutP1 is the probability of the most frequent *source* key for
	// Graph streams (the out-degree skew projected onto the sources).
	OutP1 float64

	// DurationHours is the simulated wall-clock span of the stream,
	// matching the time axes of the paper's Figure 3.
	DurationHours float64
}

// The paper's eight datasets at full scale (Table I).
var (
	// WP is the Wikipedia page-view log: one day of visits, keyed by URL.
	WP = Spec{Name: "Wikipedia", Symbol: "WP", Messages: 22_000_000, Keys: 2_900_000,
		P1: 0.0932, Kind: Zipf, DurationHours: 40}
	// TW is the Twitter July 2012 sample, keyed by tweet word.
	TW = Spec{Name: "Twitter", Symbol: "TW", Messages: 1_200_000_000, Keys: 31_000_000,
		P1: 0.0267, Kind: Zipf, DurationHours: 30}
	// CT is the cashtag stream, whose hot keys drift week to week.
	CT = Spec{Name: "Cashtags", Symbol: "CT", Messages: 690_000, Keys: 2_900,
		P1: 0.0329, Kind: Drift, DriftEveryHours: 168, DurationHours: 650}
	// LN1 is the first Orkut-fitted log-normal synthetic.
	LN1 = Spec{Name: "Synthetic 1", Symbol: "LN1", Messages: 10_000_000, Keys: 16_000,
		P1: 0.1471, Kind: LogNormal, Mu: 1.789, Sigma: 2.366, DurationHours: 24}
	// LN2 is the second Orkut-fitted log-normal synthetic.
	LN2 = Spec{Name: "Synthetic 2", Symbol: "LN2", Messages: 10_000_000, Keys: 1_100,
		P1: 0.0701, Kind: LogNormal, Mu: 2.245, Sigma: 1.133, DurationHours: 24}
	// LJ is the LiveJournal social graph as an edge stream.
	LJ = Spec{Name: "LiveJournal", Symbol: "LJ", Messages: 69_000_000, Keys: 4_900_000,
		P1: 0.0029, Kind: Graph, OutP1: 0.0029, DurationHours: 24}
	// SL1 is the Slashdot0811 graph as an edge stream.
	SL1 = Spec{Name: "Slashdot0811", Symbol: "SL1", Messages: 905_000, Keys: 77_000,
		P1: 0.0328, Kind: Graph, OutP1: 0.0328, DurationHours: 24}
	// SL2 is the Slashdot0902 graph as an edge stream.
	SL2 = Spec{Name: "Slashdot0902", Symbol: "SL2", Messages: 948_000, Keys: 82_000,
		P1: 0.0311, Kind: Graph, OutP1: 0.0311, DurationHours: 24}
)

// All lists the paper's datasets in Table I order.
var All = []Spec{WP, TW, CT, LN1, LN2, LJ, SL1, SL2}

// BySymbol returns the Spec with the given Table I symbol.
func BySymbol(symbol string) (Spec, error) {
	for _, s := range All {
		if s.Symbol == symbol {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown symbol %q", symbol)
}

// WithCap returns a copy of the Spec scaled down so that it has at most
// maxMessages messages. The key universe shrinks by the same factor
// (floored at 100 keys) so the stream keeps its shape, and p1 — the
// statistic that determines every load-balance result in the paper — is
// preserved exactly. Log-normal specs keep their full key universe: their
// K (16k, 1.1k) is already small, and the head of a log-normal draw over
// a much smaller K would no longer resemble the paper's distribution.
// Specs already within the cap are returned unchanged.
func (s Spec) WithCap(maxMessages int64) Spec {
	if maxMessages <= 0 {
		panic("dataset: WithCap with non-positive cap")
	}
	if s.Messages <= maxMessages {
		return s
	}
	f := float64(maxMessages) / float64(s.Messages)
	s.Messages = maxMessages
	if s.Kind == LogNormal {
		return s
	}
	keys := uint64(math.Round(float64(s.Keys) * f))
	if keys < 100 {
		keys = 100
	}
	// p1 cannot be below uniform on the shrunken universe.
	if s.P1 < 1/float64(keys) {
		keys = uint64(1/s.P1) + 1
	}
	s.Keys = keys
	return s
}

// Validate reports whether the Spec's parameters are coherent.
func (s Spec) Validate() error {
	if s.Messages <= 0 {
		return fmt.Errorf("dataset %s: non-positive message count", s.Symbol)
	}
	if s.Keys == 0 {
		return fmt.Errorf("dataset %s: empty key universe", s.Symbol)
	}
	if s.P1 <= 0 || s.P1 >= 1 {
		return fmt.Errorf("dataset %s: p1 = %v out of (0,1)", s.Symbol, s.P1)
	}
	if s.P1 < 1/float64(s.Keys)/2 {
		return fmt.Errorf("dataset %s: p1 = %v below uniform 1/K", s.Symbol, s.P1)
	}
	if s.Kind == Drift && s.DriftEveryHours <= 0 {
		return fmt.Errorf("dataset %s: drift stream needs a positive period", s.Symbol)
	}
	if s.Kind == Graph && (s.OutP1 <= 0 || s.OutP1 >= 1) {
		return fmt.Errorf("dataset %s: graph stream needs OutP1 in (0,1)", s.Symbol)
	}
	if s.DurationHours <= 0 {
		return fmt.Errorf("dataset %s: non-positive duration", s.Symbol)
	}
	return nil
}

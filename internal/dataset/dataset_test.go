package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Symbol, err)
		}
	}
}

func TestBySymbol(t *testing.T) {
	s, err := BySymbol("WP")
	if err != nil || s.Name != "Wikipedia" {
		t.Fatalf("BySymbol(WP) = %v, %v", s, err)
	}
	if _, err := BySymbol("nope"); err == nil {
		t.Fatal("unknown symbol should error")
	}
}

func TestWithCap(t *testing.T) {
	s := WP.WithCap(220_000)
	if s.Messages != 220_000 {
		t.Fatalf("Messages = %d", s.Messages)
	}
	if s.Keys != 29_000 {
		t.Fatalf("Keys = %d, want 29000 (same 1%% factor)", s.Keys)
	}
	if s.P1 != WP.P1 {
		t.Fatal("WithCap changed p1")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// No-op when already under the cap.
	if got := CT.WithCap(1_000_000); got != CT {
		t.Fatal("WithCap scaled a spec already under the cap")
	}
	// Tiny caps keep a coherent universe.
	tiny := TW.WithCap(1000)
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithCap(0) did not panic")
		}
	}()
	WP.WithCap(0)
}

func TestStreamDeterminism(t *testing.T) {
	for _, spec := range []Spec{WP.WithCap(5000), LN2.WithCap(5000), CT.WithCap(5000), LJ.WithCap(5000)} {
		a := spec.Open(42)
		b := spec.Open(42)
		for i := 0; i < 5000; i++ {
			ma, oka := a.Next()
			mb, okb := b.Next()
			if ma != mb || oka != okb {
				t.Fatalf("%s: streams diverged at %d: %v vs %v", spec.Symbol, i, ma, mb)
			}
		}
	}
}

func TestStreamSeedSensitivity(t *testing.T) {
	spec := WP.WithCap(2000)
	a := spec.Open(1)
	b := spec.Open(2)
	same := 0
	for i := 0; i < 2000; i++ {
		ma, _ := a.Next()
		mb, _ := b.Next()
		if ma.Key == mb.Key {
			same++
		}
	}
	if same == 2000 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamLengthAndTimestamps(t *testing.T) {
	spec := LN1.WithCap(10_000)
	s := spec.Open(7)
	if s.Len() != 10_000 {
		t.Fatalf("Len = %d", s.Len())
	}
	var n int64
	prev := -1.0
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		if m.T < prev {
			t.Fatalf("timestamps not monotone at message %d", n)
		}
		if m.T < 0 || m.T > spec.DurationHours {
			t.Fatalf("timestamp %v outside [0, %v]", m.T, spec.DurationHours)
		}
		prev = m.T
		n++
	}
	if n != spec.Messages {
		t.Fatalf("produced %d messages, want %d", n, spec.Messages)
	}
	// Exhausted stream keeps returning false.
	if _, ok := s.Next(); ok {
		t.Fatal("stream returned a message after exhaustion")
	}
}

func TestKeysWithinUniverse(t *testing.T) {
	for _, spec := range []Spec{WP.WithCap(20_000), LN2.WithCap(20_000), CT.WithCap(20_000), SL1.WithCap(20_000)} {
		s := spec.Open(3)
		for {
			m, ok := s.Next()
			if !ok {
				break
			}
			if m.Key < 1 || m.Key > spec.Keys {
				t.Fatalf("%s: key %d outside [1, %d]", spec.Symbol, m.Key, spec.Keys)
			}
			if m.SrcKey < 1 || m.SrcKey > spec.Keys {
				t.Fatalf("%s: src key %d outside [1, %d]", spec.Symbol, m.SrcKey, spec.Keys)
			}
		}
	}
}

// TestEmpiricalP1MatchesSpec is the core fidelity test: every synthetic
// dataset must realize the p1 the paper reports in Table I.
func TestEmpiricalP1MatchesSpec(t *testing.T) {
	for _, full := range All {
		spec := full.WithCap(400_000)
		st := Measure(spec.Open(11), 0)
		if st.Messages != spec.Messages {
			t.Fatalf("%s: measured %d messages", spec.Symbol, st.Messages)
		}
		relErr := math.Abs(st.P1-spec.P1) / spec.P1
		// Sampling noise on p1 at 400k messages is well under 5%.
		if relErr > 0.05 {
			t.Errorf("%s: empirical p1 = %.4f, spec %.4f (rel err %.1f%%)",
				spec.Symbol, st.P1, spec.P1, 100*relErr)
		}
	}
}

func TestDistinctKeysReasonable(t *testing.T) {
	// The number of observed distinct keys must be positive, at most the
	// universe, and a significant fraction of it for long streams.
	spec := LN2.WithCap(200_000) // K = 1.1k, m = 200k: all keys should show up
	st := Measure(spec.Open(5), 0)
	if st.DistinctKeys <= 0 || uint64(st.DistinctKeys) > spec.Keys {
		t.Fatalf("distinct = %d with K = %d", st.DistinctKeys, spec.Keys)
	}
	if float64(st.DistinctKeys) < 0.5*float64(spec.Keys) {
		t.Errorf("only %d of %d keys observed in a long stream", st.DistinctKeys, spec.Keys)
	}
}

func TestDriftRotatesHotKey(t *testing.T) {
	spec := CT.WithCap(300_000) // duration 650h, drift every 168h → ~4 epochs
	s := spec.Open(9)
	perEpoch := make(map[int]map[uint64]int64)
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		e := int(m.T / spec.DriftEveryHours)
		if perEpoch[e] == nil {
			perEpoch[e] = make(map[uint64]int64)
		}
		perEpoch[e][m.Key]++
	}
	if len(perEpoch) < 3 {
		t.Fatalf("only %d epochs observed", len(perEpoch))
	}
	top := func(c map[uint64]int64) uint64 {
		var bk uint64
		var bc int64 = -1
		for k, v := range c {
			if v > bc {
				bk, bc = k, v
			}
		}
		return bk
	}
	t0, t1 := top(perEpoch[0]), top(perEpoch[1])
	if t0 == t1 {
		t.Errorf("hot key did not change across drift epochs (key %d)", t0)
	}
}

func TestGraphStreamSkewOnBothEnds(t *testing.T) {
	spec := LJ.WithCap(200_000)
	s := spec.Open(13)
	in := make(map[uint64]int64)
	out := make(map[uint64]int64)
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		in[m.Key]++
		out[m.SrcKey]++
	}
	maxOf := func(c map[uint64]int64) float64 {
		var best int64
		for _, v := range c {
			if v > best {
				best = v
			}
		}
		return float64(best) / float64(spec.Messages)
	}
	if p := maxOf(in); math.Abs(p-spec.P1)/spec.P1 > 0.25 {
		t.Errorf("in-degree p1 = %v, want ≈%v", p, spec.P1)
	}
	if p := maxOf(out); math.Abs(p-spec.OutP1)/spec.OutP1 > 0.25 {
		t.Errorf("out-degree p1 = %v, want ≈%v", p, spec.OutP1)
	}
}

func TestZipfAndGraphKeysDiffer(t *testing.T) {
	// For graph streams Key and SrcKey must be (mostly) independent;
	// for non-graph streams they are identical.
	g := LJ.WithCap(10_000).Open(1)
	diff := 0
	for {
		m, ok := g.Next()
		if !ok {
			break
		}
		if m.Key != m.SrcKey {
			diff++
		}
	}
	if diff < 5000 {
		t.Errorf("graph stream Key == SrcKey in %d/10000 messages", 10000-diff)
	}
	z := WP.WithCap(1000).Open(1)
	for {
		m, ok := z.Next()
		if !ok {
			break
		}
		if m.Key != m.SrcKey {
			t.Fatal("zipf stream SrcKey differs from Key")
		}
	}
}

func TestMeasureCap(t *testing.T) {
	s := WP.WithCap(50_000).Open(1)
	st := Measure(s, 1000)
	if st.Messages != 1000 {
		t.Fatalf("Measure cap ignored: %d", st.Messages)
	}
}

func TestPinHead(t *testing.T) {
	check := func(name string, w []float64, p1 float64) {
		t.Helper()
		pinHead(w, p1)
		sum, max := 0.0, 0.0
		for _, x := range w {
			if x < 0 {
				t.Fatalf("%s: negative weight %v", name, x)
			}
			if x > max {
				max = x
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: weights sum to %v after pinning", name, sum)
		}
		if math.Abs(max-p1) > 1e-9 {
			t.Fatalf("%s: max weight %v, want p1 = %v", name, max, p1)
		}
	}
	// Deficit case: head grows, tail shrinks proportionally.
	w := []float64{0.2, 0.16, 0.16, 0.16, 0.16, 0.16}
	check("deficit", w, 0.3)
	if math.Abs(w[1]/w[2]-1) > 1e-12 {
		t.Fatal("deficit pin changed tail shape")
	}
	// Surplus case: one key ends at p1, tail absorbs the surplus.
	check("surplus", []float64{0.6, 0.1, 0.1, 0.1, 0.05, 0.05}, 0.3)
	// Cascade case: a huge head at small K clamps several keys.
	check("cascade", []float64{0.9, 0.04, 0.03, 0.02, 0.01}, 0.25)
}

func TestWithCapPreservesValidityProperty(t *testing.T) {
	f := func(cap32 uint32) bool {
		capMsgs := int64(cap32%10_000_000) + 1
		for _, s := range All {
			if s.WithCap(capMsgs).Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZipfStream(b *testing.B) {
	s := WP.WithCap(int64(b.N) + 1).Open(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}

func BenchmarkGraphStream(b *testing.B) {
	s := LJ.WithCap(int64(b.N) + 1).Open(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}

package dataset

import (
	"fmt"

	"pkgstream/internal/rng"
)

// Msg is one stream message: a key drawn from the dataset's popularity
// distribution, the grouping key seen by the *sources* (different from
// Key only for graph streams, where sources are keyed by the edge's
// source vertex while workers are keyed by its destination vertex), and a
// simulated timestamp in hours since stream start.
type Msg struct {
	Key    uint64
	SrcKey uint64
	T      float64
}

// Stream produces the messages of a dataset in timestamp order.
// Implementations are deterministic functions of (Spec, seed) and are not
// safe for concurrent use.
type Stream interface {
	// Next returns the next message, or ok == false when exhausted.
	Next() (m Msg, ok bool)
	// Len returns the total number of messages the stream will produce.
	Len() int64
	// Spec returns the dataset description this stream was opened from.
	Spec() Spec
}

// Open returns a deterministic Stream for the Spec. It panics if the Spec
// does not validate (specs constructed via the package variables and
// WithCap always do).
func (s Spec) Open(seed uint64) Stream {
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("dataset: Open: %v", err))
	}
	src := rng.NewStream(seed, uint64(len(s.Symbol))<<32^uint64(s.Symbol[0]))
	base := base{spec: s, tick: s.DurationHours / float64(s.Messages)}
	switch s.Kind {
	case Zipf:
		z := rng.NewZipf(src, rng.SolveZipfExponent(s.Keys, s.P1), s.Keys)
		return &zipfStream{base: base, z: z}
	case LogNormal:
		w := rng.LogNormalWeights(src, s.Mu, s.Sigma, int(s.Keys))
		pinHead(w, s.P1)
		a, err := rng.NewAlias(src, w)
		if err != nil {
			panic(fmt.Sprintf("dataset: alias for %s: %v", s.Symbol, err))
		}
		return &aliasStream{base: base, a: a}
	case Drift:
		// The rotation gives each key its moment: a key is hot for one
		// epoch only, so its whole-stream frequency is its within-epoch
		// frequency divided by the number of epochs. Solve the
		// within-epoch head so the *whole-stream* p1 matches Table I.
		epochs := s.DurationHours / s.DriftEveryHours
		if epochs < 1 {
			epochs = 1
		}
		p1 := s.P1 * epochs
		if p1 > 0.9 {
			p1 = 0.9
		}
		z := rng.NewZipf(src, rng.SolveZipfExponent(s.Keys, p1), s.Keys)
		return &driftStream{
			base:   base,
			z:      z,
			stride: s.Keys/7 + 1,
		}
	case Graph:
		in := rng.NewZipf(src, rng.SolveZipfExponent(s.Keys, s.P1), s.Keys)
		out := rng.NewZipf(src.Fork(), rng.SolveZipfExponent(s.Keys, s.OutP1), s.Keys)
		return &graphStream{base: base, in: in, out: out}
	default:
		panic(fmt.Sprintf("dataset: unknown kind %v", s.Kind))
	}
}

// pinHead adjusts a normalized, descending weight vector so the maximum
// weight is exactly p1, matching the log-normal synthetics to the p1 the
// paper reports for them.
//
// When the natural head exceeds p1, the surplus is spread uniformly over
// the tail — this keeps a *single* key at p1 and the tail's shape
// intact, rather than creating an artificial plateau of equally hot
// keys. If even that pushes the second weight past p1 (extreme draws at
// tiny K), the excess cascades: weights are clamped to p1 one by one and
// the leftover is spread over the rest. When the natural head is below
// p1, the tail is scaled down to make room. Requires p1·len(w) ≥ 1
// (guaranteed by Spec.Validate); the result sums to 1 with max = p1.
func pinHead(w []float64, p1 float64) {
	if len(w) < 2 {
		w[0] = 1
		return
	}
	if w[0] <= p1 {
		// Deficit: grow the head, shrink the tail proportionally.
		scale := (1 - p1) / (1 - w[0])
		w[0] = p1
		for i := 1; i < len(w); i++ {
			w[i] *= scale
		}
		return
	}
	// Surplus: cascade heads down to p1, spreading each surplus evenly
	// over the remaining tail. One iteration is the common case.
	for i := 0; i < len(w); i++ {
		if w[i] <= p1 {
			break
		}
		tail := len(w) - i - 1
		if tail == 0 {
			w[i] = p1 // p1·K < 1 would be needed to get here; Validate forbids it
			break
		}
		share := (w[i] - p1) / float64(tail)
		w[i] = p1
		for j := i + 1; j < len(w); j++ {
			w[j] += share
		}
	}
}

type base struct {
	spec Spec
	i    int64
	tick float64 // hours per message
}

func (b *base) Len() int64 { return b.spec.Messages }

func (b *base) Spec() Spec { return b.spec }

// step advances the message counter and returns (timestamp, ok).
func (b *base) step() (float64, bool) {
	if b.i >= b.spec.Messages {
		return 0, false
	}
	t := float64(b.i) * b.tick
	b.i++
	return t, true
}

type zipfStream struct {
	base
	z *rng.Zipf
}

func (s *zipfStream) Next() (Msg, bool) {
	t, ok := s.step()
	if !ok {
		return Msg{}, false
	}
	k := s.z.Next()
	return Msg{Key: k, SrcKey: k, T: t}, true
}

type aliasStream struct {
	base
	a *rng.Alias
}

func (s *aliasStream) Next() (Msg, bool) {
	t, ok := s.step()
	if !ok {
		return Msg{}, false
	}
	k := uint64(s.a.Next()) + 1
	return Msg{Key: k, SrcKey: k, T: t}, true
}

// driftStream rotates the rank→key mapping every DriftEveryHours: the
// popularity *shape* is stationary but the identity of the hot keys
// changes, as with weekly cashtag churn. The rotation stride is coprime
// enough with K to relabel the whole head each epoch.
type driftStream struct {
	base
	z      *rng.Zipf
	stride uint64
}

func (s *driftStream) Next() (Msg, bool) {
	t, ok := s.step()
	if !ok {
		return Msg{}, false
	}
	epoch := uint64(t / s.spec.DriftEveryHours)
	rank := s.z.Next()
	k := (rank-1+epoch*s.stride)%s.spec.Keys + 1
	return Msg{Key: k, SrcKey: k, T: t}, true
}

// graphStream emits synthetic directed edges with power-law in- and
// out-degree distributions (Chung–Lu style, degrees drawn independently).
// Key is the destination vertex — the key the *workers* group on when
// computing per-vertex in-degree statistics — and SrcKey is the source
// vertex — the key the *sources* are partitioned on in the paper's Q3
// experiment, projecting the out-degree skew onto the sources.
type graphStream struct {
	base
	in  *rng.Zipf
	out *rng.Zipf
}

func (s *graphStream) Next() (Msg, bool) {
	t, ok := s.step()
	if !ok {
		return Msg{}, false
	}
	return Msg{Key: s.in.Next(), SrcKey: s.out.Next(), T: t}, true
}

// Stats summarizes an observed stream prefix: it is used to regenerate
// Table I and to verify that synthetic streams match their Spec.
type Stats struct {
	Messages     int64
	DistinctKeys int64
	// P1 is the empirical frequency of the most frequent key.
	P1 float64
	// TopKey is the key that realized P1.
	TopKey uint64
}

// Measure consumes up to maxMessages messages (or the whole stream if
// maxMessages <= 0) and returns empirical statistics.
func Measure(s Stream, maxMessages int64) Stats {
	counts := make(map[uint64]int64)
	var n int64
	for {
		if maxMessages > 0 && n >= maxMessages {
			break
		}
		m, ok := s.Next()
		if !ok {
			break
		}
		counts[m.Key]++
		n++
	}
	st := Stats{Messages: n, DistinctKeys: int64(len(counts))}
	var best int64
	for k, c := range counts {
		if c > best || (c == best && (st.TopKey == 0 || k < st.TopKey)) {
			best = c
			st.TopKey = k
		}
	}
	if n > 0 {
		st.P1 = float64(best) / float64(n)
	}
	return st
}

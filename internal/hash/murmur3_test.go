package hash

import (
	"fmt"
	"math/bits"
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3 x64-128 produced by the canonical C++
// implementation (and cross-checked against the widely used Python mmh3 and
// Guava implementations).
var murmurVectors = []struct {
	in   string
	seed uint32
	h1   uint64
	h2   uint64
}{
	{"", 0, 0x0000000000000000, 0x0000000000000000},
	{"hello", 0, 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
	{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
	{"19 Jan 2038 at 3:14:07 AM", 0, 0xb89e5988b737affc, 0x664fc2950231b2cb},
	{"The quick brown fox jumps over the lazy dog.", 0, 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
	{"hello", 1, 0xa78ddff5adae8d10, 0x128900ef20900135},
}

func TestSum128Vectors(t *testing.T) {
	for _, v := range murmurVectors {
		h1, h2 := Sum128([]byte(v.in), v.seed)
		if h1 != v.h1 || h2 != v.h2 {
			t.Errorf("Sum128(%q, %d) = (%#x, %#x), want (%#x, %#x)",
				v.in, v.seed, h1, h2, v.h1, v.h2)
		}
	}
}

func TestSum64MatchesSum128(t *testing.T) {
	for _, v := range murmurVectors {
		if got := Sum64([]byte(v.in), v.seed); got != v.h1 {
			t.Errorf("Sum64(%q, %d) = %#x, want %#x", v.in, v.seed, got, v.h1)
		}
	}
}

func TestString64MatchesSum64(t *testing.T) {
	f := func(s string, seed uint32) bool {
		return String64(s, seed) == Sum64([]byte(s), seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSum128AllTailLengths(t *testing.T) {
	// Exercise every tail length 0..31 to cover both the block loop and
	// every fallthrough branch; the hash must be deterministic and change
	// when any byte changes.
	base := make([]byte, 32)
	for i := range base {
		base[i] = byte(i * 7)
	}
	seen := make(map[[2]uint64]int)
	for n := 0; n <= 31; n++ {
		h1, h2 := Sum128(base[:n], 42)
		g1, g2 := Sum128(base[:n], 42)
		if h1 != g1 || h2 != g2 {
			t.Fatalf("length %d: non-deterministic hash", n)
		}
		if prev, dup := seen[[2]uint64{h1, h2}]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[[2]uint64{h1, h2}] = n
	}
}

func TestSum128SingleBitChanges(t *testing.T) {
	data := []byte("partial key grouping balances skewed streams")
	h1, h2 := Sum128(data, 0)
	for i := range data {
		for b := 0; b < 8; b++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << b
			g1, g2 := Sum128(mut, 0)
			if g1 == h1 && g2 == h2 {
				t.Fatalf("flipping bit %d of byte %d did not change hash", b, i)
			}
		}
	}
}

func TestSeedChangesHash(t *testing.T) {
	data := []byte("seed sensitivity")
	h0 := Sum64(data, 0)
	h1 := Sum64(data, 1)
	if h0 == h1 {
		t.Fatal("seeds 0 and 1 produced identical hashes")
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	// With 64 trials per bit position the mean must be well inside
	// [24, 40] for a good mixer.
	const trials = 64
	for bit := 0; bit < 64; bit++ {
		total := 0
		for trial := 0; trial < trials; trial++ {
			x := Fmix64(uint64(trial)*0x9e3779b97f4a7c15 + 12345)
			a := Mix64(x, 7)
			b := Mix64(x^(1<<bit), 7)
			total += bits.OnesCount64(a ^ b)
		}
		mean := float64(total) / trials
		if mean < 24 || mean > 40 {
			t.Errorf("bit %d: avalanche mean %.1f outside [24,40]", bit, mean)
		}
	}
}

func TestMix64SeedIndependence(t *testing.T) {
	// Different seeds must induce (nearly) independent hash functions:
	// the fraction of keys mapped to the same bucket out of n under two
	// seeds should be close to 1/n.
	const n = 16
	const keys = 100000
	same := 0
	for k := uint64(0); k < keys; k++ {
		if Mix64(k, 1)%n == Mix64(k, 2)%n {
			same++
		}
	}
	frac := float64(same) / keys
	if frac < 1.0/n*0.7 || frac > 1.0/n*1.3 {
		t.Errorf("seed collision fraction %.4f, want ≈ %.4f", frac, 1.0/n)
	}
}

func TestMix64BucketUniformity(t *testing.T) {
	// Chi-squared-ish check: hashing 0..N-1 into 10 buckets must be
	// close to uniform.
	const n = 10
	const keys = 200000
	var counts [n]int
	for k := uint64(0); k < keys; k++ {
		counts[Mix64(k, 99)%n]++
	}
	want := float64(keys) / n
	for i, c := range counts {
		if float64(c) < want*0.95 || float64(c) > want*1.05 {
			t.Errorf("bucket %d: count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestFmix64Bijective(t *testing.T) {
	// fmix64 is a bijection; sample check for collisions on a large set.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Fmix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("fmix64 collision: %d and %d -> %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func BenchmarkSum128_16B(b *testing.B)  { benchSum(b, 16) }
func BenchmarkSum128_64B(b *testing.B)  { benchSum(b, 64) }
func BenchmarkSum128_1KiB(b *testing.B) { benchSum(b, 1024) }

func benchSum(b *testing.B, n int) {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum128(data, 0)
	}
}

func BenchmarkMix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Mix64(uint64(i), 42)
	}
	_ = acc
}

func ExampleSum64() {
	fmt.Printf("%#x\n", Sum64([]byte("hello"), 0))
	// Output: 0xcbd8a7b341bd9b02
}

// Package hash provides the hashing primitives used by the stream
// partitioners: a from-scratch implementation of MurmurHash3 (x64, 128-bit
// variant) for byte and string keys, and cheap seeded 64-bit mixers for
// integer keys.
//
// The paper uses a 64-bit Murmur hash for key grouping "to minimize the
// probability of collision" (§V.B); routers in internal/route obtain
// their d candidate workers from d independently seeded hashes.
package hash

import "math/bits"

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// Sum128 computes the MurmurHash3 x64 128-bit hash of data with the given
// seed and returns the two 64-bit halves. It matches the reference
// MurmurHash3_x64_128 implementation by Austin Appleby.
func Sum128(data []byte, seed uint32) (uint64, uint64) {
	h1 := uint64(seed)
	h2 := uint64(seed)

	n := len(data)
	nblocks := n / 16

	// Body: process 16-byte blocks.
	for i := 0; i < nblocks; i++ {
		k1 := le64(data[i*16:])
		k2 := le64(data[i*16+8:])

		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1

		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2

		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail: up to 15 remaining bytes.
	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	// Finalization.
	h1 ^= uint64(n)
	h2 ^= uint64(n)

	h1 += h2
	h2 += h1

	h1 = fmix64(h1)
	h2 = fmix64(h2)

	h1 += h2
	h2 += h1

	return h1, h2
}

// Sum64 returns the first 64 bits of the Murmur3 x64-128 hash of data.
func Sum64(data []byte, seed uint32) uint64 {
	h1, _ := Sum128(data, seed)
	return h1
}

// String64 returns the first 64 bits of the Murmur3 x64-128 hash of s
// without allocating.
func String64(s string, seed uint32) uint64 {
	// The gc compiler does not allocate for this conversion when the
	// resulting slice does not escape; Sum128 does not retain it.
	return Sum64([]byte(s), seed)
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// fmix64 is the Murmur3 64-bit finalizer: a fast bijective mixer with
// strong avalanche behaviour.
func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Mix64 hashes a 64-bit integer key under a 64-bit seed. It applies the
// Murmur3 finalizer to the seed-perturbed key, which is the standard way to
// derive a family of independent hash functions over integer key IDs
// (one per choice d) without paying the full byte-oriented Murmur loop.
func Mix64(key, seed uint64) uint64 {
	return fmix64(key ^ (seed + 0x9e3779b97f4a7c15))
}

// Fmix64 exposes the raw finalizer for tests and samplers.
func Fmix64(k uint64) uint64 { return fmix64(k) }

package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-bucketed latency histogram (HDR-style): power-of-two major
// buckets subdivided into 2^histSubBits linear sub-buckets, so every
// bucket's width is at most 1/2^histSubBits ≈ 3.1% of its value. The
// layout is chosen so Observe is two atomic adds — one bucket
// increment, one sum add — with the bucket index computed from the
// value's bit length alone: constant memory, no locks, mergeable by
// bucket-wise addition, and quantiles that are exact up to the bucket
// width. Values are nanoseconds by convention, but nothing below
// depends on the unit.
const (
	// histSubBits is the linear subdivision of each power-of-two major
	// bucket: 2^5 = 32 sub-buckets, bounding the relative quantile
	// error at ~3.1%.
	histSubBits  = 5
	histSubCount = 1 << histSubBits

	// histMaxMajor caps the bucket table: values up to 2^(histMaxMajor+
	// histSubBits-1) — about 73 minutes in nanoseconds — resolve to a
	// real bucket, and everything beyond clamps into the last one
	// (counted, summed exactly, quantile saturated at HistMaxValue).
	histMaxMajor = 37

	// HistBuckets is the fixed bucket count of a Histogram.
	HistBuckets = (histMaxMajor + 1) * histSubCount

	// HistMaxValue is the largest value the histogram resolves without
	// clamping (the upper bound of the last bucket): 2^42 − 1 ns.
	HistMaxValue = int64(1)<<(histMaxMajor+histSubBits) - 1
)

// Histogram is a constant-memory, lock-free latency histogram. The
// zero value is ready to use; share one per series and call Observe
// from any number of goroutines. Reads (Snapshot) are wait-free and
// may run concurrently with writes — a snapshot taken mid-Observe can
// be off by the in-flight observation, never torn.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histIndex maps a value to its bucket. Values below histSubCount are
// their own bucket (the linear region, exact); above, the bucket is
// (major, sub) where major counts powers of two past the linear region
// and sub is the next histSubBits bits of the value — contiguous with
// the linear region by construction.
func histIndex(v int64) int {
	if v < histSubCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // k ≥ histSubBits
	idx := (k-histSubBits+1)<<histSubBits | int(v>>(k-histSubBits)&(histSubCount-1))
	if idx >= HistBuckets {
		return HistBuckets - 1
	}
	return idx
}

// HistBucketMax returns the inclusive upper bound of bucket i — the
// value Quantile reports when the requested rank lands in it. Values
// past the table clamp into the last bucket, so its bound doubles as
// the quantile saturation point (HistMaxValue).
func HistBucketMax(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	major := i >> histSubBits
	sub := int64(i & (histSubCount - 1))
	k := major + histSubBits - 1
	return (histSubCount+sub+1)<<(k-histSubBits) - 1
}

// Observe records one value: exactly two atomic adds on the hot path.
// Negative values (wall-clock skew on a remote hop) clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[histIndex(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot returns the histogram's current contents. It is safe while
// Observe runs; counts are read atomically bucket by bucket.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Sum = h.sum.Load()
	top := -1
	var counts [HistBuckets]int64
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			counts[i] = c
			s.Count += c
			top = i
		}
	}
	if top >= 0 {
		s.Counts = append([]int64(nil), counts[:top+1]...)
	}
	return s
}

// HistSnapshot is an immutable point-in-time view of a Histogram:
// bucket counts with trailing zeroes trimmed, the observation count,
// and the exact sum. Snapshots merge (cross-instance folds), subtract
// (interval rates from two reads), and answer quantiles.
type HistSnapshot struct {
	// Counts are the per-bucket observation counts, index-aligned with
	// the live histogram's buckets, trailing zero buckets trimmed.
	Counts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the exact sum of observed values (clamped at zero each).
	Sum int64
}

// Quantile returns the value at quantile p ∈ (0, 1] — the upper bound
// of the bucket holding the ⌈p·Count⌉-th smallest observation, exact
// to within the bucket width (≈3.1%). Zero observations yield 0;
// quantiles of clamped observations saturate at HistMaxValue. Quantile
// is monotone in p by construction.
func (s HistSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return HistBucketMax(i)
		}
	}
	return HistBucketMax(HistBuckets - 1)
}

// Mean returns the exact mean of the observed values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge returns the bucket-wise sum of two snapshots — the fold that
// turns per-instance histograms into a component total.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(o.Counts) > len(s.Counts) {
		s, o = o, s
	}
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	out.Counts = append([]int64(nil), s.Counts...)
	for i, c := range o.Counts {
		out.Counts[i] += c
	}
	return out
}

// Sub returns the bucket-wise difference s − o: the observations that
// landed between two reads of the same histogram, from which interval
// rates and interval quantiles derive. Buckets that went backwards
// (o from a different or reset histogram) clamp to zero.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Sum: s.Sum - o.Sum}
	out.Counts = append([]int64(nil), s.Counts...)
	for i, c := range o.Counts {
		if i >= len(out.Counts) {
			break
		}
		out.Counts[i] -= c
	}
	top := -1
	for i := range out.Counts {
		if out.Counts[i] < 0 {
			out.Counts[i] = 0
		}
		if out.Counts[i] != 0 {
			top = i
		}
		out.Count += out.Counts[i]
	}
	out.Counts = out.Counts[:top+1]
	if top < 0 {
		out.Counts = nil
	}
	return out
}

// Sparse returns the non-empty buckets as parallel (index, count)
// slices — the compact wire form of a snapshot.
func (s HistSnapshot) Sparse() (idx []uint32, counts []int64) {
	for i, c := range s.Counts {
		if c != 0 {
			idx = append(idx, uint32(i))
			counts = append(counts, c)
		}
	}
	return idx, counts
}

// FromSparse rebuilds a snapshot from its Sparse form. Out-of-range
// indexes clamp into the last bucket; the pair slices are read up to
// the shorter length.
func FromSparse(idx []uint32, counts []int64, sum int64) HistSnapshot {
	n := len(idx)
	if len(counts) < n {
		n = len(counts)
	}
	s := HistSnapshot{Sum: sum}
	for i := 0; i < n; i++ {
		j := int(idx[i])
		if j >= HistBuckets {
			j = HistBuckets - 1
		}
		if j >= len(s.Counts) {
			s.Counts = append(s.Counts, make([]int64, j+1-len(s.Counts))...)
		}
		s.Counts[j] += counts[i]
		s.Count += counts[i]
	}
	return s
}

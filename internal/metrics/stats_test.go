package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pkgstream/internal/rng"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("empty welford should be zero")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != int64(len(xs)) {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Var()-4) > 1e-12 {
		t.Errorf("Var = %v, want 4", w.Var())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", w.Std())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return w.Mean() == 0
		}
		mean := sum / float64(len(xs))
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {12.5, 1.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 10; i++ {
		r.Add(float64(i))
	}
	if r.N() != 10 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5.5) > 1e-12 {
		t.Errorf("Mean = %v, want 5.5", r.Mean())
	}
	// With fewer observations than capacity, percentiles are exact.
	if got := r.Percentile(100); got != 10 {
		t.Errorf("P100 = %v, want 10", got)
	}
	if got := r.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
}

func TestReservoirLargeStreamQuantiles(t *testing.T) {
	// A uniform [0,1) stream: sampled quantiles should be close to truth.
	r := NewReservoir(4096, 2)
	src := rng.New(3)
	for i := 0; i < 500000; i++ {
		r.Add(src.Float64())
	}
	if got := r.Percentile(50); math.Abs(got-0.5) > 0.03 {
		t.Errorf("P50 = %v, want ≈0.5", got)
	}
	if got := r.Percentile(99); math.Abs(got-0.99) > 0.01 {
		t.Errorf("P99 = %v, want ≈0.99", got)
	}
	if got := r.Mean(); math.Abs(got-0.5) > 0.005 {
		t.Errorf("Mean = %v, want ≈0.5 (mean is exact)", got)
	}
}

func TestReservoirPercentileSortedInternally(t *testing.T) {
	r := NewReservoir(8, 4)
	for _, x := range []float64{5, 1, 4, 2, 3} {
		r.Add(x)
	}
	got := r.Percentile(50)
	xs := []float64{1, 2, 3, 4, 5}
	sort.Float64s(xs)
	if want := Percentile(xs, 50); got != want {
		t.Errorf("P50 = %v, want %v", got, want)
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("empty Jaccard = %v, want 1", got)
	}
	a := []int32{1, 2, 3, 4}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("identical Jaccard = %v, want 1", got)
	}
	b := []int32{9, 9, 9, 9}
	if got := Jaccard(a, b); got != 0 {
		t.Errorf("disjoint Jaccard = %v, want 0", got)
	}
	// Half matching: matches=2, m=4 → 2/(8-2) = 1/3.
	c := []int32{1, 2, 9, 9}
	if got := Jaccard(a, c); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("half Jaccard = %v, want 1/3", got)
	}
}

func TestJaccardPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Jaccard did not panic")
		}
	}()
	Jaccard([]int32{1}, []int32{1, 2})
}

func TestJaccardRange(t *testing.T) {
	f := func(xs, ys []byte) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		a := make([]int32, n)
		b := make([]int32, n)
		for i := 0; i < n; i++ {
			a[i] = int32(xs[i] % 4)
			b[i] = int32(ys[i] % 4)
		}
		j := Jaccard(a, b)
		return j >= 0 && j <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

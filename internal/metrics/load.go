// Package metrics implements the measurement machinery shared by every
// experiment in the reproduction: per-worker load vectors, the paper's
// imbalance metric I(t) = max_i L_i(t) − avg_i L_i(t), time series of
// imbalance fractions, streaming moment estimators, reservoir-sampled
// quantiles and the Jaccard agreement between two routings.
package metrics

// Load tracks the per-worker message counts L_i(t) of Section II of the
// paper: the load of worker i at time t is the number of messages routed
// to it so far. It is the ground truth against which all partitioners are
// evaluated (partitioners may route using *estimates*; imbalance is
// always computed on actual loads).
type Load struct {
	counts []int64
	total  int64
}

// NewLoad returns a Load over n workers. It panics if n <= 0.
func NewLoad(n int) *Load {
	if n <= 0 {
		panic("metrics: NewLoad with n <= 0")
	}
	return &Load{counts: make([]int64, n)}
}

// N returns the number of workers.
func (l *Load) N() int { return len(l.counts) }

// Add records one message routed to worker i.
func (l *Load) Add(i int) {
	l.counts[i]++
	l.total++
}

// AddN records n messages routed to worker i.
func (l *Load) AddN(i int, n int64) {
	l.counts[i] += n
	l.total += n
}

// Get returns the load of worker i.
func (l *Load) Get(i int) int64 { return l.counts[i] }

// Total returns the total number of messages recorded.
func (l *Load) Total() int64 { return l.total }

// Max returns the maximum worker load.
func (l *Load) Max() int64 {
	max := l.counts[0]
	for _, c := range l.counts[1:] {
		if c > max {
			max = c
		}
	}
	return max
}

// Min returns the minimum worker load.
func (l *Load) Min() int64 {
	min := l.counts[0]
	for _, c := range l.counts[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// Avg returns the average worker load.
func (l *Load) Avg() float64 {
	return float64(l.total) / float64(len(l.counts))
}

// Imbalance returns I(t) = max load − average load, the paper's load
// imbalance metric (Section II). It is always ≥ 0.
func (l *Load) Imbalance() float64 {
	return float64(l.Max()) - l.Avg()
}

// ImbalanceFraction returns Imbalance() divided by the total number of
// messages, the normalization used throughout the paper's figures
// ("fraction of imbalance with respect to total number of messages").
// It returns 0 when no messages have been recorded.
func (l *Load) ImbalanceFraction() float64 {
	if l.total == 0 {
		return 0
	}
	return l.Imbalance() / float64(l.total)
}

// Used returns the number of workers with non-zero load. Theorem-level
// analysis (Section IV) shows that with d = 2 choices a uniform key
// distribution leaves ≈ 1/e² of the bins unused; Used exposes that.
func (l *Load) Used() int {
	n := 0
	for _, c := range l.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// Snapshot returns a copy of the per-worker loads.
func (l *Load) Snapshot() []int64 {
	out := make([]int64, len(l.counts))
	copy(out, l.counts)
	return out
}

// CopyFrom overwrites this load vector with the contents of other. The
// two must have the same size. It is used by the probing load-estimation
// strategy, which periodically resets local estimates to true loads.
func (l *Load) CopyFrom(other *Load) {
	if len(l.counts) != len(other.counts) {
		panic("metrics: CopyFrom with mismatched sizes")
	}
	copy(l.counts, other.counts)
	l.total = other.total
}

// Reset zeroes all loads.
func (l *Load) Reset() {
	for i := range l.counts {
		l.counts[i] = 0
	}
	l.total = 0
}

// ArgMin returns the index of the least-loaded worker (lowest index wins
// ties, which keeps routing deterministic).
func (l *Load) ArgMin() int {
	best := 0
	for i := 1; i < len(l.counts); i++ {
		if l.counts[i] < l.counts[best] {
			best = i
		}
	}
	return best
}

// Least returns the index with the smallest load among the given
// candidate workers (first-listed wins ties). It panics if no candidates
// are given.
func (l *Load) Least(candidates ...int) int {
	if len(candidates) == 0 {
		panic("metrics: Least with no candidates")
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if l.counts[c] < l.counts[best] {
			best = c
		}
	}
	return best
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLoadBasics(t *testing.T) {
	l := NewLoad(4)
	if l.N() != 4 {
		t.Fatalf("N = %d", l.N())
	}
	l.Add(0)
	l.Add(0)
	l.Add(1)
	l.AddN(3, 5)
	if got := l.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
	if got := l.Get(0); got != 2 {
		t.Errorf("Get(0) = %d, want 2", got)
	}
	if got := l.Max(); got != 5 {
		t.Errorf("Max = %d, want 5", got)
	}
	if got := l.Min(); got != 0 {
		t.Errorf("Min = %d, want 0", got)
	}
	if got := l.Avg(); got != 2 {
		t.Errorf("Avg = %v, want 2", got)
	}
	if got := l.Imbalance(); got != 3 {
		t.Errorf("Imbalance = %v, want 3", got)
	}
	if got := l.ImbalanceFraction(); math.Abs(got-3.0/8) > 1e-12 {
		t.Errorf("ImbalanceFraction = %v, want 0.375", got)
	}
	if got := l.Used(); got != 3 {
		t.Errorf("Used = %d, want 3", got)
	}
}

func TestLoadEmptyAndReset(t *testing.T) {
	l := NewLoad(3)
	if got := l.ImbalanceFraction(); got != 0 {
		t.Errorf("empty ImbalanceFraction = %v", got)
	}
	if got := l.Imbalance(); got != 0 {
		t.Errorf("empty Imbalance = %v", got)
	}
	l.Add(1)
	l.Reset()
	if l.Total() != 0 || l.Max() != 0 {
		t.Error("Reset did not clear loads")
	}
}

func TestLoadPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLoad(0) did not panic")
		}
	}()
	NewLoad(0)
}

func TestLoadSnapshotIsCopy(t *testing.T) {
	l := NewLoad(2)
	l.Add(0)
	s := l.Snapshot()
	s[0] = 99
	if l.Get(0) != 1 {
		t.Fatal("Snapshot aliased internal storage")
	}
}

func TestLoadCopyFrom(t *testing.T) {
	a, b := NewLoad(3), NewLoad(3)
	a.AddN(0, 10)
	a.AddN(2, 5)
	b.Add(1)
	b.CopyFrom(a)
	if b.Get(0) != 10 || b.Get(1) != 0 || b.Get(2) != 5 || b.Total() != 15 {
		t.Fatalf("CopyFrom mismatch: %v total %d", b.Snapshot(), b.Total())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom size mismatch did not panic")
		}
	}()
	NewLoad(2).CopyFrom(a)
}

func TestLoadArgMinAndLeast(t *testing.T) {
	l := NewLoad(4)
	l.AddN(0, 3)
	l.AddN(1, 1)
	l.AddN(2, 1)
	l.AddN(3, 2)
	if got := l.ArgMin(); got != 1 {
		t.Errorf("ArgMin = %d, want 1 (lowest index tie-break)", got)
	}
	if got := l.Least(3, 0); got != 3 {
		t.Errorf("Least(3,0) = %d, want 3", got)
	}
	if got := l.Least(2, 1); got != 2 {
		t.Errorf("Least(2,1) = %d, want 2 (first wins ties)", got)
	}
	if got := l.Least(0); got != 0 {
		t.Errorf("Least(0) = %d", got)
	}
}

func TestLoadImbalanceInvariants(t *testing.T) {
	// Property: for any assignment sequence, Imbalance ≥ 0 and
	// Imbalance ≤ Total, and Max ≥ Avg ≥ Min.
	f := func(assign []uint8) bool {
		l := NewLoad(7)
		for _, a := range assign {
			l.Add(int(a) % 7)
		}
		if l.Imbalance() < 0 {
			return false
		}
		if l.Imbalance() > float64(l.Total()) {
			return false
		}
		return float64(l.Max()) >= l.Avg() && l.Avg() >= float64(l.Min())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadPerfectBalanceZeroImbalance(t *testing.T) {
	l := NewLoad(5)
	for i := 0; i < 100; i++ {
		l.Add(i % 5)
	}
	if got := l.Imbalance(); got != 0 {
		t.Fatalf("round-robin imbalance = %v, want 0", got)
	}
}

package metrics

import (
	"math"
	"sort"

	"pkgstream/internal/rng"
)

// Welford is a streaming estimator of mean and variance using Welford's
// numerically stable online algorithm.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 if fewer than 2 observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Reservoir keeps a bounded uniform sample of a stream of float64
// observations, so quantiles of arbitrarily long latency streams can be
// estimated in constant memory (used by the cluster simulator).
type Reservoir struct {
	cap  int
	seen int64
	xs   []float64
	src  *rng.Source
	mean Welford
}

// NewReservoir returns a reservoir with the given capacity, seeded
// deterministically. It panics if capacity <= 0.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		panic("metrics: NewReservoir with capacity <= 0")
	}
	return &Reservoir{cap: capacity, src: rng.New(seed)}
}

// Add incorporates one observation using Algorithm R.
func (r *Reservoir) Add(x float64) {
	r.seen++
	r.mean.Add(x)
	if len(r.xs) < r.cap {
		r.xs = append(r.xs, x)
		return
	}
	if j := r.src.Uint64n(uint64(r.seen)); j < uint64(r.cap) {
		r.xs[j] = x
	}
}

// N returns the number of observations seen (not the sample size).
func (r *Reservoir) N() int64 { return r.seen }

// Mean returns the exact mean of all observations.
func (r *Reservoir) Mean() float64 { return r.mean.Mean() }

// Percentile returns an estimate of the p-th percentile (p in [0, 100]).
// It returns 0 when no observations have been seen.
func (r *Reservoir) Percentile(p float64) float64 {
	if len(r.xs) == 0 {
		return 0
	}
	xs := make([]float64, len(r.xs))
	copy(xs, r.xs)
	sort.Float64s(xs)
	return Percentile(xs, p)
}

// Percentile returns the p-th percentile (p in [0, 100]) of an already
// sorted slice using linear interpolation. It panics on an empty slice or
// p outside [0, 100].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("metrics: Percentile p out of [0,100]")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Jaccard returns the Jaccard agreement between two routings of the same
// message sequence: matches / (2m − matches), where matches is the number
// of messages both routings sent to the same worker. This is the metric
// the paper uses to show that local estimation reaches a *different*
// local minimum than the global oracle (≈47% overlap on WP) while
// achieving nearly the same imbalance. The slices must have equal length;
// it returns 1 for two empty routings.
func Jaccard(a, b []int32) float64 {
	if len(a) != len(b) {
		panic("metrics: Jaccard with mismatched lengths")
	}
	if len(a) == 0 {
		return 1
	}
	matches := 0
	for i := range a {
		if a[i] == b[i] {
			matches++
		}
	}
	return float64(matches) / float64(2*len(a)-matches)
}

package metrics

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server serves a Registry over HTTP: GET /metrics answers with the
// Prometheus text exposition, and the standard /debug/pprof/* handlers
// are mounted on the same mux (an explicit mux — nothing leaks into
// http.DefaultServeMux). Close shuts the listener down cleanly, so a
// SIGTERM'd daemon never strands a scraper mid-response.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe starts serving reg on addr (host:port; port 0 picks a
// free one — read the bound address back with Addr). The server runs
// on its own goroutine until Close.
func ListenAndServe(addr string, reg *Registry) (*Server, error) {
	return ListenAndServeMux(addr, reg, nil)
}

// ListenAndServeMux is ListenAndServe with extra handlers mounted on
// the same mux (path → handler) — debug endpoints that belong to the
// process rather than the registry, like the trace ring's
// /debug/pktrace.
func ListenAndServeMux(addr string, reg *Registry, extra map[string]http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	for path, h := range extra {
		mux.Handle(path, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains in-flight requests (bounded) and stops the server.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

package metrics

import (
	"math/rand"
	"testing"
)

// randSnapshot builds a snapshot from 0–200 observations spread across
// the histogram's whole range (sub-µs to beyond the clamp), so the
// properties are exercised over empty, sparse and saturated shapes.
func randSnapshot(r *rand.Rand) HistSnapshot {
	var h Histogram
	n := r.Intn(201)
	for i := 0; i < n; i++ {
		// Random magnitude 1ns..~1000s, occasionally past the clamp.
		v := int64(1) << r.Intn(42)
		v += r.Int63n(v + 1)
		if r.Intn(50) == 0 {
			v = HistMaxValue + r.Int63n(1<<20)
		}
		h.Observe(v)
	}
	return h.Snapshot()
}

// equalSnap compares two snapshots semantically: identical totals, sums
// and per-bucket counts, ignoring trailing-zero-trimming differences.
func equalSnap(a, b HistSnapshot) bool {
	if a.Count != b.Count || a.Sum != b.Sum {
		return false
	}
	n := len(a.Counts)
	if len(b.Counts) > n {
		n = len(b.Counts)
	}
	at := func(s HistSnapshot, i int) int64 {
		if i < len(s.Counts) {
			return s.Counts[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		if at(a, i) != at(b, i) {
			return false
		}
	}
	return true
}

// TestHistogramMergeProperties is the algebra the observability plane
// leans on: obs merges per-node histograms in whatever order the polls
// land, and interval rates subtract a previous snapshot back out — so
// Merge must be commutative and associative with the zero snapshot as
// identity, and Sub must invert it. Checked over randomized snapshots.
func TestHistogramMergeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var zero HistSnapshot
	for trial := 0; trial < 200; trial++ {
		a, b, c := randSnapshot(r), randSnapshot(r), randSnapshot(r)

		if got, want := a.Merge(b), b.Merge(a); !equalSnap(got, want) {
			t.Fatalf("trial %d: Merge not commutative:\na+b = %+v\nb+a = %+v", trial, got, want)
		}
		if got, want := a.Merge(b).Merge(c), a.Merge(b.Merge(c)); !equalSnap(got, want) {
			t.Fatalf("trial %d: Merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", trial, got, want)
		}
		if got := a.Merge(zero); !equalSnap(got, a) {
			t.Fatalf("trial %d: zero is not Merge identity: a+0 = %+v, a = %+v", trial, got, a)
		}
		if got := zero.Merge(a); !equalSnap(got, a) {
			t.Fatalf("trial %d: zero is not left identity: 0+a = %+v, a = %+v", trial, got, a)
		}
		if got := a.Merge(b).Sub(b); !equalSnap(got, a) {
			t.Fatalf("trial %d: Sub does not invert Merge: (a+b)-b = %+v, a = %+v", trial, got, a)
		}
		// Quantiles of a merge are bounded by the inputs' extremes.
		if a.Count > 0 && b.Count > 0 {
			m := a.Merge(b)
			for _, p := range []float64{0.5, 0.99, 0.999} {
				qa, qb, qm := a.Quantile(p), b.Quantile(p), m.Quantile(p)
				lo, hi := qa, qb
				if lo > hi {
					lo, hi = hi, lo
				}
				if qm < lo || qm > hi {
					t.Fatalf("trial %d: merged q%.3f = %d outside [%d, %d]", trial, p, qm, lo, hi)
				}
			}
		}
	}
}

package metrics

import (
	"fmt"
	"strings"
)

// Point is one sample of a time series: a value V observed at time T
// (the unit of T is experiment-defined; the paper's Figure 3 uses hours).
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series of float64 samples. It is used to
// record the imbalance fraction through time, reproducing the paper's
// Figure 3.
type Series struct {
	Pts []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) {
	s.Pts = append(s.Pts, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Pts) }

// Last returns the most recent point. It panics on an empty series.
func (s *Series) Last() Point {
	if len(s.Pts) == 0 {
		panic("metrics: Last on empty series")
	}
	return s.Pts[len(s.Pts)-1]
}

// Mean returns the mean of the sample values, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Pts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Pts {
		sum += p.V
	}
	return sum / float64(len(s.Pts))
}

// MaxV returns the maximum sample value, or 0 for an empty series.
func (s *Series) MaxV() float64 {
	if len(s.Pts) == 0 {
		return 0
	}
	max := s.Pts[0].V
	for _, p := range s.Pts[1:] {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// Downsample returns a new series with at most n points, keeping every
// k-th point plus the last. It returns the series unchanged when it
// already fits.
func (s *Series) Downsample(n int) Series {
	if n <= 0 {
		panic("metrics: Downsample with n <= 0")
	}
	if len(s.Pts) <= n {
		out := make([]Point, len(s.Pts))
		copy(out, s.Pts)
		return Series{Pts: out}
	}
	step := (len(s.Pts) + n - 1) / n
	out := make([]Point, 0, n+1)
	for i := 0; i < len(s.Pts); i += step {
		out = append(out, s.Pts[i])
	}
	if last := s.Pts[len(s.Pts)-1]; out[len(out)-1] != last {
		out = append(out, last)
	}
	return Series{Pts: out}
}

// String renders the series as "t:v" pairs, useful in experiment dumps.
func (s *Series) String() string {
	var b strings.Builder
	for i, p := range s.Pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.3g:%.3g", p.T, p.V)
	}
	return b.String()
}

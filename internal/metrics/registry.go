package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a small pull-model metrics registry: components register
// named counters, gauges and latency histograms as closures, and every
// scrape (WritePrometheus) reads the live values — no sample pushing,
// no background goroutines, and registration closures must therefore
// be safe to call while the component runs. Registration order is
// irrelevant: output is grouped by metric name and sorted, so scrapes
// are deterministic and diffable.
type Registry struct {
	mu      sync.Mutex
	entries []regEntry
}

type regEntry struct {
	name    string
	labels  string // raw Prometheus label pairs, `a="b",c="d"`; "" for none
	kind    byte   // 'c'ounter, 'g'auge, 'h'istogram, 'v'ec-of-histograms, 'G'auge-vec
	counter func() int64
	gauge   func() float64
	hist    func() HistSnapshot
	vec     func() map[string]HistSnapshot
	gvec    func() map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a monotone int64 metric. labels is a raw
// Prometheus label list (`node="0"`), or "".
func (r *Registry) Counter(name, labels string, f func() int64) {
	r.add(regEntry{name: name, labels: labels, kind: 'c', counter: f})
}

// Gauge registers an instantaneous float64 metric.
func (r *Registry) Gauge(name, labels string, f func() float64) {
	r.add(regEntry{name: name, labels: labels, kind: 'g', gauge: f})
}

// Histogram registers a latency histogram whose observations are
// NANOSECONDS; it is exposed as a Prometheus summary in seconds —
// quantile series for p50/p99/p999 plus _sum and _count.
func (r *Registry) Histogram(name, labels string, f func() HistSnapshot) {
	r.add(regEntry{name: name, labels: labels, kind: 'h', hist: f})
}

// HistogramVec registers a dynamic family of latency histograms under
// one metric name: each scrape calls f and emits one summary per map
// entry, keyed by the `series` label. It serves sources whose series
// names only exist at runtime (per-component latency in a topology).
func (r *Registry) HistogramVec(name string, f func() map[string]HistSnapshot) {
	r.add(regEntry{name: name, kind: 'v', vec: f})
}

// GaugeVec registers a dynamic family of gauges under one metric name:
// each scrape calls f and emits one sample per map entry, keyed by the
// entry's raw Prometheus label list (`component="c",instance="0"`). It
// serves sources whose label sets only exist at runtime — per-worker
// load gauges of a topology whose components are user-named.
func (r *Registry) GaugeVec(name string, f func() map[string]float64) {
	r.add(regEntry{name: name, kind: 'G', gvec: f})
}

func (r *Registry) add(e regEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, e)
}

// quantiles exposed for every histogram: the p50/p99/p999 the paper's
// latency evaluation reads.
var histQuantiles = []struct {
	label string
	p     float64
}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format, grouped by name with one TYPE line each,
// names and labels sorted for deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]regEntry(nil), r.entries...)
	r.mu.Unlock()

	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})

	var b strings.Builder
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			lastName = e.name
			typ := "counter"
			switch e.kind {
			case 'g', 'G':
				typ = "gauge"
			case 'h', 'v':
				typ = "summary"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, typ)
		}
		switch e.kind {
		case 'c':
			fmt.Fprintf(&b, "%s %d\n", seriesName(e.name, e.labels), e.counter())
		case 'g':
			fmt.Fprintf(&b, "%s %g\n", seriesName(e.name, e.labels), e.gauge())
		case 'h':
			writeHist(&b, e.name, e.labels, e.hist())
		case 'v':
			m := e.vec()
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				writeHist(&b, e.name, fmt.Sprintf("series=%q", k), m[k])
			}
		case 'G':
			m := e.gvec()
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "%s %g\n", seriesName(e.name, k), m[k])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHist emits one histogram as a Prometheus summary: quantile
// series in SECONDS (observations are nanoseconds), then _sum and
// _count.
func writeHist(b *strings.Builder, name, labels string, s HistSnapshot) {
	for _, q := range histQuantiles {
		ql := fmt.Sprintf("quantile=%q", q.label)
		if labels != "" {
			ql = labels + "," + ql
		}
		fmt.Fprintf(b, "%s{%s} %g\n", name, ql, float64(s.Quantile(q.p))/1e9)
	}
	fmt.Fprintf(b, "%s_sum%s %g\n", name, braced(labels), float64(s.Sum)/1e9)
	fmt.Fprintf(b, "%s_count%s %d\n", name, braced(labels), s.Count)
}

func seriesName(name, labels string) string { return name + braced(labels) }

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

package metrics

import (
	"math"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Mean() != 0 || s.MaxV() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(3, 60)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 30 {
		t.Errorf("Mean = %v, want 30", got)
	}
	if got := s.MaxV(); got != 60 {
		t.Errorf("MaxV = %v, want 60", got)
	}
	if got := s.Last(); got != (Point{3, 60}) {
		t.Errorf("Last = %v", got)
	}
}

func TestSeriesLastPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Last on empty series did not panic")
		}
	}()
	var s Series
	s.Last()
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i*i))
	}
	d := s.Downsample(10)
	if d.Len() > 11 {
		t.Fatalf("Downsample(10) returned %d points", d.Len())
	}
	if d.Pts[0] != s.Pts[0] {
		t.Error("Downsample dropped first point")
	}
	if d.Last() != s.Last() {
		t.Error("Downsample dropped last point")
	}
	// Must preserve order.
	for i := 1; i < d.Len(); i++ {
		if d.Pts[i].T <= d.Pts[i-1].T {
			t.Fatal("Downsample broke time ordering")
		}
	}
	// A small series fits unchanged and is a copy.
	small := Series{Pts: []Point{{1, 1}, {2, 2}}}
	c := small.Downsample(10)
	c.Pts[0].V = 99
	if small.Pts[0].V != 1 {
		t.Error("Downsample aliased storage")
	}
}

func TestSeriesString(t *testing.T) {
	var s Series
	s.Add(1, 0.5)
	s.Add(2, 0.25)
	if got := s.String(); got != "1:0.5 2:0.25" {
		t.Errorf("String = %q", got)
	}
}

func TestSeriesMeanMatchesWelford(t *testing.T) {
	var s Series
	var w Welford
	for i := 0; i < 1000; i++ {
		v := math.Sin(float64(i))
		s.Add(float64(i), v)
		w.Add(v)
	}
	if math.Abs(s.Mean()-w.Mean()) > 1e-9 {
		t.Fatalf("series mean %v != welford mean %v", s.Mean(), w.Mean())
	}
}

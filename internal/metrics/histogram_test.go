package metrics

import (
	"testing"
)

func TestHistogramZeroObservations(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || len(s.Counts) != 0 {
		t.Fatalf("empty snapshot not empty: %+v", s)
	}
	for _, p := range []float64{0.5, 0.99, 0.999} {
		if q := s.Quantile(p); q != 0 {
			t.Errorf("Quantile(%v) of empty = %d, want 0", p, q)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("Mean of empty = %v, want 0", s.Mean())
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(42)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 42000 {
		t.Fatalf("count/sum = %d/%d, want 1000/42000", s.Count, s.Sum)
	}
	nonzero := 0
	for _, c := range s.Counts {
		if c != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("%d non-empty buckets, want 1", nonzero)
	}
	// Every quantile answers with the one bucket's bound, within the
	// bucket-width error (42 is in the linear region: exact).
	for _, p := range []float64{0.001, 0.5, 0.999, 1} {
		if q := s.Quantile(p); q != 42 {
			t.Errorf("Quantile(%v) = %d, want 42", p, q)
		}
	}
}

func TestHistogramLinearRegionExact(t *testing.T) {
	var h Histogram
	for v := int64(0); v < histSubCount; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for v := 0; v < histSubCount; v++ {
		if s.Counts[v] != 1 {
			t.Fatalf("bucket %d = %d, want exactly 1 (linear region is exact)", v, s.Counts[v])
		}
	}
}

func TestHistogramClampPastTop(t *testing.T) {
	var h Histogram
	h.Observe(100 * HistMaxValue) // far past the top bucket
	h.Observe(HistMaxValue + 1)
	h.Observe(-5) // negative: clamps to zero, not a panic
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3 (clamped values are still counted)", s.Count)
	}
	if got := s.Counts[HistBuckets-1]; got != 2 {
		t.Fatalf("top bucket = %d, want 2", got)
	}
	if s.Counts[0] != 1 {
		t.Fatalf("bucket 0 = %d, want 1 (negative clamps to zero)", s.Counts[0])
	}
	if q := s.Quantile(1); q != HistMaxValue {
		t.Fatalf("p100 = %d, want saturation at HistMaxValue %d", q, HistMaxValue)
	}
	// Sum clamps negatives to zero but keeps clamped large values exact.
	if want := 101*HistMaxValue + 1; s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
}

func TestHistogramMergeDisjoint(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10) // linear region
		b.Observe(1 << 20)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 200 {
		t.Fatalf("merged count = %d, want 200", m.Count)
	}
	if want := int64(100*10 + 100*(1<<20)); m.Sum != want {
		t.Fatalf("merged sum = %d, want %d", m.Sum, want)
	}
	if m.Counts[10] != 100 || m.Counts[histIndex(1<<20)] != 100 {
		t.Fatalf("merged buckets wrong: low=%d high=%d", m.Counts[10], m.Counts[histIndex(1<<20)])
	}
	// Merge in the other order is identical.
	m2 := b.Snapshot().Merge(a.Snapshot())
	if m2.Count != m.Count || m2.Sum != m.Sum || len(m2.Counts) != len(m.Counts) {
		t.Fatalf("merge is not commutative: %+v vs %+v", m, m2)
	}
}

func TestHistogramSubDiffer(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Observe(100)
	}
	before := h.Snapshot()
	for i := 0; i < 25; i++ {
		h.Observe(5000)
	}
	diff := h.Snapshot().Sub(before)
	if diff.Count != 25 {
		t.Fatalf("interval count = %d, want 25", diff.Count)
	}
	if diff.Sum != 25*5000 {
		t.Fatalf("interval sum = %d, want %d", diff.Sum, 25*5000)
	}
	if got := diff.Counts[histIndex(5000)]; got != 25 {
		t.Fatalf("interval bucket = %d, want 25", got)
	}
	if got := diff.Quantile(0.5); float64(got) < 5000 || float64(got) > 5000*1.04 {
		t.Fatalf("interval p50 = %d, want ≈5000", got)
	}
	// Differ against a fresh histogram's larger snapshot clamps, never
	// goes negative.
	neg := before.Sub(h.Snapshot())
	for i, c := range neg.Counts {
		if c < 0 {
			t.Fatalf("bucket %d negative after Sub: %d", i, c)
		}
	}
}

// TestHistogramQuantileMonotone is the property test: for any observed
// set, Quantile must be non-decreasing in p, and every reported value
// must be a valid bucket upper bound ≥ the true value's bucket.
func TestHistogramQuantileMonotone(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var h Histogram
	for i := 0; i < 10000; i++ {
		// Log-uniform-ish values spanning the linear region through the
		// clamp: shift a random 10-bit mantissa by a random exponent.
		v := int64((next() % 1024) << (next() % 45))
		h.Observe(v)
	}
	s := h.Snapshot()
	prev := int64(-1)
	for p := 0.001; p <= 1.0; p += 0.001 {
		q := s.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone: p=%v gives %d after %d", p, q, prev)
		}
		prev = q
	}
}

func TestHistogramBucketBoundsConsistent(t *testing.T) {
	// Every bucket's upper bound must itself map back into that bucket,
	// and bounds must be strictly increasing — the two invariants the
	// quantile answer depends on.
	prev := int64(-1)
	for i := 0; i < HistBuckets; i++ {
		ub := HistBucketMax(i)
		if ub <= prev {
			t.Fatalf("bucket %d bound %d not increasing past %d", i, ub, prev)
		}
		if got := histIndex(ub); got != i {
			t.Fatalf("bucket %d bound %d maps to bucket %d", i, ub, got)
		}
		prev = ub
	}
	if HistBucketMax(HistBuckets-1) != HistMaxValue {
		t.Fatalf("last bound %d != HistMaxValue %d", HistBucketMax(HistBuckets-1), HistMaxValue)
	}
}

// TestHistogramMatchesReservoir cross-checks the histogram's quantiles
// against the exact-sample Reservoir on the same stream: every
// histogram quantile must sit within one bucket width (~3.1%, plus the
// reservoir's own sampling slack) of the exact percentile.
func TestHistogramMatchesReservoir(t *testing.T) {
	const n = 50000
	res := NewReservoir(n, 42) // capacity = stream: exact, no sampling error
	var h Histogram
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < n; i++ {
		// A dense stream spanning three decades of buckets; density
		// keeps the exact interpolated percentile and the histogram's
		// bucket bound within one bucket width at every p.
		v := int64(1000 + next()%1000000)
		res.Add(float64(v))
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, p := range []float64{0.50, 0.90, 0.99, 0.999} {
		exact := res.Percentile(p * 100)
		got := float64(s.Quantile(p))
		// The histogram reports its bucket's upper bound: got ∈
		// [exact, exact·(1+2^-histSubBits)] up to interpolation slack.
		lo, hi := exact*0.999, exact*(1+1.0/histSubCount)*1.001
		if got < lo || got > hi {
			t.Errorf("p%g: histogram %v outside [%v, %v] around exact %v", p*100, got, lo, hi, exact)
		}
	}
}

func TestHistogramSparseRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 31, 32, 1000, 123456789, HistMaxValue + 99} {
		h.Observe(v)
	}
	s := h.Snapshot()
	idx, counts := s.Sparse()
	back := FromSparse(idx, counts, s.Sum)
	if back.Count != s.Count || back.Sum != s.Sum {
		t.Fatalf("sparse round trip count/sum: %+v vs %+v", back, s)
	}
	for i := range s.Counts {
		if s.Counts[i] != back.Counts[i] {
			t.Fatalf("sparse round trip bucket %d: %d vs %d", i, back.Counts[i], s.Counts[i])
		}
	}
}

// BenchmarkLatencyObserve is the hot-path budget gate: Observe must be
// two atomic adds — ≲20 ns/op, zero allocations (CI bench-smoke).
func BenchmarkLatencyObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 127)
	}
}

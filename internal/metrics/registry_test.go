package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRegistryWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pkg_tuples_total", `node="1"`, func() int64 { return 42 })
	reg.Counter("pkg_tuples_total", `node="0"`, func() int64 { return 7 })
	reg.Gauge("pkg_ratio", "", func() float64 { return 2.5 })
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1e6) // 1ms
	}
	reg.Histogram("pkg_latency_seconds", "", h.Snapshot)
	reg.HistogramVec("pkg_lat_vec_seconds", func() map[string]HistSnapshot {
		return map[string]HistSnapshot{"b": h.Snapshot(), "a": h.Snapshot()}
	})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE pkg_tuples_total counter\n",
		`pkg_tuples_total{node="0"} 7` + "\n",
		`pkg_tuples_total{node="1"} 42` + "\n",
		"# TYPE pkg_ratio gauge\npkg_ratio 2.5\n",
		"# TYPE pkg_latency_seconds summary\n",
		`pkg_latency_seconds{quantile="0.5"} 0.001`,
		"pkg_latency_seconds_count 100\n",
		`pkg_lat_vec_seconds{series="a",quantile="0.99"}`,
		`pkg_lat_vec_seconds{series="b",quantile="0.999"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Labeled series of one name sort deterministically: node="0" first.
	if strings.Index(out, `node="0"`) > strings.Index(out, `node="1"`) {
		t.Errorf("label ordering not deterministic:\n%s", out)
	}
	// quantile("0.5") of 100×1ms is the bucket bound: within 3.2% above.
	var p50 float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `pkg_latency_seconds{quantile="0.5"} `) {
			fmt.Sscanf(strings.Fields(line)[1], "%g", &p50)
		}
	}
	if p50 < 0.001 || p50 > 0.001*1.04 {
		t.Errorf("p50 %v outside [1ms, 1.04ms]", p50)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "", func() int64 { return 1 })
	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "up_total 1") {
		t.Fatalf("GET /metrics: code=%d body=%q", code, body)
	}
	code, body = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("GET /debug/pprof/: code=%d body truncated=%q", code, body[:min(len(body), 120)])
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}
}

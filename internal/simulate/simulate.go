// Package simulate runs the paper's load-balancing simulations: the
// two-level DAG of Figure 1 in which S source PEIs read a stream and
// partition it towards W worker PEIs. It reproduces the measurement
// methodology of §V: the imbalance I(t) = max load − average load is
// sampled through the simulation, averaged (Table II), normalized by the
// stream size (Figure 2), or kept as a time series (Figure 3); graph
// streams may additionally be split across the sources by key grouping to
// re-create the skewed-sources robustness experiment (Figure 4).
package simulate

import (
	"fmt"

	"pkgstream/internal/dataset"
	"pkgstream/internal/hash"
	"pkgstream/internal/hotkey"
	"pkgstream/internal/metrics"
	"pkgstream/internal/route"
)

// Method selects the partitioning technique under test. It is the shared
// strategy type of the routing core — simulate no longer keeps its own
// enumeration.
type Method = route.Strategy

// The techniques compared in §V.
const (
	// Hashing is key grouping via a single hash — baseline "H".
	Hashing = route.StrategyKG
	// Shuffle is round-robin shuffle grouping.
	Shuffle = route.StrategySG
	// PKG is partial key grouping (Greedy-d with key splitting).
	PKG = route.StrategyPKG
	// PoTC is the power of two choices without key splitting.
	PoTC = route.StrategyPoTC
	// OnGreedy assigns each new key to the globally least-loaded worker.
	OnGreedy = route.StrategyOnGreedy
	// OffGreedy is the clairvoyant LPT baseline (requires a pre-pass over
	// the stream to collect exact key frequencies).
	OffGreedy = route.StrategyOffGreedy
	// DChoices is frequency-aware PKG (ICDE 2016 follow-up): hot keys
	// widen to d > 2 candidates, head keys to all W, the tail keeps 2.
	DChoices = route.StrategyDChoices
	// WChoices spreads every key above the hot threshold round-robin
	// over all W workers (the follow-up's aggressive variant).
	WChoices = route.StrategyWChoices
)

// LoadInfo selects the load-information model available to PKG sources.
type LoadInfo int

// The information models of §V Q2.
const (
	// Global gives every source the true worker loads — the oracle "G".
	Global LoadInfo = iota
	// Local gives each source only its own estimate, updated with the
	// messages it sends — "L", the paper's practical model.
	Local
	// Probing is Local plus a periodic refresh of the estimate from the
	// true loads every ProbeEveryHours — "LP".
	Probing
)

// String returns the figure label of the information model.
func (li LoadInfo) String() string {
	switch li {
	case Global:
		return "G"
	case Local:
		return "L"
	case Probing:
		return "LP"
	default:
		return fmt.Sprintf("LoadInfo(%d)", int(li))
	}
}

// Assignment selects how incoming messages are divided among the sources.
type Assignment int

const (
	// ShuffleSources deals messages to sources round-robin (the default
	// in §V.A: "read by multiple independent sources via shuffle
	// grouping").
	ShuffleSources Assignment = iota
	// KeySources key-groups messages onto sources by the message's
	// source key — for graph streams this projects the out-degree skew
	// onto the sources (the Q3 robustness experiment).
	KeySources
)

// Options configures a simulation run.
type Options struct {
	// Workers is W, the number of downstream PEIs.
	Workers int
	// Sources is S, the number of upstream PEIs (default 1).
	Sources int
	// Method is the partitioning technique (default Hashing).
	Method Method
	// D is the number of choices for PKG (default 2).
	D int
	// Hot holds the hot-key knobs for DChoices and WChoices (see
	// hotkey.Config; the zero value selects the adaptive defaults).
	// Every source gets its own classifier — classification, like load
	// estimation, is per-source state.
	Hot hotkey.Config
	// Info is the load-information model for PKG, DChoices and WChoices
	// (default Global).
	Info LoadInfo
	// ProbeEveryHours is the probing period for Info == Probing.
	ProbeEveryHours float64
	// Seed drives both hash-function choice and stream generation.
	Seed uint64
	// SampleEvery is the number of messages between imbalance samples
	// (default: stream length / 1000, at least 1).
	SampleEvery int64
	// SourceAssignment divides the stream among sources.
	SourceAssignment Assignment
	// TrackMemory counts distinct (key, worker) pairs — the number of
	// state counters a stateful operator would hold (§V Q4 memory).
	TrackMemory bool
	// TrackDestinations records every routing decision, enabling the
	// Jaccard agreement comparison of §V Q2. Costs 4 bytes per message.
	TrackDestinations bool
}

func (o Options) withDefaults(streamLen int64) Options {
	if o.Sources <= 0 {
		o.Sources = 1
	}
	if o.D <= 0 {
		o.D = 2
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = streamLen / 1000
		if o.SampleEvery < 1 {
			o.SampleEvery = 1
		}
	}
	return o
}

// usesView reports whether the method consults per-source load views
// (and therefore honors the Info model).
func usesView(m Method) bool {
	return m == PKG || m == DChoices || m == WChoices
}

// Label renders the technique label used in the paper's figures, e.g.
// "H", "G", "L5", "L5P1", "D-C", "W-C".
func (o Options) Label() string {
	switch o.Method {
	case Hashing:
		return "H"
	case Shuffle:
		return "SG"
	case PoTC, OnGreedy, OffGreedy:
		return o.Method.String()
	case PKG:
		switch o.Info {
		case Global:
			return "G"
		case Local:
			return fmt.Sprintf("L%d", max(1, o.Sources))
		case Probing:
			return fmt.Sprintf("L%dP%g", max(1, o.Sources), o.ProbeEveryHours*60)
		}
	case DChoices:
		if o.Hot.D > 0 {
			return fmt.Sprintf("D-C%d", o.Hot.D)
		}
	}
	return o.Method.String()
}

// Result reports the measurements of one simulation run.
type Result struct {
	// Label is the figure label of the configuration (H, G, L5, ...).
	Label string
	// Messages is the number of messages routed.
	Messages int64
	// Workers and Sources echo the configuration.
	Workers, Sources int

	// AvgImbalance is the mean of I(t) over all samples — the metric of
	// Table II.
	AvgImbalance float64
	// AvgImbalanceFraction is AvgImbalance / Messages — the y axis of
	// Figures 2 and 4.
	AvgImbalanceFraction float64
	// FinalImbalance is I(m) at the end of the stream.
	FinalImbalance float64
	// Series is the imbalance *fraction so far* I(t)/t sampled through
	// time (t in stream hours) — the curves of Figure 3.
	Series metrics.Series

	// UsedWorkers is the number of workers that received any load.
	UsedWorkers int
	// Loads is the final per-worker load vector.
	Loads []int64

	// Counters is the number of distinct (key, worker) pairs — the state
	// counters a stateful operator holds (TrackMemory only).
	Counters int64
	// DistinctKeys is the number of distinct keys observed (TrackMemory
	// only).
	DistinctKeys int64
	// Destinations are the per-message routing decisions
	// (TrackDestinations only).
	Destinations []int32

	// Hotkey is the folded classifier snapshot of the frequency-aware
	// methods (DChoices, WChoices): key populations and per-class routed
	// counts summed over all sources. Zero for the other methods.
	Hotkey hotkey.Stats
}

// Run simulates routing the spec's stream under the given options and
// returns the measurements. The run is deterministic in (spec, opts).
func Run(spec dataset.Spec, opts Options) Result {
	opts = opts.withDefaults(spec.Messages)
	if opts.Workers <= 0 {
		panic("simulate: Options.Workers must be positive")
	}
	if usesView(opts.Method) && opts.Info == Probing && opts.ProbeEveryHours <= 0 {
		panic("simulate: Probing requires a positive ProbeEveryHours")
	}

	truth := metrics.NewLoad(opts.Workers)
	parts, views := buildPartitioners(spec, opts, truth)

	res := Result{
		Label:   opts.Label(),
		Workers: opts.Workers,
		Sources: opts.Sources,
	}
	if opts.TrackDestinations {
		res.Destinations = make([]int32, 0, spec.Messages)
	}
	var pairs map[uint64]struct{}
	var keys map[uint64]struct{}
	if opts.TrackMemory {
		pairs = make(map[uint64]struct{})
		keys = make(map[uint64]struct{})
	}

	stream := spec.Open(opts.Seed)
	var imbSum float64
	var samples int64
	nextProbe := make([]float64, opts.Sources)
	for i := range nextProbe {
		nextProbe[i] = opts.ProbeEveryHours
	}
	srcSeed := hash.Fmix64(opts.Seed ^ 0xa5a5a5a5a5a5a5a5)

	var i int64
	rr := 0
	for {
		msg, ok := stream.Next()
		if !ok {
			break
		}
		// Deal the message to a source.
		var s int
		if opts.Sources > 1 {
			switch opts.SourceAssignment {
			case KeySources:
				s = int(hash.Mix64(msg.SrcKey, srcSeed) % uint64(opts.Sources))
			default:
				s = rr
				rr++
				if rr == opts.Sources {
					rr = 0
				}
			}
		}
		// Probing refresh, driven by the stream clock.
		if usesView(opts.Method) && opts.Info == Probing && msg.T >= nextProbe[s] {
			views[s].CopyFrom(truth)
			for msg.T >= nextProbe[s] {
				nextProbe[s] += opts.ProbeEveryHours
			}
		}
		// Route and record.
		w := parts[s].Route(msg.Key)
		truth.Add(w)
		if views != nil && views[s] != truth {
			views[s].Add(w)
		}
		if opts.TrackDestinations {
			res.Destinations = append(res.Destinations, int32(w))
		}
		if opts.TrackMemory {
			pairs[msg.Key*128+uint64(w)] = struct{}{}
			keys[msg.Key] = struct{}{}
		}
		i++
		if i%opts.SampleEvery == 0 {
			imb := truth.Imbalance()
			imbSum += imb
			samples++
			res.Series.Add(msg.T, imb/float64(i))
		}
	}

	res.Messages = i
	if samples > 0 {
		res.AvgImbalance = imbSum / float64(samples)
	}
	if i > 0 {
		res.AvgImbalanceFraction = res.AvgImbalance / float64(i)
	}
	res.FinalImbalance = truth.Imbalance()
	res.UsedWorkers = truth.Used()
	res.Loads = truth.Snapshot()
	if opts.TrackMemory {
		res.Counters = int64(len(pairs))
		res.DistinctKeys = int64(len(keys))
	}
	for _, p := range parts {
		if ha, ok := p.(route.HotAware); ok {
			res.Hotkey.Fold(ha.Classifier().Stats())
		}
	}
	return res
}

// buildPartitioners constructs one router per source plus, for PKG, the
// per-source load views (views[s] aliases truth for Global info, so the
// caller must not double-record in that case; Run handles this).
func buildPartitioners(spec dataset.Spec, opts Options, truth *metrics.Load) ([]route.Router, []*metrics.Load) {
	w := opts.Workers
	hashSeed := hash.Fmix64(opts.Seed + 0x517cc1b727220a95)
	parts := make([]route.Router, opts.Sources)
	switch opts.Method {
	case Hashing:
		// Stateless: one instance is fine, but give each source its own
		// for symmetry with a real deployment.
		for s := range parts {
			parts[s] = route.NewKeyGrouping(w, hashSeed)
		}
		return parts, nil
	case Shuffle:
		for s := range parts {
			parts[s] = route.NewShuffleGrouping(w, s)
		}
		return parts, nil
	case PoTC:
		// Static PoTC requires all sources to agree on per-key choices —
		// the coordination cost the paper highlights. Model it as a
		// single shared instance with global load information.
		shared := route.NewPoTC(w, hashSeed, truth)
		for s := range parts {
			parts[s] = shared
		}
		return parts, nil
	case OnGreedy:
		shared := route.NewOnGreedy(w, truth)
		for s := range parts {
			parts[s] = shared
		}
		return parts, nil
	case OffGreedy:
		// Clairvoyant: pre-pass over an identical stream for the exact
		// frequency distribution.
		freqs := make(map[uint64]int64)
		pre := spec.Open(opts.Seed)
		for {
			m, ok := pre.Next()
			if !ok {
				break
			}
			freqs[m.Key]++
		}
		kfs := make([]route.KeyFreq, 0, len(freqs))
		for k, c := range freqs {
			kfs = append(kfs, route.KeyFreq{Key: k, Count: c})
		}
		shared := route.NewOffGreedy(w, hashSeed, kfs)
		for s := range parts {
			parts[s] = shared
		}
		return parts, nil
	case PKG, DChoices, WChoices:
		views := make([]*metrics.Load, opts.Sources)
		for s := range parts {
			switch opts.Info {
			case Global:
				views[s] = truth
			default:
				views[s] = metrics.NewLoad(w)
			}
			if opts.Method == PKG {
				parts[s] = route.NewPKG(w, opts.D, hashSeed, views[s])
				continue
			}
			// The frequency-aware strategies: same per-source views, plus
			// a per-source classifier (built by the shared factory so the
			// simulation exercises the same construction path as the
			// engine and the transport).
			r, err := route.New(route.Config{
				Strategy: opts.Method, Workers: w, Seed: hashSeed,
				View: views[s], Start: s, Hot: opts.Hot,
			})
			if err != nil {
				panic(fmt.Sprintf("simulate: %v", err))
			}
			parts[s] = r
		}
		return parts, views
	default:
		panic(fmt.Sprintf("simulate: unknown method %v", opts.Method))
	}
}

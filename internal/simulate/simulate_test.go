package simulate

import (
	"math"
	"testing"

	"pkgstream/internal/dataset"
	"pkgstream/internal/metrics"
)

// wp is a small Wikipedia-shaped stream used throughout these tests.
var wp = dataset.WP.WithCap(150_000)

func TestRunDeterminism(t *testing.T) {
	opts := Options{Workers: 10, Sources: 5, Method: PKG, Info: Local, Seed: 1}
	a := Run(wp, opts)
	b := Run(wp, opts)
	if a.AvgImbalance != b.AvgImbalance || a.FinalImbalance != b.FinalImbalance {
		t.Fatalf("same-config runs differ: %+v vs %+v", a, b)
	}
}

func TestRunBasicAccounting(t *testing.T) {
	r := Run(wp, Options{Workers: 10, Method: Hashing, Seed: 1})
	if r.Messages != wp.Messages {
		t.Fatalf("Messages = %d, want %d", r.Messages, wp.Messages)
	}
	var total int64
	for _, l := range r.Loads {
		total += l
	}
	if total != r.Messages {
		t.Fatalf("loads sum to %d, want %d", total, r.Messages)
	}
	if r.Workers != 10 || r.Sources != 1 {
		t.Fatalf("config echo wrong: %+v", r)
	}
	if r.Series.Len() == 0 {
		t.Fatal("no imbalance samples recorded")
	}
	if r.Label != "H" {
		t.Fatalf("Label = %q", r.Label)
	}
}

func TestShuffleNearPerfect(t *testing.T) {
	r := Run(wp, Options{Workers: 9, Sources: 5, Method: Shuffle, Seed: 2})
	// Each source keeps its own round-robin: total imbalance is at most
	// the number of sources.
	if r.FinalImbalance > 5 {
		t.Fatalf("shuffle imbalance %v > S", r.FinalImbalance)
	}
	if r.UsedWorkers != 9 {
		t.Fatalf("shuffle left workers unused: %d/9", r.UsedWorkers)
	}
}

func TestPKGGlobalBeatsHashing(t *testing.T) {
	// Figure 2 headline: H ≫ G on every skewed dataset (several orders).
	h := Run(wp, Options{Workers: 10, Method: Hashing, Seed: 3})
	g := Run(wp, Options{Workers: 10, Method: PKG, Info: Global, Seed: 3})
	if g.AvgImbalanceFraction*100 > h.AvgImbalanceFraction {
		t.Fatalf("G fraction %v not ≪ H fraction %v",
			g.AvgImbalanceFraction, h.AvgImbalanceFraction)
	}
}

func TestLocalWithinOrderOfMagnitudeOfGlobal(t *testing.T) {
	// §V Q2: "the difference from the global variant is always less than
	// one order of magnitude", robust to the number of sources.
	g := Run(wp, Options{Workers: 10, Method: PKG, Info: Global, Seed: 4})
	for _, s := range []int{5, 10, 15, 20} {
		l := Run(wp, Options{Workers: 10, Sources: s, Method: PKG, Info: Local, Seed: 4})
		if l.AvgImbalance > 10*g.AvgImbalance+float64(10*s) {
			t.Errorf("S=%d: local avg imbalance %v ≫ global %v",
				s, l.AvgImbalance, g.AvgImbalance)
		}
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Method: Hashing}, "H"},
		{Options{Method: Shuffle}, "SG"},
		{Options{Method: PKG, Info: Global}, "G"},
		{Options{Method: PKG, Info: Local, Sources: 5}, "L5"},
		{Options{Method: PKG, Info: Probing, Sources: 5, ProbeEveryHours: 1.0 / 60}, "L5P1"},
		{Options{Method: PoTC}, "PoTC"},
		{Options{Method: OnGreedy}, "On-Greedy"},
		{Options{Method: OffGreedy}, "Off-Greedy"},
	}
	for _, c := range cases {
		if got := c.opts.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.opts, got, c.want)
		}
	}
}

func TestProbingMatchesLocalQuality(t *testing.T) {
	// §V Q2: probing "does not improve the load balance" — it should be
	// in the same league as plain local estimation.
	l := Run(wp, Options{Workers: 10, Sources: 5, Method: PKG, Info: Local, Seed: 5})
	p := Run(wp, Options{Workers: 10, Sources: 5, Method: PKG, Info: Probing,
		ProbeEveryHours: 1.0 / 60, Seed: 5})
	hi := math.Max(l.AvgImbalance, p.AvgImbalance)
	lo := math.Min(l.AvgImbalance, p.AvgImbalance)
	if lo == 0 {
		lo = 1
	}
	if hi/lo > 20 {
		t.Errorf("probing %v and local %v differ wildly", p.AvgImbalance, l.AvgImbalance)
	}
}

func TestProbingPanicsWithoutPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Probing without period did not panic")
		}
	}()
	Run(wp, Options{Workers: 5, Method: PKG, Info: Probing})
}

func TestWorkersRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Workers=0 did not panic")
		}
	}()
	Run(wp, Options{Method: Hashing})
}

func TestBinaryBehaviorAcrossWorkerCounts(t *testing.T) {
	// §V Q1: "the behavior of the system is binary: either well balanced
	// or largely imbalanced", flipping where W exceeds O(1/p1).
	// WP has p1 = 9.32%: 2/p1 ≈ 21 workers. W=10 balances, W=100 cannot.
	small := Run(wp, Options{Workers: 10, Method: PKG, Info: Global, Seed: 6})
	big := Run(wp, Options{Workers: 100, Method: PKG, Info: Global, Seed: 6})
	if small.AvgImbalanceFraction > 1e-3 {
		t.Errorf("W=10 should balance WP: fraction %v", small.AvgImbalanceFraction)
	}
	if big.AvgImbalanceFraction < 1e-3 {
		t.Errorf("W=100 should exceed WP's 2/p1 limit: fraction %v", big.AvgImbalanceFraction)
	}
	// The imbalance floor when W > 2/p1: the two hot-key workers carry
	// ≥ p1/2 each, so I(m)/m ≥ p1/2 − 1/W.
	floor := wp.P1/2 - 1.0/100
	if big.FinalImbalance/float64(big.Messages) < floor*0.8 {
		t.Errorf("W=100 final imbalance fraction %v below theoretical floor %v",
			big.FinalImbalance/float64(big.Messages), floor)
	}
}

func TestMemoryAccounting(t *testing.T) {
	// Counters: KG ≈ K (one worker per key), PKG ≤ 2K, SG ≤ WK, and
	// KG ≤ PKG ≤ SG (§V Q4: 2.9M vs 3.6M vs 7.2M on WP).
	kg := Run(wp, Options{Workers: 9, Method: Hashing, Seed: 7, TrackMemory: true})
	pkg := Run(wp, Options{Workers: 9, Method: PKG, Info: Global, Seed: 7, TrackMemory: true})
	sg := Run(wp, Options{Workers: 9, Method: Shuffle, Seed: 7, TrackMemory: true})

	if kg.Counters != kg.DistinctKeys {
		t.Errorf("KG counters %d != distinct keys %d", kg.Counters, kg.DistinctKeys)
	}
	if pkg.Counters > 2*pkg.DistinctKeys {
		t.Errorf("PKG counters %d exceed 2K = %d", pkg.Counters, 2*pkg.DistinctKeys)
	}
	if sg.Counters > 9*sg.DistinctKeys {
		t.Errorf("SG counters %d exceed WK", sg.Counters)
	}
	if !(kg.Counters <= pkg.Counters && pkg.Counters < sg.Counters) {
		t.Errorf("counter ordering KG ≤ PKG < SG violated: %d, %d, %d",
			kg.Counters, pkg.Counters, sg.Counters)
	}
	// The paper's ratios on WP: PKG ≈ 1.24·KG, SG ≈ 2.5·KG. Shapes, not
	// exact values: PKG under 2×KG, SG clearly above PKG.
	if float64(pkg.Counters) > 2*float64(kg.Counters) {
		t.Errorf("PKG memory %d too far above KG %d", pkg.Counters, kg.Counters)
	}
	if float64(sg.Counters) < 1.3*float64(pkg.Counters) {
		t.Errorf("SG memory %d not clearly above PKG %d", sg.Counters, pkg.Counters)
	}
}

func TestSkewedSourcesRobustness(t *testing.T) {
	// Figure 4: key-grouped (skewed) source assignment on a graph stream
	// must stay in the same league as uniform source assignment.
	lj := dataset.LJ.WithCap(150_000)
	uni := Run(lj, Options{Workers: 10, Sources: 5, Method: PKG, Info: Local, Seed: 8})
	skew := Run(lj, Options{Workers: 10, Sources: 5, Method: PKG, Info: Local, Seed: 8,
		SourceAssignment: KeySources})
	if skew.AvgImbalanceFraction > 10*uni.AvgImbalanceFraction+1e-4 {
		t.Errorf("skewed sources fraction %v ≫ uniform %v",
			skew.AvgImbalanceFraction, uni.AvgImbalanceFraction)
	}
}

func TestDestinationsAndJaccard(t *testing.T) {
	// §V Q2: G and L disagree on destinations (far from 100% overlap)
	// while both balance well. On WP the paper measured 47% Jaccard.
	g := Run(wp, Options{Workers: 10, Method: PKG, Info: Global, Seed: 9, TrackDestinations: true})
	l := Run(wp, Options{Workers: 10, Sources: 5, Method: PKG, Info: Local, Seed: 9, TrackDestinations: true})
	if int64(len(g.Destinations)) != g.Messages {
		t.Fatalf("destinations %d != messages %d", len(g.Destinations), g.Messages)
	}
	j := metrics.Jaccard(g.Destinations, l.Destinations)
	if j < 0.05 || j > 0.95 {
		t.Errorf("G vs L Jaccard = %v; expected partial overlap (paper: ≈0.47)", j)
	}
}

func TestOffGreedyUsesExactFrequencies(t *testing.T) {
	off := Run(wp, Options{Workers: 5, Method: OffGreedy, Seed: 10})
	h := Run(wp, Options{Workers: 5, Method: Hashing, Seed: 10})
	if off.AvgImbalance > h.AvgImbalance/10 {
		t.Errorf("Off-Greedy %v should crush hashing %v", off.AvgImbalance, h.AvgImbalance)
	}
}

func TestPoTCBetweenHashingAndPKG(t *testing.T) {
	h := Run(wp, Options{Workers: 5, Method: Hashing, Seed: 11})
	potc := Run(wp, Options{Workers: 5, Method: PoTC, Seed: 11})
	pkg := Run(wp, Options{Workers: 5, Method: PKG, Info: Global, Seed: 11})
	if potc.AvgImbalance >= h.AvgImbalance {
		t.Errorf("PoTC %v not better than hashing %v", potc.AvgImbalance, h.AvgImbalance)
	}
	if pkg.AvgImbalance > potc.AvgImbalance {
		t.Errorf("PKG %v worse than static PoTC %v", pkg.AvgImbalance, potc.AvgImbalance)
	}
}

func TestSeriesTimesWithinDuration(t *testing.T) {
	r := Run(wp, Options{Workers: 10, Method: PKG, Info: Global, Seed: 12})
	for _, p := range r.Series.Pts {
		if p.T < 0 || p.T > wp.DurationHours {
			t.Fatalf("series time %v outside [0, %v]", p.T, wp.DurationHours)
		}
		if p.V < 0 {
			t.Fatalf("negative imbalance fraction %v", p.V)
		}
	}
}

func TestDriftHandledByPKG(t *testing.T) {
	// Figure 3 bottom row: on the drifting cashtag stream PKG keeps a
	// low imbalance despite popularity churn.
	ct := dataset.CT.WithCap(150_000)
	l := Run(ct, Options{Workers: 10, Sources: 5, Method: PKG, Info: Local, Seed: 13})
	h := Run(ct, Options{Workers: 10, Method: Hashing, Seed: 13})
	if l.AvgImbalanceFraction*5 > h.AvgImbalanceFraction {
		t.Errorf("PKG on drift %v not well below hashing %v",
			l.AvgImbalanceFraction, h.AvgImbalanceFraction)
	}
}

func BenchmarkRunPKGLocal(b *testing.B) {
	spec := dataset.WP.WithCap(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(spec, Options{Workers: 10, Sources: 5, Method: PKG, Info: Local, Seed: uint64(i)})
	}
}

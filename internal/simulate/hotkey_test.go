package simulate

import (
	"testing"

	"pkgstream/internal/dataset"
	"pkgstream/internal/hotkey"
	"pkgstream/internal/rng"
)

// zipfSpec builds a Zipf stream with a *given* exponent z — the sweep
// axis of the ICDE 2016 follow-up's evaluation.
func zipfSpec(z float64, keys uint64, messages int64) dataset.Spec {
	return dataset.Spec{
		Name: "Zipf", Symbol: "Z", Messages: messages, Keys: keys,
		P1: rng.ZipfP1(keys, z), Kind: dataset.Zipf, DurationHours: 1,
	}
}

// TestHotChoicesHoldWherePKGDegrades is the follow-up paper's headline
// in simulation form: at W = 50 on a z = 2.0 stream the top key alone
// carries ~60% of the traffic, PKG-2 can spread it over only two
// workers, and both frequency-aware strategies must do strictly better.
func TestHotChoicesHoldWherePKGDegrades(t *testing.T) {
	spec := zipfSpec(2.0, 100_000, 150_000)
	run := func(m Method) Result {
		return Run(spec, Options{Workers: 50, Method: m, Info: Local, Seed: 11})
	}
	pkg := run(PKG)
	dc := run(DChoices)
	wc := run(WChoices)
	if dc.FinalImbalance >= pkg.FinalImbalance {
		t.Errorf("D-Choices imbalance %v not below PKG's %v", dc.FinalImbalance, pkg.FinalImbalance)
	}
	if wc.FinalImbalance >= pkg.FinalImbalance {
		t.Errorf("W-Choices imbalance %v not below PKG's %v", wc.FinalImbalance, pkg.FinalImbalance)
	}
	// PKG-2 parks ~p1/2 ≈ 30% of the stream on one worker: its imbalance
	// fraction is macroscopic, the hot-key strategies' must not be.
	if pkg.AvgImbalanceFraction < 0.05 {
		t.Errorf("PKG imbalance fraction %v unexpectedly healthy at W=50, z=2", pkg.AvgImbalanceFraction)
	}
	if dc.AvgImbalanceFraction > 0.02 {
		t.Errorf("D-Choices imbalance fraction %v not near-perfect", dc.AvgImbalanceFraction)
	}
	if wc.AvgImbalanceFraction > 0.02 {
		t.Errorf("W-Choices imbalance fraction %v not near-perfect", wc.AvgImbalanceFraction)
	}
}

func TestHotChoicesDeterministic(t *testing.T) {
	spec := zipfSpec(1.4, 50_000, 60_000)
	for _, m := range []Method{DChoices, WChoices} {
		opts := Options{Workers: 30, Sources: 4, Method: m, Info: Local, Seed: 3}
		a, b := Run(spec, opts), Run(spec, opts)
		if a.FinalImbalance != b.FinalImbalance || a.AvgImbalance != b.AvgImbalance {
			t.Errorf("%v runs differ: %+v vs %+v", m, a.FinalImbalance, b.FinalImbalance)
		}
	}
}

func TestHotLabels(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Method: DChoices}, "D-C"},
		{Options{Method: DChoices, Hot: hotkey.Config{D: 5}}, "D-C5"},
		{Options{Method: WChoices}, "W-C"},
	}
	for _, c := range cases {
		if got := c.opts.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
}

// TestFixedDPlumbsThrough checks the Hot.D knob end to end: a fixed
// hot width must also crush PKG-2's imbalance on an extreme head — on
// this stream the 60% key needs ~24 workers, so under d = 4 it is
// classified head and escalates to all W (the classifier's clamp),
// while under the adaptive policy it gets exactly the ~24 candidates
// its frequency warrants. Both land within a factor of ten of perfect.
func TestFixedDPlumbsThrough(t *testing.T) {
	spec := zipfSpec(2.0, 100_000, 120_000)
	run := func(hot hotkey.Config, m Method) float64 {
		return Run(spec, Options{Workers: 50, Method: m, Info: Local, Seed: 7, Hot: hot}).FinalImbalance
	}
	pkg := Run(spec, Options{Workers: 50, Method: PKG, Info: Local, Seed: 7}).FinalImbalance
	fixed := run(hotkey.Config{D: 4}, DChoices)
	adaptive := run(hotkey.Config{}, DChoices)
	if fixed >= pkg/10 {
		t.Errorf("fixed d=4 imbalance %v not well below PKG's %v", fixed, pkg)
	}
	if adaptive >= pkg/10 {
		t.Errorf("adaptive imbalance %v not well below PKG's %v", adaptive, pkg)
	}
}

package window

import (
	"fmt"
	"testing"

	"pkgstream/internal/engine"
)

// discard is an Emitter that drops everything.
type discard struct{}

func (discard) Emit(engine.Tuple) {}

// genericCount is Count without the Combiner fast path, to benchmark
// the boxed-state path against the int64 one.
type genericCount struct{}

func (genericCount) Init() State                              { return int64(0) }
func (genericCount) Accumulate(s State, _ engine.Tuple) State { return s.(int64) + 1 }
func (genericCount) Merge(a, b State) State                   { return a.(int64) + b.(int64) }
func (genericCount) Output(_ string, s State) any             { return s }

// BenchmarkWindowFlush measures one full aggregation period of the
// partial stage: accumulate a keyed stream into live counters, then
// tick-flush every partial downstream — the per-period cost the
// aggregation period T amortizes.
func BenchmarkWindowFlush(b *testing.B) {
	for _, bc := range []struct {
		name string
		agg  Aggregator
		keys int
	}{
		{"combiner/1k", Count{}, 1_000},
		{"combiner/10k", Count{}, 10_000},
		{"generic/1k", genericCount{}, 1_000},
		{"generic/10k", genericCount{}, 10_000},
	} {
		b.Run(bc.name, func(b *testing.B) {
			const tuplesPerPeriod = 4 // distinct keys touched 4× each
			tuples := make([]engine.Tuple, bc.keys)
			for i := range tuples {
				tuples[i] = engine.Tuple{Key: fmt.Sprintf("k%d", i), EmitNanos: int64(i + 1)}
			}
			plan := MustPlan(bc.agg, Spec{})
			pb := plan.NewPartial().(*PartialBolt)
			pb.Prepare(&engine.Context{Component: "p", Parallelism: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < tuplesPerPeriod; r++ {
					for _, t := range tuples {
						pb.Execute(t, discard{})
					}
				}
				pb.Execute(engine.Tuple{Tick: true}, discard{})
			}
			tuplesTotal := float64(b.N * bc.keys * tuplesPerPeriod)
			b.ReportMetric(tuplesTotal/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(float64(b.N*bc.keys)/b.Elapsed().Seconds(), "partials/s")
		})
	}
}

package window

import (
	"fmt"

	"pkgstream/internal/engine"
)

// State is a per-(key, window) accumulator. The concrete type is owned
// by the Aggregator; the subsystem only moves it around and hands it
// back.
type State = any

// Aggregator defines one two-phase aggregation in combiner-lattice
// style: the partial stage calls Init once per live (key, window) pair
// and Accumulate per tuple; flushed partials travel downstream keyed by
// the original key, and the final stage Merges the partials of each key
// (at most d of them per flush round under PKG-d) and calls Output when
// the window closes.
//
// Merge must be commutative and at least approximately associative:
// partials arrive in no particular order, and a window that spans
// several aggregation periods is merged incrementally. Exact
// aggregations (counts, sums, sets) are order-independent; truncating
// sketches (e.g. SpaceSaving summaries) may yield slightly
// order-dependent results while keeping their bounds — see
// heavyhitters.TopKAgg.
type Aggregator interface {
	// Init returns an empty accumulator.
	Init() State
	// Accumulate folds one tuple into the accumulator and returns it
	// (implementations may mutate s in place and return it).
	Accumulate(s State, t engine.Tuple) State
	// Merge folds two partial accumulators into one.
	Merge(a, b State) State
	// Output converts a merged accumulator into the result value for
	// one closed (key, window) pair.
	Output(key string, s State) any
}

// Combiner is the fast path for commutative int64 counters (counts,
// sums, min/max encoded as a word): when an Aggregator also implements
// Combiner, both stages store raw int64s per live (key, window) pair —
// no boxed interface state, no Init/Accumulate indirection on the hot
// path — and merge by addition. Weigh extracts a tuple's contribution.
type Combiner interface {
	Aggregator
	// Weigh returns the tuple's additive contribution.
	Weigh(t engine.Tuple) int64
}

// Count counts tuples per (key, window) — the aggregation behind the
// paper's running word count example. It is a Combiner, so live state is
// one int64 per key.
type Count struct{}

// Init implements Aggregator.
func (Count) Init() State { return int64(0) }

// Accumulate implements Aggregator.
func (Count) Accumulate(s State, _ engine.Tuple) State { return s.(int64) + 1 }

// Merge implements Aggregator.
func (Count) Merge(a, b State) State { return a.(int64) + b.(int64) }

// Output implements Aggregator.
func (Count) Output(_ string, s State) any { return s.(int64) }

// Weigh implements Combiner.
func (Count) Weigh(engine.Tuple) int64 { return 1 }

// Sum sums an integer tuple field per (key, window). Like Count it is a
// Combiner.
type Sum struct {
	// Field is the Values index of the addend (an int or int64).
	Field int
}

// Init implements Aggregator.
func (Sum) Init() State { return int64(0) }

// Accumulate implements Aggregator.
func (a Sum) Accumulate(s State, t engine.Tuple) State { return s.(int64) + a.Weigh(t) }

// Merge implements Aggregator.
func (Sum) Merge(a, b State) State { return a.(int64) + b.(int64) }

// Output implements Aggregator.
func (Sum) Output(_ string, s State) any { return s.(int64) }

// Weigh implements Combiner.
func (a Sum) Weigh(t engine.Tuple) int64 {
	switch v := t.Values[a.Field].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	default:
		panic(fmt.Sprintf("window: Sum field %d has non-integer type %T", a.Field, v))
	}
}

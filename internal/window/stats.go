package window

import (
	"math"
	"sync/atomic"

	"pkgstream/internal/engine"
	"pkgstream/internal/metrics"
	"pkgstream/internal/trace"
	"pkgstream/internal/wire"
)

// instrumentation is the live, atomically updated form of
// engine.WindowStats for one bolt instance. Each instance is driven by a
// single goroutine, so read-modify sequences need no CAS; atomics only
// make the values safe to snapshot while the topology runs.
type instrumentation struct {
	live          atomic.Int64
	maxLive       atomic.Int64
	flushes       atomic.Int64
	partialsOut   atomic.Int64
	merged        atomic.Int64
	windowsClosed atomic.Int64
	late          atomic.Int64
	// hist is the instance's latency histogram: the partial stage
	// observes emit→arrival latency of sampled tuples, the final stage
	// observes window-close staleness. One instance is always exactly
	// one of the two, so a single field serves both.
	hist metrics.Histogram
	// wmValue / wmAdvanced record the instance watermark's last advance:
	// the watermark value and the wall-clock instant it rose. Both feed
	// the read-time watermark-lag gauge; neither is touched on the data
	// hot path (watermarks advance on marks, which are control traffic).
	wmValue    atomic.Int64
	wmAdvanced atomic.Int64
}

// setLive records the live-accumulator gauge and its high-water mark.
func (in *instrumentation) setLive(n int64) {
	in.live.Store(n)
	if n > in.maxLive.Load() {
		in.maxLive.Store(n)
	}
}

// noteWM records a watermark advance: the new value and the wall-clock
// instant it rose. Bolts call it from their mark-handling paths only.
func (in *instrumentation) noteWM(wm int64) {
	in.wmValue.Store(wm)
	in.wmAdvanced.Store(trace.Now())
}

// wmLagNs computes the watermark-lag gauge at read time. On a
// wall-clock event timeline (the watermark value itself is a plausible
// Unix nanosecond) the lag is now − watermark — the classic "how far
// behind real time is event-time progress". On a logical timeline
// (small synthetic event times, or the MaxInt64 end-of-stream promise)
// that difference is meaningless, so the lag degrades to now − last
// advance: how long the watermark has sat still. Either way a stalled
// source shows up as growing lag; 0 means no watermark yet.
func (in *instrumentation) wmLagNs() int64 {
	adv := in.wmAdvanced.Load()
	if adv == 0 {
		return 0
	}
	if wm := in.wmValue.Load(); wm >= wallClockFloor && wm < math.MaxInt64/2 {
		return trace.Now() - wm
	}
	return trace.Now() - adv
}

// snapshot returns the counters in engine.WindowStats form.
func (in *instrumentation) snapshot() engine.WindowStats {
	return engine.WindowStats{
		Live:          in.live.Load(),
		MaxLive:       in.maxLive.Load(),
		Flushes:       in.flushes.Load(),
		PartialsOut:   in.partialsOut.Load(),
		Merged:        in.merged.Load(),
		WindowsClosed: in.windowsClosed.Load(),
		LateDropped:   in.late.Load(),
		WMLagNs:       in.wmLagNs(),
	}
}

// fold combines instance snapshots with the shared WindowStats rule.
func fold(ins []*instrumentation) engine.WindowStats {
	var t engine.WindowStats
	for _, in := range ins {
		t.Fold(in.snapshot())
	}
	return t
}

// wireHist converts a histogram snapshot to its wire form (nil when
// empty — the reply section then omits it entirely).
func wireHist(s metrics.HistSnapshot) *wire.LatencyHist {
	if s.Count == 0 {
		return nil
	}
	idx, counts := s.Sparse()
	h := &wire.LatencyHist{Sum: s.Sum, Buckets: make([]wire.HistBucket, len(idx))}
	for i := range idx {
		h.Buckets[i] = wire.HistBucket{Index: idx[i], Count: counts[i]}
	}
	return h
}

// telemetry assembles the OpStats telemetry section of a hosted stage:
// the bolt's watermark lag and live-window backlog plus its outbound
// edge's backpressure counters. ServiceNs stays zero — the transport
// worker stamps its own dispatch EWMA onto the reply.
func telemetry(ws engine.WindowStats, es engine.EdgeStats, creditWait metrics.HistSnapshot) *wire.Telemetry {
	return &wire.Telemetry{
		EdgeInFlight:   es.InFlight,
		EdgeQueue:      es.Queue,
		EdgeFrames:     es.Frames,
		EdgeStalls:     es.Stalls,
		EdgeWaitNs:     es.WaitNs,
		EdgeWindow:     es.Window,
		WatermarkLagNs: ws.WMLagNs,
		WindowBacklog:  ws.Live,
		CreditWait:     wireHist(creditWait),
	}
}

// HistFromWire converts a wire latency histogram back to a mergeable
// snapshot (the zero snapshot for nil — a pre-histogram node's reply).
func HistFromWire(h *wire.LatencyHist) metrics.HistSnapshot {
	if h == nil {
		return metrics.HistSnapshot{}
	}
	idx := make([]uint32, len(h.Buckets))
	counts := make([]int64, len(h.Buckets))
	for i, b := range h.Buckets {
		idx[i] = b.Index
		counts[i] = b.Count
	}
	return metrics.FromSparse(idx, counts, h.Sum)
}

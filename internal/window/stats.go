package window

import (
	"sync/atomic"

	"pkgstream/internal/engine"
	"pkgstream/internal/metrics"
	"pkgstream/internal/wire"
)

// instrumentation is the live, atomically updated form of
// engine.WindowStats for one bolt instance. Each instance is driven by a
// single goroutine, so read-modify sequences need no CAS; atomics only
// make the values safe to snapshot while the topology runs.
type instrumentation struct {
	live          atomic.Int64
	maxLive       atomic.Int64
	flushes       atomic.Int64
	partialsOut   atomic.Int64
	merged        atomic.Int64
	windowsClosed atomic.Int64
	late          atomic.Int64
	// hist is the instance's latency histogram: the partial stage
	// observes emit→arrival latency of sampled tuples, the final stage
	// observes window-close staleness. One instance is always exactly
	// one of the two, so a single field serves both.
	hist metrics.Histogram
}

// setLive records the live-accumulator gauge and its high-water mark.
func (in *instrumentation) setLive(n int64) {
	in.live.Store(n)
	if n > in.maxLive.Load() {
		in.maxLive.Store(n)
	}
}

// snapshot returns the counters in engine.WindowStats form.
func (in *instrumentation) snapshot() engine.WindowStats {
	return engine.WindowStats{
		Live:          in.live.Load(),
		MaxLive:       in.maxLive.Load(),
		Flushes:       in.flushes.Load(),
		PartialsOut:   in.partialsOut.Load(),
		Merged:        in.merged.Load(),
		WindowsClosed: in.windowsClosed.Load(),
		LateDropped:   in.late.Load(),
	}
}

// fold combines instance snapshots with the shared WindowStats rule.
func fold(ins []*instrumentation) engine.WindowStats {
	var t engine.WindowStats
	for _, in := range ins {
		t.Fold(in.snapshot())
	}
	return t
}

// wireHist converts a histogram snapshot to its wire form (nil when
// empty — the reply section then omits it entirely).
func wireHist(s metrics.HistSnapshot) *wire.LatencyHist {
	if s.Count == 0 {
		return nil
	}
	idx, counts := s.Sparse()
	h := &wire.LatencyHist{Sum: s.Sum, Buckets: make([]wire.HistBucket, len(idx))}
	for i := range idx {
		h.Buckets[i] = wire.HistBucket{Index: idx[i], Count: counts[i]}
	}
	return h
}

// HistFromWire converts a wire latency histogram back to a mergeable
// snapshot (the zero snapshot for nil — a pre-histogram node's reply).
func HistFromWire(h *wire.LatencyHist) metrics.HistSnapshot {
	if h == nil {
		return metrics.HistSnapshot{}
	}
	idx := make([]uint32, len(h.Buckets))
	counts := make([]int64, len(h.Buckets))
	for i, b := range h.Buckets {
		idx[i] = b.Index
		counts[i] = b.Count
	}
	return metrics.FromSparse(idx, counts, h.Sum)
}

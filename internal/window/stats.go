package window

import (
	"sync/atomic"

	"pkgstream/internal/engine"
)

// instrumentation is the live, atomically updated form of
// engine.WindowStats for one bolt instance. Each instance is driven by a
// single goroutine, so read-modify sequences need no CAS; atomics only
// make the values safe to snapshot while the topology runs.
type instrumentation struct {
	live          atomic.Int64
	maxLive       atomic.Int64
	flushes       atomic.Int64
	partialsOut   atomic.Int64
	merged        atomic.Int64
	windowsClosed atomic.Int64
	late          atomic.Int64
}

// setLive records the live-accumulator gauge and its high-water mark.
func (in *instrumentation) setLive(n int64) {
	in.live.Store(n)
	if n > in.maxLive.Load() {
		in.maxLive.Store(n)
	}
}

// snapshot returns the counters in engine.WindowStats form.
func (in *instrumentation) snapshot() engine.WindowStats {
	return engine.WindowStats{
		Live:          in.live.Load(),
		MaxLive:       in.maxLive.Load(),
		Flushes:       in.flushes.Load(),
		PartialsOut:   in.partialsOut.Load(),
		Merged:        in.merged.Load(),
		WindowsClosed: in.windowsClosed.Load(),
		LateDropped:   in.late.Load(),
	}
}

// fold combines instance snapshots with the shared WindowStats rule.
func fold(ins []*instrumentation) engine.WindowStats {
	var t engine.WindowStats
	for _, in := range ins {
		t.Fold(in.snapshot())
	}
	return t
}

package window

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"pkgstream/internal/engine"
)

// ms stamps an event time in milliseconds.
func ms(v int64) int64 { return v * int64(time.Millisecond) }

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Size: -time.Second},
		{Size: time.Second, Slide: -time.Second},
		{Period: -time.Second},
		{Lateness: -time.Second},
		{EveryTuples: -1},
		{MaxLivePartials: -1},
		{Slide: time.Second}, // Slide without Size
		{FinalParallelism: -1},
	}
	for i, s := range bad {
		if _, err := NewPlan(Count{}, s); err == nil {
			t.Errorf("case %d: spec %+v accepted", i, s)
		}
	}
	if _, err := NewPlan(nil, Spec{}); err == nil {
		t.Error("nil aggregator accepted")
	}
	// Defaults: tumbling slide, final parallelism, PerInstance forcing.
	p := MustPlan(Count{}, Spec{Size: time.Second, FinalParallelism: 3})
	if p.Spec().Slide != time.Second || p.FinalParallelism() != 3 {
		t.Fatalf("normalized spec %+v", p.Spec())
	}
	p = MustPlan(Count{}, Spec{PerInstance: true, FinalParallelism: 3})
	if p.FinalParallelism() != 1 {
		t.Fatal("PerInstance did not force FinalParallelism to 1")
	}
}

func TestAssign(t *testing.T) {
	starts := func(sp Spec, ts int64) []int64 {
		n, err := sp.normalized()
		if err != nil {
			t.Fatal(err)
		}
		return n.assign(ts, nil)
	}
	// Global window.
	if got := starts(Spec{}, ms(123)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("global assign = %v", got)
	}
	// Tumbling: a boundary timestamp belongs to the window starting
	// there, not the one ending there.
	tumble := Spec{Size: 10 * time.Millisecond}
	if got := starts(tumble, ms(9)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("tumbling assign(9ms) = %v", got)
	}
	if got := starts(tumble, ms(10)); len(got) != 1 || got[0] != ms(10) {
		t.Fatalf("tumbling assign(10ms) = %v", got)
	}
	// Sliding with overlap: ts 7ms with size 10ms, slide 5ms is in
	// [5,15) and [0,10).
	slide := Spec{Size: 10 * time.Millisecond, Slide: 5 * time.Millisecond}
	if got := starts(slide, ms(7)); len(got) != 2 || got[0] != ms(5) || got[1] != 0 {
		t.Fatalf("sliding assign(7ms) = %v", got)
	}
	// A boundary tuple leaves the oldest window: ts 10ms is in [10,20)
	// and [5,15) but not [0,10).
	if got := starts(slide, ms(10)); len(got) != 2 || got[0] != ms(10) || got[1] != ms(5) {
		t.Fatalf("sliding assign(10ms) = %v", got)
	}
	// Slide > Size leaves gaps: [0,2) then [5,7); ts 3ms is uncovered.
	gappy := Spec{Size: 2 * time.Millisecond, Slide: 5 * time.Millisecond}
	if got := starts(gappy, ms(3)); len(got) != 0 {
		t.Fatalf("gap assign(3ms) = %v", got)
	}
	if got := starts(gappy, ms(6)); len(got) != 1 || got[0] != ms(5) {
		t.Fatalf("gap assign(6ms) = %v", got)
	}
	// Negative timestamps align on the same grid.
	if got := starts(tumble, ms(-1)); len(got) != 1 || got[0] != ms(-10) {
		t.Fatalf("tumbling assign(-1ms) = %v", got)
	}
}

// listSpout replays a fixed tuple list (pre-stamped event times survive
// the runtime's spout stamping, which only fills zero EmitNanos).
type listSpout struct {
	tuples []engine.Tuple
	i      int
}

func (s *listSpout) Open(*engine.Context) {}
func (s *listSpout) Close()               {}
func (s *listSpout) Next(out engine.Emitter) bool {
	if s.i >= len(s.tuples) {
		return false
	}
	out.Emit(s.tuples[s.i])
	s.i++
	return true
}

// collector gathers final-stage Results.
type collector struct {
	mu  sync.Mutex
	res []Result
}

func (c *collector) bolt() engine.Bolt {
	return engine.BoltFunc(func(t engine.Tuple, _ engine.Emitter) {
		if t.Tick {
			return
		}
		c.mu.Lock()
		c.res = append(c.res, t.Values[0].(Result))
		c.mu.Unlock()
	})
}

// byWindow indexes results as key → start → value.
func (c *collector) byWindow() map[string]map[int64]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]map[int64]any{}
	for _, r := range c.res {
		if out[r.Key] == nil {
			out[r.Key] = map[int64]any{}
		}
		out[r.Key][r.Start] = r.Value
	}
	return out
}

// runPlan executes spout → windowed aggregate (partial parallelism par)
// → collector and returns the results and final stats.
func runPlan(t *testing.T, plan *Plan, tuples []engine.Tuple, par int) (*collector, engine.Stats) {
	t.Helper()
	col := &collector{}
	b := engine.NewBuilder("wtest", 1)
	b.AddSpout("src", func() engine.Spout { return &listSpout{tuples: tuples} }, 1)
	b.WindowedAggregate("agg", plan, par).Input("src", engine.Key())
	b.AddBolt("sink", col.bolt, 1).Input("agg", engine.Global())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 256})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return col, rt.Stats()
}

func tup(key string, atMs int64) engine.Tuple {
	return engine.Tuple{Key: key, EmitNanos: ms(atMs)}
}

func TestTumblingCountsAcrossBoundary(t *testing.T) {
	// Tuples straddling a window boundary land in different windows,
	// including the exact-boundary timestamp.
	tuples := []engine.Tuple{
		tup("a", 1), tup("a", 9), tup("b", 9),
		tup("a", 10), // boundary: second window
		tup("a", 11), tup("b", 25),
	}
	plan := MustPlan(Count{}, Spec{Size: 10 * time.Millisecond, EveryTuples: 2})
	col, st := runPlan(t, plan, tuples, 1)
	got := col.byWindow()
	want := map[string]map[int64]any{
		"a": {0: int64(2), ms(10): int64(2)},
		"b": {0: int64(1), ms(20): int64(1)},
	}
	for k, wins := range want {
		for start, v := range wins {
			if got[k][start] != v {
				t.Errorf("count[%s][%d] = %v, want %v", k, start, got[k][start], v)
			}
		}
	}
	if n := len(col.res); n != 4 {
		t.Errorf("%d results, want 4: %+v", n, col.res)
	}
	if w := st.WindowTotals("agg"); w.LateDropped != 0 {
		t.Errorf("unexpected late drops: %+v", w)
	}
}

func TestLateTupleAfterFlush(t *testing.T) {
	// Per-tuple flushes advance the watermark; a tuple arriving after
	// its window closed is dropped at the final stage and counted.
	tuples := []engine.Tuple{
		tup("a", 5),
		tup("a", 25), // watermark 25ms closes [0,10)
		tup("a", 7),  // late: [0,10) already emitted
	}
	plan := MustPlan(Count{}, Spec{Size: 10 * time.Millisecond, EveryTuples: 1})
	col, st := runPlan(t, plan, tuples, 1)
	got := col.byWindow()
	if got["a"][0] != int64(1) || got["a"][ms(20)] != int64(1) {
		t.Fatalf("windows = %+v", got)
	}
	if w := st.WindowTotals("agg"); w.LateDropped != 1 {
		t.Fatalf("LateDropped = %d, want 1 (%+v)", w.LateDropped, w)
	}

	// With enough allowed lateness the straggler still merges.
	plan = MustPlan(Count{}, Spec{Size: 10 * time.Millisecond, EveryTuples: 1,
		Lateness: 30 * time.Millisecond})
	col, st = runPlan(t, plan, tuples, 1)
	got = col.byWindow()
	if got["a"][0] != int64(2) {
		t.Fatalf("lateness-tolerant windows = %+v", got)
	}
	if w := st.WindowTotals("agg"); w.LateDropped != 0 {
		t.Fatalf("LateDropped = %d, want 0", w.LateDropped)
	}
}

func TestSlidingOverlapLargerThanPeriod(t *testing.T) {
	// Size 50ms, slide 10ms: each window overlaps five flush periods
	// (EveryTuples 3 flushes far more often than windows close), so
	// every window is assembled from many merged partial fragments.
	// Logical times start at 1ms: EmitNanos 0 means "unset" and would be
	// wall-clock stamped by the runtime.
	var tuples []engine.Tuple
	for i := int64(0); i < 40; i++ {
		tuples = append(tuples, tup(fmt.Sprintf("k%d", i%3), i*2+1))
	}
	spec := Spec{Size: 50 * time.Millisecond, Slide: 10 * time.Millisecond, EveryTuples: 3}
	plan := MustPlan(Count{}, spec)
	col, _ := runPlan(t, plan, tuples, 1)

	// Brute-force reference.
	norm, err := spec.normalized()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[int64]int64{}
	for _, tu := range tuples {
		for _, start := range norm.assign(tu.EmitNanos, nil) {
			if want[tu.Key] == nil {
				want[tu.Key] = map[int64]int64{}
			}
			want[tu.Key][start]++
		}
	}
	got := col.byWindow()
	for k, wins := range want {
		for start, n := range wins {
			if got[k][start] != n {
				t.Errorf("count[%s][%dms] = %v, want %d", k, start/int64(time.Millisecond), got[k][start], n)
			}
		}
	}
	var results int
	for _, wins := range want {
		results += len(wins)
	}
	if len(col.res) != results {
		t.Errorf("%d results, want %d", len(col.res), results)
	}
}

func TestFlushOnPressure(t *testing.T) {
	// The memory cap flushes before the live-state count can exceed it,
	// whatever the period.
	var tuples []engine.Tuple
	for i := 0; i < 200; i++ {
		tuples = append(tuples, tup(fmt.Sprintf("k%d", i), int64(i)))
	}
	plan := MustPlan(Count{}, Spec{MaxLivePartials: 10})
	col, st := runPlan(t, plan, tuples, 1)
	w := st.WindowTotals("agg.partial")
	if w.MaxLive > 10 {
		t.Fatalf("MaxLive = %d above cap 10", w.MaxLive)
	}
	if w.Flushes < 20 {
		t.Fatalf("only %d pressure flushes for 200 keys at cap 10", w.Flushes)
	}
	var total int64
	for _, r := range col.res {
		total += r.Value.(int64)
	}
	if total != 200 {
		t.Fatalf("results sum to %d, want 200", total)
	}
}

// distinctAgg exercises the generic (non-Combiner) path: per-key set of
// payload tokens, merged by union.
type distinctAgg struct{}

func (distinctAgg) Init() State { return map[string]struct{}{} }
func (distinctAgg) Accumulate(s State, t engine.Tuple) State {
	m := s.(map[string]struct{})
	m[t.Values[0].(string)] = struct{}{}
	return m
}
func (distinctAgg) Merge(a, b State) State {
	ma, mb := a.(map[string]struct{}), b.(map[string]struct{})
	for k := range mb {
		ma[k] = struct{}{}
	}
	return ma
}
func (distinctAgg) Output(_ string, s State) any { return len(s.(map[string]struct{})) }

func TestGenericAggregatorPath(t *testing.T) {
	tok := func(key, v string, atMs int64) engine.Tuple {
		return engine.Tuple{Key: key, EmitNanos: ms(atMs), Values: engine.Values{v}}
	}
	tuples := []engine.Tuple{
		tok("a", "x", 1), tok("a", "y", 2), tok("a", "x", 3),
		tok("b", "z", 4), tok("b", "z", 5),
	}
	// Flush every tuple so the final stage merges five fragments.
	plan := MustPlan(distinctAgg{}, Spec{EveryTuples: 1})
	col, _ := runPlan(t, plan, tuples, 2)
	got := col.byWindow()
	if got["a"][0] != 2 || got["b"][0] != 1 {
		t.Fatalf("distinct = %+v", got)
	}
}

func TestCleanupFlushReachesDownstream(t *testing.T) {
	// With no flush period at all, every result is produced by the
	// Cleanup cascade (partial → final → sink) — the general form of
	// the seed's silently-dropped Cleanup emission.
	var tuples []engine.Tuple
	for i := 0; i < 500; i++ {
		tuples = append(tuples, tup(fmt.Sprintf("k%d", i%37), int64(i)))
	}
	plan := MustPlan(Count{}, Spec{})
	col, st := runPlan(t, plan, tuples, 3)
	var total int64
	for _, r := range col.res {
		total += r.Value.(int64)
		if r.End != math.MaxInt64 {
			t.Fatalf("global window End = %d", r.End)
		}
	}
	if total != 500 || len(col.res) != 37 {
		t.Fatalf("cleanup flush lost data: total %d over %d results", total, len(col.res))
	}
	if w := st.WindowTotals("agg.partial"); w.Flushes != 3 {
		t.Fatalf("Flushes = %d, want one cleanup flush per instance", w.Flushes)
	}
}

func TestPerInstanceScope(t *testing.T) {
	var tuples []engine.Tuple
	for i := 0; i < 300; i++ {
		tuples = append(tuples, engine.Tuple{KeyHash: uint64(i%7 + 1), EmitNanos: ms(int64(i))})
	}
	plan := MustPlan(Count{}, Spec{PerInstance: true, EveryTuples: 50})
	col, st := runPlan(t, plan, tuples, 4)
	// One global window, all instances merged into a single result.
	if len(col.res) != 1 {
		t.Fatalf("%d results, want 1", len(col.res))
	}
	if col.res[0].Value.(int64) != 300 {
		t.Fatalf("merged count = %v, want 300", col.res[0].Value)
	}
	if w := st.WindowTotals("agg.partial"); w.MaxLive != 1 {
		t.Fatalf("per-instance MaxLive = %d, want 1", w.MaxLive)
	}
}

func TestEngineStatsExposeWindowCounters(t *testing.T) {
	var tuples []engine.Tuple
	for i := 0; i < 100; i++ {
		tuples = append(tuples, tup(fmt.Sprintf("k%d", i%11), int64(i)))
	}
	plan := MustPlan(Count{}, Spec{EveryTuples: 10})
	_, st := runPlan(t, plan, tuples, 2)
	if len(st.Windows["agg.partial"]) != 2 || len(st.Windows["agg"]) != 1 {
		t.Fatalf("Windows map incomplete: %+v", st.Windows)
	}
	parts := st.WindowTotals("agg.partial")
	final := st.WindowTotals("agg")
	if parts.PartialsOut == 0 || parts.Flushes == 0 {
		t.Fatalf("partial counters empty: %+v", parts)
	}
	if final.Merged != parts.PartialsOut {
		t.Fatalf("final merged %d != partials flushed %d", final.Merged, parts.PartialsOut)
	}
	if final.WindowsClosed != 11 {
		t.Fatalf("WindowsClosed = %d, want 11", final.WindowsClosed)
	}
	// Plan-level folds agree with the runtime snapshot.
	if p := plan.PartialStats(); p.PartialsOut != parts.PartialsOut {
		t.Fatalf("plan partials %+v != stats %+v", p, parts)
	}
	if f := plan.FinalStats(); f.Merged != final.Merged {
		t.Fatalf("plan final %+v != stats %+v", f, final)
	}
}

// TestGlobalCombinerFastPathMixedKeys pins the specialized
// global+per-key+combiner path (plain counter maps instead of slot
// maps): string- and integer-keyed tuples in one stream, several flush
// rounds, exact totals on the other side and deterministic key order.
func TestGlobalCombinerFastPathMixedKeys(t *testing.T) {
	var tuples []engine.Tuple
	want := map[string]int64{}
	wantInt := map[uint64]int64{}
	for i := 0; i < 60; i++ {
		if i%3 == 0 {
			h := uint64(1000 + i%5)
			tuples = append(tuples, engine.Tuple{KeyHash: h})
			wantInt[h]++
		} else {
			k := fmt.Sprintf("k%d", i%7)
			tuples = append(tuples, engine.Tuple{Key: k})
			want[k]++
		}
	}
	plan := MustPlan(Count{}, Spec{EveryTuples: 9}) // partial flushes mid-stream
	col, st := runPlan(t, plan, tuples, 2)

	gotStr := map[string]int64{}
	gotInt := map[uint64]int64{}
	for _, r := range col.res {
		if r.Key != "" {
			gotStr[r.Key] += r.Value.(int64)
			// The fast path must still report the key's routing hash on
			// the Result (the documented KeyHash contract).
			if want := (&engine.Tuple{Key: r.Key}).RouteKey(); r.KeyHash != want {
				t.Errorf("Result.KeyHash for %q = %#x, want %#x", r.Key, r.KeyHash, want)
			}
		} else {
			gotInt[r.KeyHash] += r.Value.(int64)
		}
	}
	for k, n := range want {
		if gotStr[k] != n {
			t.Errorf("count[%s] = %d, want %d", k, gotStr[k], n)
		}
	}
	for h, n := range wantInt {
		if gotInt[h] != n {
			t.Errorf("count[%#x] = %d, want %d", h, gotInt[h], n)
		}
	}
	if len(gotStr) != len(want) || len(gotInt) != len(wantInt) {
		t.Errorf("key sets differ: got %d/%d want %d/%d",
			len(gotStr), len(gotInt), len(want), len(wantInt))
	}
	// One closed window per key, every partial merged, none late.
	w := st.WindowTotals("agg")
	if w.WindowsClosed != int64(len(want)+len(wantInt)) {
		t.Errorf("WindowsClosed = %d, want %d", w.WindowsClosed, len(want)+len(wantInt))
	}
	if w.LateDropped != 0 {
		t.Errorf("LateDropped = %d", w.LateDropped)
	}
	if p := st.WindowTotals("agg.partial"); p.PartialsOut == 0 || p.Flushes < 6 {
		t.Errorf("fast path did not flush per EveryTuples: %+v", p)
	}
}

// capture is an Emitter recording everything a bolt emits.
type capture struct{ out []engine.Tuple }

func (c *capture) Emit(t engine.Tuple) { c.out = append(c.out, t) }

// partialStarts extracts the window starts of the flushed partials in
// an emission capture.
func partialStarts(tuples []engine.Tuple) map[int64]int {
	starts := map[int64]int{}
	for _, t := range tuples {
		if t.Tick {
			continue
		}
		if ps, ok := t.Values[0].(partialState); ok {
			starts[ps.start]++
		}
	}
	return starts
}

// TestPressureFlushEvictsOldestWindowsFirst drives the partial bolt
// directly: when the live-state cap hits, whole *old* windows are
// flushed while the newest — hot — window stays resident, and the
// broadcast watermark never allows the final stage to close a retained
// window.
func TestPressureFlushEvictsOldestWindowsFirst(t *testing.T) {
	plan := MustPlan(Count{}, Spec{Size: 10 * time.Millisecond, MaxLivePartials: 6})
	pb := plan.NewPartial().(*PartialBolt)
	pb.Prepare(&engine.Context{Component: "p", Parallelism: 1})

	var em capture
	// Five keys in window [0, 10ms), then two in [10ms, 20ms): the cap
	// (6) is reached on the sixth distinct slot.
	for i, k := range []string{"a", "b", "c", "d", "e"} {
		pb.Execute(tup(k, int64(1+i)), &em)
	}
	if len(em.out) != 0 {
		t.Fatalf("premature flush: %d emissions", len(em.out))
	}
	pb.Execute(tup("f", 11), &em) // live hits 6 → pressure flush

	starts := partialStarts(em.out)
	if starts[0] != 5 {
		t.Errorf("old window flushed %d partials, want 5", starts[0])
	}
	if starts[ms(10)] != 0 {
		t.Errorf("hot window was flushed (%d partials), want resident", starts[ms(10)])
	}
	if pb.live() != 1 {
		t.Errorf("live after pressure flush = %d, want 1 (the hot slot)", pb.live())
	}
	// The mark must cap below the retained window's end even though the
	// instance has seen event time 11ms.
	var wm int64 = math.MinInt64
	for _, tu := range em.out {
		if tu.Tick {
			wm = tu.Values[0].(mark).wm
		}
	}
	if want := ms(20) - 1; wm > want {
		t.Errorf("pressure mark wm = %d, may close the retained window (end %d)", wm, ms(20))
	}
	if wm < ms(10) {
		t.Errorf("pressure mark wm = %d too conservative to close the evicted window", wm)
	}

	// The retained window keeps accumulating and flushes with later
	// rounds — no data loss.
	em.out = nil
	pb.Execute(tup("f", 12), &em)
	pb.Cleanup(&em)
	if got := partialStarts(em.out)[ms(10)]; got != 1 {
		t.Errorf("retained slot flushed %d times at cleanup, want 1", got)
	}
	st := pb.WindowStats()
	if st.PartialsOut != 6 {
		t.Errorf("PartialsOut = %d, want 6", st.PartialsOut)
	}
}

// TestPressureFlushSlidingExactness runs the full pipeline under a
// tight cap with overlapping sliding windows: every count must survive
// exactly (no late drops — the capped watermark is what guarantees a
// retained window is never closed under the accumulating instance).
func TestPressureFlushSlidingExactness(t *testing.T) {
	var tuples []engine.Tuple
	want := map[string]map[int64]int64{} // key → window start → count
	spec := Spec{Size: 20 * time.Millisecond, Slide: 10 * time.Millisecond, MaxLivePartials: 8}
	norm, err := spec.normalized()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%d", i%11)
		ts := int64(1 + i/3) // nonzero logical clock creeping forward: many live windows
		tuples = append(tuples, tup(k, ts))
		for _, st := range norm.assign(ms(ts), nil) {
			if want[k] == nil {
				want[k] = map[int64]int64{}
			}
			want[k][st]++
		}
	}
	plan := MustPlan(Count{}, spec)
	col, st := runPlan(t, plan, tuples, 2)

	got := map[string]map[int64]int64{}
	for _, r := range col.res {
		if got[r.Key] == nil {
			got[r.Key] = map[int64]int64{}
		}
		got[r.Key][r.Start] += r.Value.(int64)
	}
	for k, wins := range want {
		for start, n := range wins {
			if got[k][start] != n {
				t.Errorf("count[%s][%d] = %d, want %d", k, start, got[k][start], n)
			}
		}
	}
	w := st.WindowTotals("agg")
	if w.LateDropped != 0 {
		t.Errorf("LateDropped = %d under pressure flushing, want 0", w.LateDropped)
	}
	p := st.WindowTotals("agg.partial")
	if p.MaxLive > 8+1 { // +1: sliding fan-out overshoot documented on the cap
		t.Errorf("MaxLive = %d above cap", p.MaxLive)
	}
	if p.Flushes == 0 {
		t.Error("no pressure flushes under a tight cap")
	}
}

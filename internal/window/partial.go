package window

import (
	"math"
	"sort"

	"pkgstream/internal/engine"
	"pkgstream/internal/trace"
)

// PartialBolt is the first stage of a windowed aggregation: it
// accumulates per-(key, window) partial state for the tuples routed to
// it (under PKG each key lives on at most two instances, so partials are
// genuinely partial) and flushes everything downstream every aggregation
// period — on the engine's wall-clock tick, after Spec.EveryTuples
// tuples, when the live-state cap is hit, and at stream end. Every flush
// ends with a broadcast watermark mark so the final stage can close
// windows.
type PartialBolt struct {
	plan *Plan
	inst *instrumentation

	ctx    engine.Context
	states map[slot]State // general path
	counts map[slot]int64 // Combiner fast path
	// strCounts/intCounts are the global-window Combiner fast path: with
	// a single window per key there is no start component, so the live
	// state is a plain counter map keyed by the tuple key itself — no
	// slot-struct hashing on the hot path. String- and integer-keyed
	// tuples each get the map their key lives in.
	strCounts map[string]int64
	intCounts map[uint64]int64
	wins      []int64 // window-assignment scratch
	since     int     // tuples since the last flush
	wm        int64   // max event time seen (math.MinInt64: none)
	noted     int64   // last watermark fed to the lag gauge
	// srcWMs holds the latest SourceMark watermark per source; once any
	// source reports (or Spec.Sources demands it), the instance
	// watermark becomes the minimum across sources instead of the
	// Lateness-padded maximum event time.
	srcWMs   map[int]int64
	lastLive int // last value published to the stats gauge
	// traced maps the (key, window) slots a traced tuple folded into to
	// its trace ID, so the flush that ships the slot's state downstream
	// can tag the outgoing partial and record the HopFlush span. Lazily
	// allocated — untraced streams never touch it.
	traced map[slot]uint64
}

// Prepare implements engine.Bolt.
func (b *PartialBolt) Prepare(ctx *engine.Context) {
	b.ctx = *ctx
	b.wm = math.MinInt64
	b.noted = math.MinInt64
	sp := &b.plan.spec
	switch {
	case b.plan.comb != nil && sp.Size <= 0 && !sp.PerInstance:
		b.strCounts = map[string]int64{}
		b.intCounts = map[uint64]int64{}
	case b.plan.comb != nil:
		b.counts = map[slot]int64{}
	default:
		b.states = map[slot]State{}
	}
}

// Execute implements engine.Bolt: source marks advance the per-source
// watermark, other ticks flush, data accumulates.
func (b *PartialBolt) Execute(t engine.Tuple, out engine.Emitter) {
	if t.Tick {
		if len(t.Values) == 1 {
			if sm, ok := t.Values[0].(srcMark); ok {
				if b.srcWMs == nil {
					b.srcWMs = map[int]int64{}
				}
				if old, seen := b.srcWMs[sm.src]; !seen || sm.wm > old {
					b.srcWMs[sm.src] = sm.wm
					// The instance watermark (minimum across sources) may
					// have risen with this source's promise — feed the
					// watermark-lag gauge. Marks are control traffic, so
					// the O(sources) minimum stays off the data path.
					if cur := b.watermark(); cur > b.noted && cur != math.MinInt64 {
						b.noted = cur
						b.inst.noteWM(cur)
					}
				}
				return
			}
		}
		b.flush(out, false)
		return
	}
	if t.LatStamp != 0 {
		// A sampled tuple: observe emit→arrival latency. This is the
		// paper-relevant end-to-end leg — spout emit through routing,
		// queues and (for remote deployments) the wire, to the moment
		// the partial stage takes the tuple.
		b.inst.hist.Observe(engine.LatSince(t.LatStamp))
	}
	sp := &b.plan.spec
	if sp.Size <= 0 {
		// Global window: no event time, no assignment — one slot per
		// key (or per instance), the running-total hot path.
		if b.strCounts != nil {
			// Combiner + per-key: count straight off the key.
			if t.Key != "" {
				b.strCounts[t.Key] += b.plan.comb.Weigh(t)
			} else {
				b.intCounts[t.RouteKey()] += b.plan.comb.Weigh(t)
			}
			if t.TraceID != 0 {
				// The counter maps key slots bare (no hash for string
				// keys), matching flush's slot reconstruction.
				if t.Key != "" {
					b.tagTrace(slot{key: t.Key}, t.TraceID)
				} else {
					b.tagTrace(slot{hash: t.RouteKey()}, t.TraceID)
				}
			}
		} else {
			b.accumulate(t, 0)
			if t.TraceID != 0 {
				b.tagTrace(b.slotOf(&t, 0), t.TraceID)
			}
		}
	} else {
		ts := sp.TimeOf(t)
		if ts > b.wm {
			b.wm = ts
		}
		b.wins = sp.assign(ts, b.wins[:0])
		for _, start := range b.wins {
			b.accumulate(t, start)
		}
		if t.TraceID != 0 {
			for _, start := range b.wins {
				b.tagTrace(b.slotOf(&t, start), t.TraceID)
			}
		}
	}
	if t.TraceID != 0 {
		trace.Add(t.TraceID, trace.HopPartial, trace.Now(), 0,
			int64(b.live()), 0, b.ctx.Component)
	}
	live := b.live()
	if live != b.lastLive {
		b.lastLive = live
		b.inst.setLive(int64(live))
	}
	b.since++
	if sp.EveryTuples > 0 && b.since >= sp.EveryTuples {
		b.flush(out, false)
	} else if sp.MaxLivePartials > 0 && live >= sp.MaxLivePartials {
		b.flushPressure(out)
	}
}

// Cleanup implements engine.Bolt: the last flush, marked final so the
// final stage knows this instance will never send another partial.
func (b *PartialBolt) Cleanup(out engine.Emitter) {
	b.flush(out, true)
}

// WindowStats implements engine.WindowStatsSource.
func (b *PartialBolt) WindowStats() engine.WindowStats { return b.inst.snapshot() }

// LatencySeries implements engine.LatencyStatsSource: the partial
// stage's emit→arrival latency, published under the component's own
// name (empty suffix).
func (b *PartialBolt) LatencySeries() []engine.LatencySeries {
	return []engine.LatencySeries{{Stats: b.inst.hist.Snapshot()}}
}

func (b *PartialBolt) live() int {
	if b.strCounts != nil {
		return len(b.strCounts) + len(b.intCounts)
	}
	if b.counts != nil {
		return len(b.counts)
	}
	return len(b.states)
}

// slotOf derives the (key, window) slot t folds into — the same
// construction accumulate uses, shared with trace tagging.
func (b *PartialBolt) slotOf(t *engine.Tuple, start int64) slot {
	if b.plan.spec.PerInstance {
		return slot{start: start}
	}
	return slot{hash: t.RouteKey(), key: t.Key, start: start}
}

// tagTrace remembers that a traced tuple folded into sl, so the flush
// shipping sl's state can carry the trace onward.
func (b *PartialBolt) tagTrace(sl slot, id uint64) {
	if b.traced == nil {
		b.traced = map[slot]uint64{}
	}
	b.traced[sl] = id
}

// accumulate folds t into the accumulator of one (key, window) slot.
func (b *PartialBolt) accumulate(t engine.Tuple, start int64) {
	sl := b.slotOf(&t, start)
	if b.counts != nil {
		b.counts[sl] += b.plan.comb.Weigh(t)
		return
	}
	acc, ok := b.states[sl]
	if !ok {
		acc = b.plan.agg.Init()
	}
	b.states[sl] = b.plan.agg.Accumulate(acc, t)
}

// flushPressure handles the live-state cap without evicting everything:
// whole windows are flushed oldest-first until the live count is at or
// below half the cap (headroom, so the very next tuples do not
// immediately re-trigger), keeping the hot — newest — windows resident
// across the flush. The broadcast watermark is capped below the
// earliest *retained* window's end, so the final stage can close the
// evicted old windows but never one this instance still accumulates;
// the straggler semantics are unchanged from a full flush.
//
// The global window (one window total) and the degenerate case of a
// single live window fall back to the full flush — there is no older
// window to prefer.
func (b *PartialBolt) flushPressure(out engine.Emitter) {
	sp := &b.plan.spec
	if sp.Size <= 0 {
		b.flush(out, false)
		return
	}
	// Bucket the live slots by window start. (The counter-map fast path
	// only serves the global window, so states/counts cover all slots
	// here.)
	buckets := map[int64][]slot{}
	if b.counts != nil {
		for sl := range b.counts {
			buckets[sl.start] = append(buckets[sl.start], sl)
		}
	} else {
		for sl := range b.states {
			buckets[sl.start] = append(buckets[sl.start], sl)
		}
	}
	if len(buckets) <= 1 {
		b.flush(out, false)
		return
	}
	starts := make([]int64, 0, len(buckets))
	for st := range buckets {
		starts = append(starts, st)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	target := sp.MaxLivePartials / 2
	var flushed int64
	idx := 0
	for ; idx < len(starts) && b.live() > target; idx++ {
		for _, sl := range buckets[starts[idx]] {
			if b.counts != nil {
				b.emitPartial(out, sl, b.counts[sl])
				delete(b.counts, sl)
			} else {
				b.emitPartial(out, sl, b.states[sl])
				delete(b.states, sl)
			}
			flushed++
		}
	}
	b.inst.flushes.Add(1)
	b.inst.partialsOut.Add(flushed)
	b.since = 0
	b.lastLive = b.live()
	b.inst.setLive(int64(b.lastLive))

	wm := b.watermark()
	if idx < len(starts) {
		// Windows from starts[idx] on stay resident: never advertise a
		// watermark that would let the final stage close them.
		if limit := sp.end(starts[idx]) - 1; limit < wm {
			wm = limit
		}
	}
	out.Emit(engine.Tuple{Tick: true, Values: engine.Values{mark{
		from: b.ctx.Index, of: b.ctx.Parallelism, wm: wm,
	}}})
}

// flush emits every live (key, window) partial downstream keyed by the
// original key, clears the local state (the O(1)-memory step: worker
// memory is bounded by one period's key arrivals), and broadcasts this
// instance's watermark.
func (b *PartialBolt) flush(out engine.Emitter, final bool) {
	if n := b.live(); n > 0 {
		b.inst.flushes.Add(1)
		b.inst.partialsOut.Add(int64(n))
		switch {
		case b.strCounts != nil:
			for k, c := range b.strCounts {
				b.emitPartial(out, slot{key: k}, c)
			}
			for h, c := range b.intCounts {
				b.emitPartial(out, slot{hash: h}, c)
			}
			clear(b.strCounts)
			clear(b.intCounts)
		case b.counts != nil:
			for sl, c := range b.counts {
				b.emitPartial(out, sl, c)
			}
			clear(b.counts)
		default:
			for sl, st := range b.states {
				b.emitPartial(out, sl, st)
			}
			clear(b.states)
		}
	}
	b.since = 0
	b.lastLive = 0
	b.inst.setLive(0)
	wm := b.watermark()
	if final {
		wm = math.MaxInt64
	}
	out.Emit(engine.Tuple{Tick: true, Values: engine.Values{mark{
		from: b.ctx.Index, of: b.ctx.Parallelism, wm: wm,
	}}})
}

// watermark returns this instance's current watermark. With source
// marks in play (any seen, or Spec.Sources demanding them) it is the
// exact minimum across per-source promises — no Lateness padding, and
// held at the floor until every expected source has reported. The
// legacy form is the maximum event time seen minus the allowed
// lateness.
func (b *PartialBolt) watermark() int64 {
	sp := &b.plan.spec
	if len(b.srcWMs) > 0 || sp.Sources > 0 {
		if len(b.srcWMs) < sp.Sources {
			return math.MinInt64 // some source has not reported yet
		}
		wm := int64(math.MaxInt64)
		for _, v := range b.srcWMs {
			if v < wm {
				wm = v
			}
		}
		return wm
	}
	if b.wm == math.MinInt64 {
		return math.MinInt64
	}
	return b.wm - int64(sp.Lateness)
}

func (b *PartialBolt) emitPartial(out engine.Emitter, sl slot, st State) {
	t := engine.Tuple{Key: sl.key, Values: engine.Values{partialState{start: sl.start, state: st}}}
	if sl.key == "" {
		// Integer-keyed stream (or per-instance scope): forward the raw
		// key hash so the final edge routes on it.
		t.KeyHash = sl.hash
	}
	if b.traced != nil {
		if id, ok := b.traced[sl]; ok {
			// A traced tuple folded into this slot: the flush carries the
			// trace across the final edge.
			delete(b.traced, sl)
			t.TraceID = id
			trace.Add(id, trace.HopFlush, trace.Now(), 0, sl.start, 0, b.ctx.Component)
		}
	}
	out.Emit(t)
}

package window

import (
	"math"

	"pkgstream/internal/engine"
)

// PartialBolt is the first stage of a windowed aggregation: it
// accumulates per-(key, window) partial state for the tuples routed to
// it (under PKG each key lives on at most two instances, so partials are
// genuinely partial) and flushes everything downstream every aggregation
// period — on the engine's wall-clock tick, after Spec.EveryTuples
// tuples, when the live-state cap is hit, and at stream end. Every flush
// ends with a broadcast watermark mark so the final stage can close
// windows.
type PartialBolt struct {
	plan *Plan
	inst *instrumentation

	ctx      engine.Context
	states   map[slot]State // general path
	counts   map[slot]int64 // Combiner fast path
	wins     []int64        // window-assignment scratch
	since    int            // tuples since the last flush
	wm       int64          // max event time seen (math.MinInt64: none)
	lastLive int            // last value published to the stats gauge
}

// Prepare implements engine.Bolt.
func (b *PartialBolt) Prepare(ctx *engine.Context) {
	b.ctx = *ctx
	b.wm = math.MinInt64
	if b.plan.comb != nil {
		b.counts = map[slot]int64{}
	} else {
		b.states = map[slot]State{}
	}
}

// Execute implements engine.Bolt: ticks flush, data accumulates.
func (b *PartialBolt) Execute(t engine.Tuple, out engine.Emitter) {
	if t.Tick {
		b.flush(out, false)
		return
	}
	sp := &b.plan.spec
	if sp.Size <= 0 {
		// Global window: no event time, no assignment — one slot per
		// key (or per instance), the running-total hot path.
		b.accumulate(t, 0)
	} else {
		ts := sp.TimeOf(t)
		if ts > b.wm {
			b.wm = ts
		}
		b.wins = sp.assign(ts, b.wins[:0])
		for _, start := range b.wins {
			b.accumulate(t, start)
		}
	}
	live := b.live()
	if live != b.lastLive {
		b.lastLive = live
		b.inst.setLive(int64(live))
	}
	b.since++
	if (sp.EveryTuples > 0 && b.since >= sp.EveryTuples) ||
		(sp.MaxLivePartials > 0 && live >= sp.MaxLivePartials) {
		b.flush(out, false)
	}
}

// Cleanup implements engine.Bolt: the last flush, marked final so the
// final stage knows this instance will never send another partial.
func (b *PartialBolt) Cleanup(out engine.Emitter) {
	b.flush(out, true)
}

// WindowStats implements engine.WindowStatsSource.
func (b *PartialBolt) WindowStats() engine.WindowStats { return b.inst.snapshot() }

func (b *PartialBolt) live() int {
	if b.counts != nil {
		return len(b.counts)
	}
	return len(b.states)
}

// accumulate folds t into the accumulator of one (key, window) slot.
func (b *PartialBolt) accumulate(t engine.Tuple, start int64) {
	var sl slot
	if b.plan.spec.PerInstance {
		sl = slot{start: start}
	} else {
		sl = slot{hash: t.RouteKey(), key: t.Key, start: start}
	}
	if b.counts != nil {
		b.counts[sl] += b.plan.comb.Weigh(t)
		return
	}
	acc, ok := b.states[sl]
	if !ok {
		acc = b.plan.agg.Init()
	}
	b.states[sl] = b.plan.agg.Accumulate(acc, t)
}

// flush emits every live (key, window) partial downstream keyed by the
// original key, clears the local state (the O(1)-memory step: worker
// memory is bounded by one period's key arrivals), and broadcasts this
// instance's watermark.
func (b *PartialBolt) flush(out engine.Emitter, final bool) {
	if n := b.live(); n > 0 {
		b.inst.flushes.Add(1)
		b.inst.partialsOut.Add(int64(n))
		if b.counts != nil {
			for sl, c := range b.counts {
				b.emitPartial(out, sl, c)
			}
			clear(b.counts)
		} else {
			for sl, st := range b.states {
				b.emitPartial(out, sl, st)
			}
			clear(b.states)
		}
	}
	b.since = 0
	b.lastLive = 0
	b.inst.setLive(0)
	wm := b.wm
	if wm != math.MinInt64 {
		wm -= int64(b.plan.spec.Lateness)
	}
	if final {
		wm = math.MaxInt64
	}
	out.Emit(engine.Tuple{Tick: true, Values: engine.Values{mark{
		from: b.ctx.Index, of: b.ctx.Parallelism, wm: wm,
	}}})
}

func (b *PartialBolt) emitPartial(out engine.Emitter, sl slot, st State) {
	t := engine.Tuple{Key: sl.key, Values: engine.Values{partialState{start: sl.start, state: st}}}
	if sl.key == "" {
		// Integer-keyed stream (or per-instance scope): forward the raw
		// key hash so the final edge routes on it.
		t.KeyHash = sl.hash
	}
	out.Emit(t)
}

// Package window is the windowed two-phase aggregation subsystem for
// PKG topologies. Key splitting (paper §III.A) deliberately spreads each
// key over up to d workers, so every PKG topology needs a second
// aggregation phase that periodically merges partial per-key state
// downstream (§IV); the aggregation period T is the lever trading worker
// memory against throughput (§V Q4, Figure 5(b)), and the journal
// version (arXiv:1510.07623) formalizes the windowed O(1)-memory
// variant this package implements. Instead of every application
// hand-rolling its own counter/aggregator bolt pair, the phase is a
// first-class topology construct:
//
//   - Aggregator: init / accumulate / merge / emit, with a Combiner
//     fast path for commutative int64 counters (counts, sums) that
//     stores one machine word per live key instead of a boxed state;
//   - Spec: tumbling, sliding, or global windows over event time,
//     an aggregation period T (wall-clock ticks or a deterministic
//     tuple count), an allowed lateness, and a live-state memory cap
//     (flush-on-pressure);
//   - Plan: the PartialBolt/FinalBolt operator pair behind
//     engine.Builder.WindowedAggregate — partials accumulate under any
//     grouping, flush every T keyed by the original key, and the final
//     stage merges the ≤d partials per key, closing each window once
//     the combined watermark (minimum over partial instances) passes
//     its end.
package window

import (
	"fmt"
	"math"
	"time"

	"pkgstream/internal/engine"
)

// Spec configures window assignment and flushing for one windowed
// aggregation. The zero value declares a single global window that is
// flushed only when the stream ends — the shape of a streaming running
// total.
type Spec struct {
	// Size is the window length in event time; 0 declares one global
	// window spanning the whole stream.
	Size time.Duration
	// Slide is the spacing between window starts; 0 means tumbling
	// (Slide = Size). Slide < Size yields overlapping sliding windows
	// (a tuple lands in ⌈Size/Slide⌉ windows); Slide > Size samples the
	// stream, leaving gaps no window covers.
	Slide time.Duration
	// Period is the aggregation period T in wall-clock time: every
	// Period the engine ticks the partial stage and all live partial
	// state is flushed downstream. 0 disables timer flushes (count- or
	// pressure-driven flushes may still fire; Cleanup always flushes).
	Period time.Duration
	// EveryTuples flushes a partial instance after it accumulated this
	// many tuples — a deterministic, count-based stand-in for Period
	// (the form the paper's experiments sweep as T).
	EveryTuples int
	// Lateness is subtracted from the partial stage's watermark before
	// it is reported downstream, so windows stay open at the final
	// stage for stragglers up to this much behind the newest tuple.
	// Partials that still arrive for a closed window are dropped and
	// counted (WindowStats.LateDropped).
	Lateness time.Duration
	// MaxLivePartials caps the live (key, window) accumulators held by
	// one partial instance: reaching the cap triggers an immediate
	// flush (flush-on-pressure), bounding worker memory regardless of
	// T. The check runs after each tuple, so the instantaneous count
	// can overshoot by the tuple's window fan-out minus one (sliding
	// windows assign one tuple to ⌈Size/Slide⌉ windows). 0 means
	// uncapped.
	MaxLivePartials int
	// Sources is the number of distinct stream sources expected to
	// advertise their event-time progress with SourceMark tuples. When
	// set (or when any source mark arrives), the partial stage's
	// watermark is the MINIMUM over the per-source marks instead of the
	// maximum event time seen minus Lateness — exact for parallel
	// sources with arbitrarily skewed clocks, no manual lateness knob.
	// The watermark holds still until every expected source has
	// reported at least once. 0 with no marks keeps the legacy
	// max-minus-Lateness watermark.
	Sources int
	// PerInstance scopes the accumulator per (instance, window) instead
	// of per (key, window) — for sketch-like aggregators (e.g. one
	// SpaceSaving summary per worker, §VI.C) whose state covers every
	// key the instance sees. The final stage then runs as a single
	// instance and merges the per-instance partials.
	PerInstance bool
	// FinalParallelism is the final-stage instance count (default 1;
	// forced to 1 when PerInstance is set).
	FinalParallelism int
	// TimeOf extracts a tuple's event time in nanoseconds; nil reads
	// Tuple.EmitNanos (stamped by the runtime at spout emit; spouts may
	// pre-stamp a logical clock for deterministic windows — starting at
	// a nonzero value, since EmitNanos 0 means "unset" and gets the
	// wall clock).
	TimeOf func(t engine.Tuple) int64
}

// normalized validates the spec and fills defaults.
func (s Spec) normalized() (Spec, error) {
	if s.Size < 0 || s.Slide < 0 || s.Period < 0 || s.Lateness < 0 {
		return s, fmt.Errorf("window: negative Size, Slide, Period or Lateness")
	}
	if s.EveryTuples < 0 || s.MaxLivePartials < 0 {
		return s, fmt.Errorf("window: negative EveryTuples or MaxLivePartials")
	}
	if s.Sources < 0 {
		return s, fmt.Errorf("window: negative Sources")
	}
	if s.Size == 0 && s.Slide != 0 {
		return s, fmt.Errorf("window: Slide set without Size")
	}
	if s.Slide == 0 {
		s.Slide = s.Size
	}
	if s.FinalParallelism < 0 {
		return s, fmt.Errorf("window: negative FinalParallelism")
	}
	if s.FinalParallelism == 0 || s.PerInstance {
		s.FinalParallelism = 1
	}
	if s.TimeOf == nil {
		s.TimeOf = func(t engine.Tuple) int64 { return t.EmitNanos }
	}
	return s, nil
}

// assign appends the start time of every window containing ts (latest
// start first). Windows are half-open [start, start+Size): a tuple whose
// timestamp equals a boundary belongs to the window starting there, not
// the one ending there.
func (s *Spec) assign(ts int64, into []int64) []int64 {
	if s.Size <= 0 {
		return append(into, 0)
	}
	size, slide := int64(s.Size), int64(s.Slide)
	// Latest window start ≤ ts; walk backwards while the window still
	// covers ts. When Slide > Size the first candidate may already have
	// ended (a gap) and the loop adds nothing.
	for st := floorDiv(ts, slide) * slide; st > ts-size; st -= slide {
		into = append(into, st)
	}
	return into
}

// end returns the exclusive end of the window starting at start; the
// global window never ends.
func (s *Spec) end(start int64) int64 {
	if s.Size <= 0 {
		return math.MaxInt64
	}
	return start + int64(s.Size)
}

// floorDiv is integer division rounding towards negative infinity, so
// window starts align on the slide grid for negative timestamps too.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// slot identifies one live accumulator: a (key, window-start) pair, or
// just the window when the aggregation is per-instance.
type slot struct {
	hash  uint64
	key   string
	start int64
}

// Result is the payload (Values[0]) of a final-stage output tuple: one
// closed (key, window) pair with the aggregator's output value.
type Result struct {
	// Key is the original tuple key ("" for integer-keyed streams and
	// per-instance aggregations).
	Key string
	// KeyHash is the 64-bit routing hash of the key (0 for per-instance
	// aggregations).
	KeyHash uint64
	// Start and End delimit the window [Start, End) in event-time
	// nanoseconds; the global window reports [0, math.MaxInt64).
	Start, End int64
	// Value is the Aggregator's Output for the merged state.
	Value any
}

// partialState is the payload of one flushed partial: the window it
// belongs to and the accumulator (an int64 on the Combiner fast path).
type partialState struct {
	start int64
	state State
}

// srcMark is the watermark control tuple a SPOUT emits (via SourceMark)
// to advertise its own event-time progress: the source promises to
// never again emit a tuple with event time below wm. The partial stage
// records the maximum per source and takes the minimum across sources
// as its watermark — the end-to-end form of "track per-source minima"
// that replaces the Spec.Lateness knob for multi-source topologies.
type srcMark struct {
	src int
	wm  int64
}

// SourceMark returns the control tuple a spout emits to advertise that
// source `source` will never again emit a tuple with event time below
// wm. Emit it on an edge wrapped with SourceAware so it reaches every
// partial instance. Distinct parallel sources must use distinct IDs
// (the spout's Context.Index is the natural choice).
func SourceMark(source int, wm int64) engine.Tuple {
	return engine.Tuple{Tick: true, Values: engine.Values{srcMark{src: source, wm: wm}}}
}

// SourceAware wraps a spout→partial grouping factory so SourceMark
// tuples (engine Tick tuples) broadcast to every partial instance while
// data tuples route through g unchanged — every partial instance must
// hear every source to take a minimum across them.
func SourceAware(g engine.GroupingFactory) engine.GroupingFactory {
	return func(n int, seed uint64, emitter int) engine.Grouping {
		return markBroadcast{data: g(n, seed, emitter)}
	}
}

// mark is the watermark control tuple a partial instance broadcasts
// after every flush. It rides with Tick set so the engine ships it
// immediately (never stuck behind a partial batch); the final stage
// closes a window once the minimum watermark across all partial
// instances passes its end.
type mark struct {
	// from and of identify the emitting partial instance and the
	// partial parallelism, so the final stage knows when every instance
	// has reported.
	from, of int
	// wm is the instance's watermark: max event time seen minus the
	// allowed lateness. The cleanup flush at stream end reports
	// math.MaxInt64 — "this instance will never send another partial".
	wm int64
}

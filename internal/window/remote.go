package window

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pkgstream/internal/engine"
	"pkgstream/internal/metrics"
	"pkgstream/internal/trace"
	"pkgstream/internal/transport"
	"pkgstream/internal/wire"
)

// This file is the distributed half of the windowed two-phase
// aggregation: the partial stage stays in the engine process, and the
// final stage — merging partials and closing windows on watermarks —
// lives behind a TCP boundary in another process (cmd/pkgnode). Two
// pieces make that span:
//
//   - remoteFinal, a forwarder bolt that replaces the in-process final
//     stage: it encodes every flushed partial as a wire.Partial and
//     key-groups it over the remote node addresses, and relays every
//     partial instance's watermark as a wire.Mark (one remote "source"
//     per partial instance);
//   - FinalHandler, the transport.Handler that hosts an ordinary
//     FinalBolt on the remote side: partials merge, windows close once
//     the minimum watermark across all live sources passes their end,
//     and closed results are collected for OpResults point queries.

// StateCodec is the optional Aggregator extension a remote final needs
// on the general (non-Combiner) path: partial accumulators must have a
// wire form to cross the process boundary. Combiner aggregators travel
// as a single int64 and need no codec.
type StateCodec interface {
	// EncodeState serializes one partial accumulator.
	EncodeState(s State) []byte
	// DecodeState reverses EncodeState.
	DecodeState(b []byte) (State, error)
}

// ResultCodec is the optional Aggregator extension for shipping
// non-int64 window results in OpResults replies. Without it, a remote
// final whose Output is not an int64 reports the result as unencodable
// (FinalHandler.Unencodable) instead of guessing.
type ResultCodec interface {
	// EncodeResult serializes one closed window's output value.
	EncodeResult(key string, v any) []byte
}

// NewRemoteFinal returns an engine.Bolt factory for the forwarder that
// replaces this plan's in-process final stage (engine.RemoteFinal wires
// it up): flushed partials are key-grouped over the remote node
// addresses — all partials of a key must meet at one node — and
// watermark marks are broadcast to every node. seed derives the
// key→node hash; reuse it for any out-of-band per-key node lookup.
// It errors when the plan's aggregator has neither the int64 fast path
// nor a StateCodec, or when addrs is empty.
func (p *Plan) NewRemoteFinal(addrs []string, seed uint64) (func() engine.Bolt, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("window: remote final with no node addresses")
	}
	var codec StateCodec
	if p.comb == nil {
		c, ok := p.agg.(StateCodec)
		if !ok {
			return nil, fmt.Errorf("window: aggregator %T has no int64 fast path and no StateCodec; partial states need a wire form to cross processes", p.agg)
		}
		codec = c
	}
	return func() engine.Bolt {
		in := &instrumentation{}
		p.mu.Lock()
		p.fins = append(p.fins, in)
		p.mu.Unlock()
		return &remoteFinal{
			plan: p,
			inst: in,
			snd: partialSender{
				comp: "remote-final", addrs: addrs, codec: codec,
				opts: transport.SourceOptions{Mode: transport.ModeKG, Seed: seed},
			},
		}
	}, nil
}

// partialSender ships flushed partials and watermark marks to the final
// nodes over transport, key-grouped so all partials of a key meet at
// one node. Send failures — a final node restarting, a dropped
// connection — are retried with bounded backoff over a fresh dial; only
// exhausted retries surface, as a typed *engine.EdgeError, so the
// topology fails cleanly and diagnosably instead of panicking on the
// first broken pipe. Both forwarding shapes share it: the in-engine
// remoteFinal bolt and the pkgnode-side PartialHandler.
type partialSender struct {
	comp  string
	addrs []string
	opts  transport.SourceOptions
	codec StateCodec // nil on the Combiner fast path

	src     *transport.Source
	scratch wire.Partial

	frames   atomic.Int64
	marks    atomic.Int64
	retries  atomic.Int64
	failures atomic.Int64
}

// sendAttempts bounds delivery attempts per frame: the first send plus
// three redial-and-resend rounds with doubling backoff (~175ms total),
// enough to ride out a node restart without masking a dead peer for
// long.
const sendAttempts = 4

// dial (re)connects to the final nodes.
func (s *partialSender) dial() error {
	src, err := transport.DialSourceOpts(s.addrs, s.opts)
	if err != nil {
		return err
	}
	s.src = src
	return nil
}

// withRetry runs op, redialing with bounded backoff on failure. During
// a reconnect, frames buffered on the dead connection may or may not
// have been absorbed — delivery across a node restart is at-least-once
// for the frame being retried and best-effort for the buffered tail.
func (s *partialSender) withRetry(op func() error) error {
	err := op()
	if err == nil {
		return nil
	}
	backoff := 25 * time.Millisecond
	for attempt := 1; attempt < sendAttempts; attempt++ {
		s.retries.Add(1)
		trace.Event("redial "+strings.Join(s.addrs, ","), 0, int64(attempt))
		time.Sleep(backoff)
		backoff *= 2
		if s.src != nil {
			s.src.Close()
			s.src = nil
		}
		if err = s.dial(); err != nil {
			continue
		}
		if err = op(); err == nil {
			return nil
		}
	}
	s.failures.Add(1)
	trace.Event("backoff-exhausted "+strings.Join(s.addrs, ","), 0, sendAttempts)
	return &engine.EdgeError{
		Component: s.comp,
		Addr:      strings.Join(s.addrs, ","),
		Attempts:  sendAttempts,
		Err:       err,
	}
}

// sendPartial encodes and ships one flushed (key, window) partial.
// traceID, when nonzero, rides the wire so the final node continues
// the trace; the ship itself is recorded as a wire-send span.
func (s *partialSender) sendPartial(key string, hash uint64, ps partialState, traceID uint64) error {
	p := &s.scratch
	p.KeyHash = hash
	p.Key = key
	p.Start = ps.start
	p.TraceID = traceID
	if s.codec == nil {
		p.Count = ps.state.(int64)
		p.Raw = nil
	} else {
		p.Count = 0
		p.Raw = s.codec.EncodeState(ps.state)
	}
	var start int64
	if traceID != 0 {
		start = trace.Now()
	}
	err := s.withRetry(func() error {
		if s.src == nil {
			return fmt.Errorf("window: %s: not connected", s.comp)
		}
		return s.src.SendPartial(p)
	})
	if err == nil {
		s.frames.Add(1)
		if traceID != 0 {
			trace.Add(traceID, trace.HopWireSend, start, trace.Now()-start, 1, 0, s.comp)
		}
	}
	return err
}

// sendMark relays one watermark under the given source ID.
func (s *partialSender) sendMark(from uint32, wm int64) error {
	err := s.withRetry(func() error {
		if s.src == nil {
			return fmt.Errorf("window: %s: not connected", s.comp)
		}
		return s.src.SendMarkFrom(from, wm)
	})
	if err == nil {
		s.marks.Add(1)
	}
	return err
}

// close flushes and releases the connections.
func (s *partialSender) close() error {
	if s.src == nil {
		return nil
	}
	err := s.src.Close()
	s.src = nil
	return err
}

// EdgeStats snapshots the sender's flow counters in engine form.
func (s *partialSender) EdgeStats() engine.EdgeStats {
	return engine.EdgeStats{
		Frames:   s.frames.Load(),
		Marks:    s.marks.Load(),
		Retries:  s.retries.Load(),
		Failures: s.failures.Load(),
	}
}

// remoteFinal forwards the partial stage's output over TCP instead of
// merging locally. It runs as a single funnel instance: the one
// key-grouped hop to the remote nodes happens here, so remote node
// count and partial parallelism stay independent.
type remoteFinal struct {
	plan *Plan
	inst *instrumentation
	snd  partialSender
}

// Prepare implements engine.Bolt: it dials the remote nodes. A dial
// failure panics, which the engine runtime converts into a topology
// error (factories and Prepare run inside instance goroutines).
func (b *remoteFinal) Prepare(*engine.Context) {
	if err := b.snd.dial(); err != nil {
		panic(fmt.Sprintf("window: remote final: %v", err))
	}
}

// Execute implements engine.Bolt: partials are encoded and key-grouped
// to their node, marks are relayed per partial instance. Send failures
// retry with bounded backoff inside the sender; an exhausted retry
// panics with the typed *engine.EdgeError, which the runtime surfaces
// through Run — the topology fails cleanly, naming the dead nodes.
func (b *remoteFinal) Execute(t engine.Tuple, out engine.Emitter) {
	if t.Tick {
		if len(t.Values) == 1 {
			if m, ok := t.Values[0].(mark); ok {
				if err := b.snd.sendMark(uint32(m.from), m.wm); err != nil {
					panic(err)
				}
				b.inst.flushes.Add(1)
			}
		}
		return // engine timer ticks carry no values and are ignored
	}
	ps, ok := t.Values[0].(partialState)
	if !ok {
		panic(fmt.Sprintf("window: remote final received a non-partial tuple (values %v)", t.Values))
	}
	if err := b.snd.sendPartial(t.Key, t.RouteKey(), ps, t.TraceID); err != nil {
		panic(err)
	}
	b.inst.partialsOut.Add(1)
}

// Cleanup implements engine.Bolt: by the time the forwarder's input
// closes, every partial instance has sent its final mark (already
// relayed in Execute), so only the connections remain to be flushed.
func (b *remoteFinal) Cleanup(engine.Emitter) {
	if err := b.snd.close(); err != nil {
		panic(fmt.Sprintf("window: remote final: %v", err))
	}
}

// WindowStats implements engine.WindowStatsSource: PartialsOut counts
// forwarded partials and Flushes counts relayed marks.
func (b *remoteFinal) WindowStats() engine.WindowStats { return b.inst.snapshot() }

// EdgeStats implements engine.EdgeStatsSource: the forwarder's frame,
// retry and failure counters surface through Stats.Edges.
func (b *remoteFinal) EdgeStats() engine.EdgeStats { return b.snd.EdgeStats() }

// FinalHandler hosts a windowed final stage behind a transport.Worker:
// the remote half of a RemoteFinal topology, and the engine room of
// `pkgnode -mode final`. Decoded partials merge into an ordinary
// FinalBolt; marks advance its watermark, which is the minimum across
// all live sources (one source per upstream partial instance); closed
// windows are collected and served to OpResults queries.
//
// The transport worker serializes handler calls, and the handler's own
// mutex covers the accessors, so a FinalHandler is safe to inspect
// while sources stream.
type FinalHandler struct {
	mu      sync.Mutex
	plan    *Plan
	bolt    *FinalBolt
	codec   StateCodec // nil on the Combiner fast path
	rc      ResultCodec
	sources int
	finals  map[uint32]bool
	results []wire.WindowResult
	subs    []*finalSub
	bad     int64
	unenc   int64
	done    bool
}

// finalSub is one push subscription: a sink bound to the subscriber's
// connection and the result-log offset it has been fed up to.
type finalSub struct {
	sink     transport.ResultSink
	off      int
	toldDone bool
}

// NewFinalHandler builds the hosting handler for this plan's final
// stage. sources is the number of distinct upstream sources that will
// send marks — for a RemoteFinal topology, the partial stage's
// parallelism; windows close once the minimum watermark over all of
// them passes their end, and the handler reports Done once every source
// has sent its final (math.MaxInt64) mark.
func (p *Plan) NewFinalHandler(sources int) (*FinalHandler, error) {
	if sources <= 0 {
		return nil, fmt.Errorf("window: final handler needs a positive source count, got %d", sources)
	}
	var codec StateCodec
	if p.comb == nil {
		c, ok := p.agg.(StateCodec)
		if !ok {
			return nil, fmt.Errorf("window: aggregator %T has no int64 fast path and no StateCodec; partial states need a wire form to cross processes", p.agg)
		}
		codec = c
	}
	h := &FinalHandler{
		plan:    p,
		bolt:    p.NewFinal().(*FinalBolt),
		codec:   codec,
		sources: sources,
		finals:  map[uint32]bool{},
	}
	if rc, ok := p.agg.(ResultCodec); ok {
		h.rc = rc
	}
	h.bolt.Prepare(&engine.Context{Component: "remote-final", Parallelism: 1})
	return h, nil
}

// collector is the emitter the hosted FinalBolt closes windows into; it
// runs under h.mu (every bolt call sits inside the handler lock).
type resultCollector FinalHandler

// Emit implements engine.Emitter.
func (c *resultCollector) Emit(t engine.Tuple) {
	h := (*FinalHandler)(c)
	res, ok := t.Values[0].(Result)
	if !ok {
		h.bad++
		return
	}
	wr := wire.WindowResult{KeyHash: res.KeyHash, Key: res.Key, Start: res.Start, End: res.End}
	switch v := res.Value.(type) {
	case int64:
		wr.Value = v
	default:
		if h.rc == nil {
			h.unenc++
			return
		}
		wr.Raw = h.rc.EncodeResult(res.Key, v)
	}
	h.results = append(h.results, wr)
}

// HandleTuple implements transport.Handler: a final node consumes
// partials, not raw tuples — tuples are counted as protocol misuse.
func (h *FinalHandler) HandleTuple(*wire.Tuple) {
	h.mu.Lock()
	h.bad++
	h.mu.Unlock()
}

// HandlePartial implements transport.Handler.
func (h *FinalHandler) HandlePartial(p *wire.Partial) {
	var st State
	if p.Raw != nil {
		if h.codec == nil {
			h.mu.Lock()
			h.bad++
			h.mu.Unlock()
			return
		}
		var err error
		if st, err = h.codec.DecodeState(p.Raw); err != nil {
			h.mu.Lock()
			h.bad++
			h.mu.Unlock()
			return
		}
	} else {
		st = p.Count
	}
	t := engine.Tuple{Key: p.Key, KeyHash: p.KeyHash, TraceID: p.TraceID,
		Values: engine.Values{partialState{start: p.Start, state: st}}}
	h.mu.Lock()
	h.bolt.Execute(t, (*resultCollector)(h))
	h.mu.Unlock()
}

// HandleMark implements transport.Handler: the mark advances the hosted
// bolt's per-source watermark table; final marks tick off sources until
// the handler is done. Windows only close here (watermark advances),
// so this is also the single point where push subscribers get fed.
func (h *FinalHandler) HandleMark(m wire.Mark) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.bolt.advance(mark{from: int(m.Source), of: h.sources, wm: m.WM}, (*resultCollector)(h))
	if m.Final() {
		h.finals[m.Source] = true
		if len(h.finals) >= h.sources {
			h.done = true
		}
	}
	h.pushAll()
}

// HandleSubscribe implements transport.PushHandler: the connection
// starts receiving server-initiated Reply frames — the backlog from the
// requested offset immediately, every subsequently closed window as its
// watermark passes, and a final Done frame — removing the DrainResults
// poll from the latency path.
func (h *FinalHandler) HandleSubscribe(s wire.Subscribe, sink transport.ResultSink) {
	h.mu.Lock()
	defer h.mu.Unlock()
	off := int(s.Offset)
	if off < 0 || off > len(h.results) {
		off = len(h.results)
	}
	sub := &finalSub{sink: sink, off: off}
	if h.pushTo(sub) {
		h.subs = append(h.subs, sub)
	}
}

// pushAll feeds every subscriber the results it has not seen, dropping
// subscribers whose sink failed. Runs under h.mu.
func (h *FinalHandler) pushAll() {
	if len(h.subs) == 0 {
		return
	}
	alive := h.subs[:0]
	for _, sub := range h.subs {
		if h.pushTo(sub) {
			alive = append(alive, sub)
		}
	}
	for i := len(alive); i < len(h.subs); i++ {
		h.subs[i] = nil
	}
	h.subs = alive
}

// pushTo writes the subscriber's outstanding results (paged, so one
// push stays well under wire.MaxPayload) and, once the node is done,
// exactly one Done frame. It reports whether the sink is still alive.
func (h *FinalHandler) pushTo(sub *finalSub) bool {
	for sub.off < len(h.results) || (h.done && !sub.toldDone) {
		end := sub.off + resultsPage
		if end > len(h.results) {
			end = len(h.results)
		}
		rep := wire.Reply{
			Op:      wire.OpResults,
			Done:    h.done && end == len(h.results),
			Count:   int64(len(h.results)),
			Results: h.results[sub.off:end],
		}
		if err := sub.sink.Push(&rep); err != nil {
			return false
		}
		sub.off = end
		if rep.Done {
			sub.toldDone = true
		}
	}
	return true
}

// resultsPage bounds one OpResults reply so large drains stay well
// under wire.MaxPayload; clients page with Query.Key as the offset.
const resultsPage = 32768

// HandleQuery implements transport.Handler.
//
//	OpResults — one page of closed windows starting at offset Query.Key
//	            (Count carries the total so far; results are append-only,
//	            so paging by offset is stable), plus Done;
//	OpCount   — the total over closed windows of the queried key hash;
//	OpStats   — the number of closed windows, plus the node's
//	            window-close staleness histogram;
//	OpTrace   — the process name plus the retained trace spans, for
//	            cross-process trace assembly.
func (h *FinalHandler) HandleQuery(q wire.Query) wire.Reply {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch q.Op {
	case wire.OpResults:
		off := int(q.Key)
		if off < 0 || off > len(h.results) {
			off = len(h.results)
		}
		end := off + resultsPage
		if end > len(h.results) {
			end = len(h.results)
		}
		out := make([]wire.WindowResult, end-off)
		copy(out, h.results[off:end])
		return wire.Reply{Op: q.Op, Done: h.done, Count: int64(len(h.results)), Results: out}
	case wire.OpCount:
		var total int64
		for i := range h.results {
			if h.results[i].KeyHash == q.Key {
				total += h.results[i].Value
			}
		}
		return wire.Reply{Op: q.Op, Done: h.done, Count: total}
	case wire.OpStats:
		// A final node has no outbound edge: the edge fields stay zero
		// and only the window-progress half of the telemetry is live.
		return wire.Reply{
			Op: q.Op, Done: h.done, Count: int64(len(h.results)),
			Stale:     wireHist(h.bolt.inst.hist.Snapshot()),
			Telemetry: telemetry(h.bolt.WindowStats(), engine.EdgeStats{}, metrics.HistSnapshot{}),
		}
	case wire.OpTrace:
		return wire.Reply{
			Op: q.Op, Done: h.done,
			Proc: trace.Process(), Spans: transport.TraceSpans(),
		}
	default:
		return wire.Reply{Op: q.Op}
	}
}

// Done reports whether every expected source has sent its final mark
// (at which point every window has closed).
func (h *FinalHandler) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}

// WaitDone blocks until Done or the timeout expires.
func (h *FinalHandler) WaitDone(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for !h.Done() {
		if time.Now().After(deadline) {
			h.mu.Lock()
			n := len(h.finals)
			h.mu.Unlock()
			return fmt.Errorf("window: final handler saw %d/%d final marks after %v",
				n, h.sources, timeout)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// Results returns a copy of the closed windows so far.
func (h *FinalHandler) Results() []wire.WindowResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]wire.WindowResult, len(h.results))
	copy(out, h.results)
	return out
}

// BadFrames counts frames the handler could not apply (raw tuples,
// undecodable states) — nonzero means a misconfigured topology, never
// silent data loss.
func (h *FinalHandler) BadFrames() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bad
}

// Unencodable counts closed windows whose result value had no wire form
// (non-int64 Output and no ResultCodec).
func (h *FinalHandler) Unencodable() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.unenc
}

// Stats returns the hosted final stage's window counters.
func (h *FinalHandler) Stats() engine.WindowStats {
	return h.bolt.WindowStats()
}

// StalenessStats returns the hosted final stage's window-close
// staleness histogram (wall-clock windows only).
func (h *FinalHandler) StalenessStats() metrics.HistSnapshot {
	return h.bolt.inst.hist.Snapshot()
}

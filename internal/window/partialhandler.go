package window

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"pkgstream/internal/edge"
	"pkgstream/internal/engine"
	"pkgstream/internal/metrics"
	"pkgstream/internal/trace"
	"pkgstream/internal/transport"
	"pkgstream/internal/wire"
)

// This file is the tuple half of the distributed two-phase aggregation:
// with PartialHandler the PARTIAL stage itself leaves the engine
// process (pkgnode -mode partial), so the paper's full deployment shape
// — spout, partial workers and final aggregators in separate processes
// — runs over real wires. Two pieces make that span:
//
//   - tupleForwarder, the engine bolt behind engine.RemotePartial: it
//     ships raw tuples to the partial nodes over a credit-flow-
//     controlled edge.Wire (PKG-routed by default, or D-/W-Choices with
//     the forwarder's own per-source sketch), relays SourceMark
//     watermarks, and closes the stream with final marks — a stalled
//     partial node exhausts the credit window, which blocks this bolt,
//     fills its bounded queue, and stalls the spout: local-channel
//     backpressure semantics across TCP;
//   - PartialHandler, the transport.Handler hosting an ordinary
//     PartialBolt on the remote side: tuples accumulate per (key,
//     window), flushes follow the plan's aggregation period (tuple
//     count, or Tick from a wall-clock driver), and flushed partials
//     forward — key-grouped, with bounded-backoff retry — to the final
//     nodes, marks riding behind the data they cover.

// PartialHandlerOptions configures a hosted partial stage.
type PartialHandlerOptions struct {
	// ID is this node's index among the partial nodes — the source ID
	// its watermark marks carry toward the final nodes. Distinct per
	// node, in [0, Nodes).
	ID int
	// Nodes is the total number of partial nodes feeding the finals
	// (the finals' expected source count).
	Nodes int
	// FinalAddrs are the final node addresses.
	FinalAddrs []string
	// Seed derives the key→final-node hash; it must match across every
	// partial node (all partials of a key must meet at one final).
	Seed uint64
}

// NewPartialHandler builds the hosting handler for this plan's partial
// stage: the engine room of `pkgnode -mode partial`. The plan must use
// SourceMark watermarks (Spec.Sources ≥ 1) — across a process boundary
// stream end is a final mark, not a channel close — and its aggregator
// must have a wire form (the int64 Combiner fast path or a StateCodec).
// The final nodes are dialed here, so start them first.
func (p *Plan) NewPartialHandler(o PartialHandlerOptions) (*PartialHandler, error) {
	if len(o.FinalAddrs) == 0 {
		return nil, fmt.Errorf("window: partial handler with no final node addresses")
	}
	if o.Nodes <= 0 || o.ID < 0 || o.ID >= o.Nodes {
		return nil, fmt.Errorf("window: partial handler needs 0 ≤ ID < Nodes, got ID %d of %d", o.ID, o.Nodes)
	}
	if p.spec.Sources <= 0 {
		return nil, fmt.Errorf("window: a remote partial stage needs SourceMark watermarks (Spec.Sources ≥ 1)")
	}
	var codec StateCodec
	if p.comb == nil {
		c, ok := p.agg.(StateCodec)
		if !ok {
			return nil, fmt.Errorf("window: aggregator %T has no int64 fast path and no StateCodec; partial states need a wire form to cross processes", p.agg)
		}
		codec = c
	}
	h := &PartialHandler{
		plan:    p,
		bolt:    p.NewPartial().(*PartialBolt),
		sources: p.spec.Sources,
		finals:  map[uint32]bool{},
		snd: partialSender{
			comp: fmt.Sprintf("remote-partial[%d]", o.ID), addrs: o.FinalAddrs, codec: codec,
			opts: transport.SourceOptions{Mode: transport.ModeKG, Seed: o.Seed},
		},
	}
	h.bolt.Prepare(&engine.Context{
		Component: "remote-partial", Index: o.ID, Parallelism: o.Nodes,
	})
	if err := h.snd.dial(); err != nil {
		return nil, fmt.Errorf("window: partial handler: %w", err)
	}
	return h, nil
}

// PartialHandler hosts a windowed partial stage behind a
// transport.Worker: decoded tuples accumulate in an ordinary
// PartialBolt; marks relay the engine sources' watermarks into it; and
// every flush the bolt makes — tuple-count, Tick-driven, or the final
// cleanup once all sources are done — forwards its partials and
// watermark to the final nodes through a retrying partialSender.
//
// The transport worker serializes handler calls, and the handler's own
// mutex covers the accessors, so a PartialHandler is safe to inspect
// while sources stream.
type PartialHandler struct {
	mu      sync.Mutex
	plan    *Plan
	bolt    *PartialBolt
	snd     partialSender
	sources int
	finals  map[uint32]bool

	processed int64
	bad       int64
	done      bool
	err       error
}

// relay is the emitter the hosted PartialBolt flushes into; it runs
// under h.mu (every bolt call sits inside the handler lock).
type relay PartialHandler

// Emit implements engine.Emitter: partials and marks forward to the
// final nodes; the first delivery failure latches (the handler keeps
// absorbing and counting, but Err reports the edge as dead).
func (r *relay) Emit(t engine.Tuple) {
	h := (*PartialHandler)(r)
	if h.err != nil {
		return
	}
	if t.Tick {
		if len(t.Values) == 1 {
			if m, ok := t.Values[0].(mark); ok {
				h.err = h.snd.sendMark(uint32(m.from), m.wm)
			}
		}
		return
	}
	ps, ok := t.Values[0].(partialState)
	if !ok {
		h.bad++
		return
	}
	h.err = h.snd.sendPartial(t.Key, t.RouteKey(), ps, t.TraceID)
}

// HandleTuple implements transport.Handler: one stream tuple
// accumulates into the bolt (which may flush itself on the plan's
// tuple-count period). The decode buffer is the worker's — values are
// copied before the bolt may retain them.
func (h *PartialHandler) HandleTuple(t *wire.Tuple) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		h.bad++ // a tuple after every source's final mark: protocol misuse
		return
	}
	et := engine.Tuple{Key: t.Key, KeyHash: t.KeyHash, EmitNanos: t.EmitNanos,
		TraceID: t.TraceID, LatStamp: t.LatStamp, Tick: t.Tick}
	if len(t.Values) > 0 {
		et.Values = append(engine.Values{}, t.Values...)
	}
	h.bolt.Execute(et, (*relay)(h))
	h.processed++
}

// HandleTupleBatch implements transport.TupleBatchHandler: a whole
// decoded batch accumulates under one lock acquisition — the receive
// half of the batched spout→partial edge.
func (h *PartialHandler) HandleTupleBatch(ts []wire.Tuple) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		h.bad += int64(len(ts)) // tuples after every source's final mark: protocol misuse
		return
	}
	for i := range ts {
		t := &ts[i]
		et := engine.Tuple{Key: t.Key, KeyHash: t.KeyHash, EmitNanos: t.EmitNanos,
			TraceID: t.TraceID, LatStamp: t.LatStamp, Tick: t.Tick}
		if len(t.Values) > 0 {
			et.Values = append(engine.Values{}, t.Values...)
		}
		h.bolt.Execute(et, (*relay)(h))
	}
	h.processed += int64(len(ts))
}

// HandlePartial implements transport.Handler: a partial node consumes
// raw tuples, not partials — partials are counted as protocol misuse.
func (h *PartialHandler) HandlePartial(*wire.Partial) {
	h.mu.Lock()
	h.bad++
	h.mu.Unlock()
}

// HandleMark implements transport.Handler: the engine source's
// watermark advances the bolt's per-source table (the bolt broadcasts
// its own minimum at each flush). Once every expected source has sent
// its final mark, the bolt cleans up — the last flush, whose MaxInt64
// mark tells the finals this node will never send another partial.
func (h *PartialHandler) HandleMark(m wire.Mark) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	h.bolt.Execute(SourceMark(int(m.Source), m.WM), (*relay)(h))
	if m.Final() {
		h.finals[m.Source] = true
		if len(h.finals) >= h.sources {
			h.done = true
			h.bolt.Cleanup((*relay)(h))
			if err := h.snd.close(); err != nil && h.err == nil {
				h.err = err
			}
		}
	}
}

// Tick drives a flush from a wall-clock ticker (pkgnode runs one when
// the plan's Period is set) — the remote form of the engine's
// TickEvery.
func (h *PartialHandler) Tick() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	h.bolt.Execute(engine.Tuple{Tick: true}, (*relay)(h))
}

// HandleQuery implements transport.Handler.
//
//	OpStats — the number of tuples absorbed, plus Done (the basis for
//	          cross-node imbalance measurements: per-node tuple counts
//	          are exactly the paper's worker-load vector) and the node's
//	          emit→arrival latency histogram, so a source pulls remote
//	          latency summaries over the query channel without HTTP;
//	OpTrace — the process name plus the retained trace spans, for
//	          cross-process trace assembly.
func (h *PartialHandler) HandleQuery(q wire.Query) wire.Reply {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch q.Op {
	case wire.OpStats:
		return wire.Reply{
			Op: q.Op, Done: h.done, Count: h.processed,
			Lat:       wireHist(h.bolt.inst.hist.Snapshot()),
			Telemetry: telemetry(h.bolt.WindowStats(), h.snd.EdgeStats(), metrics.HistSnapshot{}),
		}
	case wire.OpTrace:
		return wire.Reply{
			Op: q.Op, Done: h.done,
			Proc: trace.Process(), Spans: transport.TraceSpans(),
		}
	default:
		return wire.Reply{Op: q.Op}
	}
}

// Done reports whether every expected source has sent its final mark
// (at which point the last partials and the final mark are out).
func (h *PartialHandler) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}

// Err returns the first delivery failure toward the final nodes (nil
// while the edge is healthy). A non-nil Err means the node kept
// absorbing but its output is incomplete — callers should fail loudly.
func (h *PartialHandler) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Processed returns the number of tuples absorbed.
func (h *PartialHandler) Processed() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.processed
}

// BadFrames counts frames the handler could not apply.
func (h *PartialHandler) BadFrames() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bad
}

// Stats returns the hosted partial stage's window counters.
func (h *PartialHandler) Stats() engine.WindowStats {
	return h.bolt.WindowStats()
}

// LatencyStats returns the hosted partial stage's emit→arrival latency
// histogram (sampled tuples only).
func (h *PartialHandler) LatencyStats() metrics.HistSnapshot {
	return h.bolt.inst.hist.Snapshot()
}

// EdgeStats returns the partial→final forwarding counters.
func (h *PartialHandler) EdgeStats() engine.EdgeStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snd.EdgeStats()
}

// WaitDone blocks until Done or the timeout expires.
func (h *PartialHandler) WaitDone(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for !h.Done() {
		if err := h.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			h.mu.Lock()
			n := len(h.finals)
			h.mu.Unlock()
			return fmt.Errorf("window: partial handler saw %d/%d final marks after %v",
				n, h.sources, timeout)
		}
		time.Sleep(time.Millisecond)
	}
	return h.Err()
}

var _ engine.RemotePartialOp = (*Plan)(nil)

// NewRemotePartial implements engine.RemotePartialOp: the factory for
// the tuple forwarder that replaces this plan's in-process partial
// stage (engine.RemotePartial wires it up). It errors when the plan
// does not use SourceMark watermarks — across a process boundary,
// stream end must be an explicit final mark.
func (p *Plan) NewRemotePartial(cfg engine.RemotePartialConfig, seed uint64) (func() engine.Bolt, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("window: remote partial with no node addresses")
	}
	if p.spec.Sources <= 0 {
		return nil, fmt.Errorf("window: a remote partial stage needs SourceMark watermarks (Spec.Sources ≥ 1)")
	}
	return func() engine.Bolt {
		in := &instrumentation{}
		p.mu.Lock()
		p.parts = append(p.parts, in)
		p.mu.Unlock()
		return &tupleForwarder{plan: p, cfg: cfg, seed: seed, inst: in}
	}, nil
}

// tupleForwarder is the engine bolt of a RemotePartial aggregation: a
// single funnel shipping raw tuples to the partial nodes over a
// flow-controlled edge.Wire. Routing happens HERE, per forwarder, on
// one local load estimate (and one hot-key sketch for the
// frequency-aware strategies) — the same coordination-free contract as
// every other source in this tree.
type tupleForwarder struct {
	plan *Plan
	cfg  engine.RemotePartialConfig
	seed uint64
	inst *instrumentation

	e       *edge.Wire
	mu      sync.Mutex // guards e for EdgeStats readers vs Prepare
	scratch wire.Tuple
	seen    map[int]bool // source IDs observed in marks
}

// Prepare implements engine.Bolt: it dials the partial nodes. The
// edge batches tuples by default; the forwarder turns the linger
// flusher on (2ms unless configured) because engine timer ticks never
// reach this edge — without it a trickling spout could strand a
// partial batch until the next mark.
func (b *tupleForwarder) Prepare(ctx *engine.Context) {
	linger := b.cfg.Linger
	if linger == 0 {
		linger = 2 * time.Millisecond
	}
	if linger < 0 {
		linger = 0
	}
	e, err := edge.DialWire(b.cfg.Addrs, edge.WireOptions{
		Mode: b.cfg.Strategy, ModeSet: b.cfg.StrategySet, Seed: b.seed,
		Start: ctx.Index, D: b.cfg.D, Hot: b.cfg.Hot, Window: b.cfg.Window,
		MaxBatchTuples: b.cfg.MaxBatchTuples, MaxBatchBytes: b.cfg.MaxBatchBytes,
		Linger:         linger,
		AdaptiveWindow: b.cfg.AdaptiveWindow, MinWindow: b.cfg.MinWindow,
		MaxWindow: b.cfg.MaxWindow, WeightedRouting: b.cfg.WeightedRouting,
	})
	if err != nil {
		panic(&engine.EdgeError{
			Component: ctx.Component, Addr: strings.Join(b.cfg.Addrs, ","),
			Attempts: 1, Err: err,
		})
	}
	b.mu.Lock()
	b.e = e
	b.mu.Unlock()
	b.seen = map[int]bool{}
}

// Execute implements engine.Bolt: SourceMark ticks broadcast as wire
// marks (data flushed first, so the promise never overtakes what it
// covers); data tuples route to their node under credit flow control —
// when a node's window is exhausted, this blocks, and with it the
// spout. Engine timer ticks stay local: flush cadence on the remote
// nodes is their own (tuple-count or their wall-clock driver).
func (b *tupleForwarder) Execute(t engine.Tuple, out engine.Emitter) {
	if t.Tick {
		if len(t.Values) == 1 {
			if sm, ok := t.Values[0].(srcMark); ok {
				b.seen[sm.src] = true
				if err := b.e.Watermark(uint32(sm.src), sm.wm); err != nil {
					panic(b.edgeErr(err))
				}
				b.inst.flushes.Add(1)
			}
		}
		return
	}
	s := &b.scratch
	s.KeyHash = t.RouteKey()
	s.Key = t.Key
	s.EmitNanos = t.EmitNanos
	s.TraceID = t.TraceID
	s.LatStamp = t.LatStamp
	s.Tick = false
	s.Values = append(s.Values[:0], t.Values...)
	if err := b.e.SendTuple(s); err != nil {
		panic(b.edgeErr(err))
	}
	b.inst.partialsOut.Add(1)
}

// Cleanup implements engine.Bolt: the engine guarantees every upstream
// spout has finished, so each source's final mark goes out — the
// explicit stream-end signal the partial nodes turn into their own
// cleanup flush — and the edge closes.
func (b *tupleForwarder) Cleanup(engine.Emitter) {
	for src := 0; src < b.plan.spec.Sources; src++ {
		b.seen[src] = true
	}
	for src := range b.seen {
		if err := b.e.Watermark(uint32(src), math.MaxInt64); err != nil {
			panic(b.edgeErr(err))
		}
	}
	if err := b.e.Close(); err != nil {
		panic(b.edgeErr(err))
	}
}

func (b *tupleForwarder) edgeErr(err error) error {
	return &engine.EdgeError{
		Component: "remote-partial-forwarder",
		Addr:      strings.Join(b.cfg.Addrs, ","),
		Attempts:  edge.SendAttempts,
		Err:       err,
	}
}

// WindowStats implements engine.WindowStatsSource: PartialsOut counts
// forwarded tuples and Flushes counts relayed source marks.
func (b *tupleForwarder) WindowStats() engine.WindowStats { return b.inst.snapshot() }

// EdgeStats implements engine.EdgeStatsSource: the wire edge's frame,
// stall and retry counters surface through Stats.Edges — Stalls is
// where remote backpressure becomes visible in the engine process.
func (b *tupleForwarder) EdgeStats() engine.EdgeStats {
	b.mu.Lock()
	e := b.e
	b.mu.Unlock()
	if e == nil {
		return engine.EdgeStats{}
	}
	return e.Stats()
}

package window

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pkgstream/internal/engine"
)

// zipfishSpout emits a skewed integer-keyed stream with a logical clock.
type zipfishSpout struct {
	n, i int
	base int64
}

func (s *zipfishSpout) Open(ctx *engine.Context) { s.base = int64(ctx.Index+1) * 31 }
func (s *zipfishSpout) Close()                   {}
func (s *zipfishSpout) Next(out engine.Emitter) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	// A crude skew: key 1 gets ~25% of the stream.
	key := uint64(s.i*7919%s.n) % 997
	if s.i%4 == 0 {
		key = 0
	}
	out.Emit(engine.Tuple{
		Key:       fmt.Sprintf("k%d", key),
		EmitNanos: s.base + int64(s.i)*int64(time.Millisecond),
	})
	return true
}

// TestConcurrentFlushRace drives every flush trigger at once — wall-clock
// period ticks, tuple-count flushes, and the memory-pressure cap — from
// four partial instances into two final instances, while Stats (and the
// WindowStats sources behind it) are polled concurrently. Run under
// -race this exercises the snapshot atomics and the tick/mark plumbing;
// the count invariant catches tuples lost to racing flushes.
func TestConcurrentFlushRace(t *testing.T) {
	const (
		sources  = 3
		perSpout = 20000
	)
	plan := MustPlan(Count{}, Spec{
		Size:             200 * time.Millisecond,
		Slide:            100 * time.Millisecond,
		Period:           2 * time.Millisecond,
		EveryTuples:      97,
		MaxLivePartials:  64,
		Lateness:         time.Hour, // interleaving skews event time across sources: never drop
		FinalParallelism: 2,
	})
	var total atomic.Int64
	b := engine.NewBuilder("race", 1)
	b.AddSpout("src", func() engine.Spout { return &zipfishSpout{n: perSpout} }, sources)
	b.WindowedAggregate("count", plan, 4).Input("src", engine.Partial())
	b.AddBolt("sink", func() engine.Bolt {
		return engine.BoltFunc(func(tu engine.Tuple, _ engine.Emitter) {
			if tu.Tick {
				return
			}
			total.Add(tu.Values[0].(Result).Value.(int64))
		})
	}, 1).Input("count", engine.Global())
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(top, engine.Options{QueueSize: 512})

	done := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-done:
				return
			default:
				st := rt.Stats()
				_ = st.WindowTotals("count.partial")
				_ = st.LatencyTotals("count.partial")
				_ = st.LatencyTotals("count.staleness")
				_ = plan.PartialStats()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	err = rt.Run()
	close(done)
	pollers.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Every tuple lands in exactly two sliding windows (size = 2×slide),
	// so the summed window counts are exactly twice the stream.
	want := int64(2 * sources * perSpout)
	if got := total.Load(); got != want {
		t.Fatalf("window counts sum to %d, want %d — tuples lost in a racing flush", got, want)
	}
	parts := plan.PartialStats()
	// The cap is enforced to within one tuple's window fan-out (2 here:
	// size = 2×slide).
	if parts.MaxLive > 64+1 {
		t.Errorf("MaxLive %d exceeded the pressure cap", parts.MaxLive)
	}
	if parts.Flushes < int64(sources*perSpout)/97/2 {
		t.Errorf("suspiciously few flushes: %+v", parts)
	}
	if fin := plan.FinalStats(); fin.Merged != parts.PartialsOut {
		t.Errorf("final merged %d != partials flushed %d", fin.Merged, parts.PartialsOut)
	}
}
